package mpi_test

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"gompi/mpi"
)

// TestFileStridedCollectiveRoundTrip is the subsystem's acceptance
// shape: a 4-rank collective WriteAtAll through a strided view (each
// rank a column block of a row-major matrix), followed by a collective
// ReadAtAll through the same view, must round-trip bit-exact — and the
// bytes on disk must be the matrix in global row-major order.
func TestFileStridedCollectiveRoundTrip(t *testing.T) {
	const ranks, side = 4, 32
	const cpr = side / ranks // columns per rank
	path := filepath.Join(t.TempDir(), "matrix.bin")
	err := mpi.Run(ranks, func(env *mpi.Env) error {
		w := env.CommWorld()
		f, err := w.OpenFile(path, mpi.ModeCreate|mpi.ModeRdwr)
		if err != nil {
			return err
		}
		defer f.Close()
		f.SetStripe(512) // several stripes per rank: real aggregation traffic

		// Rank r's file view: its column block of the row-major matrix.
		ft, err := mpi.TypeVector(side, cpr, side, mpi.DOUBLE)
		if err != nil {
			return err
		}
		ft.Commit()
		if err := f.SetView(w.Rank()*cpr, mpi.DOUBLE, ft); err != nil {
			return err
		}

		mine := make([]float64, side*cpr)
		for i := range mine {
			mine[i] = float64(w.Rank())*1e6 + float64(i) + 0.25
		}
		st, err := f.WriteAtAll(0, mine, 0, len(mine), mpi.DOUBLE)
		if err != nil {
			return err
		}
		if got := st.GetCount(mpi.DOUBLE); got != len(mine) {
			return fmt.Errorf("rank %d: wrote %d elements, want %d", w.Rank(), got, len(mine))
		}

		back := make([]float64, side*cpr)
		st, err = f.ReadAtAll(0, back, 0, len(back), mpi.DOUBLE)
		if err != nil {
			return err
		}
		if got := st.GetCount(mpi.DOUBLE); got != len(back) {
			return fmt.Errorf("rank %d: read %d elements, want %d", w.Rank(), got, len(back))
		}
		if !reflect.DeepEqual(mine, back) {
			return fmt.Errorf("rank %d: collective round trip not bit-exact", w.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Cross-check the on-disk layout from outside MPI.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != side*side*8 {
		t.Fatalf("file holds %d bytes, want %d", len(raw), side*side*8)
	}
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			owner := c / cpr
			want := float64(owner)*1e6 + float64(r*cpr+c-owner*cpr) + 0.25
			got := math.Float64frombits(binary.LittleEndian.Uint64(raw[(r*side+c)*8:]))
			if got != want {
				t.Fatalf("matrix[%d,%d] = %v, want %v", r, c, got, want)
			}
		}
	}
}

// TestFileIndependentAndPointerIO exercises WriteAt/ReadAt, the
// file-pointer forms and Seek, single rank.
func TestFileIndependentAndPointerIO(t *testing.T) {
	path := filepath.Join(t.TempDir(), "indep.bin")
	err := mpi.Run(1, func(env *mpi.Env) error {
		w := env.CommWorld()
		f, err := w.OpenFile(path, mpi.ModeCreate|mpi.ModeRdwr)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := f.SetView(0, mpi.INT, mpi.INT); err != nil {
			return err
		}
		data := []int32{5, 6, 7, 8}
		if _, err := f.WriteAt(2, data, 0, 4, mpi.INT); err != nil {
			return err
		}
		// Pointer I/O: write two more at the pointer, then seek around.
		if _, err := f.Write([]int32{1, 2}, 0, 2, mpi.INT); err != nil {
			return err
		}
		if pos := f.Tell(); pos != 2 {
			return fmt.Errorf("tell after Write = %d, want 2", pos)
		}
		if _, err := f.Seek(0, mpi.SeekEnd); err != nil {
			return err
		}
		if pos := f.Tell(); pos != 6 {
			return fmt.Errorf("tell after SeekEnd = %d, want 6", pos)
		}
		if _, err := f.Seek(-4, mpi.SeekCur); err != nil {
			return err
		}
		buf := make([]int32, 4)
		st, err := f.Read(buf, 0, 4, mpi.INT)
		if err != nil {
			return err
		}
		if st.GetCount(mpi.INT) != 4 || !reflect.DeepEqual(buf, data) {
			return fmt.Errorf("Read got %v (count %d)", buf, st.GetCount(mpi.INT))
		}
		// Reading past EOF delivers the available prefix.
		big := make([]int32, 10)
		st, err = f.ReadAt(4, big, 0, 10, mpi.INT)
		if err != nil {
			return err
		}
		if st.GetCount(mpi.INT) != 2 || big[0] != 7 || big[1] != 8 {
			return fmt.Errorf("EOF read: count=%d buf=%v", st.GetCount(mpi.INT), big)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFileAmodeAndAccessErrors(t *testing.T) {
	dir := t.TempDir()
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		// Invalid amode combinations are local errors (MPI_ERR_AMODE).
		for _, amode := range []int{
			0,                             // no access bits
			mpi.ModeRdonly | mpi.ModeRdwr, // two access bits
			mpi.ModeRdonly | mpi.ModeCreate,
			mpi.ModeWronly | mpi.ModeExcl, // Excl without Create
		} {
			if _, err := w.OpenFile(filepath.Join(dir, "x"), amode); mpi.ClassOf(err) != mpi.ErrAmode {
				return fmt.Errorf("amode %#x: got %v, want MPI_ERR_AMODE", amode, err)
			}
		}

		path := filepath.Join(dir, "access.bin")
		f, err := w.OpenFile(path, mpi.ModeCreate|mpi.ModeWronly)
		if err != nil {
			return err
		}
		buf := []byte{1}
		if _, err := f.ReadAt(0, buf, 0, 1, mpi.BYTE); mpi.ClassOf(err) != mpi.ErrAccess {
			return fmt.Errorf("read on write-only file: got %v, want MPI_ERR_ACCESS", err)
		}
		if err := f.Close(); err != nil {
			return err
		}

		f, err = w.OpenFile(path, mpi.ModeRdonly)
		if err != nil {
			return err
		}
		if _, err := f.WriteAt(0, buf, 0, 1, mpi.BYTE); mpi.ClassOf(err) != mpi.ErrAccess {
			return fmt.Errorf("write on read-only file: got %v, want MPI_ERR_ACCESS", err)
		}
		// Collective write on a read-only file: every member fails
		// locally and consumes the instance; the communicator survives.
		if _, err := f.WriteAtAll(0, buf, 0, 1, mpi.BYTE); mpi.ClassOf(err) != mpi.ErrAccess {
			return fmt.Errorf("collective write on read-only file: got %v, want MPI_ERR_ACCESS", err)
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}

		// Excl on an existing file fails collectively.
		if _, err := w.OpenFile(path, mpi.ModeCreate|mpi.ModeExcl|mpi.ModeWronly); mpi.ClassOf(err) != mpi.ErrIO {
			return fmt.Errorf("excl on existing file: got %v, want MPI_ERR_IO", err)
		}

		// Operations on a closed file report MPI_ERR_FILE.
		f, err = w.OpenFile(path, mpi.ModeRdonly)
		if err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if _, err := f.ReadAt(0, buf, 0, 1, mpi.BYTE); mpi.ClassOf(err) != mpi.ErrFile {
			return fmt.Errorf("read on closed file: got %v, want MPI_ERR_FILE", err)
		}
		if _, err := f.ReadAtAll(0, buf, 0, 1, mpi.BYTE); mpi.ClassOf(err) != mpi.ErrFile {
			return fmt.Errorf("collective read on closed file: got %v, want MPI_ERR_FILE", err)
		}
		return w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFileOpenMissingFails(t *testing.T) {
	dir := t.TempDir()
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		_, err := w.OpenFile(filepath.Join(dir, "nope.bin"), mpi.ModeRdonly)
		if mpi.ClassOf(err) != mpi.ErrIO {
			return fmt.Errorf("open missing: got %v, want MPI_ERR_IO", err)
		}
		// The communicator must stay healthy after the failed open.
		return w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFileNonblockingCollective(t *testing.T) {
	path := filepath.Join(t.TempDir(), "icoll.bin")
	const ranks, per = 4, 1000
	err := mpi.Run(ranks, func(env *mpi.Env) error {
		w := env.CommWorld()
		f, err := w.OpenFile(path, mpi.ModeCreate|mpi.ModeRdwr)
		if err != nil {
			return err
		}
		defer f.Close()
		mine := make([]int64, per)
		for i := range mine {
			mine[i] = int64(w.Rank()*per + i)
		}
		req, err := f.IwriteAtAll(int64(w.Rank()*per*8), mine, 0, per, mpi.LONG)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		back := make([]int64, per)
		rreq, err := f.IreadAtAll(int64(w.Rank()*per*8), back, 0, per, mpi.LONG)
		if err != nil {
			return err
		}
		if _, err := rreq.Wait(); err != nil {
			return err
		}
		if !reflect.DeepEqual(mine, back) {
			return fmt.Errorf("rank %d: nonblocking round trip mismatch", w.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFileCollectiveCtxCancel checks that a collective file write
// stalled on an absent peer unblocks promptly under a context, and the
// communicator recovers once the late member catches up.
func TestFileCollectiveCtxCancel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cancel.bin")
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		f, err := w.OpenFile(path, mpi.ModeCreate|mpi.ModeRdwr)
		if err != nil {
			return err
		}
		defer f.Close()
		data := []byte{1, 2, 3, 4}
		if w.Rank() == 0 {
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			_, err := f.WriteAtAllCtx(ctx, 0, data, 0, len(data), mpi.BYTE)
			if !errors.Is(err, context.DeadlineExceeded) {
				return fmt.Errorf("stalled collective write returned %v, want deadline", err)
			}
			// Catch up with rank 1's pending collective so the pair
			// stays aligned, then prove the file is still usable.
			if _, err := f.WriteAtAll(4, data, 0, len(data), mpi.BYTE); err != nil {
				return err
			}
		} else {
			time.Sleep(150 * time.Millisecond)
			// The matching call for the one rank 0 abandoned...
			if _, err := f.WriteAtAll(0, data, 0, len(data), mpi.BYTE); err != nil {
				return err
			}
			// ...and the recovery collective.
			if _, err := f.WriteAtAll(4, data, 0, len(data), mpi.BYTE); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFileAppendAndDeleteOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "append.bin")
	if err := os.WriteFile(path, []byte{9, 9, 9}, 0o644); err != nil {
		t.Fatal(err)
	}
	err := mpi.Run(1, func(env *mpi.Env) error {
		w := env.CommWorld()
		f, err := w.OpenFile(path, mpi.ModeWronly|mpi.ModeAppend|mpi.ModeDeleteOnClose)
		if err != nil {
			return err
		}
		if f.Tell() != 3 {
			return fmt.Errorf("append position = %d, want 3", f.Tell())
		}
		if _, err := f.Write([]byte{7}, 0, 1, mpi.BYTE); err != nil {
			return err
		}
		n, err := f.Size()
		if err != nil {
			return err
		}
		if n != 4 {
			return fmt.Errorf("size = %d, want 4", n)
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("delete-on-close left the file behind: %v", err)
	}
}

// TestFileEtypeMatchAndIreadStatus covers the file-interface
// typematch rule (buffer class must agree with the view's etype, with
// MPI.BYTE matching anything) and the FileStatus accessor that makes
// EOF short reads detectable on the nonblocking collective path.
func TestFileEtypeMatchAndIreadStatus(t *testing.T) {
	path := filepath.Join(t.TempDir(), "etype.bin")
	err := mpi.Run(1, func(env *mpi.Env) error {
		w := env.CommWorld()
		f, err := w.OpenFile(path, mpi.ModeCreate|mpi.ModeRdwr)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := f.SetView(0, mpi.DOUBLE, mpi.DOUBLE); err != nil {
			return err
		}
		// An int32 buffer through a DOUBLE view would silently
		// reinterpret raw bytes; the typematch rule rejects it.
		if _, err := f.WriteAt(0, []int32{1, 2}, 0, 2, mpi.INT); mpi.ClassOf(err) != mpi.ErrType {
			return fmt.Errorf("int buffer through double view: got %v, want MPI_ERR_TYPE", err)
		}
		// MPI.BYTE is the escape hatch on either side.
		if _, err := f.WriteAt(0, make([]byte, 16), 0, 16, mpi.BYTE); err != nil {
			return fmt.Errorf("byte buffer through double view: %v", err)
		}
		// 16 bytes = 2 doubles; a 5-double nonblocking collective read
		// must report the short count through FileStatus.
		buf := make([]float64, 5)
		req, err := f.IreadAtAll(0, buf, 0, 5, mpi.DOUBLE)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		st := req.FileStatus()
		if st == nil || st.GetCount(mpi.DOUBLE) != 2 {
			return fmt.Errorf("FileStatus after EOF Iread = %+v, want count 2", st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFileSetSizeAndView(t *testing.T) {
	path := filepath.Join(t.TempDir(), "view.bin")
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		f, err := w.OpenFile(path, mpi.ModeCreate|mpi.ModeRdwr)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := f.SetSize(64); err != nil {
			return err
		}
		n, err := f.Size()
		if err != nil {
			return err
		}
		if n != 64 {
			return fmt.Errorf("size = %d, want 64", n)
		}
		// A view over OBJECT is rejected; the default view survives.
		if err := f.SetView(0, mpi.OBJECT, mpi.OBJECT); mpi.ClassOf(err) != mpi.ErrArg {
			return fmt.Errorf("object view: got %v, want MPI_ERR_ARG", err)
		}
		disp, et, ft := f.GetView()
		if disp != 0 || et != mpi.BYTE || ft != mpi.BYTE {
			return fmt.Errorf("view after rejected SetView = (%d,%s,%s)", disp, et.Name(), ft.Name())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
