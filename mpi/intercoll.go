package mpi

// Intercommunicator collectives (MPI-2 §7.3.2): rooted operations take
// MPI_ROOT / MPI_PROC_NULL on the group providing the root, and the
// root's rank within the remote group on the other side; all-to-all
// operations deliver each group the contribution of the remote group.
// The implementation composes the local group's collective algorithms
// with a leader-to-leader relay on the reserved collective context, the
// same pattern Merge and Dup already use for their exchanges.

import (
	"gompi/internal/core"
	"gompi/internal/dtype"
)

// Root is the MPI_ROOT marker: on a rooted intercommunicator
// collective, the single process of the origin group that provides (or
// collects) the data passes Root; its group peers pass ProcNull.
const Root = -4

// tagInterColl is the reserved collective-context tag of the rooted
// intercollective relays, distinct from tagInter (Merge/Dup exchanges)
// so a mismatched program fails loudly instead of cross-matching.
const tagInterColl = 0x7fe1

// Barrier blocks until every process of both groups has entered it
// (MPI_Barrier on an intercommunicator). The local barrier establishes
// that the local group is complete; the leader exchange propagates the
// fact across, and its trailing broadcast releases the local group only
// after the remote group is complete too.
func (ic *Intercomm) Barrier() error {
	ic.env.enterCall()
	if err := ic.ok(); err != nil {
		return ic.raise(err)
	}
	if err := ic.cl.Barrier(); err != nil {
		return ic.raise(mapEngineErr(err))
	}
	if _, err := ic.interExchange([]byte{1}); err != nil {
		return ic.raise(mapEngineErr(err))
	}
	return nil
}

// Bcast broadcasts from the root process of one group to every process
// of the other (MPI_Bcast on an intercommunicator). The origin group
// passes Root at the root and ProcNull elsewhere; the destination group
// passes the root's rank within its remote group.
func (ic *Intercomm) Bcast(buf any, offset, count int, d *Datatype, root int) error {
	ic.env.enterCall()
	if err := ic.ok(); err != nil {
		return ic.raise(err)
	}
	if err := ic.checkType(d); err != nil {
		return ic.raise(err)
	}
	switch {
	case root == ProcNull:
		return nil
	case root == Root:
		wire, err := dtype.Pack(nil, buf, offset, count, d.t)
		if err != nil {
			return ic.raise(mapDataErr(err))
		}
		sreq, err := ic.env.proc.Isend(ic.collCtx, ic.rank, ic.remote[0], tagInterColl, wire, core.ModeStandard, false)
		if err != nil {
			return ic.raise(mapEngineErr(err))
		}
		if st := sreq.Wait(); st.Err != nil {
			return ic.raise(mapEngineErr(st.Err))
		}
		return nil
	case root >= 0 && root < len(ic.remote):
		var wire []byte
		if ic.rank == 0 {
			rreq := ic.env.proc.Irecv(ic.collCtx, int32(root), tagInterColl)
			if st := rreq.Wait(); st.Err != nil {
				return ic.raise(mapEngineErr(st.Err))
			}
			wire = rreq.Payload
		}
		wire, err := ic.cl.Bcast(0, wire)
		if err != nil {
			return ic.raise(mapEngineErr(err))
		}
		if _, err := dtype.Unpack(wire, buf, offset, count, d.t); err != nil {
			return ic.raise(mapDataErr(err))
		}
		return nil
	default:
		return ic.raise(errf(ErrRoot, "intercomm bcast root %d: want Root, ProcNull or a remote rank in [0,%d)", root, len(ic.remote)))
	}
}

// Allreduce folds count items with op across each group and delivers
// every process the reduction of the REMOTE group's contributions
// (MPI_Allreduce on an intercommunicator, MPI-2 §7.3.3). Both groups
// call it with the same count and type.
func (ic *Intercomm) Allreduce(
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op,
) error {
	ic.env.enterCall()
	if err := ic.ok(); err != nil {
		return ic.raise(err)
	}
	if err := ic.checkType(d); err != nil {
		return ic.raise(err)
	}
	if err := checkOp(op, d); err != nil {
		return ic.raise(err)
	}
	dense, err := dtype.Extract(sendbuf, soffset, count, d.t)
	if err != nil {
		return ic.raise(mapDataErr(err))
	}
	red, err := ic.cl.Reduce(0, dense, op.op)
	if err != nil {
		return ic.raise(mapEngineErr(err))
	}
	var mine []byte
	if ic.rank == 0 {
		if mine, err = dtype.EncodeDense(red); err != nil {
			return ic.raise(mapDataErr(err))
		}
	}
	remoteWire, err := ic.interExchange(mine)
	if err != nil {
		return ic.raise(mapEngineErr(err))
	}
	remoteDense, err := dtype.DecodeDense(remoteWire, d.t.Class())
	if err != nil {
		return ic.raise(mapDataErr(err))
	}
	return ic.raise(depositFin(recvbuf, roffset, count, d)(remoteDense))
}
