package mpi

// The MPI_T-analogue tools surface (MPI-4 chapter 15 direction):
// enumeration and read-out of the rank's performance variables, live
// get/set of its control variables, and access to the flight recorder.
// Variables self-register by name inside the runtime layers
// ("core.sends_eager", "coll.scheds_parked", ...); this file is only
// the window onto them.

import (
	"sync/atomic"

	"gompi/internal/coll"
	"gompi/internal/obs"
)

// PerfVars enumerates the rank's performance variables — counters,
// gauges and timings — sorted by name. The "coll.pool_workers*" entries
// are process-wide (the shared progress pool serves every in-process
// rank); everything else is this rank's own.
func (e *Env) PerfVars() []obs.VarValue {
	vars := e.proc.Obs().Snapshot()
	po := coll.PoolStats()
	vars = append(vars,
		obs.VarValue{Name: "coll.pool_workers", Class: "gauge", Value: int64(po.Workers), Aux: int64(po.Max)},
		obs.VarValue{Name: "coll.pool_workers_busy", Class: "gauge", Value: int64(po.Busy), Aux: int64(po.PeakBusy)},
	)
	return vars
}

// PerfVar reads one performance variable by name.
func (e *Env) PerfVar(name string) (int64, bool) {
	return e.proc.Obs().Value(name)
}

// ControlVars enumerates the rank's writable control variables with
// their live values ("core.eager_limit", "coll.pool_max_workers", ...).
func (e *Env) ControlVars() []obs.ControlValue {
	// The coll-layer cvar registers on first collective; touching the
	// world communicator's collective context here makes enumeration
	// complete even before any collective ran.
	e.world.cl.Warm()
	return e.proc.Obs().Controls()
}

// SetControlVar writes one control variable by name. The write takes
// effect immediately — e.g. lowering "core.eager_limit" reroutes the
// very next send through the rendezvous protocol.
func (e *Env) SetControlVar(name string, v int64) error {
	e.world.cl.Warm()
	if err := e.proc.Obs().SetControl(name, v); err != nil {
		return errf(ErrArg, "%v", err)
	}
	return nil
}

// TraceEnabled reports whether this rank's flight recorder is on.
func (e *Env) TraceEnabled() bool { return e.proc.Recorder() != nil }

// DumpTrace flushes the rank's flight-recorder ring to
// dir/gompi-trace.<rank>.bin and returns the path. It is what Finalize
// runs automatically when GOMPI_TRACE is set; programmatic runs
// (RunOptions.Trace) call it wherever they want the dump. An error is
// returned when tracing is disabled.
func (e *Env) DumpTrace(dir string) (string, error) {
	r := e.proc.Recorder()
	if r == nil {
		return "", errf(ErrOther, "tracing is not enabled (GOMPI_TRACE / RunOptions.Trace)")
	}
	path, err := r.DumpFile(dir)
	if err != nil {
		return "", errf(ErrIntern, "dumping trace: %v", err)
	}
	return path, nil
}

// envSpanSeq mints ids for binding-level trace spans (Spawn).
var envSpanSeq atomic.Uint32

// span opens a binding-level trace span and returns its closer.
func (e *Env) span(kind obs.EventKind, val int64) func() {
	r := e.proc.Recorder()
	if r == nil {
		return func() {}
	}
	id := envSpanSeq.Add(1)
	r.Begin(kind, id, val)
	return func() { r.End(kind, id, 0) }
}

// newRecorder builds the rank's flight recorder when tracing was
// requested (explicitly or via GOMPI_TRACE); nil otherwise.
func newRecorder(rank int, want bool) *obs.Recorder {
	if !want && !obs.EnvEnabled() {
		return nil
	}
	return obs.NewRecorder(rank, obs.RingFromEnv())
}
