package mpi

// ULFM-style fault tolerance (User-Level Failure Mitigation, the MPI
// fault-tolerance working group's extension set). PR 6 built the
// detection half: a dead peer surfaces as ErrProcFailed on the
// operations that depended on it, while traffic with live peers keeps
// working. This file is the recovery half — the application-driven
// repair loop:
//
//	detect   an operation returns ErrProcFailed
//	ack      c.FailureAck() acknowledges the failures seen so far
//	revoke   c.Revoke() poisons the communicator on every member, so
//	         ranks blocked in unrelated operations also reach recovery
//	agree    c.Agree(flags) decides collectively despite failures
//	shrink   c.Shrink() builds a fresh, working communicator from the
//	         survivors
//
// Nothing here is automatic: like ULFM, the library only guarantees
// that failures are reported and that these five primitives work on a
// failing communicator; policy (when to revoke, what state to restore)
// belongs to the application. See examples/jacobi's -survive mode for
// the loop in use, restoring from a PR 5 checkpoint after Shrink.

// FailureAck acknowledges every failure of a member of this
// communicator known locally at the time of the call
// (MPIX_Comm_failure_ack). Acknowledged failures stop Agree from
// raising ErrProcFailed for them, and FailedGroup reports them.
func (c *Comm) FailureAck() error {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return c.raise(err)
	}
	down := make(map[int]bool)
	for _, w := range c.env.proc.DownPeers() {
		down[w] = true
	}
	c.ft.mu.Lock()
	defer c.ft.mu.Unlock()
	if c.ft.acked == nil {
		c.ft.acked = make(map[int]bool)
	}
	for gr, w := range c.group {
		if down[w] {
			c.ft.acked[gr] = true
		}
	}
	return nil
}

// FailedGroup returns the group of members whose failure this rank has
// acknowledged (MPIX_Comm_failure_get_acked). The group grows
// monotonically across FailureAck calls.
func (c *Comm) FailedGroup() (*Group, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return nil, c.raise(err)
	}
	c.ft.mu.Lock()
	defer c.ft.mu.Unlock()
	var ranks []int
	for gr, w := range c.group {
		if c.ft.acked[gr] {
			ranks = append(ranks, w)
		}
	}
	return &Group{ranks: ranks, me: c.env.proc.Rank()}, nil
}

// ackedView snapshots the acked failures as a group-rank bitmap.
func (c *Comm) ackedView() []bool {
	view := make([]bool, len(c.group))
	c.ft.mu.Lock()
	for gr := range c.ft.acked {
		if gr >= 0 && gr < len(view) {
			view[gr] = true
		}
	}
	c.ft.mu.Unlock()
	return view
}

// Revoke poisons the communicator on every member it can reach
// (MPIX_Comm_revoke): in-flight and future operations — sends,
// receives, probes, collectives — fail with ErrRevoked, so members
// blocked on a dead or absent peer reach the recovery path instead of
// deadlocking. The notice propagates at the engine level and each
// member re-floods it on first receipt, so it survives the revoking
// rank itself dying mid-broadcast. Revocation is permanent: the only
// way forward is Shrink (or Agree, whose recovery-tagged traffic is
// exempt from the poisoning).
func (c *Comm) Revoke() error {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return c.raise(err)
	}
	c.env.proc.Revoke(c.ptpCtx)
	return nil
}

// Revoked reports whether this communicator has been revoked, by this
// rank or by a notice received from any member.
func (c *Comm) Revoked() bool {
	if c == nil || c.env == nil {
		return false
	}
	return c.env.proc.ContextRevoked(c.ptpCtx)
}

// Agree computes the bitwise AND of flags across the communicator's
// surviving members (MPIX_Comm_agree), completing despite member
// failures and on revoked communicators: its traffic is recovery-tagged
// and routes around dead ranks. If the agreement observes a failure
// this rank has not acknowledged, the folded flags are returned
// together with ErrProcFailed — the ULFM contract; the caller acks
// (FailureAck) and retries, and the retry reconverges. Like every
// collective, all live members must call Agree in the same program
// order.
func (c *Comm) Agree(flags uint32) (uint32, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return flags, c.raise(err)
	}
	view := c.ackedView()
	out, _, merged, err := c.cl.Agree(flags, 0, view)
	if err != nil {
		return flags, c.raise(mapEngineErr(err))
	}
	for gr, failed := range merged {
		if failed && !view[gr] {
			return out, c.raise(errf(ErrProcFailed,
				"agreement observed unacknowledged failure of rank %d on %q", gr, c.name))
		}
	}
	return out, nil
}

// Shrink builds a fresh communicator over the surviving members
// (MPIX_Comm_shrink): the members agree — fault-tolerantly, and
// regardless of revocation — on the union of known failures and on a
// fresh context-id base, then rebuild the rank mapping over the
// survivors in their old relative order. The result is a fully working
// communicator: fresh contexts, nothing revoked, ready for
// point-to-point and collective traffic.
//
// Every surviving member must call Shrink in the same program order.
// The survivor set is the agreed failure view; a member that dies
// during the final agreement round may be reported to some survivors
// only — the usual ULFM answer applies (the next operation on the
// shrunken communicator reports the stale member as failed, and the
// application shrinks again).
func (c *Intracomm) Shrink() (*Intracomm, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return nil, c.raise(err)
	}
	// Merge everything known locally: acked failures plus any deaths
	// the engine has observed that were never acked.
	view := c.ackedView()
	down := make(map[int]bool)
	for _, w := range c.env.proc.DownPeers() {
		down[w] = true
	}
	for gr, w := range c.group {
		if down[w] {
			view[gr] = true
		}
	}
	cand := c.env.proc.AllocContexts()
	_, base, merged, err := c.cl.Agree(0, cand, view)
	if err != nil {
		return nil, c.raise(mapEngineErr(err))
	}
	c.env.proc.CommitContexts(base)

	survivors := make([]int, 0, len(c.group))
	myRank := -1
	for gr, w := range c.group {
		if merged[gr] {
			continue
		}
		if gr == c.rank {
			myRank = len(survivors)
		}
		survivors = append(survivors, w)
	}
	if myRank < 0 {
		return nil, c.raise(errf(ErrIntern, "shrink excluded the local rank from %q", c.name))
	}
	return newIntracomm(c.env, survivors, myRank, base, c.name+".shrink"), nil
}
