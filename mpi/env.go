// Package mpi is an object-oriented Go binding of MPI 1.1 modelled on
// mpiJava (Baker, Carpenter, Fox, Ko, Lim — IPPS 1999), which in turn
// lifts its class hierarchy from the MPI-2 C++ binding:
//
//	MPI (module)  -> package mpi + the per-rank *Env handle
//	Comm          -> Comm, with Intracomm, Intercomm, Cartcomm, Graphcomm
//	Group, Datatype, Status, Request, Prequest, Op -> same-named types
//
// Communication calls keep the binding's (buf, offset, count, datatype,
// rank, tag) signatures over one-dimensional slices of primitive types.
// Following the Java binding's conventions (paper §2.1): outputs come
// back as return values, conditionally created objects are nil handles on
// failure, array results carry their own lengths, and Status has the
// extra Index field set by WaitAny/TestAny. Go's error returns replace
// the Java binding's exceptions.
//
// Where mpiJava wraps a native MPI through JNI, this package sits on a
// from-scratch runtime: internal/core (matching + protocols),
// internal/coll (collective algorithms) and internal/transport (shared
// memory and TCP devices — the paper's SM and DM modes).
package mpi

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gompi/internal/coll"
	"gompi/internal/core"
	"gompi/internal/dynproc"
	"gompi/internal/obs"
	"gompi/internal/spin"
	"gompi/internal/transport"
)

// Special rank and argument values (MPI 1.1 §3.2.4, §5).
const (
	// ProcNull is the null process: sends to it succeed immediately,
	// receives from it return an empty status.
	ProcNull = -1
	// AnySource matches a message from any source rank.
	AnySource = -2
	// AnyTag matches a message with any tag.
	AnyTag = -1
	// Undefined is returned where MPI specifies MPI_UNDEFINED (e.g.
	// GetCount on a partial item, Split colour for "no new comm").
	Undefined = -32766
	// TagUB is the largest valid user tag.
	TagUB = 1<<30 - 1
)

// Comm comparison results (MPI_Comm_compare / MPI_Group_compare).
const (
	Ident     = 0 // same object
	Congruent = 1 // same group and order, different context
	Similar   = 2 // same members, different order
	Unequal   = 3
)

// Topology type constants (MPI_Topo_test).
const (
	GraphTopology = 1
	CartTopology  = 2
)

// Env is one rank's MPI environment: the analogue of the static MPI
// class of the Java binding, made per-rank so that SM mode can run many
// ranks as goroutines in one process. It is created by Init (process
// mode) or handed to each rank's function by Run (in-process SPMD mode).
type Env struct {
	proc  *core.Proc
	fab   *dynproc.Fabric
	world *Intracomm
	self  *Intracomm

	start    time.Time
	procName string

	pool     attachPool
	overhead atomic.Int64 // emulated binding-crossing cost, ns/call

	// Dynamic-process state (dynproc.go): open rendezvous ports by
	// name, and the cached connection to a spawning parent world.
	portsMu   sync.Mutex
	ports     map[string]*dynproc.Port
	parentSet sync.Once
	parent    *Intercomm
	parentErr error

	finalized atomic.Bool
	closers   []func() error // extra teardown (launch plumbing)
}

// newEnv assembles an environment over a device. The device is wrapped
// in the dynamic-process fabric, so the engine above can reach peers
// admitted after launch (Connect/Accept/Spawn) exactly like launch-time
// ones.
func newEnv(dev transport.Device, cfg core.Config) *Env {
	host, _ := os.Hostname()
	if host == "" {
		host = "localhost"
	}
	fab := dynproc.NewFabric(dev)
	fab.SetRecorder(cfg.Recorder)
	e := &Env{
		proc:     core.NewProc(fab, cfg),
		fab:      fab,
		start:    time.Now(),
		procName: fmt.Sprintf("%s:rank%d", host, dev.Rank()),
	}
	e.pool.cond = sync.NewCond(&e.pool.mu)
	worldGroup := make([]int, dev.Size())
	for i := range worldGroup {
		worldGroup[i] = i
	}
	e.world = newIntracomm(e, worldGroup, dev.Rank(), 0, "MPI.COMM_WORLD")
	e.self = newIntracomm(e, []int{dev.Rank()}, 0, 2, "MPI.COMM_SELF")
	e.proc.CommitContexts(2) // world:(0,1) self:(2,3); counter continues at 4
	installEnvAttrs(e.world)
	return e
}

// CommWorld returns the all-ranks communicator (MPI.COMM_WORLD).
func (e *Env) CommWorld() *Intracomm { return e.world }

// CommSelf returns the single-process communicator (MPI.COMM_SELF).
func (e *Env) CommSelf() *Intracomm { return e.self }

// Rank is shorthand for CommWorld().Rank().
func (e *Env) Rank() int { return e.proc.Rank() }

// Size is shorthand for CommWorld().Size().
func (e *Env) Size() int { return e.proc.Size() }

// Wtime returns elapsed wall-clock seconds from an arbitrary (per-rank)
// origin, on Go's monotonic clock (MPI_Wtime).
func (e *Env) Wtime() float64 { return time.Since(e.start).Seconds() }

// Wtick returns the resolution of Wtime in seconds (MPI_Wtick).
func (e *Env) Wtick() float64 { return 1e-9 }

// GetProcessorName identifies the processor this rank runs on
// (MPI_Get_processor_name).
func (e *Env) GetProcessorName() string { return e.procName }

// Initialized reports whether the environment is live
// (MPI_Initialized && !MPI_Finalized).
func (e *Env) Initialized() bool { return !e.finalized.Load() }

// Finalize runs a world barrier and shuts the runtime down (paper §2.1:
// Comm and Request keep explicit Free; everything else is left to the
// garbage collector, as in the Java binding).
func (e *Env) Finalize() error {
	if e.finalized.Swap(true) {
		return errf(ErrOther, "Finalize called twice")
	}
	// The closing barrier keeps a fast rank from tearing the fabric down
	// under peers still draining traffic. On a revoked world it can never
	// complete (and ULFM applications end on a shrunken communicator of
	// their own); skip straight to teardown.
	var barrierErr error
	if !e.proc.ContextRevoked(e.world.ptpCtx) {
		barrierErr = e.world.cl.Barrier()
	}
	e.proc.Recorder().Instant(obs.EvFinalize, uint32(e.proc.Rank()), 0)
	err := e.proc.Close()
	for _, c := range e.closers {
		if cerr := c(); err == nil {
			err = cerr
		}
	}
	// Environment-driven tracing (mpirun -trace, or a hand-exported
	// GOMPI_TRACE) flushes the ring here, after the engine is quiescent.
	// Programmatic traces (RunOptions.Trace without the env var) are
	// dumped by the caller via DumpTrace, so tests don't litter their
	// working directory.
	if e.proc.Recorder() != nil && obs.EnvEnabled() {
		if _, derr := e.proc.Recorder().DumpFile(obs.DirFromEnv()); derr != nil && err == nil {
			err = derr
		}
	}
	if barrierErr != nil {
		return barrierErr
	}
	return err
}

// EngineStats is a point-in-time copy of the rank's progress-engine and
// frame-pool counters: the runtime observability surface for the
// zero-copy hot path. BytesCopied against BytesRecv measures how much
// receive traffic still pays an engine-side copy (receive-into
// deposits); RecvsZeroCopy counts receives completed by frame handover;
// PoolHitRate is the fraction of frame-buffer requests served by
// recycling rather than allocation (process-wide).
type EngineStats struct {
	SendsEager, SendsSync, SendsRndv uint64
	BytesSent, BytesRecv             uint64
	RecvsMatched, RecvsUnexpected    uint64
	BytesCopied                      uint64
	RecvsZeroCopy                    uint64
	Cancelled                        uint64
	PeersLost                        uint64
	PoolHitRate                      float64

	// Collective-layer counters (this rank): schedule activations, and
	// how often the progress-pool executor parked a schedule waiting
	// for a message versus re-enqueued one whose wait completed.
	CollSchedsStarted uint64
	CollSchedsParked  uint64
	CollSchedsResumed uint64

	// Shared progress-pool occupancy (process-wide: one pool serves
	// every in-process rank): workers currently executing a schedule,
	// the lifetime peak, and the worker cap.
	PoolWorkersBusy int
	PoolWorkersPeak int
	PoolWorkersMax  int

	// Devices breaks the traffic down by transport medium — one entry
	// per device behind this rank's endpoint ("shm", "tcp", "chan"),
	// each carrying its own frame/byte counters and buffer-pool hit
	// rate (the shared-segment arena for "shm", the process pool
	// otherwise). A hybrid run reports one entry per medium.
	DeviceStats []DeviceStats
}

// DeviceStats is one transport medium's counter snapshot.
type DeviceStats struct {
	// Device names the medium ("shm", "tcp", "chan").
	Device string
	// FramesSent/FramesRecv count frames through the endpoint.
	FramesSent, FramesRecv uint64
	// BytesSent/BytesRecv total frame bytes (header + payload).
	BytesSent, BytesRecv uint64
	// PoolHitRate is the fraction of the medium's buffer-pool requests
	// served by recycling rather than allocation.
	PoolHitRate float64
}

// EngineStats snapshots the rank's hot-path counters. It is a typed
// view over the same obs.Registry PerfVars enumerates: every field here
// is readable by name ("core.sends_eager", "coll.scheds_parked", ...)
// through the tools interface.
func (e *Env) EngineStats() EngineStats {
	s := e.proc.StatsSnapshot()
	reg := e.proc.Obs()
	started, _ := reg.Value("coll.scheds_started")
	parked, _ := reg.Value("coll.scheds_parked")
	resumed, _ := reg.Value("coll.scheds_resumed")
	po := coll.PoolStats()
	devs := make([]DeviceStats, 0, len(s.Devices))
	for _, d := range s.Devices {
		devs = append(devs, DeviceStats{
			Device:      d.Name,
			FramesSent:  d.FramesSent,
			FramesRecv:  d.FramesRecv,
			BytesSent:   d.BytesSent,
			BytesRecv:   d.BytesRecv,
			PoolHitRate: d.Pool.HitRate(),
		})
	}
	return EngineStats{
		SendsEager:      s.SendsEager,
		SendsSync:       s.SendsSync,
		SendsRndv:       s.SendsRndv,
		BytesSent:       s.BytesSent,
		BytesRecv:       s.BytesRecv,
		RecvsMatched:    s.RecvsMatched,
		RecvsUnexpected: s.RecvsUnexpected,
		BytesCopied:     s.BytesCopied,
		RecvsZeroCopy:   s.RecvsZeroCopy,
		Cancelled:       s.Cancelled,
		PeersLost:       s.PeersLost,
		PoolHitRate:     s.Pool.HitRate(),
		DeviceStats:     devs,

		CollSchedsStarted: uint64(started),
		CollSchedsParked:  uint64(parked),
		CollSchedsResumed: uint64(resumed),
		PoolWorkersBusy:   po.Busy,
		PoolWorkersPeak:   po.PeakBusy,
		PoolWorkersMax:    po.Max,
	}
}

// SetBindingOverhead injects an artificial cost into every communication
// call on this environment — the benchmark model of the JNI/JVM crossing
// the paper identifies as the dominant source of mpiJava's constant
// per-call overhead (§4.6). Zero (the default) disables it.
func (e *Env) SetBindingOverhead(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e.overhead.Store(int64(d))
}

// enterCall charges the emulated binding-crossing cost. It sits at the
// top of every public communication method, where mpiJava's JNI stub
// prologue would run.
func (e *Env) enterCall() {
	if ns := e.overhead.Load(); ns > 0 {
		spin.Wait(time.Duration(ns))
	}
}

// attachPool is the Bsend attach-buffer accounting (MPI_Buffer_attach).
// The binding packs every outgoing message anyway, so the pool tracks
// capacity rather than owning storage.
type attachPool struct {
	mu    sync.Mutex
	cond  *sync.Cond
	total int
	used  int
}

// BufferAttach provides size bytes of buffer space for buffered-mode
// sends (MPI_Buffer_attach).
func (e *Env) BufferAttach(size int) error {
	if size < 0 {
		return errf(ErrArg, "negative buffer size %d", size)
	}
	e.pool.mu.Lock()
	defer e.pool.mu.Unlock()
	if e.pool.total > 0 {
		return errf(ErrBuffer, "a buffer is already attached")
	}
	e.pool.total = size
	return nil
}

// BufferDetach waits for all pending buffered sends to drain, detaches
// the buffer and returns its size (MPI_Buffer_detach).
func (e *Env) BufferDetach() (int, error) {
	e.pool.mu.Lock()
	defer e.pool.mu.Unlock()
	if e.pool.total == 0 {
		return 0, errf(ErrBuffer, "no buffer attached")
	}
	for e.pool.used > 0 {
		e.pool.cond.Wait()
	}
	n := e.pool.total
	e.pool.total = 0
	return n, nil
}

func (e *Env) reserveBuffer(n int) error {
	e.pool.mu.Lock()
	defer e.pool.mu.Unlock()
	if e.pool.used+n > e.pool.total {
		return errf(ErrBuffer, "buffered send of %d bytes exceeds attached buffer (%d of %d in use)",
			n, e.pool.used, e.pool.total)
	}
	e.pool.used += n
	return nil
}

func (e *Env) releaseBuffer(n int) {
	e.pool.mu.Lock()
	e.pool.used -= n
	e.pool.cond.Broadcast()
	e.pool.mu.Unlock()
}
