package mpi_test

import (
	"runtime"
	"testing"
	"time"

	"gompi/internal/coll"
	"gompi/mpi"
)

// TestPersistentPingPong: a persistent send/recv pair cycled many
// times. Each activation must re-read the send buffer as of Start and
// deposit into the fixed receive buffer, round after round — the
// MPI_Send_init/MPI_Recv_init contract.
func TestPersistentPingPong(t *testing.T) {
	const rounds = 100
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank := w.Rank()
		peer := 1 - rank

		out := make([]int64, 4)
		in := make([]int64, 4)
		send, err := w.SendInit(out, 0, len(out), mpi.LONG, peer, 7)
		if err != nil {
			return err
		}
		defer send.Free()
		recv, err := w.RecvIntoInit(in, 0, len(in), mpi.LONG, peer, 7)
		if err != nil {
			return err
		}
		defer recv.Free()

		for r := 0; r < rounds; r++ {
			for i := range out {
				out[i] = int64(rank*1000_000 + r*100 + i)
			}
			if err := mpi.StartAll([]*mpi.PersistentRequest{recv, send}); err != nil {
				return err
			}
			if _, err := send.Wait(); err != nil {
				return err
			}
			st, err := recv.Wait()
			if err != nil {
				return err
			}
			if got := st.GetCount(mpi.LONG); got != len(in) {
				t.Errorf("rank %d round %d: count %d, want %d", rank, r, got, len(in))
			}
			for i, v := range in {
				if want := int64(peer*1000_000 + r*100 + i); v != want {
					t.Errorf("rank %d round %d: in[%d] = %d, want %d", rank, r, i, v, want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPersistentStartBeforeCompleteRejected: starting an activation
// while the previous one is still in flight is a local error and must
// not corrupt the operation.
func TestPersistentStartBeforeCompleteRejected(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank := w.Rank()

		buf := []int32{int32(rank)}
		res := []int32{0}
		red, err := w.AllreduceInit(buf, 0, res, 0, 1, mpi.INT, mpi.SUM)
		if err != nil {
			return err
		}
		defer red.Free()

		if err := red.Start(); err != nil {
			return err
		}
		if err := red.Start(); mpi.ClassOf(err) != mpi.ErrRequest {
			t.Errorf("rank %d: second Start while active: %v, want ErrRequest", rank, err)
		}
		if _, err := red.Wait(); err != nil {
			return err
		}
		if res[0] != 1 {
			t.Errorf("rank %d: sum %d, want 1", rank, res[0])
		}
		// The rejected Start must not have consumed the activation: the
		// request is startable again and produces the right answer.
		buf[0] = int32(rank + 10)
		if err := red.Start(); err != nil {
			return err
		}
		if _, err := red.Wait(); err != nil {
			return err
		}
		if res[0] != 21 {
			t.Errorf("rank %d: second sum %d, want 21", rank, res[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPersistentMixedWithOneShot: persistent collectives interleaved
// with one-shot blocking and nonblocking collectives and persistent
// point-to-point on the same communicator, all tag-aligned. Completes
// with WaitAllAny over the mixed request kinds.
func TestPersistentMixedWithOneShot(t *testing.T) {
	const rounds = 20
	err := mpi.Run(3, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank, size := w.Rank(), w.Size()
		peer := (rank + 1) % size
		src := (rank + size - 1) % size

		val := []int64{0}
		sum := []int64{0}
		red, err := w.AllreduceInit(val, 0, sum, 0, 1, mpi.LONG, mpi.SUM)
		if err != nil {
			return err
		}
		defer red.Free()

		pout := []int32{0}
		pin := []int32{0}
		psend, err := w.SendInit(pout, 0, 1, mpi.INT, peer, 3)
		if err != nil {
			return err
		}
		defer psend.Free()
		precv, err := w.RecvIntoInit(pin, 0, 1, mpi.INT, src, 3)
		if err != nil {
			return err
		}
		defer precv.Free()

		for r := 0; r < rounds; r++ {
			val[0] = int64(rank + r)
			pout[0] = int32(rank*100 + r)

			// One-shot nonblocking collective, persistent collective and
			// persistent point-to-point all in flight at once.
			bc := make([]float64, 1)
			if rank == r%size {
				bc[0] = float64(r) + 0.5
			}
			ibc, err := w.Ibcast(bc, 0, 1, mpi.DOUBLE, r%size)
			if err != nil {
				return err
			}
			if err := red.Start(); err != nil {
				return err
			}
			if err := mpi.StartAll([]*mpi.PersistentRequest{precv, psend}); err != nil {
				return err
			}

			if _, err := mpi.WaitAllAny([]mpi.AnyRequest{ibc, red, precv, psend}); err != nil {
				return err
			}

			wantSum := int64(0)
			for p := 0; p < size; p++ {
				wantSum += int64(p + r)
			}
			if sum[0] != wantSum {
				t.Errorf("rank %d round %d: persistent sum %d, want %d", rank, r, sum[0], wantSum)
			}
			if bc[0] != float64(r)+0.5 {
				t.Errorf("rank %d round %d: bcast %v, want %v", rank, r, bc[0], float64(r)+0.5)
			}
			if want := int32(src*100 + r); pin[0] != want {
				t.Errorf("rank %d round %d: p2p %d, want %d", rank, r, pin[0], want)
			}

			// A one-shot blocking collective between activations keeps the
			// communicator's instance numbering aligned with the cached
			// persistent plans.
			got := []int64{0}
			if err := w.Allreduce(val, 0, got, 0, 1, mpi.LONG, mpi.MAX); err != nil {
				return err
			}
			if want := int64(size - 1 + r); got[0] != want {
				t.Errorf("rank %d round %d: one-shot max %d, want %d", rank, r, got[0], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPersistentStartOnRevoked: Start on a revoked communicator
// reports ErrRevoked (ULFM semantics) instead of hanging.
func TestPersistentStartOnRevoked(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank := w.Rank()

		buf := []int64{int64(rank)}
		res := []int64{0}
		red, err := w.AllreduceInit(buf, 0, res, 0, 1, mpi.LONG, mpi.SUM)
		if err != nil {
			return err
		}
		send, err := w.SendInit(buf, 0, 1, mpi.LONG, 1-rank, 5)
		if err != nil {
			return err
		}

		// One healthy activation first.
		if err := red.Start(); err != nil {
			return err
		}
		if _, err := red.Wait(); err != nil {
			return err
		}
		if res[0] != 1 {
			t.Errorf("rank %d: pre-revoke sum %d, want 1", rank, res[0])
		}

		if err := w.Revoke(); err != nil {
			return err
		}
		if err := red.Start(); mpi.ClassOf(err) != mpi.ErrRevoked {
			t.Errorf("rank %d: Start(collective) on revoked comm: %v, want ErrRevoked", rank, err)
		}
		if err := send.Start(); mpi.ClassOf(err) != mpi.ErrRevoked {
			t.Errorf("rank %d: Start(p2p) on revoked comm: %v, want ErrRevoked", rank, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestProgressPoolGoroutineBound: the shared progress pool keeps the
// process at O(cores) progress goroutines no matter how many
// communicators exist or how many collectives are in flight — the
// tentpole invariant of the pooled engine. 1000 idle communicators
// contribute no goroutines; 64 collectives parked mid-schedule occupy
// no pool worker while they wait for remote traffic.
func TestProgressPoolGoroutineBound(t *testing.T) {
	const (
		idleComms = 1000
		inFlight  = 64
	)
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank := w.Rank()

		comms := make([]*mpi.Intracomm, idleComms)
		for i := range comms {
			c, err := w.Dup()
			if err != nil {
				return err
			}
			comms[i] = c
		}

		if rank == 0 {
			// Rank 0 holds back so rank 1's collectives park waiting for
			// our contributions; the pause bounds how long they idle.
			time.Sleep(300 * time.Millisecond)
			reqs := make([]*mpi.CollRequest, inFlight)
			for i := 0; i < inFlight; i++ {
				r, err := comms[i].Iallreduce([]int64{1}, 0, []int64{0}, 0, 1, mpi.LONG, mpi.SUM)
				if err != nil {
					return err
				}
				reqs[i] = r
			}
			for _, r := range reqs {
				if _, err := r.Wait(); err != nil {
					return err
				}
			}
			return nil
		}

		before := runtime.NumGoroutine()
		reqs := make([]*mpi.CollRequest, inFlight)
		for i := 0; i < inFlight; i++ {
			r, err := comms[i].Iallreduce([]int64{1}, 0, []int64{0}, 0, 1, mpi.LONG, mpi.SUM)
			if err != nil {
				return err
			}
			reqs[i] = r
		}
		// Let the pool drain the runnable schedules to their first gate,
		// where they park (rank 0 has not contributed yet).
		time.Sleep(100 * time.Millisecond)
		during := runtime.NumGoroutine()

		// With per-schedule runner goroutines this would be ≥ before +
		// inFlight; the pool bound is its worker cap plus a little slack
		// for unrelated runtime goroutines starting up.
		if limit := before + coll.MaxPoolWorkers() + 8; during > limit {
			t.Errorf("goroutines: %d in flight took %d -> %d, want <= %d (pool cap %d)",
				inFlight, before, during, limit, coll.MaxPoolWorkers())
		}

		for _, r := range reqs {
			if _, err := r.Wait(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
