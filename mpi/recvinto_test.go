package mpi_test

import (
	"testing"

	"gompi/mpi"
)

type fahrenheit float64

func TestRecvIntoBasic(t *testing.T) {
	run2(t, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 0 {
			return w.Send([]float64{1.5, 2.5, 3.5}, 0, 3, mpi.DOUBLE, 1, 1)
		}
		buf := make([]float64, 3)
		st, err := w.RecvInto(buf, 0, 3, mpi.DOUBLE, 0, 1)
		if err != nil {
			return err
		}
		if buf[0] != 1.5 || buf[2] != 3.5 {
			t.Errorf("RecvInto buffer %v", buf)
		}
		if n := st.GetCount(mpi.DOUBLE); n != 3 {
			t.Errorf("GetCount %d, want 3", n)
		}
		return nil
	})
}

func TestRecvIntoTruncateSemantics(t *testing.T) {
	run2(t, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 0 {
			return w.Send(make([]int32, 8), 0, 8, mpi.INT, 1, 2)
		}
		buf := make([]int32, 4)
		st, err := w.RecvInto(buf, 0, 4, mpi.INT, 0, 2)
		if err == nil || mpi.ClassOf(err) != mpi.ErrTruncate {
			t.Errorf("RecvInto overflow error %v, want ErrTruncate class", err)
		}
		// The buffer section is filled to capacity; Bytes reports the
		// full incoming message, matching the classic path.
		if st != nil && st.GetCount(mpi.INT) != 4 {
			t.Errorf("truncated count %d, want 4", st.GetCount(mpi.INT))
		}
		if st != nil && st.Bytes() != 32 {
			t.Errorf("truncated Bytes %d, want full 32", st.Bytes())
		}
		return nil
	})
}

// TestRecvIntoMisalignedPayload pins parity with the classic path: a
// payload that is not a whole number of elements is a wire-format
// error (ErrIntern class), not a silent partial deposit.
func TestRecvIntoMisalignedPayload(t *testing.T) {
	run2(t, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 0 {
			return w.Send(make([]byte, 9), 0, 9, mpi.BYTE, 1, 9)
		}
		buf := make([]float64, 2)
		_, err := w.RecvInto(buf, 0, 2, mpi.DOUBLE, 0, 9)
		if err == nil || mpi.ClassOf(err) != mpi.ErrIntern {
			t.Errorf("misaligned RecvInto error %v, want ErrIntern class", err)
		}
		return nil
	})
}

func TestIrecvIntoOffsetSection(t *testing.T) {
	run2(t, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 0 {
			return w.Send([]int64{7, 8}, 0, 2, mpi.LONG, 1, 3)
		}
		buf := []int64{-1, -1, -1, -1}
		req, err := w.IrecvInto(buf, 1, 2, mpi.LONG, 0, 3)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		want := []int64{-1, 7, 8, -1}
		for i := range want {
			if buf[i] != want[i] {
				t.Errorf("section deposit %v, want %v", buf, want)
				break
			}
		}
		return nil
	})
}

// TestRecvIntoStridedFallback checks that non-contiguous datatypes fall
// back to the staging path transparently.
func TestRecvIntoStridedFallback(t *testing.T) {
	run2(t, func(env *mpi.Env) error {
		w := env.CommWorld()
		col, err := mpi.TypeVector(3, 1, 2, mpi.DOUBLE)
		if err != nil {
			return err
		}
		col.Commit()
		if w.Rank() == 0 {
			return w.Send([]float64{1, 2, 3}, 0, 3, mpi.DOUBLE, 1, 4)
		}
		buf := make([]float64, 6)
		if _, err := w.RecvInto(buf, 0, 1, col, 0, 4); err != nil {
			return err
		}
		if buf[0] != 1 || buf[2] != 2 || buf[4] != 3 {
			t.Errorf("strided RecvInto %v", buf)
		}
		return nil
	})
}

// TestClassicNamedPrimitive checks the ROADMAP item end to end in the
// classic API: `type fahrenheit float64` buffers travel on the DOUBLE
// wire format in both directions and interoperate with native buffers.
func TestClassicNamedPrimitive(t *testing.T) {
	run2(t, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 0 {
			// Named out, native back.
			if err := w.Send([]fahrenheit{98.6, 212}, 0, 2, mpi.DOUBLE, 1, 5); err != nil {
				return err
			}
			in := make([]fahrenheit, 2)
			if _, err := w.Recv(in, 0, 2, mpi.DOUBLE, 1, 6); err != nil {
				return err
			}
			if in[0] != 32 || in[1] != -40 {
				t.Errorf("named recv %v", in)
			}
			return nil
		}
		in := make([]float64, 2)
		if _, err := w.Recv(in, 0, 2, mpi.DOUBLE, 0, 5); err != nil {
			return err
		}
		if in[0] != 98.6 || in[1] != 212 {
			t.Errorf("native recv of named send %v", in)
		}
		return w.Send([]fahrenheit{32, -40}, 0, 2, mpi.DOUBLE, 0, 6)
	})
}

// TestRecvIntoNamedPrimitive combines both fast paths: a named
// primitive buffer receiving through the zero-copy into path.
func TestRecvIntoNamedPrimitive(t *testing.T) {
	run2(t, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 0 {
			return w.Send([]float64{451}, 0, 1, mpi.DOUBLE, 1, 7)
		}
		buf := make([]fahrenheit, 1)
		if _, err := w.RecvInto(buf, 0, 1, mpi.DOUBLE, 0, 7); err != nil {
			return err
		}
		if buf[0] != 451 {
			t.Errorf("named RecvInto %v", buf)
		}
		return nil
	})
}
