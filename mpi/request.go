package mpi

import (
	"context"
	"errors"
	"sync"

	"gompi/internal/coll"
	"gompi/internal/core"
	"gompi/internal/dtype"
	"gompi/internal/transport"
)

// Request is a handle on a pending non-blocking operation. Following the
// paper (§2.1), Request — like Comm — keeps an explicit Free; all other
// classes leave resource release to the garbage collector.
type Request struct {
	env  *Env
	creq *core.Request // nil once freed, or for pre-completed requests

	// Receive completion parameters.
	isRecv  bool
	into    bool // receive-into: payload already in buf, no unpack
	buf     any
	offset  int
	count   int
	dt      *Datatype
	recvNul bool // receive from ProcNull: complete immediately, empty

	pre *Status // pre-completed (ProcNull ops, buffered sends)

	once sync.Once
	st   *Status
	err  error
}

func preCompleted(e *Env, st *Status) *Request {
	return &Request{env: e, pre: st}
}

// recvStatus builds the user-visible status of a completed core
// receive: the shared completion trichotomy of the blocking and
// non-blocking paths. For receive-into completions the elements are
// derived from the deposited byte count (the engine already placed the
// bytes); otherwise the wire payload is unpacked into the buffer
// section here.
func recvStatus(cst *core.Status, into bool, payload []byte, buf any, offset, count int, d *Datatype) (*Status, error) {
	st := &Status{Source: cst.SourceGroup, Tag: cst.Tag, bytes: cst.Bytes, elements: -1}
	var err error
	switch {
	case cst.Cancelled:
		st.cancelled = true
		st.Source = ProcNull
		st.Tag = AnyTag
	case into:
		// Bytes carries the full incoming message size (matching the
		// classic path); the deposited element count is capped by the
		// posted section. A payload that is not a whole number of
		// elements is the same wire-format error the classic unpack
		// reports — whole elements stay deposited.
		if es := d.t.Class().WireSize(); es > 0 {
			deposited := cst.Bytes / es
			if m := count * d.t.Size(); deposited > m {
				deposited = m
			}
			st.elements = deposited
			if cst.Bytes%es != 0 {
				err = errf(ErrIntern, "%v: %d bytes not a multiple of element size %d", dtype.ErrFormat, cst.Bytes, es)
				st.Error = ClassOf(err)
			}
		}
		if err == nil && cst.Err != nil {
			err = mapDataErr(cst.Err)
			st.Error = ClassOf(err)
		}
	default:
		n, uerr := dtype.Unpack(payload, buf, offset, count, d.t)
		st.elements = n
		if uerr != nil {
			err = mapDataErr(uerr)
			st.Error = ClassOf(err)
		}
		// A completion-time error (peer lost mid-operation) arrives
		// with an empty payload — the unpack above deposited nothing —
		// so surface the loss as the operation's error.
		if err == nil && cst.Err != nil {
			err = mapDataErr(cst.Err)
			st.Error = ClassOf(err)
		}
	}
	return st, err
}

// finish computes the final status exactly once: for receives it unpacks
// the wire payload into the user buffer — MPI permits touching the
// buffer only after completion, so unpacking here preserves semantics.
// Receive-into requests skip the unpack (the engine already deposited
// the bytes in place). Either way the pooled frame backing the payload
// is released once the bytes are home.
func (r *Request) finish() {
	r.once.Do(func() {
		if r.pre != nil {
			r.st = r.pre
			return
		}
		cst := &r.creq.Stat
		if !r.isRecv {
			st := &Status{Source: cst.SourceGroup, Tag: cst.Tag, bytes: cst.Bytes, elements: -1}
			if cst.Cancelled {
				st.cancelled = true
				st.Source = ProcNull
				st.Tag = AnyTag
			}
			if cst.Err != nil {
				r.err = mapDataErr(cst.Err)
				st.Error = ClassOf(r.err)
			}
			r.st = st
			return
		}
		r.st, r.err = recvStatus(cst, r.into, r.creq.Payload, r.buf, r.offset, r.count, r.dt)
		r.creq.ReleaseFrame()
	})
}

// active reports whether the request has an operation attached.
func (r *Request) active() bool {
	return r != nil && (r.creq != nil || r.pre != nil)
}

// Wait blocks until the operation completes (MPI_Wait). Waiting on an
// inactive request returns the empty status immediately.
func (r *Request) Wait() (*Status, error) {
	if !r.active() {
		return nullStatus(), nil
	}
	if r.creq != nil {
		r.creq.Wait()
	}
	r.finish()
	return r.st, r.err
}

// WaitCtx blocks until the operation completes or ctx is done. When ctx
// fires while the operation is still cancellable (an unmatched receive,
// or a send whose rendezvous has not been granted), the operation is
// cancelled, the returned status reports TestCancelled() == true, and
// ctx's error is returned so callers can errors.Is it against
// context.Canceled / context.DeadlineExceeded. Once the operation has
// matched, it is past the point of no return and WaitCtx behaves like
// Wait. Context errors bypass the communicator's error handler: a
// cancelled wait is control flow, not an MPI error.
func (r *Request) WaitCtx(ctx context.Context) (*Status, error) {
	if !r.active() {
		return nullStatus(), nil
	}
	if r.creq != nil {
		if _, ctxErr := r.creq.WaitCtx(ctx); ctxErr != nil {
			r.finish()
			return r.st, ctxErr
		}
	}
	r.finish()
	return r.st, r.err
}

// Test returns (status, true) if the operation has completed
// (MPI_Test). An inactive request tests as complete with empty status.
func (r *Request) Test() (*Status, bool, error) {
	if !r.active() {
		return nullStatus(), true, nil
	}
	if r.creq != nil {
		if _, done := r.creq.Test(); !done {
			return nil, false, nil
		}
	}
	r.finish()
	return r.st, true, r.err
}

// Cancel attempts to cancel the pending operation (MPI_Cancel). Receives
// cancel if unmatched; sends cancel if the payload has not been claimed.
func (r *Request) Cancel() error {
	if !r.active() || r.creq == nil {
		return nil
	}
	r.env.proc.Cancel(r.creq)
	return nil
}

// Free releases the request handle (MPI_Request_free). The operation, if
// still pending, is allowed to complete in the background.
func (r *Request) Free() error {
	if r == nil {
		return errf(ErrRequest, "Free on nil request")
	}
	r.creq = nil
	r.pre = nil
	return nil
}

// IsNull reports whether the handle carries no operation (the analogue
// of comparing against MPI_REQUEST_NULL).
func (r *Request) IsNull() bool { return !r.active() }

// WaitAny blocks until one of the requests completes and returns its
// status, with Status.Index identifying which (MPI_Waitany; paper §2.1).
// If every request is inactive it returns (Undefined, empty status).
func WaitAny(reqs []*Request) (*Status, error) {
	// Fast path: pre-completed or already-finished requests.
	for i, r := range reqs {
		if r.active() && r.creq == nil {
			r.finish()
			st := *r.st
			st.Index = i
			return &st, r.err
		}
	}
	var env *Env
	creqs := make([]*core.Request, len(reqs))
	for i, r := range reqs {
		if r.active() {
			creqs[i] = r.creq
			env = r.env
		}
	}
	if env == nil {
		st := nullStatus()
		st.Index = Undefined
		return st, nil
	}
	idx := env.proc.WaitAny(creqs)
	if idx < 0 {
		st := nullStatus()
		st.Index = Undefined
		return st, nil
	}
	r := reqs[idx]
	r.creq.Wait()
	r.finish()
	st := *r.st
	st.Index = idx
	return &st, r.err
}

// TestAny polls the requests for a completion (MPI_Testany).
func TestAny(reqs []*Request) (*Status, bool, error) {
	anyActive := false
	for i, r := range reqs {
		if !r.active() {
			continue
		}
		anyActive = true
		st, done, err := r.Test()
		if done {
			cp := *st
			cp.Index = i
			return &cp, true, err
		}
	}
	if !anyActive {
		st := nullStatus()
		st.Index = Undefined
		return st, true, nil
	}
	return nil, false, nil
}

// WaitAll waits for every request and returns their statuses in order
// (MPI_Waitall). The first operation error is returned (wrapped as
// ErrInStatus when several requests are involved, with per-request
// classes in the statuses). For sets mixing request kinds (collectives,
// persistent operations) use WaitAllAny; WaitAll remains the concrete
// path for homogeneous point-to-point sets.
func WaitAll(reqs []*Request) ([]*Status, error) {
	sts := make([]*Status, len(reqs))
	var firstErr error
	for i, r := range reqs {
		st, err := r.Wait()
		st.Index = i
		sts[i] = st
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return sts, firstErr
}

// TestAll reports completion of every request (MPI_Testall); statuses are
// only returned when all have completed.
func TestAll(reqs []*Request) ([]*Status, bool, error) {
	for _, r := range reqs {
		if !r.active() {
			continue
		}
		if r.creq != nil {
			if _, done := r.creq.Test(); !done {
				return nil, false, nil
			}
		}
	}
	sts, err := WaitAll(reqs)
	return sts, true, err
}

// WaitSome blocks for at least one completion and returns the statuses of
// every completed request, Index fields identifying them (MPI_Waitsome).
func WaitSome(reqs []*Request) ([]*Status, error) {
	first, err := WaitAny(reqs)
	if err != nil {
		return nil, err
	}
	if first.Index == Undefined {
		return nil, nil
	}
	out := []*Status{first}
	for i, r := range reqs {
		if i == first.Index || !r.active() {
			continue
		}
		st, done, err := r.Test()
		if err != nil {
			return out, err
		}
		if done {
			cp := *st
			cp.Index = i
			out = append(out, &cp)
		}
	}
	return out, nil
}

// TestSome returns the statuses of all currently completed requests
// (MPI_Testsome); the list is empty when none have completed.
func TestSome(reqs []*Request) ([]*Status, error) {
	var out []*Status
	for i, r := range reqs {
		if !r.active() {
			continue
		}
		st, done, err := r.Test()
		if err != nil {
			return out, err
		}
		if done {
			cp := *st
			cp.Index = i
			out = append(out, &cp)
		}
	}
	return out, nil
}

// PersistentRequest is a persistent operation (MPI_Send_init,
// MPI_Recv_init and — MPI-4 — the persistent collectives,
// MPI_Bcast_init and friends): a frozen, validated argument list that
// Start activates repeatedly. Point-to-point persistents freeze a send
// or receive envelope; collective persistents hold a cached re-runnable
// schedule with pre-minted tags in the runtime, so an activation pays
// no validation, planning or tag-allocation cost. Both kinds share this
// one type, so StartAll and the AnyRequest helpers work over mixed
// sets.
//
// The buffer contract is MPI's: the operation re-reads (and for
// receives, re-fills) the buffers bound at *Init time on every
// activation. A previous activation must have completed — locally, via
// Wait/Test on this request — before the next Start.
type PersistentRequest struct {
	comm *Comm

	// Point-to-point arm: the frozen envelope.
	isRecv   bool
	recvInto bool // zero-copy receive (RecvIntoInit)
	mode     core.Mode
	buffed   bool // buffered mode
	buf      any
	offset   int
	count    int
	dt       *Datatype
	rank     int // dest or source
	tag      int

	// Collective arm: the cached schedule plus the per-activation
	// re-pack of the user buffers and the completion deposit.
	pcol    *coll.Persistent
	refresh func() error
	fin     func(res any) error

	active     *Request     // current point-to-point activation
	activeColl *CollRequest // current collective activation
}

// Prequest is the persistent request's pre-MPI-4 name.
//
// Deprecated: use PersistentRequest; Prequest remains as an alias.
type Prequest = PersistentRequest

// Start activates the persistent request (MPI_Start). The previous
// activation must have completed, and the communicator must not have
// been revoked — Start is a fresh operation, so unlike Wait on an
// in-flight request it refuses with ErrRevoked up front.
func (p *PersistentRequest) Start() error {
	if p.comm == nil {
		return errf(ErrRequest, "Start on a freed persistent request")
	}
	if p.comm.Revoked() {
		return p.comm.raise(errf(ErrRevoked, "Start on revoked communicator %q", p.comm.name))
	}
	if p.pcol != nil {
		return p.startColl()
	}
	if p.active != nil {
		if _, done, _ := p.active.Test(); !done {
			return errf(ErrRequest, "Start on a still-active persistent request")
		}
	}
	var req *Request
	var err error
	if p.isRecv && p.recvInto {
		req, err = p.comm.IrecvInto(p.buf, p.offset, p.count, p.dt, p.rank, p.tag)
	} else if p.isRecv {
		req, err = p.comm.Irecv(p.buf, p.offset, p.count, p.dt, p.rank, p.tag)
	} else if p.buffed {
		req, err = p.comm.Ibsend(p.buf, p.offset, p.count, p.dt, p.rank, p.tag)
	} else {
		req, err = p.comm.isendMode(p.buf, p.offset, p.count, p.dt, p.rank, p.tag, p.mode)
	}
	if err != nil {
		return err
	}
	p.active = req
	return nil
}

// startColl activates the collective arm: re-pack the user buffers into
// the schedule's bound inputs, then hand the cached schedule to the
// shared progress pool.
func (p *PersistentRequest) startColl() error {
	if p.activeColl != nil {
		if _, done, _ := p.activeColl.Test(); !done {
			return errf(ErrRequest, "Start on a still-active persistent request")
		}
	}
	if p.refresh != nil {
		if err := p.refresh(); err != nil {
			return p.comm.raise(err)
		}
	}
	creq, err := p.pcol.Start()
	if err != nil {
		if errors.Is(err, coll.ErrActive) {
			return errf(ErrRequest, "Start on a still-active persistent request")
		}
		return p.comm.raise(mapEngineErr(err))
	}
	p.activeColl = newCollRequest(p.comm, creq, p.fin)
	return nil
}

// Wait waits for the current activation (MPI_Wait on a started
// persistent request).
func (p *PersistentRequest) Wait() (*Status, error) {
	if p.activeColl != nil {
		return p.activeColl.Wait()
	}
	if p.active == nil {
		return nullStatus(), nil
	}
	return p.active.Wait()
}

// WaitCtx waits for the current activation under a context; see
// Request.WaitCtx and CollRequest.WaitCtx for the cancellation
// contracts of the two arms.
func (p *PersistentRequest) WaitCtx(ctx context.Context) (*Status, error) {
	if p.activeColl != nil {
		return p.activeColl.WaitCtx(ctx)
	}
	if p.active == nil {
		return nullStatus(), nil
	}
	return p.active.WaitCtx(ctx)
}

// Test polls the current activation.
func (p *PersistentRequest) Test() (*Status, bool, error) {
	if p.activeColl != nil {
		return p.activeColl.Test()
	}
	if p.active == nil {
		return nullStatus(), true, nil
	}
	return p.active.Test()
}

// Free releases the persistent request (MPI_Request_free). A collective
// persistent's cached schedule is retired; the current activation, if
// any, completes in the background.
func (p *PersistentRequest) Free() error {
	if p.pcol != nil {
		p.pcol.Free()
	}
	p.active = nil
	p.activeColl = nil
	p.pcol = nil
	p.comm = nil
	return nil
}

// StartAll activates a list of persistent requests (MPI_Startall) —
// point-to-point, collective, or mixed.
func StartAll(ps []*PersistentRequest) error {
	for _, p := range ps {
		if err := p.Start(); err != nil {
			return err
		}
	}
	return nil
}

// WaitAllP waits on the current activations of persistent requests and
// returns their statuses in order, Index fields set.
//
// Deprecated: WaitAllAny accepts mixed request kinds; WaitAllP remains
// for homogeneous persistent sets.
func WaitAllP(ps []*PersistentRequest) ([]*Status, error) {
	sts := make([]*Status, len(ps))
	var firstErr error
	for i, p := range ps {
		st, err := p.Wait()
		cp := *st
		cp.Index = i
		sts[i] = &cp
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return sts, firstErr
}

// mapEngineErr converts engine- and schedule-layer failures into MPI
// error classes: fault-tolerance outcomes (a dead peer, a revoked
// communicator) get their own classes so callers can branch into the
// ULFM recovery path; anything else on these paths is an internal
// error.
func mapEngineErr(err error) error {
	var lost *transport.PeerLostError
	switch {
	case err == nil:
		return nil
	case errors.As(err, &lost):
		return errf(ErrProcFailed, "%v", err)
	case errors.Is(err, core.ErrCommRevoked):
		return errf(ErrRevoked, "%v", err)
	default:
		return errf(ErrIntern, "%v", err)
	}
}

// mapDataErr converts datatype- and core-layer errors into MPI error
// classes.
func mapDataErr(err error) error {
	var lost *transport.PeerLostError
	switch {
	case err == nil:
		return nil
	case errors.As(err, &lost):
		return errf(ErrProcFailed, "%v", err)
	case errors.Is(err, core.ErrCommRevoked):
		return errf(ErrRevoked, "%v", err)
	case errors.Is(err, dtype.ErrTruncate), errors.Is(err, core.ErrTruncated):
		return errf(ErrTruncate, "%v", err)
	case errors.Is(err, dtype.ErrClassMismatch):
		return errf(ErrType, "%v", err)
	case errors.Is(err, dtype.ErrUncommitted):
		return errf(ErrType, "%v", err)
	case errors.Is(err, dtype.ErrBounds):
		return errf(ErrBuffer, "%v", err)
	case errors.Is(err, dtype.ErrNegative):
		return errf(ErrCount, "%v", err)
	case errors.Is(err, dtype.ErrFormat):
		return errf(ErrIntern, "%v", err)
	default:
		return errf(ErrOther, "%v", err)
	}
}
