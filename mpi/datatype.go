package mpi

import (
	"gompi/internal/dtype"
)

// Datatype describes the type of elements in message buffers (paper §2,
// Fig. 2). Predefined basic datatypes correspond to Go's primitive slice
// types; derived datatypes describe contiguous, strided or indirectly
// indexed sections of buffers, with all displacements expressed in units
// of base elements (the mpiJava convention — buffers are one-dimensional
// arrays, so there is no byte-level addressing).
type Datatype struct {
	t *dtype.Type
}

// Predefined basic datatypes (Fig. 2 of the paper) and their Go buffer
// types, plus the OBJECT extension of §2.2 and the pair types used with
// MINLOC/MAXLOC.
var (
	BYTE    = &Datatype{dtype.Basic(dtype.U8, "MPI.BYTE")}      // []byte
	CHAR    = &Datatype{dtype.Basic(dtype.I32, "MPI.CHAR")}     // []rune
	BOOLEAN = &Datatype{dtype.Basic(dtype.Bool, "MPI.BOOLEAN")} // []bool
	SHORT   = &Datatype{dtype.Basic(dtype.I16, "MPI.SHORT")}    // []int16
	INT     = &Datatype{dtype.Basic(dtype.I32, "MPI.INT")}      // []int32
	LONG    = &Datatype{dtype.Basic(dtype.I64, "MPI.LONG")}     // []int64
	FLOAT   = &Datatype{dtype.Basic(dtype.F32, "MPI.FLOAT")}    // []float32
	DOUBLE  = &Datatype{dtype.Basic(dtype.F64, "MPI.DOUBLE")}   // []float64
	PACKED  = &Datatype{dtype.Basic(dtype.U8, "MPI.PACKED")}    // []byte from Pack
	OBJECT  = &Datatype{dtype.Basic(dtype.Obj, "MPI.OBJECT")}   // []any, gob-serialized

	SHORT2  = &Datatype{dtype.Pair(dtype.I16, "MPI.SHORT2")}
	INT2    = &Datatype{dtype.Pair(dtype.I32, "MPI.INT2")}
	LONG2   = &Datatype{dtype.Pair(dtype.I64, "MPI.LONG2")}
	FLOAT2  = &Datatype{dtype.Pair(dtype.F32, "MPI.FLOAT2")}
	DOUBLE2 = &Datatype{dtype.Pair(dtype.F64, "MPI.DOUBLE2")}

	// LB and UB are the pseudo-types that pin Struct bounds.
	LB = &Datatype{dtype.Marker(true, "MPI.LB")}
	UB = &Datatype{dtype.Marker(false, "MPI.UB")}
)

// RegisterObject records a concrete Go type for OBJECT-buffer
// serialization — the analogue of a Java class implementing
// Serializable. It must be called (in every process) before values of
// that type travel in an OBJECT buffer.
func RegisterObject(v any) { dtype.Register(v) }

// Size returns the number of base elements one item of the datatype
// carries (holes excluded; MPI_Type_size in element units).
func (d *Datatype) Size() int { return d.t.Size() }

// Extent returns the stride between consecutive items, in base elements
// (MPI_Type_extent in element units).
func (d *Datatype) Extent() int { return d.t.Extent() }

// Lb returns the lower bound in base elements.
func (d *Datatype) Lb() int { return d.t.Lb() }

// Ub returns the upper bound in base elements.
func (d *Datatype) Ub() int { return d.t.Ub() }

// Name returns the display name.
func (d *Datatype) Name() string { return d.t.Name() }

// Commit readies a derived datatype for use in communication
// (MPI_Type_commit). Basic types are pre-committed.
func (d *Datatype) Commit() { d.t.Commit() }

// Committed reports whether the type may be used in communication.
func (d *Datatype) Committed() bool { return d.t.Committed() }

func (d *Datatype) String() string { return d.t.String() }

// TypeContiguous returns a datatype of count consecutive items of old
// (MPI_Type_contiguous; mpiJava Datatype.Contiguous).
func TypeContiguous(count int, old *Datatype) (*Datatype, error) {
	t, err := dtype.Contiguous(count, old.t)
	if err != nil {
		return nil, wrapTypeErr(err)
	}
	return &Datatype{t}, nil
}

// TypeVector returns count blocks of blocklen items of old with the block
// starts separated by stride items (MPI_Type_vector).
func TypeVector(count, blocklen, stride int, old *Datatype) (*Datatype, error) {
	t, err := dtype.Vector(count, blocklen, stride, old.t)
	if err != nil {
		return nil, wrapTypeErr(err)
	}
	return &Datatype{t}, nil
}

// TypeHvector is TypeVector with the stride in base elements rather than
// multiples of old's extent (MPI_Type_hvector).
func TypeHvector(count, blocklen, stride int, old *Datatype) (*Datatype, error) {
	t, err := dtype.Hvector(count, blocklen, stride, old.t)
	if err != nil {
		return nil, wrapTypeErr(err)
	}
	return &Datatype{t}, nil
}

// TypeIndexed places blocklens[i] items of old at displacement displs[i],
// in multiples of old's extent (MPI_Type_indexed).
func TypeIndexed(blocklens, displs []int, old *Datatype) (*Datatype, error) {
	t, err := dtype.Indexed(blocklens, displs, old.t)
	if err != nil {
		return nil, wrapTypeErr(err)
	}
	return &Datatype{t}, nil
}

// TypeHindexed is TypeIndexed with displacements in base elements
// (MPI_Type_hindexed).
func TypeHindexed(blocklens, displs []int, old *Datatype) (*Datatype, error) {
	t, err := dtype.Hindexed(blocklens, displs, old.t)
	if err != nil {
		return nil, wrapTypeErr(err)
	}
	return &Datatype{t}, nil
}

// TypeStruct combines blocks of component types at explicit displacements
// in base elements (MPI_Type_struct). Following the paper (§2.2), all
// non-marker components must share one base storage class — the mpiJava
// restriction that buffers are arrays of a single primitive type.
func TypeStruct(blocklens, displs []int, types []*Datatype) (*Datatype, error) {
	ts := make([]*dtype.Type, len(types))
	for i, d := range types {
		ts[i] = d.t
	}
	t, err := dtype.Struct(blocklens, displs, ts)
	if err != nil {
		return nil, wrapTypeErr(err)
	}
	return &Datatype{t}, nil
}

func wrapTypeErr(err error) error {
	return errf(ErrType, "%v", err)
}
