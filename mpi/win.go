package mpi

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"gompi/internal/core"
	"gompi/internal/dtype"
)

// One-sided communication (MPI-2 §6) — the "access to memory in remote
// processes" the paper's introduction highlights and §5.3 plans to add.
// A Win exposes a slice of basic elements for remote Put, Get and
// Accumulate; Fence provides active-target synchronization. Each window
// runs a small target service per rank on a private context, so one-sided
// traffic can never cross-match two-sided communication.

// Win is a window of locally-exposed memory (MPI_Win).
type Win struct {
	comm *Intracomm // private duplicate owning the service contexts
	base any        // the exposed slice
	dt   *Datatype  // basic element type of the window
	size int        // window length, in elements

	winMu   sync.Mutex // serializes applies to the window
	pending sync.WaitGroup
	nextID  atomic.Uint32
	svcDone chan struct{}
	freed   bool

	errMu    sync.Mutex
	firstErr error // first error from asynchronous completions
}

// setErr records the first asynchronous failure; Fence surfaces it.
func (w *Win) setErr(err error) {
	if err == nil {
		return
	}
	w.errMu.Lock()
	if w.firstErr == nil {
		w.firstErr = err
	}
	w.errMu.Unlock()
}

func (w *Win) takeErr() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	err := w.firstErr
	w.firstErr = nil
	return err
}

// RMA operation kinds on the wire.
const (
	rmaPut byte = iota
	rmaGet
	rmaAcc
	rmaStop
)

// Tags on the window's private point-to-point context.
const (
	tagRMAReq     = 1
	tagRMAAckBase = 16 // reply tag = base + origin-chosen op id
)

// REPLACE is the MPI_REPLACE accumulate operation: the incoming value
// overwrites the target element.
var REPLACE = &Op{op: nil}

// accCodes maps the predefined operations usable with Accumulate to wire
// codes. User-defined operations cannot travel to the target process.
var accCodes = map[*Op]byte{
	SUM: 1, PROD: 2, MAX: 3, MIN: 4,
	LAND: 5, LOR: 6, LXOR: 7, BAND: 8, BOR: 9, BXOR: 10,
	REPLACE: 11,
}

func accOpOf(code byte) (*Op, bool) {
	for op, c := range accCodes {
		if c == code {
			return op, true
		}
	}
	return nil, false
}

// CreateWin exposes base (a slice of d's element type) for one-sided
// access by all members of the communicator (MPI_Win_create). Collective.
func (c *Intracomm) CreateWin(base any, d *Datatype) (*Win, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return nil, c.raise(err)
	}
	if err := c.checkType(d); err != nil {
		return nil, c.raise(err)
	}
	if d.Size() != 1 || d.Extent() != 1 {
		return nil, c.raise(errf(ErrType, "window element type must be basic, got %s", d.Name()))
	}
	n, err := dtype.CheckBuf(base, d.t)
	if err != nil {
		return nil, c.raise(mapDataErr(err))
	}
	priv, err := c.Dup()
	if err != nil {
		return nil, err
	}
	priv.SetName(c.Name() + ".win")
	w := &Win{comm: priv, base: base, dt: d, size: n, svcDone: make(chan struct{})}
	go w.serve()
	// All members must have their service running before any origin
	// issues an operation.
	if err := priv.Barrier(); err != nil {
		return nil, c.raise(err)
	}
	return w, nil
}

// request wire layout: kind(1) id(4) disp(4) count(4) accOp(1) payload.
func buildRMAReq(kind byte, id uint32, disp, count int, accOp byte, payload []byte) []byte {
	f := make([]byte, 14+len(payload))
	f[0] = kind
	binary.LittleEndian.PutUint32(f[1:], id)
	binary.LittleEndian.PutUint32(f[5:], uint32(int32(disp)))
	binary.LittleEndian.PutUint32(f[9:], uint32(int32(count)))
	f[13] = accOp
	copy(f[14:], payload)
	return f
}

// serve is the per-rank target service: it applies incoming one-sided
// operations to the local window and acknowledges them.
func (w *Win) serve() {
	defer close(w.svcDone)
	p := w.comm.env.proc
	ctx := w.comm.ptpCtx
	for {
		req := p.Irecv(ctx, core.AnySource, tagRMAReq)
		st := req.Wait()
		if st.Cancelled {
			req.Recycle()
			return
		}
		f := req.Payload
		if len(f) < 14 {
			req.Recycle()
			continue
		}
		kind := f[0]
		id := binary.LittleEndian.Uint32(f[1:])
		disp := int(int32(binary.LittleEndian.Uint32(f[5:])))
		count := int(int32(binary.LittleEndian.Uint32(f[9:])))
		accOp := f[13]
		payload := f[14:]
		var reply []byte
		var opErr error
		if kind == rmaStop {
			w.ack(st.SourceGroup, id, nil)
			req.Recycle()
			return
		}
		// Target-side validation: MPI delegates range and datatype
		// checking of one-sided operations to the target, where the
		// window's true shape is known. Invalid operations are dropped
		// (the ack still flows so fences cannot hang) and surface on
		// the target's next Fence.
		opErr = w.checkTarget(kind, disp, count, len(payload))
		if opErr == nil {
			switch kind {
			case rmaPut:
				w.winMu.Lock()
				_, opErr = dtype.Unpack(payload, w.base, disp, count, w.dt.t)
				w.winMu.Unlock()
			case rmaGet:
				w.winMu.Lock()
				reply, opErr = dtype.Pack(nil, w.base, disp, count, w.dt.t)
				w.winMu.Unlock()
			case rmaAcc:
				opErr = w.applyAcc(accOp, payload, disp, count)
			}
			if _, isMPI := opErr.(*Error); opErr != nil && !isMPI {
				opErr = mapDataErr(opErr)
			}
		}
		if opErr != nil {
			// Surface target-side failures on the target rank; the
			// origin still gets its ack so fences cannot hang.
			w.setErr(opErr)
		}
		// Every arm has copied what it needs out of the payload; the
		// frame (and request) can recirculate.
		w.ack(st.SourceGroup, id, reply)
		req.Recycle()
	}
}

// checkTarget validates an incoming operation's window section and,
// for data-carrying kinds, that the payload length matches the claimed
// element count — the datatype-mismatch check only the target can
// perform.
func (w *Win) checkTarget(kind byte, disp, count, payloadLen int) error {
	if disp < 0 || count < 0 || disp+count > w.size {
		return errf(ErrBuffer, "one-sided access [%d,%d) outside window of %d elements", disp, disp+count, w.size)
	}
	// OBJECT payloads are gob-encoded with no fixed element size; the
	// length check only applies to the fixed-size classes.
	if kind != rmaGet {
		if es := w.dt.t.Class().WireSize(); es > 0 {
			if want := count * es; payloadLen != want {
				return errf(ErrType, "one-sided payload of %d bytes does not match %d elements of %s",
					payloadLen, count, w.dt.Name())
			}
		}
	}
	return nil
}

func (w *Win) applyAcc(code byte, payload []byte, disp, count int) error {
	incoming, err := dtype.DecodeDense(payload, w.dt.t.Class())
	if err != nil {
		return err
	}
	w.winMu.Lock()
	defer w.winMu.Unlock()
	if code == accCodes[REPLACE] {
		_, err := dtype.Unpack(payload, w.base, disp, count, w.dt.t)
		return err
	}
	op, ok := accOpOf(code)
	if !ok {
		return errf(ErrOp, "unknown accumulate op code %d", code)
	}
	section, err := dtype.Extract(w.base, disp, count, w.dt.t)
	if err != nil {
		return err
	}
	if err := op.op.Apply(incoming, section); err != nil {
		return err
	}
	return dtype.Deposit(section, w.base, disp, count, w.dt.t)
}

func (w *Win) ack(targetGroupRank int, id uint32, payload []byte) {
	p := w.comm.env.proc
	req, err := p.Isend(w.comm.ptpCtx, w.comm.rank, w.comm.group[targetGroupRank],
		tagRMAAckBase+int(id), payload, core.ModeStandard, false)
	if err == nil {
		req.Wait()
		req.Recycle()
	}
}

// issue sends one RMA request and registers its asynchronous completion.
// complete runs with the ack payload when the target acknowledges.
func (w *Win) issue(kind byte, target, disp, count int, accOp byte, payload []byte, complete func([]byte) error) error {
	if w.freed {
		return errf(ErrComm, "window has been freed")
	}
	if target < 0 || target >= w.comm.Size() {
		return errf(ErrRank, "target rank %d out of range [0,%d)", target, w.comm.Size())
	}
	id := w.nextID.Add(1) & 0xffff
	p := w.comm.env.proc
	req, err := p.Isend(w.comm.ptpCtx, w.comm.rank, w.comm.group[target],
		tagRMAReq, buildRMAReq(kind, id, disp, count, accOp, payload), core.ModeStandard, false)
	if err != nil {
		return errf(ErrIntern, "%v", err)
	}
	ackReq := p.Irecv(w.comm.ptpCtx, int32(target), int32(tagRMAAckBase+int(id)))
	w.pending.Add(1)
	go func() {
		defer w.pending.Done()
		req.Wait()
		ackReq.Wait()
		if complete != nil {
			if err := complete(ackReq.Payload); err != nil {
				w.setErr(err)
			}
		}
		ackReq.Recycle()
		req.Recycle()
	}()
	return nil
}

// Put transfers count items from the origin buffer section into the
// target rank's window at element displacement targetDisp (MPI_Put).
// Completion is deferred to the next Fence.
func (w *Win) Put(origin any, offset, count int, d *Datatype, target, targetDisp int) error {
	w.comm.env.enterCall()
	payload, err := dtype.Pack(nil, origin, offset, count, d.t)
	if err != nil {
		return w.comm.raise(mapDataErr(err))
	}
	elems := count * d.Size()
	return w.comm.raise(w.issue(rmaPut, target, targetDisp, elems, 0, payload, nil))
}

// Get transfers count items from the target rank's window at element
// displacement targetDisp into the origin buffer section (MPI_Get).
// The origin buffer is valid after the next Fence.
func (w *Win) Get(origin any, offset, count int, d *Datatype, target, targetDisp int) error {
	w.comm.env.enterCall()
	if _, err := dtype.CheckBuf(origin, d.t); err != nil {
		return w.comm.raise(mapDataErr(err))
	}
	elems := count * d.Size()
	return w.comm.raise(w.issue(rmaGet, target, targetDisp, elems, 0, nil, func(reply []byte) error {
		_, err := dtype.Unpack(reply, origin, offset, count, d.t)
		return err
	}))
}

// Accumulate folds count items from the origin buffer into the target
// window with op — one of the predefined operations or REPLACE
// (MPI_Accumulate).
func (w *Win) Accumulate(origin any, offset, count int, d *Datatype, target, targetDisp int, op *Op) error {
	w.comm.env.enterCall()
	code, ok := accCodes[op]
	if !ok {
		return w.comm.raise(errf(ErrOp, "Accumulate requires a predefined operation or REPLACE"))
	}
	payload, err := dtype.Pack(nil, origin, offset, count, d.t)
	if err != nil {
		return w.comm.raise(mapDataErr(err))
	}
	elems := count * d.Size()
	return w.comm.raise(w.issue(rmaAcc, target, targetDisp, elems, code, payload, nil))
}

// Fence completes all outstanding one-sided operations this rank issued
// and synchronizes the group (MPI_Win_fence): after it returns, local
// Get buffers are filled and remote Put/Accumulate effects are visible
// everywhere.
func (w *Win) Fence() error {
	w.comm.env.enterCall()
	w.pending.Wait()
	if err := w.comm.Barrier(); err != nil {
		return err
	}
	if err := w.takeErr(); err != nil {
		return w.comm.raise(err)
	}
	return nil
}

// Free tears the window down (MPI_Win_free). Collective; all outstanding
// operations must be fenced first.
func (w *Win) Free() error {
	if w.freed {
		return errf(ErrComm, "window already freed")
	}
	if err := w.Fence(); err != nil {
		return err
	}
	// Stop the local service with a self-addressed request, then mark
	// the window dead.
	if err := w.issue(rmaStop, w.comm.Rank(), 0, 0, 0, nil, nil); err != nil {
		return err
	}
	w.pending.Wait()
	<-w.svcDone
	w.freed = true
	if err := w.comm.Barrier(); err != nil {
		return err
	}
	return w.comm.Free()
}
