package mpi

// Dynamic process management (MPI-2 chapter 5): ports, Connect/Accept,
// Spawn and the parent intercommunicator. The heavy lifting — the
// rendezvous listener, the leader handshake and the pairwise link
// admission — lives in internal/dynproc; this file is the binding:
// argument checking, the collective choreography that gets every member
// of a world through a join together, and the MPI error classes
// (ErrPort, ErrSpawn).
//
// A join is collective over the local communicator:
//
//  1. every member starts its rendezvous listener and contributes its
//     {GUID, address} to a Gather at the root;
//  2. the root runs the out-of-band leader handshake (dialing the port
//     on Connect, collecting a parked dial-in on Accept), exchanging
//     member tables and context-id candidates;
//  3. the outcome — an admission ticket or an error — is Bcast to the
//     local group, so all members succeed or fail together;
//  4. every member admits the remote members into its endpoint fabric
//     (accept side parks inbound dials, connect side dials out) and
//     commits max(local, remote) as the new communicator's context
//     base, so the pair collides with neither world's live tag space.
//
// Fault-tolerance interplay: a Connect or Accept on a revoked
// communicator fails fast with ErrRevoked — the ULFM repair loop
// (Shrink, then Spawn replacements, then Merge) is the supported way to
// grow a damaged world back.

import (
	"bytes"
	"encoding/gob"
	"os"
	"time"

	"gompi/internal/dynproc"
	"gompi/internal/launch"
	"gompi/internal/obs"
)

// dynTimeout bounds the out-of-band half of a join: the leader
// handshake, and every pairwise dial-in behind Admit. Spawned children
// have to exec and initialize before they can connect back, so the
// budget is generous; it exists so a lost peer turns into ErrPort
// instead of a hang.
var dynTimeout = 120 * time.Second

// OpenPort opens a rendezvous port on this process (MPI_Open_port) and
// returns its name — hand it out of band (or via Spawn's environment)
// to a world that should Connect. Port names look like
//
//	gompi-port://127.0.0.1:45123/ep0/k9f3a...
//
// and encode the listener address, the world epoch at open time (a
// Connect into a world that has since grown is refused as stale) and a
// random capability key.
func (e *Env) OpenPort() (string, error) {
	if e.finalized.Load() {
		return "", errf(ErrPort, "MPI already finalized")
	}
	p, err := e.fab.OpenPort()
	if err != nil {
		return "", errf(ErrPort, "open port: %v", err)
	}
	e.portsMu.Lock()
	if e.ports == nil {
		e.ports = map[string]*dynproc.Port{}
	}
	e.ports[p.Name()] = p
	e.portsMu.Unlock()
	return p.Name(), nil
}

// ClosePort closes a port opened by OpenPort (MPI_Close_port). Pending
// and future connection attempts on it are refused.
func (e *Env) ClosePort(name string) error {
	e.portsMu.Lock()
	p := e.ports[name]
	delete(e.ports, name)
	e.portsMu.Unlock()
	if p == nil {
		return errf(ErrPort, "unknown or already closed port %q", name)
	}
	p.Close()
	return nil
}

func (e *Env) lookupPort(name string) *dynproc.Port {
	e.portsMu.Lock()
	defer e.portsMu.Unlock()
	return e.ports[name]
}

// joinWire is the root's handshake outcome, broadcast to the local
// group so every member proceeds (or fails) identically.
type joinWire struct {
	Class int32
	Err   string
	Tkt   dynproc.Ticket
}

func gobEnc(v any) []byte {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(v); err != nil {
		panic(err) // static types; encoding cannot fail at runtime
	}
	return b.Bytes()
}

func gobDec(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// Accept waits for a remote world to connect to a port this process
// group's root opened, and returns the intercommunicator joining the
// two worlds (MPI_Comm_accept). Collective over the communicator;
// portName is significant at the root only.
func (c *Intracomm) Accept(portName string, root int) (*Intercomm, error) {
	return c.joinWorld(portName, root, true)
}

// Connect connects this world to a port opened by another world's
// root and returns the intercommunicator joining the two
// (MPI_Comm_connect). Collective over the communicator; portName is
// significant at the root only. Connect on a revoked communicator
// fails fast with ErrRevoked.
func (c *Intracomm) Connect(portName string, root int) (*Intercomm, error) {
	return c.joinWorld(portName, root, false)
}

func (c *Intracomm) joinWorld(portName string, root int, acceptSide bool) (*Intercomm, error) {
	c.env.enterCall()
	verb := "connect"
	if acceptSide {
		verb = "accept"
	}
	if err := c.ok(); err != nil {
		return nil, c.raise(err)
	}
	if err := c.checkRoot(root); err != nil {
		return nil, c.raise(err)
	}
	if c.Revoked() {
		return nil, c.raise(errf(ErrRevoked, "cannot %s on revoked communicator %q", verb, c.name))
	}
	fab := c.env.fab
	addr, err := fab.EnsureListener()
	if err != nil {
		// The local listener failing is a broken environment; peers
		// would hang in the Gather below, so fail loudly here.
		return nil, c.raise(errf(ErrPort, "%s: %v", verb, err))
	}
	me := dynproc.Member{GUID: fab.GUID(), Addr: addr}

	base, err := c.cl.AgreeContextBase()
	if err != nil {
		return nil, c.raise(mapEngineErr(err))
	}
	members, err := c.cl.Gather(root, gobEnc(me))
	if err != nil {
		return nil, c.raise(mapEngineErr(err))
	}

	// Root: the out-of-band leader handshake.
	var wire joinWire
	if c.rank == root {
		wire = c.leaderHandshake(portName, acceptSide, members, base)
	}
	raw, err := c.cl.Bcast(root, gobEnc(wire))
	if err != nil {
		return nil, c.raise(mapEngineErr(err))
	}
	if err := gobDec(raw, &wire); err != nil {
		return nil, c.raise(errf(ErrIntern, "%s: decoding join outcome: %v", verb, err))
	}
	if wire.Err != "" {
		return nil, c.raise(errf(ErrClass(wire.Class), "%s: %s", verb, wire.Err))
	}

	// Every member links to every remote member.
	worlds, err := fab.Admit(&wire.Tkt, dynTimeout)
	if err != nil {
		return nil, c.raise(errf(ErrPort, "%s: %v", verb, err))
	}

	final := base
	if wire.Tkt.RemoteCtxCand > final {
		final = wire.Tkt.RemoteCtxCand
	}
	c.env.proc.CommitContexts(final)

	ic := &Intercomm{low: acceptSide}
	c.env.buildComm(&ic.Comm, c.group, c.rank, final, c.name+"."+verb)
	ic.inter = true
	ic.remote = worlds
	// Intercomm point-to-point matches against the remote group: teach
	// the engine to resolve the point-to-point context's ranks through
	// it (peer-death attribution, revocation routing).
	c.env.proc.RegisterGroupCtx(final, worlds)
	return ic, nil
}

// leaderHandshake runs the root's out-of-band exchange and reports its
// outcome as a broadcastable wire value.
func (c *Intracomm) leaderHandshake(portName string, acceptSide bool, members [][]byte, base int32) joinWire {
	local := make([]dynproc.Member, len(members))
	for i, raw := range members {
		if err := gobDec(raw, &local[i]); err != nil {
			return joinWire{Class: int32(ErrIntern), Err: "decoding member table: " + err.Error()}
		}
	}
	var tkt *dynproc.Ticket
	var err error
	if acceptSide {
		p := c.env.lookupPort(portName)
		if p == nil {
			return joinWire{Class: int32(ErrPort), Err: "unknown or closed port \"" + portName + "\""}
		}
		tkt, err = c.env.fab.AcceptLeader(p, local, base, dynTimeout)
	} else {
		tkt, err = c.env.fab.DialLeader(portName, local, base, dynTimeout)
	}
	if err != nil {
		return joinWire{Class: int32(ErrPort), Err: err.Error()}
	}
	return joinWire{Tkt: *tkt}
}

// spawnWire is the root's provisioning outcome.
type spawnWire struct {
	Class int32
	Err   string
	Port  string
}

// Spawn starts maxprocs new processes running command with args and
// returns the intercommunicator to their world (MPI_Comm_spawn; the
// children find the parent side via Env.Parent). Collective over the
// communicator; rank 0 is the root. Under mpirun the children are
// provisioned through the launcher's spawn-control socket and share its
// reap-and-report machinery; a standalone world forks them directly.
// The children always form a TCP world of their own and link back to
// every parent rank during the join.
func (c *Intracomm) Spawn(command string, args []string, maxprocs int) (*Intercomm, error) {
	c.env.enterCall()
	defer c.env.span(obs.EvSpawn, int64(maxprocs))()
	if err := c.ok(); err != nil {
		return nil, c.raise(err)
	}
	if c.Revoked() {
		return nil, c.raise(errf(ErrRevoked, "cannot spawn on revoked communicator %q", c.name))
	}
	const root = 0
	var wire spawnWire
	if c.rank == root {
		if maxprocs < 1 {
			wire = spawnWire{Class: int32(ErrSpawn), Err: "maxprocs must be at least 1"}
		} else if port, err := c.env.OpenPort(); err != nil {
			wire = spawnWire{Class: int32(ClassOf(err)), Err: err.Error()}
		} else if err := provisionSpawn(command, args, maxprocs, port); err != nil {
			c.env.ClosePort(port)
			wire = spawnWire{Class: int32(ErrSpawn), Err: err.Error()}
		} else {
			wire = spawnWire{Port: port}
		}
	}
	raw, err := c.cl.Bcast(root, gobEnc(wire))
	if err != nil {
		return nil, c.raise(mapEngineErr(err))
	}
	if err := gobDec(raw, &wire); err != nil {
		return nil, c.raise(errf(ErrIntern, "spawn: decoding outcome: %v", err))
	}
	if wire.Err != "" {
		return nil, c.raise(errf(ErrClass(wire.Class), "spawn %q: %s", command, wire.Err))
	}
	ic, jerr := c.joinWorld(wire.Port, root, true)
	if c.rank == root {
		c.env.ClosePort(wire.Port)
	}
	if jerr != nil {
		return nil, jerr
	}
	ic.SetName(c.name + ".spawn")
	return ic, nil
}

// provisionSpawn starts the child processes: through the launcher's
// control socket when running under mpirun, directly otherwise.
func provisionSpawn(command string, args []string, n int, parentPort string) error {
	if ctrl := os.Getenv(launch.EnvControl); ctrl != "" {
		dir, _ := os.Getwd()
		return launch.RequestSpawn(ctrl, launch.SpawnRequest{
			Prog: command, Args: args, N: n, ParentPort: parentPort, Dir: dir,
		})
	}
	h, err := launch.SpawnLocal(launch.SpawnJob{
		Prog: command, Args: args, N: n, ParentPort: parentPort,
	})
	if err != nil {
		return err
	}
	// Reap in the background; a child that dies before dialing in
	// surfaces as an ErrPort timeout in the join.
	go h.Wait()
	return nil
}

// Parent returns the intercommunicator to the world that spawned this
// process (MPI_Comm_get_parent), connecting through the port the parent
// exported on the first call, or (nil, nil) when the process was not
// spawned. Collective over the child world on first call.
func (e *Env) Parent() (*Intercomm, error) {
	port := os.Getenv(launch.EnvParentPort)
	if port == "" {
		return nil, nil
	}
	e.parentSet.Do(func() {
		e.parent, e.parentErr = e.world.Connect(port, 0)
		if e.parent != nil {
			e.parent.SetName("MPI.COMM_PARENT")
		}
	})
	return e.parent, e.parentErr
}
