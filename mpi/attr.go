package mpi

import "sync"

// Attribute caching (MPI 1.1 §5.7): keyed values attached to
// communicators, with copy and delete callbacks driven by Dup and Free.
// The binding keeps the C semantics — including the copy-callback's veto
// on propagation — with Go closures in place of function pointers.

// CopyFn decides what a duplicated communicator inherits for one key:
// it receives the parent's value and returns the child's value and
// whether the attribute propagates at all (MPI_Copy_function).
type CopyFn func(val any) (newVal any, propagate bool)

// DeleteFn runs when an attribute is deleted or its communicator freed
// (MPI_Delete_function).
type DeleteFn func(val any)

// Keyval identifies an attribute key (MPI_Keyval_create). Keyvals are
// process-local, like the handles of the C binding.
type Keyval struct {
	id    int
	copyF CopyFn
	delF  DeleteFn
	freed bool
}

var keyvalTable = struct {
	sync.Mutex
	next int
	live map[int]*Keyval
}{next: 1, live: make(map[int]*Keyval)}

// CreateKeyval registers an attribute key. A nil copy function behaves
// like MPI_NULL_COPY_FN (attributes do not propagate on Dup); a nil
// delete function like MPI_NULL_DELETE_FN.
func CreateKeyval(copyF CopyFn, delF DeleteFn) *Keyval {
	keyvalTable.Lock()
	defer keyvalTable.Unlock()
	kv := &Keyval{id: keyvalTable.next, copyF: copyF, delF: delF}
	keyvalTable.next++
	keyvalTable.live[kv.id] = kv
	return kv
}

// Free releases the keyval (MPI_Keyval_free). Attributes already cached
// under it remain retrievable until deleted.
func (kv *Keyval) Free() {
	keyvalTable.Lock()
	defer keyvalTable.Unlock()
	kv.freed = true
	delete(keyvalTable.live, kv.id)
}

// attrMap is the per-communicator attribute store.
type attrMap struct {
	mu   sync.Mutex
	vals map[int]any
}

func (m *attrMap) put(id int, v any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.vals == nil {
		m.vals = make(map[int]any)
	}
	m.vals[id] = v
}

func (m *attrMap) get(id int) (any, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.vals[id]
	return v, ok
}

func (m *attrMap) del(id int) (any, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.vals[id]
	if ok {
		delete(m.vals, id)
	}
	return v, ok
}

// PutAttr caches a value on the communicator under kv (MPI_Attr_put).
// An existing value is deleted first, running its delete callback.
func (c *Comm) PutAttr(kv *Keyval, val any) error {
	if err := c.ok(); err != nil {
		return c.raise(err)
	}
	if kv == nil {
		return c.raise(errf(ErrArg, "nil keyval"))
	}
	if old, ok := c.attrs.del(kv.id); ok && kv.delF != nil {
		kv.delF(old)
	}
	c.attrs.put(kv.id, val)
	return nil
}

// GetAttr retrieves a cached value; the second result reports presence
// (MPI_Attr_get's flag output, returned Java-binding style).
func (c *Comm) GetAttr(kv *Keyval) (any, bool) {
	if c == nil || kv == nil {
		return nil, false
	}
	return c.attrs.get(kv.id)
}

// DeleteAttr removes a cached value, running the delete callback
// (MPI_Attr_delete).
func (c *Comm) DeleteAttr(kv *Keyval) error {
	if err := c.ok(); err != nil {
		return c.raise(err)
	}
	if kv == nil {
		return c.raise(errf(ErrArg, "nil keyval"))
	}
	val, ok := c.attrs.del(kv.id)
	if !ok {
		return c.raise(errf(ErrArg, "no attribute cached under keyval %d", kv.id))
	}
	if kv.delF != nil {
		kv.delF(val)
	}
	return nil
}

// copyAttrsTo propagates attributes through the copy callbacks on Dup.
func (c *Comm) copyAttrsTo(dst *Comm) {
	c.attrs.mu.Lock()
	snapshot := make(map[int]any, len(c.attrs.vals))
	for id, v := range c.attrs.vals {
		snapshot[id] = v
	}
	c.attrs.mu.Unlock()
	keyvalTable.Lock()
	defer keyvalTable.Unlock()
	for id, v := range snapshot {
		kv, ok := keyvalTable.live[id]
		if !ok || kv.copyF == nil {
			continue // MPI_NULL_COPY_FN: no propagation
		}
		if newVal, propagate := kv.copyF(v); propagate {
			dst.attrs.put(id, newVal)
		}
	}
}

// deleteAllAttrs runs delete callbacks when the communicator is freed.
func (c *Comm) deleteAllAttrs() {
	c.attrs.mu.Lock()
	snapshot := make(map[int]any, len(c.attrs.vals))
	for id, v := range c.attrs.vals {
		snapshot[id] = v
	}
	c.attrs.vals = nil
	c.attrs.mu.Unlock()
	keyvalTable.Lock()
	defer keyvalTable.Unlock()
	for id, v := range snapshot {
		if kv, ok := keyvalTable.live[id]; ok && kv.delF != nil {
			kv.delF(v)
		}
	}
}
