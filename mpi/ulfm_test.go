package mpi_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"gompi/internal/transport"
	"gompi/mpi"
)

// errVictimDown is the sentinel a fault-injected rank returns once its
// endpoint has been killed; the driver asserts it is the only failure.
var errVictimDown = errors.New("victim endpoint killed (expected)")

// faultOn interposes transport.Faulty on one rank of an in-process job:
// after killAfter outbound frames the rank's endpoint dies (its device
// closes), deterministically reproducing a mid-collective SIGKILL.
func faultOn(victim, killAfter int) func(int, transport.Device) transport.Device {
	return func(rank int, dev transport.Device) transport.Device {
		if rank != victim {
			return dev
		}
		return transport.NewFaulty(dev, transport.FaultPlan{Rank: victim, KillAfterSends: killAfter})
	}
}

// TestULFMShrinkAfterRankDeath is the full recovery loop, in process and
// deterministic: 4 ranks iterate allreduces, rank 3's endpoint dies
// after a fixed frame count, survivors observe MPI_ERR_PROC_FAILED or
// MPI_ERR_REVOKED, revoke, ack, shrink — and the shrunken communicator
// carries working collectives and point-to-point traffic.
func TestULFMShrinkAfterRankDeath(t *testing.T) {
	const np, victim = 4, 3
	var mu sync.Mutex
	recovered := map[int]bool{}

	err := mpi.RunWith(mpi.RunOptions{
		NP: np, Device: "tcp",
		WrapDevice: faultOn(victim, 10),
	}, func(e *mpi.Env) error {
		w := e.CommWorld()
		rank := w.Rank()

		var ferr error
		for iter := 0; iter < 1000 && ferr == nil; iter++ {
			in, out := []int32{1}, []int32{0}
			ferr = w.Allreduce(in, 0, out, 0, 1, mpi.INT, mpi.SUM)
			if ferr == nil && out[0] != np {
				return fmt.Errorf("rank %d iter %d: allreduce = %d, want %d", rank, iter, out[0], np)
			}
		}
		if rank == victim {
			if ferr == nil {
				return errors.New("victim never died")
			}
			return errVictimDown
		}
		if ferr == nil {
			return fmt.Errorf("rank %d: survivor never observed the failure", rank)
		}
		if cls := mpi.ClassOf(ferr); cls != mpi.ErrProcFailed && cls != mpi.ErrRevoked {
			return fmt.Errorf("rank %d: failure class %v, want PROC_FAILED or REVOKED (%v)", rank, cls, ferr)
		}

		// The ULFM repair loop.
		if err := w.Revoke(); err != nil {
			return fmt.Errorf("rank %d: revoke: %w", rank, err)
		}
		if !w.Revoked() {
			return fmt.Errorf("rank %d: communicator not revoked after Revoke", rank)
		}
		if err := w.FailureAck(); err != nil {
			return fmt.Errorf("rank %d: ack: %w", rank, err)
		}
		shrunk, err := w.Shrink()
		if err != nil {
			return fmt.Errorf("rank %d: shrink: %w", rank, err)
		}
		if shrunk.Size() != np-1 {
			return fmt.Errorf("rank %d: shrunk size %d, want %d", rank, shrunk.Size(), np-1)
		}
		if shrunk.Revoked() {
			return fmt.Errorf("rank %d: shrunken communicator born revoked", rank)
		}

		// The repaired communicator must carry real traffic.
		in, out := []int32{1}, []int32{0}
		if err := shrunk.Allreduce(in, 0, out, 0, 1, mpi.INT, mpi.SUM); err != nil {
			return fmt.Errorf("rank %d: allreduce on shrunk: %w", rank, err)
		}
		if out[0] != np-1 {
			return fmt.Errorf("rank %d: shrunk allreduce = %d, want %d", rank, out[0], np-1)
		}
		root := []int32{0}
		if shrunk.Rank() == 0 {
			root[0] = 42
		}
		if err := shrunk.Bcast(root, 0, 1, mpi.INT, 0); err != nil {
			return fmt.Errorf("rank %d: bcast on shrunk: %w", rank, err)
		}
		if root[0] != 42 {
			return fmt.Errorf("rank %d: bcast on shrunk delivered %d", rank, root[0])
		}
		next := (shrunk.Rank() + 1) % shrunk.Size()
		prev := (shrunk.Rank() + shrunk.Size() - 1) % shrunk.Size()
		got := []int32{-1}
		if _, err := shrunk.Sendrecv([]int32{int32(shrunk.Rank())}, 0, 1, mpi.INT, next, 5,
			got, 0, 1, mpi.INT, prev, 5); err != nil {
			return fmt.Errorf("rank %d: sendrecv on shrunk: %w", rank, err)
		}
		if got[0] != int32(prev) {
			return fmt.Errorf("rank %d: ring got %d, want %d", rank, got[0], prev)
		}

		mu.Lock()
		recovered[rank] = true
		mu.Unlock()
		return nil
	})

	if err == nil {
		t.Fatal("job reported no error; the victim's sentinel should surface")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("rank %d: %v", victim, errVictimDown)) {
		t.Fatalf("job error = %v, want only the victim's sentinel", err)
	}
	for r := 0; r < np; r++ {
		if r != victim && !recovered[r] {
			t.Errorf("rank %d did not complete recovery", r)
		}
	}
}

// TestULFMAgreeAckCycle exercises the MPIX_Comm_agree contract: an
// agreement that observes an unacknowledged failure returns the folded
// flags with ErrProcFailed; after FailureAck the retry succeeds and
// FailedGroup names the dead member.
func TestULFMAgreeAckCycle(t *testing.T) {
	const np, victim = 3, 2
	err := mpi.RunWith(mpi.RunOptions{
		NP: np, Device: "tcp",
		WrapDevice: faultOn(victim, 6),
	}, func(e *mpi.Env) error {
		w := e.CommWorld()
		rank := w.Rank()

		var ferr error
		for iter := 0; iter < 1000 && ferr == nil; iter++ {
			in, out := []int32{1}, []int32{0}
			ferr = w.Allreduce(in, 0, out, 0, 1, mpi.INT, mpi.SUM)
		}
		if rank == victim {
			return errVictimDown
		}
		if ferr == nil {
			return fmt.Errorf("rank %d: survivor never observed the failure", rank)
		}
		// Revoke first (the ULFM loop): the other survivor may still be
		// blocked on us inside the abandoned collective, and only
		// revocation frees it to reach the agreement. Agree itself runs
		// on the revoked communicator — its traffic is recovery-tagged.
		if err := w.Revoke(); err != nil {
			return fmt.Errorf("rank %d: revoke: %w", rank, err)
		}

		flags, aerr := w.Agree(0xf0 | uint32(rank))
		if mpi.ClassOf(aerr) != mpi.ErrProcFailed {
			return fmt.Errorf("rank %d: first Agree err = %v, want MPI_ERR_PROC_FAILED", rank, aerr)
		}
		if err := w.FailureAck(); err != nil {
			return err
		}
		fg, err := w.FailedGroup()
		if err != nil {
			return err
		}
		if fg.Size() != 1 {
			return fmt.Errorf("rank %d: acked group size %d, want 1", rank, fg.Size())
		}
		flags, aerr = w.Agree(0xf0 | uint32(rank))
		if aerr != nil {
			return fmt.Errorf("rank %d: post-ack Agree: %w", rank, aerr)
		}
		if flags != 0xf0 {
			return fmt.Errorf("rank %d: agreed flags %#x, want 0xf0", rank, flags)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), errVictimDown.Error()) {
		t.Fatalf("job error = %v, want only the victim's sentinel", err)
	}
}

// TestULFMRequestErrorIdempotent: a request completed with
// MPI_ERR_PROC_FAILED reports the same terminal outcome through Wait,
// repeated Wait, Test and WaitCtx — no hang, no double-release.
func TestULFMRequestErrorIdempotent(t *testing.T) {
	const np, victim = 2, 1
	err := mpi.RunWith(mpi.RunOptions{
		NP: np, Device: "tcp",
		WrapDevice: faultOn(victim, 1),
	}, func(e *mpi.Env) error {
		w := e.CommWorld()
		if w.Rank() == victim {
			// First eager frame delivers; the second triggers the kill.
			w.Send([]int32{7}, 0, 1, mpi.INT, 0, 1) //nolint:errcheck
			w.Send([]int32{8}, 0, 1, mpi.INT, 0, 2) //nolint:errcheck
			return errVictimDown
		}
		got := []int32{0}
		if _, err := w.Recv(got, 0, 1, mpi.INT, victim, 1); err != nil || got[0] != 7 {
			return fmt.Errorf("pre-kill recv: %v (got %d)", err, got[0])
		}
		req, err := w.Irecv(got, 0, 1, mpi.INT, victim, 2)
		if err != nil {
			return err
		}
		st, werr := req.Wait()
		if mpi.ClassOf(werr) != mpi.ErrProcFailed {
			return fmt.Errorf("Wait after peer death: %v, want MPI_ERR_PROC_FAILED", werr)
		}
		if st.Error != mpi.ErrProcFailed {
			return fmt.Errorf("status error class %v, want MPI_ERR_PROC_FAILED", st.Error)
		}
		// Every further observation is idempotent.
		if _, werr2 := req.Wait(); !errors.Is(werr2, werr) {
			return fmt.Errorf("second Wait: %v, want the same error", werr2)
		}
		st3, done, werr3 := req.Test()
		if !done || !errors.Is(werr3, werr) || st3.Error != mpi.ErrProcFailed {
			return fmt.Errorf("Test after failure: done=%v err=%v", done, werr3)
		}
		if _, werr4 := req.WaitCtx(context.Background()); !errors.Is(werr4, werr) {
			return fmt.Errorf("WaitCtx after failure: %v, want the same error", werr4)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), errVictimDown.Error()) {
		t.Fatalf("job error = %v, want only the victim's sentinel", err)
	}
}
