package mpi

import (
	"gompi/internal/coll"
	"gompi/internal/dtype"
)

// Persistent collectives (MPI-4: MPI_Barrier_init, MPI_Bcast_init, …).
//
// Each *Init constructor validates and plans its collective exactly
// once — argument checks, tag minting, schedule compilation — and
// returns a PersistentRequest whose Start re-packs the (fixed) user
// buffers and hands the cached schedule to the runtime's shared
// progress pool. Like every collective, *Init is a collective call: all
// members must invoke the matching constructor in the same program
// order, and a constructor that fails local validation consumes the
// collective instance on the failing member (SkipInstance) so peers
// stay tag-aligned.
//
// Activations of one persistent collective reuse its pre-minted tags:
// Start enforces that the previous activation has completed locally,
// which keeps successive activations' traffic aligned pairwise.

// skipInit is the validation-failure exit of the *Init constructors:
// identical bookkeeping to runColl's failure path.
func (c *Intracomm) skipInit(err error) (*PersistentRequest, error) {
	c.cl.SkipInstance()
	return nil, c.raise(err)
}

// BarrierInit builds a persistent barrier (MPI_Barrier_init).
func (c *Intracomm) BarrierInit() (*PersistentRequest, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return c.skipInit(err)
	}
	return &PersistentRequest{comm: &c.Comm, pcol: c.cl.BarrierInit()}, nil
}

// BcastInit builds a persistent broadcast (MPI_Bcast_init): each
// activation distributes root's buffer section, re-read at Start, into
// every member's section at completion.
func (c *Intracomm) BcastInit(buf any, offset, count int, d *Datatype, root int) (*PersistentRequest, error) {
	c.env.enterCall()
	if err := c.collChecks(d, root); err != nil {
		return c.skipInit(err)
	}
	var wire []byte
	refresh := func() error {
		if c.rank != root {
			return nil
		}
		w, err := c.packColl(buf, offset, count, d)
		if err != nil {
			return err
		}
		wire = w
		return nil
	}
	if err := refresh(); err != nil {
		return c.skipInit(err)
	}
	pcol, err := c.cl.BcastInit(root, &wire)
	if err != nil {
		return nil, c.raise(mapEngineErr(err))
	}
	var fin func(res any) error
	if c.rank != root {
		fin = func(res any) error {
			if _, err := dtype.Unpack(res.([]byte), buf, offset, count, d.t); err != nil {
				return mapDataErr(err)
			}
			return nil
		}
	}
	return &PersistentRequest{comm: &c.Comm, pcol: pcol, refresh: refresh, fin: fin}, nil
}

// GatherInit builds a persistent gather (MPI_Gather_init): each
// activation collects the members' send sections, re-read at Start,
// into root's receive buffer at completion.
func (c *Intracomm) GatherInit(
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype, root int,
) (*PersistentRequest, error) {
	c.env.enterCall()
	err := c.collChecks(sdt, root)
	if err == nil && c.rank == root {
		err = c.checkType(rdt)
	}
	if err != nil {
		return c.skipInit(err)
	}
	var mine []byte
	refresh := func() error {
		w, err := c.packColl(sendbuf, soffset, scount, sdt)
		if err != nil {
			return err
		}
		mine = w
		return nil
	}
	if err := refresh(); err != nil {
		return c.skipInit(err)
	}
	pcol, perr := c.cl.GatherInit(root, &mine)
	if perr != nil {
		return nil, c.raise(mapEngineErr(perr))
	}
	var fin func(res any) error
	if c.rank == root {
		fin = blocksFin(recvbuf, roffset, rcount, rdt)
	}
	return &PersistentRequest{comm: &c.Comm, pcol: pcol, refresh: refresh, fin: fin}, nil
}

// AllgatherInit builds a persistent allgather (MPI_Allgather_init).
func (c *Intracomm) AllgatherInit(
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype,
) (*PersistentRequest, error) {
	c.env.enterCall()
	err := c.ok()
	if err == nil {
		err = c.checkType(sdt)
	}
	if err == nil {
		err = c.checkType(rdt)
	}
	if err != nil {
		return c.skipInit(err)
	}
	var mine []byte
	refresh := func() error {
		w, err := c.packColl(sendbuf, soffset, scount, sdt)
		if err != nil {
			return err
		}
		mine = w
		return nil
	}
	if err := refresh(); err != nil {
		return c.skipInit(err)
	}
	return &PersistentRequest{
		comm: &c.Comm, pcol: c.cl.AllgatherInit(&mine),
		refresh: refresh, fin: blocksFin(recvbuf, roffset, rcount, rdt),
	}, nil
}

// reduceRefresh builds the per-activation re-extract of a reduction
// family send section. The first extraction also fixes the operand
// class the cached schedule folds with.
func (c *Intracomm) reduceRefresh(sendbuf any, soffset, count int, d *Datatype, dense *any) func() error {
	return func() error {
		dv, err := dtype.Extract(sendbuf, soffset, count, d.t)
		if err != nil {
			return mapDataErr(err)
		}
		*dense = dv
		return nil
	}
}

// ReduceInit builds a persistent reduction (MPI_Reduce_init): each
// activation folds the members' send sections, re-read at Start, into
// root's receive section at completion.
func (c *Intracomm) ReduceInit(
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op, root int,
) (*PersistentRequest, error) {
	c.env.enterCall()
	err := c.collChecks(d, root)
	if err == nil {
		err = checkOp(op, d)
	}
	if err != nil {
		return c.skipInit(err)
	}
	var dense any
	refresh := c.reduceRefresh(sendbuf, soffset, count, d, &dense)
	if err := refresh(); err != nil {
		return c.skipInit(err)
	}
	pcol, perr := c.cl.ReduceInit(root, &dense, op.op)
	if perr != nil {
		return nil, c.raise(mapEngineErr(perr))
	}
	var fin func(res any) error
	if c.rank == root {
		fin = depositFin(recvbuf, roffset, count, d)
	}
	return &PersistentRequest{comm: &c.Comm, pcol: pcol, refresh: refresh, fin: fin}, nil
}

// checkReduceInit is the shared validation of the rootless reduction
// family constructors.
func (c *Intracomm) checkReduceInit(d *Datatype, op *Op) error {
	if err := c.ok(); err != nil {
		return err
	}
	if err := c.checkType(d); err != nil {
		return err
	}
	return checkOp(op, d)
}

// AllreduceInit builds a persistent all-reduction (MPI_Allreduce_init):
// the canonical persistent overlap primitive — Init once, then per
// iteration Start, compute, Wait.
func (c *Intracomm) AllreduceInit(
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op,
) (*PersistentRequest, error) {
	c.env.enterCall()
	if err := c.checkReduceInit(d, op); err != nil {
		return c.skipInit(err)
	}
	var dense any
	refresh := c.reduceRefresh(sendbuf, soffset, count, d, &dense)
	if err := refresh(); err != nil {
		return c.skipInit(err)
	}
	return &PersistentRequest{
		comm: &c.Comm, pcol: c.cl.AllreduceInit(&dense, op.op),
		refresh: refresh, fin: depositFin(recvbuf, roffset, count, d),
	}, nil
}

// ScanInit builds a persistent inclusive prefix reduction
// (MPI_Scan_init).
func (c *Intracomm) ScanInit(
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op,
) (*PersistentRequest, error) {
	return c.scanInit(false, sendbuf, soffset, recvbuf, roffset, count, d, op)
}

// ExscanInit builds a persistent exclusive prefix reduction
// (MPI_Exscan_init); rank 0's receive buffer is left untouched, as in
// Exscan.
func (c *Intracomm) ExscanInit(
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op,
) (*PersistentRequest, error) {
	return c.scanInit(true, sendbuf, soffset, recvbuf, roffset, count, d, op)
}

func (c *Intracomm) scanInit(
	exclusive bool,
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op,
) (*PersistentRequest, error) {
	c.env.enterCall()
	if err := c.checkReduceInit(d, op); err != nil {
		return c.skipInit(err)
	}
	var dense any
	refresh := c.reduceRefresh(sendbuf, soffset, count, d, &dense)
	if err := refresh(); err != nil {
		return c.skipInit(err)
	}
	var pcol *coll.Persistent
	if exclusive {
		pcol = c.cl.ExscanInit(&dense, op.op)
	} else {
		pcol = c.cl.ScanInit(&dense, op.op)
	}
	deposit := depositFin(recvbuf, roffset, count, d)
	fin := func(res any) error {
		if res == nil {
			return nil // Exscan at rank 0
		}
		return deposit(res)
	}
	return &PersistentRequest{comm: &c.Comm, pcol: pcol, refresh: refresh, fin: fin}, nil
}
