package mpi

import (
	"encoding/binary"

	"gompi/internal/core"
)

// Intercomm is a communicator connecting two disjoint groups (paper
// Fig. 1): point-to-point ranks address the remote group.
type Intercomm struct {
	Comm
	// low marks the side that orders first when Merge receives equal
	// high flags (decided by leader world rank at creation).
	low bool
}

// tagInter is the reserved internal tag used on the collective context
// for leader-to-leader exchanges; it cannot collide with the collective
// algorithms' own tags.
const tagInter = 0x7fe0

// CreateIntercomm builds an intercommunicator from two intracommunicators
// joined by a peer communicator at the leaders
// (MPI_Intercomm_create; mpiJava Intracomm.Create_intercomm). All members
// of the local communicator call it; peer and remoteLeader are
// significant at the local leader only.
func (c *Intracomm) CreateIntercomm(peer *Comm, localLeader, remoteLeader, tag int) (*Intercomm, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return nil, c.raise(err)
	}
	if localLeader < 0 || localLeader >= c.Size() {
		return nil, c.raise(errf(ErrRank, "local leader %d out of range", localLeader))
	}
	base, err := c.cl.AgreeContextBase()
	if err != nil {
		return nil, c.raise(errf(ErrIntern, "%v", err))
	}

	// Leader exchange: context candidate + local group world ranks.
	var remoteInfo []byte
	if c.rank == localLeader {
		if peer == nil {
			return nil, c.raise(errf(ErrComm, "local leader needs a peer communicator"))
		}
		mine := encodeInterInfo(base, c.env.proc.Rank(), c.group)
		sreq, err := peer.Isend(mine, 0, len(mine), BYTE, remoteLeader, tag)
		if err != nil {
			return nil, c.raise(err)
		}
		st, err := peer.Probe(remoteLeader, tag)
		if err != nil {
			return nil, c.raise(err)
		}
		remoteInfo = make([]byte, st.Bytes())
		if _, err := peer.Recv(remoteInfo, 0, len(remoteInfo), BYTE, remoteLeader, tag); err != nil {
			return nil, c.raise(err)
		}
		if _, err := sreq.Wait(); err != nil {
			return nil, c.raise(err)
		}
	}
	remoteInfo, err = c.cl.Bcast(localLeader, remoteInfo)
	if err != nil {
		return nil, c.raise(errf(ErrIntern, "%v", err))
	}
	remoteBase, remoteLeaderWorld, remoteGroup, err := decodeInterInfo(remoteInfo)
	if err != nil {
		return nil, c.raise(errf(ErrIntern, "%v", err))
	}

	final := base
	if remoteBase > final {
		final = remoteBase
	}
	c.env.proc.CommitContexts(final)

	// The leaders' world ranks give a deterministic, symmetric
	// tie-break for Merge ordering.
	localLeaderWorld := c.group[localLeader]
	ic := &Intercomm{low: localLeaderWorld < remoteLeaderWorld}
	c.env.buildComm(&ic.Comm, c.group, c.rank, final, c.name+".inter")
	ic.inter = true
	ic.remote = remoteGroup
	// Point-to-point ranks on an intercommunicator address the remote
	// group: register it on the point-to-point context so the engine
	// attributes peer deaths and routes revocations through it.
	c.env.proc.RegisterGroupCtx(final, remoteGroup)
	return ic, nil
}

func encodeInterInfo(base int32, leaderWorld int, group []int) []byte {
	out := make([]byte, 0, 12+4*len(group))
	out = binary.LittleEndian.AppendUint32(out, uint32(base))
	out = binary.LittleEndian.AppendUint32(out, uint32(int32(leaderWorld)))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(group)))
	for _, w := range group {
		out = binary.LittleEndian.AppendUint32(out, uint32(int32(w)))
	}
	return out
}

func decodeInterInfo(b []byte) (base int32, leaderWorld int, group []int, err error) {
	if len(b) < 12 {
		return 0, 0, nil, errf(ErrIntern, "short intercomm exchange payload")
	}
	base = int32(binary.LittleEndian.Uint32(b[0:]))
	leaderWorld = int(int32(binary.LittleEndian.Uint32(b[4:])))
	n := int(binary.LittleEndian.Uint32(b[8:]))
	if len(b) < 12+4*n {
		return 0, 0, nil, errf(ErrIntern, "truncated intercomm exchange payload")
	}
	group = make([]int, n)
	for i := range group {
		group[i] = int(int32(binary.LittleEndian.Uint32(b[12+4*i:])))
	}
	return base, leaderWorld, group, nil
}

// RemoteSize returns the size of the remote group
// (MPI_Comm_remote_size).
func (ic *Intercomm) RemoteSize() int { return len(ic.remote) }

// RemoteGroup returns the remote group (MPI_Comm_remote_group).
func (ic *Intercomm) RemoteGroup() *Group {
	return &Group{ranks: append([]int(nil), ic.remote...), me: ic.env.proc.Rank()}
}

// interExchange performs a symmetric leader-to-leader exchange on the
// reserved collective context, then broadcasts the remote payload within
// the local group.
func (ic *Intercomm) interExchange(mine []byte) ([]byte, error) {
	var remote []byte
	if ic.rank == 0 {
		sreq, err := ic.env.proc.Isend(ic.collCtx, ic.rank, ic.remote[0], tagInter, mine, core.ModeStandard, false)
		if err != nil {
			return nil, err
		}
		rreq := ic.env.proc.Irecv(ic.collCtx, 0, tagInter)
		rreq.Wait()
		sreq.Wait()
		remote = rreq.Payload
	}
	return ic.cl.Bcast(0, remote)
}

// Merge joins the two sides into one intracommunicator (MPI_Intercomm_merge).
// The side passing high=false is ordered first; on ties the side with the
// lower leader world rank at creation comes first. Collective over both
// sides.
func (ic *Intercomm) Merge(high bool) (*Intracomm, error) {
	ic.env.enterCall()
	if err := ic.ok(); err != nil {
		return nil, ic.raise(err)
	}
	base, err := ic.cl.AgreeContextBase()
	if err != nil {
		return nil, ic.raise(errf(ErrIntern, "%v", err))
	}
	mine := make([]byte, 5)
	binary.LittleEndian.PutUint32(mine, uint32(base))
	if high {
		mine[4] = 1
	}
	remote, err := ic.interExchange(mine)
	if err != nil {
		return nil, ic.raise(errf(ErrIntern, "%v", err))
	}
	if len(remote) < 5 {
		return nil, ic.raise(errf(ErrIntern, "short merge exchange payload"))
	}
	remoteBase := int32(binary.LittleEndian.Uint32(remote))
	remoteHigh := remote[4] == 1

	final := base
	if remoteBase > final {
		final = remoteBase
	}
	ic.env.proc.CommitContexts(final)

	iAmFirst := ic.low
	if high != remoteHigh {
		iAmFirst = !high
	}
	var group []int
	if iAmFirst {
		group = append(append([]int(nil), ic.group...), ic.remote...)
	} else {
		group = append(append([]int(nil), ic.remote...), ic.group...)
	}
	me := ic.env.proc.Rank()
	myRank := -1
	for i, w := range group {
		if w == me {
			myRank = i
		}
	}
	if myRank < 0 {
		return nil, ic.raise(errf(ErrIntern, "merge: caller missing from union group"))
	}
	return newIntracomm(ic.env, group, myRank, final, ic.name+".merge"), nil
}

// Dup duplicates the intercommunicator with fresh contexts
// (MPI_Comm_dup on an intercommunicator). Collective over both sides.
func (ic *Intercomm) Dup() (*Intercomm, error) {
	ic.env.enterCall()
	if err := ic.ok(); err != nil {
		return nil, ic.raise(err)
	}
	base, err := ic.cl.AgreeContextBase()
	if err != nil {
		return nil, ic.raise(errf(ErrIntern, "%v", err))
	}
	mine := make([]byte, 4)
	binary.LittleEndian.PutUint32(mine, uint32(base))
	remote, err := ic.interExchange(mine)
	if err != nil {
		return nil, ic.raise(errf(ErrIntern, "%v", err))
	}
	if len(remote) < 4 {
		return nil, ic.raise(errf(ErrIntern, "short dup exchange payload"))
	}
	remoteBase := int32(binary.LittleEndian.Uint32(remote))
	final := base
	if remoteBase > final {
		final = remoteBase
	}
	ic.env.proc.CommitContexts(final)

	out := &Intercomm{low: ic.low}
	ic.env.buildComm(&out.Comm, ic.group, ic.rank, final, ic.name+".dup")
	out.inter = true
	out.remote = ic.remote
	ic.env.proc.RegisterGroupCtx(final, ic.remote)
	return out, nil
}
