package mpi_test

import (
	"testing"

	"gompi/mpi"
)

func TestAttributeCaching(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		deleted := 0
		kv := mpi.CreateKeyval(
			func(v any) (any, bool) { return v.(int) + 1, true },
			func(v any) { deleted++ },
		)
		defer kv.Free()
		if _, ok := w.GetAttr(kv); ok {
			t.Error("attribute present before Put")
		}
		if err := w.PutAttr(kv, 10); err != nil {
			return err
		}
		if v, ok := w.GetAttr(kv); !ok || v.(int) != 10 {
			t.Errorf("GetAttr: %v %v", v, ok)
		}
		// Dup runs the copy callback.
		dup, err := w.Dup()
		if err != nil {
			return err
		}
		if v, ok := dup.GetAttr(kv); !ok || v.(int) != 11 {
			t.Errorf("copied attr: %v %v", v, ok)
		}
		// Overwrite deletes the old value.
		if err := dup.PutAttr(kv, 99); err != nil {
			return err
		}
		if deleted != 1 {
			t.Errorf("delete callback ran %d times after overwrite", deleted)
		}
		if err := dup.DeleteAttr(kv); err != nil {
			return err
		}
		if deleted != 2 {
			t.Errorf("delete callback ran %d times after DeleteAttr", deleted)
		}
		if err := dup.DeleteAttr(kv); mpi.ClassOf(err) != mpi.ErrArg {
			t.Errorf("double delete: %v", err)
		}
		// Free runs remaining delete callbacks.
		if err := w.PutAttr(kv, 5); err != nil {
			return err
		}
		if err := dup.Free(); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNullCopyFunctionDoesNotPropagate(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		kv := mpi.CreateKeyval(nil, nil)
		defer kv.Free()
		if err := w.PutAttr(kv, "local only"); err != nil {
			return err
		}
		dup, err := w.Dup()
		if err != nil {
			return err
		}
		if _, ok := dup.GetAttr(kv); ok {
			t.Error("nil copy function must not propagate attributes")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPredefinedEnvAttributes(t *testing.T) {
	err := mpi.Run(1, func(env *mpi.Env) error {
		w := env.CommWorld()
		if v, ok := w.GetAttr(mpi.KeyTagUB); !ok || v.(int) != mpi.TagUB {
			t.Errorf("TAG_UB attr: %v %v", v, ok)
		}
		if v, ok := w.GetAttr(mpi.KeyWtimeIsGlobal); !ok || v.(bool) {
			t.Errorf("WTIME_IS_GLOBAL attr: %v %v", v, ok)
		}
		if _, ok := w.GetAttr(mpi.KeyIO); !ok {
			t.Error("IO attr missing")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompareCommsAndTopoTest(t *testing.T) {
	err := mpi.Run(3, func(env *mpi.Env) error {
		w := env.CommWorld()
		if mpi.CompareComms(&w.Comm, &w.Comm) != mpi.Ident {
			t.Error("self compare not Ident")
		}
		dup, err := w.Dup()
		if err != nil {
			return err
		}
		if mpi.CompareComms(&w.Comm, &dup.Comm) != mpi.Congruent {
			t.Error("dup compare not Congruent")
		}
		sub, err := w.Split(0, -w.Rank()) // same members, reversed order
		if err != nil {
			return err
		}
		if got := mpi.CompareComms(&w.Comm, &sub.Comm); got != mpi.Similar {
			t.Errorf("reversed compare = %d, want Similar", got)
		}
		if major, minor := mpi.GetVersion(); major != 1 || minor != 1 {
			t.Errorf("version %d.%d", major, minor)
		}
		cart, err := w.CreateCart([]int{3}, []bool{true}, false)
		if err != nil {
			return err
		}
		if mpi.TopoTest(cart) != mpi.CartTopology {
			t.Error("cart TopoTest")
		}
		if mpi.TopoTest(w) != mpi.Undefined {
			t.Error("plain comm TopoTest")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExscan(t *testing.T) {
	err := mpi.Run(5, func(env *mpi.Env) error {
		w := env.CommWorld()
		in := []int32{int32(w.Rank() + 1)}
		out := []int32{-99}
		if err := w.Exscan(in, 0, out, 0, 1, mpi.INT, mpi.SUM); err != nil {
			return err
		}
		if w.Rank() == 0 {
			if out[0] != -99 {
				t.Errorf("rank 0 exscan buffer touched: %d", out[0])
			}
			return nil
		}
		want := int32(w.Rank() * (w.Rank() + 1) / 2)
		if out[0] != want {
			t.Errorf("rank %d: exscan %d, want %d", w.Rank(), out[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWinPutGetFence(t *testing.T) {
	err := mpi.Run(4, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank, size := w.Rank(), w.Size()
		window := make([]int32, size)
		win, err := w.CreateWin(window, mpi.INT)
		if err != nil {
			return err
		}
		// Every rank writes its rank into slot `rank` of every window.
		for target := 0; target < size; target++ {
			val := []int32{int32(rank * 10)}
			if err := win.Put(val, 0, 1, mpi.INT, target, rank); err != nil {
				return err
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		for r := 0; r < size; r++ {
			if window[r] != int32(r*10) {
				t.Errorf("rank %d window[%d] = %d", rank, r, window[r])
			}
		}
		// Read the right neighbour's whole window.
		got := make([]int32, size)
		if err := win.Get(got, 0, size, mpi.INT, (rank+1)%size, 0); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		for r := 0; r < size; r++ {
			if got[r] != int32(r*10) {
				t.Errorf("rank %d got[%d] = %d", rank, r, got[r])
			}
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWinAccumulate(t *testing.T) {
	err := mpi.Run(3, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank, size := w.Rank(), w.Size()
		window := make([]int64, 2)
		win, err := w.CreateWin(window, mpi.LONG)
		if err != nil {
			return err
		}
		// Everyone accumulates into rank 0's window.
		contrib := []int64{int64(rank + 1), int64(rank)}
		if err := win.Accumulate(contrib, 0, 2, mpi.LONG, 0, 0, mpi.SUM); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if rank == 0 {
			wantA := int64(size * (size + 1) / 2)
			wantB := int64(size * (size - 1) / 2)
			if window[0] != wantA || window[1] != wantB {
				t.Errorf("accumulated window: %v, want [%d %d]", window, wantA, wantB)
			}
		}
		// Close the read epoch before the next one-sided phase — local
		// window reads and remote stores must be fence-separated (MPI-2
		// §6.4 access-epoch rule).
		if err := win.Fence(); err != nil {
			return err
		}
		// REPLACE overwrites.
		if rank == 1 {
			if err := win.Accumulate([]int64{-7, -8}, 0, 2, mpi.LONG, 0, 0, mpi.REPLACE); err != nil {
				return err
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if rank == 0 && (window[0] != -7 || window[1] != -8) {
			t.Errorf("REPLACE window: %v", window)
		}
		// User-defined ops are rejected.
		bad := mpi.NewOp(func(in, inout any) {}, true)
		if err := win.Accumulate(contrib, 0, 1, mpi.LONG, 0, 0, bad); mpi.ClassOf(err) != mpi.ErrOp {
			t.Errorf("user op accumulate: %v", err)
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWinErrors(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		window := make([]float64, 4)
		// Non-basic window type is rejected.
		vec, _ := mpi.TypeVector(2, 1, 2, mpi.DOUBLE)
		vec.Commit()
		if _, err := w.CreateWin(window, vec); mpi.ClassOf(err) != mpi.ErrType {
			t.Errorf("derived window type: %v", err)
		}
		// All ranks failed identically above, so no one holds a window;
		// proceed to a valid one.
		win, err := w.CreateWin(window, mpi.DOUBLE)
		if err != nil {
			return err
		}
		if err := win.Put([]float64{1}, 0, 1, mpi.DOUBLE, 9, 0); mpi.ClassOf(err) != mpi.ErrRank {
			t.Errorf("bad target: %v", err)
		}
		// Out-of-range displacement surfaces at the next fence on the
		// target side.
		if err := win.Free(); err != nil {
			return err
		}
		if err := win.Put([]float64{1}, 0, 1, mpi.DOUBLE, 0, 0); mpi.ClassOf(err) != mpi.ErrComm {
			t.Errorf("put on freed window: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
