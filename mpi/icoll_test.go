package mpi_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"gompi/mpi"
)

// TestNonblockingCollectivesOverlap: several nonblocking collectives in
// flight on one communicator at once, waited out of start order; the
// receive buffers must be filled only at completion and must not
// cross-contaminate.
func TestNonblockingCollectivesOverlap(t *testing.T) {
	err := mpi.Run(4, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank, size := w.Rank(), w.Size()

		sum := []int64{0}
		all := make([]int32, size)
		bc := make([]float64, 2)
		if rank == 1 {
			bc[0], bc[1] = 2.5, -1.5
		}

		rSum, err := w.Iallreduce([]int64{int64(rank + 1)}, 0, sum, 0, 1, mpi.LONG, mpi.SUM)
		if err != nil {
			return err
		}
		rAll, err := w.Iallgather([]int32{int32(rank * 3)}, 0, 1, mpi.INT, all, 0, 1, mpi.INT)
		if err != nil {
			return err
		}
		rBc, err := w.Ibcast(bc, 0, 2, mpi.DOUBLE, 1)
		if err != nil {
			return err
		}
		rBar, err := w.Ibarrier()
		if err != nil {
			return err
		}

		// Wait in reverse start order.
		if _, err := rBar.Wait(); err != nil {
			return err
		}
		if _, err := rBc.Wait(); err != nil {
			return err
		}
		if _, err := rAll.Wait(); err != nil {
			return err
		}
		if _, err := rSum.Wait(); err != nil {
			return err
		}

		if want := int64(size * (size + 1) / 2); sum[0] != want {
			t.Errorf("rank %d: Iallreduce %d, want %d", rank, sum[0], want)
		}
		for r := range all {
			if all[r] != int32(r*3) {
				t.Errorf("rank %d: Iallgather slot %d = %d", rank, r, all[r])
			}
		}
		if bc[0] != 2.5 || bc[1] != -1.5 {
			t.Errorf("rank %d: Ibcast %v", rank, bc)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNonblockingRootedCollectives: Igather/Iscatter/Ireduce complete
// with the same results as their blocking forms, with Test-polling on
// one of them.
func TestNonblockingRootedCollectives(t *testing.T) {
	err := mpi.Run(3, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank, size := w.Rank(), w.Size()

		gat := make([]int32, size)
		rG, err := w.Igather([]int32{int32(rank + 10)}, 0, 1, mpi.INT, gat, 0, 1, mpi.INT, 2)
		if err != nil {
			return err
		}
		var sc []int64
		if rank == 0 {
			sc = []int64{100, 101, 102}
		}
		mine := []int64{-1}
		rS, err := w.Iscatter(sc, 0, 1, mpi.LONG, mine, 0, 1, mpi.LONG, 0)
		if err != nil {
			return err
		}
		red := []float64{0}
		rR, err := w.Ireduce([]float64{float64(rank)}, 0, red, 0, 1, mpi.DOUBLE, mpi.MAX, 1)
		if err != nil {
			return err
		}

		for {
			_, done, err := rG.Test()
			if err != nil {
				return err
			}
			if done {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
		if _, err := rS.Wait(); err != nil {
			return err
		}
		if _, err := rR.Wait(); err != nil {
			return err
		}

		if rank == 2 {
			for r := range gat {
				if gat[r] != int32(r+10) {
					t.Errorf("Igather slot %d = %d", r, gat[r])
				}
			}
		}
		if mine[0] != int64(100+rank) {
			t.Errorf("rank %d: Iscatter %d", rank, mine[0])
		}
		if rank == 1 && red[0] != float64(size-1) {
			t.Errorf("Ireduce max %v", red[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollectiveCtxVariantsComplete: the *Ctx forms under a background
// (never-cancelled) context are exactly the blocking collectives.
func TestCollectiveCtxVariantsComplete(t *testing.T) {
	err := mpi.Run(3, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank, size := w.Rank(), w.Size()
		ctx := context.Background()

		if err := w.BarrierCtx(ctx); err != nil {
			return err
		}
		buf := []int32{0}
		if rank == 0 {
			buf[0] = 42
		}
		if err := w.BcastCtx(ctx, buf, 0, 1, mpi.INT, 0); err != nil {
			return err
		}
		if buf[0] != 42 {
			t.Errorf("rank %d: BcastCtx %d", rank, buf[0])
		}
		out := []int32{0}
		if err := w.AllreduceCtx(ctx, []int32{int32(rank + 1)}, 0, out, 0, 1, mpi.INT, mpi.SUM); err != nil {
			return err
		}
		if want := int32(size * (size + 1) / 2); out[0] != want {
			t.Errorf("rank %d: AllreduceCtx %d, want %d", rank, out[0], want)
		}
		scan := []int32{0}
		if err := w.ScanCtx(ctx, []int32{int32(rank + 1)}, 0, scan, 0, 1, mpi.INT, mpi.SUM); err != nil {
			return err
		}
		if want := int32((rank + 1) * (rank + 2) / 2); scan[0] != want {
			t.Errorf("rank %d: ScanCtx %d, want %d", rank, scan[0], want)
		}
		ex := []int32{-7}
		if err := w.ExscanCtx(ctx, []int32{int32(rank + 1)}, 0, ex, 0, 1, mpi.INT, mpi.SUM); err != nil {
			return err
		}
		if rank == 0 {
			if ex[0] != -7 {
				t.Errorf("rank 0: ExscanCtx touched the buffer: %d", ex[0])
			}
		} else if want := int32(rank * (rank + 1) / 2); ex[0] != want {
			t.Errorf("rank %d: ExscanCtx %d, want %d", rank, ex[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollectiveWaitCtxCancelAndRecover: a collective stalled on a late
// root returns ctx.Err() promptly; the cancelled member's buffer stays
// untouched, and the same communicator keeps working for both members
// afterwards.
func TestCollectiveWaitCtxCancelAndRecover(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 1 {
			buf := []int32{-1}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			start := time.Now()
			err := w.BcastCtx(ctx, buf, 0, 1, mpi.INT, 0)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("BcastCtx on absent root: %v, want deadline exceeded", err)
			}
			if waited := time.Since(start); waited > 5*time.Second {
				t.Errorf("BcastCtx took %v, not prompt", waited)
			}
			if buf[0] != -1 {
				t.Errorf("cancelled BcastCtx touched the buffer: %d", buf[0])
			}
		} else {
			// The root shows up late, after rank 1 abandoned the
			// instance, and completes its (send-only) half.
			time.Sleep(150 * time.Millisecond)
			if err := w.Bcast([]int32{9}, 0, 1, mpi.INT, 0); err != nil {
				return err
			}
		}
		// Same communicator, next collectives: both members participate.
		out := []int32{0}
		if err := w.Allreduce([]int32{int32(w.Rank() + 1)}, 0, out, 0, 1, mpi.INT, mpi.SUM); err != nil {
			return err
		}
		if out[0] != 3 {
			t.Errorf("rank %d: allreduce after cancellation %d, want 3", w.Rank(), out[0])
		}
		buf := []int32{0}
		if w.Rank() == 0 {
			buf[0] = 77
		}
		if err := w.Bcast(buf, 0, 1, mpi.INT, 0); err != nil {
			return err
		}
		if buf[0] != 77 {
			t.Errorf("rank %d: bcast after cancellation %d", w.Rank(), buf[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWaitAfterCancelledWaitCtx: reaping a request that a WaitCtx
// already cancelled reports ErrCollectiveCancelled — control flow, not
// an internal MPI error — and never panics under ErrorsAreFatal.
func TestWaitAfterCancelledWaitCtx(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 1 {
			w.SetErrhandler(mpi.ErrorsAreFatal) // a raise here would panic
			defer w.SetErrhandler(mpi.ErrorsReturn)
			buf := []int32{-1}
			req, err := w.Ibcast(buf, 0, 1, mpi.INT, 0)
			if err != nil {
				return err
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			if _, err := req.WaitCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("WaitCtx: %v", err)
			}
			if _, err := req.Wait(); !errors.Is(err, mpi.ErrCollectiveCancelled) {
				t.Errorf("Wait after cancelled WaitCtx: %v, want ErrCollectiveCancelled", err)
			}
			_, done, err := req.Test()
			if !done || !errors.Is(err, mpi.ErrCollectiveCancelled) {
				t.Errorf("Test after cancelled WaitCtx: done=%v err=%v", done, err)
			}
		} else {
			time.Sleep(120 * time.Millisecond)
			if err := w.Bcast([]int32{1}, 0, 1, mpi.INT, 0); err != nil {
				return err
			}
		}
		return w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNonblockingVVariants: Igatherv/Iscatterv/Iallgatherv/Ialltoallv
// round-trip varying per-rank sizes.
func TestNonblockingVVariants(t *testing.T) {
	err := mpi.Run(3, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank, size := w.Rank(), w.Size()
		counts := make([]int, size)
		displs := make([]int, size)
		total := 0
		for r := 0; r < size; r++ {
			counts[r] = r + 1
			displs[r] = total
			total += r + 1
		}

		send := make([]int32, rank+1)
		for i := range send {
			send[i] = int32(rank*10 + i)
		}
		gat := make([]int32, total)
		rG, err := w.Igatherv(send, 0, rank+1, mpi.INT, gat, 0, counts, displs, mpi.INT, 0)
		if err != nil {
			return err
		}
		all := make([]int32, total)
		rA, err := w.Iallgatherv(send, 0, rank+1, mpi.INT, all, 0, counts, displs, mpi.INT)
		if err != nil {
			return err
		}
		if _, err := rG.Wait(); err != nil {
			return err
		}
		if _, err := rA.Wait(); err != nil {
			return err
		}
		check := func(name string, got []int32) {
			for r := 0; r < size; r++ {
				for i := 0; i < counts[r]; i++ {
					if got[displs[r]+i] != int32(r*10+i) {
						t.Errorf("rank %d: %s slot (%d,%d) = %d", rank, name, r, i, got[displs[r]+i])
					}
				}
			}
		}
		if rank == 0 {
			check("Igatherv", gat)
		}
		check("Iallgatherv", all)

		// Iscatterv: rank 0 deals the triangle back out.
		var pool []int32
		if rank == 0 {
			pool = all
		}
		back := make([]int32, rank+1)
		rS, err := w.Iscatterv(pool, 0, counts, displs, mpi.INT, back, 0, rank+1, mpi.INT, 0)
		if err != nil {
			return err
		}
		if _, err := rS.Wait(); err != nil {
			return err
		}
		for i := range back {
			if back[i] != int32(rank*10+i) {
				t.Errorf("rank %d: Iscatterv slot %d = %d", rank, i, back[i])
			}
		}

		// Ialltoallv: member r sends j+1 elements to member j.
		scounts := make([]int, size)
		sdispls := make([]int, size)
		stotal := 0
		for j := 0; j < size; j++ {
			scounts[j] = j + 1
			sdispls[j] = stotal
			stotal += j + 1
		}
		sbuf := make([]int32, stotal)
		for j := 0; j < size; j++ {
			for i := 0; i < scounts[j]; i++ {
				sbuf[sdispls[j]+i] = int32(rank*100 + j)
			}
		}
		rcounts := make([]int, size)
		rdispls := make([]int, size)
		rtotal := 0
		for j := 0; j < size; j++ {
			rcounts[j] = rank + 1
			rdispls[j] = rtotal
			rtotal += rank + 1
		}
		rbuf := make([]int32, rtotal)
		rT, err := w.Ialltoallv(sbuf, 0, scounts, sdispls, mpi.INT, rbuf, 0, rcounts, rdispls, mpi.INT)
		if err != nil {
			return err
		}
		if _, err := rT.Wait(); err != nil {
			return err
		}
		for j := 0; j < size; j++ {
			for i := 0; i < rank+1; i++ {
				if rbuf[rdispls[j]+i] != int32(j*100+rank) {
					t.Errorf("rank %d: Ialltoallv slot (%d,%d) = %d", rank, j, i, rbuf[rdispls[j]+i])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestVVariantNilCountsRaiseErrArg: v-variants called with nil counts
// and displacements must raise ErrArg where the layout is significant —
// never panic in the deposit, never silently no-op. The probes run on
// COMM_SELF: a failed collective call consumes an instance number like
// any other (see TestSeqAlignedAfterAsymmetricError), so erroneous
// calls made on one world rank only would themselves violate the
// same-order rule the sequence relies on.
func TestVVariantNilCountsRaiseErrArg(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		c := env.CommSelf()
		buf := []int32{1}
		recv := []int32{-1}
		if err := c.Gatherv(buf, 0, 1, mpi.INT, recv, 0, nil, nil, mpi.INT, 0); mpi.ClassOf(err) != mpi.ErrArg {
			t.Errorf("Gatherv nil counts: %v", err)
		}
		if err := c.Scatterv(buf, 0, nil, nil, mpi.INT, recv, 0, 1, mpi.INT, 0); mpi.ClassOf(err) != mpi.ErrArg {
			t.Errorf("Scatterv nil counts: %v", err)
		}
		if recv[0] != -1 {
			t.Errorf("Scatterv nil counts touched recv: %d", recv[0])
		}
		if _, err := c.Igatherv(buf, 0, 1, mpi.INT, recv, 0, nil, nil, mpi.INT, 0); mpi.ClassOf(err) != mpi.ErrArg {
			t.Errorf("Igatherv nil counts: %v", err)
		}
		if err := c.Allgatherv(buf, 0, 1, mpi.INT, recv, 0, nil, nil, mpi.INT); mpi.ClassOf(err) != mpi.ErrArg {
			t.Errorf("Allgatherv nil counts: %v", err)
		}
		if err := c.Alltoallv(buf, 0, nil, nil, mpi.INT, recv, 0, nil, nil, mpi.INT); mpi.ClassOf(err) != mpi.ErrArg {
			t.Errorf("Alltoallv nil counts: %v", err)
		}
		return env.CommWorld().Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSeqAlignedAfterAsymmetricError: a rank-asymmetric argument error
// (root-side ErrArg while the other member's matching call proceeds)
// must not desynchronize the per-instance tag sequence — later
// collectives on the same communicator still line up and complete.
func TestSeqAlignedAfterAsymmetricError(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		send := []int32{int32(w.Rank() + 40)}
		if w.Rank() == 0 {
			// Root aborts at validation: nil recvcounts/displs.
			recv := make([]int32, 2)
			if err := w.Gatherv(send, 0, 1, mpi.INT, recv, 0, nil, nil, mpi.INT, 0); mpi.ClassOf(err) != mpi.ErrArg {
				t.Errorf("Gatherv nil counts at root: %v", err)
			}
		} else {
			// The non-root's matching call needs no counts and completes
			// (its contribution is sent eagerly).
			if err := w.Gatherv(send, 0, 1, mpi.INT, nil, 0, nil, nil, mpi.INT, 0); err != nil {
				return err
			}
		}
		// The next collectives must still match across ranks; guard with
		// a context so a regression fails fast instead of hanging.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := w.BarrierCtx(ctx); err != nil {
			t.Errorf("barrier after asymmetric error: %v", err)
			return nil
		}
		out := []int32{0}
		if err := w.AllreduceCtx(ctx, []int32{int32(w.Rank() + 1)}, 0, out, 0, 1, mpi.INT, mpi.SUM); err != nil {
			t.Errorf("allreduce after asymmetric error: %v", err)
			return nil
		}
		if out[0] != 3 {
			t.Errorf("allreduce value after asymmetric error: %d", out[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIreduceScatterAndIexscan: the remaining nonblocking forms.
func TestIreduceScatterAndIexscan(t *testing.T) {
	err := mpi.Run(3, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank := w.Rank()
		counts := []int{1, 2, 1}
		recv := make([]int64, counts[rank])
		rRS, err := w.IreduceScatter([]int64{1, 2, 3, 4}, 0, recv, 0, counts, mpi.LONG, mpi.SUM)
		if err != nil {
			return err
		}
		ex := []int64{-1}
		rEx, err := w.Iexscan([]int64{int64(rank + 1)}, 0, ex, 0, 1, mpi.LONG, mpi.SUM)
		if err != nil {
			return err
		}
		if _, err := rRS.Wait(); err != nil {
			return err
		}
		if _, err := rEx.Wait(); err != nil {
			return err
		}
		base := 0
		for r := 0; r < rank; r++ {
			base += counts[r]
		}
		for i := range recv {
			if want := int64((base + i + 1) * 3); recv[i] != want {
				t.Errorf("rank %d: IreduceScatter slot %d = %d, want %d", rank, i, recv[i], want)
			}
		}
		if rank == 0 {
			if ex[0] != -1 {
				t.Errorf("rank 0: Iexscan touched the buffer: %d", ex[0])
			}
		} else if want := int64(rank * (rank + 1) / 2); ex[0] != want {
			t.Errorf("rank %d: Iexscan %d, want %d", rank, ex[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
