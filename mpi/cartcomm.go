package mpi

import "gompi/internal/topo"

// Cartcomm is an intracommunicator with an attached cartesian topology
// (paper Fig. 1).
type Cartcomm struct {
	Intracomm
	cart *topo.Cart
}

// CartParms carries the geometry of a cartesian communicator: the result
// of Get, following the binding convention of returning aggregate results
// as objects instead of output arguments (paper §2.1).
type CartParms struct {
	Dims    []int
	Periods []bool
	Coords  []int
}

// ShiftParms carries the source and destination ranks of a Shift.
type ShiftParms struct {
	RankSource int
	RankDest   int
}

// DimsCreate fills the zero entries of dims with a balanced
// factorisation of nnodes (MPI_Dims_create). The filled slice is also
// returned for convenience.
func DimsCreate(nnodes int, dims []int) ([]int, error) {
	if err := topo.DimsCreate(nnodes, dims); err != nil {
		return nil, errf(ErrDims, "%v", err)
	}
	return dims, nil
}

// CreateCart attaches a cartesian topology over the first
// prod(dims) ranks of the communicator (MPI_Cart_create); ranks beyond
// the grid get nil. The reorder flag is accepted for API fidelity; rank
// order is always preserved in this implementation. Collective over the
// communicator.
func (c *Intracomm) CreateCart(dims []int, periods []bool, reorder bool) (*Cartcomm, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return nil, c.raise(err)
	}
	cart, err := topo.NewCart(dims, periods)
	if err != nil {
		// Every rank must still take part in the collective context
		// allocation below, so defer the error until after it. MPI
		// declares mismatched collective arguments erroneous; raising
		// consistently on all ranks keeps the program recoverable.
		cart = nil
	}
	count := 0
	if cart != nil {
		count = cart.Count()
	}
	colour := Undefined
	if cart != nil && c.rank < count {
		colour = 0
	}
	sub, serr := c.Split(colour, c.rank)
	if serr != nil {
		return nil, serr
	}
	if cart == nil {
		return nil, c.raise(errf(ErrDims, "invalid cartesian geometry: %v", err))
	}
	if count > c.Size() {
		return nil, c.raise(errf(ErrDims, "grid of %d positions exceeds communicator size %d", count, c.Size()))
	}
	if sub == nil {
		return nil, nil
	}
	_ = reorder
	cc := &Cartcomm{Intracomm: *sub, cart: cart}
	cc.name = c.name + ".cart"
	return cc, nil
}

// Get returns the grid geometry and this process's coordinates
// (MPI_Cart_get / MPI_Cartdim_get).
func (cc *Cartcomm) Get() (*CartParms, error) {
	if err := cc.ok(); err != nil {
		return nil, cc.raise(err)
	}
	coords, err := cc.cart.Coords(cc.rank)
	if err != nil {
		return nil, cc.raise(errf(ErrTopology, "%v", err))
	}
	return &CartParms{
		Dims:    append([]int(nil), cc.cart.Dims...),
		Periods: append([]bool(nil), cc.cart.Periods...),
		Coords:  coords,
	}, nil
}

// CartRank maps coordinates to a rank (MPI_Cart_rank); out-of-range
// coordinates wrap in periodic dimensions.
func (cc *Cartcomm) CartRank(coords []int) (int, error) {
	if err := cc.ok(); err != nil {
		return 0, cc.raise(err)
	}
	r, err := cc.cart.Rank(coords)
	if err != nil {
		return 0, cc.raise(errf(ErrTopology, "%v", err))
	}
	return r, nil
}

// Coords maps a rank to its grid coordinates (MPI_Cart_coords).
func (cc *Cartcomm) Coords(rank int) ([]int, error) {
	if err := cc.ok(); err != nil {
		return nil, cc.raise(err)
	}
	xs, err := cc.cart.Coords(rank)
	if err != nil {
		return nil, cc.raise(errf(ErrTopology, "%v", err))
	}
	return xs, nil
}

// Shift returns the neighbour ranks for a displacement along one
// dimension (MPI_Cart_shift): receive from RankSource, send to RankDest.
// Off-grid neighbours in non-periodic dimensions are ProcNull.
func (cc *Cartcomm) Shift(direction, disp int) (*ShiftParms, error) {
	if err := cc.ok(); err != nil {
		return nil, cc.raise(err)
	}
	src, dst, err := cc.cart.Shift(cc.rank, direction, disp)
	if err != nil {
		return nil, cc.raise(errf(ErrTopology, "%v", err))
	}
	conv := func(r int) int {
		if r == topo.ProcNull {
			return ProcNull
		}
		return r
	}
	return &ShiftParms{RankSource: conv(src), RankDest: conv(dst)}, nil
}

// Sub projects the grid onto the dimensions with remain[i] true,
// returning this process's sub-grid communicator (MPI_Cart_sub).
// Collective over the communicator.
func (cc *Cartcomm) Sub(remain []bool) (*Cartcomm, error) {
	cc.env.enterCall()
	if err := cc.ok(); err != nil {
		return nil, cc.raise(err)
	}
	subGeom, colour, key, err := cc.cart.Sub(cc.rank, remain)
	if err != nil {
		return nil, cc.raise(errf(ErrTopology, "%v", err))
	}
	sub, serr := cc.Split(colour, key)
	if serr != nil {
		return nil, serr
	}
	out := &Cartcomm{Intracomm: *sub, cart: subGeom}
	out.name = cc.name + ".sub"
	return out, nil
}

// Topology geometry accessors.

// Ndims returns the grid dimensionality.
func (cc *Cartcomm) Ndims() int { return cc.cart.Ndims() }
