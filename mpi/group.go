package mpi

import "sort"

// Group is an ordered set of processes, identified internally by world
// ranks (MPI §5.2.1). Groups are immutable; the set operations return
// new groups. A group remembers the calling process's world rank so that
// Rank works, as in the Java binding where Group.Rank() reports the
// caller's position.
type Group struct {
	ranks []int // world ranks, in group order
	me    int   // caller's world rank, -1 if unknown
}

// GroupEmpty is the empty group (MPI_GROUP_EMPTY).
var GroupEmpty = &Group{me: -1}

// Size returns the number of processes in the group.
func (g *Group) Size() int { return len(g.ranks) }

// Rank returns the calling process's rank within the group, or Undefined
// if it is not a member (MPI_Group_rank).
func (g *Group) Rank() int {
	if g.me < 0 {
		return Undefined
	}
	for i, w := range g.ranks {
		if w == g.me {
			return i
		}
	}
	return Undefined
}

func (g *Group) contains(world int) bool {
	for _, w := range g.ranks {
		if w == world {
			return true
		}
	}
	return false
}

func (g *Group) derive(ranks []int) *Group {
	return &Group{ranks: ranks, me: g.me}
}

// TranslateRanks maps ranks in group g1 to the corresponding ranks in
// group g2; processes absent from g2 map to Undefined
// (MPI_Group_translate_ranks).
func TranslateRanks(g1 *Group, ranks []int, g2 *Group) ([]int, error) {
	out := make([]int, len(ranks))
	for i, r := range ranks {
		if r < 0 || r >= len(g1.ranks) {
			return nil, errf(ErrRank, "rank %d out of range for group of size %d", r, len(g1.ranks))
		}
		w := g1.ranks[r]
		out[i] = Undefined
		for j, w2 := range g2.ranks {
			if w2 == w {
				out[i] = j
				break
			}
		}
	}
	return out, nil
}

// GroupCompare compares two groups: Ident for same members in the same
// order, Similar for same members in different order, Unequal otherwise
// (MPI_Group_compare).
func GroupCompare(g1, g2 *Group) int {
	if len(g1.ranks) != len(g2.ranks) {
		return Unequal
	}
	same := true
	for i := range g1.ranks {
		if g1.ranks[i] != g2.ranks[i] {
			same = false
			break
		}
	}
	if same {
		return Ident
	}
	a := append([]int(nil), g1.ranks...)
	b := append([]int(nil), g2.ranks...)
	sort.Ints(a)
	sort.Ints(b)
	for i := range a {
		if a[i] != b[i] {
			return Unequal
		}
	}
	return Similar
}

// Union returns the processes of g1 followed by those of g2 not in g1
// (MPI_Group_union).
func Union(g1, g2 *Group) *Group {
	out := append([]int(nil), g1.ranks...)
	for _, w := range g2.ranks {
		if !g1.contains(w) {
			out = append(out, w)
		}
	}
	me := g1.me
	if me < 0 {
		me = g2.me
	}
	return &Group{ranks: out, me: me}
}

// Intersection returns the processes of g1 that are also in g2, in g1's
// order (MPI_Group_intersection).
func Intersection(g1, g2 *Group) *Group {
	var out []int
	for _, w := range g1.ranks {
		if g2.contains(w) {
			out = append(out, w)
		}
	}
	return g1.derive(out)
}

// Difference returns the processes of g1 not in g2, in g1's order
// (MPI_Group_difference).
func Difference(g1, g2 *Group) *Group {
	var out []int
	for _, w := range g1.ranks {
		if !g2.contains(w) {
			out = append(out, w)
		}
	}
	return g1.derive(out)
}

// Incl returns the subgroup containing the listed ranks of g, in the
// listed order (MPI_Group_incl).
func (g *Group) Incl(ranks []int) (*Group, error) {
	out := make([]int, len(ranks))
	seen := make(map[int]bool, len(ranks))
	for i, r := range ranks {
		if r < 0 || r >= len(g.ranks) {
			return nil, errf(ErrRank, "rank %d out of range for group of size %d", r, len(g.ranks))
		}
		if seen[r] {
			return nil, errf(ErrRank, "duplicate rank %d in Incl", r)
		}
		seen[r] = true
		out[i] = g.ranks[r]
	}
	return g.derive(out), nil
}

// Excl returns the subgroup of g with the listed ranks removed, keeping
// g's order (MPI_Group_excl).
func (g *Group) Excl(ranks []int) (*Group, error) {
	drop := make(map[int]bool, len(ranks))
	for _, r := range ranks {
		if r < 0 || r >= len(g.ranks) {
			return nil, errf(ErrRank, "rank %d out of range for group of size %d", r, len(g.ranks))
		}
		if drop[r] {
			return nil, errf(ErrRank, "duplicate rank %d in Excl", r)
		}
		drop[r] = true
	}
	var out []int
	for i, w := range g.ranks {
		if !drop[i] {
			out = append(out, w)
		}
	}
	return g.derive(out), nil
}

// RangeIncl includes the ranks described by (first, last, stride)
// triplets (MPI_Group_range_incl).
func (g *Group) RangeIncl(ranges [][3]int) (*Group, error) {
	var list []int
	for _, rg := range ranges {
		expanded, err := expandRange(rg, len(g.ranks))
		if err != nil {
			return nil, err
		}
		list = append(list, expanded...)
	}
	return g.Incl(list)
}

// RangeExcl excludes the ranks described by (first, last, stride)
// triplets (MPI_Group_range_excl).
func (g *Group) RangeExcl(ranges [][3]int) (*Group, error) {
	var list []int
	for _, rg := range ranges {
		expanded, err := expandRange(rg, len(g.ranks))
		if err != nil {
			return nil, err
		}
		list = append(list, expanded...)
	}
	return g.Excl(list)
}

func expandRange(rg [3]int, size int) ([]int, error) {
	first, last, stride := rg[0], rg[1], rg[2]
	if stride == 0 {
		return nil, errf(ErrArg, "zero stride in rank range")
	}
	var out []int
	if stride > 0 {
		for r := first; r <= last; r += stride {
			out = append(out, r)
		}
	} else {
		for r := first; r >= last; r += stride {
			out = append(out, r)
		}
	}
	for _, r := range out {
		if r < 0 || r >= size {
			return nil, errf(ErrRank, "rank %d out of range for group of size %d", r, size)
		}
	}
	return out, nil
}
