package mpi

import "gompi/internal/topo"

// Graphcomm is an intracommunicator with an attached graph topology
// (paper Fig. 1).
type Graphcomm struct {
	Intracomm
	graph *topo.Graph
}

// GraphParms carries the adjacency structure of a graph communicator in
// MPI's compressed index/edges form.
type GraphParms struct {
	Index []int
	Edges []int
}

// CreateGraph attaches a graph topology over the first len(index) ranks
// of the communicator (MPI_Graph_create); ranks beyond the graph get
// nil. reorder is accepted for API fidelity and ignored. Collective over
// the communicator.
func (c *Intracomm) CreateGraph(index, edges []int, reorder bool) (*Graphcomm, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return nil, c.raise(err)
	}
	g, gerr := topo.NewGraph(len(index), index, edges)
	colour := Undefined
	if gerr == nil && c.rank < len(index) {
		colour = 0
	}
	sub, serr := c.Split(colour, c.rank)
	if serr != nil {
		return nil, serr
	}
	if gerr != nil {
		return nil, c.raise(errf(ErrTopology, "%v", gerr))
	}
	if len(index) > c.Size() {
		return nil, c.raise(errf(ErrTopology, "graph of %d nodes exceeds communicator size %d", len(index), c.Size()))
	}
	if sub == nil {
		return nil, nil
	}
	_ = reorder
	gc := &Graphcomm{Intracomm: *sub, graph: g}
	gc.name = c.name + ".graph"
	return gc, nil
}

// Get returns the graph adjacency structure (MPI_Graph_get).
func (gc *Graphcomm) Get() (*GraphParms, error) {
	if err := gc.ok(); err != nil {
		return nil, gc.raise(err)
	}
	return &GraphParms{
		Index: append([]int(nil), gc.graph.Index...),
		Edges: append([]int(nil), gc.graph.Edges...),
	}, nil
}

// Neighbours returns the neighbour ranks of rank
// (MPI_Graph_neighbors; the count is the slice length, per the binding's
// convention of letting arrays carry their size — paper §2.1).
func (gc *Graphcomm) Neighbours(rank int) ([]int, error) {
	if err := gc.ok(); err != nil {
		return nil, gc.raise(err)
	}
	ns, err := gc.graph.Neighbours(rank)
	if err != nil {
		return nil, gc.raise(errf(ErrTopology, "%v", err))
	}
	return ns, nil
}
