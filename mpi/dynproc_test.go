package mpi_test

import (
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"testing"

	"gompi/mpi"
)

// spawnHelperEnv re-enters the test binary as a spawned MPI child: the
// variable must not carry the GOMPI_ prefix, or the launcher's
// environment scrubbing would strip it before the child starts.
const spawnHelperEnv = "MPI_TEST_SPAWN_HELPER"

func TestMain(m *testing.M) {
	if os.Getenv(spawnHelperEnv) == "1" {
		os.Exit(spawnHelperMain())
	}
	os.Exit(m.Run())
}

// spawnHelperMain is the child side of TestSpawnMerge: connect back to
// the parent world and mirror its intercommunicator call sequence.
func spawnHelperMain() int {
	err := mpi.Main(1, func(env *mpi.Env) error {
		parent, err := env.Parent()
		if err != nil {
			return err
		}
		if parent == nil {
			return fmt.Errorf("spawned helper has no parent world")
		}
		if parent.RemoteSize() != 2 {
			return fmt.Errorf("parent remote size %d, want 2", parent.RemoteSize())
		}

		// Rooted bcast from the parent world's rank 0.
		got := make([]float64, 3)
		if err := parent.Bcast(got, 0, 3, mpi.DOUBLE, 0); err != nil {
			return err
		}
		if got[0] != 42 || got[1] != 43 || got[2] != 44 {
			return fmt.Errorf("bcast from parent delivered %v", got)
		}

		// Each side of an intercomm allreduce receives the remote side's
		// reduction: children contribute rank+1 (sum 3), parents 10 and
		// 20 (sum 30).
		send := []float64{float64(env.Rank() + 1)}
		recv := []float64{0}
		if err := parent.Allreduce(send, 0, recv, 0, 1, mpi.DOUBLE, mpi.SUM); err != nil {
			return err
		}
		if recv[0] != 30 {
			return fmt.Errorf("intercomm allreduce delivered %v, want the parents' 30", recv[0])
		}
		if err := parent.Barrier(); err != nil {
			return err
		}

		// Merge with the parents ordered first: child world rank r
		// becomes merged rank 2+r.
		merged, err := parent.Merge(true)
		if err != nil {
			return err
		}
		if merged.Size() != 4 || merged.Rank() != 2+env.Rank() {
			return fmt.Errorf("merged world rank %d/%d, want %d/4", merged.Rank(), merged.Size(), 2+env.Rank())
		}
		one := []float64{1}
		sum := []float64{0}
		if err := merged.Allreduce(one, 0, sum, 0, 1, mpi.DOUBLE, mpi.SUM); err != nil {
			return err
		}
		if sum[0] != 4 {
			return fmt.Errorf("merged allreduce gave %v, want 4", sum[0])
		}
		return merged.Barrier()
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spawn helper:", err)
		return 1
	}
	return 0
}

// TestSpawnMerge grows a 2-rank world by two spawned processes (the
// test binary re-entered through TestMain) and drives the parent side
// of the mirrored sequence in spawnHelperMain.
func TestSpawnMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("locating test binary: %v", err)
	}
	os.Setenv(spawnHelperEnv, "1")
	defer os.Unsetenv(spawnHelperEnv)

	err = mpi.Run(2, func(env *mpi.Env) error {
		world := env.CommWorld()
		ic, err := world.Spawn(exe, []string{"-test.run=none"}, 2)
		if err != nil {
			return err
		}
		if ic.RemoteSize() != 2 {
			return fmt.Errorf("spawned remote size %d, want 2", ic.RemoteSize())
		}

		buf := []float64{42, 43, 44}
		root := mpi.ProcNull
		if world.Rank() == 0 {
			root = mpi.Root
		}
		if err := ic.Bcast(buf, 0, 3, mpi.DOUBLE, root); err != nil {
			return err
		}

		send := []float64{float64(10 * (world.Rank() + 1))}
		recv := []float64{0}
		if err := ic.Allreduce(send, 0, recv, 0, 1, mpi.DOUBLE, mpi.SUM); err != nil {
			return err
		}
		if recv[0] != 3 {
			return fmt.Errorf("intercomm allreduce delivered %v, want the children's 3", recv[0])
		}
		if err := ic.Barrier(); err != nil {
			return err
		}

		merged, err := ic.Merge(false)
		if err != nil {
			return err
		}
		if merged.Size() != 4 || merged.Rank() != world.Rank() {
			return fmt.Errorf("merged world rank %d/%d, want %d/4", merged.Rank(), merged.Size(), world.Rank())
		}
		one := []float64{1}
		sum := []float64{0}
		if err := merged.Allreduce(one, 0, sum, 0, 1, mpi.DOUBLE, mpi.SUM); err != nil {
			return err
		}
		if sum[0] != 4 {
			return fmt.Errorf("merged allreduce gave %v, want 4", sum[0])
		}
		return merged.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConnectAccept joins two independent in-process worlds through a
// port and exercises the intercommunicator collectives across the
// boundary (satellite coverage for Bcast/Allreduce over Connect/Accept).
func TestConnectAccept(t *testing.T) {
	portCh := make(chan string, 1)
	var wg sync.WaitGroup
	var errA, errB error

	wg.Add(1)
	go func() {
		defer wg.Done()
		errA = mpi.Run(2, func(env *mpi.Env) error {
			world := env.CommWorld()
			port := ""
			if world.Rank() == 0 {
				var err error
				if port, err = env.OpenPort(); err != nil {
					return err
				}
				if !strings.HasPrefix(port, "gompi-port://") {
					return fmt.Errorf("port name %q has the wrong scheme", port)
				}
				portCh <- port
			}
			ic, err := world.Accept(port, 0)
			if err != nil {
				return err
			}

			// Rooted bcast: this side provides the root.
			buf := []float64{7}
			root := mpi.ProcNull
			if world.Rank() == 0 {
				root = mpi.Root
			}
			if err := ic.Bcast(buf, 0, 1, mpi.DOUBLE, root); err != nil {
				return err
			}

			send := []float64{float64(10 * (world.Rank() + 1))}
			recv := []float64{0}
			if err := ic.Allreduce(send, 0, recv, 0, 1, mpi.DOUBLE, mpi.SUM); err != nil {
				return err
			}
			if recv[0] != 3 {
				return fmt.Errorf("accept side allreduce got %v, want 3", recv[0])
			}

			// Intercomm point-to-point addresses the remote group.
			if world.Rank() == 0 {
				if err := ic.Send([]float64{math.Pi}, 0, 1, mpi.DOUBLE, 1, 5); err != nil {
					return err
				}
			}

			merged, err := ic.Merge(false)
			if err != nil {
				return err
			}
			if merged.Size() != 4 || merged.Rank() != world.Rank() {
				return fmt.Errorf("merged rank %d/%d, want %d/4", merged.Rank(), merged.Size(), world.Rank())
			}
			one, sum := []float64{1}, []float64{0}
			if err := merged.Allreduce(one, 0, sum, 0, 1, mpi.DOUBLE, mpi.SUM); err != nil {
				return err
			}
			if sum[0] != 4 {
				return fmt.Errorf("merged allreduce gave %v", sum[0])
			}
			return merged.Barrier()
		})
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		errB = mpi.Run(2, func(env *mpi.Env) error {
			world := env.CommWorld()
			port := ""
			if world.Rank() == 0 {
				port = <-portCh
			}
			ic, err := world.Connect(port, 0)
			if err != nil {
				return err
			}

			buf := []float64{0}
			if err := ic.Bcast(buf, 0, 1, mpi.DOUBLE, 0); err != nil {
				return err
			}
			if buf[0] != 7 {
				return fmt.Errorf("bcast across the join delivered %v, want 7", buf[0])
			}

			send := []float64{float64(world.Rank() + 1)}
			recv := []float64{0}
			if err := ic.Allreduce(send, 0, recv, 0, 1, mpi.DOUBLE, mpi.SUM); err != nil {
				return err
			}
			if recv[0] != 30 {
				return fmt.Errorf("connect side allreduce got %v, want 30", recv[0])
			}

			if world.Rank() == 1 {
				in := []float64{0}
				if _, err := ic.Recv(in, 0, 1, mpi.DOUBLE, 0, 5); err != nil {
					return err
				}
				if in[0] != math.Pi {
					return fmt.Errorf("intercomm pt2pt delivered %v", in[0])
				}
			}

			merged, err := ic.Merge(false)
			if err != nil {
				return err
			}
			// The accept side orders first on a tie.
			if merged.Size() != 4 || merged.Rank() != 2+world.Rank() {
				return fmt.Errorf("merged rank %d/%d, want %d/4", merged.Rank(), merged.Size(), 2+world.Rank())
			}
			one, sum := []float64{1}, []float64{0}
			if err := merged.Allreduce(one, 0, sum, 0, 1, mpi.DOUBLE, mpi.SUM); err != nil {
				return err
			}
			if sum[0] != 4 {
				return fmt.Errorf("merged allreduce gave %v", sum[0])
			}
			return merged.Barrier()
		})
	}()

	wg.Wait()
	if errA != nil {
		t.Errorf("accept world: %v", errA)
	}
	if errB != nil {
		t.Errorf("connect world: %v", errB)
	}
}

// TestConnectRevokedFailsFast: the documented fault-tolerance
// interplay — dynamic-process entry points refuse a revoked
// communicator immediately instead of hanging in the rendezvous.
func TestConnectRevokedFailsFast(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		world := env.CommWorld()
		if err := world.Revoke(); err != nil {
			return err
		}
		if _, err := world.Connect("gompi-port://127.0.0.1:1/ep0/kaa", 0); mpi.ClassOf(err) != mpi.ErrRevoked {
			return fmt.Errorf("Connect on revoked world: %v (class %v), want ErrRevoked", err, mpi.ClassOf(err))
		}
		if _, err := world.Spawn("/bin/true", nil, 1); mpi.ClassOf(err) != mpi.ErrRevoked {
			return fmt.Errorf("Spawn on revoked world: %v (class %v), want ErrRevoked", err, mpi.ClassOf(err))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPortLifecycleErrors(t *testing.T) {
	err := mpi.Run(1, func(env *mpi.Env) error {
		port, err := env.OpenPort()
		if err != nil {
			return err
		}
		if err := env.ClosePort(port); err != nil {
			return err
		}
		if err := env.ClosePort(port); mpi.ClassOf(err) != mpi.ErrPort {
			return fmt.Errorf("double ClosePort: %v, want ErrPort", err)
		}
		if _, err := env.CommWorld().Connect("not a port name", 0); mpi.ClassOf(err) != mpi.ErrPort {
			return fmt.Errorf("Connect with a garbage name: %v, want ErrPort", err)
		}
		// Accept on a never-opened (or already closed) port fails at the
		// root's handshake.
		if _, err := env.CommWorld().Accept(port, 0); mpi.ClassOf(err) != mpi.ErrPort {
			return fmt.Errorf("Accept on a closed port: %v, want ErrPort", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpawnErrors(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		world := env.CommWorld()
		if _, err := world.Spawn("/this/binary/does/not/exist", nil, 1); mpi.ClassOf(err) != mpi.ErrSpawn {
			return fmt.Errorf("Spawn of a missing binary: %v, want ErrSpawn", err)
		}
		if _, err := world.Spawn("/bin/true", nil, 0); mpi.ClassOf(err) != mpi.ErrSpawn {
			return fmt.Errorf("Spawn of zero processes: %v, want ErrSpawn", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
