package mpi_test

import (
	"testing"

	"gompi/mpi"
)

// The persistent/one-shot benchmark pair quantifies what plan caching
// buys: BenchmarkPersistentAllreduce cycles one AllreduceInit through
// Start/Wait, BenchmarkOneShotIallreduce plans a fresh Iallreduce each
// iteration. Per-op allocations for the persistent cycle must stay
// below the one-shot loop — the cached schedule, pre-minted tags and
// recycled wire buffers are the point of the API.

func benchAllreduce(b *testing.B, persistent bool) {
	b.ReportAllocs()
	const count = 256
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		send := make([]float64, count)
		recv := make([]float64, count)
		for i := range send {
			send[i] = float64(w.Rank() + i)
		}
		if persistent {
			red, err := w.AllreduceInit(send, 0, recv, 0, count, mpi.DOUBLE, mpi.SUM)
			if err != nil {
				return err
			}
			defer red.Free()
			// Warm outside the timed region.
			if err := red.Start(); err != nil {
				return err
			}
			if _, err := red.Wait(); err != nil {
				return err
			}
			if w.Rank() == 0 {
				b.ResetTimer()
			}
			for i := 0; i < b.N; i++ {
				if err := red.Start(); err != nil {
					return err
				}
				if _, err := red.Wait(); err != nil {
					return err
				}
			}
			return nil
		}
		req, err := w.Iallreduce(send, 0, recv, 0, count, mpi.DOUBLE, mpi.SUM)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		if w.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			req, err := w.Iallreduce(send, 0, recv, 0, count, mpi.DOUBLE, mpi.SUM)
			if err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPersistentAllreduce(b *testing.B) { benchAllreduce(b, true) }
func BenchmarkOneShotIallreduce(b *testing.B)   { benchAllreduce(b, false) }
