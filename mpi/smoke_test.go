package mpi_test

import (
	"testing"

	"gompi/mpi"
)

// TestSmokeHello is the paper's Fig. 3 program: rank 0 sends a char
// message to rank 1.
func TestSmokeHello(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		world := env.CommWorld()
		if world.Rank() == 0 {
			message := []rune("Hello, there")
			return world.Send(message, 0, len(message), mpi.CHAR, 1, 99)
		}
		message := make([]rune, 20)
		st, err := world.Recv(message, 0, 20, mpi.CHAR, 0, 99)
		if err != nil {
			return err
		}
		if got := string(message[:st.GetCount(mpi.CHAR)]); got != "Hello, there" {
			t.Errorf("got %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSmokeCollectives(t *testing.T) {
	err := mpi.Run(4, func(env *mpi.Env) error {
		world := env.CommWorld()
		rank := world.Rank()
		// Bcast
		buf := []int32{0}
		if rank == 0 {
			buf[0] = 42
		}
		if err := world.Bcast(buf, 0, 1, mpi.INT, 0); err != nil {
			return err
		}
		if buf[0] != 42 {
			t.Errorf("rank %d: bcast got %d", rank, buf[0])
		}
		// Allreduce SUM
		in := []int32{int32(rank + 1)}
		out := []int32{0}
		if err := world.Allreduce(in, 0, out, 0, 1, mpi.INT, mpi.SUM); err != nil {
			return err
		}
		if out[0] != 10 {
			t.Errorf("rank %d: allreduce got %d, want 10", rank, out[0])
		}
		return world.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSmokeTCP(t *testing.T) {
	err := mpi.RunWith(mpi.RunOptions{NP: 3, TCP: true}, func(env *mpi.Env) error {
		world := env.CommWorld()
		rank := world.Rank()
		next := (rank + 1) % world.Size()
		prev := (rank - 1 + world.Size()) % world.Size()
		out := []float64{float64(rank)}
		in := []float64{-1}
		if _, err := world.Sendrecv(out, 0, 1, mpi.DOUBLE, next, 7, in, 0, 1, mpi.DOUBLE, prev, 7); err != nil {
			return err
		}
		if in[0] != float64(prev) {
			t.Errorf("rank %d: got %v want %d", rank, in[0], prev)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
