package mpi_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"gompi/mpi"
)

func TestCollectivesOverDerivedTypes(t *testing.T) {
	// Broadcast a strided column through a vector type: the typemap is
	// applied independently at every rank.
	err := mpi.Run(3, func(env *mpi.Env) error {
		w := env.CommWorld()
		col, err := mpi.TypeVector(4, 1, 4, mpi.DOUBLE)
		if err != nil {
			return err
		}
		col.Commit()
		mat := make([]float64, 16)
		if w.Rank() == 1 {
			for i := 0; i < 4; i++ {
				mat[2+4*i] = float64(i + 1)
			}
		}
		if err := w.Bcast(mat, 2, 1, col, 1); err != nil {
			return err
		}
		for i := 0; i < 4; i++ {
			if mat[2+4*i] != float64(i+1) {
				t.Errorf("rank %d: column slot %d = %v", w.Rank(), i, mat[2+4*i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUserDefinedOp(t *testing.T) {
	// Complex multiplication on (re, im) pairs: commutative but not one
	// of the predefined ops.
	cmul := mpi.NewOp(func(in, inout any) {
		a := in.([]float64)
		b := inout.([]float64)
		for i := 0; i+1 < len(b); i += 2 {
			re := a[i]*b[i] - a[i+1]*b[i+1]
			im := a[i]*b[i+1] + a[i+1]*b[i]
			b[i], b[i+1] = re, im
		}
	}, true)
	err := mpi.Run(4, func(env *mpi.Env) error {
		w := env.CommWorld()
		// Each rank contributes i (the imaginary unit); i^4 = 1.
		in := []float64{0, 1}
		out := []float64{0, 0}
		if err := w.Allreduce(in, 0, out, 0, 1, mpi.DOUBLE2, cmul); err != nil {
			return err
		}
		if out[0] < 0.999 || out[0] > 1.001 || out[1] < -0.001 || out[1] > 0.001 {
			t.Errorf("rank %d: i^4 = (%v, %v), want (1, 0)", w.Rank(), out[0], out[1])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxLocPublicAPI(t *testing.T) {
	err := mpi.Run(4, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank := float32(w.Rank())
		in := []float32{42 - rank*rank, rank} // max at rank 0
		out := []float32{0, 0}
		if err := w.Allreduce(in, 0, out, 0, 1, mpi.FLOAT2, mpi.MAXLOC); err != nil {
			return err
		}
		if out[0] != 42 || out[1] != 0 {
			t.Errorf("maxloc: %v", out)
		}
		// MINLOC rejects non-pair types.
		bad := []float32{1}
		err := w.Allreduce(bad, 0, bad, 0, 1, mpi.FLOAT, mpi.MINLOC)
		if mpi.ClassOf(err) != mpi.ErrOp {
			t.Errorf("minloc on non-pair: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterPublicAPI(t *testing.T) {
	err := mpi.Run(3, func(env *mpi.Env) error {
		w := env.CommWorld()
		counts := []int{2, 1, 1}
		send := []int64{1, 2, 3, 4} // identical on every rank
		recv := make([]int64, counts[w.Rank()])
		if err := w.ReduceScatter(send, 0, recv, 0, counts, mpi.LONG, mpi.SUM); err != nil {
			return err
		}
		base := 0
		for r := 0; r < w.Rank(); r++ {
			base += counts[r]
		}
		for i := range recv {
			want := int64((base + i + 1) * 3)
			if recv[i] != want {
				t.Errorf("rank %d slot %d: got %d want %d", w.Rank(), i, recv[i], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanNonCommutative(t *testing.T) {
	concat := mpi.NewOp(func(in, inout any) {
		a := in.([]int64)
		b := inout.([]int64)
		for i := range b {
			b[i] = a[i]*10 + b[i]
		}
	}, false)
	err := mpi.Run(4, func(env *mpi.Env) error {
		w := env.CommWorld()
		in := []int64{int64(w.Rank() + 1)}
		out := []int64{0}
		if err := w.Scan(in, 0, out, 0, 1, mpi.LONG, concat); err != nil {
			return err
		}
		var want int64
		for r := 0; r <= w.Rank(); r++ {
			want = want*10 + int64(r+1)
		}
		if out[0] != want {
			t.Errorf("rank %d: scan %d, want %d", w.Rank(), out[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonCommutativeAllreducePublic(t *testing.T) {
	concat := mpi.NewOp(func(in, inout any) {
		a := in.([]int32)
		b := inout.([]int32)
		for i := range b {
			b[i] = a[i]*10 + b[i]
		}
	}, false)
	err := mpi.Run(5, func(env *mpi.Env) error {
		w := env.CommWorld()
		in := []int32{int32(w.Rank() + 1)}
		out := []int32{0}
		if err := w.Allreduce(in, 0, out, 0, 1, mpi.INT, concat); err != nil {
			return err
		}
		if out[0] != 12345 {
			t.Errorf("rank %d: got %d, want 12345", w.Rank(), out[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAllreduceMatchesSerialProperty: random vectors, random np — the
// collective sum equals the serial sum at every rank.
func TestAllreduceMatchesSerialProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		np := 1 + rng.Intn(5)
		width := 1 + rng.Intn(8)
		inputs := make([][]int64, np)
		for r := range inputs {
			inputs[r] = make([]int64, width)
			for i := range inputs[r] {
				inputs[r][i] = int64(rng.Intn(2001) - 1000)
			}
		}
		want := make([]int64, width)
		for _, in := range inputs {
			for i, v := range in {
				want[i] += v
			}
		}
		ok := true
		err := mpi.Run(np, func(env *mpi.Env) error {
			w := env.CommWorld()
			out := make([]int64, width)
			if err := w.Allreduce(inputs[w.Rank()], 0, out, 0, width, mpi.LONG, mpi.SUM); err != nil {
				return err
			}
			if !reflect.DeepEqual(out, want) {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestGatherBcastRoundTripProperty: scatter + gather is the identity on
// random data.
func TestScatterGatherRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		np := 1 + rng.Intn(5)
		blk := 1 + rng.Intn(6)
		root := rng.Intn(np)
		data := make([]float64, np*blk)
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		var got []float64
		err := mpi.Run(np, func(env *mpi.Env) error {
			w := env.CommWorld()
			var src []float64
			if w.Rank() == root {
				src = append([]float64(nil), data...)
			}
			mine := make([]float64, blk)
			if err := w.Scatter(src, 0, blk, mpi.DOUBLE, mine, 0, blk, mpi.DOUBLE, root); err != nil {
				return err
			}
			back := make([]float64, np*blk)
			if err := w.Gather(mine, 0, blk, mpi.DOUBLE, back, 0, blk, mpi.DOUBLE, root); err != nil {
				return err
			}
			if w.Rank() == root {
				got = back
			}
			return nil
		})
		return err == nil && reflect.DeepEqual(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveRootValidation(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		buf := []int32{0}
		if err := w.Bcast(buf, 0, 1, mpi.INT, 9); mpi.ClassOf(err) != mpi.ErrRoot {
			t.Errorf("bad root: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesOnObjectBuffers(t *testing.T) {
	type note struct{ Text string }
	mpi.RegisterObject(note{})
	err := mpi.Run(3, func(env *mpi.Env) error {
		w := env.CommWorld()
		buf := make([]any, 1)
		if w.Rank() == 0 {
			buf[0] = note{Text: "broadcast me"}
		}
		if err := w.Bcast(buf, 0, 1, mpi.OBJECT, 0); err != nil {
			return err
		}
		n, ok := buf[0].(note)
		if !ok || n.Text != "broadcast me" {
			t.Errorf("rank %d: %#v", w.Rank(), buf[0])
		}
		// Gather objects.
		all := make([]any, 3)
		mine := []any{note{Text: string(rune('a' + w.Rank()))}}
		if err := w.Gather(mine, 0, 1, mpi.OBJECT, all, 0, 1, mpi.OBJECT, 0); err != nil {
			return err
		}
		if w.Rank() == 0 {
			for r := 0; r < 3; r++ {
				if all[r].(note).Text != string(rune('a'+r)) {
					t.Errorf("gathered object %d: %#v", r, all[r])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
