package mpi

import (
	"sync"

	"gompi/internal/coll"
	"gompi/internal/core"
	"gompi/internal/dtype"
	"gompi/internal/transport"
)

// Comm is the communicator base class (paper Fig. 1): all communication
// functions are members of Comm or its subclasses Intracomm (with the
// collectives and constructors) and Intercomm. A communicator owns a
// pair of reserved context ids — one for point-to-point traffic, one for
// collectives — so traffic on different communicators can never
// cross-match.
type Comm struct {
	env   *Env
	group []int // world ranks indexed by group rank
	rank  int   // caller's group rank
	inter bool
	// remote holds the remote group of an intercommunicator; for
	// intracommunicators it aliases group, so destination ranks always
	// resolve through it (MPI inter-comm pt2pt addresses the remote
	// group).
	remote  []int
	ptpCtx  int32
	collCtx int32
	cl      *coll.Comm
	name    string
	freed   bool
	errh    Errhandler
	attrs   *attrMap

	// Fault-tolerance state (see ft.go): the group ranks whose failure
	// this member has acknowledged with FailureAck. Behind a pointer so
	// derived views of one communicator (a topology comm embedding the
	// Intracomm it split from) share one ack state, and Comm values
	// stay copyable.
	ft *ftState
}

// ftState is a communicator's ULFM acknowledgement state.
type ftState struct {
	mu    sync.Mutex
	acked map[int]bool
}

// buildComm initializes c in place — not by struct assignment, because
// Comm carries a mutex (the fault-tolerance ack state) once built.
func (e *Env) buildComm(c *Comm, group []int, myRank int, ctxBase int32, name string) {
	c.attrs = &attrMap{}
	c.ft = &ftState{}
	c.env = e
	c.group = group
	c.rank = myRank
	c.remote = group
	c.ptpCtx = ctxBase
	c.collCtx = ctxBase + 1
	c.name = name
	c.cl = &coll.Comm{
		P:     e.proc,
		Ctx:   c.collCtx,
		Rank:  myRank,
		Size:  len(group),
		World: func(gr int) int { return group[gr] },
	}
	// Register the rank table with the engine: that is what lets it
	// attribute a peer death to this communicator's group ranks and
	// route revocation notices to exactly the members.
	e.proc.RegisterGroup(ctxBase, group)
}

// Rank returns the caller's rank within the (local) group.
func (c *Comm) Rank() int { return c.rank }

// Size returns the size of the (local) group.
func (c *Comm) Size() int { return len(c.group) }

// Group returns the communicator's local group (MPI_Comm_group).
func (c *Comm) Group() *Group {
	return &Group{ranks: append([]int(nil), c.group...), me: c.env.proc.Rank()}
}

// TestInter reports whether this is an inter-communicator
// (MPI_Comm_test_inter).
func (c *Comm) TestInter() bool { return c.inter }

// Name returns the communicator's name.
func (c *Comm) Name() string { return c.name }

// SetName names the communicator.
func (c *Comm) SetName(n string) { c.name = n }

// Errhandler returns the communicator's error handler.
func (c *Comm) Errhandler() Errhandler { return c.errh }

// SetErrhandler installs an error handler (MPI_Errhandler_set).
// ErrorsReturn (the default) delivers errors as return values;
// ErrorsAreFatal panics.
func (c *Comm) SetErrhandler(h Errhandler) { c.errh = h }

// Free marks the communicator freed (MPI_Comm_free) — one of the two
// classes the paper gives an explicit Free (§2.1). Subsequent use
// raises ErrComm.
func (c *Comm) Free() error {
	if err := c.ok(); err != nil {
		return err
	}
	c.deleteAllAttrs()
	c.freed = true
	return nil
}

// raise routes an error through the communicator's error handler.
func (c *Comm) raise(err error) error {
	if err != nil && c.errh == ErrorsAreFatal {
		panic(err)
	}
	return err
}

func (c *Comm) ok() error {
	switch {
	case c == nil:
		return errf(ErrComm, "nil communicator")
	case c.freed:
		return errf(ErrComm, "communicator %q has been freed", c.name)
	case c.env.finalized.Load():
		return errf(ErrComm, "MPI already finalized")
	}
	return nil
}

func (c *Comm) checkDest(rank int) error {
	if rank == ProcNull {
		return nil
	}
	if rank < 0 || rank >= len(c.remote) {
		return errf(ErrRank, "destination rank %d out of range [0,%d)", rank, len(c.remote))
	}
	return nil
}

func (c *Comm) checkSource(rank int) error {
	if rank == ProcNull || rank == AnySource {
		return nil
	}
	if rank < 0 || rank >= len(c.remote) {
		return errf(ErrRank, "source rank %d out of range [0,%d)", rank, len(c.remote))
	}
	return nil
}

func (c *Comm) checkTag(tag int, wildcardOK bool) error {
	if wildcardOK && tag == AnyTag {
		return nil
	}
	if tag < 0 || tag > TagUB {
		return errf(ErrTag, "tag %d out of range [0,%d]", tag, TagUB)
	}
	return nil
}

func (c *Comm) checkType(d *Datatype) error {
	switch {
	case d == nil:
		return errf(ErrType, "nil datatype")
	case d.t.IsMarker():
		return errf(ErrType, "%s cannot be used in communication", d.Name())
	case !d.Committed():
		return errf(ErrType, "datatype %s not committed", d.Name())
	}
	return nil
}

// pt2ptChecks bundles the argument validation shared by every
// point-to-point call.
func (c *Comm) sendChecks(d *Datatype, dest, tag int) error {
	if err := c.ok(); err != nil {
		return err
	}
	if err := c.checkType(d); err != nil {
		return err
	}
	if err := c.checkDest(dest); err != nil {
		return err
	}
	return c.checkTag(tag, false)
}

func (c *Comm) recvChecks(d *Datatype, source, tag int) error {
	if err := c.ok(); err != nil {
		return err
	}
	if err := c.checkType(d); err != nil {
		return err
	}
	if err := c.checkSource(source); err != nil {
		return err
	}
	return c.checkTag(tag, true)
}

// pack encodes a buffer section into a wire payload. The payload is
// drawn from the frame pool whenever the wire size is statically known
// (every fixed-size class); pooled reports that, which downstream layers
// translate into the exclusive-ownership recycle promise, letting the
// consuming rank return the buffer to the pool. Object payloads have no
// size bound and fall back to the allocator.
func (c *Comm) pack(buf any, offset, count int, d *Datatype) (payload []byte, pooled bool, err error) {
	var dst []byte
	if n := d.t.WireBytes(count); n >= 0 {
		dst = transport.GetBuf(n)[:0]
		pooled = true
	}
	payload, perr := dtype.Pack(dst, buf, offset, count, d.t)
	if perr != nil {
		if pooled {
			transport.PutBuf(dst)
		}
		return nil, false, mapDataErr(perr)
	}
	return payload, pooled, nil
}

// packColl packs for the collective layer, which fans one buffer out to
// several peers and forwards received payloads: no slice can carry the
// exclusive-ownership recycle promise, so collective payloads stay on
// the allocator.
func (c *Comm) packColl(buf any, offset, count int, d *Datatype) ([]byte, error) {
	payload, err := dtype.Pack(nil, buf, offset, count, d.t)
	if err != nil {
		return nil, mapDataErr(err)
	}
	return payload, nil
}

// startSend runs validation, packing and the core send; the shared
// engine under every send-mode entry point. It returns a nil request
// for ProcNull destinations.
func (c *Comm) startSend(buf any, offset, count int, d *Datatype, dest, tag int, mode core.Mode) (*core.Request, error) {
	c.env.enterCall()
	if err := c.sendChecks(d, dest, tag); err != nil {
		return nil, err
	}
	if dest == ProcNull {
		return nil, nil
	}
	payload, pooled, err := c.pack(buf, offset, count, d)
	if err != nil {
		return nil, err
	}
	creq, err := c.env.proc.Isend(c.ptpCtx, c.rank, c.remote[dest], tag, payload, mode, pooled)
	if err != nil {
		return nil, mapEngineErr(err)
	}
	return creq, nil
}

// isendMode starts a send in the given mode; the shared engine of
// Isend/Issend/Irsend.
func (c *Comm) isendMode(buf any, offset, count int, d *Datatype, dest, tag int, mode core.Mode) (*Request, error) {
	creq, err := c.startSend(buf, offset, count, d, dest, tag, mode)
	if err != nil {
		return nil, c.raise(err)
	}
	if creq == nil {
		return preCompleted(c.env, nullStatus()), nil
	}
	return &Request{env: c.env, creq: creq}, nil
}

// sendBlocking is the shared engine of the blocking send modes: the
// request never escapes, so it is recycled straight back to the engine's
// request pool — a blocking send allocates nothing on the steady-state
// hot path.
func (c *Comm) sendBlocking(buf any, offset, count int, d *Datatype, dest, tag int, mode core.Mode) error {
	creq, err := c.startSend(buf, offset, count, d, dest, tag, mode)
	if err != nil || creq == nil {
		return c.raise(err)
	}
	creq.Wait()
	creq.Recycle()
	return nil
}

// Send is the blocking standard-mode send (MPI_Send; paper §2):
//
//	public void Send(Object buf, int offset, int count,
//	                 Datatype datatype, int dest, int tag)
func (c *Comm) Send(buf any, offset, count int, d *Datatype, dest, tag int) error {
	return c.sendBlocking(buf, offset, count, d, dest, tag, core.ModeStandard)
}

// Ssend is the blocking synchronous-mode send: it returns only after the
// receiver has matched the message (MPI_Ssend).
func (c *Comm) Ssend(buf any, offset, count int, d *Datatype, dest, tag int) error {
	return c.sendBlocking(buf, offset, count, d, dest, tag, core.ModeSync)
}

// Rsend is the blocking ready-mode send; a matching receive must already
// be posted (MPI_Rsend).
func (c *Comm) Rsend(buf any, offset, count int, d *Datatype, dest, tag int) error {
	return c.sendBlocking(buf, offset, count, d, dest, tag, core.ModeReady)
}

// Bsend is the blocking buffered-mode send: the message is copied into
// the attached buffer and the call returns immediately (MPI_Bsend).
func (c *Comm) Bsend(buf any, offset, count int, d *Datatype, dest, tag int) error {
	req, err := c.Ibsend(buf, offset, count, d, dest, tag)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return c.raise(err)
}

// Isend starts a non-blocking standard-mode send (MPI_Isend).
func (c *Comm) Isend(buf any, offset, count int, d *Datatype, dest, tag int) (*Request, error) {
	return c.isendMode(buf, offset, count, d, dest, tag, core.ModeStandard)
}

// Issend starts a non-blocking synchronous-mode send (MPI_Issend).
func (c *Comm) Issend(buf any, offset, count int, d *Datatype, dest, tag int) (*Request, error) {
	return c.isendMode(buf, offset, count, d, dest, tag, core.ModeSync)
}

// Irsend starts a non-blocking ready-mode send (MPI_Irsend).
func (c *Comm) Irsend(buf any, offset, count int, d *Datatype, dest, tag int) (*Request, error) {
	return c.isendMode(buf, offset, count, d, dest, tag, core.ModeReady)
}

// Ibsend starts a non-blocking buffered-mode send (MPI_Ibsend). The
// packed message is charged against the attached buffer; the user-visible
// request completes immediately, and the space is released when the
// underlying transfer finishes.
func (c *Comm) Ibsend(buf any, offset, count int, d *Datatype, dest, tag int) (*Request, error) {
	c.env.enterCall()
	if err := c.sendChecks(d, dest, tag); err != nil {
		return nil, c.raise(err)
	}
	if dest == ProcNull {
		return preCompleted(c.env, nullStatus()), nil
	}
	payload, pooled, err := c.pack(buf, offset, count, d)
	if err != nil {
		return nil, c.raise(err)
	}
	if err := c.env.reserveBuffer(len(payload)); err != nil {
		if pooled {
			transport.PutBuf(payload)
		}
		return nil, c.raise(err)
	}
	creq, err := c.env.proc.Isend(c.ptpCtx, c.rank, c.remote[dest], tag, payload, core.ModeStandard, pooled)
	if err != nil {
		c.env.releaseBuffer(len(payload))
		return nil, c.raise(mapEngineErr(err))
	}
	n := len(payload)
	env := c.env
	go func() {
		creq.Wait()
		env.releaseBuffer(n)
	}()
	st := nullStatus()
	st.bytes = n
	return preCompleted(c.env, st), nil
}

// startRecv runs the shared receive-side validation and translates the
// source/tag wildcards; procNull reports a null-process receive and n
// is the validated buffer length in elements.
func (c *Comm) startRecv(buf any, d *Datatype, source, tag int) (src, tg int32, n int, procNull bool, err error) {
	c.env.enterCall()
	if err := c.recvChecks(d, source, tag); err != nil {
		return 0, 0, 0, false, err
	}
	// Validate the buffer section eagerly so errors surface at the
	// call, not at completion.
	n, cerr := dtype.CheckBuf(buf, d.t)
	if cerr != nil {
		return 0, 0, 0, false, mapDataErr(cerr)
	}
	if source == ProcNull {
		return 0, 0, n, true, nil
	}
	src = int32(source)
	if source == AnySource {
		src = core.AnySource
	}
	tg = int32(tag)
	if tag == AnyTag {
		tg = core.AnyTag
	}
	return src, tg, n, false, nil
}

// Irecv starts a non-blocking receive (MPI_Irecv). The buffer section
// is filled when the request completes.
func (c *Comm) Irecv(buf any, offset, count int, d *Datatype, source, tag int) (*Request, error) {
	src, tg, _, procNull, err := c.startRecv(buf, d, source, tag)
	if err != nil {
		return nil, c.raise(err)
	}
	if procNull {
		return preCompleted(c.env, nullStatus()), nil
	}
	creq := c.env.proc.Irecv(c.ptpCtx, src, tg)
	return &Request{
		env: c.env, creq: creq, isRecv: true,
		buf: buf, offset: offset, count: count, dt: d,
	}, nil
}

// intoView returns the raw-byte window of buf's section when the
// receive-into fast path applies: a contiguous fixed-size datatype over
// a native (or named-primitive) slice on a little-endian host. n is the
// buffer length already validated by startRecv. The returned bytes
// alias buf, so the engine deposits the payload directly in the
// caller's memory.
func (c *Comm) intoView(buf any, offset, count, n int, d *Datatype) ([]byte, bool) {
	t := d.t
	if !t.IsContiguous() || t.Class() == dtype.Obj {
		return nil, false
	}
	elems := count * t.Size()
	if offset < 0 || count < 0 || offset+elems > n {
		return nil, false // out of bounds: let the classic path report it
	}
	return dtype.ByteViewRange(buf, offset, elems)
}

// IrecvInto starts a non-blocking receive that lands the incoming
// payload directly in the buffer section — no staging buffer, no unpack
// copy — when the datatype is contiguous and fixed-size on a
// little-endian host; other shapes fall back to the classic staging
// path transparently. If the message is longer than the section, the
// section is filled and the request completes with an ErrTruncate-class
// error (MPI_ERR_TRUNCATE semantics). The buffer must not be touched
// until the request completes.
func (c *Comm) IrecvInto(buf any, offset, count int, d *Datatype, source, tag int) (*Request, error) {
	src, tg, n, procNull, err := c.startRecv(buf, d, source, tag)
	if err != nil {
		return nil, c.raise(err)
	}
	if procNull {
		return preCompleted(c.env, nullStatus()), nil
	}
	view, ok := c.intoView(buf, offset, count, n, d)
	if !ok {
		creq := c.env.proc.Irecv(c.ptpCtx, src, tg)
		return &Request{
			env: c.env, creq: creq, isRecv: true,
			buf: buf, offset: offset, count: count, dt: d,
		}, nil
	}
	creq := c.env.proc.IrecvInto(c.ptpCtx, src, tg, view, d.t.Class().WireSize())
	return &Request{
		env: c.env, creq: creq, isRecv: true, into: true,
		buf: buf, offset: offset, count: count, dt: d,
	}, nil
}

// recvBlocking is the shared engine of the blocking receives: no
// mpi.Request handle is built and the core request is recycled, so the
// only steady-state allocation is the returned Status. wantInto selects
// the receive-into path (payload deposited directly in the caller's
// memory) where the datatype allows; other shapes stage and unpack.
func (c *Comm) recvBlocking(buf any, offset, count int, d *Datatype, source, tag int, wantInto bool) (*Status, error) {
	src, tg, n, procNull, err := c.startRecv(buf, d, source, tag)
	if err != nil {
		return nil, c.raise(err)
	}
	if procNull {
		return nullStatus(), nil
	}
	var view []byte
	if wantInto {
		view, _ = c.intoView(buf, offset, count, n, d)
	}
	var creq *core.Request
	if view != nil {
		creq = c.env.proc.IrecvInto(c.ptpCtx, src, tg, view, d.t.Class().WireSize())
	} else {
		creq = c.env.proc.Irecv(c.ptpCtx, src, tg)
	}
	cst := creq.Wait()
	st, opErr := recvStatus(cst, view != nil, creq.Payload, buf, offset, count, d)
	creq.Recycle() // releases the frame too
	return st, c.raise(opErr)
}

// Recv is the blocking receive (MPI_Recv; paper §2):
//
//	public Status Recv(Object buf, int offset, int count,
//	                   Datatype datatype, int source, int tag)
func (c *Comm) Recv(buf any, offset, count int, d *Datatype, source, tag int) (*Status, error) {
	return c.recvBlocking(buf, offset, count, d, source, tag, false)
}

// RecvInto is the blocking receive-into (see IrecvInto): the payload is
// deposited directly in the caller's buffer section where the datatype
// allows, with MPI_ERR_TRUNCATE semantics on overflow.
func (c *Comm) RecvInto(buf any, offset, count int, d *Datatype, source, tag int) (*Status, error) {
	return c.recvBlocking(buf, offset, count, d, source, tag, true)
}

// Sendrecv executes a send and a receive concurrently, with distinct
// buffers (MPI_Sendrecv).
func (c *Comm) Sendrecv(
	sendbuf any, soffset, scount int, sdt *Datatype, dest, stag int,
	recvbuf any, roffset, rcount int, rdt *Datatype, source, rtag int,
) (*Status, error) {
	rreq, err := c.Irecv(recvbuf, roffset, rcount, rdt, source, rtag)
	if err != nil {
		return nil, err
	}
	sreq, err := c.isendMode(sendbuf, soffset, scount, sdt, dest, stag, core.ModeStandard)
	if err != nil {
		return nil, err
	}
	st, rerr := rreq.Wait()
	_, serr := sreq.Wait()
	if rerr != nil {
		return st, c.raise(rerr)
	}
	return st, c.raise(serr)
}

// SendrecvReplace sends and receives using a single buffer section
// (MPI_Sendrecv_replace): the outgoing message is packed before the
// incoming one overwrites the buffer.
func (c *Comm) SendrecvReplace(
	buf any, offset, count int, d *Datatype,
	dest, stag, source, rtag int,
) (*Status, error) {
	c.env.enterCall()
	if err := c.sendChecks(d, dest, stag); err != nil {
		return nil, c.raise(err)
	}
	if err := c.recvChecks(d, source, rtag); err != nil {
		return nil, c.raise(err)
	}
	payload, pooled, err := c.pack(buf, offset, count, d)
	if err != nil {
		return nil, c.raise(err)
	}
	rreq, err := c.Irecv(buf, offset, count, d, source, rtag)
	if err != nil {
		if pooled {
			transport.PutBuf(payload)
		}
		return nil, err
	}
	if dest != ProcNull {
		creq, err := c.env.proc.Isend(c.ptpCtx, c.rank, c.remote[dest], stag, payload, core.ModeStandard, pooled)
		if err != nil {
			// No PutBuf here: Isend took ownership, and the device's
			// own error path may already have recycled the payload.
			return nil, c.raise(mapEngineErr(err))
		}
		defer creq.Wait()
	} else if pooled {
		transport.PutBuf(payload)
	}
	st, rerr := rreq.Wait()
	return st, c.raise(rerr)
}

// Probe blocks until a matching message is pending and returns its
// status without receiving it (MPI_Probe).
func (c *Comm) Probe(source, tag int) (*Status, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return nil, c.raise(err)
	}
	if err := c.checkSource(source); err != nil {
		return nil, c.raise(err)
	}
	if err := c.checkTag(tag, true); err != nil {
		return nil, c.raise(err)
	}
	if source == ProcNull {
		return nullStatus(), nil
	}
	src := int32(source)
	if source == AnySource {
		src = core.AnySource
	}
	tg := int32(tag)
	if tag == AnyTag {
		tg = core.AnyTag
	}
	cst, err := c.env.proc.Probe(c.ptpCtx, src, tg)
	if err != nil {
		return nil, c.raise(mapEngineErr(err))
	}
	return probeStatus(cst.SourceGroup, cst.Tag, cst.Bytes), nil
}

// Iprobe checks for a matching pending message without blocking
// (MPI_Iprobe); it returns nil when none is pending.
func (c *Comm) Iprobe(source, tag int) (*Status, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return nil, c.raise(err)
	}
	if err := c.checkSource(source); err != nil {
		return nil, c.raise(err)
	}
	if err := c.checkTag(tag, true); err != nil {
		return nil, c.raise(err)
	}
	if source == ProcNull {
		return nullStatus(), nil
	}
	src := int32(source)
	if source == AnySource {
		src = core.AnySource
	}
	tg := int32(tag)
	if tag == AnyTag {
		tg = core.AnyTag
	}
	cst, ok := c.env.proc.Iprobe(c.ptpCtx, src, tg)
	if !ok {
		return nil, nil
	}
	return probeStatus(cst.SourceGroup, cst.Tag, cst.Bytes), nil
}

// SendInit creates a persistent standard-mode send request
// (MPI_Send_init).
func (c *Comm) SendInit(buf any, offset, count int, d *Datatype, dest, tag int) (*PersistentRequest, error) {
	if err := c.sendChecks(d, dest, tag); err != nil {
		return nil, c.raise(err)
	}
	return &PersistentRequest{comm: c, mode: core.ModeStandard, buf: buf, offset: offset, count: count, dt: d, rank: dest, tag: tag}, nil
}

// SsendInit creates a persistent synchronous-mode send request.
func (c *Comm) SsendInit(buf any, offset, count int, d *Datatype, dest, tag int) (*PersistentRequest, error) {
	if err := c.sendChecks(d, dest, tag); err != nil {
		return nil, c.raise(err)
	}
	return &PersistentRequest{comm: c, mode: core.ModeSync, buf: buf, offset: offset, count: count, dt: d, rank: dest, tag: tag}, nil
}

// RsendInit creates a persistent ready-mode send request.
func (c *Comm) RsendInit(buf any, offset, count int, d *Datatype, dest, tag int) (*PersistentRequest, error) {
	if err := c.sendChecks(d, dest, tag); err != nil {
		return nil, c.raise(err)
	}
	return &PersistentRequest{comm: c, mode: core.ModeReady, buf: buf, offset: offset, count: count, dt: d, rank: dest, tag: tag}, nil
}

// BsendInit creates a persistent buffered-mode send request.
func (c *Comm) BsendInit(buf any, offset, count int, d *Datatype, dest, tag int) (*PersistentRequest, error) {
	if err := c.sendChecks(d, dest, tag); err != nil {
		return nil, c.raise(err)
	}
	return &PersistentRequest{comm: c, buffed: true, buf: buf, offset: offset, count: count, dt: d, rank: dest, tag: tag}, nil
}

// RecvInit creates a persistent receive request (MPI_Recv_init).
func (c *Comm) RecvInit(buf any, offset, count int, d *Datatype, source, tag int) (*PersistentRequest, error) {
	if err := c.recvChecks(d, source, tag); err != nil {
		return nil, c.raise(err)
	}
	return &PersistentRequest{comm: c, isRecv: true, buf: buf, offset: offset, count: count, dt: d, rank: source, tag: tag}, nil
}

// RecvIntoInit creates a persistent zero-copy receive request: each
// activation deposits the payload directly into the buffer section, on
// the IrecvInto path. Use it with a preallocated landing buffer on hot
// loops — a steady-state activation allocates nothing.
func (c *Comm) RecvIntoInit(buf any, offset, count int, d *Datatype, source, tag int) (*PersistentRequest, error) {
	if err := c.recvChecks(d, source, tag); err != nil {
		return nil, c.raise(err)
	}
	return &PersistentRequest{comm: c, isRecv: true, recvInto: true, buf: buf, offset: offset, count: count, dt: d, rank: source, tag: tag}, nil
}

// Pack incrementally packs a buffer section into outbuf starting at
// position; it returns the new position (MPI_Pack). Packed bytes travel
// with the PACKED datatype.
func (c *Comm) Pack(inbuf any, offset, incount int, d *Datatype, outbuf []byte, position int) (int, error) {
	if err := c.ok(); err != nil {
		return position, c.raise(err)
	}
	if err := c.checkType(d); err != nil {
		return position, c.raise(err)
	}
	wire, err := dtype.Pack(nil, inbuf, offset, incount, d.t)
	if err != nil {
		return position, c.raise(mapDataErr(err))
	}
	if position < 0 || position+len(wire) > len(outbuf) {
		return position, c.raise(errf(ErrBuffer, "pack of %d bytes at position %d exceeds buffer of %d",
			len(wire), position, len(outbuf)))
	}
	copy(outbuf[position:], wire)
	return position + len(wire), nil
}

// Unpack extracts outcount items from inbuf starting at position into a
// buffer section, returning the new position (MPI_Unpack).
func (c *Comm) Unpack(inbuf []byte, position int, outbuf any, offset, outcount int, d *Datatype) (int, error) {
	if err := c.ok(); err != nil {
		return position, c.raise(err)
	}
	if err := c.checkType(d); err != nil {
		return position, c.raise(err)
	}
	need := d.t.WireBytes(outcount)
	if need < 0 {
		// Object payloads are self-delimiting; consume what the
		// unpack reports.
		n, err := dtype.Unpack(inbuf[position:], outbuf, offset, outcount, d.t)
		if err != nil && err != dtype.ErrTruncate {
			return position, c.raise(mapDataErr(err))
		}
		_ = n
		return len(inbuf), nil
	}
	if position < 0 || position+need > len(inbuf) {
		return position, c.raise(errf(ErrBuffer, "unpack of %d bytes at position %d exceeds buffer of %d",
			need, position, len(inbuf)))
	}
	if _, err := dtype.Unpack(inbuf[position:position+need], outbuf, offset, outcount, d.t); err != nil {
		return position, c.raise(mapDataErr(err))
	}
	return position + need, nil
}

// PackSize bounds the space Pack needs for incount items of d
// (MPI_Pack_size). Object buffers have no static bound; PackSize returns
// Undefined for them.
func (c *Comm) PackSize(incount int, d *Datatype) (int, error) {
	if err := c.ok(); err != nil {
		return 0, c.raise(err)
	}
	if err := c.checkType(d); err != nil {
		return 0, c.raise(err)
	}
	n := d.t.WireBytes(incount)
	if n < 0 {
		return Undefined, nil
	}
	return n, nil
}
