package mpi

import "gompi/internal/dtype"

// Status carries the result of a receive or wait operation. Beyond the
// standard Source, Tag and Error fields it has the extra Index field the
// paper describes (§2.1): WaitAny/TestAny record which request completed
// there, avoiding the C binding's output argument.
type Status struct {
	// Source is the group rank of the sender (ProcNull for null
	// receives).
	Source int
	// Tag is the matched message tag.
	Tag int
	// Error is the error class associated with the operation when it
	// completed in error (ErrSuccess otherwise).
	Error ErrClass
	// Index is set by WaitAny/TestAny/WaitSome/TestSome to the index
	// of the request this status belongs to.
	Index int

	bytes     int
	elements  int
	cancelled bool
}

// GetCount returns the number of complete datatype items received, or
// Undefined if the element count does not divide evenly (MPI_Get_count).
func (s *Status) GetCount(d *Datatype) int {
	n := s.GetElements(d)
	if n == Undefined || d.Size() == 0 {
		return Undefined
	}
	if n%d.Size() != 0 {
		return Undefined
	}
	return n / d.Size()
}

// GetElements returns the number of basic elements received
// (MPI_Get_elements).
func (s *Status) GetElements(d *Datatype) int {
	if s.elements >= 0 {
		return s.elements
	}
	// Status produced without an unpack (e.g. Probe): derive from the
	// wire byte count.
	n := dtype.Elements(s.bytes, d.t.Class())
	if n < 0 {
		return Undefined
	}
	return n
}

// Bytes returns the raw wire size of the message payload.
func (s *Status) Bytes() int { return s.bytes }

// TestCancelled reports whether the operation completed by cancellation
// (MPI_Test_cancelled).
func (s *Status) TestCancelled() bool { return s.cancelled }

// probeStatus builds a Status from an envelope-only observation.
func probeStatus(srcGroup, tag, bytes int) *Status {
	return &Status{Source: srcGroup, Tag: tag, bytes: bytes, elements: -1}
}

// nullStatus is the status of an operation on ProcNull or an inactive
// request: source ProcNull, tag AnyTag, zero elements (MPI 1.1 §3.11).
func nullStatus() *Status {
	return &Status{Source: ProcNull, Tag: AnyTag}
}
