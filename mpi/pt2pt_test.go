package mpi_test

import (
	"strings"
	"testing"
	"time"

	"gompi/mpi"
)

// run2 is a 2-rank SM-mode helper.
func run2(t *testing.T, fn func(env *mpi.Env) error) {
	t.Helper()
	if err := mpi.Run(2, fn); err != nil {
		t.Fatal(err)
	}
}

func TestSendModesDeliverData(t *testing.T) {
	kinds := []string{"send", "ssend", "rsend", "isend", "issend"}
	run2(t, func(env *mpi.Env) error {
		w := env.CommWorld()
		for tag, kind := range kinds {
			if w.Rank() == 0 {
				buf := []int32{int32(tag * 100)}
				var err error
				switch kind {
				case "send":
					err = w.Send(buf, 0, 1, mpi.INT, 1, tag)
				case "ssend":
					err = w.Ssend(buf, 0, 1, mpi.INT, 1, tag)
				case "rsend":
					// Receiver side pre-posts all receives below.
					err = w.Rsend(buf, 0, 1, mpi.INT, 1, tag)
				case "isend":
					var req *mpi.Request
					if req, err = w.Isend(buf, 0, 1, mpi.INT, 1, tag); err == nil {
						_, err = req.Wait()
					}
				case "issend":
					var req *mpi.Request
					if req, err = w.Issend(buf, 0, 1, mpi.INT, 1, tag); err == nil {
						_, err = req.Wait()
					}
				}
				if err != nil {
					return err
				}
			} else {
				in := []int32{-1}
				st, err := w.Recv(in, 0, 1, mpi.INT, 0, tag)
				if err != nil {
					return err
				}
				if in[0] != int32(tag*100) || st.Tag != tag {
					t.Errorf("%s: got %d tag %d", kind, in[0], st.Tag)
				}
			}
		}
		return nil
	})
}

func TestLargeMessagesCrossEagerThreshold(t *testing.T) {
	for _, eager := range []int{-1, 64, 1 << 20} {
		err := mpi.RunWith(mpi.RunOptions{NP: 2, EagerLimit: eager}, func(env *mpi.Env) error {
			w := env.CommWorld()
			const n = 100_000
			if w.Rank() == 0 {
				buf := make([]float64, n)
				for i := range buf {
					buf[i] = float64(i) * 0.5
				}
				return w.Send(buf, 0, n, mpi.DOUBLE, 1, 1)
			}
			in := make([]float64, n)
			st, err := w.Recv(in, 0, n, mpi.DOUBLE, 0, 1)
			if err != nil {
				return err
			}
			if st.GetCount(mpi.DOUBLE) != n {
				t.Errorf("eager=%d: count %d", eager, st.GetCount(mpi.DOUBLE))
			}
			if in[n-1] != float64(n-1)*0.5 {
				t.Errorf("eager=%d: tail %v", eager, in[n-1])
			}
			return nil
		})
		if err != nil {
			t.Fatalf("eager=%d: %v", eager, err)
		}
	}
}

func TestProcNullOperations(t *testing.T) {
	run2(t, func(env *mpi.Env) error {
		w := env.CommWorld()
		buf := []int32{1}
		if err := w.Send(buf, 0, 1, mpi.INT, mpi.ProcNull, 0); err != nil {
			return err
		}
		st, err := w.Recv(buf, 0, 1, mpi.INT, mpi.ProcNull, 0)
		if err != nil {
			return err
		}
		if st.Source != mpi.ProcNull || st.GetCount(mpi.INT) != 0 {
			t.Errorf("null recv status: %+v count=%d", st, st.GetCount(mpi.INT))
		}
		req, err := w.Isend(buf, 0, 1, mpi.INT, mpi.ProcNull, 0)
		if err != nil {
			return err
		}
		if _, done, _ := req.Test(); !done {
			t.Error("send to ProcNull must complete immediately")
		}
		return nil
	})
}

func TestValidationErrors(t *testing.T) {
	run2(t, func(env *mpi.Env) error {
		w := env.CommWorld()
		buf := []int32{1}
		cases := []struct {
			err  error
			want mpi.ErrClass
			what string
		}{}
		err := w.Send(buf, 0, 1, mpi.INT, 7, 0)
		cases = append(cases, struct {
			err  error
			want mpi.ErrClass
			what string
		}{err, mpi.ErrRank, "bad dest"})
		err = w.Send(buf, 0, 1, mpi.INT, 0, -3)
		cases = append(cases, struct {
			err  error
			want mpi.ErrClass
			what string
		}{err, mpi.ErrTag, "negative tag"})
		err = w.Send(buf, 0, 1, mpi.DOUBLE, 0, 0)
		cases = append(cases, struct {
			err  error
			want mpi.ErrClass
			what string
		}{err, mpi.ErrType, "class mismatch"})
		err = w.Send(buf, 0, 5, mpi.INT, 0, 0)
		cases = append(cases, struct {
			err  error
			want mpi.ErrClass
			what string
		}{err, mpi.ErrBuffer, "overrun"})
		err = w.Send(buf, 0, 1, mpi.UB, 0, 0)
		cases = append(cases, struct {
			err  error
			want mpi.ErrClass
			what string
		}{err, mpi.ErrType, "marker type"})
		uncommitted, _ := mpi.TypeContiguous(2, mpi.INT)
		err = w.Send(buf, 0, 0, uncommitted, 0, 0)
		cases = append(cases, struct {
			err  error
			want mpi.ErrClass
			what string
		}{err, mpi.ErrType, "uncommitted"})
		_, err = w.Recv(buf, 0, 1, mpi.INT, -9, 0)
		cases = append(cases, struct {
			err  error
			want mpi.ErrClass
			what string
		}{err, mpi.ErrRank, "bad source"})
		for _, c := range cases {
			if mpi.ClassOf(c.err) != c.want {
				t.Errorf("%s: got %v (class %v), want %v", c.what, c.err, mpi.ClassOf(c.err), c.want)
			}
		}
		return nil
	})
}

func TestTruncationError(t *testing.T) {
	run2(t, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 0 {
			buf := []int32{1, 2, 3, 4, 5}
			return w.Send(buf, 0, 5, mpi.INT, 1, 1)
		}
		in := make([]int32, 3)
		st, err := w.Recv(in, 0, 3, mpi.INT, 0, 1)
		if mpi.ClassOf(err) != mpi.ErrTruncate {
			t.Errorf("truncation: got %v", err)
		}
		if st == nil || st.GetElements(mpi.INT) != 3 {
			t.Errorf("truncated status: %+v", st)
		}
		if in[0] != 1 || in[2] != 3 {
			t.Errorf("truncated prefix: %v", in)
		}
		return nil
	})
}

func TestIbsendAndBufferErrors(t *testing.T) {
	run2(t, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 0 {
			buf := make([]byte, 128)
			// No buffer attached yet.
			if err := w.Bsend(buf, 0, 128, mpi.BYTE, 1, 1); mpi.ClassOf(err) != mpi.ErrBuffer {
				t.Errorf("bsend without buffer: %v", err)
			}
			if err := env.BufferAttach(64); err != nil {
				return err
			}
			// Too big for the pool.
			if err := w.Bsend(buf, 0, 128, mpi.BYTE, 1, 1); mpi.ClassOf(err) != mpi.ErrBuffer {
				t.Errorf("oversized bsend: %v", err)
			}
			// Double attach.
			if err := env.BufferAttach(64); mpi.ClassOf(err) != mpi.ErrBuffer {
				t.Errorf("double attach: %v", err)
			}
			if err := w.Bsend(buf, 0, 32, mpi.BYTE, 1, 2); err != nil {
				return err
			}
			if _, err := env.BufferDetach(); err != nil {
				return err
			}
			// Detach again.
			if _, err := env.BufferDetach(); mpi.ClassOf(err) != mpi.ErrBuffer {
				t.Errorf("double detach: %v", err)
			}
			return w.Barrier()
		}
		in := make([]byte, 32)
		if _, err := w.Recv(in, 0, 32, mpi.BYTE, 0, 2); err != nil {
			return err
		}
		return w.Barrier()
	})
}

func TestIprobePolling(t *testing.T) {
	run2(t, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 0 {
			time.Sleep(20 * time.Millisecond)
			return w.Send([]int32{5}, 0, 1, mpi.INT, 1, 3)
		}
		st, err := w.Iprobe(0, 3)
		if err != nil {
			return err
		}
		if st != nil {
			t.Error("Iprobe saw a message before it was sent")
		}
		deadline := time.Now().Add(5 * time.Second)
		for st == nil && time.Now().Before(deadline) {
			if st, err = w.Iprobe(0, 3); err != nil {
				return err
			}
		}
		if st == nil {
			t.Error("Iprobe never saw the message")
			return nil
		}
		in := []int32{0}
		_, err = w.Recv(in, 0, 1, mpi.INT, 0, 3)
		return err
	})
}

func TestCancelReceive(t *testing.T) {
	run2(t, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 1 {
			in := []int32{0}
			req, err := w.Irecv(in, 0, 1, mpi.INT, 0, 77)
			if err != nil {
				return err
			}
			if err := req.Cancel(); err != nil {
				return err
			}
			st, err := req.Wait()
			if err != nil {
				return err
			}
			if !st.TestCancelled() {
				t.Error("cancelled receive not marked")
			}
		}
		return w.Barrier()
	})
}

func TestWaitSomeTestSome(t *testing.T) {
	run2(t, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 0 {
			if err := w.Barrier(); err != nil {
				return err
			}
			for i := 0; i < 3; i++ {
				if err := w.Send([]int32{int32(i)}, 0, 1, mpi.INT, 1, 10+i); err != nil {
					return err
				}
			}
			return nil
		}
		bufs := make([][]int32, 3)
		reqs := make([]*mpi.Request, 3)
		for i := range reqs {
			bufs[i] = []int32{-1}
			var err error
			if reqs[i], err = w.Irecv(bufs[i], 0, 1, mpi.INT, 0, 10+i); err != nil {
				return err
			}
		}
		// Nothing has been sent yet.
		some, err := mpi.TestSome(reqs)
		if err != nil {
			return err
		}
		if len(some) != 0 {
			t.Errorf("TestSome before sends: %d completions", len(some))
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		seen := map[int]bool{}
		for len(seen) < 3 {
			sts, err := mpi.WaitSome(reqs)
			if err != nil {
				return err
			}
			if len(sts) == 0 {
				t.Error("WaitSome returned empty")
				break
			}
			for _, st := range sts {
				if seen[st.Index] {
					t.Errorf("WaitSome repeated index %d", st.Index)
				}
				seen[st.Index] = true
				reqs[st.Index].Free()
			}
		}
		return nil
	})
}

func TestTestAllAndFreedRequests(t *testing.T) {
	run2(t, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 0 {
			for i := 0; i < 2; i++ {
				if err := w.Send([]int32{9}, 0, 1, mpi.INT, 1, i); err != nil {
					return err
				}
			}
			return nil
		}
		a := []int32{0}
		b := []int32{0}
		r1, err := w.Irecv(a, 0, 1, mpi.INT, 0, 0)
		if err != nil {
			return err
		}
		r2, err := w.Irecv(b, 0, 1, mpi.INT, 0, 1)
		if err != nil {
			return err
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			sts, done, err := mpi.TestAll([]*mpi.Request{r1, r2})
			if err != nil {
				return err
			}
			if done {
				if len(sts) != 2 {
					t.Errorf("TestAll returned %d statuses", len(sts))
				}
				break
			}
			if time.Now().After(deadline) {
				t.Error("TestAll never completed")
				break
			}
		}
		// Freed/inactive requests behave as null.
		r1.Free()
		st, err := r1.Wait()
		if err != nil || st.Source != mpi.ProcNull {
			t.Errorf("wait on freed request: %+v %v", st, err)
		}
		if !r1.IsNull() {
			t.Error("freed request not null")
		}
		return nil
	})
}

func TestPersistentBsendAndSsendInit(t *testing.T) {
	run2(t, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 0 {
			if err := env.BufferAttach(1024); err != nil {
				return err
			}
			buf := []int32{0}
			pb, err := w.BsendInit(buf, 0, 1, mpi.INT, 1, 1)
			if err != nil {
				return err
			}
			ps, err := w.SsendInit(buf, 0, 1, mpi.INT, 1, 2)
			if err != nil {
				return err
			}
			for i := 0; i < 3; i++ {
				buf[0] = int32(i)
				if err := mpi.StartAll([]*mpi.Prequest{pb, ps}); err != nil {
					return err
				}
				if _, err := mpi.WaitAllP([]*mpi.Prequest{pb, ps}); err != nil {
					return err
				}
			}
			if _, err := env.BufferDetach(); err != nil {
				return err
			}
			return nil
		}
		in := []int32{0}
		for i := 0; i < 3; i++ {
			if _, err := w.Recv(in, 0, 1, mpi.INT, 0, 1); err != nil {
				return err
			}
			if _, err := w.Recv(in, 0, 1, mpi.INT, 0, 2); err != nil {
				return err
			}
			if in[0] != int32(i) {
				t.Errorf("persistent iteration %d: got %d", i, in[0])
			}
		}
		return nil
	})
}

func TestBindingOverheadInjection(t *testing.T) {
	const overhead = 200 * time.Microsecond
	err := mpi.RunWith(mpi.RunOptions{NP: 2, BindingOverhead: overhead}, func(env *mpi.Env) error {
		w := env.CommWorld()
		const reps = 20
		buf := []byte{0}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if w.Rank() == 0 {
				if err := w.Send(buf, 0, 1, mpi.BYTE, 1, 1); err != nil {
					return err
				}
				if _, err := w.Recv(buf, 0, 1, mpi.BYTE, 1, 1); err != nil {
					return err
				}
			} else {
				if _, err := w.Recv(buf, 0, 1, mpi.BYTE, 0, 1); err != nil {
					return err
				}
				if err := w.Send(buf, 0, 1, mpi.BYTE, 0, 1); err != nil {
					return err
				}
			}
		}
		elapsed := time.Since(start)
		// Each round trip crosses the binding 4 times (2 sends + 2
		// receives); at least the two send-side crossings per round
		// trip are strictly serialized on the critical path.
		if floor := reps * 2 * overhead; elapsed < floor {
			t.Errorf("binding overhead not charged: %v < %v", elapsed, floor)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPanicIsReported(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		if env.Rank() == 1 {
			panic("deliberate test panic")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "deliberate test panic") {
		t.Fatalf("panic not propagated: %v", err)
	}
}

func TestRunErrorAggregation(t *testing.T) {
	err := mpi.Run(3, func(env *mpi.Env) error {
		if env.Rank() == 2 {
			return errFromRank2
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "rank 2") ||
		!strings.Contains(err.Error(), errFromRank2.Error()) {
		t.Fatalf("error not attributed to rank 2: %v", err)
	}
}

var errFromRank2 = &mpi.Error{Class: mpi.ErrOther, Msg: "synthetic failure"}
