package mpi

import (
	"context"
	"errors"
	"sync"

	"gompi/internal/coll"
	"gompi/internal/core"
	"gompi/internal/transport"
)

// ErrCollectiveCancelled reports a collective whose schedule was torn
// down by a WaitCtx cancellation: a later Wait/Test on the same request
// returns it (it is control flow, not an MPI error, and never routes
// through the communicator's error handler).
var ErrCollectiveCancelled = coll.ErrCancelled

// CollRequest is a handle on a pending nonblocking collective operation
// (MPI_Ibarrier, MPI_Ibcast, … — the MPI-3 nonblocking collectives).
// Completion side effects — unpacking wire payloads into the caller's
// receive buffers — run exactly once, inside the first Wait/WaitCtx/Test
// that observes completion: MPI permits touching a collective's buffers
// only after the operation completes, and that is when the binding
// fills them.
type CollRequest struct {
	comm *Comm
	creq *coll.Request
	fin  func(res any) error // deferred completion: deposit into user buffers

	// fileStatus carries the transfer status of a collective file read
	// (set by the completion deposit; see File.IreadAtAll).
	fileStatus *Status

	once sync.Once
	err  error
}

func newCollRequest(c *Comm, creq *coll.Request, fin func(res any) error) *CollRequest {
	return &CollRequest{comm: c, creq: creq, fin: fin}
}

// settle runs the completion side effects exactly once and routes any
// error through the communicator's error handler.
func (r *CollRequest) settle(res any, schedErr error) error {
	r.once.Do(func() {
		var err error
		switch {
		case errors.Is(schedErr, coll.ErrCancelled):
			// Reaping a request whose WaitCtx already cancelled it:
			// control flow, not an MPI error — bypass the handler.
			r.err = ErrCollectiveCancelled
			return
		case schedErr != nil:
			// Fault-tolerance outcomes first (a member died or revoked
			// mid-collective), then mapPioErr classifies file-schedule
			// failures (ErrFile, ErrArg, ErrAccess, ErrIO) and wraps
			// everything else as ErrIntern — exactly the classic
			// collective behaviour.
			var lost *transport.PeerLostError
			if errors.As(schedErr, &lost) || errors.Is(schedErr, core.ErrCommRevoked) {
				err = mapEngineErr(schedErr)
			} else {
				err = mapPioErr(schedErr)
			}
		case r.fin != nil:
			err = r.fin(res)
		}
		r.err = r.comm.raise(err)
	})
	return r.err
}

// stat is the status a completed collective reports: collective file
// reads carry their transfer status, every other collective completes
// with the empty status (collectives have no source/tag to report).
func (r *CollRequest) stat() *Status {
	if r.fileStatus != nil {
		return r.fileStatus
	}
	return nullStatus()
}

// Wait blocks until the collective completes on this member (MPI_Wait)
// and fills the receive buffers. The returned status is empty except
// for collective file reads, which report their transfer status.
func (r *CollRequest) Wait() (*Status, error) {
	res, err := r.creq.Wait()
	serr := r.settle(res, err)
	return r.stat(), serr
}

// WaitCtx blocks until the collective completes or ctx is done. When
// ctx fires first, the underlying schedule is cancelled at its next
// internal send/receive boundary — so a collective stalled on an absent
// peer unblocks promptly — and ctx's error is returned. Context errors
// bypass the communicator's error handler: a cancelled wait is control
// flow, not an MPI error, and the receive buffers are left untouched.
//
// Cancellation abandons this member's participation in that collective
// instance only; per-instance tags keep later collectives on the same
// communicator from ever matching its traffic. The MPI ordering rule
// still applies: the communicator stays usable provided every member
// eventually makes the same sequence of collective calls, cancelled or
// not — with one caveat: a payload above the eager limit still owed to
// the cancelled member stalls the late sender's rendezvous, so ranks
// mixing cancellation into a communicator should use the *Ctx forms on
// every member (see coll.Request.WaitCtx).
func (r *CollRequest) WaitCtx(ctx context.Context) (*Status, error) {
	res, err := r.creq.WaitCtx(ctx)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return nullStatus(), err
	}
	serr := r.settle(res, err)
	return r.stat(), serr
}

// Test reports whether the collective has completed (MPI_Test), filling
// the receive buffers on the observation of completion.
func (r *CollRequest) Test() (*Status, bool, error) {
	res, done, err := r.creq.Test()
	if !done {
		return nil, false, nil
	}
	serr := r.settle(res, err)
	return r.stat(), true, serr
}

// Free releases the handle (MPI_Request_free): the collective, if still
// pending, is allowed to complete in the background; its result is
// discarded and the receive buffers are never filled.
func (r *CollRequest) Free() error { return nil }

// FileStatus returns the transfer status of a completed collective
// file read (File.IreadAtAll/IreadAll): GetCount reports the elements
// the file actually held, so short reads at end-of-file are detectable
// on the nonblocking path too. It is nil before completion and for
// every other kind of collective.
func (r *CollRequest) FileStatus() *Status { return r.fileStatus }

// FileCollRequest is the request of a nonblocking collective file
// operation (File.IwriteAtAll, File.IreadAtAll and friends). It is a
// CollRequest whose Wait/WaitCtx/Test report the transfer status of the
// completed file operation — for reads, GetCount on the returned status
// gives the elements the file actually held, so short reads at
// end-of-file are detectable without a separate FileStatus call.
type FileCollRequest struct {
	*CollRequest
}
