package mpi_test

import (
	"fmt"
	"testing"

	"gompi/mpi"
)

// TestWinUseAfterFree covers the origin-side error paths: Put, Get,
// Accumulate and Fence on a freed window must fail locally with
// MPI_ERR_COMM and leave the communicator usable.
func TestWinUseAfterFree(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		base := make([]float64, 8)
		win, err := w.CreateWin(base, mpi.DOUBLE)
		if err != nil {
			return err
		}
		if err := win.Free(); err != nil {
			return err
		}
		buf := []float64{1}
		if err := win.Put(buf, 0, 1, mpi.DOUBLE, 0, 0); mpi.ClassOf(err) != mpi.ErrComm {
			return fmt.Errorf("Put after Free: got %v, want MPI_ERR_COMM", err)
		}
		if err := win.Get(buf, 0, 1, mpi.DOUBLE, 0, 0); mpi.ClassOf(err) != mpi.ErrComm {
			return fmt.Errorf("Get after Free: got %v, want MPI_ERR_COMM", err)
		}
		if err := win.Accumulate(buf, 0, 1, mpi.DOUBLE, 0, 0, mpi.SUM); mpi.ClassOf(err) != mpi.ErrComm {
			return fmt.Errorf("Accumulate after Free: got %v, want MPI_ERR_COMM", err)
		}
		if err := win.Free(); mpi.ClassOf(err) != mpi.ErrComm {
			return fmt.Errorf("double Free: got %v, want MPI_ERR_COMM", err)
		}
		// The world communicator is unaffected.
		return w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWinTargetRangeError covers the target-side range check: a Put to
// a displacement outside the target's window is dropped at the target
// and surfaces through the *target's* next Fence as MPI_ERR_BUFFER;
// the origin's Fence stays clean and the window remains usable.
func TestWinTargetRangeError(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		base := make([]float64, 4)
		win, err := w.CreateWin(base, mpi.DOUBLE)
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			// Displacement 100 is far outside rank 1's 4-element window.
			if err := win.Put([]float64{7}, 0, 1, mpi.DOUBLE, 1, 100); err != nil {
				return fmt.Errorf("Put itself must not fail at the origin: %v", err)
			}
		}
		err = win.Fence()
		switch w.Rank() {
		case 0:
			if err != nil {
				return fmt.Errorf("origin Fence: %v, want nil", err)
			}
		case 1:
			if mpi.ClassOf(err) != mpi.ErrBuffer {
				return fmt.Errorf("target Fence: got %v, want MPI_ERR_BUFFER", err)
			}
		}
		// The error is consumed by the Fence that reported it; the
		// window keeps working.
		if w.Rank() == 0 {
			if err := win.Put([]float64{7}, 0, 1, mpi.DOUBLE, 1, 3); err != nil {
				return err
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if w.Rank() == 1 && base[3] != 7 {
			return fmt.Errorf("window element 3 = %v after recovery Put, want 7", base[3])
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWinDatatypeMismatchError covers the target-side datatype check:
// an Accumulate whose payload does not match the window's element
// size (here FLOAT into a DOUBLE window) surfaces through the target's
// Fence as MPI_ERR_TYPE.
func TestWinDatatypeMismatchError(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		base := make([]float64, 4)
		win, err := w.CreateWin(base, mpi.DOUBLE)
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			// 2 float32 elements = 8 bytes, claiming 2 window elements
			// (16 bytes expected): a datatype mismatch only the target
			// can detect.
			if err := win.Accumulate([]float32{1, 2}, 0, 2, mpi.FLOAT, 1, 0, mpi.SUM); err != nil {
				return fmt.Errorf("Accumulate itself must not fail at the origin: %v", err)
			}
		}
		err = win.Fence()
		switch w.Rank() {
		case 0:
			if err != nil {
				return fmt.Errorf("origin Fence: %v, want nil", err)
			}
		case 1:
			if mpi.ClassOf(err) != mpi.ErrType {
				return fmt.Errorf("target Fence: got %v, want MPI_ERR_TYPE", err)
			}
			for i, v := range base {
				if v != 0 {
					return fmt.Errorf("mismatched accumulate mutated window: base[%d]=%v", i, v)
				}
			}
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWinObjectWindow pins down that the target-side datatype check
// does not reject OBJECT windows, whose gob payloads have no fixed
// element size.
func TestWinObjectWindow(t *testing.T) {
	mpi.RegisterObject("")
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		base := make([]any, 4)
		win, err := w.CreateWin(base, mpi.OBJECT)
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			if err := win.Put([]any{"hello", "there"}, 0, 2, mpi.OBJECT, 1, 1); err != nil {
				return err
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if w.Rank() == 1 {
			if base[1] != "hello" || base[2] != "there" {
				return fmt.Errorf("object window after Put: %v", base)
			}
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWinGetRangeError covers the Get direction of the range check.
func TestWinGetRangeError(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		base := make([]float64, 4)
		win, err := w.CreateWin(base, mpi.DOUBLE)
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			// Read [2, 6) of a 4-element window.
			buf := make([]float64, 4)
			if err := win.Get(buf, 0, 4, mpi.DOUBLE, 1, 2); err != nil {
				return fmt.Errorf("Get itself must not fail at the origin: %v", err)
			}
		}
		err = win.Fence()
		switch w.Rank() {
		case 0:
			if err != nil {
				return fmt.Errorf("origin Fence: %v, want nil", err)
			}
		case 1:
			if mpi.ClassOf(err) != mpi.ErrBuffer {
				return fmt.Errorf("target Fence: got %v, want MPI_ERR_BUFFER", err)
			}
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}
