package mpi

import "fmt"

// ErrClass enumerates the MPI-1.1 error classes (§7.3 of the standard).
// The binding returns *Error values carrying one of these classes; Go's
// error return takes the place of both C return codes and the Java
// binding's MPIException.
type ErrClass int

// MPI error classes.
const (
	ErrSuccess  ErrClass = iota // no error
	ErrBuffer                   // invalid buffer pointer / exhausted attach buffer
	ErrCount                    // invalid count argument
	ErrType                     // invalid datatype argument
	ErrTag                      // invalid tag argument
	ErrComm                     // invalid (or freed) communicator
	ErrRank                     // invalid rank
	ErrRequest                  // invalid request handle
	ErrRoot                     // invalid root
	ErrGroup                    // invalid group
	ErrOp                       // invalid reduction operation
	ErrTopology                 // invalid topology
	ErrDims                     // invalid dimension argument
	ErrArg                      // invalid argument of some other kind
	ErrTruncate                 // message truncated on receive
	ErrOther                    // known error not in this list
	ErrIntern                   // internal implementation error
	ErrInStatus                 // error code is in the status
	ErrPending                  // pending request

	// MPI-2 §9 (parallel I/O) classes.
	ErrFile   // invalid file handle (closed, nil, wrong state)
	ErrIO     // underlying filesystem I/O failure
	ErrAmode  // invalid access-mode combination passed to OpenFile
	ErrAccess // operation forbidden by the file's access mode

	// ErrProcFailed reports that a peer process died (its OS process
	// exited or its connection reset) while an operation depending on
	// it was pending — the MPI fault-tolerance extensions'
	// MPI_ERR_PROC_FAILED. Operations with other, live peers continue
	// to work on the same communicator.
	ErrProcFailed

	// ErrRevoked reports that the communicator was revoked
	// (ULFM MPI_ERR_REVOKED): some member called Revoke after observing
	// a failure, poisoning all non-recovery operations on the
	// communicator so every member reaches the repair path (Shrink)
	// instead of deadlocking on a dead participant.
	ErrRevoked

	// ErrPort reports a dynamic-process rendezvous failure
	// (MPI-2 MPI_ERR_PORT): a malformed, unknown, closed or stale port
	// name, a refused or timed-out Connect/Accept handshake, or a
	// failure to establish the pairwise links behind a join.
	ErrPort

	// ErrSpawn reports that MPI_Comm_spawn could not provision the
	// child processes (MPI-2 MPI_ERR_SPAWN): the launcher's spawn
	// service refused, or starting the children locally failed.
	ErrSpawn
)

var errClassNames = map[ErrClass]string{
	ErrSuccess: "MPI_SUCCESS", ErrBuffer: "MPI_ERR_BUFFER", ErrCount: "MPI_ERR_COUNT",
	ErrType: "MPI_ERR_TYPE", ErrTag: "MPI_ERR_TAG", ErrComm: "MPI_ERR_COMM",
	ErrRank: "MPI_ERR_RANK", ErrRequest: "MPI_ERR_REQUEST", ErrRoot: "MPI_ERR_ROOT",
	ErrGroup: "MPI_ERR_GROUP", ErrOp: "MPI_ERR_OP", ErrTopology: "MPI_ERR_TOPOLOGY",
	ErrDims: "MPI_ERR_DIMS", ErrArg: "MPI_ERR_ARG", ErrTruncate: "MPI_ERR_TRUNCATE",
	ErrOther: "MPI_ERR_OTHER", ErrIntern: "MPI_ERR_INTERN", ErrInStatus: "MPI_ERR_IN_STATUS",
	ErrPending: "MPI_ERR_PENDING",
	ErrFile:    "MPI_ERR_FILE", ErrIO: "MPI_ERR_IO", ErrAmode: "MPI_ERR_AMODE",
	ErrAccess: "MPI_ERR_ACCESS", ErrProcFailed: "MPI_ERR_PROC_FAILED",
	ErrRevoked: "MPI_ERR_REVOKED",
	ErrPort:    "MPI_ERR_PORT", ErrSpawn: "MPI_ERR_SPAWN",
}

func (c ErrClass) String() string {
	if s, ok := errClassNames[c]; ok {
		return s
	}
	return fmt.Sprintf("MPI_ERR(%d)", int(c))
}

// Error is the binding's error type: an MPI error class plus detail.
type Error struct {
	Class ErrClass
	Msg   string
}

func (e *Error) Error() string {
	if e.Msg == "" {
		return e.Class.String()
	}
	return e.Class.String() + ": " + e.Msg
}

// errf builds an *Error with formatted detail.
func errf(class ErrClass, format string, args ...any) *Error {
	return &Error{Class: class, Msg: fmt.Sprintf(format, args...)}
}

// ClassOf extracts the MPI error class of an error returned by this
// package; non-*Error values map to ErrOther, nil to ErrSuccess.
func ClassOf(err error) ErrClass {
	if err == nil {
		return ErrSuccess
	}
	if e, ok := err.(*Error); ok {
		return e.Class
	}
	return ErrOther
}

// Errhandler selects how a communicator reports errors, mirroring
// MPI_Errhandler. The Go binding defaults to ErrorsReturn — Go's error
// values are the natural analogue of the Java binding's exceptions —
// while ErrorsAreFatal panics, matching the MPI default's
// program-terminating behaviour.
type Errhandler int

// Predefined error handlers.
const (
	// ErrorsReturn delivers errors as Go return values (default).
	ErrorsReturn Errhandler = iota
	// ErrorsAreFatal panics on the first error raised on the
	// communicator.
	ErrorsAreFatal
)
