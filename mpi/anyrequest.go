package mpi

import "context"

// AnyRequest is the unified request surface — the binding's analogue of
// MPI-4's single request class. Every request kind the binding produces
// satisfies it:
//
//   - *Request            point-to-point nonblocking operations
//   - *CollRequest        nonblocking collectives
//   - *FileCollRequest    nonblocking collective file I/O
//   - *PersistentRequest  persistent operations (*Init/Start)
//
// so heterogeneous sets can be completed together with WaitAllAny and
// TestAllAny, the way MPI_Waitall accepts mixed request kinds. The
// concrete helpers (WaitAll over []*Request, WaitAllP over persistent
// requests) remain for homogeneous sets, where they avoid the interface
// boxing and keep their richer semantics (WaitAny, WaitSome).
//
// For request kinds that carry no per-operation status (collectives,
// persistent collective activations), Wait/WaitCtx/Test return the
// empty status; collective file reads report their transfer status.
type AnyRequest interface {
	Wait() (*Status, error)
	WaitCtx(ctx context.Context) (*Status, error)
	Test() (*Status, bool, error)
	Free() error
}

var (
	_ AnyRequest = (*Request)(nil)
	_ AnyRequest = (*CollRequest)(nil)
	_ AnyRequest = (*FileCollRequest)(nil)
	_ AnyRequest = (*PersistentRequest)(nil)
)

// WaitAllAny waits for every request in a mixed-kind set and returns
// their statuses in order, Index fields set (MPI_Waitall over the
// unified request surface). The first operation error is returned;
// waiting continues past failures so every request is reaped.
func WaitAllAny(reqs []AnyRequest) ([]*Status, error) {
	sts := make([]*Status, len(reqs))
	var firstErr error
	for i, r := range reqs {
		st, err := r.Wait()
		cp := *st
		cp.Index = i
		sts[i] = &cp
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return sts, firstErr
}

// TestAllAny reports completion of every request in a mixed-kind set
// (MPI_Testall); statuses are only returned when all have completed.
func TestAllAny(reqs []AnyRequest) ([]*Status, bool, error) {
	for _, r := range reqs {
		if _, done, _ := r.Test(); !done {
			return nil, false, nil
		}
	}
	sts, err := WaitAllAny(reqs)
	return sts, true, err
}
