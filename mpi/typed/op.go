package typed

import "gompi/mpi"

// The reduction constraints admit exactly the native element types, so
// an Op[T] can only be instantiated for types whose dense slices the
// reduction kernels in internal/coll operate on directly — the
// compile-time analogue of the classic API's runtime op/datatype check.
// Named types and structs route through MPI.OBJECT buffers, which carry
// no arithmetic; the constraints keep them out of reductions entirely.
type (
	// Number admits the element types the arithmetic family
	// (Sum/Prod/Max/Min) accepts.
	Number interface {
		byte | int16 | int32 | int64 | float32 | float64
	}
	// Integer admits the element types the bitwise family accepts.
	Integer interface {
		byte | int16 | int32 | int64
	}
	// Logical admits bool and, following the C binding's non-zero-is-
	// true convention, the integer types.
	Logical interface {
		bool | byte | int16 | int32 | int64
	}
	// Primitive admits every element type reductions can carry.
	Primitive interface {
		bool | byte | int16 | int32 | int64 | float32 | float64
	}
)

// Op is a reduction operation bound to element type T at compile time.
// Construct one with Sum/Max/Min/Prod/LAnd/…/OpFunc; the zero Op is
// invalid.
type Op[T any] struct {
	op *mpi.Op
}

// Raw exposes the underlying classic operation.
func (o Op[T]) Raw() *mpi.Op { return o.op }

// Arithmetic reductions (MPI_SUM, MPI_PROD, MPI_MAX, MPI_MIN).
func Sum[T Number]() Op[T]  { return Op[T]{mpi.SUM} }
func Prod[T Number]() Op[T] { return Op[T]{mpi.PROD} }
func Max[T Number]() Op[T]  { return Op[T]{mpi.MAX} }
func Min[T Number]() Op[T]  { return Op[T]{mpi.MIN} }

// Logical reductions (MPI_LAND, MPI_LOR, MPI_LXOR).
func LAnd[T Logical]() Op[T] { return Op[T]{mpi.LAND} }
func LOr[T Logical]() Op[T]  { return Op[T]{mpi.LOR} }
func LXor[T Logical]() Op[T] { return Op[T]{mpi.LXOR} }

// Bitwise reductions (MPI_BAND, MPI_BOR, MPI_BXOR).
func BAnd[T Integer]() Op[T] { return Op[T]{mpi.BAND} }
func BOr[T Integer]() Op[T]  { return Op[T]{mpi.BOR} }
func BXor[T Integer]() Op[T] { return Op[T]{mpi.BXOR} }

// OpFunc wraps a user-defined reduction over typed dense slices
// (MPI_Op_create): fn must fold in into inout elementwise,
// inout[i] = op(in[i], inout[i]), with in contributed by the
// lower-ranked process. The slices reach fn without boxing — they are
// the runtime's dense operand buffers, type-asserted once per fold.
// Declare commutativity honestly: non-commutative operations reduce
// strictly in rank order, at extra cost.
func OpFunc[T Primitive](fn func(in, inout []T), commute bool) Op[T] {
	return Op[T]{mpi.NewOp(func(in, inout any) {
		fn(in.([]T), inout.([]T))
	}, commute)}
}
