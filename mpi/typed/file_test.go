package typed_test

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"gompi/mpi"
	"gompi/mpi/typed"
)

func TestTypedFileCollectiveRoundTrip(t *testing.T) {
	const ranks, per = 4, 300
	path := filepath.Join(t.TempDir(), "typed.bin")
	err := mpi.Run(ranks, func(env *mpi.Env) error {
		w := env.CommWorld()
		f, err := typed.OpenFile[float64](w, path, mpi.ModeCreate|mpi.ModeRdwr)
		if err != nil {
			return err
		}
		defer f.Close()
		mine := make([]float64, per)
		for i := range mine {
			mine[i] = float64(w.Rank()) + float64(i)/per
		}
		if _, err := f.WriteAllAt(mine, w.Rank()*per); err != nil {
			return err
		}
		back := make([]float64, per)
		st, err := f.ReadAllAt(back, w.Rank()*per)
		if err != nil {
			return err
		}
		if typed.Count[float64](st) != per || !reflect.DeepEqual(mine, back) {
			return fmt.Errorf("rank %d: typed round trip mismatch (count %d)",
				w.Rank(), typed.Count[float64](st))
		}
		// Cross-rank check through an independent read: rank r reads
		// its right neighbour's first element.
		next := (w.Rank() + 1) % ranks
		one := make([]float64, 1)
		if err := w.Barrier(); err != nil {
			return err
		}
		if _, err := f.ReadAt(one, next*per); err != nil {
			return err
		}
		if one[0] != float64(next) {
			return fmt.Errorf("rank %d: neighbour element = %v, want %v", w.Rank(), one[0], float64(next))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTypedFileStridedViewAndNamedPrimitive(t *testing.T) {
	// Named primitives ride their class's wire format into files, and
	// a strided typed view interleaves ranks element-by-element.
	type Celsius float64
	const ranks = 3
	path := filepath.Join(t.TempDir(), "celsius.bin")
	err := mpi.Run(ranks, func(env *mpi.Env) error {
		w := env.CommWorld()
		f, err := typed.OpenFile[Celsius](w, path, mpi.ModeCreate|mpi.ModeRdwr)
		if err != nil {
			return err
		}
		defer f.Close()
		// Round-robin view: rank r sees file elements r, r+3, r+6, ...
		// — one element per ranks-wide tile, the stride pinned with an
		// explicit UB marker.
		ft, err := mpi.TypeStruct([]int{1, 1}, []int{0, ranks},
			[]*mpi.Datatype{mpi.DOUBLE, mpi.UB})
		if err != nil {
			return err
		}
		ft.Commit()
		if err := f.SetView(w.Rank(), ft); err != nil {
			return err
		}
		mine := []Celsius{Celsius(10 * w.Rank()), Celsius(10*w.Rank() + 1)}
		if _, err := f.WriteAllAt(mine, 0); err != nil {
			return err
		}
		back := make([]Celsius, 2)
		if _, err := f.ReadAllAt(back, 0); err != nil {
			return err
		}
		if !reflect.DeepEqual(mine, back) {
			return fmt.Errorf("rank %d: named-primitive round trip mismatch: %v vs %v", w.Rank(), mine, back)
		}
		// The interleaved whole: read it back through the identity view
		// on rank 0 after everyone has written.
		if err := w.Barrier(); err != nil {
			return err
		}
		if err := f.SetView(0, mpi.DOUBLE); err != nil {
			return err
		}
		all := make([]Celsius, 2*ranks)
		if _, err := f.ReadAt(all, 0); err != nil {
			return err
		}
		want := make([]Celsius, 2*ranks)
		for r := 0; r < ranks; r++ {
			want[r] = Celsius(10 * r)
			want[ranks+r] = Celsius(10*r + 1)
		}
		if !reflect.DeepEqual(all, want) {
			return fmt.Errorf("rank %d: interleaved file = %v, want %v", w.Rank(), all, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTypedFileRejectsObjectTypes(t *testing.T) {
	type point struct{ X, Y int }
	err := mpi.Run(1, func(env *mpi.Env) error {
		w := env.CommWorld()
		if _, err := typed.OpenFile[point](w, filepath.Join(t.TempDir(), "obj.bin"), mpi.ModeCreate|mpi.ModeRdwr); err == nil {
			return fmt.Errorf("OpenFile accepted a struct element type")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
