package typed

import "fmt"

// Typed collectives, generic over the Comm interface: any communicator
// exposing the classic collective surface works — *mpi.Intracomm today,
// *mpi.Cartcomm/*mpi.Graphcomm through embedding, intercommunicators
// once their collectives exist. Counts are taken from slice lengths, so
// the classic API's uniform-contribution rule becomes a length rule:
// every member passes the same send length to Gather/Allgather, the
// same recv length to Scatter, and the same count to the reductions.
// The v-variants (Gatherv/Scatterv/Allgatherv/Alltoallv) relax that to
// per-rank counts with back-to-back packing. Receive buffers that a
// call does not touch on this rank (recv at a non-root, Gather's
// recvbuf away from root) may be nil.
//
// The I*-prefixed forms are the nonblocking variants: they return a
// *Request[T] completing when every member has entered the matching
// call; receive buffers are filled by the first Wait/WaitCtx/Test that
// observes completion and must not be touched before then.

// Barrier blocks until every member has entered it (MPI_Barrier).
func Barrier(c Comm) error { return c.Barrier() }

// Bcast broadcasts root's buffer to every member (MPI_Bcast). All
// members pass a buffer of the same length.
func Bcast[T any](c Comm, buf []T, root int) error {
	raw, d, unbox := view(buf)
	if err := c.Bcast(raw, 0, len(buf), d, root); err != nil {
		return err
	}
	if unbox != nil {
		return unbox()
	}
	return nil
}

// Ibcast starts a nonblocking broadcast (MPI_Ibcast).
func Ibcast[T any](c Comm, buf []T, root int) (*Request[T], error) {
	raw, d, unbox := view(buf)
	cr, err := c.Ibcast(raw, 0, len(buf), d, root)
	if err != nil {
		return nil, err
	}
	return &Request[T]{cr: cr, unbox: unbox}, nil
}

// BcastOne broadcasts a single value from root, returning the value on
// every member.
func BcastOne[T any](c Comm, v T, root int) (T, error) {
	buf := []T{v}
	err := Bcast(c, buf, root)
	return buf[0], err
}

// Gather collects every member's send slice at root (MPI_Gather):
// member r's contribution lands at recv[r*len(send):]. recv needs
// length Size()*len(send) at root and is ignored elsewhere.
func Gather[T any](c Comm, send, recv []T, root int) error {
	sraw, sd, _ := view(send)
	rraw, rd, unbox := view(recv)
	if err := c.Gather(sraw, 0, len(send), sd, rraw, 0, len(send), rd, root); err != nil {
		return err
	}
	if unbox != nil && c.Rank() == root {
		return unbox()
	}
	return nil
}

// Igather starts a nonblocking gather (MPI_Igather).
func Igather[T any](c Comm, send, recv []T, root int) (*Request[T], error) {
	sraw, sd, _ := view(send)
	rraw, rd, unbox := view(recv)
	cr, err := c.Igather(sraw, 0, len(send), sd, rraw, 0, len(send), rd, root)
	if err != nil {
		return nil, err
	}
	if c.Rank() != root {
		unbox = nil
	}
	return &Request[T]{cr: cr, unbox: unbox}, nil
}

// Gatherv collects varying-length contributions at root (MPI_Gatherv):
// member r contributes its whole send slice, whose length must equal
// counts[r], and the blocks land back-to-back in recv (length
// sum(counts)) in rank order. counts and recv are significant at root
// only.
func Gatherv[T any](c Comm, send, recv []T, counts []int, root int) error {
	sraw, sd, _ := view(send)
	rraw, rd, unbox := view(recv)
	var displs []int
	if c.Rank() == root {
		var total int
		displs, total = displsOf(counts)
		if len(recv) != total {
			c.SkipColl() // stay tag-aligned with members whose call proceeds
			return fmt.Errorf("typed: Gatherv recv length %d, want sum(counts) = %d", len(recv), total)
		}
	}
	if err := c.Gatherv(sraw, 0, len(send), sd, rraw, 0, counts, displs, rd, root); err != nil {
		return err
	}
	if unbox != nil && c.Rank() == root {
		return unbox()
	}
	return nil
}

// Allgather is Gather with the result delivered to every member
// (MPI_Allgather). recv needs length Size()*len(send) everywhere.
func Allgather[T any](c Comm, send, recv []T) error {
	sraw, sd, _ := view(send)
	rraw, rd, unbox := view(recv)
	if err := c.Allgather(sraw, 0, len(send), sd, rraw, 0, len(send), rd); err != nil {
		return err
	}
	if unbox != nil {
		return unbox()
	}
	return nil
}

// Iallgather starts a nonblocking allgather (MPI_Iallgather).
func Iallgather[T any](c Comm, send, recv []T) (*Request[T], error) {
	sraw, sd, _ := view(send)
	rraw, rd, unbox := view(recv)
	cr, err := c.Iallgather(sraw, 0, len(send), sd, rraw, 0, len(send), rd)
	if err != nil {
		return nil, err
	}
	return &Request[T]{cr: cr, unbox: unbox}, nil
}

// Allgatherv is Gatherv with the result delivered to every member
// (MPI_Allgatherv): member r contributes len(send) == counts[r]
// elements and every member's recv (length sum(counts)) receives the
// blocks back-to-back in rank order.
func Allgatherv[T any](c Comm, send, recv []T, counts []int) error {
	sraw, sd, _ := view(send)
	rraw, rd, unbox := view(recv)
	displs, total := displsOf(counts)
	if len(recv) != total {
		c.SkipColl() // stay tag-aligned with members whose call proceeds
		return fmt.Errorf("typed: Allgatherv recv length %d, want sum(counts) = %d", len(recv), total)
	}
	if r := c.Rank(); r < len(counts) && len(send) != counts[r] {
		c.SkipColl()
		return fmt.Errorf("typed: Allgatherv send length %d, want counts[%d] = %d", len(send), r, counts[r])
	}
	if err := c.Allgatherv(sraw, 0, len(send), sd, rraw, 0, counts, displs, rd); err != nil {
		return err
	}
	if unbox != nil {
		return unbox()
	}
	return nil
}

// Scatter distributes root's send slice over the members (MPI_Scatter):
// member r receives send[r*len(recv):]. send needs length
// Size()*len(recv) at root and is ignored elsewhere.
func Scatter[T any](c Comm, send, recv []T, root int) error {
	sraw, sd, _ := view(send)
	rraw, rd, unbox := view(recv)
	if err := c.Scatter(sraw, 0, len(recv), sd, rraw, 0, len(recv), rd, root); err != nil {
		return err
	}
	if unbox != nil {
		return unbox()
	}
	return nil
}

// Iscatter starts a nonblocking scatter (MPI_Iscatter).
func Iscatter[T any](c Comm, send, recv []T, root int) (*Request[T], error) {
	sraw, sd, _ := view(send)
	rraw, rd, unbox := view(recv)
	cr, err := c.Iscatter(sraw, 0, len(recv), sd, rraw, 0, len(recv), rd, root)
	if err != nil {
		return nil, err
	}
	return &Request[T]{cr: cr, unbox: unbox}, nil
}

// Scatterv distributes varying-length blocks from root (MPI_Scatterv):
// root's send slice holds the blocks back-to-back in rank order (block
// r has counts[r] elements); member r receives block r into recv, whose
// length must equal counts[r]. send and counts are significant at root
// only.
func Scatterv[T any](c Comm, send []T, counts []int, recv []T, root int) error {
	sraw, sd, _ := view(send)
	rraw, rd, unbox := view(recv)
	var displs []int
	if c.Rank() == root {
		var total int
		displs, total = displsOf(counts)
		if len(send) != total {
			c.SkipColl() // stay tag-aligned with members whose call proceeds
			return fmt.Errorf("typed: Scatterv send length %d, want sum(counts) = %d", len(send), total)
		}
	}
	if err := c.Scatterv(sraw, 0, counts, displs, sd, rraw, 0, len(recv), rd, root); err != nil {
		return err
	}
	if unbox != nil {
		return unbox()
	}
	return nil
}

// Alltoall exchanges equal-size blocks between all pairs (MPI_Alltoall):
// send and recv both hold Size() blocks back-to-back; member j receives
// send block j. len(send) and len(recv) must be multiples of Size().
func Alltoall[T any](c Comm, send, recv []T) error {
	if err := checkBlocks(c, len(send), len(recv)); err != nil {
		c.SkipColl() // stay tag-aligned with members whose call proceeds
		return err
	}
	sraw, sd, _ := view(send)
	rraw, rd, unbox := view(recv)
	if err := c.Alltoall(sraw, 0, len(send)/c.Size(), sd, rraw, 0, len(recv)/c.Size(), rd); err != nil {
		return err
	}
	if unbox != nil {
		return unbox()
	}
	return nil
}

// Ialltoall starts a nonblocking alltoall (MPI_Ialltoall).
func Ialltoall[T any](c Comm, send, recv []T) (*Request[T], error) {
	if err := checkBlocks(c, len(send), len(recv)); err != nil {
		c.SkipColl() // stay tag-aligned with members whose call proceeds
		return nil, err
	}
	sraw, sd, _ := view(send)
	rraw, rd, unbox := view(recv)
	cr, err := c.Ialltoall(sraw, 0, len(send)/c.Size(), sd, rraw, 0, len(recv)/c.Size(), rd)
	if err != nil {
		return nil, err
	}
	return &Request[T]{cr: cr, unbox: unbox}, nil
}

// checkBlocks rejects alltoall buffers that do not divide evenly into
// Size() blocks — integer division would silently drop the trailing
// elements otherwise.
func checkBlocks(c Comm, nsend, nrecv int) error {
	if n := c.Size(); nsend%n != 0 || nrecv%n != 0 {
		return fmt.Errorf("typed: alltoall buffer lengths %d/%d are not multiples of the communicator size %d",
			nsend, nrecv, n)
	}
	return nil
}

// Alltoallv exchanges varying-size blocks between all pairs
// (MPI_Alltoallv): send holds the outgoing blocks back-to-back (block j,
// bound for member j, has sendcounts[j] elements) and recv receives the
// incoming blocks back-to-back (block j, from member j, has
// recvcounts[j] elements). Every pair must agree: my sendcounts[j]
// equals member j's recvcounts[my rank].
func Alltoallv[T any](c Comm, send []T, sendcounts []int, recv []T, recvcounts []int) error {
	sraw, sd, _ := view(send)
	rraw, rd, unbox := view(recv)
	sdispls, stotal := displsOf(sendcounts)
	rdispls, rtotal := displsOf(recvcounts)
	if len(send) != stotal || len(recv) != rtotal {
		c.SkipColl() // stay tag-aligned with members whose call proceeds
		return fmt.Errorf("typed: Alltoallv buffer lengths %d/%d, want sum(counts) = %d/%d",
			len(send), len(recv), stotal, rtotal)
	}
	if err := c.Alltoallv(sraw, 0, sendcounts, sdispls, sd, rraw, 0, recvcounts, rdispls, rd); err != nil {
		return err
	}
	if unbox != nil {
		return unbox()
	}
	return nil
}

// displsOf derives back-to-back displacements from per-rank counts.
func displsOf(counts []int) ([]int, int) {
	displs := make([]int, len(counts))
	total := 0
	for i, n := range counts {
		displs[i] = total
		total += n
	}
	return displs, total
}

// Reduce folds every member's send slice elementwise with op, leaving
// the result in recv at root (MPI_Reduce). recv may be nil elsewhere.
func Reduce[T Primitive](c Comm, send, recv []T, op Op[T], root int) error {
	return c.Reduce(send, 0, recv, 0, len(send), TypeOf[T](), op.op, root)
}

// Ireduce starts a nonblocking reduction (MPI_Ireduce).
func Ireduce[T Primitive](c Comm, send, recv []T, op Op[T], root int) (*Request[T], error) {
	cr, err := c.Ireduce(send, 0, recv, 0, len(send), TypeOf[T](), op.op, root)
	if err != nil {
		return nil, err
	}
	return &Request[T]{cr: cr}, nil
}

// ReduceOne folds a single value with op; the reduced value is returned
// at root (other members receive their own contribution back).
func ReduceOne[T Primitive](c Comm, v T, op Op[T], root int) (T, error) {
	out := []T{v}
	err := Reduce(c, []T{v}, out, op, root)
	return out[0], err
}

// Allreduce folds every member's send slice elementwise with op,
// leaving the result in recv on every member (MPI_Allreduce).
func Allreduce[T Primitive](c Comm, send, recv []T, op Op[T]) error {
	return c.Allreduce(send, 0, recv, 0, len(send), TypeOf[T](), op.op)
}

// Iallreduce starts a nonblocking all-reduction (MPI_Iallreduce): the
// canonical communication/computation overlap primitive — start it,
// compute, then Wait (or WaitCtx) before reading recv.
func Iallreduce[T Primitive](c Comm, send, recv []T, op Op[T]) (*Request[T], error) {
	cr, err := c.Iallreduce(send, 0, recv, 0, len(send), TypeOf[T](), op.op)
	if err != nil {
		return nil, err
	}
	return &Request[T]{cr: cr}, nil
}

// AllreduceOne folds a single value with op and returns the reduced
// value on every member.
func AllreduceOne[T Primitive](c Comm, v T, op Op[T]) (T, error) {
	out := []T{v}
	err := Allreduce(c, []T{v}, out, op)
	return out[0], err
}

// Scan computes the inclusive prefix reduction in rank order (MPI_Scan):
// member r receives op over the contributions of ranks 0..r.
func Scan[T Primitive](c Comm, send, recv []T, op Op[T]) error {
	return c.Scan(send, 0, recv, 0, len(send), TypeOf[T](), op.op)
}

// Iscan starts a nonblocking inclusive prefix reduction (MPI_Iscan).
func Iscan[T Primitive](c Comm, send, recv []T, op Op[T]) (*Request[T], error) {
	cr, err := c.Iscan(send, 0, recv, 0, len(send), TypeOf[T](), op.op)
	if err != nil {
		return nil, err
	}
	return &Request[T]{cr: cr}, nil
}

// Exscan computes the exclusive prefix reduction in rank order
// (MPI_Exscan): member r receives op over ranks 0..r-1; rank 0's recv
// is untouched.
func Exscan[T Primitive](c Comm, send, recv []T, op Op[T]) error {
	return c.Exscan(send, 0, recv, 0, len(send), TypeOf[T](), op.op)
}

// Iexscan starts a nonblocking exclusive prefix reduction
// (MPI_Iexscan).
func Iexscan[T Primitive](c Comm, send, recv []T, op Op[T]) (*Request[T], error) {
	cr, err := c.Iexscan(send, 0, recv, 0, len(send), TypeOf[T](), op.op)
	if err != nil {
		return nil, err
	}
	return &Request[T]{cr: cr}, nil
}
