package typed

import "gompi/mpi"

// Typed collectives. Counts are taken from slice lengths, so the
// classic API's uniform-contribution rule becomes a length rule: every
// member passes the same send length to Gather/Allgather, the same recv
// length to Scatter, and the same count to the reductions. Receive
// buffers that a call does not touch on this rank (recv at a non-root,
// Gather's recvbuf away from root) may be nil.

// Bcast broadcasts root's buffer to every member (MPI_Bcast). All
// members pass a buffer of the same length.
func Bcast[T any](c *mpi.Intracomm, buf []T, root int) error {
	raw, d, unbox := view(buf)
	if err := c.Bcast(raw, 0, len(buf), d, root); err != nil {
		return err
	}
	if unbox != nil {
		return unbox()
	}
	return nil
}

// BcastOne broadcasts a single value from root, returning the value on
// every member.
func BcastOne[T any](c *mpi.Intracomm, v T, root int) (T, error) {
	buf := []T{v}
	err := Bcast(c, buf, root)
	return buf[0], err
}

// Gather collects every member's send slice at root (MPI_Gather):
// member r's contribution lands at recv[r*len(send):]. recv needs
// length Size()*len(send) at root and is ignored elsewhere.
func Gather[T any](c *mpi.Intracomm, send, recv []T, root int) error {
	sraw, sd, _ := view(send)
	rraw, rd, unbox := view(recv)
	if err := c.Gather(sraw, 0, len(send), sd, rraw, 0, len(send), rd, root); err != nil {
		return err
	}
	if unbox != nil && c.Rank() == root {
		return unbox()
	}
	return nil
}

// Allgather is Gather with the result delivered to every member
// (MPI_Allgather). recv needs length Size()*len(send) everywhere.
func Allgather[T any](c *mpi.Intracomm, send, recv []T) error {
	sraw, sd, _ := view(send)
	rraw, rd, unbox := view(recv)
	if err := c.Allgather(sraw, 0, len(send), sd, rraw, 0, len(send), rd); err != nil {
		return err
	}
	if unbox != nil {
		return unbox()
	}
	return nil
}

// Scatter distributes root's send slice over the members (MPI_Scatter):
// member r receives send[r*len(recv):]. send needs length
// Size()*len(recv) at root and is ignored elsewhere.
func Scatter[T any](c *mpi.Intracomm, send, recv []T, root int) error {
	sraw, sd, _ := view(send)
	rraw, rd, unbox := view(recv)
	if err := c.Scatter(sraw, 0, len(recv), sd, rraw, 0, len(recv), rd, root); err != nil {
		return err
	}
	if unbox != nil {
		return unbox()
	}
	return nil
}

// Reduce folds every member's send slice elementwise with op, leaving
// the result in recv at root (MPI_Reduce). recv may be nil elsewhere.
func Reduce[T Primitive](c *mpi.Intracomm, send, recv []T, op Op[T], root int) error {
	return c.Reduce(send, 0, recv, 0, len(send), TypeOf[T](), op.op, root)
}

// ReduceOne folds a single value with op; the reduced value is returned
// at root (other members receive their own contribution back).
func ReduceOne[T Primitive](c *mpi.Intracomm, v T, op Op[T], root int) (T, error) {
	out := []T{v}
	err := Reduce(c, []T{v}, out, op, root)
	return out[0], err
}

// Allreduce folds every member's send slice elementwise with op,
// leaving the result in recv on every member (MPI_Allreduce).
func Allreduce[T Primitive](c *mpi.Intracomm, send, recv []T, op Op[T]) error {
	return c.Allreduce(send, 0, recv, 0, len(send), TypeOf[T](), op.op)
}

// AllreduceOne folds a single value with op and returns the reduced
// value on every member.
func AllreduceOne[T Primitive](c *mpi.Intracomm, v T, op Op[T]) (T, error) {
	out := []T{v}
	err := Allreduce(c, []T{v}, out, op)
	return out[0], err
}

// Scan computes the inclusive prefix reduction in rank order (MPI_Scan):
// member r receives op over the contributions of ranks 0..r.
func Scan[T Primitive](c *mpi.Intracomm, send, recv []T, op Op[T]) error {
	return c.Scan(send, 0, recv, 0, len(send), TypeOf[T](), op.op)
}

// Exscan computes the exclusive prefix reduction in rank order
// (MPI_Exscan): member r receives op over ranks 0..r-1; rank 0's recv
// is untouched.
func Exscan[T Primitive](c *mpi.Intracomm, send, recv []T, op Op[T]) error {
	return c.Exscan(send, 0, recv, 0, len(send), TypeOf[T](), op.op)
}
