package typed

import (
	"unsafe"

	"gompi/mpi"
)

// Typed MINLOC/MAXLOC: the classic API reduces (value, index) pairs
// laid out as consecutive elements of a pair datatype (MPI.INT2,
// MPI.DOUBLE2, …), with the op/datatype agreement checked at runtime.
// Pair[T] and the pair entry points move that agreement to compile
// time: MinLoc[T]()/MaxLoc[T]() only instantiate against []Pair[T].

// PairElem admits the element types that have a predefined pair
// datatype (SHORT2/INT2/LONG2/FLOAT2/DOUBLE2). The index travels in the
// same class as the value, following the classic pair layout.
type PairElem interface {
	int16 | int32 | int64 | float32 | float64
}

// Pair is a value/index element for MINLOC/MAXLOC reductions. Its
// memory layout is exactly the classic flattened pair — two consecutive
// elements of T — so pair slices travel on the same wire format as the
// classic pair datatypes and interoperate with classic ranks.
type Pair[T PairElem] struct {
	Value T
	Index T
}

// PairOf builds a Pair from a value and an integer index.
func PairOf[T PairElem](v T, index int) Pair[T] {
	return Pair[T]{Value: v, Index: T(index)}
}

// MinLoc returns the MINLOC operation for Pair[T]: the elementwise
// minimum value, carrying the index of the member that contributed it
// (lowest index on ties, per the standard).
func MinLoc[T PairElem]() Op[Pair[T]] { return Op[Pair[T]]{mpi.MINLOC} }

// MaxLoc returns the MAXLOC operation for Pair[T] (see MinLoc).
func MaxLoc[T PairElem]() Op[Pair[T]] { return Op[Pair[T]]{mpi.MAXLOC} }

// pairType maps T to its predefined pair datatype.
func pairType[T PairElem]() *mpi.Datatype {
	var z T
	switch any(z).(type) {
	case int16:
		return mpi.SHORT2
	case int32:
		return mpi.INT2
	case int64:
		return mpi.LONG2
	case float32:
		return mpi.FLOAT2
	default:
		return mpi.DOUBLE2
	}
}

// flattenPairs reinterprets a pair slice as the classic flattened
// (value, index, value, index, …) dense slice. Pair[T] is two
// consecutive fields of one type, so the layouts coincide and no copy
// is needed.
func flattenPairs[T PairElem](ps []Pair[T]) []T {
	if len(ps) == 0 {
		return nil
	}
	return unsafe.Slice(&ps[0].Value, 2*len(ps))
}

// ReducePairs folds every member's pair slice elementwise with a
// MINLOC/MAXLOC op, leaving the result in recv at root (MPI_Reduce over
// a pair datatype). recv may be nil elsewhere.
func ReducePairs[T PairElem](c Comm, send, recv []Pair[T], op Op[Pair[T]], root int) error {
	return c.Reduce(flattenPairs(send), 0, flattenPairs(recv), 0, len(send), pairType[T](), op.op, root)
}

// AllreducePairs folds every member's pair slice elementwise with a
// MINLOC/MAXLOC op, leaving the result in recv on every member
// (MPI_Allreduce over a pair datatype).
func AllreducePairs[T PairElem](c Comm, send, recv []Pair[T], op Op[Pair[T]]) error {
	return c.Allreduce(flattenPairs(send), 0, flattenPairs(recv), 0, len(send), pairType[T](), op.op)
}

// AllreducePairOne reduces a single (value, index) pair with op and
// returns the winning pair on every member — "which member has the
// extreme value, and what is it" in one call.
func AllreducePairOne[T PairElem](c Comm, v Pair[T], op Op[Pair[T]]) (Pair[T], error) {
	send := []Pair[T]{v}
	recv := make([]Pair[T], 1)
	err := AllreducePairs(c, send, recv, op)
	return recv[0], err
}
