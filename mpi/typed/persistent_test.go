package typed_test

import (
	"testing"

	"gompi/mpi"
	"gompi/mpi/typed"
)

// TestTypedPersistentPingPong: typed persistent send/recv over an
// Obj-routed struct type. Each Start must re-box the send buffer's
// current contents and each completion must unbox into the fixed
// receive buffer — once per activation, not once per handle.
func TestTypedPersistentPingPong(t *testing.T) {
	type pingPart struct {
		ID int64
		X  float64
	}
	const rounds = 25
	run(t, 2, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank := w.Rank()
		peer := 1 - rank

		out := make([]pingPart, 3)
		in := make([]pingPart, 3)
		send, err := typed.SendInit(w, out, peer, 11)
		if err != nil {
			return err
		}
		defer send.Free()
		recv, err := typed.RecvInit(w, in, peer, 11)
		if err != nil {
			return err
		}
		defer recv.Free()

		for r := 0; r < rounds; r++ {
			for i := range out {
				out[i] = pingPart{ID: int64(rank*1000 + r*10 + i), X: float64(r) + 0.25}
			}
			if err := recv.Start(); err != nil {
				return err
			}
			if err := send.Start(); err != nil {
				return err
			}
			if _, err := send.Wait(); err != nil {
				return err
			}
			if _, err := recv.Wait(); err != nil {
				return err
			}
			for i, p := range in {
				want := pingPart{ID: int64(peer*1000 + r*10 + i), X: float64(r) + 0.25}
				if p != want {
					t.Errorf("rank %d round %d: in[%d] = %+v, want %+v", rank, r, i, p, want)
				}
			}
		}
		return nil
	})
}

// TestTypedPersistentAllreduce: typed persistent all-reduction cycled
// with changing operands; native path, no boxing.
func TestTypedPersistentAllreduce(t *testing.T) {
	const rounds = 30
	run(t, 3, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank, size := w.Rank(), w.Size()

		send := make([]float64, 2)
		recv := make([]float64, 2)
		red, err := typed.AllreduceInit(w, send, recv, typed.Sum[float64]())
		if err != nil {
			return err
		}
		defer red.Free()

		for r := 0; r < rounds; r++ {
			send[0] = float64(rank + r)
			send[1] = float64(rank * r)
			if err := red.Start(); err != nil {
				return err
			}
			if _, err := red.Wait(); err != nil {
				return err
			}
			var want0, want1 float64
			for p := 0; p < size; p++ {
				want0 += float64(p + r)
				want1 += float64(p * r)
			}
			if recv[0] != want0 || recv[1] != want1 {
				t.Errorf("rank %d round %d: got (%v, %v), want (%v, %v)",
					rank, r, recv[0], recv[1], want0, want1)
			}
		}
		return nil
	})
}

// TestTypedPersistentBcast: typed persistent broadcast over a named
// primitive (reinterpreted in place, zero-copy) and a barrier init.
func TestTypedPersistentBcast(t *testing.T) {
	type degreeC float64
	const rounds = 10
	run(t, 3, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank := w.Rank()

		buf := make([]degreeC, 4)
		bc, err := typed.BcastInit(w, buf, 1)
		if err != nil {
			return err
		}
		defer bc.Free()
		bar, err := typed.BarrierInit(w)
		if err != nil {
			return err
		}
		defer bar.Free()

		for r := 0; r < rounds; r++ {
			if rank == 1 {
				for i := range buf {
					buf[i] = degreeC(r*100 + i)
				}
			} else {
				for i := range buf {
					buf[i] = -1
				}
			}
			if err := bc.Start(); err != nil {
				return err
			}
			if _, err := bc.Wait(); err != nil {
				return err
			}
			for i, v := range buf {
				if want := degreeC(r*100 + i); v != want {
					t.Errorf("rank %d round %d: buf[%d] = %v, want %v", rank, r, i, v, want)
				}
			}
			if err := bar.Start(); err != nil {
				return err
			}
			if _, err := bar.Wait(); err != nil {
				return err
			}
		}
		return nil
	})
}
