package typed_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"gompi/mpi"
	"gompi/mpi/typed"
)

// TestTypedVVariantsRoundTrip: Gatherv → Scatterv is the identity on
// varying per-rank sizes, and Allgatherv/Alltoallv deliver the same
// triangle everywhere.
func TestTypedVVariantsRoundTrip(t *testing.T) {
	err := mpi.Run(4, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank, size := w.Rank(), w.Size()
		counts := make([]int, size)
		total := 0
		for r := range counts {
			counts[r] = r + 1
			total += r + 1
		}

		send := make([]float64, rank+1)
		for i := range send {
			send[i] = float64(rank) + float64(i)/10
		}

		// Gatherv at root 1.
		var gat []float64
		if rank == 1 {
			gat = make([]float64, total)
		}
		if err := typed.Gatherv(w, send, gat, counts, 1); err != nil {
			return err
		}
		if rank == 1 {
			at := 0
			for r := 0; r < size; r++ {
				for i := 0; i <= r; i++ {
					if gat[at] != float64(r)+float64(i)/10 {
						t.Errorf("Gatherv slot %d = %v", at, gat[at])
					}
					at++
				}
			}
		}

		// Scatterv the gathered triangle back out.
		back := make([]float64, rank+1)
		if err := typed.Scatterv(w, gat, counts, back, 1); err != nil {
			return err
		}
		for i := range back {
			if back[i] != send[i] {
				t.Errorf("rank %d: Scatterv slot %d = %v, want %v", rank, i, back[i], send[i])
			}
		}

		// Allgatherv: every member assembles the triangle.
		all := make([]float64, total)
		if err := typed.Allgatherv(w, send, all, counts); err != nil {
			return err
		}
		at := 0
		for r := 0; r < size; r++ {
			for i := 0; i <= r; i++ {
				if all[at] != float64(r)+float64(i)/10 {
					t.Errorf("rank %d: Allgatherv slot %d = %v", rank, at, all[at])
				}
				at++
			}
		}

		// Alltoallv: member r sends j+1 elements stamped (r, j) to j.
		scounts := make([]int, size)
		stotal := 0
		for j := range scounts {
			scounts[j] = j + 1
			stotal += j + 1
		}
		sbuf := make([]int32, 0, stotal)
		for j := 0; j < size; j++ {
			for i := 0; i <= j; i++ {
				sbuf = append(sbuf, int32(rank*100+j))
			}
		}
		rcounts := make([]int, size)
		rtotal := 0
		for j := range rcounts {
			rcounts[j] = rank + 1
			rtotal += rank + 1
		}
		rbuf := make([]int32, rtotal)
		if err := typed.Alltoallv(w, sbuf, scounts, rbuf, rcounts); err != nil {
			return err
		}
		at = 0
		for j := 0; j < size; j++ {
			for i := 0; i <= rank; i++ {
				if rbuf[at] != int32(j*100+rank) {
					t.Errorf("rank %d: Alltoallv slot %d = %d", rank, at, rbuf[at])
				}
				at++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTypedVVariantsObjects: the v-variants carry Obj-routed element
// types (structs) too, unboxing at the right ranks.
func TestTypedVVariantsObjects(t *testing.T) {
	type tag struct{ Who, Seq int }
	err := mpi.Run(3, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank, size := w.Rank(), w.Size()
		counts := make([]int, size)
		total := 0
		for r := range counts {
			counts[r] = r + 1
			total += r + 1
		}
		send := make([]tag, rank+1)
		for i := range send {
			send[i] = tag{Who: rank, Seq: i}
		}
		var gat []tag
		if rank == 0 {
			gat = make([]tag, total)
		}
		if err := typed.Gatherv(w, send, gat, counts, 0); err != nil {
			return err
		}
		if rank == 0 {
			at := 0
			for r := 0; r < size; r++ {
				for i := 0; i <= r; i++ {
					if gat[at] != (tag{Who: r, Seq: i}) {
						t.Errorf("object Gatherv slot %d = %+v", at, gat[at])
					}
					at++
				}
			}
		}
		all := make([]tag, total)
		if err := typed.Allgatherv(w, send, all, counts); err != nil {
			return err
		}
		at := 0
		for r := 0; r < size; r++ {
			for i := 0; i <= r; i++ {
				if all[at] != (tag{Who: r, Seq: i}) {
					t.Errorf("rank %d: object Allgatherv slot %d = %+v", rank, at, all[at])
				}
				at++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTypedPairMinMaxLoc: compile-time-safe MINLOC/MAXLOC over
// typed.Pair, including the minimum-index tie rule and classic-wire
// interop via the flattened layout.
func TestTypedPairMinMaxLoc(t *testing.T) {
	err := mpi.Run(4, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank := w.Rank()

		// Value peaks at rank 2.
		v := float64(10 - (rank-2)*(rank-2))
		got, err := typed.AllreducePairOne(w, typed.PairOf(v, rank), typed.MaxLoc[float64]())
		if err != nil {
			return err
		}
		if got.Value != 10 || got.Index != 2 {
			t.Errorf("rank %d: maxloc %+v, want {10 2}", rank, got)
		}

		// Tie: MPI picks the minimum index.
		tie, err := typed.AllreducePairOne(w, typed.PairOf(int32(7), rank), typed.MaxLoc[int32]())
		if err != nil {
			return err
		}
		if tie.Value != 7 || tie.Index != 0 {
			t.Errorf("rank %d: tie maxloc %+v", rank, tie)
		}

		// Slice form with MINLOC, reduced to a root.
		send := []typed.Pair[int64]{
			typed.PairOf(int64(rank+5), rank),
			typed.PairOf(int64(100-rank), rank),
		}
		var recv []typed.Pair[int64]
		if rank == 1 {
			recv = make([]typed.Pair[int64], 2)
		}
		if err := typed.ReducePairs(w, send, recv, typed.MinLoc[int64](), 1); err != nil {
			return err
		}
		if rank == 1 {
			if recv[0].Value != 5 || recv[0].Index != 0 {
				t.Errorf("minloc[0] %+v", recv[0])
			}
			if recv[1].Value != 97 || recv[1].Index != 3 {
				t.Errorf("minloc[1] %+v", recv[1])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTypedNonblockingCollectives: typed I* collectives overlap in
// flight and fill their buffers at completion, for native and
// Obj-routed element types.
func TestTypedNonblockingCollectives(t *testing.T) {
	type note struct{ Text string }
	err := mpi.Run(3, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank, size := w.Rank(), w.Size()

		sum := make([]int64, 1)
		rSum, err := typed.Iallreduce(w, []int64{int64(rank + 1)}, sum, typed.Sum[int64]())
		if err != nil {
			return err
		}
		all := make([]int32, size)
		rAll, err := typed.Iallgather(w, []int32{int32(rank * 2)}, all)
		if err != nil {
			return err
		}
		objs := make([]note, 1)
		if rank == 2 {
			objs[0] = note{Text: "typed ibcast"}
		}
		rObj, err := typed.Ibcast(w, objs, 2)
		if err != nil {
			return err
		}
		scan := make([]int32, 1)
		rScan, err := typed.Iscan(w, []int32{int32(rank + 1)}, scan, typed.Sum[int32]())
		if err != nil {
			return err
		}

		if _, err := rScan.Wait(); err != nil {
			return err
		}
		if _, err := rObj.Wait(); err != nil {
			return err
		}
		if _, err := rAll.Wait(); err != nil {
			return err
		}
		if _, err := rSum.Wait(); err != nil {
			return err
		}

		if want := int64(size * (size + 1) / 2); sum[0] != want {
			t.Errorf("rank %d: Iallreduce %d, want %d", rank, sum[0], want)
		}
		for r := range all {
			if all[r] != int32(r*2) {
				t.Errorf("rank %d: Iallgather slot %d = %d", rank, r, all[r])
			}
		}
		if objs[0].Text != "typed ibcast" {
			t.Errorf("rank %d: Ibcast object %+v", rank, objs[0])
		}
		if want := int32((rank + 1) * (rank + 2) / 2); scan[0] != want {
			t.Errorf("rank %d: Iscan %d, want %d", rank, scan[0], want)
		}

		// Rooted forms: Igather + Iscatter + Ireduce together.
		gat := make([]int64, size)
		rG, err := typed.Igather(w, []int64{int64(rank + 30)}, gat, 0)
		if err != nil {
			return err
		}
		var deal []int32
		if rank == 1 {
			deal = []int32{10, 11, 12}
		}
		mine := make([]int32, 1)
		rS, err := typed.Iscatter(w, deal, mine, 1)
		if err != nil {
			return err
		}
		red := make([]float64, 1)
		rR, err := typed.Ireduce(w, []float64{float64(rank)}, red, typed.Max[float64](), 0)
		if err != nil {
			return err
		}
		if _, err := rG.Wait(); err != nil {
			return err
		}
		if _, err := rS.Wait(); err != nil {
			return err
		}
		if _, err := rR.Wait(); err != nil {
			return err
		}
		if rank == 0 {
			for r := range gat {
				if gat[r] != int64(r+30) {
					t.Errorf("Igather slot %d = %d", r, gat[r])
				}
			}
			if red[0] != float64(size-1) {
				t.Errorf("Ireduce %v", red[0])
			}
		}
		if mine[0] != int32(10+rank) {
			t.Errorf("rank %d: Iscatter %d", rank, mine[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTypedCollectiveWaitCtx: WaitCtx on a typed collective request
// returns the context error promptly when a peer is absent, and the
// communicator recovers once the peer catches up.
func TestTypedCollectiveWaitCtx(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 1 {
			buf := []int64{-1}
			req, err := typed.Ibcast(w, buf, 0)
			if err != nil {
				return err
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			if _, err := req.WaitCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("typed WaitCtx: %v, want deadline exceeded", err)
			}
			if buf[0] != -1 {
				t.Errorf("cancelled typed Ibcast touched the buffer: %d", buf[0])
			}
		} else {
			time.Sleep(150 * time.Millisecond)
			if err := typed.Bcast(w, []int64{5}, 0); err != nil {
				return err
			}
		}
		got, err := typed.AllreduceOne(w, int32(w.Rank()+1), typed.Sum[int32]())
		if err != nil {
			return err
		}
		if got != 3 {
			t.Errorf("rank %d: allreduce after cancel %d, want 3", w.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTypedCollectivesOnCartcomm: the typed collectives are generic over
// the Comm interface — a Cartcomm (and any future collective-capable
// communicator) plugs in without new entry points.
func TestTypedCollectivesOnCartcomm(t *testing.T) {
	err := mpi.Run(4, func(env *mpi.Env) error {
		w := env.CommWorld()
		cart, err := w.CreateCart([]int{2, 2}, []bool{false, false}, false)
		if err != nil {
			return err
		}
		var c typed.Comm = cart // the interface assertion is the point
		sum, err := typed.AllreduceOne(c, int64(c.Rank()+1), typed.Sum[int64]())
		if err != nil {
			return err
		}
		if sum != 10 {
			t.Errorf("cart rank %d: allreduce %d, want 10", c.Rank(), sum)
		}
		if err := typed.Barrier(c); err != nil {
			return err
		}
		all := make([]int32, c.Size())
		if err := typed.Allgather(c, []int32{int32(c.Rank())}, all); err != nil {
			return err
		}
		for r := range all {
			if all[r] != int32(r) {
				t.Errorf("cart rank %d: allgather slot %d = %d", c.Rank(), r, all[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTypedVVariantLengthValidation: buffers that disagree with the
// counts are rejected up front with a typed-layer error, before any
// traffic starts. The probes run on COMM_SELF: a rejected typed call
// still consumes a collective instance (SkipColl), so erroneous calls
// made on one world rank only would violate the same-order rule.
func TestTypedVVariantLengthValidation(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		c := env.CommSelf()
		counts := []int{2}
		if err := typed.Gatherv(c, []float64{1, 2}, make([]float64, 5), counts, 0); err == nil {
			t.Error("Gatherv accepted a wrong-length recv at root")
		}
		if err := typed.Scatterv(c, make([]float64, 5), counts, make([]float64, 2), 0); err == nil {
			t.Error("Scatterv accepted a long send at root")
		}
		if err := typed.Allgatherv(c, make([]int32, 2), make([]int32, 5), counts); err == nil {
			t.Error("Allgatherv accepted a wrong-length recv")
		}
		if err := typed.Alltoallv(c, make([]int32, 3), []int{2}, make([]int32, 2), []int{2}); err == nil {
			t.Error("Alltoallv accepted a mismatched send")
		}
		return env.CommWorld().Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTypedValidationKeepsRanksAligned: a typed-layer rejection on one
// member (root's bad recv length) while the other member's matching
// call proceeds must not desynchronize the communicator — the rejected
// call consumes its collective instance via SkipColl.
func TestTypedValidationKeepsRanksAligned(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		counts := []int{1, 1}
		send := []int32{int32(w.Rank())}
		if w.Rank() == 0 {
			// Root: recv too short for sum(counts) → typed-layer error.
			if err := typed.Gatherv(w, send, make([]int32, 1), counts, 0); err == nil {
				t.Error("Gatherv accepted a short recv at root")
			}
		} else {
			// Non-root's matching call is valid and completes (its
			// contribution travels eagerly).
			if err := typed.Gatherv(w, send, nil, counts, 0); err != nil {
				return err
			}
		}
		// The next collectives still match; guard against regression
		// with a deadline instead of hanging the suite.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := w.BarrierCtx(ctx); err != nil {
			t.Errorf("barrier after typed-layer rejection: %v", err)
			return nil
		}
		got, err := typed.AllreduceOne(w, int64(w.Rank()+1), typed.Sum[int64]())
		if err != nil {
			return err
		}
		if got != 3 {
			t.Errorf("allreduce after typed-layer rejection: %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTypedAlltoallRejectsRaggedBuffers: a buffer that does not divide
// into Size() blocks must error instead of silently dropping the tail.
func TestTypedAlltoallRejectsRaggedBuffers(t *testing.T) {
	err := mpi.Run(4, func(env *mpi.Env) error {
		w := env.CommWorld()
		send := make([]int32, 10) // not a multiple of 4
		recv := make([]int32, 10)
		if err := typed.Alltoall(w, send, recv); err == nil {
			t.Error("Alltoall accepted a ragged send buffer")
		}
		if _, err := typed.Ialltoall(w, send, recv); err == nil {
			t.Error("Ialltoall accepted a ragged send buffer")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTypedAlltoall: the typed block alltoall transposes stamps.
func TestTypedAlltoall(t *testing.T) {
	err := mpi.Run(3, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank, size := w.Rank(), w.Size()
		send := make([]int32, 2*size)
		for j := 0; j < size; j++ {
			send[2*j] = int32(rank*10 + j)
			send[2*j+1] = int32(-(rank*10 + j))
		}
		recv := make([]int32, 2*size)
		if err := typed.Alltoall(w, send, recv); err != nil {
			return err
		}
		for j := 0; j < size; j++ {
			if recv[2*j] != int32(j*10+rank) || recv[2*j+1] != int32(-(j*10+rank)) {
				t.Errorf("rank %d: alltoall block %d = [%d %d]", rank, j, recv[2*j], recv[2*j+1])
			}
		}
		// And the nonblocking form.
		recv2 := make([]int32, 2*size)
		req, err := typed.Ialltoall(w, send, recv2)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		for j := range recv {
			if recv2[j] != recv[j] {
				t.Errorf("rank %d: Ialltoall slot %d = %d, want %d", rank, j, recv2[j], recv[j])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
