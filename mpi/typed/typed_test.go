package typed_test

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"gompi/mpi"
	"gompi/mpi/typed"
)

// run fails the test if any rank errors.
func run(t *testing.T, np int, fn func(*mpi.Env) error) {
	t.Helper()
	if err := mpi.Run(np, fn); err != nil {
		t.Fatal(err)
	}
}

func TestTypeOfInference(t *testing.T) {
	cases := []struct {
		got, want *mpi.Datatype
	}{
		{typed.TypeOf[byte](), mpi.BYTE},
		{typed.TypeOf[bool](), mpi.BOOLEAN},
		{typed.TypeOf[int16](), mpi.SHORT},
		{typed.TypeOf[int32](), mpi.INT},
		{typed.TypeOf[rune](), mpi.INT},
		{typed.TypeOf[int64](), mpi.LONG},
		{typed.TypeOf[float32](), mpi.FLOAT},
		{typed.TypeOf[float64](), mpi.DOUBLE},
		{typed.TypeOf[struct{ X, Y float64 }](), mpi.OBJECT},
		{typed.TypeOf[*int32](), mpi.OBJECT},
		{typed.TypeOf[string](), mpi.OBJECT},
	}
	for i, c := range cases {
		if c.got != c.want {
			t.Errorf("case %d: inferred %s, want %s", i, c.got.Name(), c.want.Name())
		}
	}
	// Named primitives share their underlying type's memory layout and
	// stay on its wire format: the slice is reinterpreted in place, so
	// `type celsius float64` travels as DOUBLE, not OBJECT/gob.
	if typed.TypeOf[celsius]() != mpi.DOUBLE {
		t.Errorf("named float64 inferred as %s, want DOUBLE", typed.TypeOf[celsius]().Name())
	}
	// The registry caches: repeated inference returns the same handle.
	if typed.TypeOf[float64]() != typed.TypeOf[float64]() {
		t.Error("TypeOf not cached")
	}
}

func TestSendRecvPrimitives(t *testing.T) {
	run(t, 2, func(env *mpi.Env) error {
		w := env.CommWorld()
		switch w.Rank() {
		case 0:
			if err := typed.Send(w, []float64{1.5, -2.5, 3.25}, 1, 1); err != nil {
				return err
			}
			if err := typed.Send(w, []int32{7, 8, 9, 10}, 1, 2); err != nil {
				return err
			}
			if err := typed.Send(w, []bool{true, false, true}, 1, 3); err != nil {
				return err
			}
			return typed.SendOne(w, int64(42), 1, 4)
		case 1:
			f := make([]float64, 3)
			st, err := typed.Recv(w, f, 0, 1)
			if err != nil {
				return err
			}
			if n := typed.Count[float64](st); n != 3 {
				t.Errorf("float64 count %d, want 3", n)
			}
			if !reflect.DeepEqual(f, []float64{1.5, -2.5, 3.25}) {
				t.Errorf("float64 payload %v", f)
			}
			// Receive into a sub-slice: slicing replaces offset/count.
			i := make([]int32, 8)
			if _, err := typed.Recv(w, i[2:6], 0, 2); err != nil {
				return err
			}
			if !reflect.DeepEqual(i, []int32{0, 0, 7, 8, 9, 10, 0, 0}) {
				t.Errorf("int32 sub-slice payload %v", i)
			}
			b := make([]bool, 3)
			if _, err := typed.Recv(w, b, 0, 3); err != nil {
				return err
			}
			if !reflect.DeepEqual(b, []bool{true, false, true}) {
				t.Errorf("bool payload %v", b)
			}
			v, _, err := typed.RecvOne[int64](w, 0, 4)
			if err != nil {
				return err
			}
			if v != 42 {
				t.Errorf("RecvOne got %d, want 42", v)
			}
		}
		return nil
	})
}

func TestZeroLengthSlices(t *testing.T) {
	run(t, 2, func(env *mpi.Env) error {
		w := env.CommWorld()
		switch w.Rank() {
		case 0:
			if err := typed.Send(w, []float64{}, 1, 5); err != nil {
				return err
			}
			return typed.Send(w, []float64(nil), 1, 6)
		case 1:
			st, err := typed.Recv(w, []float64{}, 0, 5)
			if err != nil {
				return err
			}
			if n := typed.Count[float64](st); n != 0 {
				t.Errorf("zero-length count %d, want 0", n)
			}
			if _, err := typed.Recv(w, []float64(nil), 0, 6); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestWildcards(t *testing.T) {
	run(t, 3, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() != 0 {
			return typed.SendOne(w, int32(w.Rank()), 0, 40+w.Rank())
		}
		seen := map[int32]bool{}
		for i := 0; i < 2; i++ {
			v, st, err := typed.RecvOne[int32](w, mpi.AnySource, mpi.AnyTag)
			if err != nil {
				return err
			}
			if int(v) != st.Source || st.Tag != 40+st.Source {
				t.Errorf("wildcard recv: value %d, source %d, tag %d", v, st.Source, st.Tag)
			}
			seen[v] = true
		}
		if !seen[1] || !seen[2] {
			t.Errorf("wildcard receives saw %v, want both senders", seen)
		}
		return nil
	})
}

type particle struct {
	ID   int64
	Pos  [3]float64
	Name string
}

type celsius float64

func TestStructRoundTrip(t *testing.T) {
	want := []particle{
		{ID: 1, Pos: [3]float64{0.5, 1.5, 2.5}, Name: "alpha"},
		{ID: 2, Pos: [3]float64{-1, 0, 1}, Name: "beta"},
	}
	run(t, 2, func(env *mpi.Env) error {
		w := env.CommWorld()
		switch w.Rank() {
		case 0:
			return typed.Send(w, want, 1, 7)
		case 1:
			got := make([]particle, 2)
			st, err := typed.Recv(w, got, 0, 7)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("struct round-trip %+v, want %+v", got, want)
			}
			if n := typed.Count[particle](st); n != 2 {
				t.Errorf("struct count %d, want 2", n)
			}
		}
		return nil
	})
}

func TestNamedPrimitiveRoundTrip(t *testing.T) {
	run(t, 2, func(env *mpi.Env) error {
		w := env.CommWorld()
		switch w.Rank() {
		case 0:
			return typed.Send(w, []celsius{36.6, -40}, 1, 8)
		case 1:
			got := make([]celsius, 2)
			if _, err := typed.Recv(w, got, 0, 8); err != nil {
				return err
			}
			if got[0] != 36.6 || got[1] != -40 {
				t.Errorf("named-primitive round-trip %v", got)
			}
		}
		return nil
	})
}

func TestRecvCtxCancel(t *testing.T) {
	run(t, 2, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() != 0 {
			return nil // never sends: rank 0's receive must block
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		buf := make([]int32, 1)
		start := time.Now()
		st, err := typed.RecvCtx(ctx, w, buf, 1, 99)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("RecvCtx error %v, want DeadlineExceeded", err)
		}
		if st == nil || !st.TestCancelled() {
			t.Errorf("RecvCtx status %+v, want cancelled", st)
		}
		if time.Since(start) > 5*time.Second {
			t.Error("RecvCtx did not return promptly on cancellation")
		}
		return nil
	})
}

func TestWaitCtxDeliversWhenMessageArrives(t *testing.T) {
	run(t, 2, func(env *mpi.Env) error {
		w := env.CommWorld()
		switch w.Rank() {
		case 0:
			time.Sleep(20 * time.Millisecond)
			return typed.Send(w, []int64{5}, 1, 11)
		case 1:
			req, err := typed.Irecv(w, make([]int64, 1), 0, 11)
			if err != nil {
				return err
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			st, err := typed.WaitCtx(ctx, req)
			if err != nil {
				return err
			}
			if st.TestCancelled() {
				t.Error("WaitCtx cancelled a matched receive")
			}
		}
		return nil
	})
}

func TestIsendIrecv(t *testing.T) {
	run(t, 2, func(env *mpi.Env) error {
		w := env.CommWorld()
		switch w.Rank() {
		case 0:
			req, err := typed.Isend(w, []float32{1, 2, 3}, 1, 12)
			if err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		case 1:
			buf := make([]float32, 3)
			req, err := typed.Irecv(w, buf, 0, 12)
			if err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			if !reflect.DeepEqual(buf, []float32{1, 2, 3}) {
				t.Errorf("Irecv payload %v", buf)
			}
		}
		return nil
	})
}

// Boxed (OBJECT-routed) buffers keep non-blocking semantics: the typed
// request unboxes into the caller's slice at Wait time.
func TestIrecvBoxed(t *testing.T) {
	run(t, 2, func(env *mpi.Env) error {
		w := env.CommWorld()
		switch w.Rank() {
		case 0:
			return typed.Send(w, []particle{{ID: 9, Name: "gamma"}}, 1, 13)
		case 1:
			buf := make([]particle, 1)
			req, err := typed.Irecv(w, buf, 0, 13)
			if err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			if buf[0].ID != 9 || buf[0].Name != "gamma" {
				t.Errorf("boxed Irecv payload %+v", buf[0])
			}
		}
		return nil
	})
}

func TestCollectives(t *testing.T) {
	const np = 4
	run(t, np, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank := w.Rank()

		// Bcast.
		buf := make([]int32, 3)
		if rank == 2 {
			copy(buf, []int32{10, 20, 30})
		}
		if err := typed.Bcast(w, buf, 2); err != nil {
			return err
		}
		if !reflect.DeepEqual(buf, []int32{10, 20, 30}) {
			t.Errorf("rank %d: Bcast %v", rank, buf)
		}
		v, err := typed.BcastOne(w, float64(rank)*1.5, 1)
		if err != nil {
			return err
		}
		if v != 1.5 {
			t.Errorf("rank %d: BcastOne %v, want 1.5", rank, v)
		}

		// Gather / Allgather.
		mine := []int64{int64(rank), int64(rank * rank)}
		var all []int64
		if rank == 0 {
			all = make([]int64, 2*np)
		}
		if err := typed.Gather(w, mine, all, 0); err != nil {
			return err
		}
		if rank == 0 {
			want := []int64{0, 0, 1, 1, 2, 4, 3, 9}
			if !reflect.DeepEqual(all, want) {
				t.Errorf("Gather %v, want %v", all, want)
			}
		}
		every := make([]int64, 2*np)
		if err := typed.Allgather(w, mine, every); err != nil {
			return err
		}
		if !reflect.DeepEqual(every, []int64{0, 0, 1, 1, 2, 4, 3, 9}) {
			t.Errorf("rank %d: Allgather %v", rank, every)
		}

		// Scatter.
		var parts []float64
		if rank == 0 {
			parts = []float64{0, 1, 2, 3, 4, 5, 6, 7}
		}
		got := make([]float64, 2)
		if err := typed.Scatter(w, parts, got, 0); err != nil {
			return err
		}
		if got[0] != float64(2*rank) || got[1] != float64(2*rank+1) {
			t.Errorf("rank %d: Scatter %v", rank, got)
		}
		return nil
	})
}

func TestBoxedCollectives(t *testing.T) {
	const np = 3
	run(t, np, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank := w.Rank()

		// Struct broadcast.
		buf := make([]particle, 1)
		if rank == 0 {
			buf[0] = particle{ID: 77, Name: "root"}
		}
		if err := typed.Bcast(w, buf, 0); err != nil {
			return err
		}
		if buf[0].ID != 77 || buf[0].Name != "root" {
			t.Errorf("rank %d: boxed Bcast %+v", rank, buf[0])
		}

		// Struct gather.
		mine := []particle{{ID: int64(rank), Name: "p"}}
		var all []particle
		if rank == 1 {
			all = make([]particle, np)
		}
		if err := typed.Gather(w, mine, all, 1); err != nil {
			return err
		}
		if rank == 1 {
			for r, p := range all {
				if p.ID != int64(r) {
					t.Errorf("boxed Gather[%d] = %+v", r, p)
				}
			}
		}
		return nil
	})
}

func TestReductions(t *testing.T) {
	const np = 4
	run(t, np, func(env *mpi.Env) error {
		w := env.CommWorld()
		rank := w.Rank()

		sum, err := typed.ReduceOne(w, float64(rank+1), typed.Sum[float64](), 0)
		if err != nil {
			return err
		}
		if rank == 0 && sum != 10 {
			t.Errorf("ReduceOne sum %v, want 10", sum)
		}

		maxv, err := typed.AllreduceOne(w, int32(rank*3), typed.Max[int32]())
		if err != nil {
			return err
		}
		if maxv != 9 {
			t.Errorf("rank %d: AllreduceOne max %d, want 9", rank, maxv)
		}

		// Slice reduction with a logical op on bool.
		land := make([]bool, 2)
		if err := typed.Allreduce(w, []bool{true, rank != 2}, land, typed.LAnd[bool]()); err != nil {
			return err
		}
		if !land[0] || land[1] {
			t.Errorf("rank %d: LAnd %v, want [true false]", rank, land)
		}

		// Bitwise on integers.
		bor, err := typed.AllreduceOne(w, int64(1)<<rank, typed.BOr[int64]())
		if err != nil {
			return err
		}
		if bor != 0b1111 {
			t.Errorf("rank %d: BOr %b, want 1111", rank, bor)
		}

		// Inclusive and exclusive prefix sums.
		scan := make([]int32, 1)
		if err := typed.Scan(w, []int32{int32(rank + 1)}, scan, typed.Sum[int32]()); err != nil {
			return err
		}
		want := int32((rank + 1) * (rank + 2) / 2)
		if scan[0] != want {
			t.Errorf("rank %d: Scan %d, want %d", rank, scan[0], want)
		}
		ex := make([]int32, 1)
		if err := typed.Exscan(w, []int32{int32(rank + 1)}, ex, typed.Sum[int32]()); err != nil {
			return err
		}
		if rank > 0 {
			if wantEx := int32(rank * (rank + 1) / 2); ex[0] != wantEx {
				t.Errorf("rank %d: Exscan %d, want %d", rank, ex[0], wantEx)
			}
		}

		// User-defined op: elementwise hypot, commutative.
		hypot := typed.OpFunc(func(in, inout []float64) {
			for i := range inout {
				inout[i] = math.Hypot(in[i], inout[i])
			}
		}, true)
		out := make([]float64, 1)
		if err := typed.Allreduce(w, []float64{3}, out, hypot); err != nil {
			return err
		}
		if want := math.Sqrt(9 * np); math.Abs(out[0]-want) > 1e-12 {
			t.Errorf("rank %d: user op %v, want %v", rank, out[0], want)
		}
		return nil
	})
}

// The typed and classic APIs interoperate on the same communicator:
// matching is by element class, not by which surface posted the call.
func TestClassicInterop(t *testing.T) {
	run(t, 2, func(env *mpi.Env) error {
		w := env.CommWorld()
		switch w.Rank() {
		case 0:
			if err := typed.Send(w, []float64{6.25}, 1, 21); err != nil {
				return err
			}
			buf := make([]int32, 2)
			_, err := typed.Recv(w, buf, 1, 22)
			if err != nil {
				return err
			}
			if buf[0] != 4 || buf[1] != 5 {
				t.Errorf("typed recv of classic send: %v", buf)
			}
			return nil
		case 1:
			buf := make([]float64, 1)
			if _, err := w.Recv(buf, 0, 1, mpi.DOUBLE, 0, 21); err != nil {
				return err
			}
			if buf[0] != 6.25 {
				t.Errorf("classic recv of typed send: %v", buf[0])
			}
			return w.Send([]int32{4, 5}, 0, 2, mpi.INT, 0, 22)
		}
		return nil
	})
}
