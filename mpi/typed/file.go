package typed

import (
	"context"
	"fmt"

	"gompi/mpi"
)

// FileOpener is the communicator surface the typed file layer needs:
// *mpi.Intracomm satisfies it, and *mpi.Cartcomm and *mpi.Graphcomm do
// through embedding.
type FileOpener interface {
	OpenFile(path string, amode int) (*mpi.File, error)
}

// File is the generics face of mpi.File: the etype is inferred from
// the element type T, buffers are slices carrying their own counts,
// and offsets count T elements. T must be one of the seven native
// element types or a named primitive over one (the fixed-size classes
// a file view can address); structs and other OBJECT-routed types have
// no fixed wire size and are rejected at open.
type File[T any] struct {
	// F is the underlying classic handle, for the calls the typed
	// surface does not wrap (SetSize, Sync, Seek, views over other
	// etypes).
	F *mpi.File
	d *mpi.Datatype
}

// OpenFile opens path collectively over the communicator with the
// etype inferred from T (MPI_File_open + MPI_File_set_view's etype in
// one step). The view starts as the identity over T: element i of the
// file is T element i.
func OpenFile[T any](c FileOpener, path string, amode int) (*File[T], error) {
	var probe []T
	_, d, _ := view(probe)
	if d == mpi.OBJECT {
		return nil, fmt.Errorf("typed: element type %T has no fixed wire size; files need a native element type", probe)
	}
	f, err := c.OpenFile(path, amode)
	if err != nil {
		return nil, err
	}
	if err := f.SetView(0, d, d); err != nil {
		f.Close() //nolint:errcheck // best-effort teardown
		return nil, err
	}
	return &File[T]{F: f, d: d}, nil
}

// SetView installs a view with T as the etype (MPI_File_set_view):
// disp counts T elements and filetype must be built over T's storage
// class. Collective; resets the individual file pointer.
func (f *File[T]) SetView(disp int, filetype *mpi.Datatype) error {
	return f.F.SetView(disp, f.d, filetype)
}

// Close closes the file. Collective.
func (f *File[T]) Close() error { return f.F.Close() }

// wbuf resolves buf for a file call: native and named-primitive
// element types reinterpret in place (see view); OBJECT routing cannot
// occur because OpenFile rejected those types.
func wbuf[T any](buf []T) (any, *mpi.Datatype) {
	raw, d, _ := view(buf)
	return raw, d
}

// WriteAt writes buf at view element offset foff, independently of
// other ranks (MPI_File_write_at).
func (f *File[T]) WriteAt(buf []T, foff int) (*mpi.Status, error) {
	raw, d := wbuf(buf)
	return f.F.WriteAt(int64(foff), raw, 0, len(buf), d)
}

// ReadAt reads len(buf) elements from view element offset foff,
// independently of other ranks (MPI_File_read_at). Count reports how
// many elements a read that hit end-of-file delivered.
func (f *File[T]) ReadAt(buf []T, foff int) (*mpi.Status, error) {
	raw, d := wbuf(buf)
	return f.F.ReadAt(int64(foff), raw, 0, len(buf), d)
}

// Write writes buf at the individual file pointer (MPI_File_write).
func (f *File[T]) Write(buf []T) (*mpi.Status, error) {
	raw, d := wbuf(buf)
	return f.F.Write(raw, 0, len(buf), d)
}

// Read reads len(buf) elements at the individual file pointer
// (MPI_File_read).
func (f *File[T]) Read(buf []T) (*mpi.Status, error) {
	raw, d := wbuf(buf)
	return f.F.Read(raw, 0, len(buf), d)
}

// WriteAllAt is the collective two-phase write of buf at view element
// offset foff (MPI_File_write_at_all). Every member must call it;
// buffer lengths may differ, including zero.
func (f *File[T]) WriteAllAt(buf []T, foff int) (*mpi.Status, error) {
	raw, d := wbuf(buf)
	return f.F.WriteAtAll(int64(foff), raw, 0, len(buf), d)
}

// ReadAllAt is the collective two-phase read of len(buf) elements at
// view element offset foff (MPI_File_read_at_all).
func (f *File[T]) ReadAllAt(buf []T, foff int) (*mpi.Status, error) {
	raw, d := wbuf(buf)
	return f.F.ReadAtAll(int64(foff), raw, 0, len(buf), d)
}

// WriteAllAtCtx is WriteAllAt under a context: a collective stalled on
// an absent peer unblocks promptly with ctx's error.
func (f *File[T]) WriteAllAtCtx(ctx context.Context, buf []T, foff int) (*mpi.Status, error) {
	raw, d := wbuf(buf)
	return f.F.WriteAtAllCtx(ctx, int64(foff), raw, 0, len(buf), d)
}

// ReadAllAtCtx is ReadAllAt under a context.
func (f *File[T]) ReadAllAtCtx(ctx context.Context, buf []T, foff int) (*mpi.Status, error) {
	raw, d := wbuf(buf)
	return f.F.ReadAtAllCtx(ctx, int64(foff), raw, 0, len(buf), d)
}

// IwriteAllAt starts the nonblocking collective write of buf at view
// element offset foff (MPI_File_iwrite_at_all); buf must not be
// modified until the request completes.
func (f *File[T]) IwriteAllAt(buf []T, foff int) (*mpi.FileCollRequest, error) {
	raw, d := wbuf(buf)
	return f.F.IwriteAtAll(int64(foff), raw, 0, len(buf), d)
}

// IreadAllAt starts the nonblocking collective read of len(buf)
// elements at view element offset foff (MPI_File_iread_at_all); buf is
// filled when the request completes.
func (f *File[T]) IreadAllAt(buf []T, foff int) (*mpi.FileCollRequest, error) {
	raw, d := wbuf(buf)
	return f.F.IreadAtAll(int64(foff), raw, 0, len(buf), d)
}

// WriteAll is the collective write at the individual file pointer
// (MPI_File_write_all).
func (f *File[T]) WriteAll(buf []T) (*mpi.Status, error) {
	raw, d := wbuf(buf)
	return f.F.WriteAll(raw, 0, len(buf), d)
}

// ReadAll is the collective read at the individual file pointer
// (MPI_File_read_all).
func (f *File[T]) ReadAll(buf []T) (*mpi.Status, error) {
	raw, d := wbuf(buf)
	return f.F.ReadAll(raw, 0, len(buf), d)
}
