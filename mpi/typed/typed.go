// Package typed is the Go-generics face of the mpi binding: compile-time
// type-safe, slice-first entry points that infer the MPI datatype from
// the buffer's element type, so callers never thread offset/count/
// *Datatype triples by hand. Where the classic (mpiJava-style) API says
//
//	world.Send(buf, 0, len(buf), mpi.DOUBLE, dest, tag)
//
// the typed API says
//
//	typed.Send(world, buf, dest, tag)
//
// Datatype inference follows the registry in internal/dtype: the seven
// native element types (byte, bool, int16, int32/rune, int64, float32,
// float64) map to their predefined basic datatypes and travel zero-copy
// on the exact same path as the classic API; every other element type —
// structs, named primitives, pointers — maps to MPI.OBJECT and travels
// gob-encoded, with registration handled automatically on first use.
// Sub-slicing replaces offset/count: send buf[lo:hi] instead of
// (buf, lo, hi-lo).
//
// The classic API remains the compatibility layer; both interoperate
// freely on the same communicators (a typed.Send matches a classic Recv
// of the same element class, and vice versa).
//
// Context-aware variants (RecvCtx, Request.WaitCtx, WaitCtx) plumb
// cancellation into the runtime's wait paths: cancelling the context
// cancels the underlying operation when it is still unmatched, in the
// sense of MPI_Cancel.
package typed

import (
	"context"
	"fmt"
	"reflect"

	"gompi/internal/dtype"
	"gompi/mpi"
)

// Peer is the point-to-point surface of the classic API the typed layer
// builds on. *mpi.Comm satisfies it, and so do *mpi.Intracomm,
// *mpi.Intercomm, *mpi.Cartcomm and *mpi.Graphcomm through embedding.
type Peer interface {
	Rank() int
	Size() int
	Send(buf any, offset, count int, d *mpi.Datatype, dest, tag int) error
	Recv(buf any, offset, count int, d *mpi.Datatype, source, tag int) (*mpi.Status, error)
	RecvInto(buf any, offset, count int, d *mpi.Datatype, source, tag int) (*mpi.Status, error)
	Isend(buf any, offset, count int, d *mpi.Datatype, dest, tag int) (*mpi.Request, error)
	Irecv(buf any, offset, count int, d *mpi.Datatype, source, tag int) (*mpi.Request, error)
	IrecvInto(buf any, offset, count int, d *mpi.Datatype, source, tag int) (*mpi.Request, error)
}

// Comm is the communicator surface the typed collectives compile
// against: the point-to-point Peer surface plus the classic collective
// entry points, blocking and nonblocking. *mpi.Intracomm satisfies it,
// and *mpi.Cartcomm and *mpi.Graphcomm do through embedding; when
// intercommunicator collectives land, *mpi.Intercomm will too, with no
// typed-signature break. Point-to-point-only communicators keep working
// with the typed sends and receives, which only require Peer.
type Comm interface {
	Peer
	SkipColl()
	Barrier() error
	BarrierCtx(ctx context.Context) error
	Ibarrier() (*mpi.CollRequest, error)
	Bcast(buf any, offset, count int, d *mpi.Datatype, root int) error
	Ibcast(buf any, offset, count int, d *mpi.Datatype, root int) (*mpi.CollRequest, error)
	Gather(sendbuf any, soffset, scount int, sdt *mpi.Datatype,
		recvbuf any, roffset, rcount int, rdt *mpi.Datatype, root int) error
	Igather(sendbuf any, soffset, scount int, sdt *mpi.Datatype,
		recvbuf any, roffset, rcount int, rdt *mpi.Datatype, root int) (*mpi.CollRequest, error)
	Gatherv(sendbuf any, soffset, scount int, sdt *mpi.Datatype,
		recvbuf any, roffset int, recvcounts, displs []int, rdt *mpi.Datatype, root int) error
	Scatter(sendbuf any, soffset, scount int, sdt *mpi.Datatype,
		recvbuf any, roffset, rcount int, rdt *mpi.Datatype, root int) error
	Iscatter(sendbuf any, soffset, scount int, sdt *mpi.Datatype,
		recvbuf any, roffset, rcount int, rdt *mpi.Datatype, root int) (*mpi.CollRequest, error)
	Scatterv(sendbuf any, soffset int, sendcounts, displs []int, sdt *mpi.Datatype,
		recvbuf any, roffset, rcount int, rdt *mpi.Datatype, root int) error
	Allgather(sendbuf any, soffset, scount int, sdt *mpi.Datatype,
		recvbuf any, roffset, rcount int, rdt *mpi.Datatype) error
	Iallgather(sendbuf any, soffset, scount int, sdt *mpi.Datatype,
		recvbuf any, roffset, rcount int, rdt *mpi.Datatype) (*mpi.CollRequest, error)
	Allgatherv(sendbuf any, soffset, scount int, sdt *mpi.Datatype,
		recvbuf any, roffset int, recvcounts, displs []int, rdt *mpi.Datatype) error
	Alltoall(sendbuf any, soffset, scount int, sdt *mpi.Datatype,
		recvbuf any, roffset, rcount int, rdt *mpi.Datatype) error
	Ialltoall(sendbuf any, soffset, scount int, sdt *mpi.Datatype,
		recvbuf any, roffset, rcount int, rdt *mpi.Datatype) (*mpi.CollRequest, error)
	Alltoallv(sendbuf any, soffset int, sendcounts, sdispls []int, sdt *mpi.Datatype,
		recvbuf any, roffset int, recvcounts, rdispls []int, rdt *mpi.Datatype) error
	Reduce(sendbuf any, soffset int, recvbuf any, roffset int,
		count int, d *mpi.Datatype, op *mpi.Op, root int) error
	Ireduce(sendbuf any, soffset int, recvbuf any, roffset int,
		count int, d *mpi.Datatype, op *mpi.Op, root int) (*mpi.CollRequest, error)
	Allreduce(sendbuf any, soffset int, recvbuf any, roffset int,
		count int, d *mpi.Datatype, op *mpi.Op) error
	Iallreduce(sendbuf any, soffset int, recvbuf any, roffset int,
		count int, d *mpi.Datatype, op *mpi.Op) (*mpi.CollRequest, error)
	ReduceScatter(sendbuf any, soffset int, recvbuf any, roffset int,
		recvcounts []int, d *mpi.Datatype, op *mpi.Op) error
	Scan(sendbuf any, soffset int, recvbuf any, roffset int,
		count int, d *mpi.Datatype, op *mpi.Op) error
	Iscan(sendbuf any, soffset int, recvbuf any, roffset int,
		count int, d *mpi.Datatype, op *mpi.Op) (*mpi.CollRequest, error)
	Exscan(sendbuf any, soffset int, recvbuf any, roffset int,
		count int, d *mpi.Datatype, op *mpi.Op) error
	Iexscan(sendbuf any, soffset int, recvbuf any, roffset int,
		count int, d *mpi.Datatype, op *mpi.Op) (*mpi.CollRequest, error)
}

// datatypeOf maps a storage class to its predefined basic datatype,
// keyed so the mapping survives reordering of the Class iota.
var datatypeOf = [...]*mpi.Datatype{
	dtype.U8:   mpi.BYTE,
	dtype.Bool: mpi.BOOLEAN,
	dtype.I16:  mpi.SHORT,
	dtype.I32:  mpi.INT,
	dtype.I64:  mpi.LONG,
	dtype.F32:  mpi.FLOAT,
	dtype.F64:  mpi.DOUBLE,
	dtype.Obj:  mpi.OBJECT,
}

// TypeOf returns the MPI datatype inferred for element type T: the
// predefined basic datatype for native element types, MPI.OBJECT for
// everything else. The inference is cached per type, so TypeOf is cheap
// enough for per-message use.
func TypeOf[T any]() *mpi.Datatype {
	return datatypeOf[dtype.Infer(reflect.TypeFor[T]()).Class]
}

// Count returns the number of T elements a receive described by st
// delivered — GetCount with the datatype inferred rather than passed.
func Count[T any](st *mpi.Status) int {
	return st.GetCount(TypeOf[T]())
}

// view resolves a buffer for a communication call: native element types
// pass through as-is (zero-copy); named primitives (`type Celsius
// float64`) are reinterpreted in place to their underlying native slice
// and stay on their class's wire format; everything else is Obj-routed
// and boxed into a fresh []any. The returned unbox is non-nil exactly
// when the call must copy results back into buf afterwards (receives of
// boxed types) — reinterpreted receives write straight through the
// shared storage and need no unbox.
//
// The type switch is the hot path: one runtime type comparison on the
// instantiated slice type, no registry lookup, so a typed Send costs
// what the classic Send costs. Only non-native element types fall
// through to the inference registry (which gob-registers the Obj-routed
// ones).
func view[T any](buf []T) (raw any, d *mpi.Datatype, unbox func() error) {
	switch b := any(buf).(type) {
	case []byte:
		return b, mpi.BYTE, nil
	case []bool:
		return b, mpi.BOOLEAN, nil
	case []int16:
		return b, mpi.SHORT, nil
	case []int32:
		return b, mpi.INT, nil
	case []int64:
		return b, mpi.LONG, nil
	case []float32:
		return b, mpi.FLOAT, nil
	case []float64:
		return b, mpi.DOUBLE, nil
	case []any:
		return b, mpi.OBJECT, nil
	}
	if inf := dtype.Infer(reflect.TypeFor[T]()); inf.Reinterp {
		nv, _ := dtype.NativeView(any(buf))
		return nv, datatypeOf[inf.Class], nil
	}
	tmp := make([]any, len(buf))
	for i, v := range buf {
		tmp[i] = v
	}
	return tmp, mpi.OBJECT, func() error { return unboxInto(buf, tmp) }
}

// unboxInto copies received object elements back into the typed buffer.
// Slots the receive did not fill stay nil in tmp and are skipped. gob
// flattens pointers on the wire, so when T is a pointer type the
// arriving base value is re-boxed behind a fresh pointer.
func unboxInto[T any](dst []T, tmp []any) error {
	for i, v := range tmp {
		if v == nil {
			continue
		}
		t, ok := v.(T)
		if !ok {
			if p, ok := reboxPointer[T](v); ok {
				dst[i] = p
				continue
			}
			return fmt.Errorf("typed: element %d arrived as %T, want %T", i, v, dst[i])
		}
		dst[i] = t
	}
	return nil
}

// reboxPointer lifts v to *E when T is a pointer type *E and v is an E.
func reboxPointer[T any](v any) (T, bool) {
	var zero T
	rt := reflect.TypeFor[T]()
	if rt.Kind() != reflect.Pointer || reflect.TypeOf(v) != rt.Elem() {
		return zero, false
	}
	p := reflect.New(rt.Elem())
	p.Elem().Set(reflect.ValueOf(v))
	return p.Interface().(T), true
}

// Send is the blocking standard-mode send of a whole slice: the typed
// analogue of MPI_Send. Use sub-slicing where the classic API would use
// offset/count.
func Send[T any](c Peer, buf []T, dest, tag int) error {
	raw, d, _ := view(buf)
	return c.Send(raw, 0, len(buf), d, dest, tag)
}

// Recv is the blocking receive into a whole slice (MPI_Recv). The
// source and tag arguments accept the mpi.AnySource and mpi.AnyTag
// wildcards.
func Recv[T any](c Peer, buf []T, source, tag int) (*mpi.Status, error) {
	raw, d, unbox := view(buf)
	st, err := c.Recv(raw, 0, len(buf), d, source, tag)
	// Unbox even on error: a truncated receive has deposited whole
	// elements that must still reach the typed buffer. The operation's
	// error takes precedence.
	if unbox != nil {
		if uerr := unbox(); err == nil {
			err = uerr
		}
	}
	return st, err
}

// RecvInto is the blocking zero-copy receive: the incoming payload
// lands directly in buf — no staging buffer, no unpack copy — whenever
// the element type is a native or named primitive on a little-endian
// host (other types fall back to Recv semantics transparently). If the
// message holds more elements than buf, buf is filled and an
// ErrTruncate-class error is returned (MPI_ERR_TRUNCATE semantics). Use
// it with preallocated buffers on hot paths: a steady-state RecvInto
// allocates nothing.
func RecvInto[T any](c Peer, buf []T, source, tag int) (*mpi.Status, error) {
	raw, d, unbox := view(buf)
	st, err := c.RecvInto(raw, 0, len(buf), d, source, tag)
	// Unbox even on error (see Recv): truncated receives deposit whole
	// elements.
	if unbox != nil {
		if uerr := unbox(); err == nil {
			err = uerr
		}
	}
	return st, err
}

// IrecvInto starts a non-blocking zero-copy receive (see RecvInto). The
// buffer must not be touched until the returned request completes.
func IrecvInto[T any](c Peer, buf []T, source, tag int) (*Request[T], error) {
	raw, d, unbox := view(buf)
	r, err := c.IrecvInto(raw, 0, len(buf), d, source, tag)
	if err != nil {
		return nil, err
	}
	return &Request[T]{r: r, unbox: unbox}, nil
}

// RecvCtx is Recv with cancellation: it posts the receive and waits
// under ctx. If ctx fires while the message is still unmatched the
// receive is cancelled (MPI_Cancel semantics), the status reports
// TestCancelled() and ctx's error is returned.
func RecvCtx[T any](ctx context.Context, c Peer, buf []T, source, tag int) (*mpi.Status, error) {
	req, err := Irecv(c, buf, source, tag)
	if err != nil {
		return nil, err
	}
	return req.WaitCtx(ctx)
}

// Isend starts a non-blocking standard-mode send (MPI_Isend). The
// buffer must not be modified until the request completes.
func Isend[T any](c Peer, buf []T, dest, tag int) (*Request[T], error) {
	raw, d, _ := view(buf)
	r, err := c.Isend(raw, 0, len(buf), d, dest, tag)
	if err != nil {
		return nil, err
	}
	return &Request[T]{r: r}, nil
}

// Irecv starts a non-blocking receive (MPI_Irecv). The buffer is filled
// when the returned request completes.
func Irecv[T any](c Peer, buf []T, source, tag int) (*Request[T], error) {
	raw, d, unbox := view(buf)
	r, err := c.Irecv(raw, 0, len(buf), d, source, tag)
	if err != nil {
		return nil, err
	}
	return &Request[T]{r: r, unbox: unbox}, nil
}

// SendOne sends a single value (a one-element message).
func SendOne[T any](c Peer, v T, dest, tag int) error {
	return Send(c, []T{v}, dest, tag)
}

// RecvOne receives a single value.
func RecvOne[T any](c Peer, source, tag int) (T, *mpi.Status, error) {
	buf := make([]T, 1)
	st, err := Recv(c, buf, source, tag)
	return buf[0], st, err
}

// RecvOneCtx receives a single value under a context.
func RecvOneCtx[T any](ctx context.Context, c Peer, source, tag int) (T, *mpi.Status, error) {
	buf := make([]T, 1)
	st, err := RecvCtx(ctx, c, buf, source, tag)
	return buf[0], st, err
}

// Waiter is anything WaitCtx can wait on: *mpi.Request and the typed
// *Request[T] both qualify.
type Waiter interface {
	WaitCtx(ctx context.Context) (*mpi.Status, error)
}

// WaitCtx waits for a pending operation under a context; see
// Request.WaitCtx for the cancellation contract.
func WaitCtx(ctx context.Context, w Waiter) (*mpi.Status, error) {
	return w.WaitCtx(ctx)
}
