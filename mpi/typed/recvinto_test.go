package typed_test

import (
	"testing"

	"gompi/mpi"
	"gompi/mpi/typed"
)

func TestTypedRecvInto(t *testing.T) {
	run(t, 2, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 0 {
			return typed.Send(w, []int32{10, 20, 30}, 1, 1)
		}
		buf := make([]int32, 3)
		st, err := typed.RecvInto(w, buf, 0, 1)
		if err != nil {
			return err
		}
		if buf[0] != 10 || buf[2] != 30 {
			t.Errorf("RecvInto %v", buf)
		}
		if n := typed.Count[int32](st); n != 3 {
			t.Errorf("count %d", n)
		}
		return nil
	})
}

func TestTypedIrecvIntoPreposted(t *testing.T) {
	run(t, 2, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 1 {
			// Pre-post the zero-copy receive, then signal readiness.
			buf := make([]float64, 4)
			req, err := typed.IrecvInto(w, buf, 0, 2)
			if err != nil {
				return err
			}
			if err := typed.SendOne(w, byte(1), 0, 3); err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			if buf[3] != 4.5 {
				t.Errorf("preposted IrecvInto %v", buf)
			}
			return nil
		}
		if _, _, err := typed.RecvOne[byte](w, 1, 3); err != nil {
			return err
		}
		return typed.Send(w, []float64{1.5, 2.5, 3.5, 4.5}, 1, 2)
	})
}

func TestTypedRecvIntoTruncate(t *testing.T) {
	run(t, 2, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 0 {
			return typed.Send(w, []int64{1, 2, 3, 4}, 1, 4)
		}
		small := make([]int64, 2)
		_, err := typed.RecvInto(w, small, 0, 4)
		if err == nil || mpi.ClassOf(err) != mpi.ErrTruncate {
			t.Errorf("truncate error %v", err)
		}
		if small[0] != 1 || small[1] != 2 {
			t.Errorf("truncated prefix %v", small)
		}
		return nil
	})
}

// TestTypedTruncateUnboxesObjects pins the truncate contract for
// Obj-routed element types: the deposited whole elements must reach the
// caller's buffer even though the receive reports ErrTruncate.
func TestTypedTruncateUnboxesObjects(t *testing.T) {
	type pt struct{ X, Y int32 }
	run(t, 2, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 0 {
			return typed.Send(w, []pt{{1, 2}, {3, 4}, {5, 6}}, 1, 7)
		}
		small := make([]pt, 2)
		_, err := typed.RecvInto(w, small, 0, 7)
		if err == nil || mpi.ClassOf(err) != mpi.ErrTruncate {
			t.Errorf("truncate error %v", err)
		}
		if small[0] != (pt{1, 2}) || small[1] != (pt{3, 4}) {
			t.Errorf("deposited elements not unboxed: %v", small)
		}
		return nil
	})
}

// TestTypedNamedPrimitiveWire pins the acceptance criterion: celsius
// slices round-trip on the F64 wire format through the typed API and
// interoperate with native float64 peers — no OBJECT/gob involved.
func TestTypedNamedPrimitiveWire(t *testing.T) {
	run(t, 2, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 0 {
			if err := typed.Send(w, []celsius{36.6, -40}, 1, 5); err != nil {
				return err
			}
			// Receive native into named through the zero-copy path.
			got := make([]celsius, 2)
			if _, err := typed.RecvInto(w, got, 1, 6); err != nil {
				return err
			}
			if got[0] != 100 || got[1] != 0 {
				t.Errorf("celsius RecvInto %v", got)
			}
			return nil
		}
		// The peer reads the same message as plain float64: proof the
		// wire format is F64, not gob.
		native := make([]float64, 2)
		if _, err := typed.Recv(w, native, 0, 5); err != nil {
			return err
		}
		if native[0] != 36.6 || native[1] != -40 {
			t.Errorf("native view of celsius message %v", native)
		}
		return typed.Send(w, []float64{100, 0}, 0, 6)
	})
}
