package typed

import (
	"context"
	"sync"

	"gompi/mpi"
)

// Typed persistent operations (MPI-4 *Init/Start), generic over the
// classic persistent surface: bind the buffers and plan the operation
// once, then Start each activation. Where the classic API says
//
//	req, _ := world.SendInit(buf, 0, len(buf), mpi.DOUBLE, dest, tag)
//
// the typed API says
//
//	req, _ := typed.SendInit(world, buf, dest, tag)
//
// Buffers are re-read at each Start (sends, reduction operands) and
// re-deposited at each completion (receives, collective results), so a
// steady-state activation of a native-element request allocates
// nothing. Obj-routed element types keep working: the typed handle
// re-boxes the send buffer before each Start and unboxes the result
// after each completion.

// PeerInit is the point-to-point persistent surface the typed layer
// builds on; *mpi.Comm satisfies it, and every concrete communicator
// does through embedding.
type PeerInit interface {
	Peer
	SendInit(buf any, offset, count int, d *mpi.Datatype, dest, tag int) (*mpi.PersistentRequest, error)
	RecvInit(buf any, offset, count int, d *mpi.Datatype, source, tag int) (*mpi.PersistentRequest, error)
	RecvIntoInit(buf any, offset, count int, d *mpi.Datatype, source, tag int) (*mpi.PersistentRequest, error)
}

// CommInit is the collective persistent surface; *mpi.Intracomm
// satisfies it, and *mpi.Cartcomm and *mpi.Graphcomm do through
// embedding.
type CommInit interface {
	Comm
	BarrierInit() (*mpi.PersistentRequest, error)
	BcastInit(buf any, offset, count int, d *mpi.Datatype, root int) (*mpi.PersistentRequest, error)
	ReduceInit(sendbuf any, soffset int, recvbuf any, roffset int,
		count int, d *mpi.Datatype, op *mpi.Op, root int) (*mpi.PersistentRequest, error)
	AllreduceInit(sendbuf any, soffset int, recvbuf any, roffset int,
		count int, d *mpi.Datatype, op *mpi.Op) (*mpi.PersistentRequest, error)
}

// PersistentRequest is a typed handle on a persistent operation. Start
// begins an activation; each activation completes through Wait,
// WaitCtx or Test on this handle exactly as a one-shot typed request
// would, and the handle is then startable again. For Obj-routed
// element types the typed buffer is only filled by completing through
// this handle, not the raw one.
type PersistentRequest[T any] struct {
	p     *mpi.PersistentRequest
	rebox func()       // re-snapshot the typed send buffer; nil for native
	unbox func() error // deposit into the typed recv buffer; nil for native
	mu    sync.Mutex
	armed bool // an activation's unbox is still pending
}

// Raw exposes the underlying classic persistent request, for mixing
// typed handles into mpi.StartAll / mpi.WaitAllAny sets.
func (r *PersistentRequest[T]) Raw() *mpi.PersistentRequest { return r.p }

// Start begins a new activation (MPI_Start): the send-side buffer is
// re-read as of this call. The previous activation must have completed.
func (r *PersistentRequest[T]) Start() error {
	if r.rebox != nil {
		r.rebox()
	}
	if err := r.p.Start(); err != nil {
		return err
	}
	if r.unbox != nil {
		r.mu.Lock()
		r.armed = true
		r.mu.Unlock()
	}
	return nil
}

// settle runs the unbox step at most once per activation; safe under
// concurrent Wait/Test.
func (r *PersistentRequest[T]) settle() error {
	if r.unbox == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.armed {
		return nil
	}
	r.armed = false
	return r.unbox()
}

// Wait blocks until the current activation completes (MPI_Wait). As
// with one-shot typed requests, the unbox step runs even when the
// operation completed in error, and the operation's error takes
// precedence over an unbox error.
func (r *PersistentRequest[T]) Wait() (*mpi.Status, error) {
	st, err := r.p.Wait()
	if uerr := r.settle(); err == nil {
		err = uerr
	}
	return st, err
}

// WaitCtx blocks until the current activation completes or ctx is
// done; a cancelled wait leaves the typed buffer untouched.
func (r *PersistentRequest[T]) WaitCtx(ctx context.Context) (*mpi.Status, error) {
	st, err := r.p.WaitCtx(ctx)
	if err != nil {
		return st, err
	}
	return st, r.settle()
}

// Test polls the current activation for completion (MPI_Test).
func (r *PersistentRequest[T]) Test() (*mpi.Status, bool, error) {
	st, done, err := r.p.Test()
	if !done {
		return st, done, err
	}
	if uerr := r.settle(); err == nil {
		err = uerr
	}
	return st, true, err
}

// Free releases the persistent operation (MPI_Request_free on an
// inactive persistent request).
func (r *PersistentRequest[T]) Free() error { return r.p.Free() }

// viewInit resolves a buffer for a persistent binding. Unlike view,
// which snapshots Obj-routed buffers once, it returns a rebox that
// re-snapshots the typed buffer into the bound []any staging slice —
// run before each send-side activation — alongside the usual unbox.
func viewInit[T any](buf []T) (raw any, d *mpi.Datatype, rebox func(), unbox func() error) {
	raw, d, _ = view(buf)
	if tmp, boxed := raw.([]any); boxed && d == mpi.OBJECT {
		rebox = func() {
			for i, v := range buf {
				tmp[i] = v
			}
		}
		unbox = func() error { return unboxInto(buf, tmp) }
	}
	return raw, d, rebox, unbox
}

// SendInit builds a persistent standard-mode send (MPI_Send_init)
// bound to buf; each Start sends buf's contents as of that call.
func SendInit[T any](c PeerInit, buf []T, dest, tag int) (*PersistentRequest[T], error) {
	raw, d, rebox, _ := viewInit(buf)
	p, err := c.SendInit(raw, 0, len(buf), d, dest, tag)
	if err != nil {
		return nil, err
	}
	return &PersistentRequest[T]{p: p, rebox: rebox}, nil
}

// RecvInit builds a persistent receive (MPI_Recv_init) bound to buf;
// each activation fills buf when completed through this handle.
func RecvInit[T any](c PeerInit, buf []T, source, tag int) (*PersistentRequest[T], error) {
	raw, d, _, unbox := viewInit(buf)
	p, err := c.RecvInit(raw, 0, len(buf), d, source, tag)
	if err != nil {
		return nil, err
	}
	return &PersistentRequest[T]{p: p, unbox: unbox}, nil
}

// RecvIntoInit builds a persistent zero-copy receive (see RecvInto):
// native-element activations land directly in buf with no staging
// copy; other element types fall back to RecvInit semantics.
func RecvIntoInit[T any](c PeerInit, buf []T, source, tag int) (*PersistentRequest[T], error) {
	raw, d, _, unbox := viewInit(buf)
	p, err := c.RecvIntoInit(raw, 0, len(buf), d, source, tag)
	if err != nil {
		return nil, err
	}
	return &PersistentRequest[T]{p: p, unbox: unbox}, nil
}

// BarrierInit builds a persistent barrier (MPI_Barrier_init). There is
// no element type involved, so the classic handle is returned as-is.
func BarrierInit(c CommInit) (*mpi.PersistentRequest, error) {
	return c.BarrierInit()
}

// BcastInit builds a persistent broadcast (MPI_Bcast_init) bound to
// buf: each activation re-reads root's buf at Start and fills every
// other member's buf at completion.
func BcastInit[T any](c CommInit, buf []T, root int) (*PersistentRequest[T], error) {
	raw, d, rebox, unbox := viewInit(buf)
	p, err := c.BcastInit(raw, 0, len(buf), d, root)
	if err != nil {
		return nil, err
	}
	if c.Rank() == root {
		unbox = nil // root's buffer is the source; nothing arrives
	} else {
		rebox = nil
	}
	return &PersistentRequest[T]{p: p, rebox: rebox, unbox: unbox}, nil
}

// ReduceInit builds a persistent reduction (MPI_Reduce_init): each
// activation folds the members' send slices, re-read at Start, into
// root's recv slice at completion. The Primitive constraint keeps
// reductions on dense native buffers — no boxing, so a steady-state
// activation allocates nothing beyond the runtime's wire buffers.
func ReduceInit[T Primitive](c CommInit, send, recv []T, op Op[T], root int) (*PersistentRequest[T], error) {
	p, err := c.ReduceInit(send, 0, recv, 0, len(send), TypeOf[T](), op.op, root)
	if err != nil {
		return nil, err
	}
	return &PersistentRequest[T]{p: p}, nil
}

// AllreduceInit builds a persistent all-reduction
// (MPI_Allreduce_init): the canonical persistent overlap primitive —
// Init once, then per iteration Start, compute, Wait.
func AllreduceInit[T Primitive](c CommInit, send, recv []T, op Op[T]) (*PersistentRequest[T], error) {
	p, err := c.AllreduceInit(send, 0, recv, 0, len(send), TypeOf[T](), op.op)
	if err != nil {
		return nil, err
	}
	return &PersistentRequest[T]{p: p}, nil
}
