package typed

import (
	"context"
	"sync"

	"gompi/mpi"
)

// Request is a typed handle on a pending non-blocking operation. It
// wraps the classic *mpi.Request and, for receives of Obj-routed
// element types, copies the boxed elements back into the caller's
// typed buffer at completion.
type Request[T any] struct {
	r     *mpi.Request
	unbox func() error // nil for sends and zero-copy receives
	once  sync.Once
	uerr  error
}

// Raw exposes the underlying classic request, for mixing typed requests
// into mpi.WaitAll / mpi.WaitAny sets. For Obj-routed receives the
// typed buffer is only filled by Wait/WaitCtx/Test on this handle, not
// by completing the raw request directly.
func (r *Request[T]) Raw() *mpi.Request { return r.r }

// settle runs the unbox step exactly once after completion; like the
// classic request's finish, it is safe under concurrent Wait/Test.
func (r *Request[T]) settle() error {
	r.once.Do(func() {
		if r.unbox != nil {
			r.uerr = r.unbox()
		}
	})
	return r.uerr
}

// Wait blocks until the operation completes (MPI_Wait). The unbox step
// runs even when the operation completed in error: a truncated receive
// has deposited its whole elements and they must still reach the typed
// buffer. The operation's error takes precedence over an unbox error.
func (r *Request[T]) Wait() (*mpi.Status, error) {
	st, err := r.r.Wait()
	if uerr := r.settle(); err == nil {
		err = uerr
	}
	return st, err
}

// WaitCtx blocks until the operation completes or ctx is done; see
// mpi.Request.WaitCtx for the cancellation contract.
func (r *Request[T]) WaitCtx(ctx context.Context) (*mpi.Status, error) {
	st, err := r.r.WaitCtx(ctx)
	if err != nil {
		return st, err
	}
	return st, r.settle()
}

// Test polls the operation for completion (MPI_Test).
func (r *Request[T]) Test() (*mpi.Status, bool, error) {
	st, ok, err := r.r.Test()
	if !ok {
		return st, ok, err
	}
	if uerr := r.settle(); err == nil {
		err = uerr
	}
	return st, true, err
}

// Cancel attempts to cancel the pending operation (MPI_Cancel).
func (r *Request[T]) Cancel() error { return r.r.Cancel() }
