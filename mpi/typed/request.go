package typed

import (
	"context"
	"sync"

	"gompi/mpi"
)

// Request is a typed handle on a pending non-blocking operation —
// point-to-point (Isend/Irecv) or collective (Ibcast/Iallreduce/…). It
// wraps the corresponding classic request and, for receives of
// Obj-routed element types, copies the boxed elements back into the
// caller's typed buffer at completion.
type Request[T any] struct {
	r     *mpi.Request     // point-to-point; nil for collectives
	cr    *mpi.CollRequest // collective; nil for point-to-point
	unbox func() error     // nil for sends and zero-copy receives
	once  sync.Once
	uerr  error
}

// Raw exposes the underlying classic point-to-point request, for mixing
// typed requests into mpi.WaitAll / mpi.WaitAny sets; it is nil for
// collective requests (see Coll). For Obj-routed receives the typed
// buffer is only filled by Wait/WaitCtx/Test on this handle, not by
// completing the raw request directly.
func (r *Request[T]) Raw() *mpi.Request { return r.r }

// Coll exposes the underlying classic collective request; it is nil for
// point-to-point requests.
func (r *Request[T]) Coll() *mpi.CollRequest { return r.cr }

// settle runs the unbox step exactly once after completion; like the
// classic request's finish, it is safe under concurrent Wait/Test.
func (r *Request[T]) settle() error {
	r.once.Do(func() {
		if r.unbox != nil {
			r.uerr = r.unbox()
		}
	})
	return r.uerr
}

// Wait blocks until the operation completes (MPI_Wait). The unbox step
// runs even when the operation completed in error: a truncated receive
// has deposited its whole elements and they must still reach the typed
// buffer. The operation's error takes precedence over an unbox error.
// Collective completions carry no Status; their Wait returns nil.
func (r *Request[T]) Wait() (*mpi.Status, error) {
	if r.cr != nil {
		_, err := r.cr.Wait()
		if uerr := r.settle(); err == nil {
			err = uerr
		}
		return nil, err
	}
	st, err := r.r.Wait()
	if uerr := r.settle(); err == nil {
		err = uerr
	}
	return st, err
}

// WaitCtx blocks until the operation completes or ctx is done; see
// mpi.Request.WaitCtx and mpi.CollRequest.WaitCtx for the cancellation
// contracts. A cancelled wait leaves the typed buffer untouched.
func (r *Request[T]) WaitCtx(ctx context.Context) (*mpi.Status, error) {
	if r.cr != nil {
		if _, err := r.cr.WaitCtx(ctx); err != nil {
			return nil, err
		}
		return nil, r.settle()
	}
	st, err := r.r.WaitCtx(ctx)
	if err != nil {
		return st, err
	}
	return st, r.settle()
}

// Test polls the operation for completion (MPI_Test).
func (r *Request[T]) Test() (*mpi.Status, bool, error) {
	if r.cr != nil {
		_, done, err := r.cr.Test()
		if !done {
			return nil, false, nil
		}
		if uerr := r.settle(); err == nil {
			err = uerr
		}
		return nil, true, err
	}
	st, ok, err := r.r.Test()
	if !ok {
		return st, ok, err
	}
	if uerr := r.settle(); err == nil {
		err = uerr
	}
	return st, true, err
}

// Cancel attempts to cancel a pending point-to-point operation
// (MPI_Cancel). Collectives have no standalone cancel: cancellation is
// driven through WaitCtx, so Cancel is a no-op for them.
func (r *Request[T]) Cancel() error {
	if r.r == nil {
		return nil
	}
	return r.r.Cancel()
}
