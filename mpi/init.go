package mpi

import (
	"os"
	"strconv"

	"gompi/internal/core"
	"gompi/internal/launch"
	"gompi/internal/transport"
)

// Init initializes the MPI environment of a stand-alone process — the
// analogue of MPI.Init(args) in the Java binding (paper Fig. 3). Under
// cmd/mpirun it reads the job geometry from the environment, joins the
// rendezvous and builds the DM-mode socket mesh; run directly, it comes
// up as a singleton (one-rank world). The args slice is returned
// unchanged (the binding keeps the signature; this implementation passes
// no MPI arguments through the command line).
func Init(args []string) (*Env, []string, error) {
	sizeStr := os.Getenv(launch.EnvSize)
	if sizeStr == "" {
		dev := transport.NewShmJob(1, 0)[0]
		return newEnv(dev, core.Config{Recorder: newRecorder(0, false)}), args, nil
	}
	size, err := strconv.Atoi(sizeStr)
	if err != nil || size <= 0 {
		return nil, args, errf(ErrArg, "bad %s=%q", launch.EnvSize, sizeStr)
	}
	rank, err := strconv.Atoi(os.Getenv(launch.EnvRank))
	if err != nil || rank < 0 || rank >= size {
		return nil, args, errf(ErrArg, "bad %s=%q", launch.EnvRank, os.Getenv(launch.EnvRank))
	}
	cfg := core.Config{Recorder: newRecorder(rank, false)}
	if e := os.Getenv(launch.EnvEager); e != "" {
		if v, err := strconv.Atoi(e); err == nil {
			cfg.EagerLimit = v
		}
	}
	// The medium comes from the device registry: mpirun names one
	// ("shm", "tcp", "hybrid") or leaves "auto" to pick the fastest
	// fabric it provisioned (segment, coordinator, or both).
	dev, err := transport.NewDevice(launch.DeviceFromEnv(), launch.SpecFromEnv(rank, size))
	if err != nil {
		return nil, args, errf(ErrIntern, "%v", err)
	}
	return newEnv(dev, cfg), args, nil
}

// Main runs fn as an SPMD job in whichever mode the process was
// launched: under cmd/mpirun (job geometry in the environment) the
// process is one rank and fn runs once between Init and Finalize;
// otherwise np ranks run in-process via Run. It is the one-line main
// shared by the examples.
func Main(np int, fn func(*Env) error) error {
	if os.Getenv(launch.EnvSize) == "" {
		return Run(np, fn)
	}
	env, _, err := Init(os.Args)
	if err != nil {
		return err
	}
	if err := fn(env); err != nil {
		// A failed rank skips the Finalize barrier (peers may be out
		// of step); mpirun surfaces the nonzero exit.
		return err
	}
	return env.Finalize()
}
