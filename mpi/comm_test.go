package mpi_test

import (
	"testing"

	"gompi/mpi"
)

func TestCommBasics(t *testing.T) {
	err := mpi.Run(3, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Size() != 3 {
			t.Errorf("world size %d", w.Size())
		}
		if w.Rank() != env.Rank() {
			t.Errorf("rank mismatch: %d vs %d", w.Rank(), env.Rank())
		}
		if w.TestInter() {
			t.Error("world tests as intercomm")
		}
		if w.Name() != "MPI.COMM_WORLD" {
			t.Errorf("world name %q", w.Name())
		}
		w.SetName("renamed")
		if w.Name() != "renamed" {
			t.Error("SetName failed")
		}
		w.SetName("MPI.COMM_WORLD")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitUndefinedColour(t *testing.T) {
	err := mpi.Run(4, func(env *mpi.Env) error {
		w := env.CommWorld()
		colour := 0
		if w.Rank() >= 2 {
			colour = mpi.Undefined
		}
		sub, err := w.Split(colour, 0)
		if err != nil {
			return err
		}
		if w.Rank() >= 2 {
			if sub != nil {
				t.Errorf("rank %d: expected nil comm for Undefined colour", w.Rank())
			}
			return nil
		}
		if sub == nil || sub.Size() != 2 {
			t.Errorf("rank %d: bad subcomm %v", w.Rank(), sub)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitNegativeColour(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		_, err := w.Split(-5, 0)
		if mpi.ClassOf(err) != mpi.ErrArg {
			t.Errorf("negative colour: %v", err)
		}
		return nil
	})
	// The two ranks disagree on collective participation after the
	// error; both erred out before communicating, so Run succeeds.
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedSplits(t *testing.T) {
	err := mpi.Run(8, func(env *mpi.Env) error {
		w := env.CommWorld()
		half, err := w.Split(w.Rank()/4, w.Rank())
		if err != nil {
			return err
		}
		quarter, err := half.Split(half.Rank()/2, half.Rank())
		if err != nil {
			return err
		}
		if quarter.Size() != 2 {
			t.Errorf("nested split size %d", quarter.Size())
		}
		// Collectives on all three levels interleave safely.
		sum := func(c *mpi.Intracomm) (int32, error) {
			in := []int32{int32(w.Rank())}
			out := []int32{0}
			err := c.Allreduce(in, 0, out, 0, 1, mpi.INT, mpi.SUM)
			return out[0], err
		}
		sw, err := sum(w)
		if err != nil {
			return err
		}
		if sw != 28 {
			t.Errorf("world sum %d", sw)
		}
		sh, err := sum(half)
		if err != nil {
			return err
		}
		wantHalf := int32(0 + 1 + 2 + 3)
		if w.Rank() >= 4 {
			wantHalf = 4 + 5 + 6 + 7
		}
		if sh != wantHalf {
			t.Errorf("half sum %d, want %d", sh, wantHalf)
		}
		sq, err := sum(quarter)
		if err != nil {
			return err
		}
		base := int32(w.Rank() / 2 * 2)
		if sq != base+base+1 {
			t.Errorf("quarter sum %d", sq)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCreateWithNonSubsetGroup(t *testing.T) {
	err := mpi.Run(3, func(env *mpi.Env) error {
		w := env.CommWorld()
		sub, err := w.Split(boolToColour(w.Rank() < 2), w.Rank())
		if err != nil {
			return err
		}
		if w.Rank() >= 2 {
			return nil
		}
		// A group containing rank 2's world rank is not a subset of sub.
		g := w.Group()
		bad, err := g.Incl([]int{2})
		if err != nil {
			return err
		}
		_, err = sub.Create(bad)
		if mpi.ClassOf(err) != mpi.ErrGroup {
			t.Errorf("non-subset Create: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func boolToColour(b bool) int {
	if b {
		return 0
	}
	return 1
}

func TestDupIsolatesCollectives(t *testing.T) {
	err := mpi.Run(4, func(env *mpi.Env) error {
		w := env.CommWorld()
		d1, err := w.Dup()
		if err != nil {
			return err
		}
		d2, err := d1.Dup()
		if err != nil {
			return err
		}
		// Interleave collectives on three communicators.
		for i := 0; i < 3; i++ {
			in := []int32{1}
			out := []int32{0}
			if err := d2.Allreduce(in, 0, out, 0, 1, mpi.INT, mpi.SUM); err != nil {
				return err
			}
			if err := w.Barrier(); err != nil {
				return err
			}
			if err := d1.Bcast(out, 0, 1, mpi.INT, i%4); err != nil {
				return err
			}
			if out[0] != 4 {
				t.Errorf("iteration %d: %d", i, out[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupFromComm(t *testing.T) {
	err := mpi.Run(4, func(env *mpi.Env) error {
		w := env.CommWorld()
		g := w.Group()
		if g.Size() != 4 || g.Rank() != w.Rank() {
			t.Errorf("group size=%d rank=%d", g.Size(), g.Rank())
		}
		// Group of a subcomm maps back to world ranks consistently.
		sub, err := w.Split(w.Rank()%2, -w.Rank())
		if err != nil {
			return err
		}
		sg := sub.Group()
		tr, err := mpi.TranslateRanks(sg, []int{sub.Rank()}, g)
		if err != nil {
			return err
		}
		if tr[0] != w.Rank() {
			t.Errorf("translate own rank: %d, want %d", tr[0], w.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntercommDup(t *testing.T) {
	err := mpi.Run(4, func(env *mpi.Env) error {
		w := env.CommWorld()
		side := w.Rank() % 2
		local, err := w.Split(side, w.Rank())
		if err != nil {
			return err
		}
		remoteLeader := 1 - side // world ranks 0 and 1 lead the sides
		ic, err := local.CreateIntercomm(&w.Comm, 0, remoteLeader, 5)
		if err != nil {
			return err
		}
		dup, err := ic.Dup()
		if err != nil {
			return err
		}
		if dup.RemoteSize() != ic.RemoteSize() || !dup.TestInter() {
			t.Errorf("dup geometry: remote=%d inter=%v", dup.RemoteSize(), dup.TestInter())
		}
		// Traffic on the dup is isolated from the original.
		out := []int32{int32(w.Rank())}
		in := []int32{-1}
		lr := ic.Rank()
		if _, err := dup.Sendrecv(out, 0, 1, mpi.INT, lr, 1, in, 0, 1, mpi.INT, lr, 1); err != nil {
			return err
		}
		if in[0] != int32(1-side+2*lr) {
			t.Errorf("dup exchange: got %d", in[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntercommMergeHighOrdering(t *testing.T) {
	err := mpi.Run(4, func(env *mpi.Env) error {
		w := env.CommWorld()
		side := 0
		if w.Rank() >= 2 {
			side = 1
		}
		local, err := w.Split(side, w.Rank())
		if err != nil {
			return err
		}
		remoteLeader := 2
		if side == 1 {
			remoteLeader = 0
		}
		ic, err := local.CreateIntercomm(&w.Comm, 0, remoteLeader, 7)
		if err != nil {
			return err
		}
		// Reverse ordering: side 0 passes high=true, side 1 high=false.
		merged, err := ic.Merge(side == 0)
		if err != nil {
			return err
		}
		// Side 1 (ranks 2,3) must come first.
		wantRank := map[int]int{2: 0, 3: 1, 0: 2, 1: 3}[w.Rank()]
		if merged.Rank() != wantRank {
			t.Errorf("world rank %d: merged rank %d, want %d", w.Rank(), merged.Rank(), wantRank)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatusGetCountPacked(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 0 {
			buf := []byte{1, 2, 3, 4, 5, 6, 7}
			return w.Send(buf, 0, 7, mpi.PACKED, 1, 1)
		}
		in := make([]byte, 16)
		st, err := w.Recv(in, 0, 16, mpi.PACKED, 0, 1)
		if err != nil {
			return err
		}
		if st.GetCount(mpi.PACKED) != 7 || st.Bytes() != 7 {
			t.Errorf("packed count: %d bytes %d", st.GetCount(mpi.PACKED), st.Bytes())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFinalizeSemantics(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		if err := w.Barrier(); err != nil {
			return err
		}
		if err := env.Finalize(); err != nil {
			return err
		}
		if env.Initialized() {
			t.Error("Initialized true after Finalize")
		}
		// Communication after Finalize fails cleanly.
		buf := []int32{0}
		if err := w.Send(buf, 0, 1, mpi.INT, 0, 0); mpi.ClassOf(err) != mpi.ErrComm {
			t.Errorf("send after finalize: %v", err)
		}
		if err := env.Finalize(); err == nil {
			t.Error("double Finalize must error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
