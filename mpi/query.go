package mpi

// Version of the MPI standard this binding implements (MPI_Get_version).
// The paper's binding targets the MPI 1.1 subset of the MPI-2 C++ class
// hierarchy.
const (
	VersionMajor = 1
	VersionMinor = 1
)

// GetVersion returns the implemented standard version
// (MPI_Get_version, outputs as return values per the binding style).
func GetVersion() (major, minor int) { return VersionMajor, VersionMinor }

// Predefined environment attribute keys (MPI 1.1 §7.1.1), cached on
// COMM_WORLD at initialization.
var (
	// KeyTagUB carries the largest usable tag (MPI_TAG_UB).
	KeyTagUB = CreateKeyval(inheritCopy, nil)
	// KeyHost carries the host process rank; this implementation has
	// none, so the value is ProcNull (MPI_HOST).
	KeyHost = CreateKeyval(inheritCopy, nil)
	// KeyIO reports which ranks can perform I/O; every rank can here,
	// so the value is AnySource per the standard's convention (MPI_IO).
	KeyIO = CreateKeyval(inheritCopy, nil)
	// KeyWtimeIsGlobal reports whether Wtime origins are synchronized
	// across ranks (MPI_WTIME_IS_GLOBAL); they are not.
	KeyWtimeIsGlobal = CreateKeyval(inheritCopy, nil)
)

func inheritCopy(v any) (any, bool) { return v, true }

// installEnvAttrs caches the predefined attributes on a world
// communicator.
func installEnvAttrs(world *Intracomm) {
	world.attrs.put(KeyTagUB.id, TagUB)
	world.attrs.put(KeyHost.id, ProcNull)
	world.attrs.put(KeyIO.id, AnySource)
	world.attrs.put(KeyWtimeIsGlobal.id, false)
}

// CompareComms compares two communicators (MPI_Comm_compare): Ident for
// the same object, Congruent for identical groups with different
// contexts, Similar for the same members in a different order, Unequal
// otherwise.
func CompareComms(a, b *Comm) int {
	if a == b {
		return Ident
	}
	if a == nil || b == nil {
		return Unequal
	}
	if a.inter != b.inter {
		return Unequal
	}
	switch GroupCompare(a.Group(), b.Group()) {
	case Ident:
		if a.ptpCtx == b.ptpCtx {
			return Ident
		}
		return Congruent
	case Similar:
		return Similar
	default:
		return Unequal
	}
}

// TopoTest reports the topology attached to a communicator
// (MPI_Topo_test): CartTopology, GraphTopology or Undefined.
func TopoTest(c any) int {
	switch c.(type) {
	case *Cartcomm:
		return CartTopology
	case *Graphcomm:
		return GraphTopology
	default:
		return Undefined
	}
}
