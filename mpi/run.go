package mpi

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"gompi/internal/core"
	"gompi/internal/transport"
	"gompi/internal/transport/shmipc"
)

// LinkEmulation configures artificial per-message costs for benchmark
// calibration (DESIGN.md §2): software cost per message, link latency,
// a bandwidth cap (the 10BaseT model for DM mode) and a staging copy
// (the portable-implementation model). The zero value injects nothing.
type LinkEmulation struct {
	// PerMessage is MPI software overhead charged per frame.
	PerMessage time.Duration
	// Latency is one-way link latency per frame.
	Latency time.Duration
	// BytesPerSec caps throughput (0 = unlimited).
	BytesPerSec float64
	// PerByte charges protocol-stack copy cost per byte.
	PerByte time.Duration
	// StagingCopy adds one full buffer copy per frame on the send path.
	StagingCopy bool
}

func (l LinkEmulation) profile() transport.LinkProfile {
	return transport.LinkProfile{
		PerMessage:  l.PerMessage,
		Latency:     l.Latency,
		BytesPerSec: l.BytesPerSec,
		PerByte:     l.PerByte,
		StagingCopy: l.StagingCopy,
	}
}

// RunOptions configures an in-process SPMD job.
type RunOptions struct {
	// NP is the number of ranks.
	NP int
	// TCP selects the loopback-socket device (the paper's Distributed
	// Memory mode) instead of the in-process shared-memory device
	// (Shared Memory mode).
	TCP bool
	// Device names the transport medium explicitly, overriding TCP:
	// "chan" (in-process channels), "shm" (the cross-process
	// shared-memory segment, exercised in-process) or "tcp" (loopback
	// sockets). Empty defers to the TCP flag.
	Device string
	// EagerLimit overrides the eager/rendezvous threshold in bytes
	// (0 = default, negative = always rendezvous).
	EagerLimit int
	// InboxDepth overrides the per-rank flow-control window in frames.
	InboxDepth int
	// Link injects benchmark link emulation into every device.
	Link LinkEmulation
	// BindingOverhead injects the emulated JNI-crossing cost into
	// every communication call (see Env.SetBindingOverhead).
	BindingOverhead time.Duration
	// Trace arms each rank's flight recorder (see Env.DumpTrace for
	// retrieving the rings; GOMPI_TRACE=1 arms it too, and additionally
	// auto-dumps on Finalize).
	Trace bool
	// WrapDevice, when set, decorates each rank's device after shaping
	// — the hook the fault-injection tests use to interpose
	// transport.Faulty deterministically on one rank.
	WrapDevice func(rank int, dev transport.Device) transport.Device
}

// Run executes fn as an np-rank SPMD job, one goroutine per rank, over
// the in-process shared-memory device — the paper's SM mode. Each rank
// receives its own *Env (the analogue of the Java binding's initialized
// static MPI class). Finalize is called automatically for ranks whose fn
// returns without calling it.
func Run(np int, fn func(*Env) error) error {
	return RunWith(RunOptions{NP: np}, fn)
}

// RunWith is Run with explicit options.
func RunWith(opt RunOptions, fn func(*Env) error) error {
	if opt.NP <= 0 {
		return errf(ErrArg, "RunWith: NP must be positive, got %d", opt.NP)
	}
	devs, err := buildDevices(opt)
	if err != nil {
		return err
	}
	envs := make([]*Env, opt.NP)
	for i := range envs {
		cfg := core.Config{EagerLimit: opt.EagerLimit, Recorder: newRecorder(i, opt.Trace)}
		envs[i] = newEnv(devs[i], cfg)
		envs[i].SetBindingOverhead(opt.BindingOverhead)
	}

	errs := make([]error, opt.NP)
	var wg sync.WaitGroup
	for i := 0; i < opt.NP; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[rank] = fmt.Errorf("rank %d panicked: %v\n%s", rank, r, debug.Stack())
				}
			}()
			errs[rank] = fn(envs[rank])
		}(i)
	}
	wg.Wait()

	failed := false
	for _, e := range errs {
		if e != nil {
			failed = true
			break
		}
	}
	if failed {
		// A failed rank may have left peers out of step; skip the
		// finalize barrier and tear the fabric down directly.
		for _, e := range envs {
			e.finalized.Store(true)
			e.proc.Close()
		}
	} else {
		// Ranks that did not call Finalize themselves get a proper
		// collective shutdown; the barrier needs all ranks running
		// concurrently.
		var fwg sync.WaitGroup
		for i, e := range envs {
			if e.finalized.Load() {
				continue
			}
			fwg.Add(1)
			go func(rank int, env *Env) {
				defer fwg.Done()
				if err := env.Finalize(); err != nil && errs[rank] == nil {
					errs[rank] = err
				}
			}(i, e)
		}
		fwg.Wait()
	}

	var msgs []error
	for i, e := range errs {
		if e != nil {
			msgs = append(msgs, fmt.Errorf("rank %d: %w", i, e))
		}
	}
	return errors.Join(msgs...)
}

func buildDevices(opt RunOptions) ([]transport.Device, error) {
	profile := opt.Link.profile()
	out := make([]transport.Device, opt.NP)
	device := opt.Device
	if device == "" {
		if opt.TCP {
			device = "tcp"
		} else {
			device = "chan"
		}
	}
	switch device {
	case "tcp":
		devs, err := transport.NewLoopbackJob(opt.NP)
		if err != nil {
			return nil, errf(ErrIntern, "loopback job: %v", err)
		}
		for i, d := range devs {
			out[i] = transport.NewShaped(d, profile)
		}
	case "shm":
		devs, err := shmipc.NewProcJob(opt.NP, shmipc.Config{})
		if err != nil {
			return nil, errf(ErrIntern, "shm job: %v", err)
		}
		for i, d := range devs {
			out[i] = transport.NewShaped(d, profile)
		}
	case "chan":
		for i, d := range transport.NewShmJob(opt.NP, opt.InboxDepth) {
			out[i] = transport.NewShaped(d, profile)
		}
	default:
		return nil, errf(ErrArg, "RunWith: unknown device %q (want chan, shm or tcp)", device)
	}
	if opt.WrapDevice != nil {
		for i, d := range out {
			out[i] = opt.WrapDevice(i, d)
		}
	}
	return out, nil
}
