package mpi

import (
	"context"
	"encoding/binary"
	"sort"

	"gompi/internal/coll"
	"gompi/internal/dtype"
)

// Intracomm is a communicator over a single group (paper Fig. 1): it
// adds the collective operations and the communicator/topology
// constructors to Comm.
//
// Every collective comes in three forms backed by one schedule in
// internal/coll: the nonblocking I* variant returning a *CollRequest
// (MPI-3 nonblocking collectives), the *Ctx variant that waits under a
// context.Context with cancellation points inside the algorithm, and
// the classic blocking form — semantically the *Ctx form under
// context.Background(), executed inline on the caller's goroutine so a
// blocking collective pays no runner-goroutine or channel overhead.
type Intracomm struct {
	Comm
}

func newIntracomm(e *Env, group []int, myRank int, ctxBase int32, name string) *Intracomm {
	ic := &Intracomm{}
	e.buildComm(&ic.Comm, group, myRank, ctxBase, name)
	return ic
}

func (c *Intracomm) checkRoot(root int) error {
	if root < 0 || root >= len(c.group) {
		return errf(ErrRoot, "root %d out of range [0,%d)", root, len(c.group))
	}
	return nil
}

func (c *Intracomm) collChecks(d *Datatype, root int) error {
	if err := c.ok(); err != nil {
		return err
	}
	if err := c.checkType(d); err != nil {
		return err
	}
	return c.checkRoot(root)
}

// collPlan is one collective call, prepared (validated and packed) but
// not yet run: the shared substance behind the blocking, *Ctx and I*
// entry points. run executes the schedule inline on the caller's
// goroutine; irun starts it on its own runner; fin deposits the result
// into the caller's receive buffers at completion (nil when this rank
// receives nothing).
type collPlan struct {
	run  func() (any, error)
	irun func() (*coll.Request, error)
	fin  func(res any) error
}

// runColl drives a prepared plan to completion inline: the blocking
// entry points. A plan that failed local validation never reaches the
// schedule layer, so the collective's instance number is skipped to
// stay tag-aligned with members whose matching call proceeded.
func (c *Intracomm) runColl(p collPlan, err error) error {
	if err != nil {
		c.cl.SkipInstance()
		return c.raise(err)
	}
	res, rerr := p.run()
	if rerr != nil {
		return c.raise(mapEngineErr(rerr))
	}
	if p.fin != nil {
		return c.raise(p.fin(res))
	}
	return nil
}

// startColl launches a prepared plan on its own schedule runner: the
// nonblocking entry points. Like runColl, a plan-level failure skips
// the collective's instance number.
func (c *Intracomm) startColl(p collPlan, err error) (*CollRequest, error) {
	if err != nil {
		c.cl.SkipInstance()
		return nil, c.raise(err)
	}
	creq, rerr := p.irun()
	if rerr != nil {
		return nil, c.raise(mapEngineErr(rerr))
	}
	return newCollRequest(&c.Comm, creq, p.fin), nil
}

// SkipColl consumes one collective instance number without
// communicating. Layers that reject a collective call before it reaches
// the runtime (the typed layer's argument validation, custom wrappers)
// call it on the failing member so its instance-derived matching tags
// stay aligned with peers whose matching call proceeded — the same
// bookkeeping the binding itself performs when a call fails local
// validation.
func (c *Intracomm) SkipColl() { c.cl.SkipInstance() }

// Barrier blocks until all members have entered it (MPI_Barrier).
func (c *Intracomm) Barrier() error {
	return c.runColl(c.planBarrier())
}

// BarrierCtx is Barrier with cancellation: if ctx fires while peers are
// still missing, the wait unblocks promptly with ctx's error.
func (c *Intracomm) BarrierCtx(ctx context.Context) error {
	req, err := c.Ibarrier()
	if err != nil {
		return err
	}
	_, err = req.WaitCtx(ctx)
	return err
}

// Ibarrier starts a nonblocking barrier (MPI_Ibarrier): the request
// completes once every member has entered its matching barrier call.
func (c *Intracomm) Ibarrier() (*CollRequest, error) {
	return c.startColl(c.planBarrier())
}

func (c *Intracomm) planBarrier() (collPlan, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return collPlan{}, err
	}
	return collPlan{
		run:  func() (any, error) { return nil, c.cl.Barrier() },
		irun: func() (*coll.Request, error) { return c.cl.Ibarrier(), nil },
	}, nil
}

// Bcast broadcasts the buffer section from root to all members
// (MPI_Bcast).
func (c *Intracomm) Bcast(buf any, offset, count int, d *Datatype, root int) error {
	return c.runColl(c.planBcast(buf, offset, count, d, root))
}

// BcastCtx is Bcast under a context.
func (c *Intracomm) BcastCtx(ctx context.Context, buf any, offset, count int, d *Datatype, root int) error {
	req, err := c.Ibcast(buf, offset, count, d, root)
	if err != nil {
		return err
	}
	_, err = req.WaitCtx(ctx)
	return err
}

// Ibcast starts a nonblocking broadcast (MPI_Ibcast). Non-root buffers
// are filled when the request completes; no buffer may be touched
// before then.
func (c *Intracomm) Ibcast(buf any, offset, count int, d *Datatype, root int) (*CollRequest, error) {
	return c.startColl(c.planBcast(buf, offset, count, d, root))
}

func (c *Intracomm) planBcast(buf any, offset, count int, d *Datatype, root int) (collPlan, error) {
	c.env.enterCall()
	if err := c.collChecks(d, root); err != nil {
		return collPlan{}, err
	}
	var wire []byte
	if c.rank == root {
		var err error
		if wire, err = c.packColl(buf, offset, count, d); err != nil {
			return collPlan{}, err
		}
	}
	p := collPlan{
		run: func() (any, error) {
			res, err := c.cl.Bcast(root, wire)
			return res, err
		},
		irun: func() (*coll.Request, error) { return c.cl.Ibcast(root, wire) },
	}
	if c.rank != root {
		p.fin = func(res any) error {
			if _, err := dtype.Unpack(res.([]byte), buf, offset, count, d.t); err != nil {
				return mapDataErr(err)
			}
			return nil
		}
	}
	return p, nil
}

// blocksFin builds the completion deposit for collectives returning one
// block per rank in a uniform layout: rank r's block lands at
// roffset + r*rcount*extent(rdt).
func blocksFin(recvbuf any, roffset, rcount int, rdt *Datatype) func(res any) error {
	return func(res any) error {
		for r, b := range res.([][]byte) {
			at := roffset + r*rcount*rdt.Extent()
			if _, err := dtype.Unpack(b, recvbuf, at, rcount, rdt.t); err != nil {
				return mapDataErr(err)
			}
		}
		return nil
	}
}

// blocksvFin is blocksFin for the v-variants: rank r's block lands at
// displacement displs[r] with recvcounts[r] items expected.
func blocksvFin(recvbuf any, roffset int, recvcounts, displs []int, rdt *Datatype) func(res any) error {
	return func(res any) error {
		for r, b := range res.([][]byte) {
			at := roffset + displs[r]*rdt.Extent()
			if _, err := dtype.Unpack(b, recvbuf, at, recvcounts[r], rdt.t); err != nil {
				return mapDataErr(err)
			}
		}
		return nil
	}
}

// vLayout marks a call that came through a v-variant entry point and
// carries its per-rank receive or send layout. A non-nil vLayout is
// validated unconditionally where it is significant — nil slices inside
// it are caught as wrong-length, exactly like the classic checks.
type vLayout struct {
	counts, displs []int
}

func (v *vLayout) check(name string, size int) error {
	if len(v.counts) != size || len(v.displs) != size {
		return errf(ErrArg, "%s needs %d counts and displs", name, size)
	}
	return nil
}

// Gather collects equal-size contributions at root (MPI_Gather): member
// r's section lands at recvbuf offset roffset + r*rcount*extent(rdt).
func (c *Intracomm) Gather(
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype, root int,
) error {
	return c.runColl(c.planGather(sendbuf, soffset, scount, sdt, rdt, root, nil,
		blocksFin(recvbuf, roffset, rcount, rdt)))
}

// GatherCtx is Gather under a context.
func (c *Intracomm) GatherCtx(
	ctx context.Context,
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype, root int,
) error {
	req, err := c.Igather(sendbuf, soffset, scount, sdt, recvbuf, roffset, rcount, rdt, root)
	if err != nil {
		return err
	}
	_, err = req.WaitCtx(ctx)
	return err
}

// Igather starts a nonblocking gather (MPI_Igather); root's recvbuf is
// filled when the request completes.
func (c *Intracomm) Igather(
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype, root int,
) (*CollRequest, error) {
	return c.startColl(c.planGather(sendbuf, soffset, scount, sdt, rdt, root, nil,
		blocksFin(recvbuf, roffset, rcount, rdt)))
}

// Gatherv collects varying-size contributions at root (MPI_Gatherv):
// member r contributes scount items and lands at displacement displs[r]
// (in units of rdt's extent) with recvcounts[r] items expected.
func (c *Intracomm) Gatherv(
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset int, recvcounts, displs []int, rdt *Datatype, root int,
) error {
	return c.runColl(c.planGather(sendbuf, soffset, scount, sdt, rdt, root,
		&vLayout{recvcounts, displs}, blocksvFin(recvbuf, roffset, recvcounts, displs, rdt)))
}

// GathervCtx is Gatherv under a context.
func (c *Intracomm) GathervCtx(
	ctx context.Context,
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset int, recvcounts, displs []int, rdt *Datatype, root int,
) error {
	req, err := c.Igatherv(sendbuf, soffset, scount, sdt, recvbuf, roffset, recvcounts, displs, rdt, root)
	if err != nil {
		return err
	}
	_, err = req.WaitCtx(ctx)
	return err
}

// Igatherv starts a nonblocking varying-size gather (MPI_Igatherv).
func (c *Intracomm) Igatherv(
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset int, recvcounts, displs []int, rdt *Datatype, root int,
) (*CollRequest, error) {
	return c.startColl(c.planGather(sendbuf, soffset, scount, sdt, rdt, root,
		&vLayout{recvcounts, displs}, blocksvFin(recvbuf, roffset, recvcounts, displs, rdt)))
}

// planGather is the shared plan of Gather and Gatherv: deposit is the
// root-side unpack; v is the v-variant's receive layout, validated at
// root.
func (c *Intracomm) planGather(
	sendbuf any, soffset, scount int, sdt *Datatype,
	rdt *Datatype, root int, v *vLayout, deposit func(res any) error,
) (collPlan, error) {
	c.env.enterCall()
	if err := c.collChecks(sdt, root); err != nil {
		return collPlan{}, err
	}
	if c.rank == root {
		if err := c.checkType(rdt); err != nil {
			return collPlan{}, err
		}
		if v != nil {
			if err := v.check("Gatherv", c.Size()); err != nil {
				return collPlan{}, err
			}
		}
	}
	mine, err := c.packColl(sendbuf, soffset, scount, sdt)
	if err != nil {
		return collPlan{}, err
	}
	p := collPlan{
		run: func() (any, error) {
			res, err := c.cl.Gather(root, mine)
			return res, err
		},
		irun: func() (*coll.Request, error) { return c.cl.Igather(root, mine) },
	}
	if c.rank == root {
		p.fin = deposit
	}
	return p, nil
}

// Scatter distributes equal-size sections from root (MPI_Scatter):
// member r receives the section at sendbuf offset soffset +
// r*scount*extent(sdt).
func (c *Intracomm) Scatter(
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype, root int,
) error {
	return c.runColl(c.planScatter(sendbuf, soffset, scount, sdt, nil, recvbuf, roffset, rcount, rdt, root))
}

// ScatterCtx is Scatter under a context.
func (c *Intracomm) ScatterCtx(
	ctx context.Context,
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype, root int,
) error {
	req, err := c.Iscatter(sendbuf, soffset, scount, sdt, recvbuf, roffset, rcount, rdt, root)
	if err != nil {
		return err
	}
	_, err = req.WaitCtx(ctx)
	return err
}

// Iscatter starts a nonblocking scatter (MPI_Iscatter).
func (c *Intracomm) Iscatter(
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype, root int,
) (*CollRequest, error) {
	return c.startColl(c.planScatter(sendbuf, soffset, scount, sdt, nil, recvbuf, roffset, rcount, rdt, root))
}

// Scatterv distributes varying-size sections from root (MPI_Scatterv).
func (c *Intracomm) Scatterv(
	sendbuf any, soffset int, sendcounts, displs []int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype, root int,
) error {
	return c.runColl(c.planScatter(sendbuf, soffset, 0, sdt,
		&vLayout{sendcounts, displs}, recvbuf, roffset, rcount, rdt, root))
}

// ScattervCtx is Scatterv under a context.
func (c *Intracomm) ScattervCtx(
	ctx context.Context,
	sendbuf any, soffset int, sendcounts, displs []int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype, root int,
) error {
	req, err := c.Iscatterv(sendbuf, soffset, sendcounts, displs, sdt, recvbuf, roffset, rcount, rdt, root)
	if err != nil {
		return err
	}
	_, err = req.WaitCtx(ctx)
	return err
}

// Iscatterv starts a nonblocking varying-size scatter (MPI_Iscatterv).
func (c *Intracomm) Iscatterv(
	sendbuf any, soffset int, sendcounts, displs []int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype, root int,
) (*CollRequest, error) {
	return c.startColl(c.planScatter(sendbuf, soffset, 0, sdt,
		&vLayout{sendcounts, displs}, recvbuf, roffset, rcount, rdt, root))
}

// planScatter is the shared plan of Scatter (v nil, uniform scount
// sections) and Scatterv (v carries the per-rank send layout,
// significant and validated at root).
func (c *Intracomm) planScatter(
	sendbuf any, soffset, scount int, sdt *Datatype, v *vLayout,
	recvbuf any, roffset, rcount int, rdt *Datatype, root int,
) (collPlan, error) {
	c.env.enterCall()
	if err := c.collChecks(rdt, root); err != nil {
		return collPlan{}, err
	}
	var parts [][]byte
	if c.rank == root {
		if err := c.checkType(sdt); err != nil {
			return collPlan{}, err
		}
		if v != nil {
			if err := v.check("Scatterv", c.Size()); err != nil {
				return collPlan{}, err
			}
		}
		parts = make([][]byte, c.Size())
		for r := range parts {
			at, n := soffset+r*scount*sdt.Extent(), scount
			if v != nil {
				at, n = soffset+v.displs[r]*sdt.Extent(), v.counts[r]
			}
			wire, err := c.packColl(sendbuf, at, n, sdt)
			if err != nil {
				return collPlan{}, err
			}
			parts[r] = wire
		}
	}
	return collPlan{
		run: func() (any, error) {
			res, err := c.cl.Scatter(root, parts)
			return res, err
		},
		irun: func() (*coll.Request, error) { return c.cl.Iscatter(root, parts) },
		fin: func(res any) error {
			if _, err := dtype.Unpack(res.([]byte), recvbuf, roffset, rcount, rdt.t); err != nil {
				return mapDataErr(err)
			}
			return nil
		},
	}, nil
}

// Allgather gathers equal-size contributions at every member
// (MPI_Allgather).
func (c *Intracomm) Allgather(
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype,
) error {
	return c.runColl(c.planAllgather(sendbuf, soffset, scount, sdt, rdt, nil,
		blocksFin(recvbuf, roffset, rcount, rdt)))
}

// AllgatherCtx is Allgather under a context.
func (c *Intracomm) AllgatherCtx(
	ctx context.Context,
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype,
) error {
	req, err := c.Iallgather(sendbuf, soffset, scount, sdt, recvbuf, roffset, rcount, rdt)
	if err != nil {
		return err
	}
	_, err = req.WaitCtx(ctx)
	return err
}

// Iallgather starts a nonblocking allgather (MPI_Iallgather).
func (c *Intracomm) Iallgather(
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype,
) (*CollRequest, error) {
	return c.startColl(c.planAllgather(sendbuf, soffset, scount, sdt, rdt, nil,
		blocksFin(recvbuf, roffset, rcount, rdt)))
}

// Allgatherv gathers varying-size contributions at every member
// (MPI_Allgatherv).
func (c *Intracomm) Allgatherv(
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset int, recvcounts, displs []int, rdt *Datatype,
) error {
	return c.runColl(c.planAllgather(sendbuf, soffset, scount, sdt, rdt,
		&vLayout{recvcounts, displs}, blocksvFin(recvbuf, roffset, recvcounts, displs, rdt)))
}

// AllgathervCtx is Allgatherv under a context.
func (c *Intracomm) AllgathervCtx(
	ctx context.Context,
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset int, recvcounts, displs []int, rdt *Datatype,
) error {
	req, err := c.Iallgatherv(sendbuf, soffset, scount, sdt, recvbuf, roffset, recvcounts, displs, rdt)
	if err != nil {
		return err
	}
	_, err = req.WaitCtx(ctx)
	return err
}

// Iallgatherv starts a nonblocking varying-size allgather
// (MPI_Iallgatherv).
func (c *Intracomm) Iallgatherv(
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset int, recvcounts, displs []int, rdt *Datatype,
) (*CollRequest, error) {
	return c.startColl(c.planAllgather(sendbuf, soffset, scount, sdt, rdt,
		&vLayout{recvcounts, displs}, blocksvFin(recvbuf, roffset, recvcounts, displs, rdt)))
}

// planAllgather is the shared plan of Allgather and Allgatherv; the
// v-variant's receive layout is significant (and validated) on every
// member.
func (c *Intracomm) planAllgather(
	sendbuf any, soffset, scount int, sdt *Datatype,
	rdt *Datatype, v *vLayout, deposit func(res any) error,
) (collPlan, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return collPlan{}, err
	}
	if err := c.checkType(sdt); err != nil {
		return collPlan{}, err
	}
	if err := c.checkType(rdt); err != nil {
		return collPlan{}, err
	}
	if v != nil {
		if err := v.check("Allgatherv", c.Size()); err != nil {
			return collPlan{}, err
		}
	}
	mine, err := c.packColl(sendbuf, soffset, scount, sdt)
	if err != nil {
		return collPlan{}, err
	}
	return collPlan{
		run: func() (any, error) {
			res, err := c.cl.Allgather(mine)
			return res, err
		},
		irun: func() (*coll.Request, error) { return c.cl.Iallgather(mine), nil },
		fin:  deposit,
	}, nil
}

// Alltoall exchanges equal-size sections between all pairs
// (MPI_Alltoall).
func (c *Intracomm) Alltoall(
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype,
) error {
	return c.runColl(c.planAlltoall(sendbuf, soffset, scount, sdt, nil, rdt, nil,
		blocksFin(recvbuf, roffset, rcount, rdt)))
}

// AlltoallCtx is Alltoall under a context.
func (c *Intracomm) AlltoallCtx(
	ctx context.Context,
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype,
) error {
	req, err := c.Ialltoall(sendbuf, soffset, scount, sdt, recvbuf, roffset, rcount, rdt)
	if err != nil {
		return err
	}
	_, err = req.WaitCtx(ctx)
	return err
}

// Ialltoall starts a nonblocking alltoall (MPI_Ialltoall).
func (c *Intracomm) Ialltoall(
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype,
) (*CollRequest, error) {
	return c.startColl(c.planAlltoall(sendbuf, soffset, scount, sdt, nil, rdt, nil,
		blocksFin(recvbuf, roffset, rcount, rdt)))
}

// Alltoallv exchanges varying-size sections between all pairs
// (MPI_Alltoallv).
func (c *Intracomm) Alltoallv(
	sendbuf any, soffset int, sendcounts, sdispls []int, sdt *Datatype,
	recvbuf any, roffset int, recvcounts, rdispls []int, rdt *Datatype,
) error {
	return c.runColl(c.planAlltoall(sendbuf, soffset, 0, sdt, &vLayout{sendcounts, sdispls},
		rdt, &vLayout{recvcounts, rdispls}, blocksvFin(recvbuf, roffset, recvcounts, rdispls, rdt)))
}

// AlltoallvCtx is Alltoallv under a context.
func (c *Intracomm) AlltoallvCtx(
	ctx context.Context,
	sendbuf any, soffset int, sendcounts, sdispls []int, sdt *Datatype,
	recvbuf any, roffset int, recvcounts, rdispls []int, rdt *Datatype,
) error {
	req, err := c.Ialltoallv(sendbuf, soffset, sendcounts, sdispls, sdt, recvbuf, roffset, recvcounts, rdispls, rdt)
	if err != nil {
		return err
	}
	_, err = req.WaitCtx(ctx)
	return err
}

// Ialltoallv starts a nonblocking varying-size alltoall
// (MPI_Ialltoallv).
func (c *Intracomm) Ialltoallv(
	sendbuf any, soffset int, sendcounts, sdispls []int, sdt *Datatype,
	recvbuf any, roffset int, recvcounts, rdispls []int, rdt *Datatype,
) (*CollRequest, error) {
	return c.startColl(c.planAlltoall(sendbuf, soffset, 0, sdt, &vLayout{sendcounts, sdispls},
		rdt, &vLayout{recvcounts, rdispls}, blocksvFin(recvbuf, roffset, recvcounts, rdispls, rdt)))
}

// planAlltoall is the shared plan of Alltoall (uniform scount sections;
// sendV/recvV nil) and Alltoallv (per-rank layouts on both sides, both
// validated on every member).
func (c *Intracomm) planAlltoall(
	sendbuf any, soffset, scount int, sdt *Datatype, sendV *vLayout,
	rdt *Datatype, recvV *vLayout, deposit func(res any) error,
) (collPlan, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return collPlan{}, err
	}
	if err := c.checkType(sdt); err != nil {
		return collPlan{}, err
	}
	if err := c.checkType(rdt); err != nil {
		return collPlan{}, err
	}
	n := c.Size()
	if sendV != nil {
		if sendV.check("", n) != nil || recvV.check("", n) != nil {
			return collPlan{}, errf(ErrArg, "Alltoallv needs %d counts and displacements on both sides", n)
		}
	}
	parts := make([][]byte, n)
	for r := range parts {
		at, cnt := soffset+r*scount*sdt.Extent(), scount
		if sendV != nil {
			at, cnt = soffset+sendV.displs[r]*sdt.Extent(), sendV.counts[r]
		}
		wire, err := c.packColl(sendbuf, at, cnt, sdt)
		if err != nil {
			return collPlan{}, err
		}
		parts[r] = wire
	}
	return collPlan{
		run: func() (any, error) {
			res, err := c.cl.Alltoall(parts)
			return res, err
		},
		irun: func() (*coll.Request, error) { return c.cl.Ialltoall(parts) },
		fin:  deposit,
	}, nil
}

// Reduce folds count items with op, leaving the result at root
// (MPI_Reduce; mpiJava signature with distinct send and receive offsets).
func (c *Intracomm) Reduce(
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op, root int,
) error {
	return c.runColl(c.planReduce(sendbuf, soffset, recvbuf, roffset, count, d, op, root))
}

// ReduceCtx is Reduce under a context.
func (c *Intracomm) ReduceCtx(
	ctx context.Context,
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op, root int,
) error {
	req, err := c.Ireduce(sendbuf, soffset, recvbuf, roffset, count, d, op, root)
	if err != nil {
		return err
	}
	_, err = req.WaitCtx(ctx)
	return err
}

// Ireduce starts a nonblocking reduction (MPI_Ireduce); root's recvbuf
// is filled when the request completes.
func (c *Intracomm) Ireduce(
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op, root int,
) (*CollRequest, error) {
	return c.startColl(c.planReduce(sendbuf, soffset, recvbuf, roffset, count, d, op, root))
}

func (c *Intracomm) planReduce(
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op, root int,
) (collPlan, error) {
	c.env.enterCall()
	if err := c.collChecks(d, root); err != nil {
		return collPlan{}, err
	}
	if err := checkOp(op, d); err != nil {
		return collPlan{}, err
	}
	dense, err := dtype.Extract(sendbuf, soffset, count, d.t)
	if err != nil {
		return collPlan{}, mapDataErr(err)
	}
	p := collPlan{
		run:  func() (any, error) { return c.cl.Reduce(root, dense, op.op) },
		irun: func() (*coll.Request, error) { return c.cl.Ireduce(root, dense, op.op) },
	}
	if c.rank == root {
		p.fin = depositFin(recvbuf, roffset, count, d)
	}
	return p, nil
}

// depositFin builds the completion deposit shared by the reduction
// family: the folded dense result lands in the receive section.
func depositFin(recvbuf any, roffset, count int, d *Datatype) func(res any) error {
	return func(res any) error {
		if err := dtype.Deposit(res, recvbuf, roffset, count, d.t); err != nil {
			return mapDataErr(err)
		}
		return nil
	}
}

// Allreduce folds count items with op, leaving the result everywhere
// (MPI_Allreduce).
func (c *Intracomm) Allreduce(
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op,
) error {
	return c.runColl(c.planAllreduce(sendbuf, soffset, recvbuf, roffset, count, d, op))
}

// AllreduceCtx is Allreduce under a context.
func (c *Intracomm) AllreduceCtx(
	ctx context.Context,
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op,
) error {
	req, err := c.Iallreduce(sendbuf, soffset, recvbuf, roffset, count, d, op)
	if err != nil {
		return err
	}
	_, err = req.WaitCtx(ctx)
	return err
}

// Iallreduce starts a nonblocking all-reduction (MPI_Iallreduce); every
// member's recvbuf is filled when the request completes.
func (c *Intracomm) Iallreduce(
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op,
) (*CollRequest, error) {
	return c.startColl(c.planAllreduce(sendbuf, soffset, recvbuf, roffset, count, d, op))
}

func (c *Intracomm) planAllreduce(
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op,
) (collPlan, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return collPlan{}, err
	}
	if err := c.checkType(d); err != nil {
		return collPlan{}, err
	}
	if err := checkOp(op, d); err != nil {
		return collPlan{}, err
	}
	dense, err := dtype.Extract(sendbuf, soffset, count, d.t)
	if err != nil {
		return collPlan{}, mapDataErr(err)
	}
	return collPlan{
		run:  func() (any, error) { return c.cl.Allreduce(dense, op.op) },
		irun: func() (*coll.Request, error) { return c.cl.Iallreduce(dense, op.op), nil },
		fin:  depositFin(recvbuf, roffset, count, d),
	}, nil
}

// ReduceScatter folds with op and scatters segments of the result:
// member r receives recvcounts[r] items (MPI_Reduce_scatter).
func (c *Intracomm) ReduceScatter(
	sendbuf any, soffset int, recvbuf any, roffset int,
	recvcounts []int, d *Datatype, op *Op,
) error {
	return c.runColl(c.planReduceScatter(sendbuf, soffset, recvbuf, roffset, recvcounts, d, op))
}

// ReduceScatterCtx is ReduceScatter under a context.
func (c *Intracomm) ReduceScatterCtx(
	ctx context.Context,
	sendbuf any, soffset int, recvbuf any, roffset int,
	recvcounts []int, d *Datatype, op *Op,
) error {
	req, err := c.IreduceScatter(sendbuf, soffset, recvbuf, roffset, recvcounts, d, op)
	if err != nil {
		return err
	}
	_, err = req.WaitCtx(ctx)
	return err
}

// IreduceScatter starts a nonblocking fold-and-scatter
// (MPI_Ireduce_scatter).
func (c *Intracomm) IreduceScatter(
	sendbuf any, soffset int, recvbuf any, roffset int,
	recvcounts []int, d *Datatype, op *Op,
) (*CollRequest, error) {
	return c.startColl(c.planReduceScatter(sendbuf, soffset, recvbuf, roffset, recvcounts, d, op))
}

func (c *Intracomm) planReduceScatter(
	sendbuf any, soffset int, recvbuf any, roffset int,
	recvcounts []int, d *Datatype, op *Op,
) (collPlan, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return collPlan{}, err
	}
	if err := c.checkType(d); err != nil {
		return collPlan{}, err
	}
	if err := checkOp(op, d); err != nil {
		return collPlan{}, err
	}
	if len(recvcounts) != c.Size() {
		return collPlan{}, errf(ErrArg, "ReduceScatter needs %d recvcounts", c.Size())
	}
	total := 0
	elemCounts := make([]int, len(recvcounts))
	for i, n := range recvcounts {
		if n < 0 {
			return collPlan{}, errf(ErrCount, "negative recvcount %d", n)
		}
		total += n
		elemCounts[i] = n * d.Size()
	}
	dense, err := dtype.Extract(sendbuf, soffset, total, d.t)
	if err != nil {
		return collPlan{}, mapDataErr(err)
	}
	return collPlan{
		run:  func() (any, error) { return c.cl.ReduceScatter(dense, elemCounts, op.op) },
		irun: func() (*coll.Request, error) { return c.cl.IreduceScatter(dense, elemCounts, op.op) },
		fin:  depositFin(recvbuf, roffset, recvcounts[c.rank], d),
	}, nil
}

// Scan computes the inclusive prefix reduction in rank order (MPI_Scan).
func (c *Intracomm) Scan(
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op,
) error {
	return c.runColl(c.planScan(false, sendbuf, soffset, recvbuf, roffset, count, d, op))
}

// ScanCtx is Scan under a context.
func (c *Intracomm) ScanCtx(
	ctx context.Context,
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op,
) error {
	req, err := c.Iscan(sendbuf, soffset, recvbuf, roffset, count, d, op)
	if err != nil {
		return err
	}
	_, err = req.WaitCtx(ctx)
	return err
}

// Iscan starts a nonblocking inclusive prefix reduction (MPI_Iscan).
func (c *Intracomm) Iscan(
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op,
) (*CollRequest, error) {
	return c.startColl(c.planScan(false, sendbuf, soffset, recvbuf, roffset, count, d, op))
}

// Exscan computes the exclusive prefix reduction in rank order — one of
// the MPI-2 additions the paper plans to fold in (§5.3). Member r
// receives op(x_0, …, x_{r-1}); rank 0's receive buffer is untouched
// (its result is undefined, per the standard).
func (c *Intracomm) Exscan(
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op,
) error {
	return c.runColl(c.planScan(true, sendbuf, soffset, recvbuf, roffset, count, d, op))
}

// ExscanCtx is Exscan under a context.
func (c *Intracomm) ExscanCtx(
	ctx context.Context,
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op,
) error {
	req, err := c.Iexscan(sendbuf, soffset, recvbuf, roffset, count, d, op)
	if err != nil {
		return err
	}
	_, err = req.WaitCtx(ctx)
	return err
}

// Iexscan starts a nonblocking exclusive prefix reduction
// (MPI_Iexscan).
func (c *Intracomm) Iexscan(
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op,
) (*CollRequest, error) {
	return c.startColl(c.planScan(true, sendbuf, soffset, recvbuf, roffset, count, d, op))
}

// planScan is the shared plan of Scan and Exscan; exclusive selects the
// variant. Rank 0's Exscan result is undefined and its buffer is left
// untouched (the schedule reports a nil result there).
func (c *Intracomm) planScan(
	exclusive bool,
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op,
) (collPlan, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return collPlan{}, err
	}
	if err := c.checkType(d); err != nil {
		return collPlan{}, err
	}
	if err := checkOp(op, d); err != nil {
		return collPlan{}, err
	}
	dense, err := dtype.Extract(sendbuf, soffset, count, d.t)
	if err != nil {
		return collPlan{}, mapDataErr(err)
	}
	deposit := depositFin(recvbuf, roffset, count, d)
	return collPlan{
		run: func() (any, error) {
			if exclusive {
				return c.cl.Exscan(dense, op.op)
			}
			return c.cl.Scan(dense, op.op)
		},
		irun: func() (*coll.Request, error) {
			if exclusive {
				return c.cl.Iexscan(dense, op.op), nil
			}
			return c.cl.Iscan(dense, op.op), nil
		},
		fin: func(res any) error {
			if res == nil {
				return nil // Exscan at rank 0
			}
			return deposit(res)
		},
	}, nil
}

// Dup duplicates the communicator with fresh contexts (MPI_Comm_dup).
// Collective over the communicator.
func (c *Intracomm) Dup() (*Intracomm, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return nil, c.raise(err)
	}
	base, err := c.cl.AgreeContextBase()
	if err != nil {
		return nil, c.raise(mapEngineErr(err))
	}
	dup := newIntracomm(c.env, c.group, c.rank, base, c.name+".dup")
	c.copyAttrsTo(&dup.Comm)
	return dup, nil
}

// Split partitions the communicator by colour, ordering each new group
// by (key, old rank); colour Undefined yields a nil communicator
// (MPI_Comm_split). Collective over the communicator.
func (c *Intracomm) Split(colour, key int) (*Intracomm, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return nil, c.raise(err)
	}
	if colour < 0 && colour != Undefined {
		return nil, c.raise(errf(ErrArg, "negative colour %d", colour))
	}
	var enc [8]byte
	binary.LittleEndian.PutUint32(enc[0:], uint32(int32(colour)))
	binary.LittleEndian.PutUint32(enc[4:], uint32(int32(key)))
	all, err := c.cl.Allgather(enc[:])
	if err != nil {
		return nil, c.raise(mapEngineErr(err))
	}
	base, err := c.cl.AgreeContextBase()
	if err != nil {
		return nil, c.raise(mapEngineErr(err))
	}
	if colour == Undefined {
		return nil, nil
	}
	type member struct{ key, oldRank int }
	var members []member
	for r, b := range all {
		col := int(int32(binary.LittleEndian.Uint32(b[0:])))
		k := int(int32(binary.LittleEndian.Uint32(b[4:])))
		if col == colour {
			members = append(members, member{key: k, oldRank: r})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].oldRank < members[j].oldRank
	})
	group := make([]int, len(members))
	myRank := -1
	for i, m := range members {
		group[i] = c.group[m.oldRank]
		if m.oldRank == c.rank {
			myRank = i
		}
	}
	return newIntracomm(c.env, group, myRank, base, c.name+".split"), nil
}

// Create builds a communicator over a subgroup; members get the new
// communicator, non-members nil (MPI_Comm_create). Collective over the
// parent.
func (c *Intracomm) Create(g *Group) (*Intracomm, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return nil, c.raise(err)
	}
	if g == nil {
		return nil, c.raise(errf(ErrGroup, "nil group"))
	}
	base, err := c.cl.AgreeContextBase()
	if err != nil {
		return nil, c.raise(mapEngineErr(err))
	}
	parent := make(map[int]bool, len(c.group))
	for _, w := range c.group {
		parent[w] = true
	}
	for _, w := range g.ranks {
		if !parent[w] {
			return nil, c.raise(errf(ErrGroup, "group is not a subset of the communicator"))
		}
	}
	me := c.env.proc.Rank()
	myRank := -1
	for i, w := range g.ranks {
		if w == me {
			myRank = i
		}
	}
	if myRank < 0 {
		return nil, nil
	}
	group := append([]int(nil), g.ranks...)
	return newIntracomm(c.env, group, myRank, base, c.name+".create"), nil
}
