package mpi

import (
	"encoding/binary"
	"sort"

	"gompi/internal/dtype"
)

// Intracomm is a communicator over a single group (paper Fig. 1): it
// adds the collective operations and the communicator/topology
// constructors to Comm.
type Intracomm struct {
	Comm
}

func newIntracomm(e *Env, group []int, myRank int, ctxBase int32, name string) *Intracomm {
	return &Intracomm{Comm: *e.buildComm(group, myRank, ctxBase, name)}
}

func (c *Intracomm) checkRoot(root int) error {
	if root < 0 || root >= len(c.group) {
		return errf(ErrRoot, "root %d out of range [0,%d)", root, len(c.group))
	}
	return nil
}

func (c *Intracomm) collChecks(d *Datatype, root int) error {
	if err := c.ok(); err != nil {
		return err
	}
	if err := c.checkType(d); err != nil {
		return err
	}
	return c.checkRoot(root)
}

// Barrier blocks until all members have entered it (MPI_Barrier).
func (c *Intracomm) Barrier() error {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return c.raise(err)
	}
	if err := c.cl.Barrier(); err != nil {
		return c.raise(errf(ErrIntern, "%v", err))
	}
	return nil
}

// Bcast broadcasts the buffer section from root to all members
// (MPI_Bcast).
func (c *Intracomm) Bcast(buf any, offset, count int, d *Datatype, root int) error {
	c.env.enterCall()
	if err := c.collChecks(d, root); err != nil {
		return c.raise(err)
	}
	var wire []byte
	var err error
	if c.rank == root {
		if wire, err = c.packColl(buf, offset, count, d); err != nil {
			return c.raise(err)
		}
	}
	wire, err = c.cl.Bcast(root, wire)
	if err != nil {
		return c.raise(errf(ErrIntern, "%v", err))
	}
	if c.rank != root {
		if _, err := dtype.Unpack(wire, buf, offset, count, d.t); err != nil {
			return c.raise(mapDataErr(err))
		}
	}
	return nil
}

// Gather collects equal-size contributions at root (MPI_Gather): member
// r's section lands at recvbuf offset roffset + r*rcount*extent(rdt).
func (c *Intracomm) Gather(
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype, root int,
) error {
	c.env.enterCall()
	if err := c.collChecks(sdt, root); err != nil {
		return c.raise(err)
	}
	mine, err := c.packColl(sendbuf, soffset, scount, sdt)
	if err != nil {
		return c.raise(err)
	}
	blocks, err := c.cl.Gather(root, mine)
	if err != nil {
		return c.raise(errf(ErrIntern, "%v", err))
	}
	if c.rank != root {
		return nil
	}
	if err := c.checkType(rdt); err != nil {
		return c.raise(err)
	}
	for r, b := range blocks {
		at := roffset + r*rcount*rdt.Extent()
		if _, err := dtype.Unpack(b, recvbuf, at, rcount, rdt.t); err != nil {
			return c.raise(mapDataErr(err))
		}
	}
	return nil
}

// Gatherv collects varying-size contributions at root (MPI_Gatherv):
// member r contributes scount items and lands at displacement displs[r]
// (in units of rdt's extent) with recvcounts[r] items expected.
func (c *Intracomm) Gatherv(
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset int, recvcounts, displs []int, rdt *Datatype, root int,
) error {
	c.env.enterCall()
	if err := c.collChecks(sdt, root); err != nil {
		return c.raise(err)
	}
	mine, err := c.packColl(sendbuf, soffset, scount, sdt)
	if err != nil {
		return c.raise(err)
	}
	blocks, err := c.cl.Gather(root, mine)
	if err != nil {
		return c.raise(errf(ErrIntern, "%v", err))
	}
	if c.rank != root {
		return nil
	}
	if err := c.checkType(rdt); err != nil {
		return c.raise(err)
	}
	if len(recvcounts) != c.Size() || len(displs) != c.Size() {
		return c.raise(errf(ErrArg, "Gatherv needs %d recvcounts and displs", c.Size()))
	}
	for r, b := range blocks {
		at := roffset + displs[r]*rdt.Extent()
		if _, err := dtype.Unpack(b, recvbuf, at, recvcounts[r], rdt.t); err != nil {
			return c.raise(mapDataErr(err))
		}
	}
	return nil
}

// Scatter distributes equal-size sections from root (MPI_Scatter):
// member r receives the section at sendbuf offset soffset +
// r*scount*extent(sdt).
func (c *Intracomm) Scatter(
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype, root int,
) error {
	c.env.enterCall()
	if err := c.collChecks(rdt, root); err != nil {
		return c.raise(err)
	}
	var parts [][]byte
	if c.rank == root {
		if err := c.checkType(sdt); err != nil {
			return c.raise(err)
		}
		parts = make([][]byte, c.Size())
		for r := range parts {
			at := soffset + r*scount*sdt.Extent()
			wire, err := c.packColl(sendbuf, at, scount, sdt)
			if err != nil {
				return c.raise(err)
			}
			parts[r] = wire
		}
	}
	mine, err := c.cl.Scatter(root, parts)
	if err != nil {
		return c.raise(errf(ErrIntern, "%v", err))
	}
	if _, err := dtype.Unpack(mine, recvbuf, roffset, rcount, rdt.t); err != nil {
		return c.raise(mapDataErr(err))
	}
	return nil
}

// Scatterv distributes varying-size sections from root (MPI_Scatterv).
func (c *Intracomm) Scatterv(
	sendbuf any, soffset int, sendcounts, displs []int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype, root int,
) error {
	c.env.enterCall()
	if err := c.collChecks(rdt, root); err != nil {
		return c.raise(err)
	}
	var parts [][]byte
	if c.rank == root {
		if err := c.checkType(sdt); err != nil {
			return c.raise(err)
		}
		if len(sendcounts) != c.Size() || len(displs) != c.Size() {
			return c.raise(errf(ErrArg, "Scatterv needs %d sendcounts and displs", c.Size()))
		}
		parts = make([][]byte, c.Size())
		for r := range parts {
			at := soffset + displs[r]*sdt.Extent()
			wire, err := c.packColl(sendbuf, at, sendcounts[r], sdt)
			if err != nil {
				return c.raise(err)
			}
			parts[r] = wire
		}
	}
	mine, err := c.cl.Scatter(root, parts)
	if err != nil {
		return c.raise(errf(ErrIntern, "%v", err))
	}
	if _, err := dtype.Unpack(mine, recvbuf, roffset, rcount, rdt.t); err != nil {
		return c.raise(mapDataErr(err))
	}
	return nil
}

// Allgather gathers equal-size contributions at every member
// (MPI_Allgather).
func (c *Intracomm) Allgather(
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype,
) error {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return c.raise(err)
	}
	if err := c.checkType(sdt); err != nil {
		return c.raise(err)
	}
	if err := c.checkType(rdt); err != nil {
		return c.raise(err)
	}
	mine, err := c.packColl(sendbuf, soffset, scount, sdt)
	if err != nil {
		return c.raise(err)
	}
	blocks, err := c.cl.Allgather(mine)
	if err != nil {
		return c.raise(errf(ErrIntern, "%v", err))
	}
	for r, b := range blocks {
		at := roffset + r*rcount*rdt.Extent()
		if _, err := dtype.Unpack(b, recvbuf, at, rcount, rdt.t); err != nil {
			return c.raise(mapDataErr(err))
		}
	}
	return nil
}

// Allgatherv gathers varying-size contributions at every member
// (MPI_Allgatherv).
func (c *Intracomm) Allgatherv(
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset int, recvcounts, displs []int, rdt *Datatype,
) error {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return c.raise(err)
	}
	if err := c.checkType(sdt); err != nil {
		return c.raise(err)
	}
	if err := c.checkType(rdt); err != nil {
		return c.raise(err)
	}
	if len(recvcounts) != c.Size() || len(displs) != c.Size() {
		return c.raise(errf(ErrArg, "Allgatherv needs %d recvcounts and displs", c.Size()))
	}
	mine, err := c.packColl(sendbuf, soffset, scount, sdt)
	if err != nil {
		return c.raise(err)
	}
	blocks, err := c.cl.Allgather(mine)
	if err != nil {
		return c.raise(errf(ErrIntern, "%v", err))
	}
	for r, b := range blocks {
		at := roffset + displs[r]*rdt.Extent()
		if _, err := dtype.Unpack(b, recvbuf, at, recvcounts[r], rdt.t); err != nil {
			return c.raise(mapDataErr(err))
		}
	}
	return nil
}

// Alltoall exchanges equal-size sections between all pairs
// (MPI_Alltoall).
func (c *Intracomm) Alltoall(
	sendbuf any, soffset, scount int, sdt *Datatype,
	recvbuf any, roffset, rcount int, rdt *Datatype,
) error {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return c.raise(err)
	}
	if err := c.checkType(sdt); err != nil {
		return c.raise(err)
	}
	if err := c.checkType(rdt); err != nil {
		return c.raise(err)
	}
	parts := make([][]byte, c.Size())
	for r := range parts {
		at := soffset + r*scount*sdt.Extent()
		wire, err := c.packColl(sendbuf, at, scount, sdt)
		if err != nil {
			return c.raise(err)
		}
		parts[r] = wire
	}
	blocks, err := c.cl.Alltoall(parts)
	if err != nil {
		return c.raise(errf(ErrIntern, "%v", err))
	}
	for r, b := range blocks {
		at := roffset + r*rcount*rdt.Extent()
		if _, err := dtype.Unpack(b, recvbuf, at, rcount, rdt.t); err != nil {
			return c.raise(mapDataErr(err))
		}
	}
	return nil
}

// Alltoallv exchanges varying-size sections between all pairs
// (MPI_Alltoallv).
func (c *Intracomm) Alltoallv(
	sendbuf any, soffset int, sendcounts, sdispls []int, sdt *Datatype,
	recvbuf any, roffset int, recvcounts, rdispls []int, rdt *Datatype,
) error {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return c.raise(err)
	}
	if err := c.checkType(sdt); err != nil {
		return c.raise(err)
	}
	if err := c.checkType(rdt); err != nil {
		return c.raise(err)
	}
	n := c.Size()
	if len(sendcounts) != n || len(sdispls) != n || len(recvcounts) != n || len(rdispls) != n {
		return c.raise(errf(ErrArg, "Alltoallv needs %d counts and displacements on both sides", n))
	}
	parts := make([][]byte, n)
	for r := range parts {
		at := soffset + sdispls[r]*sdt.Extent()
		wire, err := c.packColl(sendbuf, at, sendcounts[r], sdt)
		if err != nil {
			return c.raise(err)
		}
		parts[r] = wire
	}
	blocks, err := c.cl.Alltoall(parts)
	if err != nil {
		return c.raise(errf(ErrIntern, "%v", err))
	}
	for r, b := range blocks {
		at := roffset + rdispls[r]*rdt.Extent()
		if _, err := dtype.Unpack(b, recvbuf, at, recvcounts[r], rdt.t); err != nil {
			return c.raise(mapDataErr(err))
		}
	}
	return nil
}

// Reduce folds count items with op, leaving the result at root
// (MPI_Reduce; mpiJava signature with distinct send and receive offsets).
func (c *Intracomm) Reduce(
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op, root int,
) error {
	c.env.enterCall()
	if err := c.collChecks(d, root); err != nil {
		return c.raise(err)
	}
	if err := checkOp(op, d); err != nil {
		return c.raise(err)
	}
	dense, err := dtype.Extract(sendbuf, soffset, count, d.t)
	if err != nil {
		return c.raise(mapDataErr(err))
	}
	res, err := c.cl.Reduce(root, dense, op.op)
	if err != nil {
		return c.raise(errf(ErrIntern, "%v", err))
	}
	if c.rank == root {
		if err := dtype.Deposit(res, recvbuf, roffset, count, d.t); err != nil {
			return c.raise(mapDataErr(err))
		}
	}
	return nil
}

// Allreduce folds count items with op, leaving the result everywhere
// (MPI_Allreduce).
func (c *Intracomm) Allreduce(
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op,
) error {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return c.raise(err)
	}
	if err := c.checkType(d); err != nil {
		return c.raise(err)
	}
	if err := checkOp(op, d); err != nil {
		return c.raise(err)
	}
	dense, err := dtype.Extract(sendbuf, soffset, count, d.t)
	if err != nil {
		return c.raise(mapDataErr(err))
	}
	res, err := c.cl.Allreduce(dense, op.op)
	if err != nil {
		return c.raise(errf(ErrIntern, "%v", err))
	}
	if err := dtype.Deposit(res, recvbuf, roffset, count, d.t); err != nil {
		return c.raise(mapDataErr(err))
	}
	return nil
}

// ReduceScatter folds with op and scatters segments of the result:
// member r receives recvcounts[r] items (MPI_Reduce_scatter).
func (c *Intracomm) ReduceScatter(
	sendbuf any, soffset int, recvbuf any, roffset int,
	recvcounts []int, d *Datatype, op *Op,
) error {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return c.raise(err)
	}
	if err := c.checkType(d); err != nil {
		return c.raise(err)
	}
	if err := checkOp(op, d); err != nil {
		return c.raise(err)
	}
	if len(recvcounts) != c.Size() {
		return c.raise(errf(ErrArg, "ReduceScatter needs %d recvcounts", c.Size()))
	}
	total := 0
	elemCounts := make([]int, len(recvcounts))
	for i, n := range recvcounts {
		if n < 0 {
			return c.raise(errf(ErrCount, "negative recvcount %d", n))
		}
		total += n
		elemCounts[i] = n * d.Size()
	}
	dense, err := dtype.Extract(sendbuf, soffset, total, d.t)
	if err != nil {
		return c.raise(mapDataErr(err))
	}
	res, err := c.cl.ReduceScatter(dense, elemCounts, op.op)
	if err != nil {
		return c.raise(errf(ErrIntern, "%v", err))
	}
	if err := dtype.Deposit(res, recvbuf, roffset, recvcounts[c.rank], d.t); err != nil {
		return c.raise(mapDataErr(err))
	}
	return nil
}

// Scan computes the inclusive prefix reduction in rank order (MPI_Scan).
func (c *Intracomm) Scan(
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op,
) error {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return c.raise(err)
	}
	if err := c.checkType(d); err != nil {
		return c.raise(err)
	}
	if err := checkOp(op, d); err != nil {
		return c.raise(err)
	}
	dense, err := dtype.Extract(sendbuf, soffset, count, d.t)
	if err != nil {
		return c.raise(mapDataErr(err))
	}
	res, err := c.cl.Scan(dense, op.op)
	if err != nil {
		return c.raise(errf(ErrIntern, "%v", err))
	}
	if err := dtype.Deposit(res, recvbuf, roffset, count, d.t); err != nil {
		return c.raise(mapDataErr(err))
	}
	return nil
}

// Dup duplicates the communicator with fresh contexts (MPI_Comm_dup).
// Collective over the communicator.
func (c *Intracomm) Dup() (*Intracomm, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return nil, c.raise(err)
	}
	base, err := c.cl.AgreeContextBase()
	if err != nil {
		return nil, c.raise(errf(ErrIntern, "%v", err))
	}
	dup := newIntracomm(c.env, c.group, c.rank, base, c.name+".dup")
	c.copyAttrsTo(&dup.Comm)
	return dup, nil
}

// Split partitions the communicator by colour, ordering each new group
// by (key, old rank); colour Undefined yields a nil communicator
// (MPI_Comm_split). Collective over the communicator.
func (c *Intracomm) Split(colour, key int) (*Intracomm, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return nil, c.raise(err)
	}
	if colour < 0 && colour != Undefined {
		return nil, c.raise(errf(ErrArg, "negative colour %d", colour))
	}
	var enc [8]byte
	binary.LittleEndian.PutUint32(enc[0:], uint32(int32(colour)))
	binary.LittleEndian.PutUint32(enc[4:], uint32(int32(key)))
	all, err := c.cl.Allgather(enc[:])
	if err != nil {
		return nil, c.raise(errf(ErrIntern, "%v", err))
	}
	base, err := c.cl.AgreeContextBase()
	if err != nil {
		return nil, c.raise(errf(ErrIntern, "%v", err))
	}
	if colour == Undefined {
		return nil, nil
	}
	type member struct{ key, oldRank int }
	var members []member
	for r, b := range all {
		col := int(int32(binary.LittleEndian.Uint32(b[0:])))
		k := int(int32(binary.LittleEndian.Uint32(b[4:])))
		if col == colour {
			members = append(members, member{key: k, oldRank: r})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].oldRank < members[j].oldRank
	})
	group := make([]int, len(members))
	myRank := -1
	for i, m := range members {
		group[i] = c.group[m.oldRank]
		if m.oldRank == c.rank {
			myRank = i
		}
	}
	return newIntracomm(c.env, group, myRank, base, c.name+".split"), nil
}

// Create builds a communicator over a subgroup; members get the new
// communicator, non-members nil (MPI_Comm_create). Collective over the
// parent.
func (c *Intracomm) Create(g *Group) (*Intracomm, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return nil, c.raise(err)
	}
	if g == nil {
		return nil, c.raise(errf(ErrGroup, "nil group"))
	}
	base, err := c.cl.AgreeContextBase()
	if err != nil {
		return nil, c.raise(errf(ErrIntern, "%v", err))
	}
	parent := make(map[int]bool, len(c.group))
	for _, w := range c.group {
		parent[w] = true
	}
	for _, w := range g.ranks {
		if !parent[w] {
			return nil, c.raise(errf(ErrGroup, "group is not a subset of the communicator"))
		}
	}
	me := c.env.proc.Rank()
	myRank := -1
	for i, w := range g.ranks {
		if w == me {
			myRank = i
		}
	}
	if myRank < 0 {
		return nil, nil
	}
	group := append([]int(nil), g.ranks...)
	return newIntracomm(c.env, group, myRank, base, c.name+".create"), nil
}

// Exscan computes the exclusive prefix reduction in rank order — one of
// the MPI-2 additions the paper plans to fold in (§5.3). Member r
// receives op(x_0, …, x_{r-1}); rank 0's receive buffer is untouched
// (its result is undefined, per the standard).
func (c *Intracomm) Exscan(
	sendbuf any, soffset int, recvbuf any, roffset int,
	count int, d *Datatype, op *Op,
) error {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return c.raise(err)
	}
	if err := c.checkType(d); err != nil {
		return c.raise(err)
	}
	if err := checkOp(op, d); err != nil {
		return c.raise(err)
	}
	dense, err := dtype.Extract(sendbuf, soffset, count, d.t)
	if err != nil {
		return c.raise(mapDataErr(err))
	}
	res, err := c.cl.Exscan(dense, op.op)
	if err != nil {
		return c.raise(errf(ErrIntern, "%v", err))
	}
	if res != nil {
		if err := dtype.Deposit(res, recvbuf, roffset, count, d.t); err != nil {
			return c.raise(mapDataErr(err))
		}
	}
	return nil
}
