package mpi_test

import (
	"strings"
	"testing"

	"gompi/mpi"
)

// TestErrClassStrings round-trips every error class through String():
// each class must render its distinct MPI_* name, through the full
// MPI-1 table and the MPI-2 parallel I/O additions.
func TestErrClassStrings(t *testing.T) {
	want := map[mpi.ErrClass]string{
		mpi.ErrSuccess:  "MPI_SUCCESS",
		mpi.ErrBuffer:   "MPI_ERR_BUFFER",
		mpi.ErrCount:    "MPI_ERR_COUNT",
		mpi.ErrType:     "MPI_ERR_TYPE",
		mpi.ErrTag:      "MPI_ERR_TAG",
		mpi.ErrComm:     "MPI_ERR_COMM",
		mpi.ErrRank:     "MPI_ERR_RANK",
		mpi.ErrRequest:  "MPI_ERR_REQUEST",
		mpi.ErrRoot:     "MPI_ERR_ROOT",
		mpi.ErrGroup:    "MPI_ERR_GROUP",
		mpi.ErrOp:       "MPI_ERR_OP",
		mpi.ErrTopology: "MPI_ERR_TOPOLOGY",
		mpi.ErrDims:     "MPI_ERR_DIMS",
		mpi.ErrArg:      "MPI_ERR_ARG",
		mpi.ErrTruncate: "MPI_ERR_TRUNCATE",
		mpi.ErrOther:    "MPI_ERR_OTHER",
		mpi.ErrIntern:   "MPI_ERR_INTERN",
		mpi.ErrInStatus: "MPI_ERR_IN_STATUS",
		mpi.ErrPending:  "MPI_ERR_PENDING",
		mpi.ErrFile:     "MPI_ERR_FILE",
		mpi.ErrIO:       "MPI_ERR_IO",
		mpi.ErrAmode:    "MPI_ERR_AMODE",
		mpi.ErrAccess:   "MPI_ERR_ACCESS",
	}
	seen := map[string]mpi.ErrClass{}
	for class, name := range want {
		got := class.String()
		if got != name {
			t.Errorf("class %d: String() = %q, want %q", int(class), got, name)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("classes %d and %d share the name %q", int(prev), int(class), got)
		}
		seen[got] = class
	}
	// Every class named in the table must survive an Error round trip:
	// the class comes back out of ClassOf and the name appears in the
	// message.
	for class, name := range want {
		err := &mpi.Error{Class: class, Msg: "detail"}
		if mpi.ClassOf(err) != class {
			t.Errorf("ClassOf lost class %s", name)
		}
		if !strings.Contains(err.Error(), name) {
			t.Errorf("Error() = %q does not mention %s", err.Error(), name)
		}
	}
	// Unknown classes render a stable fallback rather than colliding
	// with real names.
	if got := mpi.ErrClass(9999).String(); got != "MPI_ERR(9999)" {
		t.Errorf("unknown class String() = %q", got)
	}
}
