package mpi

import "gompi/internal/coll"

// Op is a reduction operation used by Reduce, Allreduce, ReduceScatter
// and Scan.
type Op struct {
	op       *coll.Op
	pairOnly bool // MINLOC/MAXLOC require one of the pair datatypes
}

// Predefined reduction operations (MPI §4.9.2). The logical family
// accepts BOOLEAN and the integer types (non-zero meaning true); the
// bitwise family accepts integer types; MINLOC and MAXLOC require the
// pair datatypes SHORT2/INT2/LONG2/FLOAT2/DOUBLE2.
var (
	MAX    = &Op{op: coll.Max}
	MIN    = &Op{op: coll.Min}
	SUM    = &Op{op: coll.Sum}
	PROD   = &Op{op: coll.Prod}
	LAND   = &Op{op: coll.Land}
	LOR    = &Op{op: coll.Lor}
	LXOR   = &Op{op: coll.Lxor}
	BAND   = &Op{op: coll.Band}
	BOR    = &Op{op: coll.Bor}
	BXOR   = &Op{op: coll.Bxor}
	MINLOC = &Op{op: coll.MinLoc, pairOnly: true}
	MAXLOC = &Op{op: coll.MaxLoc, pairOnly: true}
)

// UserFunction is a user-defined reduction kernel: it must fold in into
// inout elementwise — inout[i] = op(in[i], inout[i]) — where in is the
// operand contributed by the lower-ranked process. Both arguments are
// dense slices of the buffer's element type ([]int32, []float64, …).
type UserFunction func(in, inout any)

// NewOp wraps a user-defined reduction (MPI_Op_create). Declare
// commutativity honestly: non-commutative operations reduce strictly in
// rank order, at extra cost.
func NewOp(fn UserFunction, commute bool) *Op {
	return &Op{op: coll.NewOp("user", commute, func(in, inout any) error {
		fn(in, inout)
		return nil
	})}
}

// checkOp validates an op against the datatype it is applied to.
func checkOp(op *Op, d *Datatype) error {
	if op == nil || op.op == nil {
		return errf(ErrOp, "nil reduction operation")
	}
	if op.pairOnly && !d.t.IsPair() {
		return errf(ErrOp, "MINLOC/MAXLOC require a pair datatype, got %s", d.Name())
	}
	return nil
}
