package mpi_test

import (
	"testing"

	"gompi/mpi"
)

func TestPredefinedDatatypeGeometry(t *testing.T) {
	for _, d := range []*mpi.Datatype{
		mpi.BYTE, mpi.CHAR, mpi.BOOLEAN, mpi.SHORT, mpi.INT,
		mpi.LONG, mpi.FLOAT, mpi.DOUBLE, mpi.PACKED, mpi.OBJECT,
	} {
		if d.Size() != 1 || d.Extent() != 1 || !d.Committed() {
			t.Errorf("%s: size=%d extent=%d committed=%v", d.Name(), d.Size(), d.Extent(), d.Committed())
		}
	}
	for _, d := range []*mpi.Datatype{mpi.SHORT2, mpi.INT2, mpi.LONG2, mpi.FLOAT2, mpi.DOUBLE2} {
		if d.Size() != 2 || d.Extent() != 2 {
			t.Errorf("%s: size=%d extent=%d", d.Name(), d.Size(), d.Extent())
		}
	}
}

func TestDerivedConstructorsErrors(t *testing.T) {
	if _, err := mpi.TypeContiguous(-1, mpi.INT); mpi.ClassOf(err) != mpi.ErrType {
		t.Errorf("negative contiguous: %v", err)
	}
	if _, err := mpi.TypeVector(2, -1, 1, mpi.INT); mpi.ClassOf(err) != mpi.ErrType {
		t.Errorf("negative blocklen: %v", err)
	}
	if _, err := mpi.TypeIndexed([]int{1}, []int{0, 1}, mpi.INT); mpi.ClassOf(err) != mpi.ErrType {
		t.Errorf("mismatched indexed: %v", err)
	}
	if _, err := mpi.TypeStruct([]int{1, 1}, []int{0, 1},
		[]*mpi.Datatype{mpi.INT, mpi.DOUBLE}); mpi.ClassOf(err) != mpi.ErrType {
		t.Errorf("mixed-base struct: %v", err)
	}
}

func TestNestedDerivedTypeTransfer(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		// A vector of indexed blocks: exercise nesting through the
		// public constructors.
		inner, err := mpi.TypeIndexed([]int{1, 1}, []int{0, 2}, mpi.LONG)
		if err != nil {
			return err
		}
		outer, err := mpi.TypeContiguous(2, inner)
		if err != nil {
			return err
		}
		outer.Commit()
		if outer.Size() != 4 {
			t.Errorf("outer size %d", outer.Size())
		}
		if w.Rank() == 0 {
			buf := make([]int64, 12)
			for i := range buf {
				buf[i] = int64(i * 100)
			}
			return w.Send(buf, 0, 1, outer, 1, 1)
		}
		in := make([]int64, 4)
		if _, err := w.Recv(in, 0, 4, mpi.LONG, 0, 1); err != nil {
			return err
		}
		// inner picks 0,2; second item shifted by extent 3: 3,5.
		want := []int64{0, 200, 300, 500}
		for i := range want {
			if in[i] != want[i] {
				t.Errorf("element %d: got %d want %d", i, in[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHindexedTransfer(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		ty, err := mpi.TypeHindexed([]int{2, 1}, []int{1, 6}, mpi.FLOAT)
		if err != nil {
			return err
		}
		ty.Commit()
		if w.Rank() == 0 {
			buf := []float32{0, 10, 20, 30, 40, 50, 60, 70}
			return w.Send(buf, 0, 1, ty, 1, 1)
		}
		in := make([]float32, 3)
		if _, err := w.Recv(in, 0, 3, mpi.FLOAT, 0, 1); err != nil {
			return err
		}
		if in[0] != 10 || in[1] != 20 || in[2] != 60 {
			t.Errorf("hindexed payload: %v", in)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCharAndBooleanTransfers(t *testing.T) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		if w.Rank() == 0 {
			msg := []rune("héllo, wörld") // non-ASCII code points survive
			if err := w.Send(msg, 0, len(msg), mpi.CHAR, 1, 1); err != nil {
				return err
			}
			flags := []bool{true, false, true, true}
			return w.Send(flags, 0, 4, mpi.BOOLEAN, 1, 2)
		}
		msg := make([]rune, 32)
		st, err := w.Recv(msg, 0, 32, mpi.CHAR, 0, 1)
		if err != nil {
			return err
		}
		if got := string(msg[:st.GetCount(mpi.CHAR)]); got != "héllo, wörld" {
			t.Errorf("char payload %q", got)
		}
		flags := make([]bool, 4)
		if _, err := w.Recv(flags, 0, 4, mpi.BOOLEAN, 0, 2); err != nil {
			return err
		}
		if !flags[0] || flags[1] || !flags[3] {
			t.Errorf("boolean payload %v", flags)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPackSizeAndObjectPackSize(t *testing.T) {
	err := mpi.Run(1, func(env *mpi.Env) error {
		w := env.CommWorld()
		n, err := w.PackSize(5, mpi.DOUBLE)
		if err != nil {
			return err
		}
		if n != 40 {
			t.Errorf("PackSize(5, DOUBLE) = %d", n)
		}
		n, err = w.PackSize(2, mpi.OBJECT)
		if err != nil {
			return err
		}
		if n != mpi.Undefined {
			t.Errorf("PackSize on OBJECT = %d, want Undefined", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
