package mpi

import (
	"sync"
	"testing"

	"gompi/internal/obs"
)

// TestStatsInvariants drives a deterministic 2-rank exchange across all
// three send protocols and checks the pvar registry's bookkeeping: the
// protocol counters partition the messages sent, and the byte totals
// balance across the job.
func TestStatsInvariants(t *testing.T) {
	const (
		eagerLim  = 1024
		nEager    = 10
		eagerSz   = 64
		nRndv     = 3
		rndvSz    = 4096
		nSync     = 1
		perRank   = nEager + nRndv + nSync
		rankBytes = nEager*eagerSz + nRndv*rndvSz + nSync*eagerSz
	)
	stats := make([]EngineStats, 2)
	var mu sync.Mutex

	exchange := func(env *Env, sender int) error {
		w := env.CommWorld()
		peer := 1 - w.Rank()
		small := make([]byte, eagerSz)
		big := make([]byte, rndvSz)
		if w.Rank() == sender {
			for i := 0; i < nEager; i++ {
				if err := w.Send(small, 0, eagerSz, BYTE, peer, 1); err != nil {
					return err
				}
			}
			for i := 0; i < nRndv; i++ {
				if err := w.Send(big, 0, rndvSz, BYTE, peer, 2); err != nil {
					return err
				}
			}
			return w.Ssend(small, 0, eagerSz, BYTE, peer, 3)
		}
		for i := 0; i < nEager; i++ {
			if _, err := w.Recv(small, 0, eagerSz, BYTE, peer, 1); err != nil {
				return err
			}
		}
		for i := 0; i < nRndv; i++ {
			if _, err := w.Recv(big, 0, rndvSz, BYTE, peer, 2); err != nil {
				return err
			}
		}
		_, err := w.Recv(small, 0, eagerSz, BYTE, peer, 3)
		return err
	}

	err := RunWith(RunOptions{NP: 2, EagerLimit: eagerLim}, func(env *Env) error {
		// Phase 1: rank 0 sends, rank 1 receives; phase 2 reverses. The
		// receiving phase of each rank completes before it snapshots, so
		// every payload byte is matched by snapshot time.
		if err := exchange(env, 0); err != nil {
			return err
		}
		if err := exchange(env, 1); err != nil {
			return err
		}
		mu.Lock()
		stats[env.Rank()] = env.EngineStats()
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var sent, recv, eager, sync_, rndv uint64
	for rank, st := range stats {
		if got := st.SendsEager + st.SendsSync + st.SendsRndv; got != perRank {
			t.Errorf("rank %d: protocol counters %d+%d+%d = %d, want %d messages",
				rank, st.SendsEager, st.SendsSync, st.SendsRndv, got, perRank)
		}
		if st.RecvsMatched+st.RecvsUnexpected != perRank {
			t.Errorf("rank %d: matched %d + unexpected %d != %d received",
				rank, st.RecvsMatched, st.RecvsUnexpected, perRank)
		}
		sent += st.BytesSent
		recv += st.BytesRecv
		eager += st.SendsEager
		sync_ += st.SendsSync
		rndv += st.SendsRndv
	}
	if sent != recv {
		t.Errorf("job-wide BytesSent %d != BytesRecv %d", sent, recv)
	}
	if want := uint64(2 * rankBytes); sent != want {
		t.Errorf("job-wide BytesSent = %d, want %d", sent, want)
	}
	if eager != 2*nEager || sync_ != 2*nSync || rndv != 2*nRndv {
		t.Errorf("protocol split eager=%d sync=%d rndv=%d, want %d/%d/%d",
			eager, sync_, rndv, 2*nEager, 2*nSync, 2*nRndv)
	}
}

// TestPerfAndControlVars exercises the MPI_T-style surface: pvar
// enumeration carries the engine counters, and the eager-limit cvar
// retargets the protocol choice of subsequent sends.
func TestPerfAndControlVars(t *testing.T) {
	err := Run(2, func(env *Env) error {
		w := env.CommWorld()
		peer := 1 - w.Rank()
		buf := make([]byte, 2048)

		// Well below the default eager limit: counted as eager.
		if w.Rank() == 0 {
			if err := w.Send(buf, 0, len(buf), BYTE, peer, 1); err != nil {
				return err
			}
		} else if _, err := w.Recv(buf, 0, len(buf), BYTE, peer, 1); err != nil {
			return err
		}

		// Drop the threshold below the payload: the same send must now
		// take the rendezvous path.
		if err := env.SetControlVar("core.eager_limit", 256); err != nil {
			return err
		}
		if w.Rank() == 0 {
			if err := w.Send(buf, 0, len(buf), BYTE, peer, 2); err != nil {
				return err
			}
			eager, _ := env.PerfVar("core.sends_eager")
			rndv, _ := env.PerfVar("core.sends_rndv")
			if eager != 1 || rndv != 1 {
				return errf(ErrIntern, "after cvar flip: eager=%d rndv=%d, want 1/1", eager, rndv)
			}
		} else if _, err := w.Recv(buf, 0, len(buf), BYTE, peer, 2); err != nil {
			return err
		}

		// The enumeration must cover every subsystem prefix.
		seen := map[string]bool{}
		for _, v := range env.PerfVars() {
			for _, p := range []string{"core.", "coll."} {
				if len(v.Name) > len(p) && v.Name[:len(p)] == p {
					seen[p] = true
				}
			}
		}
		if !seen["core."] || !seen["coll."] {
			return errf(ErrIntern, "PerfVars missing a subsystem: %v", seen)
		}

		cvs := env.ControlVars()
		names := map[string]bool{}
		for _, cv := range cvs {
			names[cv.Name] = true
		}
		if !names["core.eager_limit"] || !names["coll.pool_max_workers"] {
			return errf(ErrIntern, "ControlVars = %v, missing eager_limit or pool_max_workers", names)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunTraceRecords checks RunOptions.Trace end to end in-process:
// the recorder arms, the exchange lands in the ring, and DumpTrace
// round-trips through the wire format.
func TestRunTraceRecords(t *testing.T) {
	dir := t.TempDir()
	err := RunWith(RunOptions{NP: 2, Trace: true}, func(env *Env) error {
		w := env.CommWorld()
		buf := make([]byte, 128)
		var err error
		if w.Rank() == 0 {
			err = w.Send(buf, 0, len(buf), BYTE, 1, 9)
		} else {
			_, err = w.Recv(buf, 0, len(buf), BYTE, 0, 9)
		}
		if err != nil {
			return err
		}
		if !env.TraceEnabled() {
			return errf(ErrIntern, "Trace option did not arm the recorder")
		}
		_, err = env.DumpTrace(dir)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	files, err := obs.ReadTraceDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("got %d trace dumps, want 2", len(files))
	}
	kinds := map[obs.EventKind]bool{}
	for _, tf := range files {
		for _, ev := range tf.Events {
			kinds[ev.Kind] = true
		}
	}
	if !kinds[obs.EvSendEager] {
		t.Error("trace lacks the eager send event")
	}
	if !kinds[obs.EvRecvMatched] && !kinds[obs.EvRecvUnexpected] {
		t.Error("trace lacks any receive event")
	}
}
