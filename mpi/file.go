package mpi

import (
	"context"
	"errors"
	"os"

	"gompi/internal/coll"
	"gompi/internal/dtype"
	"gompi/internal/pio"
)

// File is a shared file opened collectively over a communicator
// (MPI-2 §9, MPI_File) — the parallel I/O layer the paper's §5.3
// roadmap names alongside the one-sided operations of Win. A File
// carries a per-rank view (SetView) mapping the rank's element index
// space onto file offsets through a filetype's typemap, independent
// positioned and file-pointer I/O, and collective two-phase I/O
// (ReadAtAll/WriteAtAll and the individual-pointer ReadAll/WriteAll)
// built on the collective schedule engine — so every collective form
// also has a nonblocking I* variant returning a *FileCollRequest and a
// *Ctx variant with cancellation points inside the exchange rounds.
//
// All offsets and displacements are in elements, following the
// binding's convention: view displacements and file offsets count
// etype elements, buffer offsets count buffer base elements. Files
// store the engine's little-endian wire format, so they are portable
// across the SM and DM modes and across runs.
//
// A File is private to its rank: like the rest of the binding's
// handles, concurrent calls on one File from several goroutines of the
// same rank are not supported.
type File struct {
	comm  *Intracomm // private duplicate owning the file's contexts
	pf    *pio.File
	amode int

	disp         int
	etype, ftype *Datatype
	freed        bool
}

// Access-mode flags for OpenFile (MPI_MODE_*, MPI-2 §9.2.1). Exactly
// one of ModeRdonly, ModeWronly, ModeRdwr must be given.
const (
	// ModeCreate creates the file if it does not exist.
	ModeCreate = 1
	// ModeRdonly opens for reading only.
	ModeRdonly = 2
	// ModeWronly opens for writing only.
	ModeWronly = 4
	// ModeRdwr opens for reading and writing.
	ModeRdwr = 8
	// ModeDeleteOnClose deletes the file when it is closed.
	ModeDeleteOnClose = 16
	// ModeExcl errors if ModeCreate finds the file already existing.
	ModeExcl = 64
	// ModeAppend positions every rank's file pointer at end of file.
	ModeAppend = 128
)

// Seek whence values (MPI_SEEK_*).
const (
	// SeekSet positions relative to the start of the view.
	SeekSet = 0
	// SeekCur positions relative to the current file pointer.
	SeekCur = 1
	// SeekEnd positions relative to the end of file, in view elements.
	SeekEnd = 2
)

// checkAmode validates an access-mode combination (MPI_ERR_AMODE).
func checkAmode(amode int) error {
	const all = ModeCreate | ModeRdonly | ModeWronly | ModeRdwr |
		ModeDeleteOnClose | ModeExcl | ModeAppend
	if amode&^all != 0 {
		return errf(ErrAmode, "unknown amode bits %#x", amode&^all)
	}
	acc := amode & (ModeRdonly | ModeWronly | ModeRdwr)
	if acc != ModeRdonly && acc != ModeWronly && acc != ModeRdwr {
		return errf(ErrAmode, "amode must include exactly one of ModeRdonly, ModeWronly, ModeRdwr")
	}
	if amode&ModeRdonly != 0 && amode&(ModeCreate|ModeExcl) != 0 {
		return errf(ErrAmode, "ModeRdonly cannot be combined with ModeCreate or ModeExcl")
	}
	if amode&ModeExcl != 0 && amode&ModeCreate == 0 {
		return errf(ErrAmode, "ModeExcl requires ModeCreate")
	}
	return nil
}

// osFlags translates an amode to os.OpenFile flags; only the first
// opener (rank 0) performs creation, so Create/Excl never race.
func osFlags(amode int, first bool) int {
	var fl int
	switch {
	case amode&ModeRdonly != 0:
		fl = os.O_RDONLY
	case amode&ModeWronly != 0:
		fl = os.O_WRONLY
	default:
		fl = os.O_RDWR
	}
	if first {
		if amode&ModeCreate != 0 {
			fl |= os.O_CREATE
		}
		if amode&ModeExcl != 0 {
			fl |= os.O_EXCL
		}
	}
	return fl
}

// mapPioErr translates the I/O engine's errors to MPI error classes.
func mapPioErr(err error) error {
	var ioe *pio.Error
	switch {
	case err == nil:
		return nil
	case errors.Is(err, pio.ErrClosed):
		return errf(ErrFile, "%v", err)
	case errors.Is(err, pio.ErrView):
		return errf(ErrArg, "%v", err)
	case errors.As(err, &ioe):
		if os.IsPermission(ioe.Err) {
			return errf(ErrAccess, "%v", err)
		}
		return errf(ErrIO, "%v", err)
	default:
		return errf(ErrIntern, "%v", err)
	}
}

// fileStatus builds the status of a file transfer: bytes on the wire
// format and whole base elements of the buffer's class delivered.
func fileStatus(rank, bytes, elements int) *Status {
	return &Status{Source: rank, Tag: 0, bytes: bytes, elements: elements}
}

// OpenFile opens path over the communicator (MPI_File_open).
// Collective: every member must call it with the same path and amode.
// Rank 0 alone performs creation, so ModeCreate and ModeExcl are
// race-free within the job; in DM mode all ranks must see the same
// filesystem. The file starts with the identity view (displacement 0,
// etype and filetype MPI.BYTE).
func (c *Intracomm) OpenFile(path string, amode int) (*File, error) {
	c.env.enterCall()
	if err := c.ok(); err != nil {
		return nil, c.raise(err)
	}
	if err := checkAmode(amode); err != nil {
		return nil, c.raise(err)
	}
	priv, err := c.Dup()
	if err != nil {
		return nil, err
	}
	priv.SetName(c.Name() + ".file")
	fail := func(err error) (*File, error) {
		priv.Free() //nolint:errcheck // best-effort teardown
		return nil, c.raise(err)
	}

	// Rank 0 opens first — it alone creates — and broadcasts the
	// outcome, so peers neither race the creation nor open a file that
	// was never created.
	var pf *pio.File
	var openErr error
	if priv.Rank() == 0 {
		pf, openErr = pio.Open(path, osFlags(amode, true), 0o644)
	}
	verdict := []byte{1}
	if openErr != nil {
		verdict = append([]byte{0}, []byte(openErr.Error())...)
	}
	verdict, err = priv.cl.Bcast(0, verdict)
	if err != nil {
		return fail(mapEngineErr(err))
	}
	if len(verdict) == 0 || verdict[0] == 0 {
		if openErr != nil {
			return fail(mapPioErr(openErr))
		}
		return fail(errf(ErrIO, "open failed on rank 0: %s", verdict[1:]))
	}
	if priv.Rank() != 0 {
		pf, openErr = pio.Open(path, osFlags(amode, false), 0o644)
	}
	// Append positioning stats the file; fold its outcome into the
	// collective verdict below so a rank-local failure cannot leave
	// this member tearing down while peers proceed.
	var appendAt int64
	if openErr == nil && amode&ModeAppend != 0 {
		appendAt, openErr = pf.ViewSize()
	}

	// Success must be collective: a member that failed poisons the open
	// everywhere.
	ok := []int32{1}
	if openErr != nil {
		ok[0] = 0
	}
	res, err := priv.cl.Allreduce(ok, coll.Min)
	if err != nil {
		return fail(mapEngineErr(err))
	}
	if res.([]int32)[0] == 0 {
		if pf != nil {
			pf.Close() //nolint:errcheck // best-effort teardown
		}
		if openErr != nil {
			return fail(mapPioErr(openErr))
		}
		return fail(errf(ErrIO, "open of %q failed on a peer rank", path))
	}

	f := &File{comm: priv, pf: pf, amode: amode, disp: 0, etype: BYTE, ftype: BYTE}
	if amode&ModeAppend != 0 {
		pf.SeekSet(appendAt) //nolint:errcheck // non-negative by construction
	}
	return f, nil
}

// DeleteFile removes a file by path (MPI_File_delete). Not collective.
func DeleteFile(path string) error {
	if err := os.Remove(path); err != nil {
		if os.IsPermission(err) {
			return errf(ErrAccess, "delete %s: %v", path, err)
		}
		return errf(ErrIO, "delete %s: %v", path, err)
	}
	return nil
}

func (f *File) ok() error {
	switch {
	case f == nil:
		return errf(ErrFile, "nil file")
	case f.freed:
		return errf(ErrFile, "file %q has been closed", f.pf.Path())
	}
	return nil
}

func (f *File) readable() error {
	if f.amode&ModeWronly != 0 {
		return errf(ErrAccess, "file %q is write-only", f.pf.Path())
	}
	return nil
}

func (f *File) writable() error {
	if f.amode&ModeRdonly != 0 {
		return errf(ErrAccess, "file %q is read-only", f.pf.Path())
	}
	return nil
}

// Amode returns the access mode the file was opened with
// (MPI_File_get_amode).
func (f *File) Amode() int { return f.amode }

// Path returns the file's path.
func (f *File) Path() string { return f.pf.Path() }

// SetStripe sets the two-phase collective I/O aggregation stripe width
// in bytes — the analogue of the striping_unit hint of MPI_Info. Every
// member must use the same value; it defaults to 64 KiB.
func (f *File) SetStripe(bytes int) {
	f.pf.SetStripe(int64(bytes))
}

// SetView installs the rank's file view (MPI_File_set_view): the file
// appears as etype elements starting disp etype-elements into the
// file, of which this rank sees exactly those the filetype's typemap
// names, tiled with the filetype's extent. The filetype must be built
// over etype's storage class with strictly increasing, non-overlapping
// displacements. Collective — all members must call it, though each
// may install a different view — and it resets the individual file
// pointer to zero.
func (f *File) SetView(disp int, etype, filetype *Datatype) error {
	f.comm.env.enterCall()
	if err := f.ok(); err != nil {
		return f.comm.raise(err)
	}
	// Synchronize before validating: a member whose arguments are bad
	// still participates in the collective, so peers are not left
	// hanging in the barrier.
	if err := f.comm.cl.Barrier(); err != nil {
		return f.comm.raise(mapEngineErr(err))
	}
	if err := f.comm.checkType(etype); err != nil {
		return f.comm.raise(err)
	}
	if err := f.comm.checkType(filetype); err != nil {
		return f.comm.raise(err)
	}
	if err := f.pf.SetView(disp, etype.t, filetype.t); err != nil {
		return f.comm.raise(mapPioErr(err))
	}
	f.disp, f.etype, f.ftype = disp, etype, filetype
	return nil
}

// GetView returns the rank's current view (MPI_File_get_view).
func (f *File) GetView() (disp int, etype, filetype *Datatype) {
	return f.disp, f.etype, f.ftype
}

// Size returns the file's size in bytes (MPI_File_get_size).
func (f *File) Size() (int64, error) {
	f.comm.env.enterCall()
	if err := f.ok(); err != nil {
		return 0, f.comm.raise(err)
	}
	n, err := f.pf.Size()
	return n, f.comm.raise(mapPioErr(err))
}

// SetSize truncates or extends the file to n bytes
// (MPI_File_set_size). Collective.
func (f *File) SetSize(n int64) error {
	f.comm.env.enterCall()
	if err := f.ok(); err != nil {
		return f.comm.raise(err)
	}
	if err := f.writable(); err != nil {
		return f.comm.raise(err)
	}
	var terr error
	if f.comm.Rank() == 0 {
		terr = f.pf.Truncate(n)
	}
	verdict := []byte{1}
	if terr != nil {
		verdict[0] = 0
	}
	verdict, err := f.comm.cl.Bcast(0, verdict)
	if err != nil {
		return f.comm.raise(mapEngineErr(err))
	}
	if terr != nil {
		return f.comm.raise(mapPioErr(terr))
	}
	if verdict[0] == 0 {
		return f.comm.raise(errf(ErrIO, "set_size failed on rank 0"))
	}
	return nil
}

// Sync flushes every member's writes to stable storage
// (MPI_File_sync). Collective.
func (f *File) Sync() error {
	f.comm.env.enterCall()
	if err := f.ok(); err != nil {
		return f.comm.raise(err)
	}
	serr := f.pf.Sync()
	if err := f.comm.cl.Barrier(); err != nil {
		return f.comm.raise(mapEngineErr(err))
	}
	return f.comm.raise(mapPioErr(serr))
}

// Close closes the file (MPI_File_close). Collective; with
// ModeDeleteOnClose the file is removed once every member has closed.
func (f *File) Close() error {
	if err := f.ok(); err != nil {
		return f.comm.raise(err)
	}
	f.freed = true
	cerr := f.pf.Close()
	if err := f.comm.cl.Barrier(); err != nil {
		return f.comm.raise(mapEngineErr(err))
	}
	if f.amode&ModeDeleteOnClose != 0 && f.comm.Rank() == 0 {
		if rerr := os.Remove(f.pf.Path()); rerr != nil && cerr == nil {
			cerr = &pio.Error{Op: "delete", Path: f.pf.Path(), Err: rerr}
		}
	}
	if err := f.comm.Free(); err != nil && cerr == nil {
		return f.comm.raise(err)
	}
	return f.comm.raise(mapPioErr(cerr))
}

// Seek positions the individual file pointer (MPI_File_seek), in view
// elements, and returns the new position. SeekEnd measures the current
// end of file in view elements.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.comm.env.enterCall()
	if err := f.ok(); err != nil {
		return 0, f.comm.raise(err)
	}
	pos := offset
	switch whence {
	case SeekSet:
	case SeekCur:
		pos += f.pf.Tell()
	case SeekEnd:
		end, err := f.pf.ViewSize()
		if err != nil {
			return 0, f.comm.raise(mapPioErr(err))
		}
		pos += end
	default:
		return 0, f.comm.raise(errf(ErrArg, "bad seek whence %d", whence))
	}
	if err := f.pf.SeekSet(pos); err != nil {
		return 0, f.comm.raise(mapPioErr(err))
	}
	return pos, nil
}

// Tell returns the individual file pointer, in view elements
// (MPI_File_get_position).
func (f *File) Tell() int64 { return f.pf.Tell() }

// checkEtypeMatch enforces the MPI file-interface typematch rule: the
// buffer datatype's storage class must agree with the view's etype
// class, with MPI.BYTE (on either side) matching anything — the raw
// escape hatch the standard grants MPI_BYTE.
func (f *File) checkEtypeMatch(d *Datatype) error {
	bc, ec := d.t.Class(), f.etype.t.Class()
	if bc != ec && bc != dtype.U8 && ec != dtype.U8 {
		return errf(ErrType, "buffer datatype %s does not match the view's etype %s", d.Name(), f.etype.Name())
	}
	return nil
}

// prepWrite runs the local validation and packing shared by every
// write entry point. It returns the wire payload, its length in view
// elements, and the status a successful write completes with.
func (f *File) prepWrite(buf any, offset, count int, d *Datatype, foff int64) ([]byte, int64, *Status, error) {
	if err := f.ok(); err != nil {
		return nil, 0, nil, err
	}
	if err := f.writable(); err != nil {
		return nil, 0, nil, err
	}
	if err := f.comm.checkType(d); err != nil {
		return nil, 0, nil, err
	}
	if d.t.Class() == dtype.Obj {
		return nil, 0, nil, errf(ErrType, "OBJECT buffers cannot travel through file views")
	}
	if err := f.checkEtypeMatch(d); err != nil {
		return nil, 0, nil, err
	}
	if foff < 0 {
		return nil, 0, nil, errf(ErrArg, "negative file offset %d", foff)
	}
	wire, err := dtype.Pack(nil, buf, offset, count, d.t)
	if err != nil {
		return nil, 0, nil, mapDataErr(err)
	}
	es := f.pf.ElemSize()
	if len(wire)%es != 0 {
		return nil, 0, nil, errf(ErrArg, "write of %d bytes is not a multiple of the view's %d-byte etype", len(wire), es)
	}
	des := d.t.Class().WireSize()
	return wire, int64(len(wire) / es), fileStatus(f.comm.Rank(), len(wire), len(wire)/des), nil
}

// prepRead runs the local validation shared by every read entry point
// and returns the transfer size in view elements.
func (f *File) prepRead(buf any, offset, count int, d *Datatype, foff int64) (int, error) {
	if err := f.ok(); err != nil {
		return 0, err
	}
	if err := f.readable(); err != nil {
		return 0, err
	}
	if err := f.comm.checkType(d); err != nil {
		return 0, err
	}
	if d.t.Class() == dtype.Obj {
		return 0, errf(ErrType, "OBJECT buffers cannot travel through file views")
	}
	if err := f.checkEtypeMatch(d); err != nil {
		return 0, err
	}
	if foff < 0 {
		return 0, errf(ErrArg, "negative file offset %d", foff)
	}
	if _, err := dtype.CheckBuf(buf, d.t); err != nil {
		return 0, mapDataErr(err)
	}
	need := d.t.WireBytes(count)
	es := f.pf.ElemSize()
	if need%es != 0 {
		return 0, errf(ErrArg, "read of %d bytes is not a multiple of the view's %d-byte etype", need, es)
	}
	return need / es, nil
}

// depositRead unpacks the gathered wire bytes into the caller's buffer
// section, delivering only the whole elements the file held.
func (f *File) depositRead(wire []byte, got int, buf any, offset, count int, d *Datatype) (*Status, error) {
	des := d.t.Class().WireSize()
	full := got / des
	if _, err := dtype.Unpack(wire[:full*des], buf, offset, count, d.t); err != nil {
		return nil, mapDataErr(err)
	}
	return fileStatus(f.comm.Rank(), got, full), nil
}

// WriteAt writes the buffer section at view element offset foff,
// independently of other ranks (MPI_File_write_at). The individual
// file pointer is not used or updated.
func (f *File) WriteAt(foff int64, buf any, offset, count int, d *Datatype) (*Status, error) {
	f.comm.env.enterCall()
	wire, _, st, err := f.prepWrite(buf, offset, count, d, foff)
	if err != nil {
		return nil, f.comm.raise(err)
	}
	if _, err := f.pf.WriteView(int(foff), wire); err != nil {
		return nil, f.comm.raise(mapPioErr(err))
	}
	return st, nil
}

// ReadAt reads the buffer section from view element offset foff,
// independently of other ranks (MPI_File_read_at). Reading past end of
// file delivers the available prefix; the status's GetCount reports
// the elements actually read.
func (f *File) ReadAt(foff int64, buf any, offset, count int, d *Datatype) (*Status, error) {
	f.comm.env.enterCall()
	n, err := f.prepRead(buf, offset, count, d, foff)
	if err != nil {
		return nil, f.comm.raise(err)
	}
	wire, got, err := f.pf.ReadView(int(foff), n)
	if err != nil {
		return nil, f.comm.raise(mapPioErr(err))
	}
	st, derr := f.depositRead(wire, got, buf, offset, count, d)
	return st, f.comm.raise(derr)
}

// Write writes the buffer section at the individual file pointer and
// advances it by the elements written (MPI_File_write).
func (f *File) Write(buf any, offset, count int, d *Datatype) (*Status, error) {
	st, err := f.WriteAt(f.pf.Tell(), buf, offset, count, d)
	if err != nil {
		return st, err
	}
	f.pf.Advance(int64(st.bytes / f.pf.ElemSize()))
	return st, nil
}

// Read reads the buffer section at the individual file pointer and
// advances it by the elements actually read (MPI_File_read).
func (f *File) Read(buf any, offset, count int, d *Datatype) (*Status, error) {
	st, err := f.ReadAt(f.pf.Tell(), buf, offset, count, d)
	if err != nil {
		return st, err
	}
	f.pf.Advance(int64(st.bytes / f.pf.ElemSize()))
	return st, nil
}

// WriteAtAll is the collective write at an explicit offset
// (MPI_File_write_at_all), implemented as two-phase I/O: member data
// is exchanged to stripe-owning aggregator ranks through the
// collective schedule engine, and each aggregator issues the large
// contiguous filesystem writes. Every member must call it (counts may
// differ, including zero).
func (f *File) WriteAtAll(foff int64, buf any, offset, count int, d *Datatype) (*Status, error) {
	f.comm.env.enterCall()
	plan, st, err := f.planWriteAll(foff, buf, offset, count, d)
	if err != nil {
		return nil, err
	}
	if _, err := plan.Run(); err != nil {
		return nil, f.comm.raise(mapPioErr(err))
	}
	return st, nil
}

// WriteAtAllCtx is WriteAtAll under a context: cancellation points sit
// inside the exchange rounds, so a collective stalled on an absent
// peer unblocks promptly with ctx's error.
func (f *File) WriteAtAllCtx(ctx context.Context, foff int64, buf any, offset, count int, d *Datatype) (*Status, error) {
	f.comm.env.enterCall()
	plan, st, err := f.planWriteAll(foff, buf, offset, count, d)
	if err != nil {
		return nil, err
	}
	req := newCollRequest(&f.comm.Comm, plan.Start(), nil)
	if _, err := req.WaitCtx(ctx); err != nil {
		return nil, err
	}
	return st, nil
}

// IwriteAtAll starts a nonblocking collective write at an explicit
// offset (MPI_File_iwrite_at_all); both the exchange and the
// filesystem writes proceed in the background.
func (f *File) IwriteAtAll(foff int64, buf any, offset, count int, d *Datatype) (*FileCollRequest, error) {
	f.comm.env.enterCall()
	plan, _, err := f.planWriteAll(foff, buf, offset, count, d)
	if err != nil {
		return nil, err
	}
	return &FileCollRequest{newCollRequest(&f.comm.Comm, plan.Start(), nil)}, nil
}

// planWriteAll validates, packs and builds the two-phase write
// schedule; a member failing local validation consumes its collective
// instance so peers stay tag-aligned.
func (f *File) planWriteAll(foff int64, buf any, offset, count int, d *Datatype) (*coll.Plan, *Status, error) {
	wire, _, st, err := f.prepWrite(buf, offset, count, d, foff)
	if err != nil {
		f.comm.SkipColl()
		return nil, nil, f.comm.raise(err)
	}
	plan, err := f.pf.WriteAllPlan(f.comm.cl, int(foff), wire)
	if err != nil {
		// The plan minted the instance before failing; no skip.
		return nil, nil, f.comm.raise(mapPioErr(err))
	}
	return plan, st, nil
}

// ReadAtAll is the collective read at an explicit offset
// (MPI_File_read_at_all): aggregator ranks issue the large contiguous
// filesystem reads for their stripes and the data is exchanged back
// through the collective schedule engine. Every member must call it.
func (f *File) ReadAtAll(foff int64, buf any, offset, count int, d *Datatype) (*Status, error) {
	f.comm.env.enterCall()
	plan, err := f.planReadAll(foff, buf, offset, count, d)
	if err != nil {
		return nil, err
	}
	res, err := plan.Run()
	if err != nil {
		return nil, f.comm.raise(mapPioErr(err))
	}
	rr := res.(*pio.ReadResult)
	st, derr := f.depositRead(rr.Wire, rr.Got, buf, offset, count, d)
	return st, f.comm.raise(derr)
}

// ReadAtAllCtx is ReadAtAll under a context (see WriteAtAllCtx).
func (f *File) ReadAtAllCtx(ctx context.Context, foff int64, buf any, offset, count int, d *Datatype) (*Status, error) {
	req, err := f.IreadAtAll(foff, buf, offset, count, d)
	if err != nil {
		return nil, err
	}
	if _, err := req.WaitCtx(ctx); err != nil {
		return nil, err
	}
	return req.fileStatus, nil
}

// IreadAtAll starts a nonblocking collective read at an explicit
// offset (MPI_File_iread_at_all). The buffer is filled when the
// request completes; it must not be touched before then.
func (f *File) IreadAtAll(foff int64, buf any, offset, count int, d *Datatype) (*FileCollRequest, error) {
	f.comm.env.enterCall()
	plan, err := f.planReadAll(foff, buf, offset, count, d)
	if err != nil {
		return nil, err
	}
	req := newCollRequest(&f.comm.Comm, plan.Start(), nil)
	req.fin = func(res any) error {
		rr := res.(*pio.ReadResult)
		st, derr := f.depositRead(rr.Wire, rr.Got, buf, offset, count, d)
		req.fileStatus = st
		return derr
	}
	return &FileCollRequest{req}, nil
}

func (f *File) planReadAll(foff int64, buf any, offset, count int, d *Datatype) (*coll.Plan, error) {
	n, err := f.prepRead(buf, offset, count, d, foff)
	if err != nil {
		f.comm.SkipColl()
		return nil, f.comm.raise(err)
	}
	plan, err := f.pf.ReadAllPlan(f.comm.cl, int(foff), n)
	if err != nil {
		// The plan minted the instance before failing; no skip.
		return nil, f.comm.raise(mapPioErr(err))
	}
	return plan, nil
}

// WriteAll is the collective write at the individual file pointer
// (MPI_File_write_all); the pointer advances by the requested elements
// at the call.
func (f *File) WriteAll(buf any, offset, count int, d *Datatype) (*Status, error) {
	st, err := f.WriteAtAll(f.advanceFor(buf, offset, count, d), buf, offset, count, d)
	return st, err
}

// IwriteAll starts a nonblocking collective write at the individual
// file pointer (MPI_File_iwrite_all); the pointer advances by the
// requested elements at the call, not at completion.
func (f *File) IwriteAll(buf any, offset, count int, d *Datatype) (*FileCollRequest, error) {
	return f.IwriteAtAll(f.advanceFor(buf, offset, count, d), buf, offset, count, d)
}

// ReadAll is the collective read at the individual file pointer
// (MPI_File_read_all); the pointer advances by the requested elements
// at the call.
func (f *File) ReadAll(buf any, offset, count int, d *Datatype) (*Status, error) {
	return f.ReadAtAll(f.advanceFor(buf, offset, count, d), buf, offset, count, d)
}

// IreadAll starts a nonblocking collective read at the individual file
// pointer (MPI_File_iread_all); the pointer advances by the requested
// elements at the call, not at completion.
func (f *File) IreadAll(buf any, offset, count int, d *Datatype) (*FileCollRequest, error) {
	return f.IreadAtAll(f.advanceFor(buf, offset, count, d), buf, offset, count, d)
}

// advanceFor returns the current individual file pointer and advances
// it by the transfer's size in view elements. Collective forms with an
// individual pointer update it at the call on every path — success or
// failure — so members that mix in erroneous calls stay
// pointer-aligned with peers whose matching call proceeded.
func (f *File) advanceFor(buf any, offset, count int, d *Datatype) int64 {
	at := f.pf.Tell()
	if d == nil || f.freed {
		return at
	}
	if n := d.t.WireBytes(count); n > 0 {
		f.pf.Advance(int64(n / f.pf.ElemSize()))
	}
	return at
}
