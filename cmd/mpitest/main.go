// mpitest runs the functionality suite of the paper's §3.4 — the
// 57-program IBM-suite translation — across the transport media and
// prints a per-category summary, mirroring the paper's report that
// "all the codes ran in both modes without alterations".
//
// Usage:
//
//	mpitest            # run everything, SM and DM modes
//	mpitest -mode sm   # one medium only (sm, dm or shm)
//	mpitest -mode all  # every medium, including shm
//	mpitest -v         # list every program result
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gompi/internal/testsuite"
	"gompi/mpi"
)

// medium is one suite pass: a display name plus the device it runs on.
type medium struct {
	name   string
	device string
}

var media = map[string]medium{
	"sm":  {"SM", "chan"}, // paper's Shared Memory mode: in-process channels
	"dm":  {"DM", "tcp"},  // Distributed Memory mode: loopback sockets
	"shm": {"SHM", "shm"}, // cross-process mmap segment, exercised in-process
}

func main() {
	mode := flag.String("mode", "both", "sm, dm, shm, both (sm+dm) or all")
	verbose := flag.Bool("v", false, "print every program result")
	flag.Parse()

	var passes []medium
	switch *mode {
	case "both":
		passes = []medium{media["sm"], media["dm"]}
	case "all":
		passes = []medium{media["sm"], media["dm"], media["shm"]}
	default:
		m, ok := media[*mode]
		if !ok {
			fmt.Fprintf(os.Stderr, "mpitest: unknown mode %q\n", *mode)
			os.Exit(2)
		}
		passes = []medium{m}
	}

	programs := testsuite.Programs()
	fmt.Printf("mpitest: %d programs (paper §3.4: 57)\n", len(programs))
	failures := 0
	for _, md := range passes {
		fmt.Printf("\n=== %s mode ===\n", md.name)
		perCat := map[string][2]int{} // pass, fail
		start := time.Now()
		for _, p := range programs {
			err, diag := testsuite.RunProgramDiag(p, mpi.RunOptions{Device: md.device})
			pf := perCat[p.Category]
			if err != nil {
				pf[1]++
				failures++
				fmt.Printf("FAIL %-14s %-12s np=%d: %v\n", p.Category, p.Name, p.NP, err)
				if diag != "" {
					fmt.Print(diag)
				}
			} else {
				pf[0]++
				if *verbose {
					fmt.Printf("ok   %-14s %-12s np=%d\n", p.Category, p.Name, p.NP)
				}
			}
			perCat[p.Category] = pf
		}
		fmt.Printf("--- %s summary (%v) ---\n", md.name, time.Since(start).Round(time.Millisecond))
		total := [2]int{}
		for _, cat := range []string{
			testsuite.CatCollective, testsuite.CatComm, testsuite.CatDatatype,
			testsuite.CatEnv, testsuite.CatGroup, testsuite.CatPt2pt, testsuite.CatTopo,
		} {
			pf := perCat[cat]
			fmt.Printf("  %-16s %2d passed, %d failed\n", cat, pf[0], pf[1])
			total[0] += pf[0]
			total[1] += pf[1]
		}
		fmt.Printf("  %-16s %2d passed, %d failed\n", "TOTAL", total[0], total[1])
	}
	if failures > 0 {
		os.Exit(1)
	}
}
