// mpitest runs the functionality suite of the paper's §3.4 — the
// 57-program IBM-suite translation — in Shared Memory and Distributed
// Memory modes and prints a per-category summary, mirroring the paper's
// report that "all the codes ran in both modes without alterations".
//
// Usage:
//
//	mpitest            # run everything, both modes
//	mpitest -mode sm   # one mode only
//	mpitest -v         # list every program result
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gompi/internal/testsuite"
)

func main() {
	mode := flag.String("mode", "both", "sm, dm or both")
	verbose := flag.Bool("v", false, "print every program result")
	flag.Parse()

	modes := []bool{false, true} // tcp flags
	switch *mode {
	case "sm":
		modes = []bool{false}
	case "dm":
		modes = []bool{true}
	case "both":
	default:
		fmt.Fprintf(os.Stderr, "mpitest: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	programs := testsuite.Programs()
	fmt.Printf("mpitest: %d programs (paper §3.4: 57)\n", len(programs))
	failures := 0
	for _, tcp := range modes {
		name := "SM"
		if tcp {
			name = "DM"
		}
		fmt.Printf("\n=== %s mode ===\n", name)
		perCat := map[string][2]int{} // pass, fail
		start := time.Now()
		for _, p := range programs {
			err := testsuite.RunProgram(p, tcp)
			pf := perCat[p.Category]
			if err != nil {
				pf[1]++
				failures++
				fmt.Printf("FAIL %-14s %-12s np=%d: %v\n", p.Category, p.Name, p.NP, err)
			} else {
				pf[0]++
				if *verbose {
					fmt.Printf("ok   %-14s %-12s np=%d\n", p.Category, p.Name, p.NP)
				}
			}
			perCat[p.Category] = pf
		}
		fmt.Printf("--- %s summary (%v) ---\n", name, time.Since(start).Round(time.Millisecond))
		total := [2]int{}
		for _, cat := range []string{
			testsuite.CatCollective, testsuite.CatComm, testsuite.CatDatatype,
			testsuite.CatEnv, testsuite.CatGroup, testsuite.CatPt2pt, testsuite.CatTopo,
		} {
			pf := perCat[cat]
			fmt.Printf("  %-16s %2d passed, %d failed\n", cat, pf[0], pf[1])
			total[0] += pf[0]
			total[1] += pf[1]
		}
		fmt.Printf("  %-16s %2d passed, %d failed\n", "TOTAL", total[0], total[1])
	}
	if failures > 0 {
		os.Exit(1)
	}
}
