// pingpong regenerates the paper's communications evaluation (§4):
// Table 1 (1-byte message latencies across five environments and two
// modes), Figures 5 and 6 (PingPong bandwidth against message size in SM
// and DM modes), and the §4.6 LINPACK Mflop/s comparison.
//
// Usage:
//
//	pingpong -table1              # Table 1, modern stack
//	pingpong -table1 -paper1999   # Table 1 under the era calibration
//	pingpong -fig 5 -paper1999    # Figure 5 curves (SM)
//	pingpong -fig 6 -paper1999    # Figure 6 curves (DM)
//	pingpong -linpack             # §4.6 LINPACK comparison
//
// The -paper1999 flag enables the calibration described in DESIGN.md:
// the JNI-crossing cost model, the WMPI/MPICH software-path profiles and
// the 10BaseT link shaping that recover the published magnitudes.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"gompi/internal/bench"
	"gompi/internal/linpack"
)

func main() {
	table1 := flag.Bool("table1", false, "reproduce Table 1 (1-byte latencies)")
	fig := flag.Int("fig", 0, "reproduce figure 5 (SM) or 6 (DM)")
	linpackFlag := flag.Bool("linpack", false, "reproduce the §4.6 LINPACK comparison")
	paper := flag.Bool("paper1999", false, "apply the 1999 testbed calibration")
	reps := flag.Int("reps", 64, "round trips per message size")
	maxSize := flag.Int("max", 1<<20, "largest message size for figure sweeps")
	n := flag.Int("n", 500, "LINPACK problem order")
	flag.Parse()

	ran := false
	if *table1 {
		ran = true
		runTable1(*paper, *reps)
	}
	if *fig == 5 || *fig == 6 {
		ran = true
		runFigure(*fig, *paper, *maxSize, *reps)
	}
	if *linpackFlag {
		ran = true
		runLinpack(*n)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func runTable1(paper bool, reps int) {
	label := "modern stack"
	if paper {
		label = "1999 calibration"
	}
	fmt.Printf("Table 1: time for 1-byte messages (%s)\n", label)
	rows, err := bench.Table1(paper, reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pingpong: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%-4s", "")
	for _, r := range rows {
		fmt.Printf(" %10s", r.Label)
	}
	fmt.Println()
	for _, mode := range []string{"SM", "DM"} {
		fmt.Printf("%-4s", mode)
		for _, r := range rows {
			v := r.SM
			if mode == "DM" {
				v = r.DM
			}
			fmt.Printf(" %8.1fus", float64(v.Nanoseconds())/1e3)
		}
		fmt.Println()
	}
	if paper {
		fmt.Println("\npaper reported (us):")
		fmt.Println("         Wsock     WMPI-C     WMPI-J    MPICH-C    MPICH-J")
		fmt.Println("SM       144.8       67.2      161.4      148.7      374.6")
		fmt.Println("DM       244.9      623.9      689.7      679.1      961.2")
	}
}

func runFigure(fig int, paper bool, maxSize, reps int) {
	mode := bench.SM
	if fig == 6 {
		mode = bench.DM
	}
	fmt.Printf("Figure %d: PingPong in %s mode", fig, mode)
	if paper {
		fmt.Printf(" (1999 calibration)")
	}
	fmt.Println()
	curves, err := bench.Figure(mode, paper, maxSize, reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pingpong: %v\n", err)
		os.Exit(1)
	}
	labels := make([]string, 0, len(curves))
	for l := range curves {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	fmt.Printf("%10s", "size")
	for _, l := range labels {
		fmt.Printf(" %12s", l+" MB/s")
	}
	fmt.Println()
	n := len(curves[labels[0]])
	for i := 0; i < n; i++ {
		fmt.Printf("%10d", curves[labels[0]][i].Size)
		for _, l := range labels {
			fmt.Printf(" %12.3f", curves[l][i].MBps)
		}
		fmt.Println()
	}
	fmt.Printf("\n1-byte one-way latencies:")
	for _, l := range labels {
		fmt.Printf("  %s=%.1fus", l, float64(curves[l][0].OneWay.Nanoseconds())/1e3)
	}
	fmt.Println()
}

func runLinpack(n int) {
	fmt.Printf("LINPACK order %d (paper §4.6: native 62 vs JVM 22 Mflop/s on a P6-200)\n", n)
	start := time.Now()
	nat, err := linpack.RunNative(n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pingpong: linpack: %v\n", err)
		os.Exit(1)
	}
	interp, err := linpack.RunInterpreted(n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pingpong: linpack: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  native      : %8.1f Mflop/s  (residual %.2e)\n", nat.Mflops, nat.Residual)
	fmt.Printf("  interpreted : %8.1f Mflop/s  (residual %.2e)\n", interp.Mflops, interp.Residual)
	fmt.Printf("  ratio       : %8.2fx   (paper: %.2fx)\n", nat.Mflops/interp.Mflops, 62.0/22.0)
	fmt.Printf("  total time  : %v\n", time.Since(start).Round(time.Millisecond))
}
