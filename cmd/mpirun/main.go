// mpirun launches an SPMD job of N OS processes connected over TCP — the
// paper's Distributed Memory mode with real process isolation. It plays
// the role of WMPI/p4's startup daemon (§3.2): it runs the rendezvous
// coordinator, sets each worker's job geometry through the environment,
// and propagates exit status.
//
// Usage:
//
//	mpirun -np 4 ./myprog arg1 arg2
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"sync"

	"gompi/internal/launch"
)

func main() {
	np := flag.Int("np", 2, "number of processes")
	eager := flag.Int("eager", 0, "eager/rendezvous threshold in bytes (0 = default)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mpirun [-np N] [-eager BYTES] prog [args...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *np < 1 {
		fmt.Fprintln(os.Stderr, "mpirun: -np must be at least 1")
		os.Exit(2)
	}
	prog := flag.Arg(0)
	args := flag.Args()[1:]

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpirun: coordinator listener: %v\n", err)
		os.Exit(1)
	}
	coordErr := make(chan error, 1)
	go func() { coordErr <- launch.Coordinate(ln, *np) }()

	procs := make([]*exec.Cmd, *np)
	for r := 0; r < *np; r++ {
		cmd := exec.Command(prog, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		cmd.Env = append(os.Environ(),
			launch.EnvRank+"="+strconv.Itoa(r),
			launch.EnvSize+"="+strconv.Itoa(*np),
			launch.EnvCoord+"="+ln.Addr().String(),
			launch.EnvEager+"="+strconv.Itoa(*eager),
		)
		if err := cmd.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "mpirun: starting rank %d: %v\n", r, err)
			for _, p := range procs[:r] {
				p.Process.Kill() //nolint:errcheck // best-effort teardown
			}
			os.Exit(1)
		}
		procs[r] = cmd
	}

	exit := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for r, p := range procs {
		wg.Add(1)
		go func(rank int, cmd *exec.Cmd) {
			defer wg.Done()
			if err := cmd.Wait(); err != nil {
				mu.Lock()
				if exit == 0 {
					exit = 1
				}
				mu.Unlock()
				fmt.Fprintf(os.Stderr, "mpirun: rank %d: %v\n", rank, err)
			}
		}(r, p)
	}
	wg.Wait()
	if err := <-coordErr; err != nil && exit == 0 {
		fmt.Fprintf(os.Stderr, "mpirun: %v\n", err)
		exit = 1
	}
	ln.Close()
	os.Exit(exit)
}
