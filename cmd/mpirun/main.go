// mpirun launches an SPMD job of N OS processes — the paper's modes
// with real process isolation. It plays the role of WMPI/p4's startup
// daemon (§3.2): it provisions the fabric (a shared-memory segment for
// same-node ranks, a rendezvous coordinator for socket meshes, or both
// for hybrid runs), sets each worker's job geometry through the
// environment, and propagates exit status.
//
// Usage:
//
//	mpirun -np 4 ./myprog arg1 arg2             # shared memory (auto)
//	mpirun -np 4 -device tcp ./myprog           # socket mesh
//	mpirun -np 4 -nodes 2 ./myprog              # hybrid: 2 shm islands + TCP
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"gompi/internal/launch"
	"gompi/internal/obs"
	"gompi/internal/transport"
	"gompi/internal/transport/shmipc"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpirun: "+format+"\n", args...)
	os.Exit(1)
}

// tailWriter tees a worker's stderr through to mpirun's own while
// keeping the last few KiB, so a rank that fails on its own terms can
// be reported together with its final complaint even after the job's
// interleaved output has scrolled past it.
type tailWriter struct {
	mu  sync.Mutex
	out io.Writer
	buf []byte
}

const tailKeep = 4 << 10

func (t *tailWriter) Write(p []byte) (int, error) {
	t.mu.Lock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > tailKeep {
		t.buf = append(t.buf[:0], t.buf[len(t.buf)-tailKeep:]...)
	}
	t.mu.Unlock()
	return t.out.Write(p)
}

func (t *tailWriter) tail() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.buf)
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(s, "\n", "\n    ")
}

// island is one group of ranks sharing a shared-memory segment.
type island struct {
	ranks []int
	path  string
}

// splitIslands partitions np ranks into nodes contiguous blocks, the
// fake multi-node topology used to exercise hybrid routing on one
// machine.
func splitIslands(np, nodes int) []island {
	out := make([]island, nodes)
	for i := 0; i < nodes; i++ {
		lo, hi := i*np/nodes, (i+1)*np/nodes
		for r := lo; r < hi; r++ {
			out[i].ranks = append(out[i].ranks, r)
		}
	}
	return out
}

func main() {
	np := flag.Int("np", 2, "number of processes")
	eager := flag.Int("eager", 0, "eager/rendezvous threshold in bytes (0 = default)")
	device := flag.String("device", "auto", "transport medium: auto, shm or tcp")
	nodes := flag.Int("nodes", 1, "emulated node count (>1 splits ranks into shm islands bridged by TCP)")
	shmSlots := flag.Int("shm-slots", 0, "per-pair ring slots in the shared segment (0 = default)")
	shmArenaMB := flag.Int("shm-arena-mb", 0, "shared frame-pool arena size in MiB (0 = default)")
	trace := flag.Bool("trace", false, "arm every rank's flight recorder and merge the rings into a Chrome trace")
	traceOut := flag.String("trace-out", "gompi-trace.json", "merged Chrome trace_event output path (with -trace)")
	traceSummary := flag.Bool("trace-summary", false, "print the per-operation count/bytes/p50/p99 table after the run (with -trace)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mpirun [-np N] [-device auto|shm|tcp] [-nodes N] [-eager BYTES] prog [args...]\n")
		fmt.Fprintf(os.Stderr, "a faulty: prefix on -device (e.g. faulty:shm) injects the GOMPI_FAULT plan into the workers\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *np < 1 {
		fatalf("-np must be at least 1")
	}
	if *nodes < 1 || *nodes > *np {
		fatalf("-nodes must be in [1,%d]", *np)
	}
	prog := flag.Arg(0)
	args := flag.Args()[1:]

	// Tracing: workers dump their rings into a private staging directory
	// on Finalize; mpirun merges them after the job drains.
	traceDir := ""
	if *trace {
		d, err := os.MkdirTemp("", "gompi-trace-")
		if err != nil {
			fatalf("creating trace directory: %v", err)
		}
		traceDir = d
		defer os.RemoveAll(traceDir)
	}

	// Crash-recovery sweep: segments whose creating mpirun died are
	// dead weight in /dev/shm; remove them before provisioning ours.
	if removed, err := shmipc.CleanupStale(shmipc.DefaultDir(), time.Minute); err == nil && len(removed) > 0 {
		fmt.Fprintf(os.Stderr, "mpirun: removed %d stale shm segment(s)\n", len(removed))
	}

	// Decide the fabric. workerDev is what the workers are told to
	// construct through the device registry. A faulty: prefix is the
	// chaos-testing decorator: provisioning decisions are made on the
	// underlying fabric name, and the prefix is re-applied to the
	// worker-side device so the registry wraps each endpoint with the
	// GOMPI_FAULT plan.
	fabric, injectFaults := strings.CutPrefix(*device, transport.FaultyPrefix)
	var islands []island
	workerDev := ""
	needCoord := false
	switch fabric {
	case "tcp":
		workerDev = "tcp"
		needCoord = true
	case "shm":
		if *nodes > 1 {
			fatalf("-device shm is single-node; use -device auto with -nodes for hybrid runs")
		}
		workerDev = "shm"
		islands = splitIslands(*np, 1)
	case "auto":
		if *nodes == 1 {
			workerDev = "shm"
			islands = splitIslands(*np, 1)
		} else {
			workerDev = "hybrid"
			islands = splitIslands(*np, *nodes)
			needCoord = true
		}
	default:
		fatalf("unknown -device %q (want auto, shm or tcp, optionally faulty:-prefixed)", *device)
	}

	// Provision the segments. Cleanup must run on every exit path,
	// including signals.
	cfg := shmipc.Config{Slots: *shmSlots, ArenaBytes: *shmArenaMB << 20}
	var cleanupOnce sync.Once
	cleanup := func() {
		cleanupOnce.Do(func() {
			for _, isl := range islands {
				if isl.path != "" {
					os.Remove(isl.path)
				}
			}
		})
	}
	for i := range islands {
		path := filepath.Join(shmipc.DefaultDir(),
			fmt.Sprintf("%sjob%d-%d.seg", shmipc.SegPrefix, os.Getpid(), i))
		if _, err := shmipc.Create(path, islands[i].ranks, cfg); err != nil {
			if *device == "auto" && *nodes == 1 {
				// No shared memory here; sockets still work.
				fmt.Fprintf(os.Stderr, "mpirun: shared memory unavailable (%v), falling back to tcp\n", err)
				islands = nil
				workerDev = "tcp"
				needCoord = true
				break
			}
			cleanup()
			fatalf("creating shm segment: %v", err)
		}
		islands[i].path = path
	}
	defer cleanup()

	coordAddr := ""
	coordErr := make(chan error, 1)
	if needCoord {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			fatalf("coordinator listener: %v", err)
		}
		defer ln.Close()
		coordAddr = ln.Addr().String()
		go func() { coordErr <- launch.Coordinate(ln, *np) }()
	} else {
		coordErr <- nil
	}

	// Per-rank environment: geometry plus the fabric handles.
	islandOf := make(map[int]*island)
	for i := range islands {
		for _, r := range islands[i].ranks {
			islandOf[r] = &islands[i]
		}
	}
	rankEnv := func(r int) []string {
		dev := workerDev
		if injectFaults {
			dev = transport.FaultyPrefix + dev
		}
		env := append(os.Environ(),
			launch.EnvRank+"="+strconv.Itoa(r),
			launch.EnvSize+"="+strconv.Itoa(*np),
			launch.EnvEager+"="+strconv.Itoa(*eager),
			launch.EnvDevice+"="+dev,
		)
		if coordAddr != "" {
			env = append(env, launch.EnvCoord+"="+coordAddr)
		}
		if traceDir != "" {
			env = append(env, obs.EnvTrace+"=1", obs.EnvTraceDir+"="+traceDir)
		}
		if isl := islandOf[r]; isl != nil {
			ranks := make([]string, len(isl.ranks))
			for i, w := range isl.ranks {
				ranks[i] = strconv.Itoa(w)
			}
			env = append(env,
				launch.EnvShmSeg+"="+isl.path,
				launch.EnvShmRanks+"="+strings.Join(ranks, ","))
		}
		return env
	}

	// Process accounting covers both the launch-time ranks and any
	// worlds spawned later through the control socket: one list for
	// teardown, one live counter for the reaper, one death channel.
	type exitEvent struct {
		name string
		tail *tailWriter
		err  error
	}
	var procMu sync.Mutex
	var procs []*exec.Cmd
	live := 0
	deaths := make(chan exitEvent, 64)
	killAll := func() {
		procMu.Lock()
		defer procMu.Unlock()
		for _, p := range procs {
			if p != nil && p.Process != nil {
				p.Process.Kill() //nolint:errcheck // best-effort teardown
			}
		}
	}
	watch := func(name string, tw *tailWriter, cmd *exec.Cmd) {
		go func() { deaths <- exitEvent{name, tw, cmd.Wait()} }()
	}

	// Spawn-control service: MPI_Comm_spawn inside a worker sends its
	// request here, so dynamically created ranks become mpirun's own
	// children — same killAll, same reaper, same stderr tails and exit
	// propagation as the launch-time ranks. The live count is raised
	// before the reply is sent: the requester is itself alive until the
	// reply lands, so the reaper can never observe live==0 with a spawn
	// still in flight.
	ctrlLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cleanup()
		fatalf("spawn control listener: %v", err)
	}
	defer ctrlLn.Close()
	ctrlAddr := ctrlLn.Addr().String()
	spawnSeq := 0
	go func() {
		for {
			conn, err := ctrlLn.Accept()
			if err != nil {
				return
			}
			go launch.ServeSpawnConn(conn, func(req launch.SpawnRequest) error {
				procMu.Lock()
				spawnSeq++
				id := spawnSeq
				procMu.Unlock()
				tws := make([]*tailWriter, req.N)
				extra := []string{launch.EnvControl + "=" + ctrlAddr}
				if traceDir != "" {
					// Spawned worlds trace too, into a world-private
					// subdirectory: their ranks restart at 0, so dumping
					// next to the launch world's files would collide.
					sub := filepath.Join(traceDir, fmt.Sprintf("spawn%d", id))
					if err := os.Mkdir(sub, 0o755); err == nil {
						extra = append(extra, obs.EnvTrace+"=1", obs.EnvTraceDir+"="+sub)
					}
				}
				h, err := launch.SpawnLocal(launch.SpawnJob{
					Prog: req.Prog, Args: req.Args, N: req.N,
					ParentPort: req.ParentPort, Dir: req.Dir,
					ExtraEnv: extra,
					Stderr: func(rank int) io.Writer {
						tws[rank] = &tailWriter{out: os.Stderr}
						return tws[rank]
					},
				})
				if err != nil {
					return err
				}
				procMu.Lock()
				procs = append(procs, h.Cmds...)
				live += len(h.Cmds)
				procMu.Unlock()
				for r, cmd := range h.Cmds {
					watch(fmt.Sprintf("spawn%d rank %d", id, r), tws[r], cmd)
				}
				fmt.Fprintf(os.Stderr, "mpirun: spawned %d rank(s) of %s (world spawn%d)\n",
					req.N, req.Prog, id)
				return nil
			})
		}
	}()

	// Abnormal-exit path: tear workers down and remove the segments so
	// an interrupted job leaks nothing.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "mpirun: %v: killing %d ranks\n", s, *np)
		killAll()
		cleanup()
		os.Exit(130)
	}()

	for r := 0; r < *np; r++ {
		cmd := exec.Command(prog, args...)
		tw := &tailWriter{out: os.Stderr}
		cmd.Stdout = os.Stdout
		cmd.Stderr = tw
		cmd.Env = append(rankEnv(r), launch.EnvControl+"="+ctrlAddr)
		procMu.Lock()
		startErr := cmd.Start()
		if startErr == nil {
			procs = append(procs, cmd)
			live++
		}
		procMu.Unlock()
		if startErr != nil {
			fmt.Fprintf(os.Stderr, "mpirun: starting rank %d: %v\n", r, startErr)
			killAll()
			cleanup()
			os.Exit(1)
		}
		watch(fmt.Sprintf("rank %d", r), tw, cmd)
	}

	// Reap children as they die, not in rank order: with fault-tolerant
	// workers a killed rank exits minutes before its survivors, and its
	// zombie should be collected — and its identity reported — the
	// moment it happens. Each watch goroutine Waits (reaping
	// immediately); the channel serializes the death notices. The loop
	// runs until the live count — launch ranks plus any spawned worlds —
	// drains to zero.
	exit := 0
	firstFailed := ""
	for {
		procMu.Lock()
		n := live
		procMu.Unlock()
		if n == 0 {
			break
		}
		ev := <-deaths
		procMu.Lock()
		live--
		procMu.Unlock()
		if ev.err == nil {
			continue
		}
		fmt.Fprintf(os.Stderr, "mpirun: %s: %v\n", ev.name, ev.err)
		// Propagate the failed rank's own status when it has one:
		// 128+signal for a killed child, its exit code otherwise. A rank
		// killed by a signal says so in its wait status; one that failed
		// on its own terms explained itself on stderr — replay its last
		// words next to the verdict.
		code := 1
		var ee *exec.ExitError
		if errors.As(ev.err, &ee) {
			if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
				code = 128 + int(ws.Signal())
			} else if c := ee.ExitCode(); c > 0 {
				code = c
			}
		}
		// Replay the dying rank's last words for signal deaths too: a
		// SIGKILLed chaos-run rank usually logged what it was doing
		// right before the injected fault took it down.
		if tail := strings.TrimSpace(ev.tail.tail()); tail != "" {
			fmt.Fprintf(os.Stderr, "mpirun: %s stderr tail:\n%s\n", ev.name, indent(tail))
		}
		if firstFailed == "" {
			firstFailed = ev.name
			exit = code
		}
	}
	if firstFailed != "" {
		fmt.Fprintf(os.Stderr, "mpirun: job failed: first failed %s (exit status %d)\n", firstFailed, exit)
	}
	if err := <-coordErr; err != nil && exit == 0 {
		fmt.Fprintf(os.Stderr, "mpirun: %v\n", err)
		exit = 1
	}
	if traceDir != "" {
		if err := mergeTraces(traceDir, *traceOut, *traceSummary); err != nil {
			fmt.Fprintf(os.Stderr, "mpirun: %v\n", err)
			if exit == 0 {
				exit = 1
			}
		}
	}
	cleanup()
	os.Exit(exit)
}

// mergeTraces folds the per-rank flight-recorder dumps under dir — the
// launch world's, plus any spawned worlds' subdirectories — into one
// clock-aligned Chrome trace_event JSON at out. Spawned worlds' ranks
// are offset by 1000 per world so their rows don't collide with the
// launch world's.
func mergeTraces(dir, out string, summary bool) error {
	files, err := obs.ReadTraceDir(dir)
	if err != nil {
		return fmt.Errorf("reading traces: %v", err)
	}
	for id := 1; ; id++ {
		sub := filepath.Join(dir, fmt.Sprintf("spawn%d", id))
		sfs, serr := obs.ReadTraceDir(sub)
		if serr != nil || len(sfs) == 0 {
			break
		}
		for _, tf := range sfs {
			tf.Rank += 1000 * id
		}
		files = append(files, sfs...)
	}
	if len(files) == 0 {
		return fmt.Errorf("no trace dumps found (did the ranks reach Finalize?)")
	}
	f, err := os.Create(out)
	if err != nil {
		return fmt.Errorf("creating %s: %v", out, err)
	}
	if err := obs.WriteChrome(f, files); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %v", out, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("writing %s: %v", out, err)
	}
	events := 0
	for _, tf := range files {
		events += len(tf.Events)
	}
	fmt.Fprintf(os.Stderr, "mpirun: merged trace of %d rank(s), %d event(s) -> %s (load in chrome://tracing or https://ui.perfetto.dev)\n",
		len(files), events, out)
	if summary {
		fmt.Fprintf(os.Stderr, "mpirun: trace summary:\n")
		if err := obs.WriteSummary(os.Stderr, files); err != nil {
			return err
		}
	}
	return nil
}
