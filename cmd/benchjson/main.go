// benchjson runs the paper's benchmark harness (§4 Table 1, Figure 5)
// plus the parallel I/O bandwidth benchmark and emits one
// machine-readable JSON document — the perf trajectory record CI
// writes as BENCH_PR<N>.json so regressions across PRs are visible in
// version control rather than only in scrollback. The committed
// baselines live in internal/bench/.
//
// Usage:
//
//	go run ./cmd/benchjson -quick -out internal/bench/BENCH_PR5.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"gompi/internal/bench"
)

type table1JSON struct {
	Label string `json:"label"`
	SMNs  int64  `json:"sm_latency_ns"`
	DMNs  int64  `json:"dm_latency_ns"`
}

type pointJSON struct {
	Bytes    int     `json:"bytes"`
	OneWayNs int64   `json:"one_way_ns"`
	MBps     float64 `json:"mbps"`
}

type output struct {
	Schema    string                 `json:"schema"`
	GoVersion string                 `json:"go_version"`
	GOOS      string                 `json:"goos"`
	GOARCH    string                 `json:"goarch"`
	NumCPU    int                    `json:"num_cpu"`
	Quick     bool                   `json:"quick"`
	Table1    []table1JSON           `json:"table1_latency"`
	Fig5SM    map[string][]pointJSON `json:"fig5_sm_pingpong"`
	IO        []bench.IOPoint        `json:"io_bandwidth_4ranks"`
	Devices   []bench.DevPoint       `json:"device_pingpong"`
	Persist   []bench.PersistPoint   `json:"persistent_vs_oneshot"`
	Trace     []bench.TracePoint     `json:"trace_overhead"`
}

func main() {
	out := flag.String("out", "BENCH.json", "output path")
	quick := flag.Bool("quick", false, "small sweeps and few repetitions (CI mode)")
	flag.Parse()
	// run returns instead of exiting so its deferred scratch-dir
	// cleanup executes on failure paths too.
	if err := run(*out, *quick); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(out string, quick bool) error {
	t1Reps, figMax, figReps := 256, 1<<20, 64
	ioMax, ioReps := 4<<20, 8
	if quick {
		t1Reps, figMax, figReps = 32, 1<<16, 8
		ioMax, ioReps = 1<<20, 3
	}

	doc := output{
		Schema:    "gompi-bench/1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Quick:     quick,
		Fig5SM:    map[string][]pointJSON{},
	}

	rows, err := bench.Table1(false, t1Reps)
	if err != nil {
		return err
	}
	for _, r := range rows {
		doc.Table1 = append(doc.Table1, table1JSON{Label: r.Label, SMNs: r.SM.Nanoseconds(), DMNs: r.DM.Nanoseconds()})
	}

	curves, err := bench.Figure(bench.SM, false, figMax, figReps)
	if err != nil {
		return err
	}
	for label, pts := range curves {
		for _, p := range pts {
			doc.Fig5SM[label] = append(doc.Fig5SM[label], pointJSON{Bytes: p.Size, OneWayNs: p.OneWay.Nanoseconds(), MBps: p.MBps})
		}
	}

	devReps := 256
	if quick {
		devReps = 32
	}
	doc.Devices, err = bench.DeviceSweep(bench.DeviceSizes, devReps)
	if err != nil {
		return err
	}

	// Per-op times are a few µs, so even the full rep count is cheap —
	// quick mode keeps it for stable numbers.
	persistReps, persistNp := 256, 4
	pp, err := bench.PersistentPingPong([]int{64, 4096, 65536}, persistReps)
	if err != nil {
		return err
	}
	pa, err := bench.PersistentAllreduce(persistNp, []int{1, 512, 8192}, persistReps)
	if err != nil {
		return err
	}
	doc.Persist = append(pp, pa...)

	// The trace pair proves the flight-recorder contract: with the
	// recorder disarmed (every untraced run) the ping-pong hot path
	// stays zero-alloc.
	traceReps := 4096
	if quick {
		traceReps = 1024
	}
	doc.Trace, err = bench.TraceOverhead(1024, traceReps)
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "gompi-iobench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	doc.IO, err = bench.IOBandwidth(4, bench.IOSizes(ioMax), ioReps, dir)
	if err != nil {
		return err
	}

	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchjson: wrote %s (%d bytes)\n", out, len(blob))
	return nil
}
