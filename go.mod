module gompi

go 1.22
