package linpack

import (
	"fmt"
	"math"
)

// The interpreted-style variant: jagged 2-D arrays behind accessor
// methods, mirroring how a 1998 JVM executed Java LINPACK — every
// element access pays jagged double indirection and bounds logic, with
// no hoisting of row slices or strength reduction across the column.
// The dominant modelled cost is the access pattern a naive Java
// translation of the column-major Fortran kernel produced: a row-major
// jagged array traversed column-wise, paying a pointer chase and bounds
// logic per element instead of the flat daxpy over a hoisted column.
// The target is the paper's ≈2.8x native/JVM ratio, not a maximally
// crippled baseline.

type jaggedMatrix struct {
	rows [][]float64
}

type boxedVector struct {
	v []float64
}

func (m *jaggedMatrix) get(i, j int) float64 { return m.rows[i][j] }

func (m *jaggedMatrix) set(i, j int, v float64) { m.rows[i][j] = v }

func (b *boxedVector) get(i int) float64 { return b.v[i] }

func (b *boxedVector) set(i int, v float64) { b.v[i] = v }

// newJagged builds the same test system as NewMatrix in jagged row-major
// form.
func newJagged(n int) (*jaggedMatrix, *boxedVector) {
	flat, b := NewMatrix(n)
	m := &jaggedMatrix{rows: make([][]float64, n)}
	for i := 0; i < n; i++ {
		m.rows[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			m.rows[i][j] = flat.A[i+j*n]
		}
	}
	return m, &boxedVector{v: b}
}

func dgefaInterp(m *jaggedMatrix, n int) ([]int, error) {
	ipvt := make([]int, n)
	for k := 0; k < n-1; k++ {
		l := k
		maxv := math.Abs(m.get(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(m.get(i, k)); v > maxv {
				maxv, l = v, i
			}
		}
		ipvt[k] = l
		if m.get(l, k) == 0 {
			return ipvt, fmt.Errorf("linpack: singular at column %d", k)
		}
		if l != k {
			t := m.get(l, k)
			m.set(l, k, m.get(k, k))
			m.set(k, k, t)
		}
		t := -1.0 / m.get(k, k)
		for i := k + 1; i < n; i++ {
			m.set(i, k, m.get(i, k)*t)
		}
		for j := k + 1; j < n; j++ {
			t := m.get(l, j)
			if l != k {
				m.set(l, j, m.get(k, j))
				m.set(k, j, t)
			}
			if t == 0 {
				continue
			}
			for i := k + 1; i < n; i++ {
				m.set(i, j, m.get(i, j)+t*m.get(i, k))
			}
		}
	}
	ipvt[n-1] = n - 1
	if m.get(n-1, n-1) == 0 {
		return ipvt, fmt.Errorf("linpack: singular at last column")
	}
	return ipvt, nil
}

func dgeslInterp(m *jaggedMatrix, n int, ipvt []int, b *boxedVector) {
	for k := 0; k < n-1; k++ {
		l := ipvt[k]
		t := b.get(l)
		if l != k {
			b.set(l, b.get(k))
			b.set(k, t)
		}
		for i := k + 1; i < n; i++ {
			b.set(i, b.get(i)+t*m.get(i, k))
		}
	}
	for k := n - 1; k >= 0; k-- {
		b.set(k, b.get(k)/m.get(k, k))
		t := -b.get(k)
		for i := 0; i < k; i++ {
			b.set(i, b.get(i)+t*m.get(i, k))
		}
	}
}
