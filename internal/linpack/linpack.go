// Package linpack reproduces the paper's §4.6 compute-side argument: a
// 200 MHz PentiumPro ran Fortran LINPACK at ≈62 Mflop/s but Java LINPACK
// at ≈22 Mflop/s, and that JVM penalty — not the extra software layers —
// accounts for most of mpiJava's overhead. The package provides the
// LINPACK kernel (dgefa/dgesl, partial pivoting) in two variants:
//
//   - Native: flat storage, hoisted row slices, daxpy-style inner loops
//     — what an optimising Fortran/C compiler produced.
//   - Interpreted: jagged 2-D arrays, per-element accessor calls and
//     redundant index arithmetic — the code shape a 1998 JVM executed.
//
// The benchmark harness reports both in Mflop/s; the ratio, not the
// absolute numbers, is the reproduction target.
package linpack

import (
	"fmt"
	"math"
	"time"
)

// Matrix is a dense column-major n×n matrix with leading dimension n.
type Matrix struct {
	N int
	A []float64 // A[i + j*N] = element (i,j)
}

// NewMatrix builds the standard LINPACK random-like test matrix using a
// deterministic linear congruential generator, plus the right-hand side
// b = A·ones.
func NewMatrix(n int) (*Matrix, []float64) {
	m := &Matrix{N: n, A: make([]float64, n*n)}
	seed := int64(1325)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			seed = (3125 * seed) % 65536
			m.A[i+j*n] = (float64(seed) - 32768.0) / 16384.0
		}
	}
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += m.A[i+j*n]
		}
		b[i] = s
	}
	return m, b
}

// Dgefa factors the matrix in place by gaussian elimination with partial
// pivoting, returning the pivot vector. It is the optimised ("native")
// variant.
func Dgefa(m *Matrix) ([]int, error) {
	n := m.N
	a := m.A
	ipvt := make([]int, n)
	for k := 0; k < n-1; k++ {
		col := a[k*n : (k+1)*n]
		// Find pivot.
		l := k
		maxv := math.Abs(col[k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(col[i]); v > maxv {
				maxv, l = v, i
			}
		}
		ipvt[k] = l
		if col[l] == 0 {
			return ipvt, fmt.Errorf("linpack: singular at column %d", k)
		}
		if l != k {
			col[l], col[k] = col[k], col[l]
		}
		// Scale below-diagonal entries.
		t := -1.0 / col[k]
		for i := k + 1; i < n; i++ {
			col[i] *= t
		}
		// Daxpy updates of the trailing columns.
		for j := k + 1; j < n; j++ {
			cj := a[j*n : (j+1)*n]
			t := cj[l]
			if l != k {
				cj[l], cj[k] = cj[k], cj[l]
			}
			if t == 0 {
				continue
			}
			for i := k + 1; i < n; i++ {
				cj[i] += t * col[i]
			}
		}
	}
	ipvt[n-1] = n - 1
	if a[(n-1)+(n-1)*n] == 0 {
		return ipvt, fmt.Errorf("linpack: singular at last column")
	}
	return ipvt, nil
}

// Dgesl solves A·x = b using the Dgefa factorisation; b is overwritten
// with the solution.
func Dgesl(m *Matrix, ipvt []int, b []float64) {
	n := m.N
	a := m.A
	// Forward elimination.
	for k := 0; k < n-1; k++ {
		l := ipvt[k]
		t := b[l]
		if l != k {
			b[l], b[k] = b[k], b[l]
		}
		col := a[k*n : (k+1)*n]
		for i := k + 1; i < n; i++ {
			b[i] += t * col[i]
		}
	}
	// Back substitution.
	for k := n - 1; k >= 0; k-- {
		b[k] /= a[k+k*n]
		t := -b[k]
		col := a[k*n : (k+1)*n]
		for i := 0; i < k; i++ {
			b[i] += t * col[i]
		}
	}
}

// Residual computes the max-norm residual ‖A·x − b‖ of a solution
// against a fresh copy of the system, normalised LINPACK-style.
func Residual(n int, x []float64) float64 {
	m, b := NewMatrix(n)
	worst := 0.0
	for i := 0; i < n; i++ {
		s := -b[i]
		for j := 0; j < n; j++ {
			s += m.A[i+j*n] * x[j]
		}
		if v := math.Abs(s); v > worst {
			worst = v
		}
	}
	return worst
}

// Flops returns the nominal LINPACK operation count for order n.
func Flops(n int) float64 {
	nf := float64(n)
	return 2.0/3.0*nf*nf*nf + 2.0*nf*nf
}

// Result is one benchmark measurement.
type Result struct {
	Variant  string
	N        int
	Seconds  float64
	Mflops   float64
	Residual float64
}

// RunNative factors and solves once with the optimised kernel and
// reports Mflop/s.
func RunNative(n int) (Result, error) {
	m, b := NewMatrix(n)
	start := time.Now()
	ipvt, err := Dgefa(m)
	if err != nil {
		return Result{}, err
	}
	Dgesl(m, ipvt, b)
	sec := time.Since(start).Seconds()
	return Result{
		Variant:  "native",
		N:        n,
		Seconds:  sec,
		Mflops:   Flops(n) / sec / 1e6,
		Residual: Residual(n, b),
	}, nil
}

// RunInterpreted factors and solves once with the interpreted-style
// kernel and reports Mflop/s.
func RunInterpreted(n int) (Result, error) {
	m, b := newJagged(n)
	start := time.Now()
	ipvt, err := dgefaInterp(m, n)
	if err != nil {
		return Result{}, err
	}
	dgeslInterp(m, n, ipvt, b)
	sec := time.Since(start).Seconds()
	x := make([]float64, n)
	for i := range x {
		x[i] = b.get(i)
	}
	return Result{
		Variant:  "interpreted",
		N:        n,
		Seconds:  sec,
		Mflops:   Flops(n) / sec / 1e6,
		Residual: Residual(n, x),
	}, nil
}
