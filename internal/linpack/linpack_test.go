package linpack

import (
	"math"
	"testing"
)

func TestSolveSmallSystem(t *testing.T) {
	for _, n := range []int{5, 50, 100} {
		m, b := NewMatrix(n)
		ipvt, err := Dgefa(m)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		Dgesl(m, ipvt, b)
		// b = A·ones, so x must be all ones.
		for i, x := range b {
			if math.Abs(x-1) > 1e-8 {
				t.Fatalf("n=%d: x[%d] = %v", n, i, x)
			}
		}
		if r := Residual(n, b); r > 1e-8 {
			t.Fatalf("n=%d: residual %v", n, r)
		}
	}
}

func TestInterpretedMatchesNative(t *testing.T) {
	const n = 60
	nat, err := RunNative(n)
	if err != nil {
		t.Fatal(err)
	}
	interp, err := RunInterpreted(n)
	if err != nil {
		t.Fatal(err)
	}
	if nat.Residual > 1e-8 || interp.Residual > 1e-8 {
		t.Fatalf("residuals: native %v, interpreted %v", nat.Residual, interp.Residual)
	}
	if nat.Mflops <= 0 || interp.Mflops <= 0 {
		t.Fatalf("non-positive rates: %v %v", nat.Mflops, interp.Mflops)
	}
}

func TestDeterministicMatrix(t *testing.T) {
	a, _ := NewMatrix(10)
	b, _ := NewMatrix(10)
	for i := range a.A {
		if a.A[i] != b.A[i] {
			t.Fatal("matrix generation not deterministic")
		}
	}
	if a.A[0] < -2 || a.A[0] > 2 {
		t.Fatalf("element scale: %v", a.A[0])
	}
}

func TestFlops(t *testing.T) {
	if Flops(100) != 2.0/3.0*1e6+2e4 {
		t.Fatalf("Flops(100) = %v", Flops(100))
	}
}
