package dynproc

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"gompi/internal/obs"
	"gompi/internal/transport"
)

// Wire protocol of the rendezvous listener. Every connection opens with
// an 8-byte preamble (magic + kind), then length-prefixed gob messages.
// The length prefix matters: a gob.Decoder reads ahead of the value it
// decodes, so on the join connections — which carry raw engine frames
// immediately after the handshake — an unframed decoder would swallow
// the first frames into its buffer and lose them.
const (
	dynMagic = 0x676d6479 // "gmdy"

	connKindLeader = 1 // leader-to-leader handshake (Connect → Accept)
	connKindJoin   = 2 // pairwise dial-in that becomes a frame link

	// maxMsg bounds a handshake message; member tables are tiny.
	maxMsg = 4 << 20

	// handshakeTimeout bounds how long a half-open inbound connection
	// may sit in the handshake before the listener drops it.
	handshakeTimeout = 60 * time.Second
)

// leaderHello is the connect-side leader's opening message.
type leaderHello struct {
	Key     string // capability key parsed from the port name
	Epoch   int    // epoch parsed from the port name
	CtxCand int32  // connect side's agreed context-id candidate
	Members []Member
}

// leaderWelcome is the accept-side leader's reply.
type leaderWelcome struct {
	Err     string // non-empty: refusal, connection closes after
	JoinID  uint64
	CtxCand int32
	Members []Member
}

// joinHello opens a pairwise dial-in.
type joinHello struct {
	JoinID uint64
	GUID   string // dialer's process id
}

// joinAck confirms the dial-in was parked for admission.
type joinAck struct{ Err string }

func writePreamble(c net.Conn, kind uint32) error {
	var pre [8]byte
	binary.LittleEndian.PutUint32(pre[0:], dynMagic)
	binary.LittleEndian.PutUint32(pre[4:], kind)
	_, err := c.Write(pre[:])
	return err
}

func writeMsg(c net.Conn, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	var lp [4]byte
	binary.LittleEndian.PutUint32(lp[:], uint32(buf.Len()))
	if _, err := c.Write(lp[:]); err != nil {
		return err
	}
	_, err := c.Write(buf.Bytes())
	return err
}

func readMsg(c net.Conn, v any) error {
	var lp [4]byte
	if _, err := io.ReadFull(c, lp[:]); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint32(lp[:])
	if n > maxMsg {
		return fmt.Errorf("dynproc: oversized handshake message (%d bytes)", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(c, b); err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// Port is an open rendezvous port: the server half of MPI_Open_port.
// Inbound leader handshakes park on it until an Accept collects them.
type Port struct {
	fab    *Fabric
	name   string
	key    string
	epoch  int
	hellos chan *inboundLeader
}

type inboundLeader struct {
	c     net.Conn
	hello leaderHello
}

// Name returns the full port name to hand to a connecting world.
func (p *Port) Name() string { return p.name }

// Close deregisters the port and refuses everything parked on it.
// The rendezvous listener itself stays up — it is shared by every port
// and join of the process.
func (p *Port) Close() {
	p.fab.mu.Lock()
	if p.fab.ports != nil {
		delete(p.fab.ports, p.key)
	}
	p.fab.mu.Unlock()
	p.drain("port closed")
}

func (p *Port) drain(reason string) {
	for {
		select {
		case in := <-p.hellos:
			writeMsg(in.c, leaderWelcome{Err: reason})
			in.c.Close()
		default:
			return
		}
	}
}

// OpenPort opens a rendezvous port on this process: starts the shared
// listener if needed and mints an unguessable port name bound to the
// current world epoch.
func (f *Fabric) OpenPort() (*Port, error) {
	addr, err := f.EnsureListener()
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	key := randomHex(16)
	p := &Port{
		fab:    f,
		key:    key,
		epoch:  f.epoch,
		name:   FormatPortName(addr, f.epoch, key),
		hellos: make(chan *inboundLeader, 8),
	}
	if f.ports == nil {
		f.ports = map[string]*Port{}
	}
	f.ports[key] = p
	return p, nil
}

// LookupPort resolves an open port of this process by its full name.
func (f *Fabric) LookupPort(name string) *Port {
	_, _, key, err := ParsePortName(name)
	if err != nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ports[key]
}

func (f *Fabric) acceptLoop(ln net.Listener) {
	defer f.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go f.handleConn(c)
	}
}

func (f *Fabric) handleConn(c net.Conn) {
	c.SetDeadline(time.Now().Add(handshakeTimeout))
	var pre [8]byte
	if _, err := io.ReadFull(c, pre[:]); err != nil {
		c.Close()
		return
	}
	if binary.LittleEndian.Uint32(pre[0:]) != dynMagic {
		c.Close()
		return
	}
	switch binary.LittleEndian.Uint32(pre[4:]) {
	case connKindLeader:
		var h leaderHello
		if err := readMsg(c, &h); err != nil {
			c.Close()
			return
		}
		f.mu.Lock()
		p := f.ports[h.Key]
		var reject string
		switch {
		case p == nil:
			reject = "unknown or closed port"
		case p.epoch != h.Epoch || p.epoch != f.epoch:
			reject = fmt.Sprintf("stale port: opened at world epoch %d, world is at epoch %d", h.Epoch, f.epoch)
		}
		f.mu.Unlock()
		if reject != "" {
			writeMsg(c, leaderWelcome{Err: reject})
			c.Close()
			return
		}
		select {
		case p.hellos <- &inboundLeader{c: c, hello: h}:
			// AcceptLeader re-arms the deadline when it picks this up.
		default:
			writeMsg(c, leaderWelcome{Err: "port connection backlog full"})
			c.Close()
		}
	case connKindJoin:
		var h joinHello
		if err := readMsg(c, &h); err != nil {
			c.Close()
			return
		}
		if err := writeMsg(c, joinAck{}); err != nil {
			c.Close()
			return
		}
		c.SetDeadline(time.Time{})
		f.joinFor(h.JoinID).put(h.GUID, c)
	default:
		c.Close()
	}
}

// DialLeader runs the connect side of the leader handshake against a
// remote port and returns the admission ticket for the local world.
func (f *Fabric) DialLeader(portName string, local []Member, ctxCand int32, timeout time.Duration) (*Ticket, error) {
	defer f.span(obs.EvJoin, int64(len(local)))()
	addr, epoch, key, err := ParsePortName(portName)
	if err != nil {
		return nil, err
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dynproc: dialing port at %s: %w", addr, err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(timeout))
	if err := writePreamble(c, connKindLeader); err != nil {
		return nil, fmt.Errorf("dynproc: port handshake: %w", err)
	}
	hello := leaderHello{Key: key, Epoch: epoch, CtxCand: ctxCand, Members: local}
	if err := writeMsg(c, hello); err != nil {
		return nil, fmt.Errorf("dynproc: port handshake: %w", err)
	}
	var w leaderWelcome
	if err := readMsg(c, &w); err != nil {
		return nil, fmt.Errorf("dynproc: port handshake: %w", err)
	}
	if w.Err != "" {
		return nil, fmt.Errorf("dynproc: port refused connection: %s", w.Err)
	}
	return &Ticket{JoinID: w.JoinID, AcceptSide: false, Remote: w.Members, RemoteCtxCand: w.CtxCand}, nil
}

// AcceptLeader runs the accept side: waits for a leader handshake
// parked on the port, names the join, and replies with the local
// member table.
func (f *Fabric) AcceptLeader(p *Port, local []Member, ctxCand int32, timeout time.Duration) (*Ticket, error) {
	defer f.span(obs.EvJoin, int64(len(local)))()
	var in *inboundLeader
	select {
	case in = <-p.hellos:
	case <-time.After(timeout):
		return nil, fmt.Errorf("dynproc: accept on port %q: no connection within %v", p.name, timeout)
	case <-f.done:
		return nil, transport.ErrClosed
	}
	defer in.c.Close()
	in.c.SetDeadline(time.Now().Add(timeout))
	id, err := randomJoinID()
	if err != nil {
		return nil, err
	}
	if err := writeMsg(in.c, leaderWelcome{JoinID: id, CtxCand: ctxCand, Members: local}); err != nil {
		return nil, fmt.Errorf("dynproc: port handshake: %w", err)
	}
	return &Ticket{JoinID: id, AcceptSide: true, Remote: in.hello.Members, RemoteCtxCand: in.hello.CtxCand}, nil
}

func randomJoinID() (uint64, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, fmt.Errorf("dynproc: join id: %w", err)
	}
	id := binary.LittleEndian.Uint64(b[:])
	if id == 0 {
		id = 1
	}
	return id, nil
}

// pendingJoin parks pairwise dial-ins by the dialer's GUID until the
// local Admit collects them. It is created lazily by whichever side
// arrives first — an inbound connection may beat the broadcast that
// tells this process the join exists.
type pendingJoin struct {
	mu    sync.Mutex
	cond  *sync.Cond
	conns map[string]net.Conn
}

func newPendingJoin() *pendingJoin {
	pj := &pendingJoin{conns: map[string]net.Conn{}}
	pj.cond = sync.NewCond(&pj.mu)
	return pj
}

func (f *Fabric) joinFor(id uint64) *pendingJoin {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.joins == nil {
		f.joins = map[uint64]*pendingJoin{}
	}
	pj := f.joins[id]
	if pj == nil {
		pj = newPendingJoin()
		f.joins[id] = pj
	}
	return pj
}

func (f *Fabric) forgetJoin(id uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.joins != nil {
		delete(f.joins, id)
	}
}

func (pj *pendingJoin) put(guid string, c net.Conn) {
	pj.mu.Lock()
	defer pj.mu.Unlock()
	if old, ok := pj.conns[guid]; ok {
		old.Close()
	}
	pj.conns[guid] = c
	pj.cond.Broadcast()
}

func (pj *pendingJoin) take(guid string, deadline time.Time) (net.Conn, error) {
	timer := time.AfterFunc(time.Until(deadline), func() {
		pj.mu.Lock()
		pj.cond.Broadcast()
		pj.mu.Unlock()
	})
	defer timer.Stop()
	pj.mu.Lock()
	defer pj.mu.Unlock()
	for {
		if c, ok := pj.conns[guid]; ok {
			delete(pj.conns, guid)
			return c, nil
		}
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("dynproc: peer %s did not dial in before the deadline", guid)
		}
		pj.cond.Wait()
	}
}

func (pj *pendingJoin) closeAll() {
	pj.mu.Lock()
	defer pj.mu.Unlock()
	for g, c := range pj.conns {
		c.Close()
		delete(pj.conns, g)
	}
	pj.cond.Broadcast()
}

// dialJoin opens the pairwise frame connection toward one remote
// member's rendezvous listener.
func (f *Fabric) dialJoin(addr string, id uint64, deadline time.Time) (net.Conn, error) {
	c, err := net.DialTimeout("tcp", addr, time.Until(deadline))
	if err != nil {
		return nil, err
	}
	c.SetDeadline(deadline)
	if err := writePreamble(c, connKindJoin); err != nil {
		c.Close()
		return nil, err
	}
	if err := writeMsg(c, joinHello{JoinID: id, GUID: f.guid}); err != nil {
		c.Close()
		return nil, err
	}
	var ack joinAck
	if err := readMsg(c, &ack); err != nil {
		c.Close()
		return nil, err
	}
	if ack.Err != "" {
		c.Close()
		return nil, errors.New(ack.Err)
	}
	c.SetDeadline(time.Time{})
	return c, nil
}

// lookupGUID reports whether a peer is already admitted, and if so at
// which index and whether its link is still alive.
func (f *Fabric) lookupGUID(guid string) (idx int, alive, known bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	idx, known = f.byGUID[guid]
	if !known {
		return 0, false, false
	}
	return idx, !f.peers[idx-f.baseSize].dead.Load(), true
}

// attach admits one connection as the next dynamic peer and starts its
// read loop.
func (f *Fabric) attach(guid string, c net.Conn) (int, error) {
	f.mu.Lock()
	select {
	case <-f.done:
		f.mu.Unlock()
		c.Close()
		return 0, transport.ErrClosed
	default:
	}
	l := newLink(c, guid)
	idx := f.baseSize + len(f.peers)
	f.peers = append(f.peers, l)
	if f.byGUID == nil {
		f.byGUID = map[string]int{}
	}
	f.byGUID[guid] = idx
	f.size.Store(int64(f.baseSize + len(f.peers)))
	f.wg.Add(1)
	f.mu.Unlock()
	go f.readLoop(idx, l)
	return idx, nil
}

// Admit links this process to every member of the joining remote world
// and returns their local world indices, in the remote world's rank
// order. The accept side waits for dial-ins; the connect side dials.
// Members already admitted through an earlier join are reused (their
// indices are returned again), so repeated Connect/Accept between the
// same worlds — or a Merge after an Accept — never duplicates links.
// On success the world epoch advances.
func (f *Fabric) Admit(t *Ticket, timeout time.Duration) ([]int, error) {
	defer f.span(obs.EvAdmit, int64(len(t.Remote)))()
	deadline := time.Now().Add(timeout)
	idxs := make([]int, len(t.Remote))
	for i, m := range t.Remote {
		if m.GUID == f.guid {
			return nil, fmt.Errorf("dynproc: member %d of the remote world is this process; a world cannot connect to itself", i)
		}
		if idx, alive, known := f.lookupGUID(m.GUID); known {
			if !alive {
				return nil, &transport.PeerLostError{Peer: idx}
			}
			idxs[i] = idx
			continue
		}
		var c net.Conn
		var err error
		if t.AcceptSide {
			c, err = f.joinFor(t.JoinID).take(m.GUID, deadline)
		} else {
			c, err = f.dialJoin(m.Addr, t.JoinID, deadline)
		}
		if err != nil {
			return nil, fmt.Errorf("dynproc: linking remote member %d (%s): %w", i, m.GUID, err)
		}
		idx, aerr := f.attach(m.GUID, c)
		if aerr != nil {
			return nil, aerr
		}
		idxs[i] = idx
	}
	f.forgetJoin(t.JoinID)
	f.mu.Lock()
	f.epoch++
	f.mu.Unlock()
	return idxs, nil
}
