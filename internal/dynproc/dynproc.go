// Package dynproc implements MPI-2 dynamic process management under the
// public mpi binding: out-of-band rendezvous ports (MPI_Open_port /
// MPI_Close_port), the leader handshake behind MPI_Comm_connect /
// MPI_Comm_accept, and the peer-admission fabric that lets two running
// worlds — or a world and the children it spawned — flood each other's
// endpoint tables so every rank pair becomes reachable.
//
// The design splits into two halves:
//
//   - Fabric is a transport.Device decorator. It passes traffic for the
//     original world straight through to the wrapped base device and
//     gives every admitted late joiner a fresh local peer index at
//     baseSize, baseSize+1, ... — existing ranks are never renumbered,
//     so the engine's live tag space, posted receives and peer-death
//     bookkeeping survive world growth. Because the two processes on a
//     dynamic link each number the other in their own local space, the
//     fabric rewrites the sender-stamped source rank of every inbound
//     frame (core.PatchFrameSource) to the receiver's index for that
//     peer; reply routing through the engine then just works.
//
//   - The join protocol (join.go) is deliberately MatlabMPI-simple: one
//     leader-to-leader connection exchanges both sides' member tables
//     and context candidates, then every pair of processes dials one
//     TCP connection (connect side dials, accept side parks the inbound
//     socket until its local Admit catches up). There is no retry
//     cleverness; errors and timeouts surface to the caller, which maps
//     them onto the MPI_ERR_PORT / MPI_ERR_SPAWN classes.
//
// Port names encode everything a stranger needs to dial in:
//
//	gompi-port://HOST:PORT/ep<epoch>/k<hex-key>
//
// HOST:PORT is the process's rendezvous listener, <epoch> is the world
// epoch at Open_port time (a connect into a world that has since grown
// or shrunk under the port owner is refused as stale), and <hex-key> is
// a random capability so a port name is unguessable and a closed port
// is unreachable even while the listener lives on.
//
// Dynamic links are TCP today: a cross-process shared-memory segment
// cannot be grown after launch, so the per-pair medium choice the
// transport registry makes at boot (shm same-node, tcp off-node) is
// fixed for the original world, and late joiners always ride the socket
// path. The seam is linkDialer/acceptConn, which carry no mesh
// assumptions, so a future shm dial-in only touches this package.
package dynproc

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Member identifies one process of a joining world: a globally unique
// process id plus the rendezvous listener it can be dialed on.
type Member struct {
	GUID string
	Addr string
}

// Ticket is the outcome of a leader handshake: everything a process
// needs to admit the remote world's members. It travels from the leader
// to its local world over an ordinary collective broadcast, so it is
// plain gob-encodable data.
type Ticket struct {
	// JoinID names this join on the accept side's pending tables, so a
	// dial-in can be parked before the parked-for process even knows
	// the join exists (bcast stragglers).
	JoinID uint64
	// AcceptSide is true on the world that owned the port: its members
	// wait for dial-ins; the connect side's members do the dialing.
	AcceptSide bool
	// Remote is the other world's member table, in that world's rank
	// order. Its order is what both sides agree on, so remote group
	// rank r is Remote[r] everywhere.
	Remote []Member
	// RemoteCtxCand is the remote world's context-id candidate; both
	// sides commit max(local, remote) so the new pair collides with
	// neither tag space.
	RemoteCtxCand int32
}

const portScheme = "gompi-port"

// FormatPortName renders the canonical port name for a listener
// address, world epoch and capability key.
func FormatPortName(addr string, epoch int, key string) string {
	return fmt.Sprintf("%s://%s/ep%d/k%s", portScheme, addr, epoch, key)
}

// ParsePortName splits a port name into listener address, epoch and
// capability key, rejecting anything that does not match the canonical
// shape.
func ParsePortName(name string) (addr string, epoch int, key string, err error) {
	u, uerr := url.Parse(name)
	if uerr != nil || u.Scheme != portScheme || u.Host == "" {
		return "", 0, "", fmt.Errorf("dynproc: malformed port name %q", name)
	}
	parts := strings.Split(strings.TrimPrefix(u.Path, "/"), "/")
	if len(parts) != 2 || !strings.HasPrefix(parts[0], "ep") || !strings.HasPrefix(parts[1], "k") {
		return "", 0, "", fmt.Errorf("dynproc: malformed port name %q", name)
	}
	epoch, eerr := strconv.Atoi(strings.TrimPrefix(parts[0], "ep"))
	if eerr != nil || epoch < 0 {
		return "", 0, "", fmt.Errorf("dynproc: malformed port epoch in %q", name)
	}
	key = strings.TrimPrefix(parts[1], "k")
	if key == "" {
		return "", 0, "", fmt.Errorf("dynproc: missing port key in %q", name)
	}
	return u.Host, epoch, key, nil
}

var guidSeq atomic.Uint64

// newGUID builds a process-unique id: host + pid make it unique across
// the machine set, the random tail across in-process worlds (mpi.Run
// hosts several ranks per OS process) and across pid reuse.
func newGUID() string {
	host, _ := os.Hostname()
	if host == "" {
		host = "localhost"
	}
	return fmt.Sprintf("%s-%d-%s-%d", host, os.Getpid(), randomHex(8), guidSeq.Add(1))
}

func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// Fall back to something still unique per call within the
		// process; crypto/rand failing is a broken environment anyway.
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b)
}
