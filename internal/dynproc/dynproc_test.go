package dynproc

import (
	"errors"
	"strings"
	"testing"
	"time"

	"gompi/internal/transport"
)

func TestPortNameRoundTrip(t *testing.T) {
	name := FormatPortName("127.0.0.1:45123", 3, "9f3aabcd")
	addr, epoch, key, err := ParsePortName(name)
	if err != nil {
		t.Fatalf("ParsePortName(%q): %v", name, err)
	}
	if addr != "127.0.0.1:45123" || epoch != 3 || key != "9f3aabcd" {
		t.Fatalf("round trip gave (%q, %d, %q)", addr, epoch, key)
	}
}

func TestPortNameRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"not a port",
		"http://127.0.0.1:1/ep0/kaa",              // wrong scheme
		"gompi-port://127.0.0.1:1",                // missing path
		"gompi-port://127.0.0.1:1/zz0/kaa",        // bad epoch segment
		"gompi-port://127.0.0.1:1/ep0/aa",         // bad key segment
		"gompi-port://127.0.0.1:1/epnope/kaa",     // non-numeric epoch
		"gompi-port://127.0.0.1:1/ep0/kaa/extras", // trailing segment
	} {
		if _, _, _, err := ParsePortName(bad); err == nil {
			t.Errorf("ParsePortName(%q) accepted garbage", bad)
		}
	}
}

// twoFabrics builds two independent single-rank worlds, each wrapped in
// a dynamic-process fabric, and registers cleanup.
func twoFabrics(t *testing.T) (*Fabric, *Fabric) {
	t.Helper()
	fa := NewFabric(transport.NewShmJob(1, 0)[0])
	fb := NewFabric(transport.NewShmJob(1, 0)[0])
	t.Cleanup(func() { fa.Close(); fb.Close() })
	return fa, fb
}

// join runs the full leader handshake plus both sides' admission and
// returns each side's local peer indices for the other world.
func join(t *testing.T, fa, fb *Fabric, ctxA, ctxB int32) (worldsA, worldsB []int, tktA, tktB *Ticket) {
	t.Helper()
	port, err := fa.OpenPort()
	if err != nil {
		t.Fatalf("OpenPort: %v", err)
	}
	defer port.Close()
	addrA, err := fa.EnsureListener()
	if err != nil {
		t.Fatalf("EnsureListener(A): %v", err)
	}
	addrB, err := fb.EnsureListener()
	if err != nil {
		t.Fatalf("EnsureListener(B): %v", err)
	}
	memA := []Member{{GUID: fa.GUID(), Addr: addrA}}
	memB := []Member{{GUID: fb.GUID(), Addr: addrB}}

	type res struct {
		tkt *Ticket
		err error
	}
	acceptCh := make(chan res, 1)
	go func() {
		tkt, err := fa.AcceptLeader(port, memA, ctxA, 5*time.Second)
		acceptCh <- res{tkt, err}
	}()
	tktB, err = fb.DialLeader(port.Name(), memB, ctxB, 5*time.Second)
	if err != nil {
		t.Fatalf("DialLeader: %v", err)
	}
	ra := <-acceptCh
	if ra.err != nil {
		t.Fatalf("AcceptLeader: %v", ra.err)
	}
	tktA = ra.tkt

	admitA := make(chan res, 1)
	go func() {
		w, err := fa.Admit(tktA, 5*time.Second)
		if err == nil {
			worldsA = w
		}
		admitA <- res{err: err}
	}()
	worldsB, err = fb.Admit(tktB, 5*time.Second)
	if err != nil {
		t.Fatalf("Admit(B): %v", err)
	}
	if ra := <-admitA; ra.err != nil {
		t.Fatalf("Admit(A): %v", ra.err)
	}
	return worldsA, worldsB, tktA, tktB
}

func TestLeaderHandshakeAndAdmit(t *testing.T) {
	fa, fb := twoFabrics(t)
	worldsA, worldsB, tktA, tktB := join(t, fa, fb, 10, 20)

	if tktA.AcceptSide != true || tktB.AcceptSide != false {
		t.Fatalf("accept-side flags: A=%v B=%v", tktA.AcceptSide, tktB.AcceptSide)
	}
	if tktA.RemoteCtxCand != 20 || tktB.RemoteCtxCand != 10 {
		t.Fatalf("context candidates: A saw %d, B saw %d", tktA.RemoteCtxCand, tktB.RemoteCtxCand)
	}
	if len(tktA.Remote) != 1 || tktA.Remote[0].GUID != fb.GUID() {
		t.Fatalf("A's remote member table: %+v", tktA.Remote)
	}
	// Both worlds have one launch-time rank, so the first admitted peer
	// gets local index 1 on each side.
	if len(worldsA) != 1 || worldsA[0] != 1 || len(worldsB) != 1 || worldsB[0] != 1 {
		t.Fatalf("admitted peer indices: A=%v B=%v", worldsA, worldsB)
	}
	if fa.Size() != 2 || fb.Size() != 2 {
		t.Fatalf("fabric sizes after admit: A=%d B=%d", fa.Size(), fb.Size())
	}
	if fa.Epoch() == 0 || fb.Epoch() == 0 {
		t.Fatalf("epochs did not advance: A=%d B=%d", fa.Epoch(), fb.Epoch())
	}
}

func TestFrameSourceRewrittenAcrossLink(t *testing.T) {
	fa, fb := twoFabrics(t)
	_, worldsB, _, _ := join(t, fa, fb, 0, 0)

	// B sends a frame stamped with its own world rank (0 in its world);
	// A must receive it stamped with B's local index in A's numbering.
	frame := transport.GetBuf(16)[:16]
	for i := range frame {
		frame[i] = 0
	}
	frame[0] = 6 // an arbitrary kind byte; [1:5) is the source rank
	if err := fb.Send(worldsB[0], frame); err != nil {
		t.Fatalf("Send over dyn link: %v", err)
	}
	got, err := fa.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	defer got.Release()
	if len(got.Data) != 16 {
		t.Fatalf("frame length %d, want 16", len(got.Data))
	}
	src := int(uint32(got.Data[1]) | uint32(got.Data[2])<<8 | uint32(got.Data[3])<<16 | uint32(got.Data[4])<<24)
	if src != 1 {
		t.Fatalf("received frame source %d, want the sender's local index 1", src)
	}
}

func TestPeerLossSurfacesAsPeerLostError(t *testing.T) {
	fa, fb := twoFabrics(t)
	join(t, fa, fb, 0, 0)

	fb.Close()
	got, err := fa.Recv()
	if err == nil {
		got.Release()
		t.Fatalf("Recv returned a frame after peer close; want PeerLostError")
	}
	var pl *transport.PeerLostError
	if !errors.As(err, &pl) {
		t.Fatalf("Recv error %v, want PeerLostError", err)
	}
	if pl.Peer != 1 {
		t.Fatalf("lost peer %d, want local index 1", pl.Peer)
	}
}

func TestDialRejectedOnStaleEpochAndBadKey(t *testing.T) {
	fa, fb := twoFabrics(t)
	addrB, err := fb.EnsureListener()
	if err != nil {
		t.Fatalf("EnsureListener(B): %v", err)
	}
	memB := []Member{{GUID: fb.GUID(), Addr: addrB}}

	port, err := fa.OpenPort()
	if err != nil {
		t.Fatalf("OpenPort: %v", err)
	}
	addrA, _, key, err := ParsePortName(port.Name())
	if err != nil {
		t.Fatalf("parsing own port name: %v", err)
	}

	// Wrong capability key: refused.
	if _, err := fb.DialLeader(FormatPortName(addrA, fa.Epoch(), "deadbeef"), memB, 0, 2*time.Second); err == nil {
		t.Fatalf("dial with a wrong key succeeded")
	}
	// Stale epoch (port minted before a world grew): refused.
	if _, err := fb.DialLeader(FormatPortName(addrA, fa.Epoch()+7, key), memB, 0, 2*time.Second); err == nil {
		t.Fatalf("dial with a stale epoch succeeded")
	}
	port.Close()
	// Closed port: refused.
	if _, err := fb.DialLeader(port.Name(), memB, 0, 2*time.Second); err == nil {
		t.Fatalf("dial to a closed port succeeded")
	}
}

func TestDeviceStatsGrowDynEntry(t *testing.T) {
	fa, fb := twoFabrics(t)
	_, worldsB, _, _ := join(t, fa, fb, 0, 0)

	frame := transport.GetBuf(8)[:8]
	for i := range frame {
		frame[i] = 0
	}
	if err := fb.Send(worldsB[0], frame); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := fa.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	got.Release()

	found := false
	for _, ds := range fa.DeviceStats() {
		if ds.Name == "dyn" {
			found = true
			if ds.FramesRecv == 0 {
				t.Fatalf("dyn stats counted no received frames: %+v", ds)
			}
		}
	}
	if !found {
		names := []string{}
		for _, ds := range fa.DeviceStats() {
			names = append(names, ds.Name)
		}
		t.Fatalf("no dyn device entry in stats (have %s)", strings.Join(names, ", "))
	}
}
