package dynproc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"gompi/internal/core"
	"gompi/internal/obs"
	"gompi/internal/transport"
)

// linkWriterSize matches the tcp device's per-peer staging buffer: one
// buffered write coalesces length prefix, header and small payload.
const linkWriterSize = 16 << 10

// link is one admitted dynamic peer: a single TCP connection carrying
// length-prefixed frames, exactly the tcp device's wire framing.
type link struct {
	mu   sync.Mutex // serializes frame writes
	c    net.Conn
	w    *bufio.Writer
	guid string
	dead atomic.Bool
}

func newLink(c net.Conn, guid string) *link {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &link{c: c, w: bufio.NewWriterSize(c, linkWriterSize), guid: guid}
}

func (l *link) writeFrame(hdr, payload []byte) error {
	var lp [4]byte
	binary.LittleEndian.PutUint32(lp[:], uint32(len(hdr)+len(payload)))
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(lp[:]); err != nil {
		return err
	}
	if _, err := l.w.Write(hdr); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := l.w.Write(payload); err != nil {
			return err
		}
	}
	return l.w.Flush()
}

// Fabric is the dynamic-process device decorator. Ranks below baseSize
// are the original world and route through the wrapped base device;
// every admitted late joiner gets the next local index and a dedicated
// socket link. One pump goroutine merges base traffic into the same
// inbox the link read loops feed, so the engine above sees a single
// Device whose Size grows.
type Fabric struct {
	base     transport.Device
	baseSize int
	guid     string

	inbox      chan transport.Frame
	fail       chan error
	done       chan struct{}
	baseClosed chan struct{} // base device reached end-of-stream on its own
	closeOnce  sync.Once
	wg         sync.WaitGroup

	mu     sync.Mutex
	ln     net.Listener
	lnAddr string
	peers  []*link // dynamic peers; world index = baseSize + slice index
	byGUID map[string]int
	epoch  int
	ports  map[string]*Port // capability key → open port
	joins  map[uint64]*pendingJoin

	size atomic.Int64

	framesSent, framesRecv atomic.Uint64
	bytesSent, bytesRecv   atomic.Uint64

	// rec is the rank's flight recorder (nil = tracing disabled); the
	// join/admit handshakes record spans on it. Set once at wiring
	// time, before any handshake can run.
	rec *obs.Recorder
	// spanSeq mints ids for overlapping join/admit spans.
	spanSeq atomic.Uint32
}

// NewFabric wraps base. The pump starts immediately: frames cost one
// extra channel hop whether or not the world ever grows, in exchange
// for a data path with no mode switch to race against.
func NewFabric(base transport.Device) *Fabric {
	f := &Fabric{
		base:       base,
		baseSize:   base.Size(),
		guid:       newGUID(),
		inbox:      make(chan transport.Frame, transport.DefaultInboxDepth),
		fail:       make(chan error, 64),
		done:       make(chan struct{}),
		baseClosed: make(chan struct{}),
	}
	f.size.Store(int64(f.baseSize))
	f.wg.Add(1)
	go f.pump()
	return f
}

// GUID returns this process endpoint's globally unique id.
func (f *Fabric) GUID() string { return f.guid }

// SetRecorder attaches the rank's flight recorder. Call before the
// first Connect/Accept; a nil recorder keeps tracing disabled.
func (f *Fabric) SetRecorder(r *obs.Recorder) { f.rec = r }

// span opens a trace span and returns its closer.
func (f *Fabric) span(kind obs.EventKind, val int64) func() {
	if f.rec == nil {
		return func() {}
	}
	id := f.spanSeq.Add(1)
	f.rec.Begin(kind, id, val)
	return func() { f.rec.End(kind, id, 0) }
}

// Epoch returns the world epoch: the number of joins admitted so far.
func (f *Fabric) Epoch() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// BaseSize returns the size of the original (launch-time) world.
func (f *Fabric) BaseSize() int { return f.baseSize }

// Rank returns this endpoint's world rank. Original ranks keep their
// launch-time numbers forever; the fabric only ever appends.
func (f *Fabric) Rank() int { return f.base.Rank() }

// Size returns the current world size as this process sees it:
// baseSize plus every dynamic peer admitted so far.
func (f *Fabric) Size() int { return int(f.size.Load()) }

// Unwrap exposes the wrapped base device to stats queries and tests.
func (f *Fabric) Unwrap() transport.Device { return f.base }

func (f *Fabric) linkAt(dst int) *link {
	f.mu.Lock()
	defer f.mu.Unlock()
	i := dst - f.baseSize
	if i < 0 || i >= len(f.peers) {
		return nil
	}
	return f.peers[i]
}

// Send delivers a contiguous frame; dynamic destinations go over the
// peer link with the tcp wire framing.
func (f *Fabric) Send(dst int, frame []byte) error {
	if dst < f.baseSize {
		return f.base.Send(dst, frame)
	}
	l := f.linkAt(dst)
	if l == nil {
		return fmt.Errorf("dynproc: no link to peer %d (world size %d)", dst, f.Size())
	}
	if l.dead.Load() {
		return &transport.PeerLostError{Peer: dst}
	}
	if err := l.writeFrame(frame, nil); err != nil {
		return &transport.PeerLostError{Peer: dst, Err: err}
	}
	f.countSend(len(frame))
	return nil
}

// Sendv is the scatter-gather send toward either half of the world.
func (f *Fabric) Sendv(dst int, hdr, payload []byte, recycle bool) error {
	if dst < f.baseSize {
		return f.base.Sendv(dst, hdr, payload, recycle)
	}
	l := f.linkAt(dst)
	release := func() {
		transport.PutBuf(hdr)
		if recycle {
			transport.PutBuf(payload)
		}
	}
	if l == nil {
		release()
		return fmt.Errorf("dynproc: no link to peer %d (world size %d)", dst, f.Size())
	}
	if l.dead.Load() {
		release()
		return &transport.PeerLostError{Peer: dst}
	}
	err := l.writeFrame(hdr, payload)
	n := len(hdr) + len(payload)
	release()
	if err != nil {
		return &transport.PeerLostError{Peer: dst, Err: err}
	}
	f.countSend(n)
	return nil
}

// Recv returns the next frame from the whole world — base device or any
// dynamic link — or a PeerLostError when either half loses a peer.
func (f *Fabric) Recv() (transport.Frame, error) {
	// Frames already received win over failure reports.
	select {
	case fr := <-f.inbox:
		return fr, nil
	default:
	}
	select {
	case fr := <-f.inbox:
		return fr, nil
	case err := <-f.fail:
		return transport.Frame{}, err
	case <-f.baseClosed:
		// The base device died under us (e.g. fault injection closing
		// the endpoint): behave as it would — drain what arrived, then
		// report end-of-stream persistently.
		select {
		case fr := <-f.inbox:
			return fr, nil
		case err := <-f.fail:
			return transport.Frame{}, err
		default:
			return transport.Frame{}, transport.ErrClosed
		}
	case <-f.done:
		select {
		case fr := <-f.inbox:
			return fr, nil
		default:
			return transport.Frame{}, transport.ErrClosed
		}
	}
}

// pump forwards the base device's traffic into the fabric inbox.
// Peer-loss reports pass through and pumping continues (the base
// device stays usable for its surviving peers); any other base error is
// terminal for the base and forwarded once.
func (f *Fabric) pump() {
	defer f.wg.Done()
	for {
		fr, err := f.base.Recv()
		if err != nil {
			if errors.Is(err, transport.ErrClosed) {
				// Surface the closure to the engine: blocked and future
				// Recv calls must see ErrClosed just as they would on
				// the bare device, not hang on an idle inbox.
				close(f.baseClosed)
				return
			}
			var pl *transport.PeerLostError
			recoverable := errors.As(err, &pl)
			select {
			case f.fail <- err:
			case <-f.done:
				return
			}
			if !recoverable {
				return
			}
			continue
		}
		select {
		case f.inbox <- fr:
		case <-f.done:
			fr.Release()
			return
		}
	}
}

// readLoop drains one dynamic link. Before a frame reaches the engine
// its sender-stamped source rank — the sender's own index for itself,
// meaningless here — is rewritten to this process's index for the peer,
// so envelope matching and reply routing see a coherent local world.
func (f *Fabric) readLoop(idx int, l *link) {
	defer f.wg.Done()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(l.c, hdr[:]); err != nil {
			f.linkLost(idx, l, err)
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		buf := transport.GetBuf(int(n))
		if _, err := io.ReadFull(l.c, buf); err != nil {
			transport.PutBuf(buf)
			f.linkLost(idx, l, err)
			return
		}
		if err := core.PatchFrameSource(buf, int32(idx)); err != nil {
			transport.PutBuf(buf)
			f.linkLost(idx, l, err)
			return
		}
		f.countRecv(int(n))
		select {
		case f.inbox <- transport.PooledFrame(buf, nil, true, false):
		case <-f.done:
			transport.PutBuf(buf)
			return
		}
	}
}

// linkLost marks a dynamic link dead and reports the peer once, unless
// the fabric itself is shutting down.
func (f *Fabric) linkLost(idx int, l *link, err error) {
	if l.dead.Swap(true) {
		return
	}
	l.c.Close()
	select {
	case <-f.done:
		return
	default:
	}
	select {
	case f.fail <- &transport.PeerLostError{Peer: idx, Err: err}:
	case <-f.done:
	}
}

// EnsureListener starts the rendezvous listener on first use and
// returns its address. One listener serves every port and join of this
// process for the life of the fabric.
func (f *Fabric) EnsureListener() (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	select {
	case <-f.done:
		return "", transport.ErrClosed
	default:
	}
	if f.ln != nil {
		return f.lnAddr, nil
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("dynproc: rendezvous listener: %w", err)
	}
	f.ln = ln
	f.lnAddr = ln.Addr().String()
	f.wg.Add(1)
	go f.acceptLoop(ln)
	return f.lnAddr, nil
}

// Close tears the fabric down: rendezvous listener, open ports, parked
// joins, every dynamic link, then the base device. Blocked Recv calls
// return ErrClosed.
func (f *Fabric) Close() error {
	f.closeOnce.Do(func() {
		close(f.done)
		f.mu.Lock()
		ln := f.ln
		peers := append([]*link(nil), f.peers...)
		ports := f.ports
		joins := f.joins
		f.ports = nil
		f.joins = nil
		f.mu.Unlock()
		if ln != nil {
			ln.Close()
		}
		for _, p := range ports {
			p.drain("world shut down")
		}
		for _, pj := range joins {
			pj.closeAll()
		}
		for _, l := range peers {
			l.dead.Store(true)
			l.c.Close()
		}
		f.base.Close()
		f.wg.Wait()
	})
	return nil
}

func (f *Fabric) countSend(n int) {
	f.framesSent.Add(1)
	f.bytesSent.Add(uint64(n))
}

func (f *Fabric) countRecv(n int) {
	f.framesRecv.Add(1)
	f.bytesRecv.Add(uint64(n))
}

// DeviceStats reports the base device's media plus, once any dynamic
// traffic or peer exists, a "dyn" entry for the late-joiner links.
func (f *Fabric) DeviceStats() []transport.DevStats {
	out := transport.DeviceStatsOf(f.base)
	f.mu.Lock()
	active := len(f.peers) > 0
	f.mu.Unlock()
	if active || f.framesSent.Load() > 0 || f.framesRecv.Load() > 0 {
		out = append(out, transport.DevStats{
			Name:       "dyn",
			FramesSent: f.framesSent.Load(),
			FramesRecv: f.framesRecv.Load(),
			BytesSent:  f.bytesSent.Load(),
			BytesRecv:  f.bytesRecv.Load(),
			Pool:       transport.PoolStats(),
		})
	}
	return out
}

var (
	_ transport.Device        = (*Fabric)(nil)
	_ transport.StatsReporter = (*Fabric)(nil)
	_ transport.Unwrapper     = (*Fabric)(nil)
)
