package launch

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
	"time"
)

// Dynamic-process plumbing: MPI_Comm_spawn needs someone to actually
// fork processes. Under mpirun that someone is the launcher itself — it
// exports a control socket (EnvControl) that a rank's Spawn call sends
// a SpawnRequest to, so the children become the launcher's children and
// share its reap-and-report machinery. A standalone process (singleton
// init, tests) falls back to SpawnLocal and provisions the children
// itself.
const (
	// EnvControl is the address of the launcher's spawn-control socket.
	EnvControl = "GOMPI_CONTROL"
	// EnvParentPort carries the parent world's rendezvous port name to
	// spawned children; mpi.Env.Parent connects through it.
	EnvParentPort = "GOMPI_PARENT_PORT"
)

// SpawnRequest asks the launcher to provision a child world.
type SpawnRequest struct {
	// Prog and Args are the child command line (Args excludes the
	// program name, as with exec.Command).
	Prog string
	Args []string
	// N is the child world size.
	N int
	// ParentPort is the parent world's open port; every child gets it
	// in EnvParentPort.
	ParentPort string
	// Dir is the working directory for the children; empty inherits
	// the launcher's.
	Dir string
}

type spawnReply struct{ Err string }

// RequestSpawn sends one spawn request to a launcher's control socket
// and waits for its verdict. The reply arrives after the children are
// started (not after they initialize), so a nil error means the
// processes exist and the parent can sit in Accept waiting for them.
func RequestSpawn(ctrlAddr string, req SpawnRequest) error {
	c, err := net.DialTimeout("tcp", ctrlAddr, 30*time.Second)
	if err != nil {
		return fmt.Errorf("launch: dialing spawn control %s: %w", ctrlAddr, err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(2 * time.Minute))
	if err := gob.NewEncoder(c).Encode(req); err != nil {
		return fmt.Errorf("launch: sending spawn request: %w", err)
	}
	var rep spawnReply
	if err := gob.NewDecoder(c).Decode(&rep); err != nil {
		return fmt.Errorf("launch: waiting for spawn reply: %w", err)
	}
	if rep.Err != "" {
		return fmt.Errorf("launch: spawn refused: %s", rep.Err)
	}
	return nil
}

// ServeSpawnConn handles one control-socket connection on the launcher
// side: decode the request, hand it to start (which should leave the
// children running), reply with the verdict. start must not return
// before the children count toward the launcher's reap accounting — the
// requester may exit the moment the reply lands.
func ServeSpawnConn(c net.Conn, start func(SpawnRequest) error) {
	defer c.Close()
	c.SetDeadline(time.Now().Add(2 * time.Minute))
	var req SpawnRequest
	if err := gob.NewDecoder(c).Decode(&req); err != nil {
		return
	}
	var rep spawnReply
	if err := start(req); err != nil {
		rep.Err = err.Error()
	}
	gob.NewEncoder(c).Encode(&rep)
}

// SpawnJob describes a child world for SpawnLocal.
type SpawnJob struct {
	Prog string
	Args []string
	N    int
	// ParentPort, when non-empty, is exported to the children as
	// EnvParentPort.
	ParentPort string
	// Dir is the children's working directory; empty inherits.
	Dir string
	// ExtraEnv entries are appended after the geometry variables (so
	// they can extend, e.g. re-export a control socket).
	ExtraEnv []string
	// Stdout receives child stdout; nil inherits this process's.
	Stdout io.Writer
	// Stderr builds the per-rank stderr sink; nil inherits.
	Stderr func(rank int) io.Writer
}

// SpawnHandle owns a locally spawned child world.
type SpawnHandle struct {
	// Cmds are the started children, by child-world rank. A caller that
	// waits on them directly (the launcher's reaper) must not also call
	// Wait.
	Cmds []*exec.Cmd

	coordErr chan error
}

// Wait reaps every child and returns the first failure.
func (h *SpawnHandle) Wait() error {
	var first error
	for _, cmd := range h.Cmds {
		if err := cmd.Wait(); err != nil && first == nil {
			first = err
		}
	}
	if err := <-h.coordErr; err != nil && first == nil {
		first = err
	}
	return first
}

// scrubbedEnv is the current environment minus every GOMPI_* variable:
// a spawned child must see its own world geometry, not the parent's.
func scrubbedEnv() []string {
	env := os.Environ()
	out := env[:0]
	for _, kv := range env {
		if !strings.HasPrefix(kv, "GOMPI_") {
			out = append(out, kv)
		}
	}
	return out
}

// SpawnLocal provisions a child world as direct children of this
// process: its own rendezvous coordinator (children always build a TCP
// mesh — a shared-memory segment cannot be grown after launch), fresh
// geometry variables, the parent port. Children that fail to start are
// killed as a group and the error returned.
func SpawnLocal(job SpawnJob) (*SpawnHandle, error) {
	if job.N < 1 {
		return nil, fmt.Errorf("launch: spawn of %d processes", job.N)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("launch: spawn coordinator listener: %w", err)
	}
	coordErr := make(chan error, 1)
	go func() {
		coordErr <- Coordinate(ln, job.N)
		ln.Close()
	}()
	base := scrubbedEnv()
	h := &SpawnHandle{coordErr: coordErr}
	for r := 0; r < job.N; r++ {
		cmd := exec.Command(job.Prog, job.Args...)
		cmd.Dir = job.Dir
		env := append(append([]string(nil), base...),
			fmt.Sprintf("%s=%d", EnvRank, r),
			fmt.Sprintf("%s=%d", EnvSize, job.N),
			fmt.Sprintf("%s=%s", EnvCoord, ln.Addr().String()),
			fmt.Sprintf("%s=tcp", EnvDevice),
		)
		if job.ParentPort != "" {
			env = append(env, fmt.Sprintf("%s=%s", EnvParentPort, job.ParentPort))
		}
		cmd.Env = append(env, job.ExtraEnv...)
		if job.Stdout != nil {
			cmd.Stdout = job.Stdout
		} else {
			cmd.Stdout = os.Stdout
		}
		if job.Stderr != nil {
			cmd.Stderr = job.Stderr(r)
		} else {
			cmd.Stderr = os.Stderr
		}
		if err := cmd.Start(); err != nil {
			for _, c := range h.Cmds {
				c.Process.Kill()
				c.Wait()
			}
			ln.Close()
			return nil, fmt.Errorf("launch: starting spawned rank %d (%s): %w", r, job.Prog, err)
		}
		h.Cmds = append(h.Cmds, cmd)
	}
	return h, nil
}
