package launch

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"testing"

	"gompi/internal/transport"
)

func TestCoordinateAndJoin(t *testing.T) {
	const n = 3
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	coordDone := make(chan error, 1)
	go func() { coordDone <- Coordinate(ln, n) }()

	var wg sync.WaitGroup
	errs := make([]error, n)
	devs := make([]transport.Device, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			d, err := Join(ln.Addr().String(), r, n)
			if err != nil {
				errs[r] = err
				return
			}
			devs[r] = d
		}(r)
	}
	wg.Wait()
	if err := <-coordDone; err != nil {
		t.Fatal(err)
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	// The mesh works: a full exchange round.
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			d := devs[r]
			for j := 0; j < n; j++ {
				if j != r {
					if err := d.Send(j, []byte(fmt.Sprintf("%d", r))); err != nil {
						errs[r] = err
						return
					}
				}
			}
			for j := 0; j < n-1; j++ {
				if _, err := d.Recv(); err != nil {
					errs[r] = err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("mesh exchange rank %d: %v", r, err)
		}
	}
	for _, d := range devs {
		d.Close()
	}
}

func TestCoordinateRejectsBadRank(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() { done <- Coordinate(ln, 2) }()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := gob.NewEncoder(c).Encode(hello{Rank: 7, Addr: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("coordinator accepted an out-of-range rank")
	}
}

func TestJoinSizeMismatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		var h hello
		gob.NewDecoder(c).Decode(&h)                            //nolint:errcheck
		gob.NewEncoder(c).Encode(table{Addrs: []string{"one"}}) //nolint:errcheck
	}()
	if _, err := Join(ln.Addr().String(), 0, 3); err == nil {
		t.Fatal("Join accepted a short address table")
	}
}
