// Package launch implements the process start-up plumbing of DM mode:
// the rendezvous between mpirun (the coordinator) and the worker
// processes, after which the workers build the full TCP mesh. It plays
// the role of p4's procgroup start-up under WMPI/MPICH in the paper.
package launch

import (
	"encoding/gob"
	"fmt"
	"net"
	"time"

	"gompi/internal/transport"
)

// Environment variables carrying the job geometry from mpirun to the
// worker processes.
const (
	EnvRank  = "GOMPI_RANK"
	EnvSize  = "GOMPI_SIZE"
	EnvCoord = "GOMPI_COORD"
	EnvEager = "GOMPI_EAGER"
)

// hello is the worker's registration message.
type hello struct {
	Rank int
	Addr string
}

// table is the coordinator's reply: every rank's listener address.
type table struct {
	Addrs []string
}

// Coordinate runs the coordinator side of the rendezvous on ln: it
// collects n worker registrations, then sends every worker the full
// address table. It returns when all workers are released.
func Coordinate(ln net.Listener, n int) error {
	conns := make([]net.Conn, n)
	addrs := make([]string, n)
	seen := 0
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	for seen < n {
		c, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("launch: accept: %w", err)
		}
		var h hello
		if err := gob.NewDecoder(c).Decode(&h); err != nil {
			c.Close()
			return fmt.Errorf("launch: registration decode: %w", err)
		}
		if h.Rank < 0 || h.Rank >= n || conns[h.Rank] != nil {
			c.Close()
			return fmt.Errorf("launch: bad or duplicate rank %d", h.Rank)
		}
		conns[h.Rank] = c
		addrs[h.Rank] = h.Addr
		seen++
	}
	for r, c := range conns {
		if err := gob.NewEncoder(c).Encode(table{Addrs: addrs}); err != nil {
			return fmt.Errorf("launch: releasing rank %d: %w", r, err)
		}
	}
	return nil
}

// rendezvous registers this rank's mesh listener address with the
// coordinator and returns the full address table.
func rendezvous(coordAddr string, rank, size int, addr string) ([]string, error) {
	conn, err := net.DialTimeout("tcp", coordAddr, 30*time.Second)
	if err != nil {
		return nil, fmt.Errorf("launch: dialing coordinator %s: %w", coordAddr, err)
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(hello{Rank: rank, Addr: addr}); err != nil {
		return nil, fmt.Errorf("launch: registering: %w", err)
	}
	var t table
	if err := gob.NewDecoder(conn).Decode(&t); err != nil {
		return nil, fmt.Errorf("launch: waiting for address table: %w", err)
	}
	if len(t.Addrs) != size {
		return nil, fmt.Errorf("launch: coordinator sent %d addresses for size %d", len(t.Addrs), size)
	}
	return t.Addrs, nil
}

// Join runs the worker side: it opens this rank's mesh listener,
// registers with the coordinator, waits for the address table and builds
// the mesh device.
func Join(coordAddr string, rank, size int) (*transport.TCPDevice, error) {
	return joinMesh(transport.JobSpec{Rank: rank, Size: size, Coord: coordAddr}, nil)
}
