package launch

import (
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"gompi/internal/transport"
	"gompi/internal/transport/shmipc"
)

// Device-registry factories: this file turns the launcher's environment
// (coordinator address, shared segment) into transport devices. The
// "shm" medium registers itself in package shmipc; here live the media
// that need the rendezvous machinery — "tcp", "hybrid" (shm island +
// socket mesh to everyone else) and "auto" (pick the fastest fabric the
// launcher provisioned).

// Environment variables naming the fabric mpirun provisioned.
const (
	// EnvDevice selects the transport medium ("auto", "shm", "tcp",
	// "hybrid"); empty means "auto".
	EnvDevice = "GOMPI_DEVICE"
	// EnvShmSeg is the path of the shared-memory segment this rank may
	// attach.
	EnvShmSeg = "GOMPI_SHM_SEG"
	// EnvShmRanks is the comma-separated list of world ranks sharing
	// the segment (this rank's same-node peer set), in slot order.
	EnvShmRanks = "GOMPI_SHM_RANKS"
)

// SpecFromEnv assembles the JobSpec a registry factory needs from the
// environment mpirun set up.
func SpecFromEnv(rank, size int) transport.JobSpec {
	spec := transport.JobSpec{
		Rank:    rank,
		Size:    size,
		Coord:   os.Getenv(EnvCoord),
		Segment: os.Getenv(EnvShmSeg),
	}
	if s := os.Getenv(EnvShmRanks); s != "" {
		for _, f := range strings.Split(s, ",") {
			if v, err := strconv.Atoi(strings.TrimSpace(f)); err == nil {
				spec.SegmentRanks = append(spec.SegmentRanks, v)
			}
		}
	}
	return spec
}

// DeviceFromEnv returns the medium name mpirun selected, defaulting to
// "auto".
func DeviceFromEnv() string {
	if d := os.Getenv(EnvDevice); d != "" {
		return d
	}
	return "auto"
}

func init() {
	transport.Register(transport.Entry{
		Name: "tcp",
		Probe: func(s transport.JobSpec) error {
			if s.Coord == "" {
				return errors.New("no rendezvous coordinator (run under mpirun)")
			}
			return nil
		},
		New: func(s transport.JobSpec) (transport.Device, error) {
			return joinMesh(s, nil)
		},
	})
	transport.Register(transport.Entry{
		Name: "hybrid",
		Probe: func(s transport.JobSpec) error {
			if s.Segment == "" {
				return errors.New("no shared segment for the local island")
			}
			if s.Coord == "" {
				return errors.New("no rendezvous coordinator for the remote ranks")
			}
			return nil
		},
		New: newHybridDevice,
	})
	transport.Register(transport.Entry{
		Name: "auto",
		New:  newAutoDevice,
	})
}

// joinMesh is the worker side of the socket rendezvous, optionally
// skipping peers another medium reaches.
func joinMesh(s transport.JobSpec, skip []bool) (*transport.TCPDevice, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("launch: mesh listener: %w", err)
	}
	addrs, err := rendezvous(s.Coord, s.Rank, s.Size, ln.Addr().String())
	if err != nil {
		ln.Close()
		return nil, err
	}
	dev, err := transport.ConnectPartialMesh(s.Rank, s.Size, addrs, ln, true, skip)
	if err != nil {
		return nil, fmt.Errorf("launch: mesh: %w", err)
	}
	return dev, nil
}

// newHybridDevice composes the per-peer fabric of a multi-node rank:
// the shared-memory island for same-node peers, a partial socket mesh
// for everyone else, one Device to the engine.
func newHybridDevice(s transport.JobSpec) (transport.Device, error) {
	seg, err := shmipc.Open(s.Segment, 10*time.Second)
	if err != nil {
		return nil, err
	}
	island, err := shmipc.Attach(seg, s.Rank, s.Size)
	if err != nil {
		return nil, err
	}
	local := s.LocalPeers()
	skip := make([]bool, s.Size)
	for r := range skip {
		skip[r] = local[r]
	}
	mesh, err := joinMesh(s, skip)
	if err != nil {
		island.Close()
		return nil, err
	}
	route := make([]transport.Device, s.Size)
	for r := range route {
		if local[r] || r == s.Rank {
			route[r] = island
		} else {
			route[r] = mesh
		}
	}
	return transport.NewHybrid(s.Rank, s.Size, route)
}

// newAutoDevice picks the fastest fabric the launcher provisioned: a
// segment covering the whole world means pure shared memory, a segment
// plus a coordinator means hybrid, a coordinator alone means sockets.
func newAutoDevice(s transport.JobSpec) (transport.Device, error) {
	if s.Segment != "" && len(s.SegmentRanks) >= s.Size {
		if e, ok := transport.Lookup("shm"); ok && (e.Probe == nil || e.Probe(s) == nil) {
			return e.New(s)
		}
	}
	if s.Segment != "" && s.Coord != "" {
		return newHybridDevice(s)
	}
	if s.Coord != "" {
		return joinMesh(s, nil)
	}
	return nil, errors.New("launch: no usable fabric (need a coordinator or a shared segment; run under mpirun)")
}
