package bench

import "testing"

// TestDeviceSweep checks the device dimension end to end and the PR's
// headline claim: the shared-memory segment moves 1 MiB frames at
// least twice as fast as loopback sockets (in practice orders of
// magnitude — the block travels by reference).
func TestDeviceSweep(t *testing.T) {
	pts, err := DeviceSweep([]int{1 << 20}, 8)
	if err != nil {
		t.Fatal(err)
	}
	rate := map[string]float64{}
	for _, p := range pts {
		t.Logf("%-5s %8d B  %8d ns  %12.1f MB/s", p.Device, p.Bytes, p.OneWayNs, p.MBps)
		rate[p.Device] = p.MBps
	}
	if rate["chan"] == 0 || rate["tcp"] == 0 {
		t.Fatalf("missing media in sweep: %v", rate)
	}
	if shm, ok := rate["shm"]; ok && shm < 2*rate["tcp"] {
		t.Errorf("shm 1 MiB bandwidth %.1f MB/s < 2x tcp %.1f MB/s", shm, rate["tcp"])
	}
}
