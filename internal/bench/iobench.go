package bench

import (
	"fmt"
	"path/filepath"

	"gompi/mpi"
)

// IOPoint is one collective I/O measurement: every rank writes (then
// reads) Size bytes per operation through mpi.File's two-phase
// collective path, and the aggregate bandwidth across all ranks is
// reported.
type IOPoint struct {
	Size      int     `json:"bytes_per_rank"`
	WriteMBps float64 `json:"write_mbps"`
	ReadMBps  float64 `json:"read_mbps"`
}

// IOSizes returns the per-rank transfer sweep for the I/O benchmark:
// powers of four from 4 KiB to max.
func IOSizes(max int) []int {
	var out []int
	for s := 4 << 10; s <= max; s *= 4 {
		out = append(out, s)
	}
	return out
}

// IOBandwidth measures collective WriteAtAll/ReadAtAll bandwidth at np
// ranks: rank r owns the contiguous file block [r*size, (r+1)*size),
// which the 64 KiB aggregation stripes split across aggregator ranks,
// so the measurement covers the exchange phase and the filesystem
// phase together. Scratch files live under dir and are removed on
// close.
func IOBandwidth(np int, sizes []int, reps int, dir string) ([]IOPoint, error) {
	if reps <= 0 {
		reps = 4
	}
	out := make([]IOPoint, 0, len(sizes))
	for _, size := range sizes {
		var wsec, rsec float64
		path := filepath.Join(dir, fmt.Sprintf("iobench-%d.bin", size))
		err := mpi.Run(np, func(env *mpi.Env) error {
			w := env.CommWorld()
			f, err := w.OpenFile(path, mpi.ModeCreate|mpi.ModeRdwr|mpi.ModeDeleteOnClose)
			if err != nil {
				return err
			}
			defer f.Close()
			buf := make([]byte, size)
			for i := range buf {
				buf[i] = byte(i)
			}
			off := int64(w.Rank() * size)
			// Warm the file (and the allocator) once before timing.
			if _, err := f.WriteAtAll(off, buf, 0, size, mpi.BYTE); err != nil {
				return err
			}
			if err := w.Barrier(); err != nil {
				return err
			}
			start := env.Wtime()
			for r := 0; r < reps; r++ {
				if _, err := f.WriteAtAll(off, buf, 0, size, mpi.BYTE); err != nil {
					return err
				}
			}
			if err := f.Sync(); err != nil {
				return err
			}
			if w.Rank() == 0 {
				wsec = env.Wtime() - start
			}
			if err := w.Barrier(); err != nil {
				return err
			}
			start = env.Wtime()
			for r := 0; r < reps; r++ {
				if _, err := f.ReadAtAll(off, buf, 0, size, mpi.BYTE); err != nil {
					return err
				}
			}
			if w.Rank() == 0 {
				rsec = env.Wtime() - start
			}
			return w.Barrier()
		})
		if err != nil {
			return nil, fmt.Errorf("io bench at %d bytes: %w", size, err)
		}
		p := IOPoint{Size: size}
		total := float64(np) * float64(size) * float64(reps)
		if wsec > 0 {
			p.WriteMBps = total / wsec / 1e6
		}
		if rsec > 0 {
			p.ReadMBps = total / rsec / 1e6
		}
		out = append(out, p)
	}
	return out, nil
}
