package bench

import (
	"fmt"
	"sync"
	"time"

	"gompi/internal/transport"
	"gompi/internal/transport/shmipc"
)

// DevPoint is one (medium, message size) raw-transport measurement: the
// device dimension of the benchmark record, comparing the cross-process
// shared-memory segment against loopback sockets and in-process
// channels at the frame level, with no MPI software on top.
type DevPoint struct {
	Device   string  `json:"device"`
	Bytes    int     `json:"bytes"`
	OneWayNs int64   `json:"one_way_ns"`
	MBps     float64 `json:"mbps"`
}

// DeviceSizes is the sweep used by the device dimension: a page-ish
// frame, the eager/rendezvous neighborhood, and the 1 MiB bandwidth
// point the shm-vs-tcp comparison is judged on.
var DeviceSizes = []int{4 << 10, 64 << 10, 1 << 20}

// DeviceSweep ping-pongs frames over each available medium and reports
// one point per (device, size). Media that cannot run here (shmipc on a
// platform without mmap) are skipped, not failed.
func DeviceSweep(sizes []int, reps int) ([]DevPoint, error) {
	var out []DevPoint
	for _, name := range []string{"chan", "tcp", "shm"} {
		devs, err := devJobPair(name)
		if err != nil {
			if name == "shm" {
				continue // platform without shared-memory support
			}
			return nil, fmt.Errorf("bench: %s pair: %w", name, err)
		}
		pts, err := devPingPong(devs, sizes, reps)
		for _, d := range devs {
			d.Close()
		}
		if err != nil {
			return nil, fmt.Errorf("bench: %s ping-pong: %w", name, err)
		}
		for _, p := range pts {
			out = append(out, DevPoint{
				Device:   name,
				Bytes:    p.Size,
				OneWayNs: p.OneWay.Nanoseconds(),
				MBps:     p.MBps,
			})
		}
	}
	return out, nil
}

func devJobPair(name string) ([]transport.Device, error) {
	out := make([]transport.Device, 2)
	switch name {
	case "chan":
		for i, d := range transport.NewShmJob(2, 0) {
			out[i] = d
		}
	case "tcp":
		devs, err := transport.NewLoopbackJob(2)
		if err != nil {
			return nil, err
		}
		for i, d := range devs {
			out[i] = d
		}
	case "shm":
		devs, err := shmipc.NewProcJob(2, shmipc.Config{})
		if err != nil {
			return nil, err
		}
		for i, d := range devs {
			out[i] = d
		}
	default:
		return nil, fmt.Errorf("unknown device %q", name)
	}
	return out, nil
}

// takeFrame extracts the received bytes from f, taking over whatever
// storage backs them so they can be shipped straight back: the
// zero-copy recirculation pattern — over shmipc the very same arena
// block shuttles between the endpoints for the whole run.
func takeFrame(f transport.Frame) []byte {
	if f.Payload != nil {
		b := f.Payload
		f.DetachPayload()
		f.Release()
		return b
	}
	// Contiguous frame: the storage moves onward with the bytes; no
	// Release, ownership travels with the next Sendv(recycle=true).
	return f.Data
}

// devPingPong measures the raw round trip per size. Both sides pass
// recycle=true, so pooled storage recirculates instead of allocating:
// the shm medium forwards the same shared-arena block by reference both
// ways, the socket media recycle through the process pool.
func devPingPong(devs []transport.Device, sizes []int, reps int) ([]Point, error) {
	warm := reps / 4
	if warm < 2 {
		warm = 2
	}
	var wg sync.WaitGroup
	var echoErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range sizes {
			for r := 0; r < warm+reps; r++ {
				f, err := devs[1].Recv()
				if err != nil {
					echoErr = err
					return
				}
				if err := devs[1].Sendv(0, nil, takeFrame(f), true); err != nil {
					echoErr = err
					return
				}
			}
		}
	}()

	points := make([]Point, 0, len(sizes))
	for _, size := range sizes {
		cur := transport.GetBuf(size)
		roundTrip := func() error {
			if err := devs[0].Sendv(1, nil, cur, true); err != nil {
				return err
			}
			f, err := devs[0].Recv()
			if err != nil {
				return err
			}
			cur = takeFrame(f)
			return nil
		}
		for w := 0; w < warm; w++ {
			if err := roundTrip(); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		for r := 0; r < reps; r++ {
			if err := roundTrip(); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		transport.PutBuf(cur)
		points = append(points, newPoint(size, elapsed/time.Duration(2*reps)))
	}
	wg.Wait()
	if echoErr != nil {
		return nil, echoErr
	}
	return points, nil
}
