package bench

import (
	"fmt"

	"gompi/mpi"
)

// PersistPoint is one persistent-vs-one-shot comparison: the same
// communication pattern driven through an MPI-4 persistent request
// (plan once, Start per iteration) and through the equivalent one-shot
// nonblocking call issued fresh each iteration. The persistent column
// is what the plan cache and pre-minted tags buy.
type PersistPoint struct {
	Op        string  `json:"op"`
	Bytes     int     `json:"bytes"`
	PersistNs int64   `json:"persistent_ns_per_op"`
	OneShotNs int64   `json:"oneshot_ns_per_op"`
	Speedup   float64 `json:"oneshot_over_persistent"`
}

func (p *PersistPoint) fill(psec, osec float64, reps int) {
	p.PersistNs = int64(psec / float64(reps) * 1e9)
	p.OneShotNs = int64(osec / float64(reps) * 1e9)
	if psec > 0 {
		p.Speedup = osec / psec
	}
}

// PersistentPingPong measures a two-rank round trip: persistent
// SendInit/RecvIntoInit cycled with StartAll against fresh
// Isend/IrecvInto pairs per round, both over fixed buffers.
func PersistentPingPong(sizes []int, reps int) ([]PersistPoint, error) {
	if reps <= 0 {
		reps = 64
	}
	out := make([]PersistPoint, 0, len(sizes))
	for _, size := range sizes {
		var psec, osec float64
		err := mpi.Run(2, func(env *mpi.Env) error {
			w := env.CommWorld()
			rank := w.Rank()
			peer := 1 - rank
			buf := make([]byte, size)
			in := make([]byte, size)

			send, err := w.SendInit(buf, 0, size, mpi.BYTE, peer, 1)
			if err != nil {
				return err
			}
			defer send.Free()
			recv, err := w.RecvIntoInit(in, 0, size, mpi.BYTE, peer, 1)
			if err != nil {
				return err
			}
			defer recv.Free()
			pair := []*mpi.PersistentRequest{recv, send}

			round := func() error {
				if err := mpi.StartAll(pair); err != nil {
					return err
				}
				if _, err := send.Wait(); err != nil {
					return err
				}
				_, err := recv.Wait()
				return err
			}
			oneShot := func() error {
				rr, err := w.IrecvInto(in, 0, size, mpi.BYTE, peer, 1)
				if err != nil {
					return err
				}
				rs, err := w.Isend(buf, 0, size, mpi.BYTE, peer, 1)
				if err != nil {
					return err
				}
				if _, err := rs.Wait(); err != nil {
					return err
				}
				_, err = rr.Wait()
				return err
			}
			// Warm both patterns (request freelists, wire buffers) so
			// neither timed loop pays the cold-start cost for the other.
			for i := 0; i < 16; i++ {
				if err := round(); err != nil {
					return err
				}
				if err := oneShot(); err != nil {
					return err
				}
			}
			if err := w.Barrier(); err != nil {
				return err
			}
			start := env.Wtime()
			for r := 0; r < reps; r++ {
				if err := round(); err != nil {
					return err
				}
			}
			if rank == 0 {
				psec = env.Wtime() - start
			}

			if err := w.Barrier(); err != nil {
				return err
			}
			start = env.Wtime()
			for r := 0; r < reps; r++ {
				if err := oneShot(); err != nil {
					return err
				}
			}
			if rank == 0 {
				osec = env.Wtime() - start
			}
			return w.Barrier()
		})
		if err != nil {
			return nil, fmt.Errorf("persistent pingpong at %d bytes: %w", size, err)
		}
		p := PersistPoint{Op: "pingpong", Bytes: size}
		p.fill(psec, osec, reps)
		out = append(out, p)
	}
	return out, nil
}

// PersistentAllreduce measures an np-rank SUM all-reduction:
// AllreduceInit cycled with Start/Wait against a fresh Iallreduce per
// iteration, both over fixed float64 operand buffers.
func PersistentAllreduce(np int, counts []int, reps int) ([]PersistPoint, error) {
	if reps <= 0 {
		reps = 64
	}
	out := make([]PersistPoint, 0, len(counts))
	for _, count := range counts {
		var psec, osec float64
		err := mpi.Run(np, func(env *mpi.Env) error {
			w := env.CommWorld()
			rank := w.Rank()
			send := make([]float64, count)
			recv := make([]float64, count)
			for i := range send {
				send[i] = float64(rank + i)
			}

			red, err := w.AllreduceInit(send, 0, recv, 0, count, mpi.DOUBLE, mpi.SUM)
			if err != nil {
				return err
			}
			defer red.Free()

			cycle := func() error {
				if err := red.Start(); err != nil {
					return err
				}
				_, err := red.Wait()
				return err
			}
			oneShot := func() error {
				req, err := w.Iallreduce(send, 0, recv, 0, count, mpi.DOUBLE, mpi.SUM)
				if err != nil {
					return err
				}
				_, err = req.Wait()
				return err
			}
			for i := 0; i < 8; i++ {
				if err := cycle(); err != nil {
					return err
				}
				if err := oneShot(); err != nil {
					return err
				}
			}
			if err := w.Barrier(); err != nil {
				return err
			}
			start := env.Wtime()
			for r := 0; r < reps; r++ {
				if err := cycle(); err != nil {
					return err
				}
			}
			if rank == 0 {
				psec = env.Wtime() - start
			}

			if err := w.Barrier(); err != nil {
				return err
			}
			start = env.Wtime()
			for r := 0; r < reps; r++ {
				if err := oneShot(); err != nil {
					return err
				}
			}
			if rank == 0 {
				osec = env.Wtime() - start
			}
			return w.Barrier()
		})
		if err != nil {
			return nil, fmt.Errorf("persistent allreduce at count %d: %w", count, err)
		}
		p := PersistPoint{Op: "allreduce", Bytes: count * 8}
		p.fill(psec, osec, reps)
		out = append(out, p)
	}
	return out, nil
}
