package bench

// Trace-overhead benchmark: the flight recorder's contract is that a
// disarmed recorder (the nil *obs.Recorder every production run gets
// unless GOMPI_TRACE is set) costs one nil check per event site — the
// zero-alloc ping-pong hot path must stay zero-alloc. This pair
// measures the core-engine ping-pong with the recorder off and on and
// reports both latency and a ReadMemStats-derived allocations-per-
// round-trip figure, so the "disabled tracing is free" claim is a
// number in the committed BENCH_PR*.json rather than folklore.

import (
	"runtime"
	"sync"
	"time"

	"gompi/internal/core"
	"gompi/internal/obs"
	"gompi/internal/transport"
)

// TracePoint is one mode of the trace-overhead pair.
type TracePoint struct {
	// Mode is "disabled" (nil recorder) or "enabled" (armed ring).
	Mode string `json:"mode"`
	// Bytes is the ping-pong payload size.
	Bytes int `json:"bytes"`
	// OneWayNs is half the mean round-trip time.
	OneWayNs int64 `json:"one_way_ns"`
	// AllocsPerRT is heap allocations per round trip, summed across
	// both ranks (the invariant: 0 for "disabled").
	AllocsPerRT float64 `json:"allocs_per_rt"`
}

// TraceOverhead runs the core-engine ping-pong at one payload size with
// the flight recorder disabled and then enabled.
func TraceOverhead(size, reps int) ([]TracePoint, error) {
	out := make([]TracePoint, 0, 2)
	for _, mode := range []string{"disabled", "enabled"} {
		var rec0, rec1 *obs.Recorder
		if mode == "enabled" {
			rec0 = obs.NewRecorder(0, obs.DefaultRingEvents)
			rec1 = obs.NewRecorder(1, obs.DefaultRingEvents)
		}
		pt, err := tracePingPong(size, reps, rec0, rec1)
		if err != nil {
			return nil, err
		}
		pt.Mode = mode
		out = append(out, pt)
	}
	return out, nil
}

// tracePingPong is nativePingPong reduced to one size, with explicit
// recorders and an allocation count around the timed loop.
func tracePingPong(size, reps int, rec0, rec1 *obs.Recorder) (TracePoint, error) {
	devs := transport.NewShmJob(2, 0)
	p0 := core.NewProc(devs[0], core.Config{Recorder: rec0})
	p1 := core.NewProc(devs[1], core.Config{Recorder: rec1})
	defer p0.Close()
	defer p1.Close()

	const ctx, tag = 0, 5
	warm := reps/4 + 16

	var wg sync.WaitGroup
	var echoErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Echo by reference: over the chan device the same buffer
		// shuttles between the ranks, so steady state allocates nothing.
		for r := 0; r < warm+reps; r++ {
			rreq := p1.Irecv(ctx, 0, tag)
			rreq.Wait()
			payload := rreq.TakePayload()
			rreq.Recycle()
			sreq, err := p1.Isend(ctx, 1, 0, tag, payload, core.ModeStandard, false)
			if err != nil {
				echoErr = err
				return
			}
			sreq.Wait()
			sreq.Recycle()
		}
	}()

	cur := make([]byte, size)
	roundTrip := func() error {
		sreq, err := p0.Isend(ctx, 0, 1, tag, cur, core.ModeStandard, false)
		if err != nil {
			return err
		}
		rreq := p0.Irecv(ctx, 1, tag)
		rreq.Wait()
		sreq.Wait()
		cur = rreq.TakePayload()
		rreq.Recycle()
		sreq.Recycle()
		return nil
	}
	for w := 0; w < warm; w++ {
		if err := roundTrip(); err != nil {
			return TracePoint{}, err
		}
	}

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for r := 0; r < reps; r++ {
		if err := roundTrip(); err != nil {
			return TracePoint{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	wg.Wait()
	if echoErr != nil {
		return TracePoint{}, echoErr
	}
	return TracePoint{
		Bytes:       size,
		OneWayNs:    (elapsed / time.Duration(2*reps)).Nanoseconds(),
		AllocsPerRT: float64(m1.Mallocs-m0.Mallocs) / float64(reps),
	}, nil
}
