package bench

import (
	"testing"
	"time"
)

// The harness tests run tiny unshaped sweeps: they validate plumbing and
// invariants, not 1999 magnitudes (EXPERIMENTS.md records those).

func TestSpecLabels(t *testing.T) {
	cases := map[string]Spec{
		"Wsock":   {Impl: Wsock},
		"WMPI-C":  {Impl: NativeC, Platform: WMPI},
		"WMPI-J":  {Impl: JavaOO, Platform: WMPI},
		"MPICH-C": {Impl: NativeC, Platform: MPICH},
		"MPICH-J": {Impl: JavaOO, Platform: MPICH},
	}
	for want, s := range cases {
		if got := s.Label(); got != want {
			t.Errorf("label: got %q want %q", got, want)
		}
	}
}

func TestFigureSizes(t *testing.T) {
	sizes := FigureSizes(1 << 20)
	if len(sizes) != 21 || sizes[0] != 1 || sizes[20] != 1<<20 {
		t.Fatalf("sizes: %v", sizes)
	}
}

func runQuick(t *testing.T, s Spec) []Point {
	t.Helper()
	s.Sizes = []int{1, 1024}
	s.Reps = 8
	s.Warmup = 2
	pts, err := Run(s)
	if err != nil {
		t.Fatalf("%s/%s: %v", s.Label(), s.Mode, err)
	}
	if len(pts) != 2 {
		t.Fatalf("%s: %d points", s.Label(), len(pts))
	}
	for _, p := range pts {
		if p.OneWay <= 0 {
			t.Fatalf("%s size %d: non-positive latency %v", s.Label(), p.Size, p.OneWay)
		}
	}
	return pts
}

func TestAllEnvironmentsRun(t *testing.T) {
	for _, impl := range []Impl{Wsock, NativeC, JavaOO} {
		for _, mode := range []Mode{SM, DM} {
			runQuick(t, Spec{Impl: impl, Platform: WMPI, Mode: mode})
		}
	}
}

func TestBandwidthGrowsWithSize(t *testing.T) {
	pts := runQuick(t, Spec{Impl: NativeC, Platform: WMPI, Mode: SM})
	if pts[1].MBps <= pts[0].MBps {
		t.Errorf("bandwidth did not grow: %v then %v MB/s", pts[0].MBps, pts[1].MBps)
	}
}

func TestPaperProfileOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrated profile timing skipped in -short mode")
	}
	// Under the 1999 calibration the Table 1 column ordering must hold
	// in SM mode: WMPI-C < Wsock < WMPI-J < MPICH-J, MPICH-C < MPICH-J.
	lat := func(impl Impl, p Platform) time.Duration {
		s := Spec{Impl: impl, Platform: p, Mode: SM, Paper1999: true,
			Sizes: []int{1}, Reps: 16, Warmup: 2}
		pts, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return pts[0].OneWay
	}
	wmpiC := lat(NativeC, WMPI)
	wmpiJ := lat(JavaOO, WMPI)
	mpichC := lat(NativeC, MPICH)
	mpichJ := lat(JavaOO, MPICH)
	if !(wmpiC < wmpiJ && mpichC < mpichJ) {
		t.Errorf("binding must cost more than native: WMPI %v vs %v, MPICH %v vs %v",
			wmpiC, wmpiJ, mpichC, mpichJ)
	}
	if !(wmpiC < mpichC) {
		t.Errorf("optimized profile must beat portable: %v vs %v", wmpiC, mpichC)
	}
}

func TestCalibrationConstants(t *testing.T) {
	if bindingCost(WMPI) >= bindingCost(MPICH) {
		t.Error("the paper's MPICH/Solaris JVM crossing must cost more than NT's")
	}
	lp := linkProfile(NativeC, WMPI, DM, true)
	if lp.BytesPerSec > 1.25e6 || lp.BytesPerSec < 1e6 {
		t.Errorf("DM link must model 10BaseT: %v B/s", lp.BytesPerSec)
	}
	if lp = linkProfile(NativeC, MPICH, SM, true); !lp.StagingCopy {
		t.Error("portable profile must pay the staging copy")
	}
	if lp = linkProfile(JavaOO, WMPI, SM, false); !lp.Zero() {
		t.Error("modern profile must inject nothing")
	}
}
