package bench

import (
	"time"

	"gompi/internal/transport"
)

// The 1999 calibration (DESIGN.md §2): per-environment cost constants
// chosen so the emulated stack reproduces the paper's published
// magnitudes on Table 1 and the curve shapes of Figures 5 and 6.
//
// Model, per one-way transfer of n bytes:
//
//	t(n) ≈ link.PerMessage + link.Latency + n/link.BytesPerSec
//	       + (binding ? 2 × bindingCost : 0)
//
// The binding charges one crossing at the sender's Send and one at the
// receiver's Recv — exactly where mpiJava pays its JNI prologue.
//
// Calibration targets (paper Table 1, µs for a 1-byte message):
//
//	        Wsock  WMPI-C  WMPI-J  MPICH-C  MPICH-J
//	 SM     144.8    67.2   161.4    148.7    374.6
//	 DM     244.9   623.9   689.7    679.1    961.2
//
// Figure targets: SM convergence of C and Java curves by ~256 KB with
// peaks near 65 MB/s (WMPI) and ~50 MB/s (MPICH); DM saturation near
// 1 MB/s ≈ 90 % of 10 Mbps with convergence by ~4 KB.

// bindingCost is the emulated JNI/JVM crossing cost per binding call.
func bindingCost(p Platform) time.Duration {
	// Derived from Table 1 SM deltas: (161.4-67.2)/2 and
	// (374.6-148.7)/2. The paper attributes the platform difference to
	// JVM quality (§4.6).
	if p == WMPI {
		return 47 * time.Microsecond
	}
	return 113 * time.Microsecond
}

// linkProfile assembles the Shaped-device profile of one environment.
// For the Wsock rows only the wire part applies (no MPI software path).
func linkProfile(impl Impl, p Platform, m Mode, paper bool) transport.LinkProfile {
	if !paper {
		return transport.LinkProfile{}
	}
	var lp transport.LinkProfile
	if m == DM {
		// 10BaseT: 10 Mbps at ~92 % efficiency, plus wire+stack
		// latency calibrated against the Wsock DM row.
		lp.Latency = 230 * time.Microsecond
		lp.BytesPerSec = 1.15e6
	} else {
		// SM: the memory-bus bandwidth ceiling observed in Fig. 5.
		if p == WMPI || impl == Wsock {
			lp.BytesPerSec = 65e6
		} else {
			lp.BytesPerSec = 52e6
		}
		if impl == Wsock {
			// The Winsock SM row pays the localhost socket stack.
			lp.Latency = 135 * time.Microsecond
		}
	}
	if impl == Wsock {
		return lp
	}
	// Native MPI software path per message.
	switch {
	case m == SM && p == WMPI:
		lp.PerMessage = 60 * time.Microsecond
	case m == SM && p == MPICH:
		lp.PerMessage = 140 * time.Microsecond
		lp.StagingCopy = true
	case m == DM && p == WMPI:
		lp.PerMessage = 375 * time.Microsecond
	default: // DM MPICH
		lp.PerMessage = 430 * time.Microsecond
		lp.StagingCopy = true
	}
	return lp
}

// overheadFor returns the binding-crossing cost a spec injects
// (zero for the native and socket baselines, and in modern mode).
func overheadFor(s Spec) time.Duration {
	if !s.Paper1999 || s.Impl != JavaOO {
		return 0
	}
	return bindingCost(s.Platform)
}
