package bench

import (
	"fmt"
	"sync"
	"time"

	"gompi/internal/core"
	"gompi/internal/transport"
	"gompi/mpi"
)

// devicePair builds the two-rank fabric for a spec: shm for SM mode,
// loopback TCP for DM mode, with the spec's calibration profile applied.
func devicePair(s Spec) ([]transport.Device, error) {
	lp := linkProfile(s.Impl, s.Platform, s.Mode, s.Paper1999)
	out := make([]transport.Device, 2)
	if s.Mode == DM {
		devs, err := transport.NewLoopbackJob(2)
		if err != nil {
			return nil, err
		}
		for i, d := range devs {
			out[i] = transport.NewShaped(d, lp)
		}
		return out, nil
	}
	for i, d := range transport.NewShmJob(2, 0) {
		out[i] = transport.NewShaped(d, lp)
	}
	return out, nil
}

// wsockPingPong measures the raw transport: framed echo over the devices
// with no MPI software on top — the paper's Winsock-C baseline.
func wsockPingPong(s Spec) ([]Point, error) {
	devs, err := devicePair(s)
	if err != nil {
		return nil, err
	}
	defer devs[0].Close()
	defer devs[1].Close()

	done := make(chan error, 1)
	go func() {
		// Echo side: return every frame until a zero-length stop frame.
		// Sendv hands the frame's (pool-born) storage back through the
		// ownership protocol: over shm it travels by reference, over
		// TCP it returns to the pool after the write, so the echo adds
		// no garbage.
		for {
			f, err := devs[1].Recv()
			if err != nil {
				done <- err
				return
			}
			if len(f.Data) == 0 {
				f.Release()
				done <- nil
				return
			}
			if err := devs[1].Sendv(0, f.Data, nil, false); err != nil {
				done <- err
				return
			}
		}
	}()

	points := make([]Point, 0, len(s.Sizes))
	for _, size := range s.Sizes {
		reps := repsFor(s.Reps, size, s.Paper1999, s.Mode)
		// The frame ping-pongs: each round trip sends the storage the
		// echo just returned (over shm literally the same buffer, over
		// TCP a recirculating pooled one), so the steady state
		// allocates nothing.
		cur := transport.GetBuf(size)
		for w := 0; w < s.warmupFor(reps); w++ {
			if cur, err = pingOnce(devs[0], cur); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		for r := 0; r < reps; r++ {
			if cur, err = pingOnce(devs[0], cur); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		points = append(points, newPoint(size, elapsed/time.Duration(2*reps)))
	}
	if err := devs[0].Send(1, nil); err != nil {
		return nil, err
	}
	if err := <-done; err != nil {
		return nil, err
	}
	return points, nil
}

func pingOnce(d transport.Device, buf []byte) ([]byte, error) {
	if err := d.Sendv(1, buf, nil, false); err != nil {
		return nil, err
	}
	f, err := d.Recv()
	if err != nil {
		return nil, err
	}
	return f.Data, nil
}

// nativePingPong measures the core engine called directly — the paper's
// native C MPI rows, without the OO binding's packing, validation or
// crossing costs.
func nativePingPong(s Spec) ([]Point, error) {
	devs, err := devicePair(s)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{EagerLimit: s.EagerLimit}
	p0 := core.NewProc(devs[0], cfg)
	p1 := core.NewProc(devs[1], cfg)
	defer p0.Close()
	defer p1.Close()

	const ctx, tag = 0, 5
	schedule := make([]int, 0, len(s.Sizes))
	repsOf := make(map[int]int, len(s.Sizes))
	for _, size := range s.Sizes {
		schedule = append(schedule, size)
		repsOf[size] = repsFor(s.Reps, size, s.Paper1999, s.Mode)
	}

	var wg sync.WaitGroup
	var echoErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The echo forwards the received payload by reference; over shm
		// the same buffer shuttles between the ranks for the whole run.
		for _, size := range schedule {
			for r := 0; r < s.warmupFor(repsOf[size])+repsOf[size]; r++ {
				rreq := p1.Irecv(ctx, 0, tag)
				rreq.Wait()
				payload := rreq.TakePayload()
				rreq.Recycle()
				sreq, err := p1.Isend(ctx, 1, 0, tag, payload, core.ModeStandard, false)
				if err != nil {
					echoErr = err
					return
				}
				sreq.Wait()
				sreq.Recycle()
			}
		}
	}()

	points := make([]Point, 0, len(s.Sizes))
	for _, size := range schedule {
		// cur is the outgoing payload; after each round trip the echoed
		// payload (over shm, the very same buffer) replaces it, so the
		// measured loop allocates nothing in steady state.
		cur := make([]byte, size)
		reps := repsOf[size]
		warm := s.warmupFor(reps)
		roundTrip := func() error {
			sreq, err := p0.Isend(ctx, 0, 1, tag, cur, core.ModeStandard, false)
			if err != nil {
				return err
			}
			rreq := p0.Irecv(ctx, 1, tag)
			rreq.Wait()
			sreq.Wait()
			cur = rreq.TakePayload()
			rreq.Recycle()
			sreq.Recycle()
			return nil
		}
		for w := 0; w < warm; w++ {
			if err := roundTrip(); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		for r := 0; r < reps; r++ {
			if err := roundTrip(); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		points = append(points, newPoint(size, elapsed/time.Duration(2*reps)))
	}
	wg.Wait()
	if echoErr != nil {
		return nil, echoErr
	}
	return points, nil
}

// bindingPingPong measures the full OO binding — the paper's mpiJava
// rows — including packing, argument validation and (in paper mode) the
// emulated JNI crossing cost.
func bindingPingPong(s Spec) ([]Point, error) {
	results := make([]Point, 0, len(s.Sizes))
	var mu sync.Mutex
	opt := mpi.RunOptions{
		NP:              2,
		TCP:             s.Mode == DM,
		EagerLimit:      s.EagerLimit,
		Link:            toEmu(linkProfile(s.Impl, s.Platform, s.Mode, s.Paper1999)),
		BindingOverhead: overheadFor(s),
	}
	err := mpi.RunWith(opt, func(env *mpi.Env) error {
		world := env.CommWorld()
		rank := world.Rank()
		const tag = 5
		for _, size := range s.Sizes {
			reps := repsFor(s.Reps, size, s.Paper1999, s.Mode)
			warm := s.warmupFor(reps)
			buf := make([]byte, size)
			total := warm + reps
			if rank == 1 {
				for r := 0; r < total; r++ {
					if _, err := world.Recv(buf, 0, size, mpi.BYTE, 0, tag); err != nil {
						return err
					}
					if err := world.Send(buf, 0, size, mpi.BYTE, 0, tag); err != nil {
						return err
					}
				}
				continue
			}
			for w := 0; w < warm; w++ {
				if err := world.Send(buf, 0, size, mpi.BYTE, 1, tag); err != nil {
					return err
				}
				if _, err := world.Recv(buf, 0, size, mpi.BYTE, 1, tag); err != nil {
					return err
				}
			}
			start := time.Now()
			for r := 0; r < reps; r++ {
				if err := world.Send(buf, 0, size, mpi.BYTE, 1, tag); err != nil {
					return err
				}
				if _, err := world.Recv(buf, 0, size, mpi.BYTE, 1, tag); err != nil {
					return err
				}
			}
			elapsed := time.Since(start)
			mu.Lock()
			results = append(results, newPoint(size, elapsed/time.Duration(2*reps)))
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

func toEmu(lp transport.LinkProfile) mpi.LinkEmulation {
	return mpi.LinkEmulation{
		PerMessage:  lp.PerMessage,
		Latency:     lp.Latency,
		BytesPerSec: lp.BytesPerSec,
		PerByte:     lp.PerByte,
		StagingCopy: lp.StagingCopy,
	}
}

// Table1Row holds one environment's 1-byte latencies in both modes.
type Table1Row struct {
	Label  string
	SM, DM time.Duration
}

// Table1 reproduces the paper's Table 1: the 1-byte one-way latency of
// every environment in SM and DM modes.
func Table1(paper bool, reps int) ([]Table1Row, error) {
	specs := []Spec{
		{Impl: Wsock},
		{Impl: NativeC, Platform: WMPI},
		{Impl: JavaOO, Platform: WMPI},
		{Impl: NativeC, Platform: MPICH},
		{Impl: JavaOO, Platform: MPICH},
	}
	rows := make([]Table1Row, 0, len(specs))
	for _, base := range specs {
		row := Table1Row{Label: base.Label()}
		for _, mode := range []Mode{SM, DM} {
			s := base
			s.Mode = mode
			s.Paper1999 = paper
			s.Sizes = []int{1}
			s.Reps = reps
			pts, err := Run(s)
			if err != nil {
				return nil, fmt.Errorf("bench %s/%s: %w", s.Label(), mode, err)
			}
			if mode == SM {
				row.SM = pts[0].OneWay
			} else {
				row.DM = pts[0].OneWay
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure runs the four MPI curves of Figure 5 (SM) or Figure 6 (DM):
// {WMPI, MPICH} × {C, Java}. Keys are the paper's labels.
func Figure(mode Mode, paper bool, maxSize, reps int) (map[string][]Point, error) {
	out := make(map[string][]Point, 4)
	for _, platform := range []Platform{WMPI, MPICH} {
		for _, impl := range []Impl{NativeC, JavaOO} {
			s := Spec{
				Impl:      impl,
				Platform:  platform,
				Mode:      mode,
				Paper1999: paper,
				Sizes:     FigureSizes(maxSize),
				Reps:      reps,
			}
			pts, err := Run(s)
			if err != nil {
				return nil, fmt.Errorf("bench %s/%s: %w", s.Label(), mode, err)
			}
			out[s.Label()] = pts
		}
	}
	return out, nil
}
