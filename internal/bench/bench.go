// Package bench implements the paper's communications benchmarks
// (§4): the PingPong latency/bandwidth measurement in its five
// environments — raw sockets ("Wsock"), native MPI ("WMPI-C"/"MPICH-C",
// here the core engine called directly) and the OO binding
// ("WMPI-J"/"MPICH-J", the mpi package) — in both Shared Memory and
// Distributed Memory modes, plus the 1999 calibration profiles that
// recover the published magnitudes (DESIGN.md §2, §5).
package bench

import (
	"fmt"
	"time"
)

// Mode is the paper's execution mode.
type Mode int

// Execution modes (paper §3.4).
const (
	SM Mode = iota // Shared Memory: ranks on one machine
	DM             // Distributed Memory: ranks across a (10BaseT) link
)

func (m Mode) String() string {
	if m == SM {
		return "SM"
	}
	return "DM"
}

// Platform models the two native-MPI software paths of the paper:
// WMPI's NT-optimized path versus portable MPICH (extra staging copy,
// higher per-message cost).
type Platform int

// Platforms.
const (
	WMPI Platform = iota
	MPICH
)

func (p Platform) String() string {
	if p == WMPI {
		return "WMPI"
	}
	return "MPICH"
}

// Impl selects which software stack carries the ping-pong.
type Impl int

// Implementations (columns of Table 1).
const (
	Wsock   Impl = iota // raw sockets, no MPI
	NativeC             // the core engine, no OO binding
	JavaOO              // the full mpi binding (the "mpiJava" column)
)

func (i Impl) String() string {
	switch i {
	case Wsock:
		return "Wsock"
	case NativeC:
		return "C"
	default:
		return "Java"
	}
}

// Point is one measurement: the one-way transfer time for a message of
// Size bytes, and the corresponding uni-directional bandwidth.
type Point struct {
	Size   int
	OneWay time.Duration
	MBps   float64
}

func newPoint(size int, oneWay time.Duration) Point {
	p := Point{Size: size, OneWay: oneWay}
	if oneWay > 0 {
		p.MBps = float64(size) / oneWay.Seconds() / 1e6
	}
	return p
}

// Spec describes one ping-pong run.
type Spec struct {
	Impl     Impl
	Platform Platform // meaningful for NativeC and JavaOO
	Mode     Mode
	// Paper1999 applies the era calibration (JNI cost model, software
	// path costs, 10BaseT link); false measures the bare modern stack.
	Paper1999 bool
	// EagerLimit overrides the eager/rendezvous threshold (0=default).
	EagerLimit int
	// Sizes to sweep; Reps round-trips per size after Warmup.
	Sizes  []int
	Reps   int
	Warmup int
}

// Label renders the paper's environment name for this spec
// (e.g. "WMPI-J", "MPICH-C", "Wsock").
func (s Spec) Label() string {
	if s.Impl == Wsock {
		return "Wsock"
	}
	suffix := "C"
	if s.Impl == JavaOO {
		suffix = "J"
	}
	return fmt.Sprintf("%s-%s", s.Platform, suffix)
}

// FigureSizes returns the message-size sweep of Figures 5 and 6:
// powers of two from 1 byte to max.
func FigureSizes(max int) []int {
	var out []int
	for s := 1; s <= max; s *= 2 {
		out = append(out, s)
	}
	return out
}

// repsFor bounds the repetitions so large paper-profile transfers finish
// in reasonable time.
func repsFor(base, size int, paper bool, mode Mode) int {
	r := base
	if size >= 1<<18 {
		r = base / 8
	} else if size >= 1<<14 {
		r = base / 4
	}
	if paper && mode == DM && size >= 1<<16 {
		r = 2
	}
	if r < 2 {
		r = 2
	}
	return r
}

// Run dispatches a spec to the matching harness.
func Run(s Spec) ([]Point, error) {
	if len(s.Sizes) == 0 {
		s.Sizes = []int{1}
	}
	if s.Reps <= 0 {
		s.Reps = 64
	}
	if s.Warmup <= 0 {
		s.Warmup = 4
	}
	switch s.Impl {
	case Wsock:
		return wsockPingPong(s)
	case NativeC:
		return nativePingPong(s)
	default:
		return bindingPingPong(s)
	}
}

// warmupFor caps the per-size warmup at the measured repetition count so
// calibrated large-message sweeps do not spend longer warming up than
// measuring.
func (s Spec) warmupFor(reps int) int {
	if s.Warmup > reps {
		return reps
	}
	return s.Warmup
}
