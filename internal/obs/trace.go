package obs

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// The flight recorder: a fixed-size ring of binary trace events,
// recorded through a single atomic cursor bump per event, so it can sit
// inside the engine's matching paths without a lock. When the ring
// wraps, the newest events win — after an incident the tail of the
// flight is what matters. A nil *Recorder is the disabled state: every
// record method is a nil-check away from free, so instrumented code
// holds the pointer unconditionally and pays one predictable branch
// when tracing is off.

// Environment switches. mpirun -trace sets all of them for its workers;
// users can export GOMPI_TRACE=1 by hand for a single process.
const (
	// EnvTrace enables the flight recorder ("1", "true", ...).
	EnvTrace = "GOMPI_TRACE"
	// EnvTraceDir is the directory Finalize dumps per-rank trace files
	// into (default: the working directory).
	EnvTraceDir = "GOMPI_TRACE_DIR"
	// EnvTraceEvents overrides the ring capacity in events.
	EnvTraceEvents = "GOMPI_TRACE_EVENTS"
)

// DefaultRingEvents is the default ring capacity (events are 24 bytes,
// so the default ring is ~1.5 MiB per rank).
const DefaultRingEvents = 1 << 16

// EventKind identifies what happened. Kinds are stable wire values:
// the merger maps them to names and subsystems (see kindInfo).
type EventKind uint16

// Event kinds, grouped by subsystem.
const (
	EvNone EventKind = iota
	// core: protocol choice, matching, rendezvous, faults.
	EvSendEager      // instant; arg=dst world rank, val=payload bytes
	EvSendSync       // instant; arg=dst world rank, val=payload bytes
	EvSendRndv       // span; arg=send id (low 32), val=payload bytes; RTS out → CTS in
	EvRecvMatched    // instant; arg=src group rank, val=payload bytes
	EvRecvUnexpected // instant; arg=src group rank, val=payload bytes
	EvRtsRecv        // instant; arg=src group rank, val=advertised bytes
	EvCtsRecv        // instant; arg=send id (low 32)
	EvPeerLost       // instant; arg=lost world rank
	EvRevoke         // instant; arg=revoked context base
	// coll: schedule lifecycle on the shared progress pool.
	EvCollSched  // span; arg=collective instance; one per activation
	EvCollPark   // instant; arg=instance, val=operations parked on
	EvCollResume // instant; arg=instance, val=busy pool workers
	// pio: two-phase collective I/O.
	EvPioExchange // span; val=bytes routed through the data alltoall
	EvPioWrite    // span; val=bytes written by this aggregator
	EvPioRead     // span; val=bytes read by this aggregator
	// dynproc/launch: worlds joining and growing.
	EvJoin     // span; leader handshake (Connect/Accept)
	EvAdmit    // span; val=cross-world links built
	EvSpawn    // span; val=ranks requested
	EvFinalize // instant
	evMax
)

// Phase distinguishes span begins/ends from instants.
type Phase uint8

// Phases.
const (
	PhInstant Phase = iota
	PhBegin
	PhEnd
)

// Event is one trace record: 24 bytes, fixed layout, no pointers.
type Event struct {
	TS   int64 // nanoseconds since the recorder's epoch
	Kind EventKind
	Ph   Phase
	_    uint8
	Arg  uint32 // kind-specific correlation value (peer, tag, instance, id)
	Val  int64  // kind-specific magnitude (usually bytes)
}

// Recorder is one rank's flight recorder.
type Recorder struct {
	rank  int
	epoch time.Time // wall+monotonic base; TS values are Since(epoch)
	mask  uint64
	cur   atomic.Uint64
	ev    []slot
}

// slot is one ring entry as three atomic words, so two writers that
// collide on a wrapped slot race benignly (word-torn events are
// possible during a wrap collision, never corruption). An Event packs
// exactly: ts | kind+ph+arg | val.
type slot struct{ ts, meta, val atomic.Uint64 }

func (s *slot) store(ev Event) {
	s.ts.Store(uint64(ev.TS))
	s.meta.Store(uint64(ev.Kind) | uint64(ev.Ph)<<16 | uint64(ev.Arg)<<32)
	s.val.Store(uint64(ev.Val))
}

func (s *slot) load() Event {
	meta := s.meta.Load()
	return Event{
		TS:   int64(s.ts.Load()),
		Kind: EventKind(meta),
		Ph:   Phase(meta >> 16),
		Arg:  uint32(meta >> 32),
		Val:  int64(s.val.Load()),
	}
}

// NewRecorder builds an enabled recorder for rank with a ring of at
// least events entries (rounded up to a power of two; minimum 1024).
func NewRecorder(rank, events int) *Recorder {
	n := 1024
	for n < events {
		n <<= 1
	}
	return &Recorder{
		rank:  rank,
		epoch: time.Now(),
		mask:  uint64(n - 1),
		ev:    make([]slot, n),
	}
}

// EnvEnabled reports whether the GOMPI_TRACE switch is on.
func EnvEnabled() bool {
	switch os.Getenv(EnvTrace) {
	case "", "0", "false", "off":
		return false
	}
	return true
}

// RingFromEnv returns the configured ring capacity.
func RingFromEnv() int {
	if s := os.Getenv(EnvTraceEvents); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return DefaultRingEvents
}

// DirFromEnv returns the trace dump directory.
func DirFromEnv() string {
	if d := os.Getenv(EnvTraceDir); d != "" {
		return d
	}
	return "."
}

// Rank returns the recorder's rank.
func (r *Recorder) Rank() int {
	if r == nil {
		return -1
	}
	return r.rank
}

// Record appends one event. Safe for concurrent use from any goroutine;
// a wrapped ring overwrites the oldest entries. Nil receivers record
// nothing.
func (r *Recorder) Record(kind EventKind, ph Phase, arg uint32, val int64) {
	if r == nil {
		return
	}
	i := r.cur.Add(1) - 1
	r.ev[i&r.mask].store(Event{
		TS:   int64(time.Since(r.epoch)),
		Kind: kind,
		Ph:   ph,
		Arg:  arg,
		Val:  val,
	})
}

// Instant records a point event.
func (r *Recorder) Instant(kind EventKind, arg uint32, val int64) {
	r.Record(kind, PhInstant, arg, val)
}

// Begin opens a span; pair with End on the same (kind, arg).
func (r *Recorder) Begin(kind EventKind, arg uint32, val int64) {
	r.Record(kind, PhBegin, arg, val)
}

// End closes a span opened by Begin.
func (r *Recorder) End(kind EventKind, arg uint32, val int64) {
	r.Record(kind, PhEnd, arg, val)
}

// Events returns the recorded events, oldest first, plus how many were
// dropped to ring wrap. The snapshot is taken without stopping writers;
// call it on a quiescent recorder (post-Finalize) for an exact ring.
func (r *Recorder) Events() (evs []Event, dropped uint64) {
	if r == nil {
		return nil, 0
	}
	total := r.cur.Load()
	stored := total
	if stored > uint64(len(r.ev)) {
		stored = uint64(len(r.ev))
		dropped = total - stored
	}
	evs = make([]Event, 0, stored)
	for i := total - stored; i < total; i++ {
		evs = append(evs, r.ev[i&r.mask].load())
	}
	return evs, dropped
}

// Trace file wire format (little endian):
//
//	magic   [8]byte  "GOMPITR1"
//	rank    uint32
//	_       uint32   (reserved)
//	epoch   int64    recorder epoch as wall-clock UnixNano
//	total   uint64   events recorded over the recorder's lifetime
//	stored  uint32   events present in this file
//	evsize  uint32   bytes per event (24)
//	events  stored × {ts int64, kind uint16, ph uint8, _ uint8, arg uint32, val int64}
const traceMagic = "GOMPITR1"

const eventWireSize = 24

// Dump writes the ring in the trace file format.
func (r *Recorder) Dump(w io.Writer) error {
	evs, dropped := r.Events()
	hdr := make([]byte, 0, 8+4+4+8+8+4+4)
	hdr = append(hdr, traceMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(r.rank))
	hdr = binary.LittleEndian.AppendUint32(hdr, 0)
	// The epoch is the rank's clock-alignment handshake: TS values are
	// monotonic offsets from it, and it is published here as wall-clock
	// UnixNano so the merger can place every rank on one timeline.
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(r.epoch.UnixNano()))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(evs))+dropped)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(evs)))
	hdr = binary.LittleEndian.AppendUint32(hdr, eventWireSize)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 0, eventWireSize*256)
	for i, ev := range evs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ev.TS))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(ev.Kind))
		buf = append(buf, byte(ev.Ph), 0)
		buf = binary.LittleEndian.AppendUint32(buf, ev.Arg)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ev.Val))
		if len(buf) == cap(buf) || i == len(evs)-1 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	return nil
}

// TraceFileName names rank's dump file.
func TraceFileName(rank int) string {
	return fmt.Sprintf("gompi-trace.%d.bin", rank)
}

// DumpFile writes the ring to dir/gompi-trace.<rank>.bin and returns
// the path.
func (r *Recorder) DumpFile(dir string) (string, error) {
	if r == nil {
		return "", fmt.Errorf("obs: dump of a disabled recorder")
	}
	path := filepath.Join(dir, TraceFileName(r.rank))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := r.Dump(f); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// TraceFile is one rank's parsed dump.
type TraceFile struct {
	Rank    int
	EpochNs int64 // wall-clock UnixNano of the rank's recorder epoch
	Total   uint64
	Events  []Event
}

// ReadTrace parses one trace dump.
func ReadTrace(rd io.Reader) (*TraceFile, error) {
	hdr := make([]byte, 8+4+4+8+8+4+4)
	if _, err := io.ReadFull(rd, hdr); err != nil {
		return nil, fmt.Errorf("obs: trace header: %w", err)
	}
	if string(hdr[:8]) != traceMagic {
		return nil, fmt.Errorf("obs: bad trace magic %q", hdr[:8])
	}
	tf := &TraceFile{
		Rank:    int(binary.LittleEndian.Uint32(hdr[8:])),
		EpochNs: int64(binary.LittleEndian.Uint64(hdr[16:])),
		Total:   binary.LittleEndian.Uint64(hdr[24:]),
	}
	stored := binary.LittleEndian.Uint32(hdr[32:])
	if es := binary.LittleEndian.Uint32(hdr[36:]); es != eventWireSize {
		return nil, fmt.Errorf("obs: unsupported event size %d", es)
	}
	buf := make([]byte, eventWireSize)
	tf.Events = make([]Event, 0, stored)
	for i := uint32(0); i < stored; i++ {
		if _, err := io.ReadFull(rd, buf); err != nil {
			return nil, fmt.Errorf("obs: trace event %d: %w", i, err)
		}
		tf.Events = append(tf.Events, Event{
			TS:   int64(binary.LittleEndian.Uint64(buf)),
			Kind: EventKind(binary.LittleEndian.Uint16(buf[8:])),
			Ph:   Phase(buf[10]),
			Arg:  binary.LittleEndian.Uint32(buf[12:]),
			Val:  int64(binary.LittleEndian.Uint64(buf[16:])),
		})
	}
	return tf, nil
}

// ReadTraceFile parses the dump at path.
func ReadTraceFile(path string) (*TraceFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// ReadTraceDir parses every gompi-trace.*.bin under dir, sorted by
// rank.
func ReadTraceDir(dir string) ([]*TraceFile, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "gompi-trace.*.bin"))
	if err != nil {
		return nil, err
	}
	out := make([]*TraceFile, 0, len(paths))
	for _, p := range paths {
		tf, err := ReadTraceFile(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, tf)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out, nil
}
