package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// Chrome trace_event rendering: the merger folds every rank's dump onto
// one wall-clock-aligned timeline (pid = rank, one row per rank).
// Rendezvous and collective spans overlap freely inside a rank, so
// spans use the async "b"/"e" phases keyed by an id instead of the
// strictly-nested B/E pair.

// kindInfo maps an EventKind to its display name and subsystem
// category (the "cat" field of the Chrome event; also the grouping key
// of the summary table).
var kindInfo = [evMax]struct{ name, cat string }{
	EvNone:           {"none", "none"},
	EvSendEager:      {"send.eager", "core"},
	EvSendSync:       {"send.sync", "core"},
	EvSendRndv:       {"send.rndv", "core"},
	EvRecvMatched:    {"recv.matched", "core"},
	EvRecvUnexpected: {"recv.unexpected", "core"},
	EvRtsRecv:        {"rndv.rts", "core"},
	EvCtsRecv:        {"rndv.cts", "core"},
	EvPeerLost:       {"fault.peer_lost", "core"},
	EvRevoke:         {"fault.revoke", "core"},
	EvCollSched:      {"coll.sched", "coll"},
	EvCollPark:       {"coll.park", "coll"},
	EvCollResume:     {"coll.resume", "coll"},
	EvPioExchange:    {"pio.exchange", "pio"},
	EvPioWrite:       {"pio.write", "pio"},
	EvPioRead:        {"pio.read", "pio"},
	EvJoin:           {"dynproc.join", "dynproc"},
	EvAdmit:          {"dynproc.admit", "dynproc"},
	EvSpawn:          {"dynproc.spawn", "dynproc"},
	EvFinalize:       {"finalize", "core"},
}

// Name returns the kind's display name.
func (k EventKind) Name() string {
	if k < evMax {
		return kindInfo[k].name
	}
	return fmt.Sprintf("kind-%d", uint16(k))
}

// Cat returns the kind's subsystem category.
func (k EventKind) Cat() string {
	if k < evMax {
		return kindInfo[k].cat
	}
	return "unknown"
}

// chromeEvent is one trace_event record. Fields follow the Chrome
// trace-event format doc; Ts/Dur are microseconds (float for sub-µs
// precision).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome merges per-rank trace files into one Chrome trace_event
// JSON document on w. Ranks become processes (pid = rank); timelines
// are aligned by each rank's wall-clock epoch so one rank's barrier
// wait visibly overlaps the straggler that caused it.
func WriteChrome(w io.Writer, files []*TraceFile) error {
	if len(files) == 0 {
		return fmt.Errorf("obs: no trace files to merge")
	}
	base := files[0].EpochNs
	for _, tf := range files {
		if tf.EpochNs < base {
			base = tf.EpochNs
		}
	}
	var out chromeTrace
	out.DisplayTimeUnit = "ms"
	for _, tf := range files {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  tf.Rank,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", tf.Rank)},
		})
		// offset places this rank's monotonic TS values on the shared
		// wall-clock timeline (same-host launches; skew is clock drift
		// between process starts, not network asymmetry).
		offset := tf.EpochNs - base
		for _, ev := range tf.Events {
			ce := chromeEvent{
				Name: ev.Kind.Name(),
				Cat:  ev.Kind.Cat(),
				Ts:   float64(ev.TS+offset) / 1e3,
				Pid:  tf.Rank,
			}
			switch ev.Ph {
			case PhBegin:
				ce.Ph = "b"
				ce.ID = spanID(tf.Rank, ev)
			case PhEnd:
				ce.Ph = "e"
				ce.ID = spanID(tf.Rank, ev)
			default:
				ce.Ph = "i"
				ce.S = "t"
			}
			ce.Args = map[string]any{"arg": ev.Arg}
			if ev.Val != 0 {
				ce.Args["bytes"] = ev.Val
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// spanID keys an async span. Spans never cross ranks (a rendezvous is
// begun and ended on the sender), so rank+kind+arg is unique while the
// span is open.
func spanID(rank int, ev Event) string {
	return fmt.Sprintf("%d:%d:%d", rank, uint16(ev.Kind), ev.Arg)
}

// SummaryRow is one operation's aggregate across every rank.
type SummaryRow struct {
	Name  string
	Cat   string
	Count int
	Bytes int64
	// Span latency percentiles; zero for instant-only kinds.
	P50, P99 time.Duration
}

// Summarize folds the merged trace into per-operation rows: event
// count, bytes moved, and p50/p99 span latency, sorted by category
// then name.
func Summarize(files []*TraceFile) []SummaryRow {
	type agg struct {
		count int
		bytes int64
		durs  []time.Duration
	}
	aggs := map[EventKind]*agg{}
	for _, tf := range files {
		// open tracks unmatched Begin timestamps per span key so a
		// wrapped ring (orphan Ends) degrades to count-only rows.
		open := map[string]int64{}
		for _, ev := range tf.Events {
			a := aggs[ev.Kind]
			if a == nil {
				a = &agg{}
				aggs[ev.Kind] = a
			}
			switch ev.Ph {
			case PhBegin:
				a.count++
				a.bytes += ev.Val
				open[spanID(tf.Rank, ev)] = ev.TS
			case PhEnd:
				// Bytes may ride on either side of a span (pio totals
				// are only known once the pass finishes).
				a.bytes += ev.Val
				if ts, ok := open[spanID(tf.Rank, ev)]; ok {
					delete(open, spanID(tf.Rank, ev))
					a.durs = append(a.durs, time.Duration(ev.TS-ts))
				}
			default:
				a.count++
				a.bytes += ev.Val
			}
		}
	}
	out := make([]SummaryRow, 0, len(aggs))
	for k, a := range aggs {
		row := SummaryRow{Name: k.Name(), Cat: k.Cat(), Count: a.count, Bytes: a.bytes}
		if len(a.durs) > 0 {
			sort.Slice(a.durs, func(i, j int) bool { return a.durs[i] < a.durs[j] })
			row.P50 = a.durs[len(a.durs)/2]
			row.P99 = a.durs[(len(a.durs)*99)/100]
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cat != out[j].Cat {
			return out[i].Cat < out[j].Cat
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WriteSummary renders the per-operation table for humans.
func WriteSummary(w io.Writer, files []*TraceFile) error {
	rows := Summarize(files)
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "CAT\tOP\tCOUNT\tBYTES\tP50\tP99")
	for _, r := range rows {
		p50, p99 := "-", "-"
		if r.P50 != 0 || r.P99 != 0 {
			p50 = r.P50.Round(time.Microsecond).String()
			p99 = r.P99.Round(time.Microsecond).String()
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\t%s\n", r.Cat, r.Name, r.Count, r.Bytes, p50, p99)
	}
	return tw.Flush()
}
