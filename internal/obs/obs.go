// Package obs is the runtime observability substrate: an MPI_T-style
// registry of performance variables (counters, gauges, timings) and
// writable control variables, plus a per-rank lock-free flight recorder
// (trace.go) whose merged output mpirun renders as a Chrome trace.
//
// The registry follows the MPI-4 tools-information direction: variables
// self-register by name, enumeration is cheap and read-only, and the
// engine's own counters are registry entries first — EngineStats is one
// view over them, not a parallel counter set. Every variable is safe
// for concurrent update and read; updates are single atomic operations
// so they can sit on the message hot path.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonic performance variable.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an up/down performance variable that tracks its peak.
type Gauge struct{ cur, peak atomic.Int64 }

// Add moves the gauge by d and returns the new value, updating the peak.
func (g *Gauge) Add(d int64) int64 {
	n := g.cur.Add(d)
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			return n
		}
	}
}

// Set stores v, updating the peak.
func (g *Gauge) Set(v int64) {
	g.cur.Store(v)
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.cur.Load() }

// Peak returns the largest value the gauge has held.
func (g *Gauge) Peak() int64 { return g.peak.Load() }

// Timing is a duration-accumulating performance variable.
type Timing struct {
	n     atomic.Uint64
	total atomic.Int64 // nanoseconds
}

// Observe folds one duration in.
func (t *Timing) Observe(d time.Duration) {
	t.n.Add(1)
	t.total.Add(int64(d))
}

// Count returns the number of observations.
func (t *Timing) Count() uint64 { return t.n.Load() }

// TotalNs returns the accumulated nanoseconds.
func (t *Timing) TotalNs() int64 { return t.total.Load() }

// VarValue is one performance variable's read-out.
type VarValue struct {
	Name  string `json:"name"`
	Class string `json:"class"` // "counter", "gauge" or "timing"
	// Value is the counter count, the gauge's current value, or the
	// timing's total nanoseconds.
	Value int64 `json:"value"`
	// Aux is the gauge's peak or the timing's observation count; zero
	// for counters.
	Aux int64 `json:"aux,omitempty"`
}

// Control is a writable control variable: a named knob with live
// get/set accessors (the MPI_T cvar analogue — eager threshold, pool
// caps).
type Control struct {
	Name string
	Desc string
	Get  func() int64
	Set  func(int64) error
}

// ControlValue is one control variable's enumeration entry.
type ControlValue struct {
	Name  string `json:"name"`
	Desc  string `json:"desc"`
	Value int64  `json:"value"`
}

// Registry holds one rank's performance and control variables.
// Creation is get-or-create by name, so layers self-register without
// coordination; reads never block updates.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timings  map[string]*Timing
	controls map[string]Control
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timings:  make(map[string]*Timing),
		controls: make(map[string]Control),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timing returns the named timing, creating it on first use.
func (r *Registry) Timing(name string) *Timing {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.timings[name]
	if t == nil {
		t = &Timing{}
		r.timings[name] = t
	}
	return t
}

// RegisterControl installs (or replaces) a control variable.
func (r *Registry) RegisterControl(c Control) {
	r.mu.Lock()
	r.controls[c.Name] = c
	r.mu.Unlock()
}

// Value reads one performance variable by name (counter count, gauge
// current value, or timing total); ok is false when no variable has
// that name.
func (r *Registry) Value(name string) (v int64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return int64(c.Load()), true
	}
	if g := r.gauges[name]; g != nil {
		return g.Load(), true
	}
	if t := r.timings[name]; t != nil {
		return t.TotalNs(), true
	}
	return 0, false
}

// Snapshot enumerates every performance variable, sorted by name.
func (r *Registry) Snapshot() []VarValue {
	r.mu.Lock()
	out := make([]VarValue, 0, len(r.counters)+len(r.gauges)+len(r.timings))
	for n, c := range r.counters {
		out = append(out, VarValue{Name: n, Class: "counter", Value: int64(c.Load())})
	}
	for n, g := range r.gauges {
		out = append(out, VarValue{Name: n, Class: "gauge", Value: g.Load(), Aux: g.Peak()})
	}
	for n, t := range r.timings {
		out = append(out, VarValue{Name: n, Class: "timing", Value: t.TotalNs(), Aux: int64(t.Count())})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Controls enumerates the control variables with their live values,
// sorted by name.
func (r *Registry) Controls() []ControlValue {
	r.mu.Lock()
	cs := make([]Control, 0, len(r.controls))
	for _, c := range r.controls {
		cs = append(cs, c)
	}
	r.mu.Unlock()
	out := make([]ControlValue, 0, len(cs))
	for _, c := range cs {
		out = append(out, ControlValue{Name: c.Name, Desc: c.Desc, Value: c.Get()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetControl writes one control variable by name.
func (r *Registry) SetControl(name string, v int64) error {
	r.mu.Lock()
	c, ok := r.controls[name]
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("obs: unknown control variable %q", name)
	}
	return c.Set(v)
}
