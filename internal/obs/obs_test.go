package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("core.sends_eager")
	if c2 := reg.Counter("core.sends_eager"); c2 != c {
		t.Fatal("Counter is not get-or-create: two handles for one name")
	}
	c.Add(3)
	c.Inc()
	if got, ok := reg.Value("core.sends_eager"); !ok || got != 4 {
		t.Fatalf("Value = %d, %v; want 4, true", got, ok)
	}

	g := reg.Gauge("core.unexpected_depth")
	g.Set(5)
	g.Set(2)
	if g.Load() != 2 || g.Peak() != 5 {
		t.Fatalf("gauge cur=%d peak=%d; want 2, 5", g.Load(), g.Peak())
	}

	tm := reg.Timing("coll.sched_ns")
	tm.Observe(3 * time.Millisecond)
	tm.Observe(1 * time.Millisecond)
	if tm.Count() != 2 || tm.TotalNs() != int64(4*time.Millisecond) {
		t.Fatalf("timing count=%d total=%d", tm.Count(), tm.TotalNs())
	}

	snap := reg.Snapshot()
	var names []string
	for _, v := range snap {
		names = append(names, v.Name)
	}
	want := []string{"coll.sched_ns", "core.sends_eager", "core.unexpected_depth"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("Snapshot names = %v, want %v (sorted)", names, want)
	}
}

func TestControlVars(t *testing.T) {
	reg := NewRegistry()
	var cur int64 = 32768
	reg.RegisterControl(Control{
		Name: "core.eager_limit",
		Desc: "eager/rendezvous threshold",
		Get:  func() int64 { return cur },
		Set:  func(v int64) error { cur = v; return nil },
	})
	if err := reg.SetControl("core.eager_limit", 1024); err != nil {
		t.Fatal(err)
	}
	if cur != 1024 {
		t.Fatalf("SetControl did not reach the target: %d", cur)
	}
	if err := reg.SetControl("no.such.var", 1); err == nil {
		t.Fatal("SetControl on an unknown cvar should fail")
	}
}

// TestRingWrapKeepsNewest is the flight-recorder invariant: when the
// ring wraps, the newest events survive and the drop count says how
// many fell off the front.
func TestRingWrapKeepsNewest(t *testing.T) {
	r := NewRecorder(0, 1024) // minimum ring
	const n = 1024 + 300
	for i := 0; i < n; i++ {
		r.Instant(EvSendEager, uint32(i), int64(i))
	}
	evs, dropped := r.Events()
	if len(evs) != 1024 {
		t.Fatalf("stored %d events, want 1024", len(evs))
	}
	if dropped != 300 {
		t.Fatalf("dropped = %d, want 300", dropped)
	}
	for i, ev := range evs {
		if want := int64(300 + i); ev.Val != want {
			t.Fatalf("event %d has Val %d, want %d (oldest must be dropped)", i, ev.Val, want)
		}
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(0, 4096)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Instant(EvRecvMatched, 1, 64)
			}
		}()
	}
	wg.Wait()
	evs, dropped := r.Events()
	if uint64(len(evs))+dropped != 8000 {
		t.Fatalf("stored %d + dropped %d != 8000 recorded", len(evs), dropped)
	}
}

func TestDisabledRecorderIsFree(t *testing.T) {
	var r *Recorder
	r.Instant(EvSendEager, 1, 2) // must not panic
	r.Begin(EvCollSched, 1, 0)
	r.End(EvCollSched, 1, 0)
	if evs, dropped := r.Events(); evs != nil || dropped != 0 {
		t.Fatal("nil recorder returned events")
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.Instant(EvSendEager, 1, 2)
	})
	if allocs != 0 {
		t.Fatalf("disabled Record allocates %.1f/op, want 0", allocs)
	}
}

func TestDumpRoundTrip(t *testing.T) {
	r := NewRecorder(3, 1024)
	r.Begin(EvSendRndv, 7, 1<<20)
	r.End(EvSendRndv, 7, 0)
	r.Instant(EvPeerLost, 2, 0)

	var buf bytes.Buffer
	if err := r.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	tf, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tf.Rank != 3 || tf.Total != 3 || len(tf.Events) != 3 {
		t.Fatalf("round trip: rank=%d total=%d stored=%d", tf.Rank, tf.Total, len(tf.Events))
	}
	want := []Event{
		{Kind: EvSendRndv, Ph: PhBegin, Arg: 7, Val: 1 << 20},
		{Kind: EvSendRndv, Ph: PhEnd, Arg: 7},
		{Kind: EvPeerLost, Ph: PhInstant, Arg: 2},
	}
	for i, w := range want {
		g := tf.Events[i]
		if g.Kind != w.Kind || g.Ph != w.Ph || g.Arg != w.Arg || g.Val != w.Val {
			t.Fatalf("event %d = %+v, want kind/ph/arg/val of %+v", i, g, w)
		}
	}
	for i := 1; i < len(tf.Events); i++ {
		if tf.Events[i].TS < tf.Events[i-1].TS {
			t.Fatal("timestamps went backwards within one rank")
		}
	}
}

func TestChromeMergeAndSummary(t *testing.T) {
	// Two ranks whose epochs differ by 1ms: the merger must place rank
	// 1's events 1ms later on the shared timeline.
	mk := func(rank int, epochNs int64, evs ...Event) *TraceFile {
		return &TraceFile{Rank: rank, EpochNs: epochNs, Total: uint64(len(evs)), Events: evs}
	}
	files := []*TraceFile{
		mk(0, 1_000_000_000,
			Event{TS: 0, Kind: EvSendEager, Ph: PhInstant, Arg: 1, Val: 100},
			Event{TS: 2000, Kind: EvCollSched, Ph: PhBegin, Arg: 1},
			Event{TS: 52000, Kind: EvCollSched, Ph: PhEnd, Arg: 1},
		),
		mk(1, 1_001_000_000,
			Event{TS: 1000, Kind: EvRecvMatched, Ph: PhInstant, Arg: 0, Val: 100},
		),
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, files); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		`"traceEvents"`, `"rank 0"`, `"rank 1"`,
		`"send.eager"`, `"coll.sched"`, `"recv.matched"`,
		`"ph":"b"`, `"ph":"e"`, `"ph":"i"`,
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("merged trace lacks %s:\n%s", frag, out)
		}
	}

	rows := Summarize(files)
	byName := map[string]SummaryRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if r := byName["send.eager"]; r.Count != 1 || r.Bytes != 100 {
		t.Fatalf("send.eager row = %+v", r)
	}
	if r := byName["coll.sched"]; r.Count != 1 || r.P50 != 50*time.Microsecond {
		t.Fatalf("coll.sched row = %+v (want one 50µs span)", r)
	}
}
