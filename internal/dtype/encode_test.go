package dtype

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPackUnpackContiguous(t *testing.T) {
	src := []int32{10, 20, 30, 40, 50}
	wire, err := Pack(nil, src, 1, 3, Basic(I32, "INT"))
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != 12 {
		t.Fatalf("wire length %d, want 12", len(wire))
	}
	dst := make([]int32, 5)
	n, err := Unpack(wire, dst, 2, 3, Basic(I32, "INT"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("unpacked %d elements, want 3", n)
	}
	want := []int32{0, 0, 20, 30, 40}
	if !reflect.DeepEqual(dst, want) {
		t.Fatalf("dst = %v, want %v", dst, want)
	}
}

func TestPackAllClasses(t *testing.T) {
	cases := []struct {
		buf  any
		c    Class
		wire int
	}{
		{[]byte{1, 2, 3}, U8, 3},
		{[]bool{true, false, true}, Bool, 3},
		{[]int16{-1, 2, -3}, I16, 6},
		{[]int32{1 << 20, -5, 7}, I32, 12},
		{[]int64{1 << 40, -9, 11}, I64, 24},
		{[]float32{1.5, -2.5, 3.25}, F32, 12},
		{[]float64{1e100, -2e-100, 0}, F64, 24},
	}
	for _, tc := range cases {
		ty := Basic(tc.c, tc.c.String())
		wire, err := Pack(nil, tc.buf, 0, 3, ty)
		if err != nil {
			t.Fatalf("%s: %v", tc.c, err)
		}
		if len(wire) != tc.wire {
			t.Fatalf("%s: wire %d bytes, want %d", tc.c, len(wire), tc.wire)
		}
		dst := MakeDense(tc.c, 3)
		if _, err := Unpack(wire, dst, 0, 3, ty); err != nil {
			t.Fatalf("%s: %v", tc.c, err)
		}
		if !reflect.DeepEqual(dst, tc.buf) {
			t.Fatalf("%s: roundtrip %v != %v", tc.c, dst, tc.buf)
		}
	}
}

func TestClassMismatch(t *testing.T) {
	if _, err := Pack(nil, []int32{1}, 0, 1, Basic(F64, "DOUBLE")); !errors.Is(err, ErrClassMismatch) {
		t.Fatalf("got %v, want ErrClassMismatch", err)
	}
	if _, err := Pack(nil, "not a slice", 0, 1, Basic(U8, "BYTE")); !errors.Is(err, ErrClassMismatch) {
		t.Fatalf("got %v, want ErrClassMismatch", err)
	}
}

func TestBoundsChecks(t *testing.T) {
	buf := make([]int32, 4)
	ty := Basic(I32, "INT")
	if _, err := Pack(nil, buf, 2, 3, ty); !errors.Is(err, ErrBounds) {
		t.Fatalf("overrun pack: got %v", err)
	}
	if _, err := Pack(nil, buf, -1, 1, ty); !errors.Is(err, ErrNegative) {
		t.Fatalf("negative offset: got %v", err)
	}
	v, _ := Vector(2, 1, 3, ty) // accesses 0 and 3
	v.Commit()
	if _, err := Pack(nil, buf, 1, 1, v); !errors.Is(err, ErrBounds) {
		t.Fatalf("strided overrun: got %v", err)
	}
}

func TestTruncation(t *testing.T) {
	src := []int32{1, 2, 3, 4, 5}
	wire, err := Pack(nil, src, 0, 5, Basic(I32, "INT"))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int32, 3)
	n, err := Unpack(wire, dst, 0, 3, Basic(I32, "INT"))
	if !errors.Is(err, ErrTruncate) {
		t.Fatalf("got %v, want ErrTruncate", err)
	}
	if n != 3 {
		t.Fatalf("filled %d elements, want 3", n)
	}
	if dst[0] != 1 || dst[2] != 3 {
		t.Fatalf("prefix not deposited: %v", dst)
	}
}

func TestShortDelivery(t *testing.T) {
	src := []int32{7, 8}
	wire, err := Pack(nil, src, 0, 2, Basic(I32, "INT"))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int32, 10)
	n, err := Unpack(wire, dst, 0, 10, Basic(I32, "INT"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("unpacked %d, want 2", n)
	}
}

func TestStridedRoundTrip(t *testing.T) {
	// A 4x4 column through a vector type, packed then deposited into a
	// differently-offset matrix.
	v, _ := Vector(4, 1, 4, Basic(F64, "DOUBLE"))
	v.Commit()
	src := make([]float64, 16)
	for i := range src {
		src[i] = float64(i)
	}
	wire, err := Pack(nil, src, 1, 1, v) // column 1: 1,5,9,13
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 16)
	if _, err := Unpack(wire, dst, 2, 1, v); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 5, 9, 13} {
		if got := dst[2+4*i]; got != want {
			t.Fatalf("dst col = %v... want %v at row %d", got, want, i)
		}
	}
}

// TestPackUnpackRoundTripProperty: for random data and random derived
// types, Unpack(Pack(x)) == x on the selected elements.
func TestPackUnpackRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ty := randomType(rng, 2)
		if ty.Size() == 0 {
			return true
		}
		count := 1 + rng.Intn(3)
		span := (count-1)*ty.Extent() + ty.Ub() + 8
		src := make([]int64, span+8)
		for i := range src {
			src[i] = rng.Int63() - (1 << 62)
		}
		wire, err := Pack(nil, src, 4, count, ty)
		if err != nil {
			t.Logf("pack: %v (type %v)", err, ty)
			return false
		}
		dst := make([]int64, len(src))
		n, err := Unpack(wire, dst, 4, count, ty)
		if err != nil || n != count*ty.Size() {
			t.Logf("unpack: n=%d err=%v", n, err)
			return false
		}
		// Every typemap position must match; untouched positions stay 0.
		for i := 0; i < count; i++ {
			base := 4 + i*ty.Extent()
			for _, d := range ty.disps {
				if dst[base+d] != src[base+d] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// randomType builds a random derived-type tree over I64 up to the given
// depth.
func randomType(rng *rand.Rand, depth int) *Type {
	base := Basic(I64, "LONG")
	if depth == 0 || rng.Intn(3) == 0 {
		return base
	}
	inner := randomType(rng, depth-1)
	var ty *Type
	var err error
	switch rng.Intn(4) {
	case 0:
		ty, err = Contiguous(1+rng.Intn(3), inner)
	case 1:
		ty, err = Vector(1+rng.Intn(3), 1+rng.Intn(2), 1+rng.Intn(4), inner)
	case 2:
		ty, err = Hvector(1+rng.Intn(3), 1+rng.Intn(2), inner.Extent()*(1+rng.Intn(2))+1, inner)
	default:
		n := 1 + rng.Intn(3)
		bls := make([]int, n)
		dis := make([]int, n)
		at := 0
		for i := range bls {
			bls[i] = 1 + rng.Intn(2)
			dis[i] = at
			at += bls[i]*inner.Extent() + rng.Intn(3)
		}
		ty, err = Indexed(bls, dis, inner)
	}
	if err != nil {
		return base
	}
	ty.Commit()
	return ty
}

func TestDenseHelpers(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	c := CloneDense(d).([]float32)
	c[0] = 99
	if d[0] != 1 {
		t.Fatal("CloneDense must copy")
	}
	s := SliceDense(d, 1, 3).([]float32)
	if len(s) != 2 || s[0] != 2 {
		t.Fatalf("SliceDense = %v", s)
	}
	dst := make([]float32, 4)
	if n := CopyDense(dst, d); n != 4 || dst[3] != 4 {
		t.Fatalf("CopyDense: n=%d dst=%v", n, dst)
	}
	if DenseLen(d) != 4 {
		t.Fatal("DenseLen wrong")
	}
	wire, err := EncodeDense(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeDense(wire, F32)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, d) {
		t.Fatalf("dense roundtrip: %v != %v", back, d)
	}
}

func TestExtractDeposit(t *testing.T) {
	v, _ := Vector(3, 1, 2, Basic(I32, "INT")) // elements 0,2,4
	v.Commit()
	buf := []int32{10, 0, 20, 0, 30, 0}
	dense, err := Extract(buf, 0, 1, v)
	if err != nil {
		t.Fatal(err)
	}
	ds := dense.([]int32)
	if !reflect.DeepEqual(ds, []int32{10, 20, 30}) {
		t.Fatalf("extract = %v", ds)
	}
	ds[0], ds[1], ds[2] = 1, 2, 3
	out := make([]int32, 6)
	if err := Deposit(dense, out, 0, 1, v); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []int32{1, 0, 2, 0, 3, 0}) {
		t.Fatalf("deposit = %v", out)
	}
}
