package dtype

import (
	"errors"
	"reflect"
	"testing"
)

type testStruct struct {
	A int
	B string
	C []float64
}

func init() {
	Register(testStruct{})
	Register(map[string]int{})
}

func TestObjectRoundTrip(t *testing.T) {
	blob, err := EncodeObject(testStruct{A: 7, B: "x", C: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	v, err := DecodeObject(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.(testStruct)
	if !ok {
		t.Fatalf("decoded %T", v)
	}
	if got.A != 7 || got.B != "x" || len(got.C) != 2 {
		t.Fatalf("decoded %+v", got)
	}
}

func TestObjectBufferPack(t *testing.T) {
	objType := Basic(Obj, "OBJECT")
	buf := []any{
		testStruct{A: 1, B: "one"},
		"plain string",
		42,
		map[string]int{"k": 9},
	}
	wire, err := Pack(nil, buf, 0, 4, objType)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]any, 4)
	n, err := Unpack(wire, out, 0, 4, objType)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("unpacked %d objects", n)
	}
	if out[0].(testStruct).B != "one" || out[1].(string) != "plain string" ||
		out[2].(int) != 42 || out[3].(map[string]int)["k"] != 9 {
		t.Fatalf("roundtrip: %#v", out)
	}
}

func TestObjectTruncation(t *testing.T) {
	objType := Basic(Obj, "OBJECT")
	buf := []any{1, 2, 3}
	wire, err := Pack(nil, buf, 0, 3, objType)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]any, 2)
	n, err := Unpack(wire, out, 0, 2, objType)
	if !errors.Is(err, ErrTruncate) {
		t.Fatalf("got %v, want ErrTruncate", err)
	}
	if n != 2 || out[0].(int) != 1 || out[1].(int) != 2 {
		t.Fatalf("prefix: n=%d %v", n, out)
	}
}

func TestObjectWithOffsetsAndNil(t *testing.T) {
	objType := Basic(Obj, "OBJECT")
	buf := []any{nil, "a", "b", nil}
	wire, err := Pack(nil, buf, 1, 2, objType)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]any, 4)
	if _, err := Unpack(wire, out, 2, 2, objType); err != nil {
		t.Fatal(err)
	}
	want := []any{nil, nil, "a", "b"}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %#v, want %#v", out, want)
	}
}

func TestObjectDenseDecode(t *testing.T) {
	buf := []any{"x", "y"}
	wire, err := EncodeDense(buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeDense(wire, Obj)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, buf) {
		t.Fatalf("got %#v", back)
	}
}

func TestObjectMalformed(t *testing.T) {
	out := make([]any, 1)
	if _, err := Unpack([]byte{1, 2}, out, 0, 1, Basic(Obj, "OBJECT")); !errors.Is(err, ErrFormat) {
		t.Fatalf("got %v, want ErrFormat", err)
	}
}
