// Package dtype implements the MPI datatype engine underneath the public
// mpi binding: element storage classes, derived-type typemaps (contiguous,
// vector, indexed, struct — with the mpiJava same-base-type restriction),
// and packing of typed buffer sections to and from wire bytes.
//
// Displacements, strides, extents and bounds are all expressed in units of
// *base elements*, matching the mpiJava binding: Java (and Go) buffers are
// one-dimensional arrays of a primitive type, so there is no byte-level
// addressing as in the C binding (paper §2.2).
package dtype

import (
	"errors"
	"fmt"
)

// Class identifies the storage class of buffer elements: the concrete Go
// slice type a buffer must have, and the wire size of one element.
type Class uint8

// Storage classes. CHAR shares I32 storage (Go rune == int32); PACKED
// shares U8. Obj elements are arbitrary gob-serializable values.
const (
	U8   Class = iota // []byte
	Bool              // []bool
	I16               // []int16
	I32               // []int32 (also []rune)
	I64               // []int64
	F32               // []float32
	F64               // []float64
	Obj               // []any, gob-encoded on the wire
	numClasses
)

// WireSize returns the number of bytes one element of the class occupies
// on the wire. Obj elements have variable size; WireSize returns 0.
func (c Class) WireSize() int {
	switch c {
	case U8, Bool:
		return 1
	case I16:
		return 2
	case I32, F32:
		return 4
	case I64, F64:
		return 8
	default:
		return 0
	}
}

func (c Class) String() string {
	switch c {
	case U8:
		return "byte"
	case Bool:
		return "bool"
	case I16:
		return "int16"
	case I32:
		return "int32"
	case I64:
		return "int64"
	case F32:
		return "float32"
	case F64:
		return "float64"
	case Obj:
		return "object"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// run is a maximal block of consecutive displacements, the unit of the
// pack/unpack fast path.
type run struct {
	off int // displacement of the first element of the run
	n   int // number of consecutive elements
}

// Type is a datatype descriptor: a storage class plus a typemap of
// displacements. Types are immutable after construction and safe for
// concurrent use.
type Type struct {
	class Class
	disps []int // displacement of every basic element of one item
	runs  []run // disps grouped into maximal consecutive runs
	lb    int   // lower bound, in elements
	ub    int   // upper bound, in elements (extent = ub-lb)
	name  string

	committed bool
	marker    uint8 // 0: ordinary; 1: LB marker; 2: UB marker
	pair      bool  // MINLOC/MAXLOC (value,index) pair type
	// contig marks a type whose items tile memory densely ([0,size)
	// with extent == size): pack/unpack collapse count items into one
	// bulk run instead of iterating per item.
	contig bool
}

// Marker kinds for the MPI_LB / MPI_UB pseudo-types.
const (
	markNone uint8 = iota
	markLB
	markUB
)

var (
	// ErrUncommitted is returned when an uncommitted derived type is
	// used in a communication call.
	ErrUncommitted = errors.New("dtype: datatype not committed")
	// ErrClassMismatch is returned when a buffer's concrete slice type
	// does not match the datatype's storage class.
	ErrClassMismatch = errors.New("dtype: buffer type does not match datatype storage class")
	// ErrBounds is returned when a typemap access would fall outside
	// the buffer.
	ErrBounds = errors.New("dtype: buffer access out of bounds")
	// ErrNegative is returned for negative counts, block lengths or
	// similar arguments.
	ErrNegative = errors.New("dtype: negative count or block length")
	// ErrStructBase is the mpiJava restriction (paper §2.2): all
	// component types of a Struct must share one base storage class.
	ErrStructBase = errors.New("dtype: Struct components must share a single base type (mpiJava restriction)")
)

// Basic returns a predefined basic datatype: one element of class c at
// displacement zero. Basic types are born committed.
func Basic(c Class, name string) *Type {
	t := &Type{
		class:     c,
		disps:     []int{0},
		lb:        0,
		ub:        1,
		name:      name,
		committed: true,
	}
	t.buildRuns()
	return t
}

// Pair returns a predefined two-element pair type (MPI.INT2 and friends)
// used with the MINLOC and MAXLOC reduction operations: element 0 is the
// value, element 1 the index.
func Pair(c Class, name string) *Type {
	t := &Type{
		class:     c,
		disps:     []int{0, 1},
		lb:        0,
		ub:        2,
		name:      name,
		committed: true,
		pair:      true,
	}
	t.buildRuns()
	return t
}

// Marker returns one of the MPI_LB/MPI_UB pseudo-types, which occupy no
// storage but pin the bounds of a Struct.
func Marker(lb bool, name string) *Type {
	m := markUB
	if lb {
		m = markLB
	}
	return &Type{name: name, marker: m, committed: true}
}

// Class reports the storage class of the type's base elements.
func (t *Type) Class() Class { return t.class }

// Size returns the number of basic elements one item of the type carries
// (the true data size, holes excluded).
func (t *Type) Size() int { return len(t.disps) }

// Extent returns ub-lb: the stride, in base elements, between consecutive
// items of this type in a buffer.
func (t *Type) Extent() int { return t.ub - t.lb }

// Lb returns the lower bound in base elements.
func (t *Type) Lb() int { return t.lb }

// Ub returns the upper bound in base elements.
func (t *Type) Ub() int { return t.ub }

// Name returns the type's display name.
func (t *Type) Name() string { return t.name }

// SetName renames the type (MPI_Type_set_name analogue, used in tests).
func (t *Type) SetName(n string) { t.name = n }

// Committed reports whether Commit has been called (basic types are
// always committed).
func (t *Type) Committed() bool { return t.committed }

// IsPair reports whether the type is one of the MINLOC/MAXLOC pair types.
func (t *Type) IsPair() bool { return t.pair }

// IsMarker reports whether the type is the LB or UB pseudo-type.
func (t *Type) IsMarker() bool { return t.marker != markNone }

// IsContiguous reports whether items of the type tile memory densely
// (no holes, extent == size), the shape the zero-copy fast paths
// require.
func (t *Type) IsContiguous() bool { return t.contig }

// Runs returns the typemap grouped into maximal runs of consecutive
// displacements, as (offset, length) pairs in typemap order. The file
// layer walks these to turn a view into contiguous file extents.
func (t *Type) Runs() [][2]int {
	out := make([][2]int, len(t.runs))
	for i, r := range t.runs {
		out[i] = [2]int{r.off, r.n}
	}
	return out
}

// Monotone reports whether the typemap's displacements are strictly
// increasing — the shape MPI requires of filetypes (non-negative,
// monotonically nondecreasing, non-overlapping for writes).
func (t *Type) Monotone() bool {
	for i := 1; i < len(t.disps); i++ {
		if t.disps[i] <= t.disps[i-1] {
			return false
		}
	}
	return true
}

// Commit finalizes a derived type for use in communication. It is
// idempotent.
func (t *Type) Commit() {
	t.committed = true
}

// WireBytes returns the wire size of count items, or -1 for Obj class
// (variable).
func (t *Type) WireBytes(count int) int {
	es := t.class.WireSize()
	if es == 0 {
		return -1
	}
	return count * len(t.disps) * es
}

func (t *Type) String() string {
	if t == nil {
		return "<nil type>"
	}
	return fmt.Sprintf("%s{class=%s size=%d extent=%d lb=%d}", t.name, t.class, t.Size(), t.Extent(), t.lb)
}

func (t *Type) buildRuns() {
	t.runs = t.runs[:0]
	i := 0
	for i < len(t.disps) {
		j := i + 1
		for j < len(t.disps) && t.disps[j] == t.disps[j-1]+1 {
			j++
		}
		t.runs = append(t.runs, run{off: t.disps[i], n: j - i})
		i = j
	}
	t.contig = len(t.runs) == 1 && t.runs[0].off == 0 &&
		t.lb == 0 && t.ub == len(t.disps)
}

// iterShape returns the (count, extent, runs) triple the pack/unpack
// loops should walk: contiguous types collapse count items into a single
// bulk run so basic-type transfers cost one copy, not one loop iteration
// per element.
func (t *Type) iterShape(count int) (int, int, []run) {
	if t.contig && count > 0 {
		return 1, 0, []run{{off: 0, n: count * len(t.disps)}}
	}
	return count, t.Extent(), t.runs
}

// derive assembles a new derived type from a list of (itemDisp, old)
// placements: each placement lays down one item of old at base
// displacement itemDisp (in base elements).
func derive(class Class, name string, placements []placement) *Type {
	t := &Type{class: class, name: name}
	first := true
	for _, p := range placements {
		if p.old.marker != markNone {
			// Markers occupy no storage but join the provisional
			// bounds; applyMarkers then makes them sticky.
			t.noteBound(&first, p.disp, p.disp)
			continue
		}
		for _, d := range p.old.disps {
			t.disps = append(t.disps, p.disp+d)
		}
		t.noteBound(&first, p.disp+p.old.lb, p.disp+p.old.ub)
	}
	if first {
		// Empty type: zero extent.
		t.lb, t.ub = 0, 0
	}
	t.applyMarkers(placements)
	t.buildRuns()
	return t
}

type placement struct {
	disp int
	old  *Type
}

func (t *Type) noteBound(first *bool, lo, hi int) {
	if *first {
		t.lb, t.ub = lo, hi
		*first = false
		return
	}
	if lo < t.lb {
		t.lb = lo
	}
	if hi > t.ub {
		t.ub = hi
	}
}

// applyMarkers implements MPI's "sticky" LB/UB rule: if any component has
// an explicit LB (UB) marker, the result's lb (ub) is the min (max) over
// marker positions only.
func (t *Type) applyMarkers(placements []placement) {
	haveLB, haveUB := false, false
	lb, ub := 0, 0
	for _, p := range placements {
		switch p.old.marker {
		case markLB:
			if !haveLB || p.disp < lb {
				lb = p.disp
			}
			haveLB = true
		case markUB:
			if !haveUB || p.disp > ub {
				ub = p.disp
			}
			haveUB = true
		}
	}
	if haveLB {
		t.lb = lb
	}
	if haveUB {
		t.ub = ub
	}
}

// Contiguous returns a type of count consecutive items of old
// (MPI_Type_contiguous).
func Contiguous(count int, old *Type) (*Type, error) {
	if count < 0 {
		return nil, ErrNegative
	}
	ext := old.Extent()
	pl := make([]placement, count)
	for i := range pl {
		pl[i] = placement{disp: i * ext, old: old}
	}
	return derive(old.class, fmt.Sprintf("contig(%d,%s)", count, old.name), pl), nil
}

// Vector returns count blocks of blocklen items of old, the start of each
// block separated by stride items (stride in units of old's extent;
// MPI_Type_vector).
func Vector(count, blocklen, stride int, old *Type) (*Type, error) {
	if count < 0 || blocklen < 0 {
		return nil, ErrNegative
	}
	return strided(count, blocklen, stride*old.Extent(), old,
		fmt.Sprintf("vector(%d,%d,%d,%s)", count, blocklen, stride, old.name)), nil
}

// Hvector is Vector with the stride given directly in base elements
// (the mpiJava analogue of MPI_Type_hvector, where C strides are bytes).
func Hvector(count, blocklen, stride int, old *Type) (*Type, error) {
	if count < 0 || blocklen < 0 {
		return nil, ErrNegative
	}
	return strided(count, blocklen, stride, old,
		fmt.Sprintf("hvector(%d,%d,%d,%s)", count, blocklen, stride, old.name)), nil
}

func strided(count, blocklen, strideElems int, old *Type, name string) *Type {
	ext := old.Extent()
	pl := make([]placement, 0, count*blocklen)
	for i := 0; i < count; i++ {
		base := i * strideElems
		for b := 0; b < blocklen; b++ {
			pl = append(pl, placement{disp: base + b*ext, old: old})
		}
	}
	return derive(old.class, name, pl)
}

// Indexed returns a type with len(blocklens) blocks; block i has
// blocklens[i] items of old starting at displacement displs[i], given in
// units of old's extent (MPI_Type_indexed).
func Indexed(blocklens, displs []int, old *Type) (*Type, error) {
	if len(blocklens) != len(displs) {
		return nil, fmt.Errorf("dtype: Indexed: %d block lengths vs %d displacements", len(blocklens), len(displs))
	}
	return indexed(blocklens, displs, old.Extent(), old,
		fmt.Sprintf("indexed(%d,%s)", len(blocklens), old.name))
}

// Hindexed is Indexed with displacements given directly in base elements.
func Hindexed(blocklens, displs []int, old *Type) (*Type, error) {
	if len(blocklens) != len(displs) {
		return nil, fmt.Errorf("dtype: Hindexed: %d block lengths vs %d displacements", len(blocklens), len(displs))
	}
	return indexed(blocklens, displs, 1, old,
		fmt.Sprintf("hindexed(%d,%s)", len(blocklens), old.name))
}

func indexed(blocklens, displs []int, dispUnit int, old *Type, name string) (*Type, error) {
	ext := old.Extent()
	var pl []placement
	for i, bl := range blocklens {
		if bl < 0 {
			return nil, ErrNegative
		}
		base := displs[i] * dispUnit
		for b := 0; b < bl; b++ {
			pl = append(pl, placement{disp: base + b*ext, old: old})
		}
	}
	return derive(old.class, name, pl), nil
}

// Struct returns a type combining blocks of possibly different component
// types at explicit displacements in base elements (MPI_Type_struct).
// Per the paper (§2.2), all non-marker components must share one base
// storage class; LB/UB markers are allowed anywhere.
func Struct(blocklens, displs []int, types []*Type) (*Type, error) {
	if len(blocklens) != len(displs) || len(blocklens) != len(types) {
		return nil, fmt.Errorf("dtype: Struct: mismatched argument lengths %d/%d/%d", len(blocklens), len(displs), len(types))
	}
	class := numClasses
	for _, ty := range types {
		if ty.IsMarker() {
			continue
		}
		if class == numClasses {
			class = ty.class
		} else if ty.class != class {
			return nil, ErrStructBase
		}
	}
	if class == numClasses {
		class = U8 // marker-only struct; storage class irrelevant
	}
	var pl []placement
	for i, bl := range blocklens {
		if bl < 0 {
			return nil, ErrNegative
		}
		ext := types[i].Extent()
		if types[i].IsMarker() {
			// Markers ignore blocklen beyond presence.
			pl = append(pl, placement{disp: displs[i], old: types[i]})
			continue
		}
		for b := 0; b < bl; b++ {
			pl = append(pl, placement{disp: displs[i] + b*ext, old: types[i]})
		}
	}
	t := derive(class, fmt.Sprintf("struct(%d)", len(types)), pl)
	return t, nil
}
