package dtype

import "fmt"

// Dense-slice utilities used by the collective layer: reductions operate
// on dense, typed element slices extracted from user buffers.

// CloneDense returns a copy of a dense slice.
func CloneDense(d any) any {
	switch s := d.(type) {
	case []byte:
		return append([]byte(nil), s...)
	case []bool:
		return append([]bool(nil), s...)
	case []int16:
		return append([]int16(nil), s...)
	case []int32:
		return append([]int32(nil), s...)
	case []int64:
		return append([]int64(nil), s...)
	case []float32:
		return append([]float32(nil), s...)
	case []float64:
		return append([]float64(nil), s...)
	case []any:
		return append([]any(nil), s...)
	}
	panic(fmt.Sprintf("dtype: CloneDense on %T", d))
}

// SliceDense returns the subslice d[lo:hi] sharing storage with d.
func SliceDense(d any, lo, hi int) any {
	switch s := d.(type) {
	case []byte:
		return s[lo:hi]
	case []bool:
		return s[lo:hi]
	case []int16:
		return s[lo:hi]
	case []int32:
		return s[lo:hi]
	case []int64:
		return s[lo:hi]
	case []float32:
		return s[lo:hi]
	case []float64:
		return s[lo:hi]
	case []any:
		return s[lo:hi]
	}
	panic(fmt.Sprintf("dtype: SliceDense on %T", d))
}

// CopyDense copies src into dst (same class) and returns the number of
// elements copied.
func CopyDense(dst, src any) int {
	switch d := dst.(type) {
	case []byte:
		return copy(d, src.([]byte))
	case []bool:
		return copy(d, src.([]bool))
	case []int16:
		return copy(d, src.([]int16))
	case []int32:
		return copy(d, src.([]int32))
	case []int64:
		return copy(d, src.([]int64))
	case []float32:
		return copy(d, src.([]float32))
	case []float64:
		return copy(d, src.([]float64))
	case []any:
		return copy(d, src.([]any))
	}
	panic(fmt.Sprintf("dtype: CopyDense on %T", dst))
}
