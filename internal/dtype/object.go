package dtype

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
)

// Object serialization — the paper's §2.2 extension. A buffer of
// MPI.OBJECT elements is a []any; each element is serialized in the send
// wrapper and unserialized at the destination. Go's encoding/gob plays
// the role of Java object serialization; concrete element types must be
// registered via Register (the analogue of implementing Serializable).
//
// Wire layout of an Obj payload:
//
//	u32 object count
//	per object: u32 length, gob bytes
//
// Each object is encoded with a fresh gob stream so payloads can be
// decoded element-by-element through arbitrary typemaps.

// box wraps an interface value so gob carries its concrete type.
type box struct{ V any }

// Register records a concrete type for object-buffer serialization,
// mirroring gob.Register. Values of unregistered concrete types cannot
// travel in OBJECT buffers.
func Register(v any) { gob.Register(v) }

// EncodeObject serializes a single value.
func EncodeObject(v any) ([]byte, error) {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(box{V: v}); err != nil {
		return nil, fmt.Errorf("dtype: object encode: %w", err)
	}
	return b.Bytes(), nil
}

// DecodeObject deserializes a single value.
func DecodeObject(data []byte) (any, error) {
	var b box
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&b); err != nil {
		return nil, fmt.Errorf("dtype: object decode: %w", err)
	}
	return b.V, nil
}

func packObjects(dst []byte, s []any, offset, count int, t *Type) ([]byte, error) {
	total := count * len(t.disps)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(total))
	ext := t.Extent()
	for i := 0; i < count; i++ {
		base := offset + i*ext
		for _, d := range t.disps {
			blob, err := EncodeObject(s[base+d])
			if err != nil {
				return dst, err
			}
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(blob)))
			dst = append(dst, blob...)
		}
	}
	return dst, nil
}

// objectCount reads the object count header of an Obj payload.
func objectCount(data []byte) (int, error) {
	if len(data) < 4 {
		return 0, ErrFormat
	}
	return int(binary.LittleEndian.Uint32(data)), nil
}

func unpackObjects(data []byte, s []any, offset, count int, t *Type) (int, error) {
	avail, err := objectCount(data)
	if err != nil {
		return 0, err
	}
	data = data[4:]
	capacity := count * len(t.disps)
	todo := avail
	if todo > capacity {
		todo = capacity
	}
	ext := t.Extent()
	done := 0
objLoop:
	for i := 0; i < count; i++ {
		base := offset + i*ext
		for _, d := range t.disps {
			if done == todo {
				break objLoop
			}
			if len(data) < 4 {
				return done, ErrFormat
			}
			n := int(binary.LittleEndian.Uint32(data))
			data = data[4:]
			if len(data) < n {
				return done, ErrFormat
			}
			v, err := DecodeObject(data[:n])
			if err != nil {
				return done, err
			}
			data = data[n:]
			s[base+d] = v
			done++
		}
	}
	if avail > capacity {
		return done, ErrTruncate
	}
	return done, nil
}
