package dtype

import (
	"reflect"
	"testing"
)

func TestInferDirectClasses(t *testing.T) {
	cases := []struct {
		v     any
		class Class
	}{
		{byte(0), U8},
		{false, Bool},
		{int16(0), I16},
		{int32(0), I32},
		{rune(0), I32},
		{int64(0), I64},
		{float32(0), F32},
		{float64(0), F64},
	}
	for _, c := range cases {
		inf := Infer(reflect.TypeOf(c.v))
		if !inf.Direct || inf.Class != c.class {
			t.Errorf("Infer(%T) = %+v, want direct %s", c.v, inf, c.class)
		}
	}
}

func TestInferObjRouted(t *testing.T) {
	type point struct{ X, Y float64 }
	for _, v := range []any{point{}, "", &point{}, int(0), uint64(0), []int32{}} {
		inf := Infer(reflect.TypeOf(v))
		if inf.Direct || inf.Reinterp || inf.Class != Obj {
			t.Errorf("Infer(%T) = %+v, want non-direct Obj", v, inf)
		}
	}
}

func TestInferReinterpNamedPrimitives(t *testing.T) {
	type meters float64
	type count int32
	type flag bool
	type tiny byte
	cases := []struct {
		v     any
		class Class
	}{
		{meters(0), F64},
		{count(0), I32},
		{flag(false), Bool},
		{tiny(0), U8},
	}
	for _, c := range cases {
		inf := Infer(reflect.TypeOf(c.v))
		if inf.Direct || !inf.Reinterp || inf.Class != c.class {
			t.Errorf("Infer(%T) = %+v, want reinterp %s", c.v, inf, c.class)
		}
	}
}

func TestInferAnyIsDirectObj(t *testing.T) {
	rt := reflect.TypeOf((*any)(nil)).Elem()
	inf := Infer(rt)
	if !inf.Direct || inf.Class != Obj {
		t.Errorf("Infer(any) = %+v, want direct Obj", inf)
	}
}

func TestInferRegistersForGob(t *testing.T) {
	type autoReg struct{ N int32 }
	Infer(reflect.TypeOf(autoReg{}))
	// Round-trip through the object codec without an explicit Register.
	blob, err := EncodeObject(autoReg{N: 7})
	if err != nil {
		t.Fatal(err)
	}
	v, err := DecodeObject(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := v.(autoReg); !ok || got.N != 7 {
		t.Fatalf("round-trip got %#v", v)
	}
}

func TestInferCached(t *testing.T) {
	rt := reflect.TypeOf(float64(0))
	a, b := Infer(rt), Infer(rt)
	if a != b {
		t.Fatalf("cache miss: %+v vs %+v", a, b)
	}
}
