package dtype

import (
	"bytes"
	"testing"
)

type celsius float64

type seq int16

func TestNativeViewNamedPrimitive(t *testing.T) {
	buf := []celsius{36.6, -40, 0}
	nv, ok := NativeView(buf)
	if !ok {
		t.Fatal("named float64 slice not reinterpreted")
	}
	f, ok := nv.([]float64)
	if !ok || len(f) != 3 || f[0] != 36.6 {
		t.Fatalf("view %T %v", nv, nv)
	}
	// Shared storage: a write through the view lands in the original.
	f[2] = 100
	if buf[2] != 100 {
		t.Fatal("view does not share storage")
	}
}

func TestNativeViewPassThrough(t *testing.T) {
	native := []float64{1, 2}
	if nv, ok := NativeView(native); ok || len(nv.([]float64)) != 2 {
		t.Fatal("native slice must pass through unviewed")
	}
	if _, ok := NativeView([]string{"x"}); ok {
		t.Fatal("string slice must not reinterpret")
	}
	if _, ok := NativeView(42); ok {
		t.Fatal("non-slice must not reinterpret")
	}
	if nv, ok := NativeView(nil); ok || nv != nil {
		t.Fatal("nil must pass through")
	}
	// Empty named slice: still views (to an empty native slice).
	if nv, ok := NativeView([]celsius{}); !ok || len(nv.([]float64)) != 0 {
		t.Fatal("empty named slice must view to empty native slice")
	}
}

func TestPackUnpackNamedPrimitive(t *testing.T) {
	src := []celsius{1.5, -2.25, 3.125}
	wire, err := Pack(nil, src, 0, 3, BasicType(F64))
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != 24 {
		t.Fatalf("wire length %d, want 24 (F64 format, no gob)", len(wire))
	}
	dst := make([]celsius, 3)
	if _, err := Unpack(wire, dst, 0, 3, BasicType(F64)); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("round trip %v != %v", dst, src)
		}
	}
	// Cross-type interop: named sender, native receiver.
	nat := make([]float64, 3)
	if _, err := Unpack(wire, nat, 0, 3, BasicType(F64)); err != nil {
		t.Fatal(err)
	}
	if nat[1] != -2.25 {
		t.Fatalf("native decode %v", nat)
	}
}

func TestPackFastPathMatchesSlowShape(t *testing.T) {
	// The memcpy fast path and the per-element loop must produce
	// identical wire bytes for every fixed-size class.
	i16 := []int16{1, -2, 3, 0x7fff}
	wire, err := Pack(nil, i16, 1, 2, BasicType(I16))
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0xfe, 0xff, 0x03, 0x00} // -2, 3 little-endian
	if !bytes.Equal(wire, want) {
		t.Fatalf("wire %x, want %x", wire, want)
	}
	back := make([]int16, 4)
	if _, err := Unpack(wire, back, 2, 2, BasicType(I16)); err != nil {
		t.Fatal(err)
	}
	if back[2] != -2 || back[3] != 3 {
		t.Fatalf("unpack %v", back)
	}
}

func TestUnpackFastPathTruncates(t *testing.T) {
	wire, err := Pack(nil, []float64{1, 2, 3, 4}, 0, 4, BasicType(F64))
	if err != nil {
		t.Fatal(err)
	}
	short := make([]float64, 2)
	n, err := Unpack(wire, short, 0, 2, BasicType(F64))
	if err != ErrTruncate {
		t.Fatalf("error %v, want ErrTruncate", err)
	}
	if n != 2 || short[0] != 1 || short[1] != 2 {
		t.Fatalf("deposited %d: %v", n, short)
	}
}

func TestByteViewRange(t *testing.T) {
	f := []float64{0, 1, 2, 3}
	bv, ok := ByteViewRange(f, 1, 2)
	if hostLE {
		if !ok || len(bv) != 16 {
			t.Fatalf("byte view ok=%v len=%d", ok, len(bv))
		}
		// Aliasing: mutate through the view.
		for i := range bv {
			bv[i] = 0
		}
		if f[1] != 0 || f[2] != 0 || f[3] != 3 {
			t.Fatalf("view not aliased: %v", f)
		}
	} else if ok {
		t.Fatal("byte view must be disabled on big-endian hosts")
	}
	// bool is excluded (wire 0/1 is normative).
	if _, ok := ByteViewRange([]bool{true}, 0, 1); ok {
		t.Fatal("bool must not expose a byte view")
	}
	// Zero-length window at the end of the slice must not panic.
	if bv, ok := ByteViewRange(f, 4, 0); !ok || len(bv) != 0 {
		t.Fatal("empty window must succeed")
	}
	// Named primitives get views too.
	if bv, ok := ByteViewRange([]seq{256}, 0, 1); hostLE && (!ok || len(bv) != 2 || bv[1] != 1) {
		t.Fatalf("named int16 view ok=%v bv=%x", ok, bv)
	}
}

func TestCheckBufNamedPrimitive(t *testing.T) {
	n, err := CheckBuf([]celsius{1, 2}, BasicType(F64))
	if err != nil || n != 2 {
		t.Fatalf("CheckBuf named: n=%d err=%v", n, err)
	}
	if _, err := CheckBuf([]celsius{}, BasicType(I32)); err == nil {
		t.Fatal("class mismatch must still be caught through the view")
	}
	if c, ok := ClassOf([]seq{}); !ok || c != I16 {
		t.Fatalf("ClassOf named int16 = %v, %v", c, ok)
	}
}
