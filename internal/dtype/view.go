package dtype

import (
	"reflect"
	"sync"
	"unsafe"
)

// Slice-reinterpretation fast paths. Two independent tricks live here:
//
//   - NativeView reinterprets a slice of a *named* primitive type
//     ([]Celsius where `type Celsius float64`) as its native class slice
//     ([]float64). The memory layout of a defined type is identical to
//     its underlying type, so this is a pure header rewrite — valid on
//     every architecture — and it keeps named primitives on their
//     class's wire format instead of falling into OBJECT/gob.
//
//   - byteView reinterprets a native element slice as raw bytes. The
//     wire format is little-endian, so on little-endian hosts packing a
//     contiguous section degenerates to one memcpy (and unpacking to
//     the inverse). Gated on hostLE; big-endian hosts keep the portable
//     per-element encode loop.

// hostLE reports whether the host stores integers little-endian, i.e.
// whether in-memory representation equals the wire encoding.
var hostLE = func() bool {
	x := uint16(0x1122)
	return *(*byte)(unsafe.Pointer(&x)) == 0x22
}()

// kindClasses maps primitive reflect kinds onto engine storage classes.
// Only kinds with an exact wire class qualify; int/uint (platform-sized)
// and the unsigned fixed widths beyond uint8 have no class and stay on
// the OBJECT path.
var kindClasses = map[reflect.Kind]Class{
	reflect.Uint8:   U8,
	reflect.Bool:    Bool,
	reflect.Int16:   I16,
	reflect.Int32:   I32,
	reflect.Int64:   I64,
	reflect.Float32: F32,
	reflect.Float64: F64,
}

// ReinterpClass reports the storage class a defined (named) primitive
// element type reinterprets to, and whether it qualifies.
func ReinterpClass(rt reflect.Type) (Class, bool) {
	c, ok := kindClasses[rt.Kind()]
	return c, ok
}

// viewCache memoizes per concrete slice type whether and how NativeView
// reinterprets it, so the reflect walk runs once per type.
var viewCache sync.Map // reflect.Type -> func(any) any (nil entry: no view)

// NativeView returns buf reinterpreted as its native class slice when
// buf is a slice of a named primitive type ([]Celsius -> []float64,
// sharing storage), and buf unchanged otherwise. The second result
// reports whether a reinterpretation happened.
func NativeView(buf any) (any, bool) {
	switch buf.(type) {
	case nil, []byte, []bool, []int16, []int32, []int64, []float32, []float64, []any:
		return buf, false
	}
	rt := reflect.TypeOf(buf)
	if fn, ok := viewCache.Load(rt); ok {
		if fn == nil {
			return buf, false
		}
		return fn.(func(any) any)(buf), true
	}
	fn := makeView(rt)
	if fn == nil {
		viewCache.Store(rt, nil)
		return buf, false
	}
	viewCache.Store(rt, fn)
	return fn(buf), true
}

// makeView builds the reinterpreting converter for a named-primitive
// slice type, or returns nil when rt does not qualify.
func makeView(rt reflect.Type) func(any) any {
	if rt.Kind() != reflect.Slice {
		return nil
	}
	c, ok := kindClasses[rt.Elem().Kind()]
	if !ok {
		return nil
	}
	switch c {
	case U8:
		return func(buf any) any { return viewAs[byte](buf) }
	case Bool:
		return func(buf any) any { return viewAs[bool](buf) }
	case I16:
		return func(buf any) any { return viewAs[int16](buf) }
	case I32:
		return func(buf any) any { return viewAs[int32](buf) }
	case I64:
		return func(buf any) any { return viewAs[int64](buf) }
	case F32:
		return func(buf any) any { return viewAs[float32](buf) }
	case F64:
		return func(buf any) any { return viewAs[float64](buf) }
	}
	return nil
}

// viewAs rewrites the slice header of buf (a slice whose element type
// has E's size and representation) to []E sharing the same storage.
func viewAs[E any](buf any) any {
	v := reflect.ValueOf(buf)
	n := v.Len()
	if n == 0 {
		return []E(nil)
	}
	return unsafe.Slice((*E)(v.UnsafePointer()), v.Cap())[:n]
}

// byteView returns the raw bytes of the native slice section
// s[off:off+n] for a fixed-wire-size element class. ok is false for
// class Obj, for bool (whose wire encoding is normative 0/1 and must
// not trust foreign memory), and for buffer types the type switch does
// not know. Caller guarantees off/n are in bounds and the host is
// little-endian.
func byteView(buf any, off, n int) ([]byte, bool) {
	if n == 0 {
		return nil, true
	}
	switch s := buf.(type) {
	case []byte:
		return s[off : off+n], true
	case []int16:
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[off])), n*2), true
	case []int32:
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[off])), n*4), true
	case []int64:
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[off])), n*8), true
	case []float32:
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[off])), n*4), true
	case []float64:
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[off])), n*8), true
	}
	return nil, false
}

// ByteViewRange exposes the raw little-endian bytes of a contiguous
// section of a native (or named-primitive) element slice: the window
// [off, off+n) in elements. It returns ok == false when the fast path
// does not apply (big-endian host, Obj or bool class, or a non-native
// buffer type) — callers must then use Pack/Unpack. The returned slice
// aliases buf's storage.
func ByteViewRange(buf any, off, n int) ([]byte, bool) {
	if !hostLE {
		return nil, false
	}
	nv, _ := NativeView(buf)
	return byteView(nv, off, n)
}
