package dtype

import (
	"reflect"
	"sync"
)

// Datatype inference — the registry underneath mpi/typed's TypeOf[T].
// A Go element type maps onto the engine in one of two ways:
//
//   - the seven native buffer element types (byte, bool, int16, int32,
//     int64, float32, float64 — rune and uint8 being aliases) map to
//     their storage class directly: a slice of such a type IS one of the
//     engine's buffer types and travels zero-copy through Pack/Unpack;
//   - every other type (structs, named primitives, pointers, maps, …)
//     maps to the Obj class and travels gob-encoded in []any buffers,
//     exactly like the paper's MPI.OBJECT extension (§2.2).
//
// The mapping is computed once per reflect.Type and cached; Obj-class
// types are gob-registered on first inference so callers never need the
// explicit Register step the classic API requires.

// Inferred describes how a Go element type maps onto the engine.
type Inferred struct {
	// Class is the storage class buffers of the type travel as.
	Class Class
	// Direct reports that a slice of the type is a native buffer type
	// ([]byte, []int32, …) and may be handed to Pack/Unpack as-is.
	Direct bool
	// Reinterp reports a named primitive type (`type Celsius float64`):
	// a slice of it shares its underlying type's memory layout and is
	// reinterpreted in place (NativeView) to stay on the class's wire
	// format instead of OBJECT/gob. Types that are neither Direct nor
	// Reinterp must be boxed into []any (Obj class).
	Reinterp bool
}

var inferCache sync.Map // reflect.Type -> Inferred

// directClasses keys the native element types by their reflect.Type.
var directClasses = map[reflect.Type]Class{
	reflect.TypeOf(byte(0)):    U8,
	reflect.TypeOf(false):      Bool,
	reflect.TypeOf(int16(0)):   I16,
	reflect.TypeOf(int32(0)):   I32,
	reflect.TypeOf(int64(0)):   I64,
	reflect.TypeOf(float32(0)): F32,
	reflect.TypeOf(float64(0)): F64,
}

// Infer maps a Go element type to its storage class, caching the result.
// Obj-class concrete types are registered for gob serialization as a
// side effect, so inferred object buffers round-trip without an explicit
// Register call.
func Infer(rt reflect.Type) Inferred {
	if v, ok := inferCache.Load(rt); ok {
		return v.(Inferred)
	}
	inf := inferOne(rt)
	if !inf.Direct && !inf.Reinterp {
		if seed, ok := gobSeed(rt); ok {
			safeRegister(seed)
		}
	}
	inferCache.Store(rt, inf)
	return inf
}

// safeRegister absorbs gob's registration panics (two distinct types
// sharing one pkg.name, e.g. same-named local types): the colliding type
// stays unregistered and the failure surfaces as an encode error on the
// first send instead of crashing the process.
func safeRegister(seed any) {
	defer func() { _ = recover() }()
	Register(seed)
}

func inferOne(rt reflect.Type) Inferred {
	if rt.Kind() == reflect.Interface && rt.NumMethod() == 0 {
		// []any is the classic OBJECT buffer type: Obj class, no boxing.
		return Inferred{Class: Obj, Direct: true}
	}
	if c, ok := directClasses[rt]; ok {
		return Inferred{Class: c, Direct: true}
	}
	if c, ok := ReinterpClass(rt); ok {
		// Named primitive: identical memory layout to its underlying
		// type, so buffers reinterpret in place and stay on the
		// class's wire format (no gob).
		return Inferred{Class: c, Reinterp: true}
	}
	return Inferred{Class: Obj, Direct: false}
}

// gobSeed builds the zero value to gob-register for an Obj-routed type.
// gob flattens pointers to their base type, so registration follows
// pointers first; types gob cannot register at all (channels, funcs) are
// skipped and fail cleanly at pack time instead.
func gobSeed(rt reflect.Type) (any, bool) {
	for rt.Kind() == reflect.Pointer {
		rt = rt.Elem()
	}
	switch rt.Kind() {
	case reflect.Chan, reflect.Func, reflect.UnsafePointer, reflect.Interface:
		return nil, false
	}
	return reflect.New(rt).Elem().Interface(), true
}
