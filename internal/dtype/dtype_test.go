package dtype

import (
	"testing"
)

func TestClassWireSize(t *testing.T) {
	cases := map[Class]int{
		U8: 1, Bool: 1, I16: 2, I32: 4, I64: 8, F32: 4, F64: 8, Obj: 0,
	}
	for c, want := range cases {
		if got := c.WireSize(); got != want {
			t.Errorf("%s.WireSize() = %d, want %d", c, got, want)
		}
	}
}

func TestBasicType(t *testing.T) {
	b := Basic(I32, "INT")
	if b.Size() != 1 || b.Extent() != 1 || b.Lb() != 0 || b.Ub() != 1 {
		t.Fatalf("basic type geometry wrong: %v", b)
	}
	if !b.Committed() {
		t.Fatal("basic types must be committed")
	}
}

func TestContiguous(t *testing.T) {
	c, err := Contiguous(5, Basic(F64, "DOUBLE"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 5 || c.Extent() != 5 {
		t.Fatalf("contiguous(5): size=%d extent=%d", c.Size(), c.Extent())
	}
	if len(c.runs) != 1 || c.runs[0].n != 5 {
		t.Fatalf("contiguous should collapse to one run, got %v", c.runs)
	}
	if _, err := Contiguous(-1, Basic(F64, "D")); err == nil {
		t.Fatal("negative count must error")
	}
	empty, err := Contiguous(0, Basic(F64, "D"))
	if err != nil {
		t.Fatal(err)
	}
	if empty.Size() != 0 || empty.Extent() != 0 {
		t.Fatalf("empty contiguous: size=%d extent=%d", empty.Size(), empty.Extent())
	}
}

func TestVectorGeometry(t *testing.T) {
	v, err := Vector(3, 2, 4, Basic(I32, "INT"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 6 {
		t.Errorf("size = %d, want 6", v.Size())
	}
	// Blocks at 0,4,8, two elements each -> ub = 10.
	if v.Extent() != 10 {
		t.Errorf("extent = %d, want 10", v.Extent())
	}
	wantDisps := []int{0, 1, 4, 5, 8, 9}
	for i, d := range v.disps {
		if d != wantDisps[i] {
			t.Fatalf("disps = %v, want %v", v.disps, wantDisps)
		}
	}
}

func TestVectorOverNonUnitExtent(t *testing.T) {
	inner, err := Vector(2, 1, 3, Basic(I32, "INT")) // disps {0,3}, extent 4
	if err != nil {
		t.Fatal(err)
	}
	outer, err := Vector(2, 1, 2, inner) // stride 2 * extent 4 = 8 elements
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3, 8, 11}
	if len(outer.disps) != len(want) {
		t.Fatalf("disps = %v, want %v", outer.disps, want)
	}
	for i := range want {
		if outer.disps[i] != want[i] {
			t.Fatalf("disps = %v, want %v", outer.disps, want)
		}
	}
}

func TestHvectorStrideInElements(t *testing.T) {
	h, err := Hvector(2, 2, 5, Basic(I16, "SHORT"))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 5, 6}
	for i := range want {
		if h.disps[i] != want[i] {
			t.Fatalf("disps = %v, want %v", h.disps, want)
		}
	}
}

func TestIndexed(t *testing.T) {
	ix, err := Indexed([]int{2, 1}, []int{0, 5}, Basic(U8, "BYTE"))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 5}
	for i := range want {
		if ix.disps[i] != want[i] {
			t.Fatalf("disps = %v, want %v", ix.disps, want)
		}
	}
	if _, err := Indexed([]int{1}, []int{0, 1}, Basic(U8, "B")); err == nil {
		t.Fatal("mismatched lengths must error")
	}
	if _, err := Indexed([]int{-2}, []int{0}, Basic(U8, "B")); err == nil {
		t.Fatal("negative blocklen must error")
	}
}

func TestStructSameBaseRestriction(t *testing.T) {
	i32 := Basic(I32, "INT")
	f64 := Basic(F64, "DOUBLE")
	if _, err := Struct([]int{1, 1}, []int{0, 1}, []*Type{i32, f64}); err != ErrStructBase {
		t.Fatalf("mixed-base struct: got %v, want ErrStructBase", err)
	}
	s, err := Struct([]int{2, 1}, []int{0, 3}, []*Type{i32, i32})
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 3 || s.Extent() != 4 {
		t.Fatalf("struct geometry: size=%d extent=%d", s.Size(), s.Extent())
	}
}

func TestStructMarkers(t *testing.T) {
	i32 := Basic(I32, "INT")
	lb := Marker(true, "LB")
	ub := Marker(false, "UB")
	s, err := Struct([]int{1, 1, 1}, []int{-2, 0, 7}, []*Type{lb, i32, ub})
	if err != nil {
		t.Fatal(err)
	}
	if s.Lb() != -2 || s.Ub() != 7 || s.Extent() != 9 {
		t.Fatalf("marker bounds: lb=%d ub=%d extent=%d", s.Lb(), s.Ub(), s.Extent())
	}
	if s.Size() != 1 {
		t.Fatalf("markers must not contribute elements: size=%d", s.Size())
	}
}

func TestCommitRequired(t *testing.T) {
	v, err := Vector(2, 1, 2, Basic(I32, "INT"))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int32, 10)
	if _, err := Pack(nil, buf, 0, 1, v); err != ErrUncommitted {
		t.Fatalf("uncommitted pack: got %v", err)
	}
	v.Commit()
	if _, err := Pack(nil, buf, 0, 1, v); err != nil {
		t.Fatalf("committed pack: %v", err)
	}
}

func TestPairTypes(t *testing.T) {
	p := Pair(F32, "FLOAT2")
	if !p.IsPair() || p.Size() != 2 || p.Extent() != 2 {
		t.Fatalf("pair geometry: %v", p)
	}
}
