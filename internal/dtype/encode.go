package dtype

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncate reports that an incoming message held more elements than the
// receive buffer section could accept (MPI_ERR_TRUNCATE). The buffer is
// filled to capacity; the remainder is discarded.
var ErrTruncate = errors.New("dtype: message truncated on receive")

// ErrFormat reports a malformed wire payload.
var ErrFormat = errors.New("dtype: malformed wire payload")

// CheckBuf verifies that buf is a slice whose element type matches the
// datatype's storage class and returns its length. Named-primitive
// slices ([]Celsius) count as their underlying class.
func CheckBuf(buf any, t *Type) (int, error) {
	buf, _ = NativeView(buf)
	n, c, ok := sliceInfo(buf)
	if !ok {
		return 0, fmt.Errorf("%w: got %T", ErrClassMismatch, buf)
	}
	if c != t.class {
		return 0, fmt.Errorf("%w: buffer %T vs datatype %s", ErrClassMismatch, buf, t)
	}
	return n, nil
}

func sliceInfo(buf any) (n int, c Class, ok bool) {
	switch s := buf.(type) {
	case []byte:
		return len(s), U8, true
	case []bool:
		return len(s), Bool, true
	case []int16:
		return len(s), I16, true
	case []int32:
		return len(s), I32, true
	case []int64:
		return len(s), I64, true
	case []float32:
		return len(s), F32, true
	case []float64:
		return len(s), F64, true
	case []any:
		return len(s), Obj, true
	}
	return 0, 0, false
}

// ClassOf reports the storage class of a buffer value. Named-primitive
// slices report their underlying class.
func ClassOf(buf any) (Class, bool) {
	buf, _ = NativeView(buf)
	_, c, ok := sliceInfo(buf)
	return c, ok
}

// checkBounds verifies every element access offset+i*extent+d stays in
// [0, bufLen).
func (t *Type) checkBounds(bufLen, offset, count int) error {
	if count < 0 || offset < 0 {
		return ErrNegative
	}
	if count == 0 || len(t.disps) == 0 {
		return nil
	}
	minD, maxD := t.disps[0], t.disps[0]
	for _, d := range t.disps {
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	ext := t.Extent()
	lo := offset + minD
	hi := offset + maxD
	last := (count - 1) * ext
	if last < 0 {
		lo += last
	} else {
		hi += last
	}
	if lo < 0 || hi >= bufLen {
		return fmt.Errorf("%w: accesses [%d,%d] of buffer len %d", ErrBounds, lo, hi, bufLen)
	}
	return nil
}

// Pack appends to dst the wire encoding of count items of type t taken
// from buf starting at element offset, and returns the extended slice.
// On little-endian hosts a contiguous section of a fixed-size class
// packs as a single memcpy.
func Pack(dst []byte, buf any, offset, count int, t *Type) ([]byte, error) {
	if !t.committed {
		return dst, ErrUncommitted
	}
	buf, _ = NativeView(buf)
	n, err := CheckBuf(buf, t)
	if err != nil {
		return dst, err
	}
	if err := t.checkBounds(n, offset, count); err != nil {
		return dst, err
	}
	if t.class == Obj {
		return packObjects(dst, buf.([]any), offset, count, t)
	}
	if hostLE && t.contig {
		if bv, ok := byteView(buf, offset, count*len(t.disps)); ok {
			return append(dst, bv...), nil
		}
	}
	items, ext, runs := t.iterShape(count)
	if es := t.class.WireSize(); cap(dst)-len(dst) < count*len(t.disps)*es {
		grown := make([]byte, len(dst), len(dst)+count*len(t.disps)*es)
		copy(grown, dst)
		dst = grown
	}
	switch s := buf.(type) {
	case []byte:
		for i := 0; i < items; i++ {
			base := offset + i*ext
			for _, r := range runs {
				dst = append(dst, s[base+r.off:base+r.off+r.n]...)
			}
		}
	case []bool:
		for i := 0; i < items; i++ {
			base := offset + i*ext
			for _, r := range runs {
				for _, v := range s[base+r.off : base+r.off+r.n] {
					if v {
						dst = append(dst, 1)
					} else {
						dst = append(dst, 0)
					}
				}
			}
		}
	case []int16:
		for i := 0; i < items; i++ {
			base := offset + i*ext
			for _, r := range runs {
				for _, v := range s[base+r.off : base+r.off+r.n] {
					dst = binary.LittleEndian.AppendUint16(dst, uint16(v))
				}
			}
		}
	case []int32:
		for i := 0; i < items; i++ {
			base := offset + i*ext
			for _, r := range runs {
				for _, v := range s[base+r.off : base+r.off+r.n] {
					dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
				}
			}
		}
	case []int64:
		for i := 0; i < items; i++ {
			base := offset + i*ext
			for _, r := range runs {
				for _, v := range s[base+r.off : base+r.off+r.n] {
					dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
				}
			}
		}
	case []float32:
		for i := 0; i < items; i++ {
			base := offset + i*ext
			for _, r := range runs {
				for _, v := range s[base+r.off : base+r.off+r.n] {
					dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
				}
			}
		}
	case []float64:
		for i := 0; i < items; i++ {
			base := offset + i*ext
			for _, r := range runs {
				for _, v := range s[base+r.off : base+r.off+r.n] {
					dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
				}
			}
		}
	}
	return dst, nil
}

// Unpack decodes data into count items of type t in buf starting at
// element offset. It returns the number of basic elements deposited.
// If data holds more elements than the buffer section accepts, the section
// is filled and ErrTruncate is returned alongside the deposited count.
func Unpack(data []byte, buf any, offset, count int, t *Type) (int, error) {
	if !t.committed {
		return 0, ErrUncommitted
	}
	buf, _ = NativeView(buf)
	n, err := CheckBuf(buf, t)
	if err != nil {
		return 0, err
	}
	if err := t.checkBounds(n, offset, count); err != nil {
		return 0, err
	}
	if t.class == Obj {
		return unpackObjects(data, buf.([]any), offset, count, t)
	}
	es := t.class.WireSize()
	if len(data)%es != 0 {
		return 0, fmt.Errorf("%w: %d bytes not a multiple of element size %d", ErrFormat, len(data), es)
	}
	avail := len(data) / es
	capacity := count * len(t.disps)
	todo := avail
	if todo > capacity {
		todo = capacity
	}
	if hostLE && t.contig {
		// Contiguous fixed-size section: deposit as one memcpy.
		if bv, ok := byteView(buf, offset, todo); ok {
			copy(bv, data)
			if avail > capacity {
				return todo, ErrTruncate
			}
			return todo, nil
		}
	}
	items, ext, runs := t.iterShape(count)
	done := 0
	pos := 0
	// Hoist the buffer type switch out of the element loops; each class
	// arm walks items × runs depositing up to todo elements.
	switch s := buf.(type) {
	case []byte:
	byteLoop:
		for i := 0; i < items; i++ {
			base := offset + i*ext
			for _, r := range runs {
				n := r.n
				if done+n > todo {
					n = todo - done
				}
				copy(s[base+r.off:base+r.off+n], data[pos:pos+n])
				pos += n
				done += n
				if done == todo {
					break byteLoop
				}
			}
		}
	case []bool:
	boolLoop:
		for i := 0; i < items; i++ {
			base := offset + i*ext
			for _, r := range runs {
				for k := 0; k < r.n; k++ {
					if done == todo {
						break boolLoop
					}
					s[base+r.off+k] = data[pos] != 0
					pos++
					done++
				}
			}
		}
	case []int16:
	i16Loop:
		for i := 0; i < items; i++ {
			base := offset + i*ext
			for _, r := range runs {
				for k := 0; k < r.n; k++ {
					if done == todo {
						break i16Loop
					}
					s[base+r.off+k] = int16(binary.LittleEndian.Uint16(data[pos:]))
					pos += 2
					done++
				}
			}
		}
	case []int32:
	i32Loop:
		for i := 0; i < items; i++ {
			base := offset + i*ext
			for _, r := range runs {
				for k := 0; k < r.n; k++ {
					if done == todo {
						break i32Loop
					}
					s[base+r.off+k] = int32(binary.LittleEndian.Uint32(data[pos:]))
					pos += 4
					done++
				}
			}
		}
	case []int64:
	i64Loop:
		for i := 0; i < items; i++ {
			base := offset + i*ext
			for _, r := range runs {
				for k := 0; k < r.n; k++ {
					if done == todo {
						break i64Loop
					}
					s[base+r.off+k] = int64(binary.LittleEndian.Uint64(data[pos:]))
					pos += 8
					done++
				}
			}
		}
	case []float32:
	f32Loop:
		for i := 0; i < items; i++ {
			base := offset + i*ext
			for _, r := range runs {
				for k := 0; k < r.n; k++ {
					if done == todo {
						break f32Loop
					}
					s[base+r.off+k] = math.Float32frombits(binary.LittleEndian.Uint32(data[pos:]))
					pos += 4
					done++
				}
			}
		}
	case []float64:
	f64Loop:
		for i := 0; i < items; i++ {
			base := offset + i*ext
			for _, r := range runs {
				for k := 0; k < r.n; k++ {
					if done == todo {
						break f64Loop
					}
					s[base+r.off+k] = math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
					pos += 8
					done++
				}
			}
		}
	}
	if avail > capacity {
		return done, ErrTruncate
	}
	return done, nil
}

// Elements returns how many basic elements of class c a payload of
// byteLen bytes holds, or -1 if indeterminate (Obj class or misaligned).
func Elements(byteLen int, c Class) int {
	es := c.WireSize()
	if es == 0 || byteLen%es != 0 {
		return -1
	}
	return byteLen / es
}

// MakeDense allocates a dense slice of n elements of class c.
func MakeDense(c Class, n int) any {
	switch c {
	case U8:
		return make([]byte, n)
	case Bool:
		return make([]bool, n)
	case I16:
		return make([]int16, n)
	case I32:
		return make([]int32, n)
	case I64:
		return make([]int64, n)
	case F32:
		return make([]float32, n)
	case F64:
		return make([]float64, n)
	case Obj:
		return make([]any, n)
	}
	return nil
}

// DenseLen returns the length of a dense slice.
func DenseLen(dense any) int {
	n, _, _ := sliceInfo(dense)
	return n
}

// basicOf caches one anonymous basic Type per class for dense codecs.
var basicOf = func() [numClasses]*Type {
	var a [numClasses]*Type
	for c := Class(0); c < numClasses; c++ {
		a[c] = Basic(c, "dense:"+c.String())
	}
	return a
}()

// BasicType returns the cached basic datatype for a storage class
// (used internally for dense transfers).
func BasicType(c Class) *Type { return basicOf[c] }

// EncodeDense encodes an entire dense slice to wire bytes.
func EncodeDense(dense any) ([]byte, error) {
	n, c, ok := sliceInfo(dense)
	if !ok {
		return nil, fmt.Errorf("%w: got %T", ErrClassMismatch, dense)
	}
	return Pack(nil, dense, 0, n, basicOf[c])
}

// DecodeDense decodes wire bytes into a fresh dense slice of class c.
// For Obj the object count is taken from the payload header.
func DecodeDense(data []byte, c Class) (any, error) {
	if c == Obj {
		cnt, err := objectCount(data)
		if err != nil {
			return nil, err
		}
		dense := make([]any, cnt)
		if _, err := Unpack(data, dense, 0, cnt, basicOf[Obj]); err != nil {
			return nil, err
		}
		return dense, nil
	}
	n := Elements(len(data), c)
	if n < 0 {
		return nil, ErrFormat
	}
	dense := MakeDense(c, n)
	if _, err := Unpack(data, dense, 0, n, basicOf[c]); err != nil {
		return nil, err
	}
	return dense, nil
}

// Extract gathers count items of t from buf/offset into a fresh dense
// slice of t's class (used by the reduction collectives).
func Extract(buf any, offset, count int, t *Type) (any, error) {
	wire, err := Pack(nil, buf, offset, count, t)
	if err != nil {
		return nil, err
	}
	return DecodeDense(wire, t.class)
}

// Deposit scatters a dense slice back through t's typemap into
// buf/offset (inverse of Extract).
func Deposit(dense any, buf any, offset, count int, t *Type) error {
	wire, err := EncodeDense(dense)
	if err != nil {
		return err
	}
	_, err = Unpack(wire, buf, offset, count, t)
	return err
}
