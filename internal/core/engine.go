package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"gompi/internal/obs"
	"gompi/internal/transport"
)

// DefaultEagerLimit is the payload size, in bytes, at or below which a
// standard-mode message is shipped eagerly; larger messages use the
// RTS/CTS rendezvous protocol. MPICH-era implementations sit in the same
// range; the ablation bench sweeps this knob.
const DefaultEagerLimit = 64 << 10

// ErrTruncated reports that a receive-into buffer was smaller than the
// incoming message (MPI_ERR_TRUNCATE semantics): the buffer is filled to
// capacity and the remainder of the message is discarded.
var ErrTruncated = errors.New("core: receive buffer too small, message truncated")

// ErrCommRevoked is the completion error of operations poisoned by a
// communicator revocation (MPI_ERR_REVOKED semantics): once any member
// revokes a context pair, every in-flight and future operation on it —
// except recovery-tagged agreement traffic — fails with this error on
// every member the revocation reaches.
var ErrCommRevoked = errors.New("core: communicator revoked")

// RecoveryTag is the tag bit reserved for communicator-repair traffic
// (the fault-tolerant agreement under Shrink). Operations whose tag
// carries it keep working on a revoked context: revocation must not
// poison the very protocol that repairs the communicator. User tags are
// capped below this bit and collective tags occupy the bits beneath it,
// so no ordinary operation can claim the exemption.
const RecoveryTag int32 = 1 << 30

// isRecoveryTag reports whether t carries the repair exemption. Wildcard
// tags are negative, so the bit test alone would misread them.
func isRecoveryTag(t int32) bool { return t >= 0 && t&RecoveryTag != 0 }

// Config tunes a Proc.
type Config struct {
	// EagerLimit is the eager/rendezvous switch-over in payload bytes;
	// 0 selects DefaultEagerLimit, negative forces all-rendezvous.
	EagerLimit int
	// Recorder, when non-nil, receives this rank's trace events. A nil
	// recorder disables tracing at the cost of one branch per
	// instrumentation point.
	Recorder *obs.Recorder
}

func (c Config) eagerLimit() int {
	switch {
	case c.EagerLimit == 0:
		return DefaultEagerLimit
	case c.EagerLimit < 0:
		return -1
	default:
		return c.EagerLimit
	}
}

// inMsg is an arrived, not-yet-matched message (the unexpected queue
// entry): either a complete eager message or an RTS advertisement. The
// entry owns the transport frame backing payload until a receive matches
// it and takes the frame over.
type inMsg struct {
	kind    byte
	env     envelope
	id      uint64
	size    int // advertised payload size for kRts
	payload []byte
	frame   transport.Frame
}

// outFrame is a frame produced by the matching engine to be sent after
// the engine lock is released (sending under the lock can deadlock with
// the peer's flow control; see the ordering argument in DESIGN.md). hdr
// is pool-born; payload (rendezvous DATA only) is shipped by reference.
type outFrame struct {
	dst     int32
	hdr     []byte
	payload []byte
	recycle bool
}

// Proc is one rank's progress engine. All methods are safe for
// concurrent use by the rank's user goroutine and its progress goroutine.
type Proc struct {
	dev transport.Device
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond
	posted   []*Request // posted receives, post order
	arrived  []*inMsg   // unexpected messages, arrival order
	sent     map[uint64]*Request
	recving  map[uint64]*Request
	peerDown map[int]error // world rank -> loss report, once per peer
	// groups maps a registered context to its group-rank→world-rank
	// table, letting failPeer and the fail-fast paths attribute peer
	// death on derived communicators, not just COMM_WORLD.
	groups map[int32][]int
	// revoked maps a context to its revocation error once any member
	// revoked the owning communicator.
	revoked map[int32]error
	nextID  uint64
	nextCtx int32
	closed  bool
	// fatal is the terminal device error that killed this endpoint
	// (failAll); operations posted after death fail fast with it.
	fatal error

	stats Stats
	// reg is the rank's pvar/cvar registry; stats is a typed view over
	// it and layers above hang their own variables off it.
	reg *obs.Registry
	// rec is the rank's flight recorder (nil = tracing disabled).
	rec *obs.Recorder
	// eagerLim is the live eager/rendezvous threshold; a writable
	// control variable ("core.eager_limit"), hence atomic rather than a
	// Config read. Negative forces all-rendezvous.
	eagerLim atomic.Int64
	// unexpDepth mirrors len(arrived) for the registry
	// ("core.unexpected_depth"): current and peak unexpected-queue
	// occupancy without taking the engine lock to read.
	unexpDepth *obs.Gauge

	wg sync.WaitGroup
	// inflightN counts control frames (CTS/ACK/DATA) sent
	// asynchronously from the progress loop; Close drains them (under
	// mu, woken through cond) before closing the device so no frame is
	// dropped at shutdown. A plain counter rather than a WaitGroup:
	// late frames (revocation floods, failure notices) can start a
	// send while Close is already draining, which WaitGroup's
	// Add-during-Wait rule forbids.
	inflightN int
}

// NewProc wraps a device with a progress engine and starts its progress
// goroutine.
func NewProc(dev transport.Device, cfg Config) *Proc {
	p := &Proc{
		dev:     dev,
		cfg:     cfg,
		reg:     obs.NewRegistry(),
		rec:     cfg.Recorder,
		sent:    make(map[uint64]*Request),
		recving: make(map[uint64]*Request),
		nextCtx: 2, // 0 and 1 belong to COMM_WORLD
	}
	p.cond = sync.NewCond(&p.mu)
	p.stats = newStats(p.reg)
	p.unexpDepth = p.reg.Gauge("core.unexpected_depth")
	p.eagerLim.Store(int64(cfg.eagerLimit()))
	p.reg.RegisterControl(obs.Control{
		Name: "core.eager_limit",
		Desc: "eager/rendezvous switch-over in payload bytes (negative forces rendezvous)",
		Get:  func() int64 { return p.eagerLim.Load() },
		Set:  func(v int64) error { p.eagerLim.Store(v); return nil },
	})
	p.wg.Add(1)
	go p.progress()
	return p
}

// Rank returns the world rank.
func (p *Proc) Rank() int { return p.dev.Rank() }

// Size returns the world size.
func (p *Proc) Size() int { return p.dev.Size() }

// EagerLimit reports the live eager/rendezvous threshold (the
// "core.eager_limit" control variable).
func (p *Proc) EagerLimit() int { return int(p.eagerLim.Load()) }

// Close shuts the engine down: the device is closed and the progress
// goroutine joined. Outstanding requests never complete after Close; the
// binding layer runs a barrier first so correct programs are quiescent.
// Frames already queued unexpected stay readable — a receive posted
// after Close still matches and consumes them.
func (p *Proc) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.cond.Broadcast()
	// Let asynchronously-sent control frames reach their destination
	// inboxes first: a barrier completing on this rank may still owe a
	// peer its rendezvous payload.
	for p.inflightN > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
	err := p.dev.Close()
	p.wg.Wait()
	return err
}

// progress pumps the device, feeding every frame through the matching
// engine and transmitting any frames the engine produces in response.
func (p *Proc) progress() {
	defer p.wg.Done()
	for {
		raw, err := p.dev.Recv()
		if err != nil {
			// A single lost peer is not a device failure: fail the
			// operations pinned to that peer (MPI_ERR_PROC_FAILED
			// semantics) and keep serving everyone else. This is what
			// lets surviving ranks drain a barrier while an already
			// finalized peer's exit is being noticed.
			var pl *transport.PeerLostError
			if errors.As(err, &pl) {
				p.failPeer(pl)
				continue
			}
			// Terminal device error: the fabric under this rank is gone
			// (Close, or a fault-injected death of our own endpoint).
			// Complete everything pending with the error so goroutines
			// blocked in Wait unblock instead of hanging on a rank that
			// can no longer make progress.
			p.failAll(err)
			return
		}
		f, err := parseFrame(raw)
		if err != nil {
			// A malformed frame indicates a wire-level bug, not a
			// user error; drop it loudly in debug builds.
			f.frame.Release()
			continue
		}
		outs, after := p.handle(f)
		// Control frames (CTS/ACK/DATA) are keyed by unique ids and
		// order-insensitive, so they are sent asynchronously: a
		// blocking send here could form a progress↔progress
		// flow-control cycle between two ranks flooding each other.
		// Matching-relevant frames (eager, RTS) are only ever sent
		// from user goroutines, preserving MPI's non-overtaking rule.
		p.sendAsync(outs)
		// The rendezvous payload has been handed to the device (and,
		// over shm, to the receiver) by the Sendv above; the send
		// request completes now.
		for _, c := range after {
			p.complete(c.req, nil, c.st)
		}
	}
}

type lateComplete struct {
	req *Request
	st  Status
}

// failPeer records that world rank pl.Peer is gone and completes, with
// the loss as the status error, every operation only that peer could
// satisfy: posted receives pinned to it (world contexts map group ranks
// directly; derived communicators resolve through their registered
// group tables), rendezvous sends awaiting its CTS/ACK, and granted
// receives awaiting its DATA. Later sends to the peer fail fast in
// Isend. Reported once per peer.
func (p *Proc) failPeer(pl *transport.PeerLostError) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.peerDown[pl.Peer]; dup {
		return
	}
	if p.peerDown == nil {
		p.peerDown = make(map[int]error)
	}
	p.peerDown[pl.Peer] = pl
	p.stats.PeersLost.Add(1)
	p.rec.Instant(obs.EvPeerLost, uint32(pl.Peer), 0)
	peer := pl.Peer

	kept := p.posted[:0]
	for _, r := range p.posted {
		if r.src != AnySource && p.worldOfLocked(r.ctx, r.src) == peer {
			p.completeLocked(r, nil, Status{SourceGroup: int(r.src), Tag: int(r.tag), Err: pl})
			continue
		}
		kept = append(kept, r)
	}
	for i := len(kept); i < len(p.posted); i++ {
		p.posted[i] = nil
	}
	p.posted = kept

	for id, r := range p.sent {
		if int(r.dstWorld) != peer {
			continue
		}
		delete(p.sent, id)
		if r.data != nil && r.recycle {
			transport.PutBuf(r.data)
		}
		r.data = nil
		p.completeLocked(r, nil, Status{Bytes: r.size, Err: pl})
	}
	for id, r := range p.recving {
		if p.worldOfLocked(r.ctx, int32(r.Stat.SourceGroup)) == peer {
			delete(p.recving, id)
			p.completeLocked(r, nil, Status{SourceGroup: r.Stat.SourceGroup, Tag: r.Stat.Tag, Err: pl})
		}
	}
	p.cond.Broadcast() // wake Probe waiters pinned to the lost peer
}

// failAll marks the engine closed and completes every pending operation
// with err: the local endpoint itself is dead, so nothing pending can
// ever complete normally.
func (p *Proc) failAll(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.fatal = err
	for _, r := range p.posted {
		p.completeLocked(r, nil, Status{SourceGroup: int(r.src), Tag: int(r.tag), Err: err})
	}
	p.posted = nil
	for id, r := range p.sent {
		delete(p.sent, id)
		if r.data != nil && r.recycle {
			transport.PutBuf(r.data)
		}
		r.data = nil
		p.completeLocked(r, nil, Status{Bytes: r.size, Err: err})
	}
	for id, r := range p.recving {
		delete(p.recving, id)
		p.completeLocked(r, nil, Status{SourceGroup: r.Stat.SourceGroup, Tag: r.Stat.Tag, Err: err})
	}
	p.cond.Broadcast()
}

// peerLoss returns the recorded loss report for world rank dst, if any.
func (p *Proc) peerLoss(dst int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peerDown[dst]
}

// worldOfLocked maps a group rank on a registered context to its world
// rank, falling back to the identity map on the world contexts; -1 when
// the mapping is unknown.
func (p *Proc) worldOfLocked(ctx, groupRank int32) int {
	if g, ok := p.groups[ctx]; ok {
		if groupRank >= 0 && int(groupRank) < len(g) {
			return g[groupRank]
		}
		return -1
	}
	if ctx <= 1 {
		return int(groupRank)
	}
	return -1
}

// RegisterGroup records the group-rank→world-rank table of the
// communicator whose context pair starts at base. Registration is what
// lets the engine fail receives pinned to a dead peer on derived
// communicators and route revocation notices to exactly the members.
func (p *Proc) RegisterGroup(base int32, world []int) {
	g := append([]int(nil), world...)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.groups == nil {
		p.groups = make(map[int32][]int)
	}
	p.groups[base] = g
	p.groups[base+1] = g
}

// RegisterGroupCtx records the matching-rank→world-rank table for one
// context of a pair, overriding RegisterGroup's symmetric registration.
// Intercommunicators need the split: point-to-point traffic matches
// against the remote group (so peer-death attribution and revocation
// routing on the point-to-point context must resolve remote ranks),
// while collectives run within the local group on the paired context.
func (p *Proc) RegisterGroupCtx(ctx int32, world []int) {
	g := append([]int(nil), world...)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.groups == nil {
		p.groups = make(map[int32][]int)
	}
	p.groups[ctx] = g
}

// DownPeers returns the world ranks currently known to have failed, in
// rank order.
func (p *Proc) DownPeers() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, 0, len(p.peerDown))
	for r := range p.peerDown {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// PeerDown reports whether world rank w is known to have failed.
func (p *Proc) PeerDown(w int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peerDown[w] != nil
}

// Revoke poisons the communicator whose context pair starts at base
// (ULFM MPI_Comm_revoke): pending operations on the pair complete with
// ErrCommRevoked, future ones fail fast, and a revocation notice floods
// to every live member of the registered group. Propagation is
// engine-level: each member re-floods on first receipt, so the notice
// survives the revoker dying mid-broadcast as long as the live members
// stay connected. Recovery-tagged traffic (Agree/Shrink) is exempt —
// revocation must not poison the repair protocol itself.
func (p *Proc) Revoke(base int32) {
	p.mu.Lock()
	outs, _ := p.revokeLocked(base)
	p.mu.Unlock()
	p.sendAsync(outs)
}

// ContextRevoked reports whether the context pair at base has been
// revoked.
func (p *Proc) ContextRevoked(base int32) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.revoked[base] != nil
}

// ctxErrLocked returns the revocation error barring an operation on ctx
// with tag, or nil.
func (p *Proc) ctxErrLocked(ctx, tag int32) error {
	if err := p.revoked[ctx]; err != nil && !isRecoveryTag(tag) {
		return err
	}
	return nil
}

// sendAsync ships engine-produced control frames off the caller's
// goroutine, tracked by inflightN so Close drains them.
func (p *Proc) sendAsync(outs []outFrame) {
	if len(outs) == 0 {
		return
	}
	p.mu.Lock()
	p.inflightN += len(outs)
	p.mu.Unlock()
	for _, o := range outs {
		go func(o outFrame) {
			defer p.doneSend()
			p.dev.Sendv(int(o.dst), o.hdr, o.payload, o.recycle) //nolint:errcheck // peer teardown races are benign
		}(o)
	}
}

// doneSend retires one asynchronous control-frame send and wakes a
// draining Close once the last one lands.
func (p *Proc) doneSend() {
	p.mu.Lock()
	p.inflightN--
	if p.inflightN == 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// revokeLocked records the revocation of (base, base+1), fails every
// pinned non-recovery operation, drops queued unexpected messages for
// the pair, and returns the flood of notices to transmit. fresh is
// false (and no frames are produced) when the pair was already revoked.
func (p *Proc) revokeLocked(base int32) (outs []outFrame, fresh bool) {
	if p.revoked[base] != nil {
		return nil, false
	}
	if p.revoked == nil {
		p.revoked = make(map[int32]error)
	}
	err := fmt.Errorf("%w (ctx %d)", ErrCommRevoked, base)
	p.revoked[base] = err
	p.revoked[base+1] = err
	p.rec.Instant(obs.EvRevoke, uint32(base), 0)

	onPair := func(ctx int32) bool { return ctx == base || ctx == base+1 }

	kept := p.posted[:0]
	for _, r := range p.posted {
		if onPair(r.ctx) && !isRecoveryTag(r.tag) {
			p.completeLocked(r, nil, Status{SourceGroup: int(r.src), Tag: int(r.tag), Err: err})
			continue
		}
		kept = append(kept, r)
	}
	for i := len(kept); i < len(p.posted); i++ {
		p.posted[i] = nil
	}
	p.posted = kept

	for id, r := range p.sent {
		if !onPair(r.ctxS) || isRecoveryTag(r.tagS) {
			continue
		}
		delete(p.sent, id)
		if r.data != nil && r.recycle {
			transport.PutBuf(r.data)
		}
		r.data = nil
		p.completeLocked(r, nil, Status{Bytes: r.size, Err: err})
	}
	for id, r := range p.recving {
		if onPair(r.ctx) && !isRecoveryTag(r.tag) {
			delete(p.recving, id)
			p.completeLocked(r, nil, Status{SourceGroup: r.Stat.SourceGroup, Tag: r.Stat.Tag, Err: err})
		}
	}
	// Unexpected messages for the pair will never be matched; release
	// their frames rather than hold them until Close.
	keptMsgs := p.arrived[:0]
	for _, m := range p.arrived {
		if onPair(m.env.ctx) && !isRecoveryTag(m.env.tag) {
			m.frame.Release()
			continue
		}
		keptMsgs = append(keptMsgs, m)
	}
	for i := len(keptMsgs); i < len(p.arrived); i++ {
		p.arrived[i] = nil
	}
	p.arrived = keptMsgs
	p.unexpDepth.Set(int64(len(p.arrived)))

	me := p.Rank()
	members := p.groups[base]
	if members == nil {
		// No registered table (the world pair, or a comm built before
		// registration): every rank is a potential member.
		members = make([]int, p.Size())
		for i := range members {
			members[i] = i
		}
	}
	for _, w := range members {
		if w == me || p.peerDown[w] != nil {
			continue
		}
		outs = append(outs, outFrame{dst: int32(w), hdr: buildRevoke(int32(me), base)})
	}
	p.cond.Broadcast() // wake Probe waiters on the revoked pair
	return outs, true
}

// handle runs the matching engine on one frame. It owns f.frame: the
// frame is either transferred to the matching request or unexpected
// queue, or released before handle returns. It returns frames to
// transmit and requests to complete once those frames are sent.
func (p *Proc) handle(f parsed) (outs []outFrame, after []lateComplete) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch f.kind {
	case kEager, kEagerSync:
		req := p.takeMatchLocked(f.env)
		if req == nil {
			p.arrived = append(p.arrived, &inMsg{
				kind: f.kind, env: f.env, id: f.id,
				payload: f.payload, frame: f.frame,
			})
			p.rec.Instant(obs.EvRecvUnexpected, uint32(f.env.srcGroup), int64(len(f.payload)))
			p.unexpDepth.Set(int64(len(p.arrived)))
			p.cond.Broadcast()
			return nil, nil
		}
		p.stats.RecvsMatched.Add(1)
		p.stats.BytesRecv.Add(uint64(len(f.payload)))
		p.rec.Instant(obs.EvRecvMatched, uint32(f.env.srcGroup), int64(len(f.payload)))
		p.deliverLocked(req, f.payload, f.frame, Status{
			SourceGroup: int(f.env.srcGroup),
			Tag:         int(f.env.tag),
		})
		if f.kind == kEagerSync {
			outs = append(outs, outFrame{dst: f.env.srcWorld, hdr: buildAck(int32(p.Rank()), f.id)})
		}
	case kRts:
		req := p.takeMatchLocked(f.env)
		f.frame.Release() // RTS carries no payload; nothing to retain
		p.rec.Instant(obs.EvRtsRecv, uint32(f.env.srcGroup), int64(f.size))
		if req == nil {
			p.arrived = append(p.arrived, &inMsg{kind: kRts, env: f.env, id: f.id, size: f.size})
			p.unexpDepth.Set(int64(len(p.arrived)))
			p.cond.Broadcast()
			return nil, nil
		}
		p.stats.RecvsMatched.Add(1)
		p.stats.BytesRecv.Add(uint64(f.size))
		outs = append(outs, p.grantRtsLocked(req, f.env, f.id))
	case kCts:
		defer f.frame.Release()
		req, ok := p.sent[f.id]
		if !ok {
			return nil, nil // cancelled or duplicate
		}
		delete(p.sent, f.id)
		p.rec.Instant(obs.EvCtsRecv, uint32(f.id), 0)
		p.rec.End(obs.EvSendRndv, uint32(f.id), 0)
		outs = append(outs, outFrame{
			dst:     f.env.srcWorld,
			hdr:     buildDataHdr(int32(p.Rank()), f.recvID),
			payload: req.data,
			recycle: req.recycle,
		})
		req.data = nil
		after = append(after, lateComplete{req: req, st: Status{Bytes: req.size}})
	case kData:
		req, ok := p.recving[f.recvID]
		if !ok {
			f.frame.Release()
			return nil, nil
		}
		delete(p.recving, f.recvID)
		// The posted request owns the incoming frame outright: the
		// payload lands in the caller's buffer (receive-into) or is
		// handed over by reference — never cloned.
		p.deliverLocked(req, f.payload, f.frame, Status{
			SourceGroup: int(req.Stat.SourceGroup),
			Tag:         req.Stat.Tag,
		})
	case kAck:
		f.frame.Release()
		req, ok := p.sent[f.id]
		if !ok {
			return nil, nil
		}
		delete(p.sent, f.id)
		after = append(after, lateComplete{req: req, st: Status{Bytes: req.size}})
	case kRevoke:
		f.frame.Release()
		// First receipt poisons the pair and re-floods the notice: the
		// flood is what makes revocation reliable when the revoker dies
		// mid-broadcast (every member that hears it tells everyone).
		revokeOuts, fresh := p.revokeLocked(f.env.ctx)
		if fresh {
			outs = append(outs, revokeOuts...)
		}
	}
	return outs, after
}

// deliverLocked completes a receive request with an arrived payload,
// following the ownership protocol: a receive-into request gets the
// bytes copied straight into its caller-owned buffer and the frame is
// released; an ordinary receive takes ownership of the frame and sees
// the payload by reference, with release deferred to the request's
// consumer. st carries SourceGroup/Tag; Bytes and Err are filled here.
func (p *Proc) deliverLocked(req *Request, payload []byte, frame transport.Frame, st Status) {
	if req.into != nil {
		// Deposit whole elements only: a payload that is not an exact
		// multiple of the element size must not tear the final element
		// (the binding reports the format error; classic unpack
		// rejects such payloads before depositing anything).
		avail := payload
		if es := req.intoES; es > 1 {
			if rem := len(avail) % es; rem != 0 {
				avail = avail[:len(avail)-rem]
			}
		}
		n := copy(req.into, avail)
		p.stats.BytesCopied.Add(uint64(n))
		st.Bytes = len(payload) // full incoming size, like an ordinary receive
		if len(avail) > len(req.into) {
			st.Err = ErrTruncated
		}
		frame.Release()
		p.completeLocked(req, nil, st)
		return
	}
	p.stats.RecvsZeroCopy.Add(1)
	req.frame = frame
	st.Bytes = len(payload)
	p.completeLocked(req, payload, st)
}

// grantRtsLocked matches a receive request to an RTS: it registers the
// pending data delivery and emits the CTS. The request's status source
// and tag are pre-filled so the kData handler can preserve them.
func (p *Proc) grantRtsLocked(req *Request, env envelope, senderID uint64) outFrame {
	p.nextID++
	recvID := p.nextID
	req.Stat.SourceGroup = int(env.srcGroup)
	req.Stat.Tag = int(env.tag)
	p.recving[recvID] = req
	return outFrame{dst: env.srcWorld, hdr: buildCts(int32(p.Rank()), senderID, recvID)}
}

// takeMatchLocked removes and returns the oldest posted receive matching
// the envelope, or nil.
func (p *Proc) takeMatchLocked(env envelope) *Request {
	for i, r := range p.posted {
		if matches(r, env) {
			p.posted = append(p.posted[:i], p.posted[i+1:]...)
			return r
		}
	}
	return nil
}

func matches(r *Request, env envelope) bool {
	if r.ctx != env.ctx {
		return false
	}
	if r.src != AnySource && r.src != env.srcGroup {
		return false
	}
	if r.tag != AnyTag && r.tag != env.tag {
		return false
	}
	return true
}

func matchesMsg(m *inMsg, ctx, src, tag int32) bool {
	if ctx != m.env.ctx {
		return false
	}
	if src != AnySource && src != m.env.srcGroup {
		return false
	}
	if tag != AnyTag && tag != m.env.tag {
		return false
	}
	return true
}

// Isend starts a send of payload on context ctx to world rank dstWorld.
// srcGroup is the caller's rank within the communicator group (carried in
// the envelope for matching). The payload slice is owned by the engine
// after the call; recycle additionally vouches that no other reference
// to it exists, licensing the runtime to return it to the frame pool
// once the receiver has consumed it (payloads packed into pool-born
// buffers should pass true; shared or caller-retained buffers must pass
// false).
func (p *Proc) Isend(ctx int32, srcGroup int, dstWorld int, tag int, payload []byte, mode Mode, recycle bool) (*Request, error) {
	env := envelope{
		srcWorld: int32(p.Rank()),
		ctx:      ctx,
		srcGroup: int32(srcGroup),
		tag:      int32(tag),
	}
	req := newRequest(p, reqSend)
	req.dstWorld = int32(dstWorld)
	req.ctxS = ctx
	req.tagS = int32(tag)
	req.size = len(payload)

	p.mu.Lock()
	ctxErr := p.ctxErrLocked(ctx, int32(tag))
	lost := p.peerDown[dstWorld]
	fatal := p.fatal
	p.mu.Unlock()
	if fatal != nil {
		// The local endpoint is dead (fault-injected or device failure):
		// nothing posted from here on can ever complete normally.
		if recycle {
			transport.PutBuf(payload)
		}
		p.complete(req, nil, Status{Err: fatal})
		return req, fmt.Errorf("core: send on dead endpoint: %w", fatal)
	}
	if ctxErr != nil {
		if recycle {
			transport.PutBuf(payload)
		}
		p.complete(req, nil, Status{Err: ctxErr})
		return req, fmt.Errorf("core: send on revoked context %d: %w", ctx, ctxErr)
	}
	if lost != nil {
		if recycle {
			transport.PutBuf(payload)
		}
		p.complete(req, nil, Status{Err: lost})
		return req, fmt.Errorf("core: send to rank %d: %w", dstWorld, lost)
	}

	eager := int(p.eagerLim.Load())
	small := eager >= 0 && len(payload) <= eager

	p.stats.BytesSent.Add(uint64(len(payload)))
	switch {
	case mode != ModeSync && small:
		// Eager standard/ready: the payload is with the device once
		// Sendv returns (and recycled downstream); the request
		// completes immediately.
		p.stats.SendsEager.Add(1)
		p.rec.Instant(obs.EvSendEager, uint32(dstWorld), int64(len(payload)))
		p.complete(req, nil, Status{Bytes: len(payload)})
		if err := p.dev.Sendv(dstWorld, buildEagerHdr(false, env, 0), payload, recycle); err != nil {
			return req, fmt.Errorf("core: eager send: %w", err)
		}
	case mode == ModeSync && small:
		// Eager synchronous: ship payload now, complete on matched ack.
		p.stats.SendsSync.Add(1)
		p.rec.Instant(obs.EvSendSync, uint32(dstWorld), int64(len(payload)))
		p.mu.Lock()
		p.nextID++
		id := p.nextID
		req.id = id
		p.sent[id] = req
		p.mu.Unlock()
		if err := p.dev.Sendv(dstWorld, buildEagerHdr(true, env, id), payload, recycle); err != nil {
			return req, fmt.Errorf("core: sync eager send: %w", err)
		}
	default:
		// Rendezvous: advertise, ship payload on CTS.
		p.stats.SendsRndv.Add(1)
		p.mu.Lock()
		p.nextID++
		id := p.nextID
		req.id = id
		req.data = payload
		req.recycle = recycle
		p.sent[id] = req
		p.mu.Unlock()
		// The rendezvous span opens at the RTS and closes when the CTS
		// grant arrives (both on this, the sender's, timeline): its
		// width is the receiver-matching stall the eager path avoids.
		p.rec.Begin(obs.EvSendRndv, uint32(id), int64(len(payload)))
		if err := p.dev.Sendv(dstWorld, buildRts(env, id, len(payload)), nil, false); err != nil {
			return req, fmt.Errorf("core: rts send: %w", err)
		}
	}
	return req, nil
}

// Irecv posts a receive on context ctx for (src, tag), either of which
// may be the AnySource/AnyTag wildcard. src is a group rank. The payload
// arrives by reference in Request.Payload; release it with
// Request.ReleaseFrame (or Recycle) once consumed.
func (p *Proc) Irecv(ctx int32, src, tag int32) *Request {
	return p.irecvInto(ctx, src, tag, nil, 0)
}

// IrecvInto posts a receive like Irecv, but the payload is deposited
// directly into buf — the caller's buffer — with no intermediate
// allocation or handed-over frame. elemSize is the wire element size
// (<= 1 means byte granularity): the deposit is floored to whole
// elements, so a trailing partial element never tears the buffer. If
// the incoming message holds more whole elements than buf, buf is
// filled and the completion status carries ErrTruncated; Status.Bytes
// always reports the full incoming size. buf must stay untouched until
// the request completes.
func (p *Proc) IrecvInto(ctx int32, src, tag int32, buf []byte, elemSize int) *Request {
	if buf == nil {
		// A receive-into with no buffer is a zero-length receive; keep
		// the into marker non-nil so delivery stays on the into path.
		buf = emptyInto
	}
	return p.irecvInto(ctx, src, tag, buf, elemSize)
}

// emptyInto marks a zero-capacity receive-into buffer (into == nil means
// "ordinary receive", so nil buffers need a distinct sentinel).
var emptyInto = make([]byte, 0, 1)

func (p *Proc) irecvInto(ctx, src, tag int32, into []byte, elemSize int) *Request {
	req := newRequest(p, reqRecv)
	req.ctx, req.src, req.tag = ctx, src, tag
	req.into = into
	req.intoES = elemSize

	p.mu.Lock()
	// A receive on a revoked context can never complete normally; fail
	// it now (revocation already purged the pair's unexpected queue).
	if rerr := p.ctxErrLocked(ctx, tag); rerr != nil {
		p.completeLocked(req, nil, Status{SourceGroup: int(src), Tag: int(tag), Err: rerr})
		p.mu.Unlock()
		return req
	}
	m, idx := p.findArrivedLocked(ctx, src, tag)
	if m == nil {
		// No queued match, and the local endpoint is dead: parking the
		// receive would hang the caller on an engine with no progress.
		// (Checked after the queue so frames delivered before death stay
		// readable.)
		if p.fatal != nil {
			p.completeLocked(req, nil, Status{SourceGroup: int(src), Tag: int(tag), Err: p.fatal})
			p.mu.Unlock()
			return req
		}
		// A receive pinned to an already-lost peer can never match;
		// fail it now rather than park it forever. Derived contexts
		// resolve through their registered group tables.
		if src != AnySource {
			if w := p.worldOfLocked(ctx, src); w >= 0 {
				if lost := p.peerDown[w]; lost != nil {
					p.completeLocked(req, nil, Status{SourceGroup: int(src), Tag: int(tag), Err: lost})
					p.mu.Unlock()
					return req
				}
			}
		}
		p.posted = append(p.posted, req)
		p.mu.Unlock()
		return req
	}
	p.arrived = append(p.arrived[:idx], p.arrived[idx+1:]...)
	p.unexpDepth.Set(int64(len(p.arrived)))
	p.stats.RecvsUnexpected.Add(1)
	if m.kind == kRts {
		p.stats.BytesRecv.Add(uint64(m.size))
	} else {
		p.stats.BytesRecv.Add(uint64(len(m.payload)))
	}
	var out *outFrame
	switch m.kind {
	case kEager, kEagerSync:
		p.deliverLocked(req, m.payload, m.frame, Status{
			SourceGroup: int(m.env.srcGroup),
			Tag:         int(m.env.tag),
		})
		if m.kind == kEagerSync {
			o := outFrame{dst: m.env.srcWorld, hdr: buildAck(int32(p.Rank()), m.id)}
			out = &o
		}
	case kRts:
		o := p.grantRtsLocked(req, m.env, m.id)
		out = &o
	}
	p.mu.Unlock()
	if out != nil {
		p.dev.Sendv(int(out.dst), out.hdr, out.payload, out.recycle) //nolint:errcheck // teardown race
	}
	return req
}

// findArrivedLocked returns the oldest unexpected message matching
// (ctx, src, tag) and its index.
func (p *Proc) findArrivedLocked(ctx, src, tag int32) (*inMsg, int) {
	for i, m := range p.arrived {
		if matchesMsg(m, ctx, src, tag) {
			return m, i
		}
	}
	return nil, -1
}

// Probe blocks until a message matching (ctx, src, tag) has arrived (or
// at least been advertised via RTS) and returns its envelope status
// without receiving it.
func (p *Proc) Probe(ctx, src, tag int32) (Status, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if m, _ := p.findArrivedLocked(ctx, src, tag); m != nil {
			return statusOf(m), nil
		}
		if rerr := p.ctxErrLocked(ctx, tag); rerr != nil {
			return Status{SourceGroup: int(src), Tag: int(tag)}, rerr
		}
		if src != AnySource {
			if w := p.worldOfLocked(ctx, src); w >= 0 {
				if lost := p.peerDown[w]; lost != nil {
					return Status{SourceGroup: int(src), Tag: int(tag)}, lost
				}
			}
		}
		if p.closed {
			return Status{}, transport.ErrClosed
		}
		p.cond.Wait()
	}
}

// Iprobe is the non-blocking Probe.
func (p *Proc) Iprobe(ctx, src, tag int32) (Status, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if m, _ := p.findArrivedLocked(ctx, src, tag); m != nil {
		return statusOf(m), true
	}
	return Status{}, false
}

func statusOf(m *inMsg) Status {
	n := len(m.payload)
	if m.kind == kRts {
		n = m.size
	}
	return Status{SourceGroup: int(m.env.srcGroup), Tag: int(m.env.tag), Bytes: n}
}

// Cancel attempts to cancel a request. Receives cancel if still posted;
// sends cancel if the rendezvous has not been granted. Returns true if
// the cancellation took effect.
func (p *Proc) Cancel(r *Request) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r.completed {
		return false
	}
	if r.kind == reqRecv {
		for i, q := range p.posted {
			if q == r {
				p.posted = append(p.posted[:i], p.posted[i+1:]...)
				p.stats.Cancelled.Add(1)
				p.completeLocked(r, nil, Status{Cancelled: true})
				return true
			}
		}
		return false
	}
	if _, ok := p.sent[r.id]; ok {
		delete(p.sent, r.id)
		p.stats.Cancelled.Add(1)
		if r.data != nil && r.recycle {
			// The rendezvous payload was never shipped; reclaim it.
			transport.PutBuf(r.data)
		}
		r.data = nil
		p.completeLocked(r, nil, Status{Cancelled: true})
		return true
	}
	return false
}

// WaitAny blocks until one of the non-nil, non-completed-yet requests
// completes and returns its index. Requests already completed are
// returned immediately (lowest index first). Returns -1 if every entry
// is nil.
func (p *Proc) WaitAny(reqs []*Request) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	all := true
	for _, r := range reqs {
		if r != nil {
			all = false
			break
		}
	}
	if all {
		return -1
	}
	for {
		for i, r := range reqs {
			if r != nil && r.completed {
				return i
			}
		}
		if p.closed {
			return -1
		}
		p.cond.Wait()
	}
}

// AllocContexts runs the local half of collective context-id allocation:
// it returns this rank's candidate pair base. The binding layer agrees on
// the max across the group and reports it back via CommitContexts.
func (p *Proc) AllocContexts() int32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nextCtx
}

// CommitContexts records the group-agreed context base; the new
// communicator uses (base, base+1) and the counter moves past them.
func (p *Proc) CommitContexts(base int32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if base+2 > p.nextCtx {
		p.nextCtx = base + 2
	}
}

// PendingUnexpected reports the current unexpected-queue length
// (diagnostics and tests).
func (p *Proc) PendingUnexpected() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.arrived)
}
