package core

import (
	"fmt"
	"sync"

	"gompi/internal/transport"
)

// DefaultEagerLimit is the payload size, in bytes, at or below which a
// standard-mode message is shipped eagerly; larger messages use the
// RTS/CTS rendezvous protocol. MPICH-era implementations sit in the same
// range; the ablation bench sweeps this knob.
const DefaultEagerLimit = 64 << 10

// Config tunes a Proc.
type Config struct {
	// EagerLimit is the eager/rendezvous switch-over in payload bytes;
	// 0 selects DefaultEagerLimit, negative forces all-rendezvous.
	EagerLimit int
}

func (c Config) eagerLimit() int {
	switch {
	case c.EagerLimit == 0:
		return DefaultEagerLimit
	case c.EagerLimit < 0:
		return -1
	default:
		return c.EagerLimit
	}
}

// inMsg is an arrived, not-yet-matched message (the unexpected queue
// entry): either a complete eager message or an RTS advertisement.
type inMsg struct {
	kind    byte
	env     envelope
	id      uint64
	size    int // advertised payload size for kRts
	payload []byte
}

// outFrame is a frame produced by the matching engine to be sent after
// the engine lock is released (sending under the lock can deadlock with
// the peer's flow control; see the ordering argument in DESIGN.md).
type outFrame struct {
	dst   int32
	frame []byte
}

// Proc is one rank's progress engine. All methods are safe for
// concurrent use by the rank's user goroutine and its progress goroutine.
type Proc struct {
	dev transport.Device
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	posted  []*Request // posted receives, post order
	arrived []*inMsg   // unexpected messages, arrival order
	sent    map[uint64]*Request
	recving map[uint64]*Request
	nextID  uint64
	nextCtx int32
	closed  bool

	stats Stats

	wg sync.WaitGroup
	// inflight tracks control frames (CTS/ACK/DATA) sent
	// asynchronously from the progress loop; Close drains them before
	// closing the device so no frame is dropped at shutdown.
	inflight sync.WaitGroup
}

// NewProc wraps a device with a progress engine and starts its progress
// goroutine.
func NewProc(dev transport.Device, cfg Config) *Proc {
	p := &Proc{
		dev:     dev,
		cfg:     cfg,
		sent:    make(map[uint64]*Request),
		recving: make(map[uint64]*Request),
		nextCtx: 2, // 0 and 1 belong to COMM_WORLD
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(1)
	go p.progress()
	return p
}

// Rank returns the world rank.
func (p *Proc) Rank() int { return p.dev.Rank() }

// Size returns the world size.
func (p *Proc) Size() int { return p.dev.Size() }

// EagerLimit reports the configured eager/rendezvous threshold.
func (p *Proc) EagerLimit() int { return p.cfg.eagerLimit() }

// Close shuts the engine down: the device is closed and the progress
// goroutine joined. Outstanding requests never complete after Close; the
// binding layer runs a barrier first so correct programs are quiescent.
func (p *Proc) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	// Let asynchronously-sent control frames reach their destination
	// inboxes first: a barrier completing on this rank may still owe a
	// peer its rendezvous payload.
	p.inflight.Wait()
	err := p.dev.Close()
	p.wg.Wait()
	return err
}

// progress pumps the device, feeding every frame through the matching
// engine and transmitting any frames the engine produces in response.
func (p *Proc) progress() {
	defer p.wg.Done()
	for {
		raw, err := p.dev.Recv()
		if err != nil {
			p.mu.Lock()
			p.closed = true
			p.cond.Broadcast()
			p.mu.Unlock()
			return
		}
		f, err := parseFrame(raw)
		if err != nil {
			// A malformed frame indicates a wire-level bug, not a
			// user error; drop it loudly in debug builds.
			continue
		}
		outs, after := p.handle(f)
		// Control frames (CTS/ACK/DATA) are keyed by unique ids and
		// order-insensitive, so they are sent asynchronously: a
		// blocking send here could form a progress↔progress
		// flow-control cycle between two ranks flooding each other.
		// Matching-relevant frames (eager, RTS) are only ever sent
		// from user goroutines, preserving MPI's non-overtaking rule.
		for _, o := range outs {
			p.inflight.Add(1)
			go func(o outFrame) {
				defer p.inflight.Done()
				p.dev.Send(int(o.dst), o.frame) //nolint:errcheck // peer teardown races are benign
			}(o)
		}
		// Rendezvous payloads are copied into the frame, so the user
		// buffer is reusable before the wire send finishes; complete
		// now.
		for _, c := range after {
			p.complete(c.req, nil, c.st)
		}
	}
}

type lateComplete struct {
	req *Request
	st  Status
}

// handle runs the matching engine on one frame. It returns frames to
// transmit and requests to complete once those frames are sent.
func (p *Proc) handle(f parsed) (outs []outFrame, after []lateComplete) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch f.kind {
	case kEager, kEagerSync:
		req := p.takeMatchLocked(f.env)
		if req != nil {
			p.stats.RecvsMatched.Add(1)
			p.stats.BytesRecv.Add(uint64(len(f.payload)))
		}
		if req == nil {
			m := &inMsg{kind: f.kind, env: f.env, id: f.id}
			m.payload = append([]byte(nil), f.payload...)
			p.arrived = append(p.arrived, m)
			p.cond.Broadcast()
			return nil, nil
		}
		payload := append([]byte(nil), f.payload...)
		p.completeLocked(req, payload, Status{
			SourceGroup: int(f.env.srcGroup),
			Tag:         int(f.env.tag),
			Bytes:       len(payload),
		})
		if f.kind == kEagerSync {
			outs = append(outs, outFrame{dst: f.env.srcWorld, frame: buildAck(int32(p.Rank()), f.id)})
		}
	case kRts:
		req := p.takeMatchLocked(f.env)
		if req != nil {
			p.stats.RecvsMatched.Add(1)
			p.stats.BytesRecv.Add(uint64(f.size))
		}
		if req == nil {
			p.arrived = append(p.arrived, &inMsg{kind: kRts, env: f.env, id: f.id, size: f.size})
			p.cond.Broadcast()
			return nil, nil
		}
		outs = append(outs, p.grantRtsLocked(req, f.env, f.id))
	case kCts:
		req, ok := p.sent[f.id]
		if !ok {
			return nil, nil // cancelled or duplicate
		}
		delete(p.sent, f.id)
		payloadLen := len(req.data)
		data := buildData(int32(p.Rank()), f.recvID, req.data)
		req.data = nil
		outs = append(outs, outFrame{dst: f.env.srcWorld, frame: data})
		after = append(after, lateComplete{req: req, st: Status{Bytes: payloadLen}})
	case kData:
		req, ok := p.recving[f.recvID]
		if !ok {
			return nil, nil
		}
		delete(p.recving, f.recvID)
		payload := append([]byte(nil), f.payload...)
		p.completeLocked(req, payload, Status{
			SourceGroup: int(req.Stat.SourceGroup),
			Tag:         req.Stat.Tag,
			Bytes:       len(payload),
		})
	case kAck:
		req, ok := p.sent[f.id]
		if !ok {
			return nil, nil
		}
		delete(p.sent, f.id)
		after = append(after, lateComplete{req: req, st: Status{Bytes: len(req.data)}})
	}
	return outs, after
}

// grantRtsLocked matches a receive request to an RTS: it registers the
// pending data delivery and emits the CTS. The request's status source
// and tag are pre-filled so the kData handler can preserve them.
func (p *Proc) grantRtsLocked(req *Request, env envelope, senderID uint64) outFrame {
	p.nextID++
	recvID := p.nextID
	req.Stat.SourceGroup = int(env.srcGroup)
	req.Stat.Tag = int(env.tag)
	p.recving[recvID] = req
	return outFrame{dst: env.srcWorld, frame: buildCts(int32(p.Rank()), senderID, recvID)}
}

// takeMatchLocked removes and returns the oldest posted receive matching
// the envelope, or nil.
func (p *Proc) takeMatchLocked(env envelope) *Request {
	for i, r := range p.posted {
		if matches(r, env) {
			p.posted = append(p.posted[:i], p.posted[i+1:]...)
			return r
		}
	}
	return nil
}

func matches(r *Request, env envelope) bool {
	if r.ctx != env.ctx {
		return false
	}
	if r.src != AnySource && r.src != env.srcGroup {
		return false
	}
	if r.tag != AnyTag && r.tag != env.tag {
		return false
	}
	return true
}

func matchesMsg(m *inMsg, ctx, src, tag int32) bool {
	if ctx != m.env.ctx {
		return false
	}
	if src != AnySource && src != m.env.srcGroup {
		return false
	}
	if tag != AnyTag && tag != m.env.tag {
		return false
	}
	return true
}

// Isend starts a send of payload on context ctx to world rank dstWorld.
// srcGroup is the caller's rank within the communicator group (carried in
// the envelope for matching). The payload slice is owned by the engine
// after the call.
func (p *Proc) Isend(ctx int32, srcGroup int, dstWorld int, tag int, payload []byte, mode Mode) (*Request, error) {
	env := envelope{
		srcWorld: int32(p.Rank()),
		ctx:      ctx,
		srcGroup: int32(srcGroup),
		tag:      int32(tag),
	}
	req := newRequest(p, reqSend)
	req.dstWorld = int32(dstWorld)
	req.ctxS = ctx

	eager := p.cfg.eagerLimit()
	small := eager >= 0 && len(payload) <= eager

	p.stats.BytesSent.Add(uint64(len(payload)))
	switch {
	case mode != ModeSync && small:
		// Eager standard/ready: buffer-safe once framed; the request
		// completes immediately.
		p.stats.SendsEager.Add(1)
		frame := buildEager(false, env, 0, payload)
		p.complete(req, nil, Status{Bytes: len(payload)})
		if err := p.dev.Send(dstWorld, frame); err != nil {
			return req, fmt.Errorf("core: eager send: %w", err)
		}
	case mode == ModeSync && small:
		// Eager synchronous: ship payload now, complete on matched ack.
		p.stats.SendsSync.Add(1)
		p.mu.Lock()
		p.nextID++
		id := p.nextID
		req.id = id
		req.data = payload
		p.sent[id] = req
		p.mu.Unlock()
		if err := p.dev.Send(dstWorld, buildEager(true, env, id, payload)); err != nil {
			return req, fmt.Errorf("core: sync eager send: %w", err)
		}
	default:
		// Rendezvous: advertise, ship payload on CTS.
		p.stats.SendsRndv.Add(1)
		p.mu.Lock()
		p.nextID++
		id := p.nextID
		req.id = id
		req.data = payload
		p.sent[id] = req
		p.mu.Unlock()
		if err := p.dev.Send(dstWorld, buildRts(env, id, len(payload))); err != nil {
			return req, fmt.Errorf("core: rts send: %w", err)
		}
	}
	return req, nil
}

// Irecv posts a receive on context ctx for (src, tag), either of which
// may be the AnySource/AnyTag wildcard. src is a group rank.
func (p *Proc) Irecv(ctx int32, src, tag int32) *Request {
	req := newRequest(p, reqRecv)
	req.ctx, req.src, req.tag = ctx, src, tag

	p.mu.Lock()
	m, idx := p.findArrivedLocked(ctx, src, tag)
	if m == nil {
		p.posted = append(p.posted, req)
		p.mu.Unlock()
		return req
	}
	p.arrived = append(p.arrived[:idx], p.arrived[idx+1:]...)
	p.stats.RecvsUnexpected.Add(1)
	if m.kind == kRts {
		p.stats.BytesRecv.Add(uint64(m.size))
	} else {
		p.stats.BytesRecv.Add(uint64(len(m.payload)))
	}
	var out *outFrame
	switch m.kind {
	case kEager:
		p.completeLocked(req, m.payload, Status{
			SourceGroup: int(m.env.srcGroup),
			Tag:         int(m.env.tag),
			Bytes:       len(m.payload),
		})
	case kEagerSync:
		p.completeLocked(req, m.payload, Status{
			SourceGroup: int(m.env.srcGroup),
			Tag:         int(m.env.tag),
			Bytes:       len(m.payload),
		})
		o := outFrame{dst: m.env.srcWorld, frame: buildAck(int32(p.Rank()), m.id)}
		out = &o
	case kRts:
		o := p.grantRtsLocked(req, m.env, m.id)
		out = &o
	}
	p.mu.Unlock()
	if out != nil {
		p.dev.Send(int(out.dst), out.frame) //nolint:errcheck // teardown race
	}
	return req
}

// findArrivedLocked returns the oldest unexpected message matching
// (ctx, src, tag) and its index.
func (p *Proc) findArrivedLocked(ctx, src, tag int32) (*inMsg, int) {
	for i, m := range p.arrived {
		if matchesMsg(m, ctx, src, tag) {
			return m, i
		}
	}
	return nil, -1
}

// Probe blocks until a message matching (ctx, src, tag) has arrived (or
// at least been advertised via RTS) and returns its envelope status
// without receiving it.
func (p *Proc) Probe(ctx, src, tag int32) (Status, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if m, _ := p.findArrivedLocked(ctx, src, tag); m != nil {
			return statusOf(m), nil
		}
		if p.closed {
			return Status{}, transport.ErrClosed
		}
		p.cond.Wait()
	}
}

// Iprobe is the non-blocking Probe.
func (p *Proc) Iprobe(ctx, src, tag int32) (Status, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if m, _ := p.findArrivedLocked(ctx, src, tag); m != nil {
		return statusOf(m), true
	}
	return Status{}, false
}

func statusOf(m *inMsg) Status {
	n := len(m.payload)
	if m.kind == kRts {
		n = m.size
	}
	return Status{SourceGroup: int(m.env.srcGroup), Tag: int(m.env.tag), Bytes: n}
}

// Cancel attempts to cancel a request. Receives cancel if still posted;
// sends cancel if the rendezvous has not been granted. Returns true if
// the cancellation took effect.
func (p *Proc) Cancel(r *Request) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r.completed {
		return false
	}
	if r.kind == reqRecv {
		for i, q := range p.posted {
			if q == r {
				p.posted = append(p.posted[:i], p.posted[i+1:]...)
				p.stats.Cancelled.Add(1)
				p.completeLocked(r, nil, Status{Cancelled: true})
				return true
			}
		}
		return false
	}
	if _, ok := p.sent[r.id]; ok {
		delete(p.sent, r.id)
		p.stats.Cancelled.Add(1)
		p.completeLocked(r, nil, Status{Cancelled: true})
		return true
	}
	return false
}

// WaitAny blocks until one of the non-nil, non-completed-yet requests
// completes and returns its index. Requests already completed are
// returned immediately (lowest index first). Returns -1 if every entry
// is nil.
func (p *Proc) WaitAny(reqs []*Request) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	all := true
	for _, r := range reqs {
		if r != nil {
			all = false
			break
		}
	}
	if all {
		return -1
	}
	for {
		for i, r := range reqs {
			if r != nil && r.completed {
				return i
			}
		}
		if p.closed {
			return -1
		}
		p.cond.Wait()
	}
}

// AllocContexts runs the local half of collective context-id allocation:
// it returns this rank's candidate pair base. The binding layer agrees on
// the max across the group and reports it back via CommitContexts.
func (p *Proc) AllocContexts() int32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nextCtx
}

// CommitContexts records the group-agreed context base; the new
// communicator uses (base, base+1) and the counter moves past them.
func (p *Proc) CommitContexts(base int32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if base+2 > p.nextCtx {
		p.nextCtx = base + 2
	}
}

// PendingUnexpected reports the current unexpected-queue length
// (diagnostics and tests).
func (p *Proc) PendingUnexpected() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.arrived)
}
