package core

import (
	"sync/atomic"

	"gompi/internal/transport"
)

// Stats are monotonic per-engine counters, exposed for diagnostics and
// for tests that assert protocol selection (eager vs rendezvous) and
// matching behaviour. All counters are updated with atomics and may be
// read at any time.
type Stats struct {
	// SendsEager counts standard/ready-mode messages shipped eagerly.
	SendsEager atomic.Uint64
	// SendsSync counts synchronous-mode eager messages (ack-gated).
	SendsSync atomic.Uint64
	// SendsRndv counts messages that took the RTS/CTS/DATA path.
	SendsRndv atomic.Uint64
	// BytesSent totals payload bytes handed to the device.
	BytesSent atomic.Uint64
	// RecvsMatched counts receives satisfied from the posted queue
	// (message arrived after the receive was posted).
	RecvsMatched atomic.Uint64
	// RecvsUnexpected counts receives satisfied from the unexpected
	// queue (message arrived first).
	RecvsUnexpected atomic.Uint64
	// BytesRecv totals payload bytes delivered to receives.
	BytesRecv atomic.Uint64
	// BytesCopied totals payload bytes the engine copied on the
	// receive side (receive-into deposits). Ordinary receives hand the
	// frame over by reference and copy nothing here, so BytesCopied
	// against BytesRecv measures how much of the traffic still pays an
	// engine-side copy.
	BytesCopied atomic.Uint64
	// RecvsZeroCopy counts receives completed by transferring frame
	// ownership instead of copying the payload.
	RecvsZeroCopy atomic.Uint64
	// Cancelled counts operations completed by cancellation.
	Cancelled atomic.Uint64
	// PeersLost counts peer processes whose loss the engine has
	// observed and converted into per-operation failures.
	PeersLost atomic.Uint64
}

// Snapshot is a plain-value copy of the counters, including the
// process-wide frame-pool counters at snapshot time.
type Snapshot struct {
	SendsEager, SendsSync, SendsRndv uint64
	BytesSent                        uint64
	RecvsMatched, RecvsUnexpected    uint64
	BytesRecv                        uint64
	BytesCopied                      uint64
	RecvsZeroCopy                    uint64
	Cancelled                        uint64
	PeersLost                        uint64

	// Pool is the frame pool's counter snapshot; Pool.HitRate shows
	// how much of the frame traffic recirculates instead of
	// allocating. The pool is shared by every in-process rank.
	Pool transport.PoolSnapshot

	// Devices breaks traffic down by transport medium: one entry per
	// device this rank's endpoint is composed of ("shm", "tcp",
	// "chan"), each with its own frame/byte counters and — for media
	// with their own buffer pool, like the shared-memory arena — a
	// per-medium pool snapshot.
	Devices []transport.DevStats
}

// Stats returns the engine's counter set.
func (p *Proc) Stats() *Stats { return &p.stats }

// StatsSnapshot copies the current counter values.
func (p *Proc) StatsSnapshot() Snapshot {
	s := &p.stats
	return Snapshot{
		SendsEager:      s.SendsEager.Load(),
		SendsSync:       s.SendsSync.Load(),
		SendsRndv:       s.SendsRndv.Load(),
		BytesSent:       s.BytesSent.Load(),
		RecvsMatched:    s.RecvsMatched.Load(),
		RecvsUnexpected: s.RecvsUnexpected.Load(),
		BytesRecv:       s.BytesRecv.Load(),
		BytesCopied:     s.BytesCopied.Load(),
		RecvsZeroCopy:   s.RecvsZeroCopy.Load(),
		Cancelled:       s.Cancelled.Load(),
		PeersLost:       s.PeersLost.Load(),
		Pool:            transport.PoolStats(),
		Devices:         transport.DeviceStatsOf(p.dev),
	}
}
