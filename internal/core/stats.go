package core

import (
	"gompi/internal/obs"

	"gompi/internal/transport"
)

// Stats are monotonic per-engine counters, exposed for diagnostics and
// for tests that assert protocol selection (eager vs rendezvous) and
// matching behaviour. Each field is a performance variable in the
// engine's obs.Registry — Stats is a typed view over the registry, not
// a parallel counter set — so the same values surface through
// Env.PerfVars() under the "core.*" names. All counters are updated
// with atomics and may be read at any time.
type Stats struct {
	// SendsEager counts standard/ready-mode messages shipped eagerly.
	SendsEager *obs.Counter
	// SendsSync counts synchronous-mode eager messages (ack-gated).
	SendsSync *obs.Counter
	// SendsRndv counts messages that took the RTS/CTS/DATA path.
	SendsRndv *obs.Counter
	// BytesSent totals payload bytes handed to the device.
	BytesSent *obs.Counter
	// RecvsMatched counts receives satisfied from the posted queue
	// (message arrived after the receive was posted).
	RecvsMatched *obs.Counter
	// RecvsUnexpected counts receives satisfied from the unexpected
	// queue (message arrived first).
	RecvsUnexpected *obs.Counter
	// BytesRecv totals payload bytes delivered to receives.
	BytesRecv *obs.Counter
	// BytesCopied totals payload bytes the engine copied on the
	// receive side (receive-into deposits). Ordinary receives hand the
	// frame over by reference and copy nothing here, so BytesCopied
	// against BytesRecv measures how much of the traffic still pays an
	// engine-side copy.
	BytesCopied *obs.Counter
	// RecvsZeroCopy counts receives completed by transferring frame
	// ownership instead of copying the payload.
	RecvsZeroCopy *obs.Counter
	// Cancelled counts operations completed by cancellation.
	Cancelled *obs.Counter
	// PeersLost counts peer processes whose loss the engine has
	// observed and converted into per-operation failures.
	PeersLost *obs.Counter
}

// newStats registers the engine's counters in reg.
func newStats(reg *obs.Registry) Stats {
	return Stats{
		SendsEager:      reg.Counter("core.sends_eager"),
		SendsSync:       reg.Counter("core.sends_sync"),
		SendsRndv:       reg.Counter("core.sends_rndv"),
		BytesSent:       reg.Counter("core.bytes_sent"),
		RecvsMatched:    reg.Counter("core.recvs_matched"),
		RecvsUnexpected: reg.Counter("core.recvs_unexpected"),
		BytesRecv:       reg.Counter("core.bytes_recv"),
		BytesCopied:     reg.Counter("core.bytes_copied"),
		RecvsZeroCopy:   reg.Counter("core.recvs_zero_copy"),
		Cancelled:       reg.Counter("core.cancelled"),
		PeersLost:       reg.Counter("core.peers_lost"),
	}
}

// Snapshot is a plain-value copy of the counters, including the
// process-wide frame-pool counters at snapshot time.
type Snapshot struct {
	SendsEager, SendsSync, SendsRndv uint64
	BytesSent                        uint64
	RecvsMatched, RecvsUnexpected    uint64
	BytesRecv                        uint64
	BytesCopied                      uint64
	RecvsZeroCopy                    uint64
	Cancelled                        uint64
	PeersLost                        uint64

	// Pool is the frame pool's counter snapshot; Pool.HitRate shows
	// how much of the frame traffic recirculates instead of
	// allocating. The pool is shared by every in-process rank.
	Pool transport.PoolSnapshot

	// Devices breaks traffic down by transport medium: one entry per
	// device this rank's endpoint is composed of ("shm", "tcp",
	// "chan"), each with its own frame/byte counters and — for media
	// with their own buffer pool, like the shared-memory arena — a
	// per-medium pool snapshot.
	Devices []transport.DevStats
}

// Stats returns the engine's counter set.
func (p *Proc) Stats() *Stats { return &p.stats }

// Obs returns the engine's performance/control-variable registry.
func (p *Proc) Obs() *obs.Registry { return p.reg }

// Recorder returns the engine's flight recorder; nil when tracing is
// disabled (every Recorder method is nil-safe, so callers thread the
// pointer through unconditionally).
func (p *Proc) Recorder() *obs.Recorder { return p.rec }

// StatsSnapshot copies the current counter values.
func (p *Proc) StatsSnapshot() Snapshot {
	s := &p.stats
	return Snapshot{
		SendsEager:      s.SendsEager.Load(),
		SendsSync:       s.SendsSync.Load(),
		SendsRndv:       s.SendsRndv.Load(),
		BytesSent:       s.BytesSent.Load(),
		RecvsMatched:    s.RecvsMatched.Load(),
		RecvsUnexpected: s.RecvsUnexpected.Load(),
		BytesRecv:       s.BytesRecv.Load(),
		BytesCopied:     s.BytesCopied.Load(),
		RecvsZeroCopy:   s.RecvsZeroCopy.Load(),
		Cancelled:       s.Cancelled.Load(),
		PeersLost:       s.PeersLost.Load(),
		Pool:            transport.PoolStats(),
		Devices:         transport.DeviceStatsOf(p.dev),
	}
}
