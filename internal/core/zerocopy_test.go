package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"gompi/internal/transport"
)

// TestIrecvIntoEager checks that an eager payload lands directly in the
// caller's buffer.
func TestIrecvIntoEager(t *testing.T) {
	p0, p1 := newPair(t, Config{})
	payload := []byte("into the buffer")
	if _, err := p0.Isend(0, 0, 1, 4, payload, ModeStandard, false); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	rreq := p1.IrecvInto(0, 0, 4, buf, 1)
	st := rreq.Wait()
	if st.Err != nil {
		t.Fatalf("unexpected error %v", st.Err)
	}
	if st.Bytes != len(payload) || !bytes.Equal(buf[:st.Bytes], payload) {
		t.Fatalf("deposited %q (%d bytes)", buf[:st.Bytes], st.Bytes)
	}
	if rreq.Payload != nil {
		t.Fatal("receive-into must not expose a payload alias")
	}
	rreq.Recycle()
}

// TestIrecvIntoRendezvous checks the rendezvous DATA path deposits into
// the posted buffer without cloning.
func TestIrecvIntoRendezvous(t *testing.T) {
	p0, p1 := newPair(t, Config{EagerLimit: 16})
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	buf := make([]byte, 4096)
	rreq := p1.IrecvInto(0, 0, 9, buf, 1)
	sreq, err := p0.Isend(0, 0, 1, 9, payload, ModeStandard, false)
	if err != nil {
		t.Fatal(err)
	}
	st := rreq.Wait()
	sreq.Wait()
	if st.Err != nil || st.Bytes != len(payload) || !bytes.Equal(buf, payload) {
		t.Fatalf("rendezvous into: bytes=%d err=%v", st.Bytes, st.Err)
	}
}

// TestIrecvIntoTruncate checks MPI_ERR_TRUNCATE semantics: a too-small
// buffer is filled to capacity, the status carries ErrTruncated, and the
// frame pool is not corrupted (subsequent traffic still round-trips).
func TestIrecvIntoTruncate(t *testing.T) {
	for name, cfg := range map[string]Config{"eager": {}, "rndv": {EagerLimit: 4}} {
		t.Run(name, func(t *testing.T) {
			p0, p1 := newPair(t, cfg)
			payload := []byte("0123456789")
			small := make([]byte, 4)
			rreq := p1.IrecvInto(0, 0, 7, small, 1)
			sreq, err := p0.Isend(0, 0, 1, 7, payload, ModeStandard, false)
			if err != nil {
				t.Fatal(err)
			}
			st := rreq.Wait()
			sreq.Wait()
			if !errors.Is(st.Err, ErrTruncated) {
				t.Fatalf("status error %v, want ErrTruncated", st.Err)
			}
			// Bytes reports the full incoming size; the deposit is the
			// buffer-sized prefix.
			if st.Bytes != len(payload) || string(small) != "0123" {
				t.Fatalf("deposited %q (Bytes=%d)", small, st.Bytes)
			}
			// The pool must still hand out sane buffers: run a full
			// message through the same pair.
			again := []byte("still works")
			if _, err := p0.Isend(0, 0, 1, 8, again, ModeStandard, false); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 32)
			r2 := p1.IrecvInto(0, 0, 8, buf, 1)
			st2 := r2.Wait()
			if st2.Err != nil || !bytes.Equal(buf[:st2.Bytes], again) {
				t.Fatalf("post-truncate round trip corrupted: %q err=%v", buf[:st2.Bytes], st2.Err)
			}
		})
	}
}

// TestIrecvIntoUnexpected covers the unexpected-queue path: the message
// arrives first, the receive-into matches it later and copies out of the
// retained frame.
func TestIrecvIntoUnexpected(t *testing.T) {
	p0, p1 := newPair(t, Config{})
	payload := []byte("queued")
	if _, err := p0.Isend(0, 0, 1, 3, payload, ModeStandard, false); err != nil {
		t.Fatal(err)
	}
	// Wait until the unexpected queue holds it.
	for p1.PendingUnexpected() == 0 {
	}
	buf := make([]byte, 16)
	st := p1.IrecvInto(0, 0, 3, buf, 1).Wait()
	if st.Err != nil || !bytes.Equal(buf[:st.Bytes], payload) {
		t.Fatalf("unexpected-path into: %q err=%v", buf[:st.Bytes], st.Err)
	}
}

// TestFrameReleasedTwice checks that releasing a request's frame twice
// (directly and via Recycle) is harmless.
func TestFrameReleasedTwice(t *testing.T) {
	p0, p1 := newPair(t, Config{})
	if _, err := p0.Isend(0, 0, 1, 5, []byte("twice"), ModeStandard, false); err != nil {
		t.Fatal(err)
	}
	rreq := p1.Irecv(0, 0, 5)
	rreq.Wait()
	rreq.ReleaseFrame()
	rreq.ReleaseFrame() // idempotent
	rreq.Recycle()      // releases again internally; must not double-free

	// Pool integrity: another message still arrives intact.
	if _, err := p0.Isend(0, 0, 1, 6, []byte("after"), ModeStandard, false); err != nil {
		t.Fatal(err)
	}
	r2 := p1.Irecv(0, 0, 6)
	r2.Wait()
	if string(r2.Payload) != "after" {
		t.Fatalf("payload after double release: %q", r2.Payload)
	}
}

// TestRecvAfterCloseWithPooledFrames checks that frames delivered before
// Close stay readable: a receive posted after the engine shut down still
// matches and consumes the queued (pooled) frame.
func TestRecvAfterCloseWithPooledFrames(t *testing.T) {
	devs := transport.NewShmJob(2, 0)
	p0 := NewProc(devs[0], Config{})
	p1 := NewProc(devs[1], Config{})
	msg := []byte("pre-close delivery")
	sreq, err := p0.Isend(0, 0, 1, 2, msg, ModeStandard, false)
	if err != nil {
		t.Fatal(err)
	}
	sreq.Wait()
	for p1.PendingUnexpected() == 0 {
	}
	p0.Close()
	p1.Close()
	// The engine is down but the unexpected queue still owns the frame.
	rreq := p1.Irecv(0, 0, 2)
	st := rreq.Wait()
	if st.Bytes != len(msg) || !bytes.Equal(rreq.Payload, msg) {
		t.Fatalf("post-close receive got %q (%d bytes)", rreq.Payload, st.Bytes)
	}
	if _, err := p0.Isend(0, 0, 1, 2, msg, ModeStandard, false); err == nil {
		t.Fatal("send on closed engine must fail")
	}
}

// TestPooledPingPongZeroAllocs is the allocation-regression guard for
// the tentpole: a steady-state 1 KiB shm ping-pong with pool-recycled
// payloads, receive-into buffers and recycled requests must not allocate
// at all.
func TestPooledPingPongZeroAllocs(t *testing.T) {
	devs := transport.NewShmJob(2, 0)
	p0 := NewProc(devs[0], Config{})
	p1 := NewProc(devs[1], Config{})
	defer p0.Close()
	defer p1.Close()

	const size = 1024
	const tag = 11
	stop := make(chan struct{})
	echoDone := make(chan struct{})
	go func() {
		defer close(echoDone)
		buf := make([]byte, size)
		for {
			rreq := p1.IrecvInto(0, 0, tag, buf, 1)
			rreq.Wait()
			rreq.Recycle()
			select {
			case <-stop:
				return
			default:
			}
			out := transport.GetBuf(size)
			copy(out, buf)
			sreq, err := p1.Isend(0, 1, 0, tag, out, ModeStandard, true)
			if err != nil {
				return
			}
			sreq.Wait()
			sreq.Recycle()
		}
	}()

	recvBuf := make([]byte, size)
	roundTrip := func() {
		out := transport.GetBuf(size)
		sreq, err := p0.Isend(0, 0, 1, tag, out, ModeStandard, true)
		if err != nil {
			t.Error(err)
			return
		}
		rreq := p0.IrecvInto(0, 1, tag, recvBuf, 1)
		rreq.Wait()
		sreq.Wait()
		rreq.Recycle()
		sreq.Recycle()
	}
	// Warm the pools (buffers, requests) before measuring.
	for i := 0; i < 50; i++ {
		roundTrip()
	}
	allocs := testing.AllocsPerRun(200, roundTrip)
	close(stop)
	// Release the echo loop from its posted receive; it observes stop
	// and exits without replying, so only send.
	if sreq, err := p0.Isend(0, 0, 1, tag, transport.GetBuf(size), ModeStandard, true); err == nil {
		sreq.Wait()
		sreq.Recycle()
	}
	<-echoDone

	// Hard budget: the steady-state hot path is allocation-free. The
	// race detector's sync.Pool instrumentation allocates, so the
	// strict budget only holds on uninstrumented builds.
	if !raceEnabled && allocs > 0 {
		t.Fatalf("pooled ping-pong allocates %.1f allocs/op, want 0", allocs)
	}
	if raceEnabled && allocs > 4 {
		t.Fatalf("pooled ping-pong allocates %.1f allocs/op under -race, want <= 4", allocs)
	}
}

// TestPoolStatsCounters checks the observability satellite: pooled
// traffic shows up in hit-rate and bytes-copied counters.
func TestPoolStatsCounters(t *testing.T) {
	p0, p1 := newPair(t, Config{})
	before := p1.StatsSnapshot()
	payload := transport.GetBuf(512)
	if _, err := p0.Isend(0, 0, 1, 21, payload, ModeStandard, true); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	p1.IrecvInto(0, 0, 21, buf, 1).Wait()
	after := p1.StatsSnapshot()
	if got := after.BytesCopied - before.BytesCopied; got != 512 {
		t.Fatalf("BytesCopied delta %d, want 512", got)
	}
	if after.Pool.Gets <= before.Pool.Gets {
		t.Fatal("pool gets did not advance")
	}
	// Zero-copy handover counting: a classic receive transfers the
	// frame instead of copying.
	if _, err := p0.Isend(0, 0, 1, 22, transport.GetBuf(64), ModeStandard, true); err != nil {
		t.Fatal(err)
	}
	r := p1.Irecv(0, 0, 22)
	r.Wait()
	if p1.StatsSnapshot().RecvsZeroCopy <= before.RecvsZeroCopy {
		t.Fatal("zero-copy receive not counted")
	}
	r.Recycle()
}

// TestConcurrentPoolTraffic hammers the pool from several ranks at once;
// run under -race this guards the recycling handoff.
func TestConcurrentPoolTraffic(t *testing.T) {
	const n = 4
	devs := transport.NewShmJob(n, 0)
	procs := make([]*Proc, n)
	for i, d := range devs {
		procs[i] = NewProc(d, Config{EagerLimit: 512})
	}
	defer func() {
		for _, p := range procs {
			p.Close()
		}
	}()
	const msgs = 200
	var wg sync.WaitGroup
	for me := range procs {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			p := procs[me]
			buf := make([]byte, 1024)
			for k := 0; k < msgs; k++ {
				size := 1 + (k*41)%1000 // straddles the eager limit
				dst := (me + 1) % n
				src := (me + n - 1) % n
				out := transport.GetBuf(size)
				for i := range out {
					out[i] = byte(me)
				}
				sreq, err := p.Isend(0, me, dst, k, out, ModeStandard, true)
				if err != nil {
					t.Errorf("isend: %v", err)
					return
				}
				rreq := p.IrecvInto(0, int32(src), int32(k), buf, 1)
				st := rreq.Wait()
				sreq.Wait()
				if st.Err != nil || st.Bytes != size {
					t.Errorf("rank %d msg %d: bytes=%d err=%v", me, k, st.Bytes, st.Err)
					return
				}
				for i := 0; i < st.Bytes; i++ {
					if buf[i] != byte(src) {
						t.Errorf("rank %d msg %d: corrupted at %d", me, k, i)
						return
					}
				}
				rreq.Recycle()
				sreq.Recycle()
			}
		}(me)
	}
	wg.Wait()
}
