package core

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"gompi/internal/transport"
)

func newPair(t *testing.T, cfg Config) (*Proc, *Proc) {
	t.Helper()
	devs := transport.NewShmJob(2, 0)
	p0 := NewProc(devs[0], cfg)
	p1 := NewProc(devs[1], cfg)
	t.Cleanup(func() {
		p0.Close()
		p1.Close()
	})
	return p0, p1
}

func TestEagerSendRecv(t *testing.T) {
	p0, p1 := newPair(t, Config{})
	payload := []byte("hello engine")
	sreq, err := p0.Isend(0, 0, 1, 42, payload, ModeStandard, false)
	if err != nil {
		t.Fatal(err)
	}
	sreq.Wait()
	rreq := p1.Irecv(0, 0, 42)
	st := rreq.Wait()
	if !bytes.Equal(rreq.Payload, payload) {
		t.Fatalf("payload %q", rreq.Payload)
	}
	if st.SourceGroup != 0 || st.Tag != 42 || st.Bytes != len(payload) {
		t.Fatalf("status %+v", st)
	}
}

func TestRendezvousLargeMessage(t *testing.T) {
	p0, p1 := newPair(t, Config{EagerLimit: 64})
	payload := make([]byte, 10_000)
	for i := range payload {
		payload[i] = byte(i)
	}
	sreq, err := p0.Isend(0, 0, 1, 7, payload, ModeStandard, false)
	if err != nil {
		t.Fatal(err)
	}
	// The send must NOT complete before the receive is posted
	// (rendezvous holds the payload).
	if _, done := sreq.Test(); done {
		t.Fatal("rendezvous send completed without a matching receive")
	}
	rreq := p1.Irecv(0, 0, 7)
	st := rreq.Wait()
	sreq.Wait()
	if st.Bytes != len(payload) || !bytes.Equal(rreq.Payload, payload) {
		t.Fatal("rendezvous payload corrupted")
	}
}

func TestForcedRendezvous(t *testing.T) {
	// Negative EagerLimit: even 1-byte messages use RTS/CTS.
	p0, p1 := newPair(t, Config{EagerLimit: -1})
	sreq, err := p0.Isend(0, 0, 1, 1, []byte{9}, ModeStandard, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, done := sreq.Test(); done {
		t.Fatal("forced rendezvous completed eagerly")
	}
	rreq := p1.Irecv(0, 0, 1)
	rreq.Wait()
	sreq.Wait()
	if rreq.Payload[0] != 9 {
		t.Fatal("payload lost")
	}
}

func TestSyncSendWaitsForMatch(t *testing.T) {
	p0, p1 := newPair(t, Config{})
	sreq, err := p0.Isend(0, 0, 1, 3, []byte("sync"), ModeSync, false)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if _, done := sreq.Test(); done {
		t.Fatal("Ssend completed before the receive was posted")
	}
	rreq := p1.Irecv(0, 0, 3)
	rreq.Wait()
	sreq.Wait() // must now complete via the matched ack
}

func TestWildcards(t *testing.T) {
	p0, p1 := newPair(t, Config{})
	if _, err := p0.Isend(0, 0, 1, 5, []byte("a"), ModeStandard, false); err != nil {
		t.Fatal(err)
	}
	rreq := p1.Irecv(0, AnySource, AnyTag)
	st := rreq.Wait()
	if st.SourceGroup != 0 || st.Tag != 5 {
		t.Fatalf("wildcard status %+v", st)
	}
}

func TestMatchingOrder(t *testing.T) {
	p0, p1 := newPair(t, Config{})
	for i := 0; i < 50; i++ {
		if _, err := p0.Isend(0, 0, 1, 9, []byte{byte(i)}, ModeStandard, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		rreq := p1.Irecv(0, 0, 9)
		rreq.Wait()
		if rreq.Payload[0] != byte(i) {
			t.Fatalf("message %d overtaken by %d", i, rreq.Payload[0])
		}
	}
}

func TestContextSeparation(t *testing.T) {
	p0, p1 := newPair(t, Config{})
	// Same (src, tag), two contexts: each receive pulls from its own.
	if _, err := p0.Isend(4, 0, 1, 1, []byte("ctx4"), ModeStandard, false); err != nil {
		t.Fatal(err)
	}
	if _, err := p0.Isend(6, 0, 1, 1, []byte("ctx6"), ModeStandard, false); err != nil {
		t.Fatal(err)
	}
	r6 := p1.Irecv(6, 0, 1)
	r6.Wait()
	if string(r6.Payload) != "ctx6" {
		t.Fatalf("ctx6 got %q", r6.Payload)
	}
	r4 := p1.Irecv(4, 0, 1)
	r4.Wait()
	if string(r4.Payload) != "ctx4" {
		t.Fatalf("ctx4 got %q", r4.Payload)
	}
}

func TestPostedBeforeArrival(t *testing.T) {
	p0, p1 := newPair(t, Config{})
	rreq := p1.Irecv(0, 0, 2)
	go func() {
		time.Sleep(5 * time.Millisecond)
		p0.Isend(0, 0, 1, 2, []byte("late"), ModeStandard, false) //nolint:errcheck
	}()
	st := rreq.Wait()
	if st.Bytes != 4 {
		t.Fatalf("status %+v", st)
	}
}

func TestProbeAndIprobe(t *testing.T) {
	p0, p1 := newPair(t, Config{})
	if _, ok := p1.Iprobe(0, AnySource, AnyTag); ok {
		t.Fatal("Iprobe saw a ghost message")
	}
	if _, err := p0.Isend(0, 0, 1, 11, []byte("probe me"), ModeStandard, false); err != nil {
		t.Fatal(err)
	}
	st, err := p1.Probe(0, AnySource, 11)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes != 8 || st.Tag != 11 {
		t.Fatalf("probe status %+v", st)
	}
	// The message is still there.
	if _, ok := p1.Iprobe(0, 0, 11); !ok {
		t.Fatal("Iprobe lost the message after Probe")
	}
	rreq := p1.Irecv(0, 0, 11)
	rreq.Wait()
	if p1.PendingUnexpected() != 0 {
		t.Fatal("unexpected queue not drained")
	}
}

func TestProbeSeesRendezvousSize(t *testing.T) {
	p0, p1 := newPair(t, Config{EagerLimit: 16})
	payload := make([]byte, 1000)
	if _, err := p0.Isend(0, 0, 1, 13, payload, ModeStandard, false); err != nil {
		t.Fatal(err)
	}
	st, err := p1.Probe(0, 0, 13)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes != 1000 {
		t.Fatalf("probe of RTS advertises %d bytes, want 1000", st.Bytes)
	}
	rreq := p1.Irecv(0, 0, 13)
	rreq.Wait()
}

func TestCancelRecv(t *testing.T) {
	_, p1 := newPair(t, Config{})
	rreq := p1.Irecv(0, 0, 99)
	if !p1.Cancel(rreq) {
		t.Fatal("cancel of unmatched receive failed")
	}
	st := rreq.Wait()
	if !st.Cancelled {
		t.Fatal("status not marked cancelled")
	}
	// Cancelling again is a no-op.
	if p1.Cancel(rreq) {
		t.Fatal("double cancel succeeded")
	}
}

func TestCancelSendRendezvous(t *testing.T) {
	p0, _ := newPair(t, Config{EagerLimit: -1})
	sreq, err := p0.Isend(0, 0, 1, 1, []byte("never"), ModeStandard, false)
	if err != nil {
		t.Fatal(err)
	}
	if !p0.Cancel(sreq) {
		t.Fatal("cancel of ungran rendezvous send failed")
	}
	if st := sreq.Wait(); !st.Cancelled {
		t.Fatal("send status not cancelled")
	}
}

func TestWaitAny(t *testing.T) {
	p0, p1 := newPair(t, Config{})
	r1 := p1.Irecv(0, 0, 21)
	r2 := p1.Irecv(0, 0, 22)
	go func() {
		time.Sleep(5 * time.Millisecond)
		p0.Isend(0, 0, 1, 22, []byte("two"), ModeStandard, false) //nolint:errcheck
	}()
	idx := p1.WaitAny([]*Request{r1, r2})
	if idx != 1 {
		t.Fatalf("WaitAny = %d, want 1", idx)
	}
	if idx := p1.WaitAny([]*Request{nil, nil}); idx != -1 {
		t.Fatalf("WaitAny(nil,nil) = %d, want -1", idx)
	}
	p1.Cancel(r1)
}

func TestConcurrentTraffic(t *testing.T) {
	devs := transport.NewShmJob(4, 0)
	procs := make([]*Proc, 4)
	for i, d := range devs {
		procs[i] = NewProc(d, Config{EagerLimit: 128})
	}
	defer func() {
		for _, p := range procs {
			p.Close()
		}
	}()
	const msgs = 100
	var wg sync.WaitGroup
	for me := range procs {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			p := procs[me]
			var reqs []*Request
			for k := 0; k < msgs; k++ {
				for dst := range procs {
					if dst == me {
						continue
					}
					size := 1 + (k*37)%300 // straddles the eager limit
					payload := bytes.Repeat([]byte{byte(me)}, size)
					sreq, err := p.Isend(0, me, dst, k, payload, ModeStandard, false)
					if err != nil {
						t.Errorf("isend: %v", err)
						return
					}
					reqs = append(reqs, sreq)
				}
			}
			for k := 0; k < msgs; k++ {
				for src := range procs {
					if src == me {
						continue
					}
					rreq := p.Irecv(0, int32(src), int32(k))
					reqs = append(reqs, rreq)
				}
			}
			for _, r := range reqs {
				r.Wait()
			}
		}(me)
	}
	wg.Wait()
}

func TestContextAllocation(t *testing.T) {
	p0, _ := newPair(t, Config{})
	base := p0.AllocContexts()
	if base < 2 {
		t.Fatalf("initial context base %d reserved for world", base)
	}
	p0.CommitContexts(base)
	if next := p0.AllocContexts(); next != base+2 {
		t.Fatalf("after commit: %d, want %d", next, base+2)
	}
	// Commit of an older base must not move the counter backwards.
	p0.CommitContexts(base - 2)
	if next := p0.AllocContexts(); next != base+2 {
		t.Fatalf("backwards commit moved counter to %d", next)
	}
}

func TestCloseIdempotent(t *testing.T) {
	devs := transport.NewShmJob(2, 0)
	p := NewProc(devs[0], Config{})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	devs[1].Close()
}

func TestStatsProtocolSelection(t *testing.T) {
	p0, p1 := newPair(t, Config{EagerLimit: 64})
	// Small standard: eager. Large standard: rendezvous. Small sync.
	small := make([]byte, 16)
	large := make([]byte, 1000)
	r1 := p1.Irecv(0, 0, 1) // posted before arrival
	sreq, err := p0.Isend(0, 0, 1, 1, small, ModeStandard, false)
	if err != nil {
		t.Fatal(err)
	}
	r1.Wait()
	sreq.Wait()
	if sreq, err = p0.Isend(0, 0, 1, 2, large, ModeStandard, false); err != nil {
		t.Fatal(err)
	}
	r2 := p1.Irecv(0, 0, 2)
	r2.Wait()
	sreq.Wait()
	if sreq, err = p0.Isend(0, 0, 1, 3, small, ModeSync, false); err != nil {
		t.Fatal(err)
	}
	r3 := p1.Irecv(0, 0, 3) // arrives unexpected first? ordering: sync sent before post
	r3.Wait()
	sreq.Wait()

	s0 := p0.StatsSnapshot()
	if s0.SendsEager != 1 || s0.SendsRndv != 1 || s0.SendsSync != 1 {
		t.Fatalf("sender stats: %+v", s0)
	}
	if s0.BytesSent != 16+1000+16 {
		t.Fatalf("bytes sent: %d", s0.BytesSent)
	}
	s1 := p1.StatsSnapshot()
	if s1.RecvsMatched+s1.RecvsUnexpected != 3 {
		t.Fatalf("receiver stats: %+v", s1)
	}
	if s1.RecvsMatched < 1 {
		t.Fatalf("posted-first receive not counted as matched: %+v", s1)
	}
	if s1.BytesRecv != 16+1000+16 {
		t.Fatalf("bytes recv: %d", s1.BytesRecv)
	}
}

func TestStatsCancelled(t *testing.T) {
	_, p1 := newPair(t, Config{})
	r := p1.Irecv(0, 0, 50)
	p1.Cancel(r)
	if got := p1.StatsSnapshot().Cancelled; got != 1 {
		t.Fatalf("cancelled count %d", got)
	}
}
