// Package core implements the message-passing progress engine under the
// public mpi binding: envelope matching with wildcards, the eager and
// rendezvous (RTS/CTS/DATA) wire protocols, send modes, unexpected-message
// queuing, probe, cancel, and request completion. It is the layer that a
// native MPI (MPICH, WMPI) provides in the paper; here it is built from
// scratch over the transport device abstraction.
package core

import (
	"encoding/binary"
	"fmt"

	"gompi/internal/transport"
)

// Frame kinds.
const (
	kEager     byte = iota // complete message, payload inline
	kEagerSync             // eager message requiring a matched ack (Ssend)
	kRts                   // rendezvous request-to-send, payload held at sender
	kCts                   // clear-to-send, receiver matched an RTS
	kData                  // rendezvous payload
	kAck                   // matched-ack for kEagerSync
	kRevoke                // communicator revocation (ULFM MPI_Comm_revoke)
)

// Wildcards used in receive matching. The public binding maps its own
// constants onto these.
const (
	AnySource int32 = -111
	AnyTag    int32 = -112
)

// envelope is the matching triple carried by every message-bearing frame,
// plus the sender's world rank for reply routing.
type envelope struct {
	srcWorld int32
	ctx      int32
	srcGroup int32 // sender's rank within the communicator's group
	tag      int32
}

// frame header layout after the kind byte. Headers are built into pooled
// buffers and shipped with Sendv, so the payload is never copied into a
// contiguous frame on the send side:
//
//	kEager/kEagerSync: env(16) id(8) | payload
//	kRts:              env(16) id(8) size(4)
//	kCts:              srcWorld(4) id(8) recvID(8)
//	kData:             srcWorld(4) recvID(8) | payload
//	kAck:              srcWorld(4) id(8)
//	kRevoke:           srcWorld(4) ctx(4)
const envLen = 16

func putEnv(b []byte, e envelope) {
	binary.LittleEndian.PutUint32(b[0:], uint32(e.srcWorld))
	binary.LittleEndian.PutUint32(b[4:], uint32(e.ctx))
	binary.LittleEndian.PutUint32(b[8:], uint32(e.srcGroup))
	binary.LittleEndian.PutUint32(b[12:], uint32(e.tag))
}

func getEnv(b []byte) envelope {
	return envelope{
		srcWorld: int32(binary.LittleEndian.Uint32(b[0:])),
		ctx:      int32(binary.LittleEndian.Uint32(b[4:])),
		srcGroup: int32(binary.LittleEndian.Uint32(b[8:])),
		tag:      int32(binary.LittleEndian.Uint32(b[12:])),
	}
}

// buildEagerHdr builds the header of an eager frame; the payload travels
// separately through the device's scatter-gather send.
func buildEagerHdr(sync bool, e envelope, id uint64) []byte {
	f := transport.GetBuf(1 + envLen + 8)
	f[0] = kEager
	if sync {
		f[0] = kEagerSync
	}
	putEnv(f[1:], e)
	binary.LittleEndian.PutUint64(f[1+envLen:], id)
	return f
}

func buildRts(e envelope, id uint64, size int) []byte {
	f := transport.GetBuf(1 + envLen + 8 + 4)
	f[0] = kRts
	putEnv(f[1:], e)
	binary.LittleEndian.PutUint64(f[1+envLen:], id)
	binary.LittleEndian.PutUint32(f[1+envLen+8:], uint32(size))
	return f
}

func buildCts(srcWorld int32, id, recvID uint64) []byte {
	f := transport.GetBuf(1 + 4 + 8 + 8)
	f[0] = kCts
	binary.LittleEndian.PutUint32(f[1:], uint32(srcWorld))
	binary.LittleEndian.PutUint64(f[5:], id)
	binary.LittleEndian.PutUint64(f[13:], recvID)
	return f
}

// buildDataHdr builds the header of a rendezvous DATA frame; the payload
// travels separately through Sendv.
func buildDataHdr(srcWorld int32, recvID uint64) []byte {
	f := transport.GetBuf(1 + 4 + 8)
	f[0] = kData
	binary.LittleEndian.PutUint32(f[1:], uint32(srcWorld))
	binary.LittleEndian.PutUint64(f[5:], recvID)
	return f
}

func buildAck(srcWorld int32, id uint64) []byte {
	f := transport.GetBuf(1 + 4 + 8)
	f[0] = kAck
	binary.LittleEndian.PutUint32(f[1:], uint32(srcWorld))
	binary.LittleEndian.PutUint64(f[5:], id)
	return f
}

// buildRevoke builds a revocation notice for the communicator whose
// point-to-point context is ctx (the pair base).
func buildRevoke(srcWorld, ctx int32) []byte {
	f := transport.GetBuf(1 + 4 + 4)
	f[0] = kRevoke
	binary.LittleEndian.PutUint32(f[1:], uint32(srcWorld))
	binary.LittleEndian.PutUint32(f[5:], uint32(ctx))
	return f
}

// PatchFrameSource overwrites the sender world rank a frame carries.
// Every frame kind stores it in the same place — the four bytes after
// the kind byte (the envelope's srcWorld for kEager/kEagerSync/kRts,
// the bare srcWorld field for kCts/kData/kAck/kRevoke) — so a boundary
// that renumbers peers (the dynamic-process fabric, where each process
// assigns late-joining peers its own local indices) can rewrite the
// sender's self-assigned rank to the receiver's index for that peer
// with one fixed-offset store, before the engine parses the frame.
func PatchFrameSource(data []byte, src int32) error {
	if len(data) < 5 {
		return fmt.Errorf("core: frame too short to carry a source rank (%d bytes)", len(data))
	}
	binary.LittleEndian.PutUint32(data[1:5], uint32(src))
	return nil
}

// parsed is a decoded incoming frame. payload aliases the transport
// frame's storage (or, over shm, the sender's payload buffer); frame
// retains ownership so the engine can release or transfer it.
type parsed struct {
	kind    byte
	env     envelope
	id      uint64
	recvID  uint64
	size    int
	payload []byte
	frame   transport.Frame
}

func parseFrame(f transport.Frame) (parsed, error) {
	hdr := f.Data
	if len(hdr) < 1 {
		return parsed{frame: f}, fmt.Errorf("core: empty frame")
	}
	p := parsed{kind: hdr[0], frame: f}
	body := hdr[1:]
	// inline returns the payload tail: the separately delivered payload
	// when the frame arrived scatter-gather, else the bytes after the
	// header.
	inline := func(hdrLen int) []byte {
		if f.Payload != nil {
			return f.Payload
		}
		return body[hdrLen:]
	}
	switch p.kind {
	case kEager, kEagerSync:
		if len(body) < envLen+8 {
			return p, fmt.Errorf("core: short eager frame (%d bytes)", len(hdr))
		}
		p.env = getEnv(body)
		p.id = binary.LittleEndian.Uint64(body[envLen:])
		p.payload = inline(envLen + 8)
	case kRts:
		if len(body) < envLen+12 {
			return p, fmt.Errorf("core: short rts frame (%d bytes)", len(hdr))
		}
		p.env = getEnv(body)
		p.id = binary.LittleEndian.Uint64(body[envLen:])
		p.size = int(binary.LittleEndian.Uint32(body[envLen+8:]))
	case kCts:
		if len(body) < 20 {
			return p, fmt.Errorf("core: short cts frame (%d bytes)", len(hdr))
		}
		p.env.srcWorld = int32(binary.LittleEndian.Uint32(body))
		p.id = binary.LittleEndian.Uint64(body[4:])
		p.recvID = binary.LittleEndian.Uint64(body[12:])
	case kData:
		if len(body) < 12 {
			return p, fmt.Errorf("core: short data frame (%d bytes)", len(hdr))
		}
		p.env.srcWorld = int32(binary.LittleEndian.Uint32(body))
		p.recvID = binary.LittleEndian.Uint64(body[4:])
		p.payload = inline(12)
	case kAck:
		if len(body) < 12 {
			return p, fmt.Errorf("core: short ack frame (%d bytes)", len(hdr))
		}
		p.env.srcWorld = int32(binary.LittleEndian.Uint32(body))
		p.id = binary.LittleEndian.Uint64(body[4:])
	case kRevoke:
		if len(body) < 8 {
			return p, fmt.Errorf("core: short revoke frame (%d bytes)", len(hdr))
		}
		p.env.srcWorld = int32(binary.LittleEndian.Uint32(body))
		p.env.ctx = int32(binary.LittleEndian.Uint32(body[4:]))
	default:
		return p, fmt.Errorf("core: unknown frame kind %d", p.kind)
	}
	return p, nil
}
