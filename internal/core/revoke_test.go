package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"gompi/internal/transport"
)

// waitStatus waits for req with a test-failure timeout, so a revocation
// bug shows up as a message instead of a hung suite.
func waitStatus(t *testing.T, req *Request) *Status {
	t.Helper()
	done := make(chan *Status, 1)
	go func() { done <- req.Wait() }()
	select {
	case st := <-done:
		return st
	case <-time.After(10 * time.Second):
		t.Fatal("request still blocked")
		return nil
	}
}

// TestRevokeFailsPendingAndFuture: revoking a context completes every
// pinned operation with ErrCommRevoked and fails later ones fast, on
// both the point-to-point contexts of the pair.
func TestRevokeFailsPendingAndFuture(t *testing.T) {
	procs := loopbackProcs(t, 2)
	p := procs[0]

	pending := p.Irecv(0, 1, 7)
	pendingColl := p.Irecv(1, AnySource, AnyTag)
	p.Revoke(0)

	if !p.ContextRevoked(0) {
		t.Fatal("ContextRevoked(0) = false after Revoke")
	}
	for _, req := range []*Request{pending, pendingColl} {
		if st := waitStatus(t, req); !errors.Is(st.Err, ErrCommRevoked) {
			t.Fatalf("pending recv error = %v, want ErrCommRevoked", st.Err)
		}
	}

	// Future operations on the pair fail at post time.
	sreq, err := p.Isend(0, 0, 1, 3, []byte("x"), ModeStandard, false)
	if !errors.Is(err, ErrCommRevoked) {
		t.Fatalf("Isend on revoked ctx: err = %v, want ErrCommRevoked", err)
	}
	if st, ok := sreq.Test(); !ok || !errors.Is(st.Err, ErrCommRevoked) {
		t.Fatalf("send request on revoked ctx: completed=%v err=%v", ok, st.Err)
	}
	rreq := p.Irecv(1, 1, 3)
	if st, ok := rreq.Test(); !ok || !errors.Is(st.Err, ErrCommRevoked) {
		t.Fatalf("recv posted on revoked ctx: completed=%v st=%+v", ok, st)
	}
	if _, err := p.Probe(0, 1, 3); !errors.Is(err, ErrCommRevoked) {
		t.Fatalf("Probe on revoked ctx: err = %v, want ErrCommRevoked", err)
	}
}

// TestRevokePropagates: a revocation issued on one rank poisons the
// context on every member it can reach, without any user traffic.
func TestRevokePropagates(t *testing.T) {
	procs := loopbackProcs(t, 3)

	// Rank 2's pending receive from rank 1 must be poisoned by a
	// revocation that rank 0 issues.
	pending := procs[2].Irecv(0, 1, 9)
	procs[0].Revoke(0)

	if st := waitStatus(t, pending); !errors.Is(st.Err, ErrCommRevoked) {
		t.Fatalf("remote pending recv error = %v, want ErrCommRevoked", st.Err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, p := range procs {
		for !p.ContextRevoked(0) {
			if time.Now().After(deadline) {
				t.Fatalf("rank %d never observed the revocation", p.Rank())
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestRevokeRecoveryTagExempt: recovery-tagged traffic (the agreement
// under Shrink) must flow on a revoked context in both directions.
func TestRevokeRecoveryTagExempt(t *testing.T) {
	procs := loopbackProcs(t, 2)
	procs[0].Revoke(0)
	deadline := time.Now().Add(10 * time.Second)
	for !procs[1].ContextRevoked(0) {
		if time.Now().After(deadline) {
			t.Fatal("rank 1 never observed the revocation")
		}
		time.Sleep(time.Millisecond)
	}

	tag := int(RecoveryTag) | 5
	rreq := procs[1].Irecv(0, 0, int32(tag))
	sreq, err := procs[0].Isend(0, 0, 1, tag, []byte("repair"), ModeStandard, false)
	if err != nil {
		t.Fatalf("recovery-tagged Isend on revoked ctx: %v", err)
	}
	if st := waitStatus(t, sreq); st.Err != nil {
		t.Fatalf("recovery-tagged send error: %v", st.Err)
	}
	if st := waitStatus(t, rreq); st.Err != nil || string(rreq.Payload) != "repair" {
		t.Fatalf("recovery-tagged recv: %+v payload %q", st, rreq.Payload)
	}
	rreq.Recycle()
}

// TestRevokeIdempotentAndWildcardNegativeTags: re-revoking is a no-op,
// and the wildcard tag constants (negative, so naively carrying bit 30)
// must not be mistaken for recovery traffic.
func TestRevokeIdempotentAndWildcardNegativeTags(t *testing.T) {
	if isRecoveryTag(AnyTag) || isRecoveryTag(AnySource) {
		t.Fatal("negative wildcard misclassified as recovery tag")
	}
	procs := loopbackProcs(t, 2)
	p := procs[0]
	p.Revoke(0)
	p.Revoke(0) // dup: must not double-complete or re-flood

	// A wildcard receive posted after revocation fails fast.
	rreq := p.Irecv(0, AnySource, AnyTag)
	if st, ok := rreq.Test(); !ok || !errors.Is(st.Err, ErrCommRevoked) {
		t.Fatalf("wildcard recv on revoked ctx: completed=%v st=%+v", ok, st)
	}
}

// TestDerivedContextPeerLoss: with a registered group table, a receive
// on a derived context pinned to a dead member's *group* rank is failed
// by the engine, proving attribution works through the rank remap.
func TestDerivedContextPeerLoss(t *testing.T) {
	procs := loopbackProcs(t, 3)
	const base = 4
	// Derived comm {world 0, world 2}: group rank 1 is world rank 2.
	procs[0].RegisterGroup(base, []int{0, 2})

	rreq := procs[0].Irecv(base, 1, 3)
	procs[2].Close()

	if st := waitStatus(t, rreq); st.Err == nil {
		t.Fatal("derived-ctx recv pinned to dead peer never failed")
	} else {
		var pl *transport.PeerLostError
		if !errors.As(st.Err, &pl) || pl.Peer != 2 {
			t.Fatalf("derived-ctx recv error = %v, want loss of world rank 2", st.Err)
		}
	}
	if got := procs[0].DownPeers(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("DownPeers = %v, want [2]", got)
	}
	if !procs[0].PeerDown(2) || procs[0].PeerDown(1) {
		t.Fatal("PeerDown attribution wrong")
	}
}

// TestFailedRequestObserversIdempotent: once a request completed with a
// failure, every completion API — Wait, repeated Wait, Test, WaitCtx,
// WaitAny — must report the same terminal status without blocking,
// double-completing, or double-releasing pooled storage.
func TestFailedRequestObserversIdempotent(t *testing.T) {
	procs := loopbackProcs(t, 2)
	rreq := procs[0].Irecv(0, 1, 7)
	other := procs[0].Irecv(0, AnySource, 8) // never completes
	procs[1].Close()

	st1 := waitStatus(t, rreq)
	if st1.Err == nil {
		t.Fatal("recv pinned to dead peer completed cleanly")
	}
	st2 := rreq.Wait() // second Wait must return immediately
	if st2 != st1 || !errors.Is(st2.Err, st1.Err) {
		t.Fatalf("second Wait: %+v, want the same terminal status", st2)
	}
	if st, ok := rreq.Test(); !ok || st.Err == nil {
		t.Fatalf("Test after failure: ok=%v st=%+v", ok, st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if st, err := rreq.WaitCtx(ctx); err != nil || st.Err == nil {
		t.Fatalf("WaitCtx after failure: st=%+v err=%v", st, err)
	}
	if idx := procs[0].WaitAny([]*Request{other, rreq}); idx != 1 {
		t.Fatalf("WaitAny = %d, want the failed request (1)", idx)
	}
	// Recycle exactly once; the pooled frame (nil here) must not be
	// double-released by the observers above.
	rreq.Recycle()
	procs[0].Cancel(other)
}

// TestFailedSendObserversIdempotent is the send-side twin: a rendezvous
// send whose peer dies completes with the loss once, observable through
// every API, with its retained payload returned to the pool exactly once.
func TestFailedSendObserversIdempotent(t *testing.T) {
	procs := loopbackProcs(t, 2)
	// Rendezvous-sized payload so the send parks awaiting CTS.
	payload := transport.GetBuf(DefaultEagerLimit + 1)
	sreq, err := procs[0].Isend(0, 0, 1, 7, payload, ModeStandard, true)
	if err != nil {
		t.Fatal(err)
	}
	procs[1].Close()

	st1 := waitStatus(t, sreq)
	if st1.Err == nil {
		t.Fatal("rendezvous send to dead peer completed cleanly")
	}
	if st, ok := sreq.Test(); !ok || st.Err == nil {
		t.Fatalf("Test after send failure: ok=%v st=%+v", ok, st)
	}
	st2 := sreq.Wait()
	if st2 != st1 {
		t.Fatal("second Wait returned a different status")
	}
	sreq.Recycle()
}
