package core

import (
	"context"
	"sync"

	"gompi/internal/transport"
)

// Mode selects the MPI send mode semantics for a core send operation.
type Mode uint8

// Send modes. Buffered sends are realized in the binding layer (which
// owns the attached buffer) on top of ModeStandard.
const (
	// ModeStandard completes when the message payload is safely
	// buffered or delivered (eager), or once the rendezvous data has
	// been shipped (large messages).
	ModeStandard Mode = iota
	// ModeSync completes only after the receiver has matched the
	// message (MPI_Ssend).
	ModeSync
	// ModeReady asserts a matching receive is already posted
	// (MPI_Rsend). The engine transmits it as a standard send; posting
	// without a matching receive is erroneous per the MPI standard.
	ModeReady
)

// Status carries the completion information of a core operation.
type Status struct {
	// SourceGroup is the sender's rank within the communicator group
	// the message was sent on.
	SourceGroup int
	// Tag is the message tag.
	Tag int
	// Bytes is the incoming payload length in wire bytes — for a
	// truncated receive-into operation still the full message size,
	// like an ordinary receive; the deposited prefix is
	// min(Bytes, len(buf)).
	Bytes int
	// Cancelled reports whether the operation completed by
	// cancellation.
	Cancelled bool
	// Err is a completion-time error: ErrTruncated when a receive-into
	// buffer was smaller than the incoming message.
	Err error
}

type reqKind uint8

const (
	reqSend reqKind = iota
	reqRecv
)

// Request is a pending point-to-point operation. Completion is published
// under the engine lock (and through the lazily created done channel);
// Stat and Payload are written before completion is observable and may
// be read freely after Wait/Test observe it.
type Request struct {
	proc *Proc
	kind reqKind

	// done is created lazily by Done/WaitCtx so completions that are
	// only ever observed through Wait or Test allocate no channel.
	// Guarded by proc.mu.
	done chan struct{}

	// Guarded by proc.mu until completion.
	completed bool

	// onDone, when set, runs exactly once at completion — synchronously,
	// under the engine lock. Guarded by proc.mu. See OnDone.
	onDone func()

	// Completion results.
	Stat Status
	// Payload is the receive payload (wire bytes), nil for sends. It
	// may alias pooled frame storage owned by this request; call
	// ReleaseFrame once no reference into it remains.
	Payload []byte

	// frame is the transport frame whose storage Payload aliases; the
	// request owns it until ReleaseFrame.
	frame transport.Frame

	// Receive matching parameters.
	ctx, src, tag int32

	// into, when non-nil, is the caller-owned buffer a receive-into
	// operation deposits the payload in directly; intoES is the wire
	// element size the deposit is floored to (whole elements only).
	into   []byte
	intoES int

	// Send protocol state.
	id       uint64
	data     []byte // retained payload for rendezvous
	size     int    // payload length at Isend time
	recycle  bool   // payload is exclusively owned; pool it downstream
	dstWorld int32
	ctxS     int32 // send-side context (for revocation poisoning)
	tagS     int32 // send-side tag (recovery traffic is revoke-exempt)
}

// reqPool recycles Request allocations for the zero-allocation hot path;
// requests only return here through an explicit Recycle call.
var reqPool = sync.Pool{New: func() any { return new(Request) }}

func newRequest(p *Proc, k reqKind) *Request {
	r := reqPool.Get().(*Request)
	*r = Request{proc: p, kind: k}
	return r
}

// Recycle returns a completed request to the allocation pool. The caller
// must hold the only live reference and must not touch r (including its
// Payload) afterwards; any frame storage the request still owns is
// released first. Recycling an incomplete request is a no-op.
func (r *Request) Recycle() {
	r.proc.mu.Lock()
	ok := r.completed
	r.proc.mu.Unlock()
	if !ok {
		return
	}
	r.frame.Release()
	*r = Request{}
	reqPool.Put(r)
}

// ReleaseFrame returns the pooled frame storage backing Payload (if any)
// to the frame pool. Payload must not be read afterwards. It is
// idempotent.
func (r *Request) ReleaseFrame() {
	r.frame.Release()
	r.Payload = nil
}

// TakePayload transfers ownership of the receive payload — and the
// frame storage backing it — out of the request: a later ReleaseFrame
// or Recycle no longer touches it, so the slice stays valid for as long
// as the caller needs (at the price of that storage not returning to
// the frame pool). Frame storage that does not back the payload (a
// separately delivered header) is released to the pool immediately.
func (r *Request) TakePayload() []byte {
	b := r.Payload
	r.frame.DetachPayload()
	r.Payload = nil
	return b
}

// Done returns a channel closed when the request completes.
func (r *Request) Done() <-chan struct{} {
	p := r.proc
	p.mu.Lock()
	defer p.mu.Unlock()
	return r.doneLocked()
}

func (r *Request) doneLocked() chan struct{} {
	if r.done == nil {
		r.done = make(chan struct{})
		if r.completed {
			close(r.done)
		}
	}
	return r.done
}

// Wait blocks until the request completes and returns its status. It
// parks on the engine's shared completion broadcast, which keeps the
// steady-state hot path allocation-free; the one wakeup per completion
// is amortized across the handful of waiters a rank typically has.
// Workloads parking many goroutines on one rank should prefer Done or
// WaitCtx, whose (lazily allocated) per-request channel wakes exactly
// the right waiter.
func (r *Request) Wait() *Status {
	p := r.proc
	p.mu.Lock()
	for !r.completed {
		p.cond.Wait()
	}
	p.mu.Unlock()
	return &r.Stat
}

// WaitCtx blocks until the request completes or ctx is done. When ctx
// fires first the engine attempts to cancel the operation: if the
// cancellation takes (the receive is still unmatched, or the send's
// rendezvous has not been granted) the request completes with
// Stat.Cancelled set and ctx's error is returned. If the operation has
// already matched, cancellation is impossible — WaitCtx then waits for
// the imminent ordinary completion and returns nil, like Wait.
func (r *Request) WaitCtx(ctx context.Context) (*Status, error) {
	done := r.Done()
	select {
	case <-done:
		return &r.Stat, nil
	default:
	}
	select {
	case <-done:
		return &r.Stat, nil
	case <-ctx.Done():
		if r.proc.Cancel(r) {
			return &r.Stat, ctx.Err()
		}
		<-done
		return &r.Stat, nil
	}
}

// Test reports whether the request has completed, returning the status
// if so.
func (r *Request) Test() (*Status, bool) {
	p := r.proc
	p.mu.Lock()
	ok := r.completed
	p.mu.Unlock()
	if !ok {
		return nil, false
	}
	return &r.Stat, true
}

// IsRecv reports whether this is a receive request.
func (r *Request) IsRecv() bool { return r.kind == reqRecv }

// OnDone arranges for fn to run exactly once when the request completes.
// If the request has already completed, fn runs immediately on the
// calling goroutine; otherwise it runs at completion time, synchronously
// under the engine lock. fn must therefore be brief and must not call
// back into the engine (no Wait, Cancel, Recycle, Isend, ...) — it is
// meant to flip a flag, decrement a counter, or hand the request off to
// a scheduler queue. At most one callback may be registered per
// operation; registering a second before the first has fired replaces
// it.
func (r *Request) OnDone(fn func()) {
	p := r.proc
	p.mu.Lock()
	if r.completed {
		p.mu.Unlock()
		fn()
		return
	}
	r.onDone = fn
	p.mu.Unlock()
}

// completeLocked finalizes a request. proc.mu must be held.
func (p *Proc) completeLocked(r *Request, payload []byte, st Status) {
	if r.completed {
		return
	}
	r.Payload = payload
	r.Stat = st
	r.completed = true
	if r.done != nil {
		close(r.done)
	}
	if fn := r.onDone; fn != nil {
		r.onDone = nil
		fn()
	}
	p.cond.Broadcast()
}

// complete finalizes a request, taking the engine lock.
func (p *Proc) complete(r *Request, payload []byte, st Status) {
	p.mu.Lock()
	p.completeLocked(r, payload, st)
	p.mu.Unlock()
}
