package core

import "context"

// Mode selects the MPI send mode semantics for a core send operation.
type Mode uint8

// Send modes. Buffered sends are realized in the binding layer (which
// owns the attached buffer) on top of ModeStandard.
const (
	// ModeStandard completes when the message payload is safely
	// buffered or delivered (eager), or once the rendezvous data has
	// been shipped (large messages).
	ModeStandard Mode = iota
	// ModeSync completes only after the receiver has matched the
	// message (MPI_Ssend).
	ModeSync
	// ModeReady asserts a matching receive is already posted
	// (MPI_Rsend). The engine transmits it as a standard send; posting
	// without a matching receive is erroneous per the MPI standard.
	ModeReady
)

// Status carries the completion information of a core operation.
type Status struct {
	// SourceGroup is the sender's rank within the communicator group
	// the message was sent on.
	SourceGroup int
	// Tag is the message tag.
	Tag int
	// Bytes is the payload length in wire bytes.
	Bytes int
	// Cancelled reports whether the operation completed by
	// cancellation.
	Cancelled bool
}

type reqKind uint8

const (
	reqSend reqKind = iota
	reqRecv
)

// Request is a pending point-to-point operation. Completion is published
// by closing done; Stat and Payload are written before the close and may
// be read freely after Wait/Test observe completion.
type Request struct {
	proc *Proc
	kind reqKind
	done chan struct{}

	// Guarded by proc.mu until completion.
	completed bool

	// Completion results.
	Stat    Status
	Payload []byte // receive payload (wire bytes), nil for sends

	// Receive matching parameters.
	ctx, src, tag int32

	// Send protocol state.
	id       uint64
	data     []byte // retained payload for rendezvous
	dstWorld int32
	ctxS     int32 // send-side context (for diagnostics)
}

func newRequest(p *Proc, k reqKind) *Request {
	return &Request{proc: p, kind: k, done: make(chan struct{})}
}

// Done returns a channel closed when the request completes.
func (r *Request) Done() <-chan struct{} { return r.done }

// Wait blocks until the request completes and returns its status.
func (r *Request) Wait() *Status {
	<-r.done
	return &r.Stat
}

// WaitCtx blocks until the request completes or ctx is done. When ctx
// fires first the engine attempts to cancel the operation: if the
// cancellation takes (the receive is still unmatched, or the send's
// rendezvous has not been granted) the request completes with
// Stat.Cancelled set and ctx's error is returned. If the operation has
// already matched, cancellation is impossible — WaitCtx then waits for
// the imminent ordinary completion and returns nil, like Wait.
func (r *Request) WaitCtx(ctx context.Context) (*Status, error) {
	select {
	case <-r.done:
		return &r.Stat, nil
	default:
	}
	select {
	case <-r.done:
		return &r.Stat, nil
	case <-ctx.Done():
		if r.proc.Cancel(r) {
			return &r.Stat, ctx.Err()
		}
		<-r.done
		return &r.Stat, nil
	}
}

// Test reports whether the request has completed, returning the status
// if so.
func (r *Request) Test() (*Status, bool) {
	select {
	case <-r.done:
		return &r.Stat, true
	default:
		return nil, false
	}
}

// IsRecv reports whether this is a receive request.
func (r *Request) IsRecv() bool { return r.kind == reqRecv }

// completeLocked finalizes a request. proc.mu must be held.
func (p *Proc) completeLocked(r *Request, payload []byte, st Status) {
	if r.completed {
		return
	}
	r.Payload = payload
	r.Stat = st
	r.completed = true
	close(r.done)
	p.cond.Broadcast()
}

// complete finalizes a request, taking the engine lock.
func (p *Proc) complete(r *Request, payload []byte, st Status) {
	p.mu.Lock()
	p.completeLocked(r, payload, st)
	p.mu.Unlock()
}
