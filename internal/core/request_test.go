package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestWaitCtxCompleted(t *testing.T) {
	p0, p1 := newPair(t, Config{})
	if _, err := p0.Isend(0, 0, 1, 21, []byte("done"), ModeStandard, false); err != nil {
		t.Fatal(err)
	}
	rreq := p1.Irecv(0, 0, 21)
	rreq.Wait()
	// A completed request returns immediately even under a dead context.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := rreq.WaitCtx(ctx)
	if err != nil {
		t.Fatalf("WaitCtx on completed request: %v", err)
	}
	if st.Bytes != 4 || st.Cancelled {
		t.Fatalf("status %+v", st)
	}
}

func TestWaitCtxCancelsUnmatchedRecv(t *testing.T) {
	_, p1 := newPair(t, Config{})
	rreq := p1.Irecv(0, 0, 22)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	st, err := rreq.WaitCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if !st.Cancelled {
		t.Fatalf("status %+v, want cancelled", st)
	}
	if p1.Stats().Cancelled.Load() != 1 {
		t.Fatal("cancellation not recorded")
	}
}

func TestWaitCtxDeadlineOnMatchedRecvDelivers(t *testing.T) {
	p0, p1 := newPair(t, Config{})
	rreq := p1.Irecv(0, 0, 23)
	go func() {
		time.Sleep(2 * time.Millisecond)
		p0.Isend(0, 0, 1, 23, []byte("racer"), ModeStandard, false) //nolint:errcheck
	}()
	// A generous deadline: the message arrives first, so WaitCtx must
	// deliver it rather than cancel.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := rreq.WaitCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cancelled || string(rreq.Payload) != "racer" {
		t.Fatalf("status %+v payload %q", st, rreq.Payload)
	}
}
