package core

import (
	"errors"
	"testing"
	"time"

	"gompi/internal/transport"
)

// loopbackProcs builds n engines over a real TCP loopback mesh, the
// device whose readLoop converts connection close/reset into
// PeerLostError.
func loopbackProcs(t *testing.T, n int) []*Proc {
	t.Helper()
	devs, err := transport.NewLoopbackJob(n)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*Proc, n)
	for i, d := range devs {
		procs[i] = NewProc(d, Config{})
	}
	t.Cleanup(func() {
		for _, p := range procs {
			p.Close()
		}
	})
	return procs
}

// TestPeerLossFailsPendingRecv is the does-not-hang half of fault
// tolerance: a receive pinned to a peer whose connection dropped must
// complete with the loss as its error instead of blocking forever.
func TestPeerLossFailsPendingRecv(t *testing.T) {
	procs := loopbackProcs(t, 2)
	rreq := procs[0].Irecv(0, 1, 7)

	procs[1].Close() // peer goes away; rank 0 sees the connection drop

	done := make(chan *Status, 1)
	go func() { done <- rreq.Wait() }()
	var st *Status
	select {
	case st = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pending receive still blocked after peer loss")
	}
	var pl *transport.PeerLostError
	if st.Err == nil || !errors.As(st.Err, &pl) {
		t.Fatalf("status error = %v, want PeerLostError", st.Err)
	}
	if pl.Peer != 1 || st.SourceGroup != 1 {
		t.Fatalf("loss attributed to peer %d (source %d), want 1", pl.Peer, st.SourceGroup)
	}
	if got := procs[0].Stats().PeersLost.Load(); got != 1 {
		t.Fatalf("PeersLost = %d, want 1", got)
	}
}

// TestPeerLossFailsFastAfterwards: operations naming an already-lost
// peer fail immediately — sends at Isend time, receives at post time.
func TestPeerLossFailsFastAfterwards(t *testing.T) {
	procs := loopbackProcs(t, 2)
	procs[1].Close()

	// Wait for rank 0's engine to notice the loss.
	deadline := time.Now().Add(10 * time.Second)
	for procs[0].Stats().PeersLost.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("engine never observed peer loss")
		}
		time.Sleep(time.Millisecond)
	}

	var pl *transport.PeerLostError
	sreq, err := procs[0].Isend(0, 0, 1, 3, []byte("x"), ModeStandard, false)
	if err == nil || !errors.As(err, &pl) {
		t.Fatalf("Isend to lost peer: err = %v, want PeerLostError", err)
	}
	if st := sreq.Wait(); st.Err == nil {
		t.Fatal("send request to lost peer completed without error")
	}

	rreq := procs[0].Irecv(0, 1, 3)
	if st, ok := rreq.Test(); !ok || st.Err == nil {
		t.Fatalf("receive posted after loss: completed=%v st=%+v, want immediate error", ok, st)
	}

	if _, err := procs[0].Probe(0, 1, 3); err == nil || !errors.As(err, &pl) {
		t.Fatalf("Probe on lost peer: err = %v, want PeerLostError", err)
	}
}

// TestPeerLossSparesSurvivors: losing one peer must not disturb traffic
// with the rest of the world on the same device.
func TestPeerLossSparesSurvivors(t *testing.T) {
	procs := loopbackProcs(t, 3)
	procs[2].Close()

	deadline := time.Now().Add(10 * time.Second)
	for procs[0].Stats().PeersLost.Load() == 0 || procs[1].Stats().PeersLost.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("survivors never observed the loss")
		}
		time.Sleep(time.Millisecond)
	}

	for round := int32(0); round < 10; round++ {
		rreq := procs[1].Irecv(0, 0, round)
		sreq, err := procs[0].Isend(0, 0, 1, int(round), []byte("still here"), ModeStandard, false)
		if err != nil {
			t.Fatalf("round %d: survivor send: %v", round, err)
		}
		sreq.Wait()
		if st := rreq.Wait(); st.Err != nil || string(rreq.Payload) != "still here" {
			t.Fatalf("round %d: survivor recv: %+v payload %q", round, st, rreq.Payload)
		}
		rreq.Recycle()
	}
}
