//go:build race

package core

// raceEnabled reports that the race detector instruments this build;
// its bookkeeping allocates, so strict allocs/op assertions are skipped.
const raceEnabled = true
