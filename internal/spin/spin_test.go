package spin

import (
	"testing"
	"time"
)

func TestWaitAccuracy(t *testing.T) {
	for _, d := range []time.Duration{
		0,
		20 * time.Microsecond,
		200 * time.Microsecond,
		2 * time.Millisecond,
	} {
		start := time.Now()
		Wait(d)
		got := time.Since(start)
		if got < d {
			t.Errorf("Wait(%v) returned after %v (early)", d, got)
		}
		// Generous overshoot bound: scheduler noise happens, but the
		// hybrid strategy must stay in the right ballpark.
		if d > 0 && got > d+5*time.Millisecond {
			t.Errorf("Wait(%v) took %v (gross overshoot)", d, got)
		}
	}
}

func TestWaitNegative(t *testing.T) {
	start := time.Now()
	Wait(-time.Second)
	if time.Since(start) > time.Millisecond {
		t.Error("negative Wait must return immediately")
	}
}
