// Package spin provides microsecond-accurate delay primitives.
//
// The benchmark calibration profiles (see DESIGN.md) inject artificial
// per-call and per-message costs — the JNI-crossing cost model and the
// 10BaseT link emulation — whose magnitudes are a few tens to a few
// hundreds of microseconds. time.Sleep alone is too coarse at that scale
// on most kernels, so Wait uses a hybrid strategy: sleep for the bulk of
// long delays, then busy-wait the remainder against the monotonic clock.
package spin

import "time"

// sleepFloor is the delay above which we trust time.Sleep for the bulk of
// the wait. Below it we spin; the kernel tick would overshoot badly.
const sleepFloor = 500 * time.Microsecond

// Wait blocks for approximately d with microsecond-level accuracy.
// A zero or negative d returns immediately.
func Wait(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	if d > sleepFloor {
		time.Sleep(d - sleepFloor)
	}
	for time.Now().Before(deadline) {
		// Busy-wait. time.Now is a VDSO call; the loop resolves
		// well under a microsecond on current hardware.
	}
}
