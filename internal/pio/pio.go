// Package pio is the parallel I/O engine underneath mpi.File (MPI-2
// §9): file views over the datatype engine's typemaps, independent
// element I/O through a view, and two-phase collective I/O composed on
// the internal/coll schedule engine (twophase.go).
//
// A view maps a rank-local element index space onto absolute file
// offsets: element k of the view lives at file element
//
//	disp + (k/S)*E + disps[k%S]
//
// where S, E and disps are the filetype's size, extent and typemap —
// the filetype tiles the file from disp, and the rank sees only the
// elements its typemap names (MPI-2 §9.3). All displacements are in
// base elements of the etype's storage class, following the binding's
// element-unit convention; the file itself stores the class's
// little-endian wire format, so files are portable across the SM and
// DM modes and across runs.
//
// The backing store is the host filesystem: every rank holds its own
// *os.File on the same path (goroutine ranks share the path in one
// process, mpirun ranks across processes rely on a shared filesystem),
// and all positioned I/O uses pread/pwrite, which are safe under
// concurrent use of independent handles.
package pio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"gompi/internal/dtype"
)

// DefaultStripe is the default width of the cyclic aggregation stripes
// the two-phase collective I/O partitions the file into (twophase.go).
const DefaultStripe = 64 << 10

// MaxStripe bounds the stripe width: exchange chunks are split at
// stripe boundaries and carry a u32 length on the wire, so stripes
// must keep every chunk under 4 GiB. 1 GiB is already far past any
// useful aggregation granularity.
const MaxStripe = 1 << 30

// ErrView reports a file view the engine cannot serve: a non-basic or
// variable-size etype, or a filetype that is uncommitted, of a
// different storage class, or not monotone non-overlapping.
var ErrView = errors.New("pio: invalid file view")

// ErrClosed reports an operation on a closed file.
var ErrClosed = errors.New("pio: file is closed")

// Error wraps a filesystem failure with the failing operation and
// path; the binding maps it to the MPI_ERR_IO class.
type Error struct {
	Op   string
	Path string
	Err  error
}

func (e *Error) Error() string { return fmt.Sprintf("pio: %s %s: %v", e.Op, e.Path, e.Err) }

func (e *Error) Unwrap() error { return e.Err }

// view is one rank's compiled file view: the filetype's typemap
// flattened into runs plus the constants the span walk needs.
type view struct {
	disp int      // displacement, in base elements
	es   int      // wire size of one base element
	size int      // filetype elements per tile
	ext  int      // filetype extent (tile stride, in base elements)
	runs [][2]int // typemap runs: (offset, length) per run
	cum  []int    // elements before each run (prefix sums)
}

// compileView validates (etype, filetype) and builds the compiled
// form. MPI requires filetype displacements to be non-negative,
// monotonically nondecreasing and (for writes) non-overlapping; the
// engine enforces the strict form, which also guarantees that view
// element order equals file offset order — the invariant the span walk
// and the EOF accounting rely on.
func compileView(disp int, etype, ftype *dtype.Type) (view, error) {
	if disp < 0 {
		return view{}, fmt.Errorf("%w: negative displacement %d", ErrView, disp)
	}
	es := etype.Class().WireSize()
	if es == 0 || etype.Size() != 1 || etype.Extent() != 1 || etype.IsMarker() {
		return view{}, fmt.Errorf("%w: etype %s is not a fixed-size basic type", ErrView, etype.Name())
	}
	switch {
	case ftype.IsMarker():
		return view{}, fmt.Errorf("%w: filetype %s is a bounds marker", ErrView, ftype.Name())
	case !ftype.Committed():
		return view{}, fmt.Errorf("%w: filetype %s not committed", ErrView, ftype.Name())
	case ftype.Class() != etype.Class():
		return view{}, fmt.Errorf("%w: filetype class %s vs etype class %s", ErrView, ftype.Class(), etype.Class())
	case ftype.Size() == 0:
		return view{}, fmt.Errorf("%w: empty filetype %s", ErrView, ftype.Name())
	case !ftype.Monotone():
		return view{}, fmt.Errorf("%w: filetype %s displacements not strictly increasing", ErrView, ftype.Name())
	case ftype.Lb() < 0:
		return view{}, fmt.Errorf("%w: filetype %s has negative lower bound", ErrView, ftype.Name())
	}
	runs := ftype.Runs()
	first := runs[0][0]
	last := runs[len(runs)-1][0] + runs[len(runs)-1][1] - 1
	if first < 0 {
		return view{}, fmt.Errorf("%w: filetype %s has negative displacement", ErrView, ftype.Name())
	}
	if ftype.Extent() <= last-first {
		return view{}, fmt.Errorf("%w: filetype %s tiles overlap (extent %d over span %d)",
			ErrView, ftype.Name(), ftype.Extent(), last-first+1)
	}
	v := view{disp: disp, es: es, size: ftype.Size(), ext: ftype.Extent(), runs: runs}
	v.cum = make([]int, len(runs))
	sum := 0
	for i, r := range runs {
		v.cum[i] = sum
		sum += r[1]
	}
	return v, nil
}

// span is one contiguous file extent, in bytes.
type span struct {
	off int64
	n   int
}

// spans maps the view element range [off, off+n) to its merged file
// extents, in ascending file order (the view invariant).
func (v *view) spans(off, n int) []span {
	if n <= 0 {
		return nil
	}
	var out []span
	k, end := off, off+n
	for k < end {
		tile, w := k/v.size, k%v.size
		ri := sort.SearchInts(v.cum, w+1) - 1
		pos := w - v.cum[ri]
		run := v.runs[ri]
		stretch := run[1] - pos
		if k+stretch > end {
			stretch = end - k
		}
		fileElem := int64(v.disp) + int64(tile)*int64(v.ext) + int64(run[0]+pos)
		bo := fileElem * int64(v.es)
		bn := stretch * v.es
		if last := len(out) - 1; last >= 0 && out[last].off+int64(out[last].n) == bo {
			out[last].n += bn
		} else {
			out = append(out, span{off: bo, n: bn})
		}
		k += stretch
	}
	return out
}

// elemsBelow counts the view elements whose file bytes lie entirely
// below fileBytes — the view-relative size of the file (MPI_SEEK_END).
func (v *view) elemsBelow(fileBytes int64) int64 {
	felems := fileBytes / int64(v.es) // whole elements the file holds
	limit := felems - int64(v.disp)
	if limit <= 0 {
		return 0
	}
	last := int64(v.runs[len(v.runs)-1][0] + v.runs[len(v.runs)-1][1] - 1)
	var full int64 // tiles whose every element lies below limit
	if limit > last {
		full = (limit-last-1)/int64(v.ext) + 1
	}
	total := full * int64(v.size)
	// Walk the (at most two) partially visible tiles after the full ones.
	for tile := full; ; tile++ {
		base := tile * int64(v.ext)
		if base+int64(v.runs[0][0]) >= limit {
			return total
		}
		for _, r := range v.runs {
			for i := 0; i < r[1]; i++ {
				if base+int64(r[0]+i) >= limit {
					return total
				}
				total++
			}
		}
	}
}

// File is one rank's handle on a shared file: an OS handle, the rank's
// compiled view, and its individual file pointer.
type File struct {
	f      *os.File
	path   string
	view   view
	fp     int64 // individual file pointer, in view elements
	stripe int64 // aggregation stripe width, bytes (twophase.go)
	closed bool
}

// Open opens (or creates, per flags) the file at path. The caller
// layers MPI amode semantics — collective agreement, append
// positioning, access checks — on top.
func Open(path string, flags int, perm os.FileMode) (*File, error) {
	f, err := os.OpenFile(path, flags, perm)
	if err != nil {
		return nil, &Error{Op: "open", Path: path, Err: err}
	}
	file := &File{f: f, path: path, stripe: DefaultStripe}
	file.view, _ = compileView(0, dtype.BasicType(dtype.U8), dtype.BasicType(dtype.U8))
	return file, nil
}

// Path returns the file's path.
func (f *File) Path() string { return f.path }

// SetStripe sets the two-phase aggregation stripe width in bytes,
// clamped to [1, MaxStripe]. All ranks of a collective open must use
// the same value; it is a local tuning knob, not a datatype.
func (f *File) SetStripe(bytes int64) {
	if bytes <= 0 {
		return
	}
	if bytes > MaxStripe {
		bytes = MaxStripe
	}
	f.stripe = bytes
}

// SetView installs a new view and resets the individual file pointer
// (MPI_File_set_view semantics).
func (f *File) SetView(disp int, etype, ftype *dtype.Type) error {
	if f.closed {
		return ErrClosed
	}
	v, err := compileView(disp, etype, ftype)
	if err != nil {
		return err
	}
	f.view = v
	f.fp = 0
	return nil
}

// ElemSize returns the wire size of one view element (the etype's).
func (f *File) ElemSize() int { return f.view.es }

// Tell returns the individual file pointer, in view elements.
func (f *File) Tell() int64 { return f.fp }

// SeekSet positions the individual file pointer, in view elements.
func (f *File) SeekSet(pos int64) error {
	if f.closed {
		return ErrClosed
	}
	if pos < 0 {
		return fmt.Errorf("%w: negative seek position %d", ErrView, pos)
	}
	f.fp = pos
	return nil
}

// Advance moves the individual file pointer by n view elements.
func (f *File) Advance(n int64) { f.fp += n }

// ViewSize returns the file's current size in view elements: the
// number of view elements wholly below the file's byte size.
func (f *File) ViewSize() (int64, error) {
	n, err := f.Size()
	if err != nil {
		return 0, err
	}
	return f.view.elemsBelow(n), nil
}

// Size returns the file's size in bytes.
func (f *File) Size() (int64, error) {
	if f.closed {
		return 0, ErrClosed
	}
	st, err := f.f.Stat()
	if err != nil {
		return 0, &Error{Op: "stat", Path: f.path, Err: err}
	}
	return st.Size(), nil
}

// Truncate sets the file's size in bytes.
func (f *File) Truncate(n int64) error {
	if f.closed {
		return ErrClosed
	}
	if err := f.f.Truncate(n); err != nil {
		return &Error{Op: "truncate", Path: f.path, Err: err}
	}
	return nil
}

// Sync flushes the rank's writes to stable storage.
func (f *File) Sync() error {
	if f.closed {
		return ErrClosed
	}
	if err := f.f.Sync(); err != nil {
		return &Error{Op: "sync", Path: f.path, Err: err}
	}
	return nil
}

// Close releases the OS handle. Collective semantics (and
// delete-on-close) belong to the binding.
func (f *File) Close() error {
	if f.closed {
		return ErrClosed
	}
	f.closed = true
	if err := f.f.Close(); err != nil {
		return &Error{Op: "close", Path: f.path, Err: err}
	}
	return nil
}

// WriteView scatters wire (whole view elements) through the view
// starting at view element off, returning the bytes written.
func (f *File) WriteView(off int, wire []byte) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	if len(wire)%f.view.es != 0 {
		return 0, fmt.Errorf("%w: %d payload bytes not a multiple of element size %d", ErrView, len(wire), f.view.es)
	}
	pos := 0
	for _, s := range f.view.spans(off, len(wire)/f.view.es) {
		if _, err := f.f.WriteAt(wire[pos:pos+s.n], s.off); err != nil {
			return pos, &Error{Op: "write", Path: f.path, Err: err}
		}
		pos += s.n
	}
	return pos, nil
}

// ReadView gathers n view elements starting at view element off into a
// fresh wire buffer. got is the number of bytes actually present in
// the file; a read past end-of-file delivers the prefix and zero-fills
// the rest (MPI reads past EOF return fewer elements).
func (f *File) ReadView(off, n int) (wire []byte, got int, err error) {
	if f.closed {
		return nil, 0, ErrClosed
	}
	wire = make([]byte, n*f.view.es)
	pos := 0
	for _, s := range f.view.spans(off, n) {
		m, rerr := f.f.ReadAt(wire[pos:pos+s.n], s.off)
		pos += s.n
		got += m
		if rerr == io.EOF {
			// Spans ascend in file order, so nothing past this point
			// exists either.
			break
		}
		if rerr != nil {
			return wire, got, &Error{Op: "read", Path: f.path, Err: rerr}
		}
	}
	return wire, got, nil
}
