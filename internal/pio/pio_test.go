package pio

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"gompi/internal/coll"
	"gompi/internal/core"
	"gompi/internal/dtype"
	"gompi/internal/transport"
)

func mustVector(t *testing.T, count, blocklen, stride int, c dtype.Class) *dtype.Type {
	t.Helper()
	ft, err := dtype.Vector(count, blocklen, stride, dtype.BasicType(c))
	if err != nil {
		t.Fatal(err)
	}
	ft.Commit()
	return ft
}

func TestViewSpansIdentity(t *testing.T) {
	v, err := compileView(0, dtype.BasicType(dtype.U8), dtype.BasicType(dtype.U8))
	if err != nil {
		t.Fatal(err)
	}
	got := v.spans(3, 5)
	want := []span{{off: 3, n: 5}}
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("spans = %v, want %v", got, want)
	}
}

func TestViewSpansStrided(t *testing.T) {
	// 2 blocks of 3 float64 elements, stride 8: tile covers elements
	// {0,1,2, 8,9,10}, extent 16.
	ft := mustVector(t, 2, 3, 8, dtype.F64)
	v, err := compileView(4, dtype.BasicType(dtype.F64), ft)
	if err != nil {
		t.Fatal(err)
	}
	// First full tile plus the first element of the second tile. The
	// vector's extent is 11 (no UB marker), so the second tile starts
	// at element 11 — adjacent to the first tile's last element, and
	// the span walk merges them.
	got := v.spans(0, 7)
	want := []span{
		{off: (4 + 0) * 8, n: 3 * 8},
		{off: (4 + 8) * 8, n: 4 * 8},
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("spans = %v, want %v", got, want)
	}
	// Mid-run start: elements 1..4 of the view.
	got = v.spans(1, 4)
	want = []span{
		{off: (4 + 1) * 8, n: 2 * 8},
		{off: (4 + 8) * 8, n: 2 * 8},
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("spans = %v, want %v", got, want)
	}
}

func TestViewSpansMergeContiguous(t *testing.T) {
	// blocklen == stride: tiles are dense, spans must merge into one.
	ft := mustVector(t, 2, 4, 4, dtype.U8)
	v, err := compileView(0, dtype.BasicType(dtype.U8), ft)
	if err != nil {
		t.Fatal(err)
	}
	got := v.spans(0, 24)
	if len(got) != 1 || got[0] != (span{off: 0, n: 24}) {
		t.Fatalf("spans = %v, want one merged span of 24", got)
	}
}

func TestCompileViewRejects(t *testing.T) {
	f64 := dtype.BasicType(dtype.F64)
	overlapping, err := dtype.Hvector(2, 3, 2, f64) // stride 2 < blocklen 3
	if err != nil {
		t.Fatal(err)
	}
	overlapping.Commit()
	uncommitted, err := dtype.Vector(2, 1, 4, f64)
	if err != nil {
		t.Fatal(err)
	}
	decreasing, err := dtype.Indexed([]int{1, 1}, []int{5, 0}, f64)
	if err != nil {
		t.Fatal(err)
	}
	decreasing.Commit()
	obj := dtype.BasicType(dtype.Obj)

	cases := []struct {
		name         string
		disp         int
		etype, ftype *dtype.Type
	}{
		{"negative disp", -1, f64, f64},
		{"obj etype", 0, obj, obj},
		{"class mismatch", 0, f64, dtype.BasicType(dtype.U8)},
		{"uncommitted filetype", 0, f64, uncommitted},
		{"overlapping tiles", 0, f64, overlapping},
		{"non-monotone filetype", 0, f64, decreasing},
	}
	for _, tc := range cases {
		if _, err := compileView(tc.disp, tc.etype, tc.ftype); err == nil {
			t.Errorf("%s: compileView accepted", tc.name)
		}
	}
}

func TestElemsBelow(t *testing.T) {
	// Tile: elements {1, 5} of float64, extent 8 → file elements
	// 2+1, 2+5, 2+9, 2+13, ... with disp 2.
	ft, err := dtype.Indexed([]int{1, 1}, []int{1, 5}, dtype.BasicType(dtype.F64))
	if err != nil {
		t.Fatal(err)
	}
	ft.Commit()
	v, err := compileView(2, dtype.BasicType(dtype.F64), ft)
	if err != nil {
		t.Fatal(err)
	}
	// Indexed([1,1],[1,5]) has lb 1, ub 6, so its extent is 5; check
	// every file size against a brute-force walk of the mapping.
	ext := int64(ft.Extent())
	for fb := int64(0); fb < 200; fb += 4 {
		want := int64(0)
		for k := int64(0); ; k++ {
			tile, w := k/2, k%2
			d := int64(1)
			if w == 1 {
				d = 5
			}
			end := (2 + tile*ext + d + 1) * 8
			if end > fb {
				break
			}
			want++
		}
		if got := v.elemsBelow(fb); got != want {
			t.Fatalf("elemsBelow(%d) = %d, want %d", fb, got, want)
		}
	}
}

func TestIndependentRoundTripStrided(t *testing.T) {
	path := filepath.Join(t.TempDir(), "strided.bin")
	f, err := Open(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// View: every other int32 starting at element 1 — one element per
	// two-element tile, the stride pinned with an explicit UB marker.
	ft, err := dtype.Struct(
		[]int{1, 1},
		[]int{0, 2},
		[]*dtype.Type{dtype.BasicType(dtype.I32), dtype.Marker(false, "ub")},
	)
	if err != nil {
		t.Fatal(err)
	}
	ft.Commit()
	if ft.Extent() != 2 || ft.Size() != 1 {
		t.Fatalf("filetype extent=%d size=%d, want 2/1", ft.Extent(), ft.Size())
	}
	if err := f.SetView(1, dtype.BasicType(dtype.I32), ft); err != nil {
		t.Fatal(err)
	}

	// Write view elements 0..4 → file int32 elements 1,3,5,7,9.
	wire, err := dtype.Pack(nil, []int32{10, 11, 12, 13, 14}, 0, 5, dtype.BasicType(dtype.I32))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteView(0, wire); err != nil {
		t.Fatal(err)
	}

	back, got, err := f.ReadView(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != len(wire) || !bytes.Equal(back, wire) {
		t.Fatalf("round trip: got %d bytes %v, want %d bytes %v", got, back, len(wire), wire)
	}

	// The raw file must hold the data at the strided positions.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	whole := make([]int32, 10)
	if _, err := dtype.Unpack(raw, whole, 0, len(raw)/4, dtype.BasicType(dtype.I32)); err != nil {
		t.Fatal(err)
	}
	for i, v := range []int32{10, 11, 12, 13, 14} {
		if whole[1+2*i] != v {
			t.Fatalf("file element %d = %d, want %d (file=%v)", 1+2*i, whole[1+2*i], v, whole)
		}
	}
}

func TestSetStripeClamped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stripe.bin")
	f, err := Open(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.SetStripe(0)
	if f.stripe != DefaultStripe {
		t.Fatalf("stripe after SetStripe(0) = %d, want default %d", f.stripe, DefaultStripe)
	}
	// Exchange chunks carry u32 lengths; oversized stripes must clamp.
	f.SetStripe(8 << 30)
	if f.stripe != MaxStripe {
		t.Fatalf("stripe after SetStripe(8GiB) = %d, want clamp to %d", f.stripe, MaxStripe)
	}
}

func TestReadViewPastEOF(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eof.bin")
	f, err := Open(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteView(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	wire, got, err := f.ReadView(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("got = %d, want 3", got)
	}
	if !bytes.Equal(wire, []byte{1, 2, 3, 0, 0, 0, 0, 0}) {
		t.Fatalf("wire = %v", wire)
	}
}

// runGroup executes fn concurrently on n fresh ranks over a shm
// fabric, with a per-rank pio handle on one shared scratch file.
func runGroup(t *testing.T, n int, path string, flags int, fn func(c *coll.Comm, f *File) (any, error)) []any {
	t.Helper()
	devs := transport.NewShmJob(n, 0)
	procs := make([]*core.Proc, n)
	for i, d := range devs {
		procs[i] = core.NewProc(d, core.Config{EagerLimit: 256})
	}
	defer func() {
		for _, p := range procs {
			p.Close()
		}
	}()
	// Rank 0 creates the file up front; goroutine ranks then open it.
	first, err := Open(path, flags|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	first.Close()

	results := make([]any, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			group := make([]int, n)
			for j := range group {
				group[j] = j
			}
			c := &coll.Comm{
				P:     procs[rank],
				Ctx:   1,
				Rank:  rank,
				Size:  n,
				World: func(gr int) int { return group[gr] },
			}
			f, err := Open(path, flags, 0o644)
			if err != nil {
				errs[rank] = err
				return
			}
			defer f.Close()
			f.SetStripe(64) // tiny stripes: force multi-aggregator routing
			results[rank], errs[rank] = fn(c, f)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	return results
}

func TestTwoPhaseWriteReadRoundTrip(t *testing.T) {
	const n, per = 4, 97 // deliberately not stripe-aligned
	path := filepath.Join(t.TempDir(), "twophase.bin")
	runGroup(t, n, path, os.O_RDWR, func(c *coll.Comm, f *File) (any, error) {
		// Rank r owns bytes [r*per, (r+1)*per): contiguous partition,
		// chunked across aggregators by the 64-byte stripes.
		data := make([]byte, per)
		for i := range data {
			data[i] = byte(c.Rank*31 + i)
		}
		p, err := f.WriteAllPlan(c, c.Rank*per, data)
		if err != nil {
			return nil, err
		}
		if _, err := p.Run(); err != nil {
			return nil, err
		}

		p, err = f.ReadAllPlan(c, c.Rank*per, per)
		if err != nil {
			return nil, err
		}
		res, err := p.Run()
		if err != nil {
			return nil, err
		}
		rr := res.(*ReadResult)
		if rr.Got != per {
			return nil, fmt.Errorf("rank %d: got %d bytes, want %d", c.Rank, rr.Got, per)
		}
		if !bytes.Equal(rr.Wire, data) {
			return nil, fmt.Errorf("rank %d: round trip mismatch", c.Rank)
		}
		return nil, nil
	})
}

func TestTwoPhaseReadPastEOF(t *testing.T) {
	const n = 4
	path := filepath.Join(t.TempDir(), "eofall.bin")
	runGroup(t, n, path, os.O_RDWR, func(c *coll.Comm, f *File) (any, error) {
		// Only 100 bytes exist; every rank asks for a 64-byte block at
		// r*64, so rank 1 runs partially and ranks 2, 3 fully off the
		// end. The barrier orders rank 0's independent write before the
		// collective read.
		if c.Rank == 0 {
			if _, err := f.WriteView(0, make([]byte, 100)); err != nil {
				return nil, err
			}
		}
		if err := c.Barrier(); err != nil {
			return nil, err
		}
		p, err := f.ReadAllPlan(c, c.Rank*64, 64)
		if err != nil {
			return nil, err
		}
		res, err := p.Run()
		if err != nil {
			return nil, err
		}
		rr := res.(*ReadResult)
		want := 100 - c.Rank*64
		if want < 0 {
			want = 0
		}
		if want > 64 {
			want = 64
		}
		if rr.Got != want {
			return nil, fmt.Errorf("rank %d: got %d, want %d", c.Rank, rr.Got, want)
		}
		return nil, nil
	})
}

func TestTwoPhaseInterleavedStridedViews(t *testing.T) {
	// The acceptance shape: a column block of a row-major matrix. Rank
	// r owns columns [r*cpr, (r+1)*cpr) of an n×n float64 matrix; all
	// ranks write collectively through strided views, then read back.
	const ranks, side = 4, 16
	const cpr = side / ranks
	path := filepath.Join(t.TempDir(), "matrix.bin")
	runGroup(t, ranks, path, os.O_RDWR, func(c *coll.Comm, f *File) (any, error) {
		ft, err := dtype.Vector(side, cpr, side, dtype.BasicType(dtype.F64))
		if err != nil {
			return nil, err
		}
		ft.Commit()
		if err := f.SetView(c.Rank*cpr, dtype.BasicType(dtype.F64), ft); err != nil {
			return nil, err
		}
		mine := make([]float64, side*cpr)
		for i := range mine {
			mine[i] = float64(c.Rank*10000 + i)
		}
		wire, err := dtype.EncodeDense(mine)
		if err != nil {
			return nil, err
		}
		p, err := f.WriteAllPlan(c, 0, wire)
		if err != nil {
			return nil, err
		}
		if _, err := p.Run(); err != nil {
			return nil, err
		}
		p, err = f.ReadAllPlan(c, 0, len(mine))
		if err != nil {
			return nil, err
		}
		res, err := p.Run()
		if err != nil {
			return nil, err
		}
		rr := res.(*ReadResult)
		if rr.Got != len(wire) || !bytes.Equal(rr.Wire, wire) {
			return nil, fmt.Errorf("rank %d: strided round trip mismatch (got %d)", c.Rank, rr.Got)
		}
		return nil, nil
	})

	// Every matrix element must be present exactly once with its
	// owner's pattern.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != side*side*8 {
		t.Fatalf("file holds %d bytes, want %d", len(raw), side*side*8)
	}
	m := make([]float64, side*side)
	if _, err := dtype.Unpack(raw, m, 0, len(m), dtype.BasicType(dtype.F64)); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < side; r++ {
		for col := 0; col < side; col++ {
			owner := col / cpr
			localIdx := r*cpr + (col - owner*cpr)
			want := float64(owner*10000 + localIdx)
			if m[r*side+col] != want {
				t.Fatalf("matrix[%d,%d] = %v, want %v", r, col, m[r*side+col], want)
			}
		}
	}
}
