package pio

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"

	"gompi/internal/coll"
	"gompi/internal/obs"
)

// Two-phase collective I/O (the ROMIO technique): instead of every
// rank issuing its own small strided filesystem accesses, the file is
// partitioned into cyclic stripes, each owned by one aggregator rank.
// Phase one exchanges data (writes) or requests (reads) so each
// aggregator holds everything destined for its stripes; phase two is
// the filesystem access, now large and contiguous per aggregator. Both
// phases are steps of one coll.Plan schedule, so every collective I/O
// call inherits the engine's nonblocking Start form and cancellation
// points — the binding's I*/Ctx variants fall out for free.
//
// Aggregator ownership is static: stripe b of the file belongs to rank
// b mod size. No extent agreement round is needed — every rank can
// route its chunks from local information — at the cost of not
// rebalancing when the touched range is narrow. All ranks must agree
// on the stripe width (SetStripe).

// chunk wire format: u64 file byte offset, u32 length, then (for data
// bundles) length payload bytes. Request bundles carry headers only.
const chunkHdr = 12

// pioSpan mints process-unique span ids for the trace: collective I/O
// phases of distinct calls may overlap in flight (nonblocking Start
// forms), so the instance-scoped ids the coll layer uses won't do.
var pioSpan atomic.Uint32

// spanStep brackets the steps appended between the call and the
// returned closure with a trace span: the schedule executes the begin
// step, the wrapped phase's steps, then the end step, so the span's
// width is the phase's wall time on this rank. bytes is evaluated when
// the begin step runs (bundles filled by earlier steps are complete by
// then).
func spanStep(p *coll.Plan, c *coll.Comm, kind obs.EventKind, bytes func() int64) (end func()) {
	id := pioSpan.Add(1)
	p.Step(func() error {
		c.P.Recorder().Begin(kind, id, bytes())
		return nil
	})
	return func() {
		p.Step(func() error {
			c.P.Recorder().End(kind, id, 0)
			return nil
		})
	}
}

func bundleBytes(parts [][]byte) int64 {
	var n int64
	for _, b := range parts {
		n += int64(len(b))
	}
	return n
}

func appendChunkHdr(dst []byte, off int64, n int) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(off))
	return binary.LittleEndian.AppendUint32(dst, uint32(n))
}

func readChunkHdr(b []byte) (off int64, n int, rest []byte, err error) {
	if len(b) < chunkHdr {
		return 0, 0, nil, fmt.Errorf("pio: truncated chunk header (%d bytes)", len(b))
	}
	off = int64(binary.LittleEndian.Uint64(b))
	n = int(binary.LittleEndian.Uint32(b[8:]))
	return off, n, b[chunkHdr:], nil
}

// forEachStripe splits the byte range [off, off+n) at stripe
// boundaries and yields each piece with its owning aggregator.
func forEachStripe(off int64, n int, stripe int64, size int, fn func(agg int, off int64, n int)) {
	for n > 0 {
		in := int(stripe - off%stripe)
		if in > n {
			in = n
		}
		fn(int((off/stripe)%int64(size)), off, in)
		off += int64(in)
		n -= in
	}
}

// WriteAllPlan builds the two-phase collective write of wire (whole
// view elements) at view element offset off: chunk routing at build
// time, the data alltoall, then each aggregator's pwrite pass. The
// plan publishes nil; the caller's own contribution is fully written
// when the schedule completes without error.
func (f *File) WriteAllPlan(c *coll.Comm, off int, wire []byte) (*coll.Plan, error) {
	p := c.NewPlan() // mint the collective instance before validation
	if f.closed {
		return nil, ErrClosed
	}
	if len(wire)%f.view.es != 0 {
		return nil, fmt.Errorf("%w: %d payload bytes not a multiple of element size %d", ErrView, len(wire), f.view.es)
	}

	// Phase 0 (build time): route my spans' bytes to their aggregators.
	parts := make([][]byte, c.Size)
	pos := 0
	for _, s := range f.view.spans(off, len(wire)/f.view.es) {
		base := pos
		forEachStripe(s.off, s.n, f.stripe, c.Size, func(agg int, o int64, n int) {
			at := base + int(o-s.off)
			parts[agg] = appendChunkHdr(parts[agg], o, n)
			parts[agg] = append(parts[agg], wire[at:at+n]...)
		})
		pos += s.n
	}

	// Phase 1: the data exchange.
	endEx := spanStep(p, c, obs.EvPioExchange, func() int64 { return bundleBytes(parts) })
	var got [][]byte
	if err := p.Alltoall(parts, &got); err != nil {
		return nil, err
	}
	endEx()

	// Phase 2: this rank's aggregator pass over its received chunks.
	p.Step(func() error {
		rec := c.P.Recorder()
		id := pioSpan.Add(1)
		rec.Begin(obs.EvPioWrite, id, 0)
		var written int64
		for _, b := range got {
			for len(b) > 0 {
				o, n, rest, err := readChunkHdr(b)
				if err != nil {
					return err
				}
				if n > len(rest) {
					return fmt.Errorf("pio: truncated chunk payload (%d of %d bytes)", len(rest), n)
				}
				if _, err := f.f.WriteAt(rest[:n], o); err != nil {
					return &Error{Op: "write", Path: f.path, Err: err}
				}
				written += int64(n)
				b = rest[n:]
			}
		}
		rec.End(obs.EvPioWrite, id, written)
		return nil
	})
	p.Publish(func() any { return nil })
	return p, nil
}

// ReadResult is the completion value of a ReadAllPlan schedule: the
// gathered wire bytes (zero-filled past end-of-file) and how many of
// them the file actually held.
type ReadResult struct {
	Wire []byte
	Got  int
}

// ReadAllPlan builds the two-phase collective read of n view elements
// at view element offset off: the request alltoall, each aggregator's
// pread pass, the data alltoall back, then reassembly. The plan
// publishes a *ReadResult.
func (f *File) ReadAllPlan(c *coll.Comm, off, n int) (*coll.Plan, error) {
	p := c.NewPlan() // mint the collective instance before validation
	if f.closed {
		return nil, ErrClosed
	}
	if n < 0 {
		return nil, fmt.Errorf("%w: negative element count %d", ErrView, n)
	}

	// Phase 0 (build time): split my spans into per-aggregator request
	// chunks, remembering where each chunk's bytes land in my wire
	// buffer — replies return in request order.
	spans := f.view.spans(off, n)
	reqs := make([][]byte, c.Size)
	wirePos := make([][]int, c.Size)
	pos := 0
	for _, s := range spans {
		base := pos
		forEachStripe(s.off, s.n, f.stripe, c.Size, func(agg int, o int64, cn int) {
			reqs[agg] = appendChunkHdr(reqs[agg], o, cn)
			wirePos[agg] = append(wirePos[agg], base+int(o-s.off))
		})
		pos += s.n
	}

	// Phase 1: requests out to the aggregators.
	endReq := spanStep(p, c, obs.EvPioExchange, func() int64 { return bundleBytes(reqs) })
	var gotReqs [][]byte
	if err := p.Alltoall(reqs, &gotReqs); err != nil {
		return nil, err
	}
	endReq()

	// Phase 2: this rank's aggregator pass — pread every requested
	// range, short at end-of-file, and bundle the data per requester.
	replies := make([][]byte, c.Size)
	p.Step(func() error {
		rec := c.P.Recorder()
		id := pioSpan.Add(1)
		rec.Begin(obs.EvPioRead, id, 0)
		var read int64
		for r, b := range gotReqs {
			for len(b) > 0 {
				o, cn, rest, err := readChunkHdr(b)
				if err != nil {
					return err
				}
				buf := make([]byte, cn)
				m, rerr := f.f.ReadAt(buf, o)
				if rerr != nil && rerr != io.EOF {
					return &Error{Op: "read", Path: f.path, Err: rerr}
				}
				replies[r] = appendChunkHdr(replies[r], o, m)
				replies[r] = append(replies[r], buf[:m]...)
				read += int64(m)
				b = rest
			}
		}
		rec.End(obs.EvPioRead, id, read)
		return nil
	})

	// Phase 3: data back to the requesters.
	endData := spanStep(p, c, obs.EvPioExchange, func() int64 { return bundleBytes(replies) })
	var gotData [][]byte
	if err := p.Alltoall(replies, &gotData); err != nil {
		return nil, err
	}
	endData()

	// Phase 4: reassemble my wire buffer. A chunk shorter than
	// requested marks the end of the file; the delivered count is the
	// view-order prefix of my spans clipped there. Reassembly runs as
	// a step so a malformed reply fails the schedule rather than
	// passing as an empty read.
	res := &ReadResult{}
	p.Step(func() error {
		res.Wire = make([]byte, n*f.view.es)
		fileEnd := int64(-1) // -1: no shortfall seen
		for agg, b := range gotData {
			for i := 0; len(b) > 0; i++ {
				o, m, rest, err := readChunkHdr(b)
				if err != nil {
					return err
				}
				if m > len(rest) {
					return fmt.Errorf("pio: truncated reply payload (%d of %d bytes)", len(rest), m)
				}
				if i >= len(wirePos[agg]) {
					return fmt.Errorf("pio: aggregator %d replied with more chunks than requested", agg)
				}
				copy(res.Wire[wirePos[agg][i]:], rest[:m])
				if wanted := chunkWant(reqs[agg], i); m < wanted {
					if end := o + int64(m); fileEnd < 0 || end < fileEnd {
						fileEnd = end
					}
				}
				b = rest[m:]
			}
		}
		if fileEnd < 0 {
			res.Got = n * f.view.es
			return nil
		}
		for _, s := range spans {
			if s.off >= fileEnd {
				break
			}
			in := fileEnd - s.off
			if in > int64(s.n) {
				in = int64(s.n)
			}
			res.Got += int(in)
		}
		return nil
	})
	p.Publish(func() any { return res })
	return p, nil
}

// chunkWant returns the requested length of the i-th chunk of a
// request bundle (headers only, fixed stride).
func chunkWant(reqBundle []byte, i int) int {
	at := i * chunkHdr
	if at+chunkHdr > len(reqBundle) {
		return 0
	}
	return int(binary.LittleEndian.Uint32(reqBundle[at+8:]))
}
