// Package shmipc is the cross-process shared-memory transport: the
// paper's Shared Memory mode with real OS-process isolation, where the
// in-process "shm" device only emulates it with goroutines. One
// mmap-backed segment carries, for every ordered pair of local ranks, a
// lock-free single-producer/single-consumer slot ring, plus a shared
// frame-pool arena. Payload buffers drawn from the arena (through the
// transport pool's Arena hook) are packed by the sender directly into
// segment memory and published to the receiver by reference, so
// Sendv's `recycle` ownership transfer shuttles buffers between
// processes without a copy — the PR 2 zero-copy protocol, across
// address spaces.
//
// Segment layout (all offsets 64-byte aligned):
//
//	header      magic, geometry, creator pid, ready flag, arena bump
//	            pointer and per-class free-list heads
//	rank table  one 64-byte record per slot: state, pid, world rank
//	rings       nranks² slot rings; ring (i,j) carries i→j traffic
//	arena       size-classed block allocator (shared free lists)
//
// All cross-process synchronization is word-sized atomics on the
// mapped memory: slot sequence numbers (Vyukov-style ring protocol),
// Treiber-stack free lists with an ABA tag, and the rank-state words.
// Blocking is spin-then-sleep backoff; peer death is detected by pid
// liveness probes during backoff and surfaced as
// transport.PeerLostError instead of a hang.
package shmipc

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"
	"unsafe"
)

const (
	segMagic   = 0x314d5349504d4f47 // "GOMPISM1" little-endian
	segVersion = 1

	// Header field offsets.
	offMagic    = 0
	offVersion  = 8
	offNRanks   = 12
	offSlotSize = 16
	offSlots    = 20
	offArenaOff = 24
	offArenaLen = 32
	offReady    = 40
	offOwnerPID = 44 // u32 is enough for a pid on every supported OS
	offBump     = 48
	offFree     = 64 // arenaClasses u64 free-list heads
	offTable    = offFree + arenaClasses*8

	rankRecBytes = 64 // per-slot rank record
	ringHdrBytes = 64 // reserved per ring (diagnostics; sync is per-slot)

	// Rank states.
	rankEmpty    = 0
	rankAttached = 1
	rankClosed   = 2
)

// Config sizes a segment. The zero value selects the defaults.
type Config struct {
	// Slots is the per-ring slot count (the per-pair flow-control
	// window in frames). Default 512.
	Slots int
	// SlotBytes is the size of one ring slot including its 8-byte
	// sequence word; frames up to roughly SlotBytes-24 travel inline
	// in the ring, larger ones through the arena. Must be a multiple
	// of 64. Default 1024.
	SlotBytes int
	// ArenaBytes is the shared frame-pool arena capacity. Default 64 MiB.
	ArenaBytes int
}

func (c Config) withDefaults() Config {
	if c.Slots <= 0 {
		c.Slots = 512
	}
	if c.SlotBytes <= 0 {
		c.SlotBytes = 1024
	}
	c.SlotBytes = (c.SlotBytes + 63) &^ 63
	if c.ArenaBytes <= 0 {
		c.ArenaBytes = 64 << 20
	}
	return c
}

// Segment is one process's view of a mapped segment. Multiple local
// devices (an in-process job) may share one Segment; cross-process,
// each process attaches its own.
type Segment struct {
	b    []byte
	f    *os.File
	path string
	// owner marks the creating process, which is responsible for
	// unlinking the file.
	owner bool

	nranks    int
	slots     int
	slotBytes int
	ringsOff  int
	ringBytes int
	arenaOff  int
	arenaLen  int

	// Process-local arena counters (the per-medium pool snapshot).
	arGets, arHits, arPuts, arDrops atomic.Uint64
	// refs counts attached devices sharing this mapping (in-process
	// jobs); the arena hook is released when it reaches zero.
	refs atomic.Int32
}

// word returns a pointer to the u64 at byte offset off, for atomic use.
// Offsets are 8-aligned by construction.
func (s *Segment) word(off int) *uint64 {
	return (*uint64)(unsafe.Pointer(&s.b[off]))
}

func (s *Segment) word32(off int) *uint32 {
	return (*uint32)(unsafe.Pointer(&s.b[off]))
}

// Path returns the segment file's path.
func (s *Segment) Path() string { return s.path }

// NRanks returns the number of slots (local participants).
func (s *Segment) NRanks() int { return s.nranks }

func layout(nranks int, cfg Config) (ringsOff, ringBytes, arenaOff, total int) {
	ringsOff = align64(offTable + nranks*rankRecBytes)
	ringBytes = ringHdrBytes + cfg.Slots*cfg.SlotBytes
	arenaOff = align64(ringsOff + nranks*nranks*ringBytes)
	total = arenaOff + cfg.ArenaBytes
	return
}

func align64(n int) int { return (n + 63) &^ 63 }

// DefaultDir returns the directory segments are created in: /dev/shm
// when the OS provides it (memory-backed, no writeback), else the
// system temp directory.
func DefaultDir() string {
	if st, err := os.Stat("/dev/shm"); err == nil && st.IsDir() {
		return "/dev/shm"
	}
	return os.TempDir()
}

// SegPrefix is the filename prefix of every segment this package
// creates; CleanupStale keys on it.
const SegPrefix = "gompi-shm-"

// Create builds a fresh segment at path for the given local world
// ranks (slot i belongs to worldRanks[i]) and maps it. The file is
// created exclusively; a leftover path is an error (use CleanupStale).
func Create(path string, worldRanks []int, cfg Config) (*Segment, error) {
	cfg = cfg.withDefaults()
	n := len(worldRanks)
	if n < 1 {
		return nil, fmt.Errorf("shmipc: empty rank set")
	}
	ringsOff, ringBytes, arenaOff, total := layout(n, cfg)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, fmt.Errorf("shmipc: create segment: %w", err)
	}
	if err := f.Truncate(int64(total)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("shmipc: size segment: %w", err)
	}
	b, err := mmapFile(f, total)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("shmipc: map segment: %w", err)
	}
	s := &Segment{
		b: b, f: f, path: path, owner: true,
		nranks: n, slots: cfg.Slots, slotBytes: cfg.SlotBytes,
		ringsOff: ringsOff, ringBytes: ringBytes,
		arenaOff: arenaOff, arenaLen: cfg.ArenaBytes,
	}
	binary.LittleEndian.PutUint64(b[offMagic:], segMagic)
	binary.LittleEndian.PutUint32(b[offVersion:], segVersion)
	binary.LittleEndian.PutUint32(b[offNRanks:], uint32(n))
	binary.LittleEndian.PutUint32(b[offSlotSize:], uint32(cfg.SlotBytes))
	binary.LittleEndian.PutUint32(b[offSlots:], uint32(cfg.Slots))
	binary.LittleEndian.PutUint64(b[offArenaOff:], uint64(arenaOff))
	binary.LittleEndian.PutUint64(b[offArenaLen:], uint64(cfg.ArenaBytes))
	binary.LittleEndian.PutUint32(b[offOwnerPID:], uint32(os.Getpid()))
	// The arena bump pointer starts at the first block boundary.
	atomic.StoreUint64(s.word(offBump), uint64(arenaOff))
	for slot, w := range worldRanks {
		rec := offTable + slot*rankRecBytes
		binary.LittleEndian.PutUint64(b[rec+16:], uint64(w))
	}
	// Ring slot sequence numbers: slot k is free for ring position k.
	for ring := 0; ring < n*n; ring++ {
		base := ringsOff + ring*ringBytes + ringHdrBytes
		for k := 0; k < cfg.Slots; k++ {
			binary.LittleEndian.PutUint64(b[base+k*cfg.SlotBytes:], uint64(k))
		}
	}
	atomic.StoreUint32(s.word32(offReady), 1)
	return s, nil
}

// Open maps an existing segment, waiting up to timeout for the creator
// to finish initializing it.
func Open(path string, timeout time.Duration) (*Segment, error) {
	deadline := time.Now().Add(timeout)
	var f *os.File
	var err error
	for {
		f, err = os.OpenFile(path, os.O_RDWR, 0)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("shmipc: open segment: %w", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("shmipc: stat segment: %w", err)
	}
	b, err := mmapFile(f, int(st.Size()))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("shmipc: map segment: %w", err)
	}
	s := &Segment{b: b, f: f, path: path}
	for atomic.LoadUint32(s.word32(offReady)) != 1 {
		if time.Now().After(deadline) {
			s.unmap()
			return nil, fmt.Errorf("shmipc: segment %s never became ready", path)
		}
		time.Sleep(time.Millisecond)
	}
	if binary.LittleEndian.Uint64(b[offMagic:]) != segMagic {
		s.unmap()
		return nil, fmt.Errorf("shmipc: %s is not a gompi segment", path)
	}
	if v := binary.LittleEndian.Uint32(b[offVersion:]); v != segVersion {
		s.unmap()
		return nil, fmt.Errorf("shmipc: segment version %d, want %d", v, segVersion)
	}
	s.nranks = int(binary.LittleEndian.Uint32(b[offNRanks:]))
	s.slotBytes = int(binary.LittleEndian.Uint32(b[offSlotSize:]))
	s.slots = int(binary.LittleEndian.Uint32(b[offSlots:]))
	s.arenaOff = int(binary.LittleEndian.Uint64(b[offArenaOff:]))
	s.arenaLen = int(binary.LittleEndian.Uint64(b[offArenaLen:]))
	s.ringsOff, s.ringBytes, _, _ = layout(s.nranks, Config{
		Slots: s.slots, SlotBytes: s.slotBytes, ArenaBytes: s.arenaLen,
	}.withDefaults())
	return s, nil
}

// unmap releases the mapping. It is never called while frames may
// still alias the segment: processes rely on exit-time teardown, and
// only error paths during Open/Create use it.
func (s *Segment) unmap() {
	if s.b != nil {
		munmapFile(s.b) //nolint:errcheck // nothing to do on failure
		s.b = nil
	}
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
}

// Unlink removes the segment file. Existing mappings stay valid; the
// kernel frees the memory when the last process unmaps (typically at
// exit).
func (s *Segment) Unlink() error { return os.Remove(s.path) }

// OwnerPID returns the creator's process id as recorded in the header.
func (s *Segment) OwnerPID() int {
	return int(binary.LittleEndian.Uint32(s.b[offOwnerPID:]))
}

// WorldRanks returns the world rank of every slot.
func (s *Segment) WorldRanks() []int {
	out := make([]int, s.nranks)
	for i := range out {
		out[i] = int(binary.LittleEndian.Uint64(s.b[offTable+i*rankRecBytes+16:]))
	}
	return out
}

// rank-record accessors.

func (s *Segment) rankStateWord(slot int) *uint32 {
	return s.word32(offTable + slot*rankRecBytes)
}

func (s *Segment) rankPIDWord(slot int) *uint64 {
	return s.word(offTable + slot*rankRecBytes + 8)
}

// attachSlot marks a slot attached by this process.
func (s *Segment) attachSlot(slot int) {
	atomic.StoreUint64(s.rankPIDWord(slot), uint64(os.Getpid()))
	atomic.StoreUint32(s.rankStateWord(slot), rankAttached)
}

// CleanupStale removes segment files in dir whose creating process no
// longer exists — the crash-recovery sweep mpirun runs at startup so an
// aborted job cannot leak /dev/shm memory forever. Files younger than
// grace are left alone (their creator may not have written the header
// yet). It returns the removed paths.
func CleanupStale(dir string, grace time.Duration) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, SegPrefix) || !strings.HasSuffix(name, ".seg") {
			continue
		}
		path := filepath.Join(dir, name)
		info, err := ent.Info()
		if err != nil || time.Since(info.ModTime()) < grace {
			continue
		}
		pid, ok := segmentOwner(path)
		if !ok || pidAlive(pid) {
			continue
		}
		if os.Remove(path) == nil {
			removed = append(removed, path)
		}
	}
	return removed, nil
}

// segmentOwner reads the creator pid out of a segment file without
// mapping it.
func segmentOwner(path string) (int, bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	var hdr [offOwnerPID + 4]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return 0, false
	}
	if binary.LittleEndian.Uint64(hdr[offMagic:]) != segMagic {
		return 0, false
	}
	return int(binary.LittleEndian.Uint32(hdr[offOwnerPID:])), true
}
