package shmipc

import (
	"encoding/binary"
	"sync/atomic"
	"unsafe"

	"gompi/internal/transport"
)

// The arena is a size-classed block allocator living in the segment,
// shared by every attached process: the cross-process twin of the
// transport package's private frame pool. Classes are powers of two
// from 4 KiB with classSlack bytes of headroom, so a power-of-two
// payload plus a frame header still fits its own class. Free lists are
// per-class Treiber stacks whose heads carry an ABA tag; a free
// block's first data word links to the next free block. Blocks carry a
// 64-byte header (magic + class) so a data pointer alone identifies
// its block — that is what lets transport.PutBuf route any
// segment-born buffer back here from either process.

const (
	arenaClasses  = 16
	arenaMinShift = 12 // smallest class: 4 KiB (+ slack)
	classSlack    = 128

	// arenaMinBuf is the smallest GetBuf request served from the
	// arena; smaller buffers (frame headers, tiny payloads) stay in
	// the private pool and travel inline through the rings.
	arenaMinBuf = 2048

	blkHdrBytes = 64
	blkMagic    = 0x314b4c424d4f47 // "GOMPBLK1" sans one byte, fits 56 bits
	blkFree     = 0x30455246424d4f47
)

// classData returns the data capacity of class k.
func classData(k int) int { return (1 << (arenaMinShift + k)) + classSlack }

// classFor returns the smallest class holding n bytes, or -1.
func classFor(n int) int {
	for k := 0; k < arenaClasses; k++ {
		if n <= classData(k) {
			return k
		}
	}
	return -1
}

const (
	headOffBits = 40
	headOffMask = (1 << headOffBits) - 1
)

// pushFree links the block at blkOff onto class k's free list.
func (s *Segment) pushFree(k, blkOff int) {
	head := s.word(offFree + k*8)
	next := s.word(blkOff + blkHdrBytes)
	for {
		old := atomic.LoadUint64(head)
		atomic.StoreUint64(next, old&headOffMask)
		tag := (old >> headOffBits) + 1
		if atomic.CompareAndSwapUint64(head, old, tag<<headOffBits|uint64(blkOff)) {
			return
		}
	}
}

// popFree unlinks a block from class k's free list, returning its
// header offset or 0.
func (s *Segment) popFree(k int) int {
	head := s.word(offFree + k*8)
	for {
		old := atomic.LoadUint64(head)
		off := old & headOffMask
		if off == 0 {
			return 0
		}
		next := atomic.LoadUint64(s.word(int(off) + blkHdrBytes))
		tag := (old >> headOffBits) + 1
		if atomic.CompareAndSwapUint64(head, old, tag<<headOffBits|next) {
			return int(off)
		}
	}
}

// allocBlock returns the data slice of a fresh class-k block, from the
// free list or by bumping the arena frontier. Returns nil when the
// arena is exhausted.
func (s *Segment) allocBlock(k, n int) []byte {
	blkOff := s.popFree(k)
	if blkOff != 0 {
		s.arHits.Add(1)
	} else {
		need := uint64(blkHdrBytes + classData(k))
		bump := s.word(offBump)
		for {
			old := atomic.LoadUint64(bump)
			next := (old + need + 63) &^ 63
			if next > uint64(s.arenaOff+s.arenaLen) {
				return nil
			}
			if atomic.CompareAndSwapUint64(bump, old, next) {
				blkOff = int(old)
				break
			}
		}
	}
	binary.LittleEndian.PutUint64(s.b[blkOff:], blkMagic)
	binary.LittleEndian.PutUint32(s.b[blkOff+8:], uint32(k))
	return s.b[blkOff+blkHdrBytes : blkOff+blkHdrBytes+n : blkOff+blkHdrBytes+classData(k)]
}

// blockOf validates that p is the data pointer of a live arena block
// and returns its header offset and class.
func (s *Segment) blockOf(p unsafe.Pointer) (blkOff, class int, ok bool) {
	base := unsafe.Pointer(unsafe.SliceData(s.b))
	d := uintptr(p) - uintptr(base)
	if d < uintptr(s.arenaOff)+blkHdrBytes || d >= uintptr(len(s.b)) {
		return 0, 0, false
	}
	blkOff = int(d) - blkHdrBytes
	if binary.LittleEndian.Uint64(s.b[blkOff:]) != blkMagic {
		return 0, 0, false
	}
	class = int(binary.LittleEndian.Uint32(s.b[blkOff+8:]))
	if class < 0 || class >= arenaClasses {
		return 0, 0, false
	}
	return blkOff, class, true
}

// contains reports whether p points into the mapped segment.
func (s *Segment) contains(p unsafe.Pointer) bool {
	base := uintptr(unsafe.Pointer(unsafe.SliceData(s.b)))
	return uintptr(p) >= base && uintptr(p) < base+uintptr(len(s.b))
}

// dataPtr returns b's backing-array pointer (capacity view, so a
// shortened slice still names its original storage).
func dataPtr(b []byte) unsafe.Pointer {
	return unsafe.Pointer(unsafe.SliceData(b[:cap(b)]))
}

// dataOff returns the segment offset of a pointer into the mapping.
func (s *Segment) dataOff(p unsafe.Pointer) int {
	return int(uintptr(p) - uintptr(unsafe.Pointer(unsafe.SliceData(s.b))))
}

// AllocBuf implements transport.Arena: GetBuf requests in the arena's
// range are served from segment memory so payloads are packed directly
// into cross-process-visible storage. Out-of-range or unsatisfiable
// requests return nil and fall through to the private pool.
func (s *Segment) AllocBuf(n int) []byte {
	if n < arenaMinBuf {
		return nil
	}
	k := classFor(n)
	if k < 0 {
		return nil
	}
	s.arGets.Add(1)
	b := s.allocBlock(k, n)
	if b == nil {
		s.arDrops.Add(1)
	}
	return b
}

// FreeBuf implements transport.Arena: buffers whose data pointer is a
// live block of this segment return to the shared free list —
// including blocks a *different* process allocated, which is how
// ownership-transferred payloads recirculate across the process
// boundary. Pointers into the segment that are not a block base (an
// interior alias) are claimed but not freed, so a stray alias can
// never corrupt the free lists.
func (s *Segment) FreeBuf(b []byte) bool {
	if cap(b) == 0 {
		return false
	}
	p := unsafe.Pointer(unsafe.SliceData(b[:cap(b)]))
	if !s.contains(p) {
		return false
	}
	if blkOff, _, ok := s.blockOf(p); ok {
		s.freeBlock(blkOff)
	}
	s.arPuts.Add(1)
	return true
}

// freeBlock returns the block at blkOff to its class free list,
// guarding against double frees via the header magic.
func (s *Segment) freeBlock(blkOff int) {
	if binary.LittleEndian.Uint64(s.b[blkOff:]) != blkMagic {
		return
	}
	k := int(binary.LittleEndian.Uint32(s.b[blkOff+8:]))
	binary.LittleEndian.PutUint64(s.b[blkOff:], blkFree)
	s.pushFree(k, blkOff)
}

// ArenaStats returns this process's view of the shared arena's
// counters (gets/hits/puts/drops in the transport pool's shape).
func (s *Segment) ArenaStats() transport.PoolSnapshot {
	return transport.PoolSnapshot{
		Gets:  s.arGets.Load(),
		Hits:  s.arHits.Load(),
		Puts:  s.arPuts.Load(),
		Drops: s.arDrops.Load(),
	}
}

var _ transport.Arena = (*Segment)(nil)
