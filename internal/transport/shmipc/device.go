package shmipc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gompi/internal/transport"
)

// Slot record layout, after the slot's 8-byte sequence word:
//
//	+0  kind    u8   kindInline | kindRef
//	+1  flags   u8   (reserved)
//	+2  hdrLen  u16  bytes of frame header stored inline at +16
//	+4  payLen  u32  payload bytes (inline after the header, or in the arena)
//	+8  payOff  u64  kindRef: segment offset of the arena payload
//	+16 header bytes, then (kindInline) the payload
//
// A kindRef record with hdrLen == 0 carries a whole contiguous frame in
// the arena block — the shape used when the header alone exceeds a slot.
const (
	kindInline = 1
	kindRef    = 2
	recHdr     = 16
)

// Device is one rank's endpoint on a shared segment: the "shm" medium.
// It sends by publishing records into the per-pair rings and receives by
// round-robin polling every incoming ring, so per-(sender,receiver) FIFO
// order follows directly from ring order.
type Device struct {
	seg    *Segment
	slot   int
	rank   int
	wsize  int
	world  []int       // slot -> world rank
	slotOf map[int]int // world rank -> slot

	// Per-destination producer state: one process-local tail per ring
	// this rank produces into, serialized per destination.
	sendMu []sync.Mutex
	tails  []uint64

	// Consumer state: heads for every incoming ring plus the rotating
	// scan start, all under recvMu (one logical consumer).
	recvMu   sync.Mutex
	heads    []uint64
	scan     int
	reported []bool // peer-loss already surfaced, per slot

	closed      atomic.Bool
	arenaShared bool

	framesSent, framesRecv atomic.Uint64
	bytesSent, bytesRecv   atomic.Uint64
}

// Attach joins the segment as worldRank. worldSize is the job's world
// size, which the device reports from Size; it may exceed the segment's
// rank count when this device is one island of a hybrid job.
func Attach(seg *Segment, worldRank, worldSize int) (*Device, error) {
	world := seg.WorldRanks()
	slot := -1
	slotOf := make(map[int]int, len(world))
	for i, w := range world {
		slotOf[w] = i
		if w == worldRank {
			slot = i
		}
	}
	if slot < 0 {
		return nil, fmt.Errorf("shmipc: rank %d has no slot in segment %s (ranks %v)", worldRank, seg.Path(), world)
	}
	if worldSize < len(world) {
		worldSize = len(world)
	}
	d := &Device{
		seg: seg, slot: slot, rank: worldRank, wsize: worldSize,
		world: world, slotOf: slotOf,
		sendMu:   make([]sync.Mutex, seg.nranks),
		tails:    make([]uint64, seg.nranks),
		heads:    make([]uint64, seg.nranks),
		reported: make([]bool, seg.nranks),
	}
	seg.attachSlot(slot)
	d.arenaShared = transport.ShareArena(seg)
	return d, nil
}

// Rank returns this endpoint's world rank.
func (d *Device) Rank() int { return d.rank }

// Size returns the job's world size.
func (d *Device) Size() int { return d.wsize }

// Segment returns the underlying segment (diagnostics and tests).
func (d *Device) Segment() *Segment { return d.seg }

func (d *Device) ringBase(from, to int) int {
	return d.seg.ringsOff + (from*d.seg.nranks+to)*d.seg.ringBytes + ringHdrBytes
}

// inlineCap is the largest header+payload a single slot carries.
func (d *Device) inlineCap() int { return d.seg.slotBytes - 8 - recHdr }

// backoff is the spin-then-sleep wait used whenever a ring or the arena
// is momentarily full/empty: a burst of Gosched keeps latency low, then
// sleeps grow to 200µs so an idle rank costs nothing.
type backoff struct{ n int }

func (b *backoff) pause() {
	b.n++
	if b.n < 2000 {
		runtime.Gosched()
		return
	}
	s := time.Duration(b.n-1999) * time.Microsecond
	if s > 200*time.Microsecond {
		s = 200 * time.Microsecond
	}
	time.Sleep(s)
}

// probeTick reports whether this pause iteration should also run the
// (syscall-priced) peer liveness probe.
func (b *backoff) probeTick() bool { return b.n&0x3ff == 0x3ff }

// checkPeer detects an unusable destination while blocked on it: a
// cleanly closed peer yields ErrClosed, a vanished process
// PeerLostError. A slot that was never attached is a peer still
// starting up, which is not an error.
func (d *Device) checkPeer(ds int) error {
	switch atomic.LoadUint32(d.seg.rankStateWord(ds)) {
	case rankClosed:
		return transport.ErrClosed
	case rankAttached:
		pid := int(atomic.LoadUint64(d.seg.rankPIDWord(ds)))
		if !pidAlive(pid) {
			return &transport.PeerLostError{Peer: d.world[ds]}
		}
	}
	return nil
}

// isBlock reports whether b is the full data view of a live arena block
// of this segment, i.e. eligible to be published by reference with no
// copy. The capacity check rejects interior aliases: only a buffer born
// from the arena still carries its class's exact capacity.
func (d *Device) isBlock(b []byte) (off int, ok bool) {
	if len(b) == 0 || cap(b) == 0 {
		return 0, false
	}
	p := dataPtr(b)
	if !d.seg.contains(p) {
		return 0, false
	}
	_, k, ok := d.seg.blockOf(p)
	if !ok || cap(b) != classData(k) {
		return 0, false
	}
	return d.seg.dataOff(p), true
}

// Send delivers a contiguous frame. A frame that already lives in the
// shared arena (GetBuf handed out segment memory) is published by
// reference; small frames travel inline through the ring; anything else
// is copied into a fresh arena block.
func (d *Device) Send(dst int, frame []byte) error {
	if err := d.checkSend(dst); err != nil {
		return err
	}
	ds := d.slotOf[dst]
	if off, ok := d.isBlock(frame); ok {
		return d.publish(ds, kindRef, nil, nil, uint64(off), len(frame))
	}
	if len(frame) <= d.inlineCap() {
		err := d.publish(ds, kindInline, frame, nil, 0, 0)
		transport.PutBuf(frame)
		return err
	}
	blk, err := d.allocWait(len(frame), ds)
	if err != nil {
		return err
	}
	copy(blk, frame)
	err = d.publish(ds, kindRef, nil, nil, uint64(d.seg.dataOff(dataPtr(blk))), len(frame))
	transport.PutBuf(frame)
	return err
}

// Sendv is the scatter-gather send. When the payload is an arena block
// and recycle licenses ownership transfer, the block is published by
// reference — the zero-copy cross-process path: the receiver reads the
// sender's buffer in place and its Release recirculates the block
// through the shared free list. Otherwise the payload is copied inline
// (small) or into an arena block (large).
func (d *Device) Sendv(dst int, hdr, payload []byte, recycle bool) error {
	if err := d.checkSend(dst); err != nil {
		return err
	}
	ds := d.slotOf[dst]
	hdrFits := len(hdr) <= d.inlineCap() && len(hdr) <= 1<<16-1

	if recycle && hdrFits {
		if off, ok := d.isBlock(payload); ok {
			err := d.publish(ds, kindRef, hdr, nil, uint64(off), len(payload))
			transport.PutBuf(hdr)
			return err
		}
	}
	if len(hdr)+len(payload) <= d.inlineCap() && hdrFits {
		err := d.publish(ds, kindInline, hdr, payload, 0, 0)
		d.doneWith(hdr, payload, recycle)
		return err
	}
	if hdrFits && len(payload) > 0 {
		blk, err := d.allocWait(len(payload), ds)
		if err != nil {
			return err
		}
		copy(blk, payload)
		err = d.publish(ds, kindRef, hdr, nil, uint64(d.seg.dataOff(dataPtr(blk))), len(payload))
		d.doneWith(hdr, payload, recycle)
		return err
	}
	// Oversized header (some callers pass the whole message as hdr):
	// ship header+payload as one contiguous arena frame.
	blk, err := d.allocWait(len(hdr)+len(payload), ds)
	if err != nil {
		return err
	}
	copy(blk[copy(blk, hdr):], payload)
	err = d.publish(ds, kindRef, nil, nil, uint64(d.seg.dataOff(dataPtr(blk))), len(hdr)+len(payload))
	d.doneWith(hdr, payload, recycle)
	return err
}

func (d *Device) checkSend(dst int) error {
	if d.closed.Load() {
		return transport.ErrClosed
	}
	if dst < 0 || dst >= d.wsize {
		return fmt.Errorf("transport: destination rank %d out of range [0,%d)", dst, d.wsize)
	}
	if _, ok := d.slotOf[dst]; !ok {
		return fmt.Errorf("shmipc: rank %d is not on segment %s", dst, d.seg.Path())
	}
	return nil
}

// doneWith returns the sender-side buffers of a copying path: the
// header always goes back to the pool, the payload only when recycle
// transferred its ownership to us.
func (d *Device) doneWith(hdr, payload []byte, recycle bool) {
	transport.PutBuf(hdr)
	if recycle && payload != nil {
		transport.PutBuf(payload)
	}
}

// publish writes one record into the ring toward slot ds, blocking
// while the ring is full. hdr and inl are copied into the slot; for
// kindRef frames payOff/payLen name the arena block.
func (d *Device) publish(ds int, kind byte, hdr, inl []byte, payOff uint64, payLen int) error {
	d.sendMu[ds].Lock()
	defer d.sendMu[ds].Unlock()
	pos := d.tails[ds]
	sb := d.ringBase(d.slot, ds) + int(pos%uint64(d.seg.slots))*d.seg.slotBytes
	seq := d.seg.word(sb)
	var bo backoff
	for atomic.LoadUint64(seq) != pos {
		if d.closed.Load() {
			return transport.ErrClosed
		}
		if bo.probeTick() {
			if err := d.checkPeer(ds); err != nil {
				return err
			}
		}
		bo.pause()
	}
	rec := sb + 8
	d.seg.b[rec] = kind
	d.seg.b[rec+1] = 0
	binary.LittleEndian.PutUint16(d.seg.b[rec+2:], uint16(len(hdr)))
	if kind == kindInline {
		binary.LittleEndian.PutUint32(d.seg.b[rec+4:], uint32(len(inl)))
		binary.LittleEndian.PutUint64(d.seg.b[rec+8:], 0)
	} else {
		binary.LittleEndian.PutUint32(d.seg.b[rec+4:], uint32(payLen))
		binary.LittleEndian.PutUint64(d.seg.b[rec+8:], payOff)
	}
	copy(d.seg.b[rec+recHdr:], hdr)
	copy(d.seg.b[rec+recHdr+len(hdr):], inl)
	atomic.StoreUint64(seq, pos+1)
	d.tails[ds] = pos + 1
	d.framesSent.Add(1)
	d.bytesSent.Add(uint64(len(hdr) + len(inl) + payLen))
	return nil
}

// Recv returns the next frame from any incoming ring, polling them
// round-robin with backoff. While idle it probes peer liveness and
// surfaces a vanished process as PeerLostError — once per peer, without
// closing the device, so the engine can fail that peer's operations and
// keep serving the rest.
func (d *Device) Recv() (transport.Frame, error) {
	d.recvMu.Lock()
	defer d.recvMu.Unlock()
	n := d.seg.nranks
	var bo backoff
	for {
		if d.closed.Load() {
			return transport.Frame{}, transport.ErrClosed
		}
		for i := 0; i < n; i++ {
			src := d.scan + i
			if src >= n {
				src -= n
			}
			pos := d.heads[src]
			sb := d.ringBase(src, d.slot) + int(pos%uint64(d.seg.slots))*d.seg.slotBytes
			seq := d.seg.word(sb)
			if atomic.LoadUint64(seq) != pos+1 {
				continue
			}
			f := d.consume(sb)
			atomic.StoreUint64(seq, pos+uint64(d.seg.slots))
			d.heads[src] = pos + 1
			d.scan = src + 1
			if d.scan >= n {
				d.scan = 0
			}
			return f, nil
		}
		if bo.probeTick() {
			for s := 0; s < n; s++ {
				if s == d.slot || d.reported[s] {
					continue
				}
				var pl *transport.PeerLostError
				if errors.As(d.checkPeer(s), &pl) {
					d.reported[s] = true
					return transport.Frame{}, pl
				}
			}
		}
		bo.pause()
	}
}

// consume materializes the frame in the slot at sb. Inline bytes are
// copied out (the slot is recycled immediately after); a referenced
// arena block is delivered as a zero-copy view whose Release frees it
// to the shared free list.
func (d *Device) consume(sb int) transport.Frame {
	rec := sb + 8
	kind := d.seg.b[rec]
	hdrLen := int(binary.LittleEndian.Uint16(d.seg.b[rec+2:]))
	payLen := int(binary.LittleEndian.Uint32(d.seg.b[rec+4:]))
	if kind == kindInline {
		data := transport.GetBuf(hdrLen + payLen)
		copy(data, d.seg.b[rec+recHdr:rec+recHdr+hdrLen+payLen])
		d.framesRecv.Add(1)
		d.bytesRecv.Add(uint64(len(data)))
		return transport.PooledFrame(data, nil, true, false)
	}
	payOff := int(binary.LittleEndian.Uint64(d.seg.b[rec+8:]))
	k := int(binary.LittleEndian.Uint32(d.seg.b[payOff-blkHdrBytes+8:]))
	pay := d.seg.b[payOff : payOff+payLen : payOff+classData(k)]
	d.framesRecv.Add(1)
	d.bytesRecv.Add(uint64(hdrLen + payLen))
	if hdrLen == 0 {
		return transport.PooledFrame(pay, nil, true, false)
	}
	data := transport.GetBuf(hdrLen)
	copy(data, d.seg.b[rec+recHdr:rec+recHdr+hdrLen])
	return transport.PooledFrame(data, pay, true, true)
}

// allocWait gets an arena block for a mandatory copy, blocking until
// the shared free lists recirculate one. It fails fast when the frame
// can never fit, and notices a dead/closed destination while waiting.
func (d *Device) allocWait(n, ds int) ([]byte, error) {
	k := classFor(n)
	if k < 0 || blkHdrBytes+classData(k) > d.seg.arenaLen {
		return nil, fmt.Errorf("shmipc: %d-byte frame exceeds arena capacity (%d)", n, d.seg.arenaLen)
	}
	d.seg.arGets.Add(1)
	var bo backoff
	for {
		if b := d.seg.allocBlock(k, n); b != nil {
			return b, nil
		}
		if d.closed.Load() {
			return nil, transport.ErrClosed
		}
		if bo.probeTick() {
			if err := d.checkPeer(ds); err != nil {
				return nil, err
			}
		}
		bo.pause()
	}
}

// Close marks this rank's slot closed (peers blocked on a full ring
// toward it observe ErrClosed) and unblocks local Recv calls. The
// mapping itself stays live until process exit so frames still aliasing
// segment memory remain valid.
func (d *Device) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	atomic.StoreUint32(d.seg.rankStateWord(d.slot), rankClosed)
	if d.arenaShared {
		transport.ReleaseArena(d.seg)
	}
	return nil
}

// DeviceStats reports this endpoint's traffic with the shared arena's
// counters as its pool dimension.
func (d *Device) DeviceStats() []transport.DevStats {
	return []transport.DevStats{{
		Name:       "shm",
		FramesSent: d.framesSent.Load(),
		FramesRecv: d.framesRecv.Load(),
		BytesSent:  d.bytesSent.Load(),
		BytesRecv:  d.bytesRecv.Load(),
		Pool:       d.seg.ArenaStats(),
	}}
}

// errUnsupported is what the probe reports on platforms without a
// shared mmap.
var errUnsupported = errors.New("shmipc: shared memory transport unsupported on this platform")

var procJobSeq atomic.Uint64

// NewProcJob creates an n-rank job whose devices share one fresh
// segment within this process — the shared-memory analogue of
// NewLoopbackJob, used by tests and benchmarks. The segment file is
// unlinked immediately (the mapping keeps it alive), so even a crashed
// test leaks nothing.
func NewProcJob(n int, cfg Config) ([]transport.Device, error) {
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	path := filepath.Join(DefaultDir(),
		fmt.Sprintf("%sproc-%d-%d.seg", SegPrefix, os.Getpid(), procJobSeq.Add(1)))
	seg, err := Create(path, ranks, cfg)
	if err != nil {
		return nil, err
	}
	seg.Unlink() //nolint:errcheck // mapping keeps the memory alive
	devs := make([]transport.Device, n)
	for i := range devs {
		dev, err := Attach(seg, i, n)
		if err != nil {
			for _, d := range devs[:i] {
				d.Close()
			}
			return nil, err
		}
		devs[i] = dev
	}
	return devs, nil
}

func init() {
	transport.Register(transport.Entry{
		Name: "shm",
		Probe: func(spec transport.JobSpec) error {
			if !shmSupported {
				return errUnsupported
			}
			if spec.Segment == "" {
				return errors.New("launcher provided no shared segment")
			}
			if len(spec.SegmentRanks) < spec.Size {
				return fmt.Errorf("segment covers %d of %d ranks (hybrid job needs -device auto)",
					len(spec.SegmentRanks), spec.Size)
			}
			return nil
		},
		New: func(spec transport.JobSpec) (transport.Device, error) {
			seg, err := Open(spec.Segment, 10*time.Second)
			if err != nil {
				return nil, err
			}
			return Attach(seg, spec.Rank, spec.Size)
		},
	})
}
