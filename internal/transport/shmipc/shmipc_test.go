package shmipc

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gompi/internal/transport"
)

func newPair(t *testing.T, cfg Config) []transport.Device {
	t.Helper()
	devs, err := NewProcJob(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, d := range devs {
			d.Close()
		}
	})
	return devs
}

// TestFIFOPerPair is the transport contract test: every rank floods
// every other rank with numbered frames; receivers must observe each
// sender's sequence in order.
func TestFIFOPerPair(t *testing.T) {
	devs, err := NewProcJob(3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, d := range devs {
			d.Close()
		}
	}()
	const n = 500
	var wg sync.WaitGroup
	for i := range devs {
		wg.Add(1)
		go func(d transport.Device) {
			defer wg.Done()
			for k := 0; k < n; k++ {
				for j := range devs {
					if j == d.Rank() {
						continue
					}
					frame := []byte{byte(d.Rank()), byte(k >> 8), byte(k)}
					if err := d.Send(j, frame); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
			}
		}(devs[i])
	}
	for i := range devs {
		wg.Add(1)
		go func(d transport.Device) {
			defer wg.Done()
			last := make(map[byte]int)
			total := (len(devs) - 1) * n
			for c := 0; c < total; c++ {
				f, err := d.Recv()
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				src := f.Data[0]
				seq := int(f.Data[1])<<8 | int(f.Data[2])
				f.Release()
				if prev, ok := last[src]; ok && seq != prev+1 {
					t.Errorf("rank %d: from %d got seq %d after %d", d.Rank(), src, seq, prev)
					return
				}
				last[src] = seq
			}
		}(devs[i])
	}
	wg.Wait()
}

func TestSelfSend(t *testing.T) {
	devs := newPair(t, Config{})
	want := []byte("self")
	if err := devs[0].Send(0, want); err != nil {
		t.Fatal(err)
	}
	got, err := devs[0].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, want) {
		t.Fatalf("got %q", got.Data)
	}
	got.Release()
}

func TestLargeFrameContiguous(t *testing.T) {
	devs := newPair(t, Config{})
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	go devs[0].Send(1, append([]byte(nil), big...)) //nolint:errcheck // checked via received bytes
	got, err := devs[1].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, big) {
		t.Fatal("large frame corrupted")
	}
	got.Release()
}

func TestBadDestination(t *testing.T) {
	devs := newPair(t, Config{})
	if err := devs[0].Send(5, []byte("x")); err == nil {
		t.Fatal("out-of-range destination must error")
	}
	if err := devs[0].Send(-1, []byte("x")); err == nil {
		t.Fatal("negative destination must error")
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	devs := newPair(t, Config{})
	done := make(chan error, 1)
	go func() {
		_, err := devs[0].Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	devs[0].Close()
	select {
	case err := <-done:
		if !errors.Is(err, transport.ErrClosed) {
			t.Fatalf("got %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

// TestZeroCopyRecirculation exercises the headline path: a pooled
// payload is packed straight into segment memory (the arena hook),
// published by reference, read in place by the receiver, and freed back
// to the shared free list, so the next send reuses the same block.
func TestZeroCopyRecirculation(t *testing.T) {
	devs := newPair(t, Config{})
	dev0 := devs[0].(*Device)
	seg := dev0.Segment()

	const size = 64 << 10
	for round := 0; round < 8; round++ {
		payload := transport.GetBuf(size)
		if off, ok := dev0.isBlock(payload); !ok {
			t.Fatalf("round %d: GetBuf(%d) not served from the arena", round, size)
		} else if round == 0 && off == 0 {
			t.Fatal("bogus block offset")
		}
		for i := range payload {
			payload[i] = byte(i + round)
		}
		hdr := transport.GetBuf(16)
		if err := devs[0].Sendv(1, hdr, payload, true); err != nil {
			t.Fatal(err)
		}
		f, err := devs[1].Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Payload) != size || f.Payload[1] != byte(1+round) {
			t.Fatalf("round %d: bad payload", round)
		}
		if !f.PayloadPooled() {
			t.Fatal("referenced payload must be pool-marked")
		}
		f.Release()
	}
	st := seg.ArenaStats()
	if st.Hits == 0 {
		t.Fatalf("no block recirculation: %+v", st)
	}
}

// TestRingBackpressure fills a tiny ring and checks the producer blocks
// until the consumer drains, with no frame lost or reordered.
func TestRingBackpressure(t *testing.T) {
	devs := newPair(t, Config{Slots: 4})
	const total = 32
	var sent atomic.Int32
	go func() {
		for k := 0; k < total; k++ {
			if err := devs[0].Send(1, []byte{byte(k)}); err != nil {
				t.Errorf("send %d: %v", k, err)
				return
			}
			sent.Add(1)
		}
	}()
	time.Sleep(100 * time.Millisecond)
	if got := sent.Load(); got > 4 {
		t.Fatalf("ring of 4 accepted %d frames without a consumer", got)
	}
	for k := 0; k < total; k++ {
		f, err := devs[1].Recv()
		if err != nil {
			t.Fatal(err)
		}
		if f.Data[0] != byte(k) {
			t.Fatalf("frame %d out of order: got %d", k, f.Data[0])
		}
		f.Release()
	}
}

// TestSendToClosedPeer checks a producer blocked on a full ring toward
// a closed rank fails with ErrClosed instead of spinning forever.
func TestSendToClosedPeer(t *testing.T) {
	devs := newPair(t, Config{Slots: 4})
	devs[1].Close()
	var err error
	for k := 0; k < 16; k++ {
		if err = devs[0].Send(1, []byte{byte(k)}); err != nil {
			break
		}
	}
	if !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("got %v, want ErrClosed once the ring filled", err)
	}
}

// TestPeerLost simulates a vanished process by planting a dead pid in
// the peer's rank record: Recv must surface PeerLostError exactly once
// and keep the device open.
func TestPeerLost(t *testing.T) {
	devs := newPair(t, Config{})
	dev0 := devs[0].(*Device)
	seg := dev0.Segment()
	dead := deadPID(t)
	atomic.StoreUint64(seg.rankPIDWord(1), uint64(dead))

	_, err := devs[0].Recv()
	var pl *transport.PeerLostError
	if !errors.As(err, &pl) || pl.Peer != 1 {
		t.Fatalf("got %v, want PeerLostError for rank 1", err)
	}
	// The device still works: self traffic flows after the report.
	if err := devs[0].Send(0, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	f, err := devs[0].Recv()
	if err != nil {
		t.Fatalf("device unusable after peer loss: %v", err)
	}
	f.Release()
}

// TestCleanupStale checks the crash sweep removes a segment whose
// creator died and leaves live ones alone.
func TestCleanupStale(t *testing.T) {
	dir := t.TempDir()
	live, err := Create(filepath.Join(dir, SegPrefix+"live.seg"), []int{0}, Config{ArenaBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Unlink() //nolint:errcheck // best-effort test cleanup
	stale, err := Create(filepath.Join(dir, SegPrefix+"stale.seg"), []int{0}, Config{ArenaBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the stale segment's owner pid to a dead process's.
	f, err := os.OpenFile(stale.Path(), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var pid [4]byte
	dead := deadPID(t)
	pid[0], pid[1], pid[2], pid[3] = byte(dead), byte(dead>>8), byte(dead>>16), byte(dead>>24)
	if _, err := f.WriteAt(pid[:], offOwnerPID); err != nil {
		t.Fatal(err)
	}
	f.Close()

	removed, err := CleanupStale(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || filepath.Base(removed[0]) != SegPrefix+"stale.seg" {
		t.Fatalf("removed %v, want just the stale segment", removed)
	}
	if _, err := os.Stat(live.Path()); err != nil {
		t.Fatalf("live segment swept away: %v", err)
	}
}

// deadPID returns a pid with no living process behind it.
func deadPID(t *testing.T) int {
	t.Helper()
	for pid := 1 << 22; pid > 1<<20; pid -= 7919 {
		if !pidAlive(pid) {
			return pid
		}
	}
	t.Fatal("no dead pid found")
	return 0
}

// TestRegistry constructs devices through the transport registry, the
// way a launched rank does.
func TestRegistry(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SegPrefix+"reg.seg")
	seg, err := Create(path, []int{0, 1}, Config{ArenaBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Unlink() //nolint:errcheck // best-effort test cleanup
	var devs [2]transport.Device
	for r := 0; r < 2; r++ {
		devs[r], err = transport.NewDevice("shm", transport.JobSpec{
			Rank: r, Size: 2, Segment: path, SegmentRanks: []int{0, 1},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	defer devs[0].Close()
	defer devs[1].Close()
	if err := devs[0].Send(1, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	f, err := devs[1].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(f.Data) != "hi" {
		t.Fatalf("got %q", f.Data)
	}
	f.Release()

	st := transport.DeviceStatsOf(devs[0])
	if len(st) != 1 || st[0].Name != "shm" || st[0].FramesSent != 1 {
		t.Fatalf("bad device stats: %+v", st)
	}

	if _, err := transport.NewDevice("shm", transport.JobSpec{Rank: 0, Size: 2}); err == nil {
		t.Fatal("probe must reject a spec without a segment")
	}
	if _, err := transport.NewDevice("shm", transport.JobSpec{
		Rank: 0, Size: 4, Segment: path, SegmentRanks: []int{0, 1},
	}); err == nil {
		t.Fatal("probe must reject a segment covering only part of the world")
	}
}

// TestHybridOverProcJob routes a 4-rank world over two 2-rank shm
// islands bridged per-pair by the in-process channel device — the same
// composition shape launch uses for multi-node jobs, minus sockets.
func TestHybridOverProcJob(t *testing.T) {
	island0, err := NewProcJob(2, Config{ArenaBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// World ranks 2,3 on the second island need world-rank slots, so
	// build its segment explicitly.
	dir := t.TempDir()
	seg, err := Create(filepath.Join(dir, SegPrefix+"isl1.seg"), []int{2, 3}, Config{ArenaBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Unlink() //nolint:errcheck // best-effort test cleanup
	island1 := make([]transport.Device, 2)
	for i := 0; i < 2; i++ {
		d, err := Attach(seg, 2+i, 4)
		if err != nil {
			t.Fatal(err)
		}
		island1[i] = d
	}
	bridge := transport.NewShmJob(4, 0)

	hybrids := make([]transport.Device, 4)
	for r := 0; r < 4; r++ {
		route := make([]transport.Device, 4)
		var local transport.Device
		if r < 2 {
			local = island0[r]
		} else {
			local = island1[r-2]
		}
		for p := 0; p < 4; p++ {
			if (r < 2) == (p < 2) {
				route[p] = local
			} else {
				route[p] = bridge[r]
			}
		}
		h, err := transport.NewHybrid(r, 4, route)
		if err != nil {
			t.Fatal(err)
		}
		hybrids[r] = h
	}
	defer func() {
		for _, h := range hybrids {
			h.Close()
		}
	}()

	var wg sync.WaitGroup
	for r := range hybrids {
		wg.Add(1)
		go func(d transport.Device) {
			defer wg.Done()
			for p := 0; p < 4; p++ {
				if p == d.Rank() {
					continue
				}
				msg := fmt.Sprintf("%d->%d", d.Rank(), p)
				if err := d.Send(p, []byte(msg)); err != nil {
					t.Errorf("send %s: %v", msg, err)
				}
			}
			got := map[string]bool{}
			for c := 0; c < 3; c++ {
				f, err := d.Recv()
				if err != nil {
					t.Errorf("rank %d recv: %v", d.Rank(), err)
					return
				}
				got[string(f.Data)] = true
				f.Release()
			}
			for p := 0; p < 4; p++ {
				if p != d.Rank() && !got[fmt.Sprintf("%d->%d", p, d.Rank())] {
					t.Errorf("rank %d missing frame from %d (got %v)", d.Rank(), p, got)
				}
			}
		}(hybrids[r])
	}
	wg.Wait()

	st := transport.DeviceStatsOf(hybrids[0])
	names := map[string]bool{}
	for _, s := range st {
		names[s.Name] = true
	}
	if !names["shm"] || !names["chan"] {
		t.Fatalf("hybrid stats missing a medium: %+v", st)
	}
}
