//go:build unix

package shmipc

import (
	"errors"
	"os"
	"syscall"
)

// shmSupported gates the registry probe: this platform has MAP_SHARED.
const shmSupported = true

// mmapFile maps the file's first size bytes shared read-write.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

// munmapFile releases a mapping made by mmapFile.
func munmapFile(b []byte) error {
	return syscall.Munmap(b)
}

// pidAlive reports whether a process with the given id exists. EPERM
// means "exists but not ours", which is alive for our purposes.
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	err := syscall.Kill(pid, 0)
	return err == nil || errors.Is(err, syscall.EPERM)
}
