//go:build !unix

package shmipc

import "os"

// shmSupported gates the registry probe off: no shared mmap here, so
// device selection falls back to sockets.
const shmSupported = false

func mmapFile(f *os.File, size int) ([]byte, error) { return nil, errUnsupported }

func munmapFile(b []byte) error { return errUnsupported }

func pidAlive(pid int) bool { return true }
