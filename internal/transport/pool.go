package transport

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// Frame buffer pooling. Every layer of the hot path — the engine's frame
// headers, the binding's packed payloads, the TCP device's receive
// staging — allocates from one process-wide, size-classed pool, so a
// steady-state ping-pong recirculates a fixed working set instead of
// producing garbage per message. Buffers are recycled across ranks: in
// SM mode the payload a sender packs is, after the receiver consumes and
// releases it, handed straight back to the next sender.
//
// The pool stores raw array pointers rather than slice headers: an
// unsafe.Pointer is pointer-shaped and converts to interface{} without
// allocating, where boxing a []byte would cost one allocation per Put —
// exactly the garbage the pool exists to avoid. The cost is that only
// buffers whose capacity exactly matches a size class are accepted back;
// GetBuf always returns class-capacity slices, so pool-born buffers
// always recycle, and foreign buffers are silently dropped to the GC
// rather than corrupting a class.

// bufClasses are the pooled capacity classes. The smallest covers frame
// headers (≤ 29 bytes); the larger ones carry 64 bytes of slack beyond
// their nominal power-of-two so a power-of-two payload plus its frame
// header (the shape every TCP receive stages) still fits its own class
// instead of quadrupling into the next. The largest covers the biggest
// rendezvous payloads worth retaining.
const classSlack = 64

var bufClasses = [...]int{
	64,
	512 + classSlack,
	1<<10 + classSlack,
	4<<10 + classSlack,
	16<<10 + classSlack,
	64<<10 + classSlack,
	256<<10 + classSlack,
	1<<20 + classSlack,
	4<<20 + classSlack,
}

var bufPools [len(bufClasses)]sync.Pool

// PoolStats are monotonic counters describing pool behaviour; read them
// with PoolSnapshot.
var poolGets, poolHits, poolPuts, poolDrops atomic.Uint64

// PoolSnapshot is a point-in-time copy of the frame-pool counters.
type PoolSnapshot struct {
	// Gets counts GetBuf calls (including over-size ones).
	Gets uint64
	// Hits counts GetBuf calls satisfied by a recycled buffer.
	Hits uint64
	// Puts counts buffers accepted back into a class.
	Puts uint64
	// Drops counts PutBuf calls whose buffer matched no class and was
	// left to the garbage collector.
	Drops uint64
}

// HitRate returns Hits/Gets, or 0 before the first Get.
func (s PoolSnapshot) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// PoolStats returns the current frame-pool counters.
func PoolStats() PoolSnapshot {
	return PoolSnapshot{
		Gets:  poolGets.Load(),
		Hits:  poolHits.Load(),
		Puts:  poolPuts.Load(),
		Drops: poolDrops.Load(),
	}
}

// Arena is a pluggable buffer source layered in front of the private
// size-classed pool — the hook a shared-memory segment uses to make
// GetBuf hand out storage living in the segment, so payloads are packed
// straight into cross-process-visible memory and `recycle` ownership
// transfer shuttles them between processes without a copy. AllocBuf
// returns nil when the request cannot or should not be served from the
// arena (too small, too large, arena full), in which case GetBuf falls
// through to the private pool. FreeBuf returns false for buffers the
// arena does not own.
type Arena interface {
	AllocBuf(n int) []byte
	FreeBuf(b []byte) bool
}

// activeArena is the installed arena, if any. One arena serves the
// whole process: a rank attaches at most one segment, and in-process
// jobs share a single segment across ranks.
var activeArena atomic.Pointer[arenaSlot]

type arenaSlot struct {
	a    Arena
	refs atomic.Int32
}

// ShareArena installs a as the process's buffer arena, reference
// counted: each attach calls ShareArena, each detach ReleaseArena, and
// the hook uninstalls when the count drops to zero. Installing a second
// distinct arena while one is active is refused (the caller keeps
// working, just without segment-backed buffers) — one segment per
// process is the deployment model, and silently swapping arenas under
// live buffers would misroute frees.
func ShareArena(a Arena) bool {
	for {
		cur := activeArena.Load()
		if cur == nil {
			slot := &arenaSlot{a: a}
			slot.refs.Store(1)
			if activeArena.CompareAndSwap(nil, slot) {
				return true
			}
			continue
		}
		if cur.a != a {
			return false
		}
		cur.refs.Add(1)
		return true
	}
}

// ReleaseArena drops one reference on the installed arena, uninstalling
// the hook at zero. Buffers still outstanding keep working: PutBuf on
// an orphaned arena buffer matches no private class and is dropped to
// the garbage collector rather than poisoning a pool.
func ReleaseArena(a Arena) {
	cur := activeArena.Load()
	if cur == nil || cur.a != a {
		return
	}
	if cur.refs.Add(-1) == 0 {
		activeArena.CompareAndSwap(cur, nil)
	}
}

// classOf returns the index of the smallest class with capacity >= n,
// or -1 if n exceeds every class.
func classOf(n int) int {
	for i, c := range bufClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// GetBuf returns a length-n byte slice for frame or payload use. The
// slice's capacity is the containing size class, so a later PutBuf
// re-pools it. Requests beyond the largest class fall through to the
// allocator.
func GetBuf(n int) []byte {
	poolGets.Add(1)
	if slot := activeArena.Load(); slot != nil {
		if b := slot.a.AllocBuf(n); b != nil {
			poolHits.Add(1)
			return b
		}
	}
	ci := classOf(n)
	if ci < 0 {
		return make([]byte, n)
	}
	if p := bufPools[ci].Get(); p != nil {
		poolHits.Add(1)
		return unsafe.Slice((*byte)(p.(unsafe.Pointer)), bufClasses[ci])[:n]
	}
	return make([]byte, n, bufClasses[ci])[:n]
}

// PutBuf returns a buffer to its size class. Only buffers whose capacity
// exactly matches a class — i.e. buffers born from GetBuf — are pooled;
// anything else is dropped to the GC, so a sliced-down or foreign buffer
// can never poison a class with the wrong capacity.
func PutBuf(b []byte) {
	c := cap(b)
	if c == 0 {
		return
	}
	if slot := activeArena.Load(); slot != nil && slot.a.FreeBuf(b) {
		poolPuts.Add(1)
		return
	}
	for i, cl := range bufClasses {
		if cl == c {
			poolPuts.Add(1)
			bufPools[i].Put(unsafe.Pointer(unsafe.SliceData(b[:c])))
			return
		}
	}
	poolDrops.Add(1)
}
