package transport

import (
	"sync"
	"time"

	"gompi/internal/spin"
)

// LinkProfile describes the artificial costs a Shaped device injects per
// frame. It is the knob set the benchmark calibration uses to emulate the
// paper's 1999 testbed (DESIGN.md §2): per-message software cost models
// the MPI implementation's send path (WMPI optimized vs MPICH portable),
// StagingCopy models MPICH's extra buffer copy, and Latency/BytesPerSec
// model the 10BaseT Ethernet link of DM mode.
type LinkProfile struct {
	// PerMessage is software overhead added to every frame send.
	PerMessage time.Duration
	// Latency is one-way link latency added to every frame.
	Latency time.Duration
	// BytesPerSec caps throughput; 0 means unlimited. The serialization
	// delay len(frame)/BytesPerSec is charged to the sender, which is
	// accurate for the half-duplex ping-pong traffic the paper measures.
	BytesPerSec float64
	// PerByte is additional per-byte software cost (memory copies in
	// the protocol stack); 0 disables it.
	PerByte time.Duration
	// StagingCopy forces an extra full copy of every frame on the send
	// path, modeling a portable implementation's staging buffer.
	StagingCopy bool
}

// Zero reports whether the profile injects nothing.
func (p LinkProfile) Zero() bool {
	return p.PerMessage == 0 && p.Latency == 0 && p.BytesPerSec == 0 && p.PerByte == 0 && !p.StagingCopy
}

// Shaped wraps a Device, charging LinkProfile costs on every Send. Recv,
// Rank, Size and Close pass through.
type Shaped struct {
	Device
	Profile LinkProfile

	mu sync.Mutex
	// linkFree is the time the emulated link finishes transmitting all
	// previously charged frames; serialization delays accumulate when
	// the sender outpaces the link, as a real NIC queue would.
	linkFree time.Time
}

// NewShaped wraps dev with a cost profile. A zero profile is returned
// unwrapped, so the fast path costs nothing.
func NewShaped(dev Device, p LinkProfile) Device {
	if p.Zero() {
		return dev
	}
	return &Shaped{Device: dev, Profile: p}
}

// Send charges the profile's costs, then forwards to the inner device.
func (s *Shaped) Send(dst int, frame []byte) error {
	if s.Profile.StagingCopy {
		staged := make([]byte, len(frame))
		copy(staged, frame)
		frame = staged
	}
	s.charge(len(frame))
	return s.Device.Send(dst, frame)
}

// Sendv charges the profile's costs for the whole gather, then forwards.
// The staging copy models a portable implementation's bounce buffer: the
// bytes are copied (and the cost paid) but the original scatter-gather
// frame travels on, preserving the ownership protocol.
func (s *Shaped) Sendv(dst int, hdr, payload []byte, recycle bool) error {
	n := len(hdr) + len(payload)
	if s.Profile.StagingCopy {
		staged := make([]byte, n)
		copy(staged[copy(staged, hdr):], payload)
	}
	s.charge(n)
	return s.Device.Sendv(dst, hdr, payload, recycle)
}

// Unwrap exposes the inner device so stats queries (DeviceStatsOf) look
// through the shaping decorator.
func (s *Shaped) Unwrap() Device { return s.Device }

// charge spins for the profile's software and link costs of an n-byte
// frame.
func (s *Shaped) charge(n int) {
	p := s.Profile
	delay := p.PerMessage + p.Latency + time.Duration(n)*p.PerByte
	if p.BytesPerSec > 0 {
		ser := time.Duration(float64(n) / p.BytesPerSec * float64(time.Second))
		s.mu.Lock()
		now := time.Now()
		if s.linkFree.Before(now) {
			s.linkFree = now
		}
		s.linkFree = s.linkFree.Add(ser)
		wait := time.Until(s.linkFree)
		s.mu.Unlock()
		delay += wait
	}
	spin.Wait(delay)
}
