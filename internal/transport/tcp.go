package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPDevice is one endpoint of a socket-mesh job: the paper's Distributed
// Memory (DM) mode. Every pair of ranks shares one TCP connection
// carrying length-prefixed frames; per-pair FIFO ordering follows from
// TCP's byte-stream ordering plus a per-connection writer lock.
type TCPDevice struct {
	rank, size int
	peers      []*peerConn // indexed by rank; nil at own rank
	ln         net.Listener
	ownsLn     bool

	inbox chan Frame
	// fail carries peer-loss reports out of the read loops: a
	// connection that dies mid-stream surfaces as PeerLostError from
	// Recv instead of a silent stall, so receives pending on that peer
	// fail with an MPI error class rather than hanging.
	fail      chan error
	done      chan struct{}
	closeOnce sync.Once
	readers   sync.WaitGroup

	devCounters
}

// peerWriterSize is the per-peer staging buffer: a length prefix, header
// and small payload coalesce into one buffered write and flush as a
// single syscall, while writes larger than the buffer stream through
// bufio's large-write bypass without an extra copy.
const peerWriterSize = 16 << 10

type peerConn struct {
	mu sync.Mutex // serializes frame writes
	c  net.Conn
	w  *bufio.Writer
}

func newPeerConn(c net.Conn) *peerConn {
	return &peerConn{c: c, w: bufio.NewWriterSize(c, peerWriterSize)}
}

// writeFrame writes one length-prefixed frame as the gather of hdr and
// payload through the peer's buffered writer, flushing before return so
// no progress logic is needed to push stragglers out.
func (p *peerConn) writeFrame(hdr, payload []byte) error {
	var lp [4]byte
	binary.LittleEndian.PutUint32(lp[:], uint32(len(hdr)+len(payload)))
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, err := p.w.Write(lp[:]); err != nil {
		return err
	}
	if _, err := p.w.Write(hdr); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := p.w.Write(payload); err != nil {
			return err
		}
	}
	return p.w.Flush()
}

const meshMagic = 0x6d706a31 // "mpj1"

// ConnectMesh builds the full connection mesh for one rank of a size-rank
// job. addrs[i] is the listen address of rank i's listener; ln is this
// rank's own listener (retained and closed by the device if ownsListener
// is true). Rank r dials every lower rank and accepts from every higher
// rank, identifying peers through a handshake frame, so the procedure is
// deadlock-free regardless of scheduling.
func ConnectMesh(rank, size int, addrs []string, ln net.Listener, ownsListener bool) (*TCPDevice, error) {
	return ConnectPartialMesh(rank, size, addrs, ln, ownsListener, nil)
}

// ConnectPartialMesh is ConnectMesh restricted to a peer subset: ranks
// with skip[r] set get no connection (a hybrid job reaches them through
// another medium). A nil skip connects everyone. Sends toward a skipped
// rank fail with ErrClosed.
func ConnectPartialMesh(rank, size int, addrs []string, ln net.Listener, ownsListener bool, skip []bool) (*TCPDevice, error) {
	if len(addrs) != size {
		return nil, fmt.Errorf("transport: %d addresses for job size %d", len(addrs), size)
	}
	skipped := func(r int) bool { return skip != nil && r < len(skip) && skip[r] }
	d := &TCPDevice{
		rank:   rank,
		size:   size,
		peers:  make([]*peerConn, size),
		ln:     ln,
		ownsLn: ownsListener,
		inbox:  make(chan Frame, DefaultInboxDepth),
		fail:   make(chan error, size),
		done:   make(chan struct{}),
	}
	// Dial lower ranks.
	for j := 0; j < rank; j++ {
		if skipped(j) {
			continue
		}
		c, err := dialPeer(addrs[j], rank)
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("transport: rank %d dialing rank %d: %w", rank, j, err)
		}
		d.peers[j] = newPeerConn(c)
	}
	// Accept higher ranks.
	need := 0
	for r := rank + 1; r < size; r++ {
		if !skipped(r) {
			need++
		}
	}
	for ; need > 0; need-- {
		c, peer, err := acceptPeer(ln)
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("transport: rank %d accepting: %w", rank, err)
		}
		if peer <= rank || peer >= size || skipped(peer) || d.peers[peer] != nil {
			c.Close()
			d.Close()
			return nil, fmt.Errorf("transport: rank %d got bad handshake from claimed rank %d", rank, peer)
		}
		d.peers[peer] = newPeerConn(c)
	}
	for r, p := range d.peers {
		if p != nil {
			d.readers.Add(1)
			go d.readLoop(r, p.c)
		}
	}
	return d, nil
}

func dialPeer(addr string, myRank int) (net.Conn, error) {
	var c net.Conn
	var err error
	// The peer's listener exists before addresses are published, but
	// transient kernel-level refusals can still happen under load.
	for attempt := 0; attempt < 50; attempt++ {
		c, err = net.DialTimeout("tcp", addr, 5*time.Second)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return nil, err
	}
	tuneConn(c)
	var hs [8]byte
	binary.LittleEndian.PutUint32(hs[0:], meshMagic)
	binary.LittleEndian.PutUint32(hs[4:], uint32(myRank))
	if _, err := c.Write(hs[:]); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

func acceptPeer(ln net.Listener) (net.Conn, int, error) {
	c, err := ln.Accept()
	if err != nil {
		return nil, 0, err
	}
	tuneConn(c)
	var hs [8]byte
	if _, err := io.ReadFull(c, hs[:]); err != nil {
		c.Close()
		return nil, 0, err
	}
	if binary.LittleEndian.Uint32(hs[0:]) != meshMagic {
		c.Close()
		return nil, 0, fmt.Errorf("bad mesh handshake magic")
	}
	return c, int(binary.LittleEndian.Uint32(hs[4:])), nil
}

func tuneConn(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // latency matters more than throughput here
	}
}

// NewLoopbackJob creates an n-rank DM-mode job entirely in-process over
// 127.0.0.1, for tests and benchmarks: real sockets, real wire framing,
// no separate OS processes.
func NewLoopbackJob(n int) ([]*TCPDevice, error) {
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				lns[j].Close()
			}
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	devs := make([]*TCPDevice, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			devs[i], errs[i] = ConnectMesh(i, n, addrs, lns[i], true)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, d := range devs {
				if d != nil {
					d.Close()
				}
			}
			return nil, err
		}
	}
	return devs, nil
}

// Rank returns this endpoint's world rank.
func (d *TCPDevice) Rank() int { return d.rank }

// Size returns the number of ranks in the job.
func (d *TCPDevice) Size() int { return d.size }

// Send writes frame to rank dst over its mesh connection. The frame is
// not returned to the frame pool: a legacy contiguous send carries no
// exclusivity promise.
func (d *TCPDevice) Send(dst int, frame []byte) error {
	if err := checkDst(dst, d.size); err != nil {
		return err
	}
	if dst == d.rank {
		return d.selfDeliver(Frame{Data: frame})
	}
	p := d.peers[dst]
	if p == nil {
		return ErrClosed
	}
	if err := p.writeFrame(frame, nil); err != nil {
		return fmt.Errorf("transport: send to rank %d: %w", dst, err)
	}
	d.countSend(len(frame))
	return nil
}

// Sendv writes the (hdr, payload) gather to rank dst without assembling
// a contiguous frame; both slices are recycled into the frame pool once
// the bytes are on the wire (the payload only when the sender vouched
// for exclusive ownership).
func (d *TCPDevice) Sendv(dst int, hdr, payload []byte, recycle bool) error {
	if err := checkDst(dst, d.size); err != nil {
		PutBuf(hdr)
		if recycle {
			PutBuf(payload)
		}
		return err
	}
	if dst == d.rank {
		return d.selfDeliver(Frame{Data: hdr, Payload: payload, pooledData: true, pooledPayload: recycle})
	}
	p := d.peers[dst]
	if p == nil {
		PutBuf(hdr)
		if recycle {
			PutBuf(payload)
		}
		return ErrClosed
	}
	err := p.writeFrame(hdr, payload)
	n := len(hdr) + len(payload)
	PutBuf(hdr)
	if recycle {
		PutBuf(payload)
	}
	if err != nil {
		return fmt.Errorf("transport: send to rank %d: %w", dst, err)
	}
	d.countSend(n)
	return nil
}

// selfDeliver enqueues f on the local inbox, releasing its pooled
// storage if the device is already closed and nobody will consume it.
func (d *TCPDevice) selfDeliver(f Frame) error {
	n := len(f.Data) + len(f.Payload)
	select {
	case d.inbox <- f:
		d.countSend(n)
		d.countRecv(n)
		return nil
	case <-d.done:
		f.Release()
		return ErrClosed
	}
}

// Recv returns the next frame addressed to this rank, or a
// PeerLostError when a mesh connection died mid-stream (the device
// stays usable for the surviving peers).
func (d *TCPDevice) Recv() (Frame, error) {
	// Frames already received win over failure reports.
	select {
	case f := <-d.inbox:
		return f, nil
	default:
	}
	select {
	case f := <-d.inbox:
		return f, nil
	case err := <-d.fail:
		return Frame{}, err
	case <-d.done:
		select {
		case f := <-d.inbox:
			return f, nil
		default:
			return Frame{}, ErrClosed
		}
	}
}

// peerLost reports a dead mesh connection, unless the read error is
// just this endpoint's own shutdown tearing connections down.
func (d *TCPDevice) peerLost(peer int, err error) {
	select {
	case <-d.done:
		return
	default:
	}
	select {
	case d.fail <- &PeerLostError{Peer: peer, Err: err}:
	default:
	}
}

func (d *TCPDevice) readLoop(peer int, c net.Conn) {
	defer d.readers.Done()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			d.peerLost(peer, err)
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		// Stage the whole frame in one pooled buffer; the engine
		// parses the header in place and hands the payload tail to the
		// matching receive without another copy.
		frame := GetBuf(int(n))
		if _, err := io.ReadFull(c, frame); err != nil {
			d.peerLost(peer, err)
			return
		}
		d.countRecv(int(n))
		select {
		case d.inbox <- Frame{Data: frame, pooledData: true}:
		case <-d.done:
			return
		}
	}
}

// Close tears down the mesh endpoint: the listener (if owned), all peer
// connections, and any blocked Recv calls.
func (d *TCPDevice) Close() error {
	d.closeOnce.Do(func() {
		close(d.done)
		if d.ownsLn && d.ln != nil {
			d.ln.Close()
		}
		for _, p := range d.peers {
			if p != nil && p.c != nil {
				p.c.Close()
			}
		}
	})
	return nil
}

// DeviceStats reports this endpoint's traffic; its payload buffers come
// from the process-private pool.
func (d *TCPDevice) DeviceStats() []DevStats {
	return []DevStats{d.devCounters.stats("tcp", PoolStats())}
}

var _ Device = (*TCPDevice)(nil)
