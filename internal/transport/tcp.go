package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPDevice is one endpoint of a socket-mesh job: the paper's Distributed
// Memory (DM) mode. Every pair of ranks shares one TCP connection
// carrying length-prefixed frames; per-pair FIFO ordering follows from
// TCP's byte-stream ordering plus a per-connection writer lock.
type TCPDevice struct {
	rank, size int
	peers      []*peerConn // indexed by rank; nil at own rank
	ln         net.Listener
	ownsLn     bool

	inbox     chan []byte
	done      chan struct{}
	closeOnce sync.Once
	readers   sync.WaitGroup
}

type peerConn struct {
	mu sync.Mutex // serializes frame writes
	c  net.Conn
}

const meshMagic = 0x6d706a31 // "mpj1"

// ConnectMesh builds the full connection mesh for one rank of a size-rank
// job. addrs[i] is the listen address of rank i's listener; ln is this
// rank's own listener (retained and closed by the device if ownsListener
// is true). Rank r dials every lower rank and accepts from every higher
// rank, identifying peers through a handshake frame, so the procedure is
// deadlock-free regardless of scheduling.
func ConnectMesh(rank, size int, addrs []string, ln net.Listener, ownsListener bool) (*TCPDevice, error) {
	if len(addrs) != size {
		return nil, fmt.Errorf("transport: %d addresses for job size %d", len(addrs), size)
	}
	d := &TCPDevice{
		rank:   rank,
		size:   size,
		peers:  make([]*peerConn, size),
		ln:     ln,
		ownsLn: ownsListener,
		inbox:  make(chan []byte, DefaultInboxDepth),
		done:   make(chan struct{}),
	}
	// Dial lower ranks.
	for j := 0; j < rank; j++ {
		c, err := dialPeer(addrs[j], rank)
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("transport: rank %d dialing rank %d: %w", rank, j, err)
		}
		d.peers[j] = &peerConn{c: c}
	}
	// Accept higher ranks.
	for need := size - rank - 1; need > 0; need-- {
		c, peer, err := acceptPeer(ln)
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("transport: rank %d accepting: %w", rank, err)
		}
		if peer <= rank || peer >= size || d.peers[peer] != nil {
			c.Close()
			d.Close()
			return nil, fmt.Errorf("transport: rank %d got bad handshake from claimed rank %d", rank, peer)
		}
		d.peers[peer] = &peerConn{c: c}
	}
	for r, p := range d.peers {
		if p != nil {
			d.readers.Add(1)
			go d.readLoop(r, p.c)
		}
	}
	return d, nil
}

func dialPeer(addr string, myRank int) (net.Conn, error) {
	var c net.Conn
	var err error
	// The peer's listener exists before addresses are published, but
	// transient kernel-level refusals can still happen under load.
	for attempt := 0; attempt < 50; attempt++ {
		c, err = net.DialTimeout("tcp", addr, 5*time.Second)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return nil, err
	}
	tuneConn(c)
	var hs [8]byte
	binary.LittleEndian.PutUint32(hs[0:], meshMagic)
	binary.LittleEndian.PutUint32(hs[4:], uint32(myRank))
	if _, err := c.Write(hs[:]); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

func acceptPeer(ln net.Listener) (net.Conn, int, error) {
	c, err := ln.Accept()
	if err != nil {
		return nil, 0, err
	}
	tuneConn(c)
	var hs [8]byte
	if _, err := io.ReadFull(c, hs[:]); err != nil {
		c.Close()
		return nil, 0, err
	}
	if binary.LittleEndian.Uint32(hs[0:]) != meshMagic {
		c.Close()
		return nil, 0, fmt.Errorf("bad mesh handshake magic")
	}
	return c, int(binary.LittleEndian.Uint32(hs[4:])), nil
}

func tuneConn(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // latency matters more than throughput here
	}
}

// NewLoopbackJob creates an n-rank DM-mode job entirely in-process over
// 127.0.0.1, for tests and benchmarks: real sockets, real wire framing,
// no separate OS processes.
func NewLoopbackJob(n int) ([]*TCPDevice, error) {
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				lns[j].Close()
			}
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	devs := make([]*TCPDevice, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			devs[i], errs[i] = ConnectMesh(i, n, addrs, lns[i], true)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, d := range devs {
				if d != nil {
					d.Close()
				}
			}
			return nil, err
		}
	}
	return devs, nil
}

// Rank returns this endpoint's world rank.
func (d *TCPDevice) Rank() int { return d.rank }

// Size returns the number of ranks in the job.
func (d *TCPDevice) Size() int { return d.size }

// Send writes frame to rank dst over its mesh connection.
func (d *TCPDevice) Send(dst int, frame []byte) error {
	if err := checkDst(dst, d.size); err != nil {
		return err
	}
	if dst == d.rank {
		select {
		case d.inbox <- frame:
			return nil
		case <-d.done:
			return ErrClosed
		}
	}
	p := d.peers[dst]
	if p == nil {
		return ErrClosed
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(frame)))
	p.mu.Lock()
	defer p.mu.Unlock()
	bufs := net.Buffers{hdr[:], frame}
	if _, err := bufs.WriteTo(p.c); err != nil {
		return fmt.Errorf("transport: send to rank %d: %w", dst, err)
	}
	return nil
}

// Recv returns the next frame addressed to this rank.
func (d *TCPDevice) Recv() ([]byte, error) {
	select {
	case f := <-d.inbox:
		return f, nil
	case <-d.done:
		select {
		case f := <-d.inbox:
			return f, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (d *TCPDevice) readLoop(peer int, c net.Conn) {
	defer d.readers.Done()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			return // peer closed or we are shutting down
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		frame := make([]byte, n)
		if _, err := io.ReadFull(c, frame); err != nil {
			return
		}
		select {
		case d.inbox <- frame:
		case <-d.done:
			return
		}
	}
}

// Close tears down the mesh endpoint: the listener (if owned), all peer
// connections, and any blocked Recv calls.
func (d *TCPDevice) Close() error {
	d.closeOnce.Do(func() {
		close(d.done)
		if d.ownsLn && d.ln != nil {
			d.ln.Close()
		}
		for _, p := range d.peers {
			if p != nil && p.c != nil {
				p.c.Close()
			}
		}
	})
	return nil
}

var _ Device = (*TCPDevice)(nil)
