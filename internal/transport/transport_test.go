package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func testFIFOPerPair(t *testing.T, devs []Device) {
	t.Helper()
	const n = 500
	var wg sync.WaitGroup
	// Every rank sends n numbered frames to every other rank.
	for i := range devs {
		wg.Add(1)
		go func(d Device) {
			defer wg.Done()
			for k := 0; k < n; k++ {
				for j := range devs {
					if j == d.Rank() {
						continue
					}
					frame := []byte{byte(d.Rank()), byte(k >> 8), byte(k)}
					if err := d.Send(j, frame); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
			}
		}(devs[i])
	}
	// Every rank must observe per-sender ascending sequence numbers.
	for i := range devs {
		wg.Add(1)
		go func(d Device) {
			defer wg.Done()
			last := make(map[byte]int)
			for i := range last {
				_ = i
			}
			total := (len(devs) - 1) * n
			for c := 0; c < total; c++ {
				f, err := d.Recv()
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				src := f.Data[0]
				seq := int(f.Data[1])<<8 | int(f.Data[2])
				f.Release()
				if prev, ok := last[src]; ok && seq != prev+1 {
					t.Errorf("rank %d: from %d got seq %d after %d", d.Rank(), src, seq, prev)
					return
				}
				last[src] = seq
			}
		}(devs[i])
	}
	wg.Wait()
}

func TestShmFIFO(t *testing.T) {
	devs := NewShmJob(3, 0)
	ds := make([]Device, len(devs))
	for i, d := range devs {
		ds[i] = d
	}
	testFIFOPerPair(t, ds)
	for _, d := range devs {
		d.Close()
	}
}

func TestTCPFIFO(t *testing.T) {
	devs, err := NewLoopbackJob(3)
	if err != nil {
		t.Fatal(err)
	}
	ds := make([]Device, len(devs))
	for i, d := range devs {
		ds[i] = d
	}
	testFIFOPerPair(t, ds)
	for _, d := range devs {
		d.Close()
	}
}

func TestShmCloseUnblocksRecv(t *testing.T) {
	devs := NewShmJob(2, 0)
	done := make(chan error, 1)
	go func() {
		_, err := devs[0].Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	devs[0].Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("got %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestTCPSelfSend(t *testing.T) {
	devs, err := NewLoopbackJob(2)
	if err != nil {
		t.Fatal(err)
	}
	defer devs[0].Close()
	defer devs[1].Close()
	want := []byte("self")
	if err := devs[0].Send(0, want); err != nil {
		t.Fatal(err)
	}
	got, err := devs[0].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, want) {
		t.Fatalf("got %q", got.Data)
	}
}

func TestTCPLargeFrame(t *testing.T) {
	devs, err := NewLoopbackJob(2)
	if err != nil {
		t.Fatal(err)
	}
	defer devs[0].Close()
	defer devs[1].Close()
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	go devs[0].Send(1, big) //nolint:errcheck // checked via received bytes
	got, err := devs[1].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, big) {
		t.Fatal("large frame corrupted")
	}
	got.Release()
}

func TestBadDestination(t *testing.T) {
	devs := NewShmJob(2, 0)
	defer devs[0].Close()
	defer devs[1].Close()
	if err := devs[0].Send(5, []byte("x")); err == nil {
		t.Fatal("out-of-range destination must error")
	}
	if err := devs[0].Send(-1, []byte("x")); err == nil {
		t.Fatal("negative destination must error")
	}
}

func TestShapedZeroProfilePassThrough(t *testing.T) {
	devs := NewShmJob(2, 0)
	defer devs[0].Close()
	defer devs[1].Close()
	if got := NewShaped(devs[0], LinkProfile{}); got != Device(devs[0]) {
		t.Fatal("zero profile must return the inner device")
	}
}

func TestShapedLatency(t *testing.T) {
	devs := NewShmJob(2, 0)
	defer devs[0].Close()
	defer devs[1].Close()
	const lat = 2 * time.Millisecond
	s := NewShaped(devs[0], LinkProfile{Latency: lat})
	start := time.Now()
	if err := s.Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < lat {
		t.Fatalf("latency not charged: %v < %v", d, lat)
	}
}

func TestShapedBandwidth(t *testing.T) {
	devs := NewShmJob(2, 64)
	defer devs[0].Close()
	defer devs[1].Close()
	// 1 MB/s: a 10 KB frame must take >= ~10 ms.
	s := NewShaped(devs[0], LinkProfile{BytesPerSec: 1e6})
	frame := make([]byte, 10_000)
	start := time.Now()
	if err := s.Send(1, frame); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 9*time.Millisecond {
		t.Fatalf("serialization not charged: %v", d)
	}
	// Back-to-back frames queue behind each other.
	start = time.Now()
	for i := 0; i < 3; i++ {
		if err := s.Send(1, frame); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d < 27*time.Millisecond {
		t.Fatalf("link queueing not modelled: %v", d)
	}
}

func TestShapedStagingCopyIsolation(t *testing.T) {
	devs := NewShmJob(2, 0)
	defer devs[0].Close()
	defer devs[1].Close()
	s := NewShaped(devs[0], LinkProfile{StagingCopy: true})
	frame := []byte{1, 2, 3}
	if err := s.Send(1, frame); err != nil {
		t.Fatal(err)
	}
	frame[0] = 99 // mutate after send; receiver must see the staged copy
	got, err := devs[1].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0] != 1 {
		t.Fatalf("staging copy missing: got %v", got.Data)
	}
}

func TestMeshHandshakeRejectsGarbage(t *testing.T) {
	// A listener fed a garbage handshake must reject the connection.
	devs, err := NewLoopbackJob(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range devs {
		d.Close()
	}
}

func TestLoopbackJobSizes(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		devs, err := NewLoopbackJob(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, d := range devs {
			if d.Rank() != i || d.Size() != n {
				t.Fatalf("n=%d: dev %d reports rank=%d size=%d", n, i, d.Rank(), d.Size())
			}
		}
		// One full exchange round.
		var wg sync.WaitGroup
		for _, d := range devs {
			wg.Add(1)
			go func(d *TCPDevice) {
				defer wg.Done()
				for j := 0; j < n; j++ {
					if j != d.Rank() {
						if err := d.Send(j, []byte(fmt.Sprintf("%d->%d", d.Rank(), j))); err != nil {
							t.Errorf("send: %v", err)
						}
					}
				}
				for j := 0; j < n-1; j++ {
					if _, err := d.Recv(); err != nil {
						t.Errorf("recv: %v", err)
					}
				}
			}(d)
		}
		wg.Wait()
		for _, d := range devs {
			d.Close()
		}
	}
}
