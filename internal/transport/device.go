// Package transport is the device layer of the message-passing runtime —
// the analogue of MPICH's abstract device interface / the p4 layer under
// WMPI in the paper. A Device moves opaque, framed byte messages between
// the processes of a job with reliable, per-(sender,receiver) FIFO
// ordering. Two devices are provided:
//
//   - shm: in-process channels; the paper's Shared Memory (SM) mode,
//     multiple ranks within one machine (here: one address space).
//   - tcp: a socket mesh; the paper's Distributed Memory (DM) mode.
//
// A Shaped wrapper adds per-message software cost, link latency and a
// bandwidth cap so benchmarks can emulate the paper's 1999 testbed
// (10BaseT Ethernet, WMPI-vs-MPICH software paths). See DESIGN.md.
package transport

import (
	"errors"
	"fmt"
)

// ErrClosed is returned by device operations after Close.
var ErrClosed = errors.New("transport: device closed")

// PeerLostError reports that a specific peer endpoint died without a
// clean shutdown: its connection reset mid-stream, or its process
// disappeared while frames were outstanding. Recv returns it (once per
// lost peer) without closing the device, so the progress engine can
// fail the operations pending on that peer and keep serving the rest —
// the error-class-instead-of-hang half of fault tolerance.
type PeerLostError struct {
	// Peer is the lost endpoint's world rank.
	Peer int
	// Err is the underlying transport failure, if any.
	Err error
}

func (e *PeerLostError) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("transport: peer rank %d lost", e.Peer)
	}
	return fmt.Sprintf("transport: peer rank %d lost: %v", e.Peer, e.Err)
}

func (e *PeerLostError) Unwrap() error { return e.Err }

// Frame is one received message. Data holds the wire header and, when
// Payload is nil, the inline payload too; a non-nil Payload is the
// message body delivered separately (the scatter-gather path — by
// reference over shm, so the receiver reads the sender's buffer with no
// intermediate copy). The receiver owns the frame and must call Release
// exactly once when every reference into Data/Payload is dead; Release
// returns pooled storage to the frame pool and is idempotent on the same
// Frame value.
type Frame struct {
	Data    []byte
	Payload []byte

	pooledData    bool
	pooledPayload bool
}

// Release returns the frame's pooled storage (if any) to the frame pool
// and clears the frame. Calling Release again on the same Frame value is
// a no-op; releasing two copies of one Frame is a caller bug, as it
// would double-free the storage into the pool.
func (f *Frame) Release() {
	if f.pooledData {
		PutBuf(f.Data)
	}
	if f.pooledPayload {
		PutBuf(f.Payload)
	}
	*f = Frame{}
}

// PayloadPooled reports whether Release will return the payload to the
// frame pool (diagnostics and tests).
func (f *Frame) PayloadPooled() bool { return f.pooledPayload }

// PooledFrame assembles a received frame for a device implementation
// living outside this package (e.g. transport/shmipc): data and payload
// carry the pool-ownership marks Release honours.
func PooledFrame(data, payload []byte, pooledData, pooledPayload bool) Frame {
	return Frame{Data: data, Payload: payload, pooledData: pooledData, pooledPayload: pooledPayload}
}

// DetachPayload transfers ownership of the payload out of the frame and
// releases whatever storage does not back it: for a scatter-gather
// frame the header buffer returns to the pool immediately, while an
// inline payload shares the frame's storage, so everything stays with
// the caller's alias and nothing is pooled. Either way the frame is
// cleared and a later Release is a no-op.
func (f *Frame) DetachPayload() {
	if f.Payload != nil {
		f.Payload = nil
		f.pooledPayload = false
		f.Release()
		return
	}
	*f = Frame{}
}

// Device is one endpoint of a job-wide message fabric. Frames are
// delivered reliably and in order per (sender, receiver) pair.
type Device interface {
	// Rank returns this endpoint's world rank.
	Rank() int
	// Size returns the number of endpoints in the job.
	Size() int
	// Send delivers a contiguous frame to the endpoint with world rank
	// dst, transferring ownership of the slice to the device. It may
	// block for flow control but never blocks indefinitely while the
	// destination's progress engine is draining.
	Send(dst int, frame []byte) error
	// Sendv is the scatter-gather send: hdr and payload together form
	// one frame, without the caller assembling them contiguously.
	// Ownership of both slices transfers to the device. hdr must come
	// from GetBuf; the transport returns it to the pool once the frame
	// is on the wire (TCP) or hands it to the receiver for release
	// (shm). recycle declares that payload is exclusively owned and
	// unaliased, licensing the consuming side to return it to the frame
	// pool; pass false when the payload is shared (e.g. one buffer
	// fanned out to several destinations) or must outlive delivery.
	Sendv(dst int, hdr, payload []byte, recycle bool) error
	// Recv returns the next incoming frame from any source, blocking
	// until one arrives or the device is closed. The caller owns the
	// returned frame and must Release it.
	Recv() (Frame, error)
	// Close shuts the endpoint down; blocked Recv calls return
	// ErrClosed.
	Close() error
}

func checkDst(dst, size int) error {
	if dst < 0 || dst >= size {
		return fmt.Errorf("transport: destination rank %d out of range [0,%d)", dst, size)
	}
	return nil
}
