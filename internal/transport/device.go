// Package transport is the device layer of the message-passing runtime —
// the analogue of MPICH's abstract device interface / the p4 layer under
// WMPI in the paper. A Device moves opaque, framed byte messages between
// the processes of a job with reliable, per-(sender,receiver) FIFO
// ordering. Two devices are provided:
//
//   - shm: in-process channels; the paper's Shared Memory (SM) mode,
//     multiple ranks within one machine (here: one address space).
//   - tcp: a socket mesh; the paper's Distributed Memory (DM) mode.
//
// A Shaped wrapper adds per-message software cost, link latency and a
// bandwidth cap so benchmarks can emulate the paper's 1999 testbed
// (10BaseT Ethernet, WMPI-vs-MPICH software paths). See DESIGN.md.
package transport

import (
	"errors"
	"fmt"
)

// ErrClosed is returned by device operations after Close.
var ErrClosed = errors.New("transport: device closed")

// Device is one endpoint of a job-wide message fabric. Frames are
// delivered reliably and in order per (sender, receiver) pair. Send
// transfers ownership of the frame slice to the device; Recv transfers
// ownership of the returned slice to the caller.
type Device interface {
	// Rank returns this endpoint's world rank.
	Rank() int
	// Size returns the number of endpoints in the job.
	Size() int
	// Send delivers a frame to the endpoint with world rank dst.
	// It may block for flow control but never blocks indefinitely
	// while the destination's progress engine is draining.
	Send(dst int, frame []byte) error
	// Recv returns the next incoming frame from any source, blocking
	// until one arrives or the device is closed.
	Recv() ([]byte, error)
	// Close shuts the endpoint down; blocked Recv calls return
	// ErrClosed.
	Close() error
}

func checkDst(dst, size int) error {
	if dst < 0 || dst >= size {
		return fmt.Errorf("transport: destination rank %d out of range [0,%d)", dst, size)
	}
	return nil
}
