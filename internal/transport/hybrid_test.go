package transport

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// scriptDev is a Device whose receive stream the test feeds by hand:
// the harness for exercising the hybrid merge without real fabrics.
type scriptDev struct {
	rank, size int
	events     chan func() (Frame, error)
	done       chan struct{}
	closeOnce  sync.Once
}

func newScriptDev(rank, size int) *scriptDev {
	return &scriptDev{
		rank: rank, size: size,
		events: make(chan func() (Frame, error), 16),
		done:   make(chan struct{}),
	}
}

func (d *scriptDev) frame(b []byte) {
	d.events <- func() (Frame, error) { return Frame{Data: b}, nil }
}

func (d *scriptDev) lose(peer int) {
	d.events <- func() (Frame, error) {
		return Frame{}, &PeerLostError{Peer: peer, Err: errors.New("scripted loss")}
	}
}

func (d *scriptDev) Rank() int                             { return d.rank }
func (d *scriptDev) Size() int                             { return d.size }
func (d *scriptDev) Send(dst int, frame []byte) error      { return nil }
func (d *scriptDev) Sendv(int, []byte, []byte, bool) error { return nil }

func (d *scriptDev) Recv() (Frame, error) {
	select {
	case ev := <-d.events:
		return ev()
	case <-d.done:
		return Frame{}, ErrClosed
	}
}

func (d *scriptDev) Close() error {
	d.closeOnce.Do(func() { close(d.done) })
	return nil
}

type recvRes struct {
	f   Frame
	err error
}

// startReceiver drains h.Recv on one goroutine (as the engine's
// progress loop would), so timed assertions never leave a stray Recv
// behind to steal the next event.
func startReceiver(h *Hybrid) <-chan recvRes {
	ch := make(chan recvRes, 16)
	go func() {
		for {
			f, err := h.Recv()
			if err == ErrClosed {
				return
			}
			ch <- recvRes{f, err}
		}
	}()
	return ch
}

// recvOne returns the receiver's next event, or ok=false if none
// arrives in time — the shape a (correctly) suppressed report asserts.
func recvOne(t *testing.T, ch <-chan recvRes, wait time.Duration) (Frame, error, bool) {
	t.Helper()
	select {
	case r := <-ch:
		return r.f, r.err, true
	case <-time.After(wait):
		return Frame{}, nil, false
	}
}

// TestHybridPeerLossRouteFilter: a medium losing a peer it does not
// route must not fail that peer — only the routing medium's report
// surfaces, and traffic from the peer's healthy route keeps flowing.
func TestHybridPeerLossRouteFilter(t *testing.T) {
	island := newScriptDev(0, 4)
	mesh := newScriptDev(0, 4)
	h, err := NewHybrid(0, 4, []Device{nil, island, mesh, mesh})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ch := startReceiver(h)

	// The mesh claims peer 1 died — but peer 1 travels the island.
	mesh.lose(1)
	island.frame([]byte("from-1"))

	f, rerr, ok := recvOne(t, ch, 5*time.Second)
	if !ok || rerr != nil || string(f.Data) != "from-1" {
		t.Fatalf("Recv after off-route loss: frame=%q err=%v ok=%v, want the island frame", f.Data, rerr, ok)
	}
	// The suppressed report must not be queued behind the frame.
	if f, rerr, ok := recvOne(t, ch, 100*time.Millisecond); ok {
		t.Fatalf("off-route loss surfaced: frame=%q err=%v", f.Data, rerr)
	}
}

// TestHybridPeerLossDedup: a peer reachable over several media must
// surface exactly one PeerLostError, no matter how many media report it
// or how many times.
func TestHybridPeerLossDedup(t *testing.T) {
	island := newScriptDev(0, 4)
	mesh := newScriptDev(0, 4)
	h, err := NewHybrid(0, 4, []Device{nil, island, mesh, mesh})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ch := startReceiver(h)

	mesh.lose(2)
	mesh.lose(2)   // duplicate from the routing medium
	island.lose(2) // report from the other medium

	_, rerr, ok := recvOne(t, ch, 5*time.Second)
	var pl *PeerLostError
	if !ok || !errors.As(rerr, &pl) || pl.Peer != 2 {
		t.Fatalf("first Recv: err=%v ok=%v, want PeerLostError for peer 2", rerr, ok)
	}
	if _, rerr, ok := recvOne(t, ch, 100*time.Millisecond); ok {
		t.Fatalf("duplicate loss surfaced: %v", rerr)
	}

	// The composite keeps serving other peers after the loss.
	island.frame([]byte("still-here"))
	f, rerr, ok := recvOne(t, ch, 5*time.Second)
	if !ok || rerr != nil || string(f.Data) != "still-here" {
		t.Fatalf("post-loss Recv: frame=%q err=%v ok=%v", f.Data, rerr, ok)
	}
}

// TestHybridLossOnEachMedium: losses on distinct peers routed by
// distinct media both surface (the dedup is per peer, not global).
func TestHybridLossOnEachMedium(t *testing.T) {
	island := newScriptDev(0, 3)
	mesh := newScriptDev(0, 3)
	h, err := NewHybrid(0, 3, []Device{nil, island, mesh})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ch := startReceiver(h)

	island.lose(1)
	mesh.lose(2)

	seen := map[int]int{}
	for i := 0; i < 2; i++ {
		_, rerr, ok := recvOne(t, ch, 5*time.Second)
		var pl *PeerLostError
		if !ok || !errors.As(rerr, &pl) {
			t.Fatalf("Recv %d: err=%v ok=%v", i, rerr, ok)
		}
		seen[pl.Peer]++
	}
	if seen[1] != 1 || seen[2] != 1 {
		t.Fatalf("loss reports = %v, want exactly one for each of peers 1 and 2", seen)
	}
}
