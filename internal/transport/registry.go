package transport

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// JobSpec describes one rank's place in a job to a device factory: the
// world geometry plus whatever fabric resources the launcher prepared
// (a rendezvous coordinator for socket meshes, a shared-memory segment
// for same-node ranks). Factories use the fields they need and probe
// for the ones they require.
type JobSpec struct {
	// Rank and Size are the world geometry.
	Rank, Size int
	// Coord is the launch coordinator's address, used by socket media
	// to exchange per-rank listener addresses. Empty when the launcher
	// provided no coordinator (e.g. a pure shared-memory job).
	Coord string
	// Segment is the path of the shared-memory segment this rank may
	// attach, or empty if the launcher created none.
	Segment string
	// SegmentRanks lists the world ranks attached to Segment (this
	// rank's same-node peer set), in slot order.
	SegmentRanks []int
	// InboxDepth overrides a device's flow-control window in frames
	// (<= 0 selects the device default).
	InboxDepth int
}

// LocalPeers reports whether world rank r is reachable through the
// spec's shared segment.
func (s JobSpec) LocalPeers() map[int]bool {
	m := make(map[int]bool, len(s.SegmentRanks))
	for _, r := range s.SegmentRanks {
		m[r] = true
	}
	return m
}

// Entry is one registered device medium.
type Entry struct {
	// Name is the registry key (the -device flag value).
	Name string
	// Probe reports whether the medium can serve the spec; nil means
	// always available. Selection logic (the "auto" medium) uses it to
	// pick the fastest usable fabric.
	Probe func(JobSpec) error
	// New constructs this rank's endpoint.
	New func(JobSpec) (Device, error)
}

var (
	regMu sync.RWMutex
	reg   = map[string]Entry{}
)

// Register adds a device medium to the registry. Registering a name
// twice panics: media are wired up in package init functions, where a
// collision is a programming error worth failing loudly on.
func Register(e Entry) {
	if e.Name == "" || e.New == nil {
		panic("transport: Register needs a name and a constructor")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[e.Name]; dup {
		panic(fmt.Sprintf("transport: device %q registered twice", e.Name))
	}
	reg[e.Name] = e
}

// Lookup returns the entry registered under name.
func Lookup(name string) (Entry, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := reg[name]
	return e, ok
}

// Names returns the registered medium names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(reg))
	for n := range reg {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FaultyPrefix is the media-name decorator that wraps any registered
// medium with the fault-injection layer: "faulty:shm" builds the shm
// endpoint, then applies the FaultPlan from the GOMPI_FAULT environment
// variable (see ParseFaultPlan). Ranks outside the plan's rank filter
// get the inner device untouched, so one exported variable injects a
// fault into exactly one rank of a whole job.
const FaultyPrefix = "faulty:"

// NewDevice probes and constructs the named medium for spec. A
// FaultyPrefix on the name decorates the constructed endpoint with the
// fault-injection plan from the environment.
func NewDevice(name string, spec JobSpec) (Device, error) {
	if inner, ok := strings.CutPrefix(name, FaultyPrefix); ok {
		plan, err := ParseFaultPlan(os.Getenv(EnvFault))
		if err != nil {
			return nil, err
		}
		dev, err := NewDevice(inner, spec)
		if err != nil {
			return nil, err
		}
		return NewFaulty(dev, plan), nil
	}
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("transport: unknown device %q (have %v)", name, Names())
	}
	if e.Probe != nil {
		if err := e.Probe(spec); err != nil {
			return nil, fmt.Errorf("transport: device %q unavailable: %w", name, err)
		}
	}
	return e.New(spec)
}

// DevStats is one medium's traffic counters: the per-device dimension
// of the engine's observability surface. Pool describes the frame-pool
// the medium draws payload buffers from (the process-private pool for
// in-process and socket media, the shared-segment arena for shmipc), so
// hit rates are attributable per medium.
type DevStats struct {
	// Name is the medium ("chan", "tcp", "shm", ...).
	Name string
	// FramesSent/FramesRecv count frames through this endpoint.
	FramesSent, FramesRecv uint64
	// BytesSent/BytesRecv total frame bytes (header + payload).
	BytesSent, BytesRecv uint64
	// Pool is the medium's buffer-pool counter snapshot.
	Pool PoolSnapshot
}

// StatsReporter is implemented by devices that expose per-medium
// counters. A composite device (hybrid routing) returns one entry per
// underlying medium.
type StatsReporter interface {
	DeviceStats() []DevStats
}

// Unwrapper is implemented by decorating devices (Shaped) so stats
// queries can reach the underlying endpoint.
type Unwrapper interface {
	Unwrap() Device
}

// DeviceStatsOf returns the per-medium counters of d, looking through
// decorators. Devices predating the counter surface report nothing.
func DeviceStatsOf(d Device) []DevStats {
	for d != nil {
		if sr, ok := d.(StatsReporter); ok {
			return sr.DeviceStats()
		}
		u, ok := d.(Unwrapper)
		if !ok {
			return nil
		}
		d = u.Unwrap()
	}
	return nil
}

// devCounters is the embeddable atomic counter block behind DevStats.
type devCounters struct {
	framesSent, framesRecv atomic.Uint64
	bytesSent, bytesRecv   atomic.Uint64
}

func (c *devCounters) countSend(n int) {
	c.framesSent.Add(1)
	c.bytesSent.Add(uint64(n))
}

func (c *devCounters) countRecv(n int) {
	c.framesRecv.Add(1)
	c.bytesRecv.Add(uint64(n))
}

func (c *devCounters) stats(name string, pool PoolSnapshot) DevStats {
	return DevStats{
		Name:       name,
		FramesSent: c.framesSent.Load(),
		FramesRecv: c.framesRecv.Load(),
		BytesSent:  c.bytesSent.Load(),
		BytesRecv:  c.bytesRecv.Load(),
		Pool:       pool,
	}
}
