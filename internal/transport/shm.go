package transport

import "sync"

// shmJob is the shared fabric of an in-process job: one inbox channel and
// one shutdown signal per rank. Channel semantics give exactly the
// ordering a device must provide: sends from one goroutine are observed
// in order, and the per-rank progress engine drains the inbox
// continuously so senders only block transiently on flow control.
type shmJob struct {
	inboxes []chan Frame
	done    []chan struct{}
}

// ShmDevice is one endpoint of an in-process (Shared Memory mode) job.
type ShmDevice struct {
	job  *shmJob
	rank int

	mu     sync.Mutex
	closed bool

	devCounters
}

// DefaultInboxDepth is the per-rank flow-control window, in frames.
const DefaultInboxDepth = 1024

// NewShmJob creates an n-rank in-process job and returns its devices.
// depth is the per-rank inbox capacity in frames; depth <= 0 selects
// DefaultInboxDepth.
func NewShmJob(n, depth int) []*ShmDevice {
	if depth <= 0 {
		depth = DefaultInboxDepth
	}
	job := &shmJob{
		inboxes: make([]chan Frame, n),
		done:    make([]chan struct{}, n),
	}
	for i := range job.inboxes {
		job.inboxes[i] = make(chan Frame, depth)
		job.done[i] = make(chan struct{})
	}
	devs := make([]*ShmDevice, n)
	for i := range devs {
		devs[i] = &ShmDevice{job: job, rank: i}
	}
	return devs
}

// Rank returns this endpoint's world rank.
func (d *ShmDevice) Rank() int { return d.rank }

// Size returns the number of ranks in the job.
func (d *ShmDevice) Size() int { return len(d.job.inboxes) }

// Send delivers frame to rank dst's inbox. It fails with ErrClosed when
// either endpoint has shut down, so a sender can never block forever on
// a dead receiver.
func (d *ShmDevice) Send(dst int, frame []byte) error {
	return d.deliver(dst, Frame{Data: frame})
}

// Sendv delivers the (hdr, payload) pair by reference: ranks share one
// address space, so the receiver reads the sender's buffers directly and
// no copy or contiguous assembly happens anywhere on the shm path. The
// header is always pool-born (the Sendv contract), and the payload is
// marked for pool return when the sender vouched for exclusive
// ownership.
func (d *ShmDevice) Sendv(dst int, hdr, payload []byte, recycle bool) error {
	return d.deliver(dst, Frame{
		Data:          hdr,
		Payload:       payload,
		pooledData:    true,
		pooledPayload: recycle,
	})
}

// deliver enqueues f at rank dst. On failure the frame was not handed
// to anyone, so its pooled storage is released here — undelivered
// frames must not leak out of the pool.
func (d *ShmDevice) deliver(dst int, f Frame) error {
	if err := checkDst(dst, d.Size()); err != nil {
		f.Release()
		return err
	}
	mine := d.job.done[d.rank]
	theirs := d.job.done[dst]
	select {
	case <-mine:
		f.Release()
		return ErrClosed
	case <-theirs:
		f.Release()
		return ErrClosed
	default:
	}
	select {
	case d.job.inboxes[dst] <- f:
		d.countSend(len(f.Data) + len(f.Payload))
		return nil
	case <-mine:
		f.Release()
		return ErrClosed
	case <-theirs:
		f.Release()
		return ErrClosed
	}
}

// Recv returns the next frame addressed to this rank.
func (d *ShmDevice) Recv() (Frame, error) {
	select {
	case f := <-d.job.inboxes[d.rank]:
		d.countRecv(len(f.Data) + len(f.Payload))
		return f, nil
	case <-d.job.done[d.rank]:
		// Drain anything already queued so shutdown is not lossy
		// for frames delivered before Close.
		select {
		case f := <-d.job.inboxes[d.rank]:
			d.countRecv(len(f.Data) + len(f.Payload))
			return f, nil
		default:
			return Frame{}, ErrClosed
		}
	}
}

// Close shuts down this endpoint. Other ranks' endpoints are unaffected.
func (d *ShmDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.closed {
		d.closed = true
		close(d.job.done[d.rank])
	}
	return nil
}

// DeviceStats reports this endpoint's traffic under the "chan" medium
// name (in-process channels), with the process-private pool counters.
func (d *ShmDevice) DeviceStats() []DevStats {
	return []DevStats{d.devCounters.stats("chan", PoolStats())}
}

var _ Device = (*ShmDevice)(nil)
