package transport

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvFault names the environment variable the faulty: media decorator
// reads its FaultPlan from (see ParseFaultPlan for the syntax). The
// launcher passes its environment through to every rank, so exporting
// it before mpirun configures the whole job.
const EnvFault = "GOMPI_FAULT"

// FaultPlan configures deterministic fault injection on one endpoint.
// The zero value injects nothing. Plans are the chaos-testing
// counterpart of LinkProfile: where Shaped charges costs, Faulty makes
// the endpoint misbehave on a schedule chosen in advance, so a failure
// scenario reproduces exactly — including under the race detector.
type FaultPlan struct {
	// Rank restricts the plan to one world rank; -1 (or the rank the
	// device reports) applies it. On other ranks NewFaulty returns the
	// inner device unwrapped.
	Rank int

	// KillAfterSends kills the endpoint after it has delivered exactly
	// this many frames: the (N+1)th and later sends are silently
	// dropped and the kill action runs once. 0 disables the trigger.
	KillAfterSends int

	// Exit selects the kill action for OS-process ranks: exit the
	// process with status 137, emulating SIGKILL at a deterministic
	// point in the frame stream. When false the inner device is closed
	// instead, which in-process peers observe as connection loss — the
	// form the race-mode tests use.
	Exit bool

	// OnKill, when non-nil, replaces the default kill action entirely
	// (tests hook notifications here).
	OnKill func()

	// DropPeers lists world ranks whose outbound frames are silently
	// discarded — an asymmetric blackhole. Inbound traffic is
	// unaffected: transport frames carry no source rank, so filtering
	// arrivals belongs to the peer's own plan.
	DropPeers map[int]bool

	// SendDelay is slept before every delivered frame.
	SendDelay time.Duration
}

// Zero reports whether the plan injects nothing.
func (p FaultPlan) Zero() bool {
	return p.KillAfterSends == 0 && len(p.DropPeers) == 0 && p.SendDelay == 0
}

// ParseFaultPlan parses the comma-separated key=value syntax of the
// GOMPI_FAULT environment variable:
//
//	rank=N          apply only on world rank N (default: every rank)
//	kill-after=N    die after delivering N frames
//	kill=exit|close kill action: exit the process (status 137) or close
//	                the device (default close)
//	drop-peer=N     blackhole outbound frames to rank N (repeatable)
//	delay=DUR       sleep DUR before every delivered frame (e.g. 2ms)
//
// An empty string parses to the zero (inert) plan.
func ParseFaultPlan(s string) (FaultPlan, error) {
	plan := FaultPlan{Rank: -1}
	if s = strings.TrimSpace(s); s == "" {
		return plan, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return plan, fmt.Errorf("transport: fault option %q is not key=value", kv)
		}
		switch k {
		case "rank":
			n, err := strconv.Atoi(v)
			if err != nil {
				return plan, fmt.Errorf("transport: fault rank %q: %w", v, err)
			}
			plan.Rank = n
		case "kill-after":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return plan, fmt.Errorf("transport: fault kill-after %q: want a non-negative count", v)
			}
			plan.KillAfterSends = n
		case "kill":
			switch v {
			case "exit":
				plan.Exit = true
			case "close":
				plan.Exit = false
			default:
				return plan, fmt.Errorf("transport: fault kill %q: want exit or close", v)
			}
		case "drop-peer":
			n, err := strconv.Atoi(v)
			if err != nil {
				return plan, fmt.Errorf("transport: fault drop-peer %q: %w", v, err)
			}
			if plan.DropPeers == nil {
				plan.DropPeers = map[int]bool{}
			}
			plan.DropPeers[n] = true
		case "delay":
			d, err := time.ParseDuration(v)
			if err != nil {
				return plan, fmt.Errorf("transport: fault delay %q: %w", v, err)
			}
			plan.SendDelay = d
		default:
			return plan, fmt.Errorf("transport: unknown fault option %q", k)
		}
	}
	return plan, nil
}

// Faulty decorates a Device with the plan's failure triggers. Like
// Shaped it is transparent to stats queries via Unwrap.
type Faulty struct {
	Device
	plan FaultPlan

	sends    atomic.Int64
	dead     atomic.Bool
	killOnce sync.Once
}

// NewFaulty wraps dev with plan. An inert plan, or one pinned to a
// different rank, returns dev unwrapped so the common path costs
// nothing.
func NewFaulty(dev Device, plan FaultPlan) Device {
	if plan.Zero() {
		return dev
	}
	if plan.Rank >= 0 && plan.Rank != dev.Rank() {
		return dev
	}
	return &Faulty{Device: dev, plan: plan}
}

// Unwrap exposes the inner device to stats queries.
func (f *Faulty) Unwrap() Device { return f.Device }

// Killed reports whether the kill trigger has fired.
func (f *Faulty) Killed() bool { return f.dead.Load() }

// deliver charges the plan's triggers for one outbound frame and
// reports whether it should reach the wire.
func (f *Faulty) deliver(dst int) bool {
	if f.dead.Load() {
		return false
	}
	if f.plan.DropPeers[dst] {
		return false
	}
	if n := f.plan.KillAfterSends; n > 0 && f.sends.Add(1) > int64(n) {
		f.kill()
		return false
	}
	if f.plan.SendDelay > 0 {
		time.Sleep(f.plan.SendDelay)
	}
	return true
}

// kill runs the plan's kill action exactly once. The default action
// closes the inner device: peers observe the closed connections (or the
// stale shm segment) as peer loss, and this rank's own engine sees its
// device reach end-of-stream — the closest in-process approximation of
// the process dying.
func (f *Faulty) kill() {
	f.killOnce.Do(func() {
		f.dead.Store(true)
		switch {
		case f.plan.OnKill != nil:
			f.plan.OnKill()
		case f.plan.Exit:
			os.Exit(137) // 128+SIGKILL: look killed to the launcher
		default:
			f.Device.Close() //nolint:errcheck // dying rank has no one to tell
		}
	})
}

// Send applies the plan, then forwards.
func (f *Faulty) Send(dst int, frame []byte) error {
	if !f.deliver(dst) {
		return nil
	}
	return f.Device.Send(dst, frame)
}

// Sendv applies the plan, then forwards. Dropped recycle=true payloads
// are returned to the pool: the caller handed ownership over, and a
// blackholed frame has no downstream consumer to release it.
func (f *Faulty) Sendv(dst int, hdr, payload []byte, recycle bool) error {
	if !f.deliver(dst) {
		PutBuf(hdr)
		if recycle {
			PutBuf(payload)
		}
		return nil
	}
	return f.Device.Sendv(dst, hdr, payload, recycle)
}
