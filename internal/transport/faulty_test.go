package transport

import (
	"errors"
	"testing"
	"time"
)

func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("rank=2,kill-after=40,kill=exit,drop-peer=1,drop-peer=3,delay=2ms")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rank != 2 || plan.KillAfterSends != 40 || !plan.Exit ||
		!plan.DropPeers[1] || !plan.DropPeers[3] || plan.SendDelay != 2*time.Millisecond {
		t.Fatalf("parsed plan = %+v", plan)
	}
	if p, err := ParseFaultPlan(""); err != nil || !p.Zero() || p.Rank != -1 {
		t.Fatalf("empty spec: plan=%+v err=%v", p, err)
	}
	for _, bad := range []string{"kill-after=x", "kill=maybe", "rank", "frob=1", "delay=fast"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", bad)
		}
	}
}

func TestFaultyRankFilterAndZeroPlan(t *testing.T) {
	devs := NewShmJob(2, 0)
	defer devs[0].Close()
	defer devs[1].Close()
	if d := NewFaulty(devs[0], FaultPlan{Rank: -1}); d != devs[0] {
		t.Fatal("zero plan must return the inner device unwrapped")
	}
	if d := NewFaulty(devs[0], FaultPlan{Rank: 1, KillAfterSends: 1}); d != devs[0] {
		t.Fatal("plan pinned to another rank must return the inner device unwrapped")
	}
	if _, ok := NewFaulty(devs[0], FaultPlan{Rank: 0, KillAfterSends: 1}).(*Faulty); !ok {
		t.Fatal("matching rank must wrap")
	}
}

// TestFaultyKillAfterSends is the deterministic death trigger: exactly N
// frames reach the peer, then the endpoint dies (default action: close
// the inner device) and the peer observes the loss.
func TestFaultyKillAfterSends(t *testing.T) {
	devs, err := NewLoopbackJob(2)
	if err != nil {
		t.Fatal(err)
	}
	defer devs[0].Close()
	const n = 3
	f := NewFaulty(devs[1], FaultPlan{Rank: 1, KillAfterSends: n}).(*Faulty)
	defer f.Close()

	for i := 0; i < n+2; i++ {
		if err := f.Send(0, []byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if !f.Killed() {
		t.Fatal("kill trigger did not fire")
	}

	for i := 0; i < n; i++ {
		fr, err := devs[0].Recv()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(fr.Data) != 1 || fr.Data[0] != byte(i) {
			t.Fatalf("frame %d: got %v", i, fr.Data)
		}
		fr.Release()
	}
	// The next event on the survivor must be the loss, not a 4th frame.
	for {
		fr, err := devs[0].Recv()
		if err == nil {
			t.Fatalf("received frame %v after the kill point", fr.Data)
		}
		var pl *PeerLostError
		if errors.As(err, &pl) {
			if pl.Peer != 1 {
				t.Fatalf("loss attributed to peer %d, want 1", pl.Peer)
			}
			return
		}
		t.Fatalf("survivor Recv: %v, want PeerLostError", err)
	}
}

func TestFaultyOnKillHook(t *testing.T) {
	devs := NewShmJob(1, 0)
	fired := 0
	f := NewFaulty(devs[0], FaultPlan{Rank: -1, KillAfterSends: 1, OnKill: func() { fired++ }}).(*Faulty)
	defer devs[0].Close()
	for i := 0; i < 4; i++ {
		f.Send(0, []byte("x")) //nolint:errcheck
	}
	if fired != 1 {
		t.Fatalf("OnKill fired %d times, want exactly once", fired)
	}
}

// TestFaultyDropPeer: outbound frames to the dropped peer vanish while
// other destinations are untouched.
func TestFaultyDropPeer(t *testing.T) {
	devs := NewShmJob(3, 0)
	for _, d := range devs {
		defer d.Close()
	}
	f := NewFaulty(devs[0], FaultPlan{Rank: 0, DropPeers: map[int]bool{1: true}})

	if err := f.Send(1, []byte("dropped")); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(2, []byte("kept")); err != nil {
		t.Fatal(err)
	}

	got, err := devs[2].Recv()
	if err != nil || string(got.Data) != "kept" {
		t.Fatalf("rank 2 recv: %q, %v", got.Data, err)
	}
	got.Release()

	arrived := make(chan Frame, 1)
	go func() {
		if fr, err := devs[1].Recv(); err == nil {
			arrived <- fr
		}
	}()
	select {
	case fr := <-arrived:
		t.Fatalf("dropped frame %q reached rank 1", fr.Data)
	case <-time.After(50 * time.Millisecond):
	}
}
