package transport

import (
	"fmt"
	"sync"
)

// Hybrid composes per-peer sub-devices behind one Device: the
// same-node/off-node split of a multi-machine job, where ranks sharing
// a machine talk through the shared-memory segment and everyone else
// through the socket mesh. Sends route by destination; receives merge
// every sub-device's stream through pump goroutines, preserving each
// sub-device's per-pair FIFO order (merging never reorders a single
// pair, whose frames all travel one sub-device).
type Hybrid struct {
	rank, size int
	// route[r] is the sub-device carrying traffic to/from world rank r.
	route []Device
	devs  []Device // distinct sub-devices, pump order

	inbox chan Frame
	errs  chan error
	done  chan struct{}
	wg    sync.WaitGroup

	// lost dedupes peer-loss reports across sub-devices: a peer may be
	// reachable (and thus lose-able) through more than one medium, but
	// the engine must see exactly one PeerLostError per peer.
	lostMu sync.Mutex
	lost   map[int]bool

	closeOnce sync.Once
	closeErr  error
}

// NewHybrid builds a composite endpoint for this rank. route must name
// a sub-device for every world rank except possibly this one (self
// traffic uses route[rank] if set, else the first sub-device that
// claims it). Hybrid takes ownership of the sub-devices and closes them
// on Close.
func NewHybrid(rank, size int, route []Device) (*Hybrid, error) {
	if len(route) != size {
		return nil, fmt.Errorf("transport: hybrid route covers %d of %d ranks", len(route), size)
	}
	var devs []Device
	seen := map[Device]bool{}
	for r, d := range route {
		if d == nil {
			if r == rank {
				continue
			}
			return nil, fmt.Errorf("transport: hybrid route missing rank %d", r)
		}
		if !seen[d] {
			seen[d] = true
			devs = append(devs, d)
		}
	}
	if len(devs) == 0 {
		return nil, fmt.Errorf("transport: hybrid needs at least one sub-device")
	}
	if route[rank] == nil {
		route[rank] = devs[0]
	}
	h := &Hybrid{
		rank: rank, size: size, route: route, devs: devs,
		inbox: make(chan Frame, DefaultInboxDepth),
		errs:  make(chan error, size),
		done:  make(chan struct{}),
		lost:  make(map[int]bool),
	}
	for _, d := range devs {
		h.wg.Add(1)
		go h.pump(d)
	}
	return h, nil
}

// pump forwards one sub-device's receive stream into the merged inbox.
// A PeerLostError passes through only when this sub-device is the one
// routing the peer's traffic — an island device may share its segment
// with ranks the composite actually reaches over TCP (or vice versa),
// and a medium losing a peer it does not carry must not fail that
// peer's healthy route. Each peer's loss is surfaced at most once, even
// when several media report it. ErrClosed or any terminal error ends
// the pump.
func (h *Hybrid) pump(d Device) {
	defer h.wg.Done()
	for {
		f, err := d.Recv()
		if err != nil {
			if pl, lost := err.(*PeerLostError); lost {
				if !h.lostOnRoute(pl.Peer, d) {
					continue
				}
				select {
				case h.errs <- err:
				case <-h.done:
					return
				}
				continue
			}
			return
		}
		select {
		case h.inbox <- f:
		case <-h.done:
			f.Release()
			return
		}
	}
}

// lostOnRoute records d's loss report for peer and reports whether it
// should surface: only the first report, and only from the sub-device
// that actually routes the peer.
func (h *Hybrid) lostOnRoute(peer int, d Device) bool {
	if peer < 0 || peer >= h.size || h.route[peer] != d {
		return false
	}
	h.lostMu.Lock()
	defer h.lostMu.Unlock()
	if h.lost[peer] {
		return false
	}
	h.lost[peer] = true
	return true
}

// Rank returns this endpoint's world rank.
func (h *Hybrid) Rank() int { return h.rank }

// Size returns the job's world size.
func (h *Hybrid) Size() int { return h.size }

// Send routes a contiguous frame to dst's sub-device.
func (h *Hybrid) Send(dst int, frame []byte) error {
	if err := checkDst(dst, h.size); err != nil {
		return err
	}
	return h.route[dst].Send(dst, frame)
}

// Sendv routes a scatter-gather frame to dst's sub-device.
func (h *Hybrid) Sendv(dst int, hdr, payload []byte, recycle bool) error {
	if err := checkDst(dst, h.size); err != nil {
		return err
	}
	return h.route[dst].Sendv(dst, hdr, payload, recycle)
}

// Recv returns the next frame from any sub-device. Frames already
// pumped win over failure reports: a pump forwards a sub-device's
// stream in order, so prioritizing the inbox guarantees a peer's last
// frames are all delivered before its loss is reported.
func (h *Hybrid) Recv() (Frame, error) {
	select {
	case f := <-h.inbox:
		return f, nil
	default:
	}
	select {
	case f := <-h.inbox:
		return f, nil
	case err := <-h.errs:
		return Frame{}, err
	case <-h.done:
		select {
		case f := <-h.inbox:
			return f, nil
		default:
			return Frame{}, ErrClosed
		}
	}
}

// Close shuts down every sub-device and drains the pumps.
func (h *Hybrid) Close() error {
	h.closeOnce.Do(func() {
		close(h.done)
		for _, d := range h.devs {
			if err := d.Close(); err != nil && h.closeErr == nil {
				h.closeErr = err
			}
		}
		h.wg.Wait()
		for {
			select {
			case f := <-h.inbox:
				f.Release()
			default:
				return
			}
		}
	})
	return h.closeErr
}

// DeviceStats concatenates the sub-devices' counters, one entry per
// medium.
func (h *Hybrid) DeviceStats() []DevStats {
	var out []DevStats
	for _, d := range h.devs {
		out = append(out, DeviceStatsOf(d)...)
	}
	return out
}
