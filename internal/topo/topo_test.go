package topo

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDimsCreateKnownCases(t *testing.T) {
	cases := []struct {
		nnodes int
		in     []int
		want   []int
	}{
		{6, []int{0, 0}, []int{3, 2}},
		{12, []int{0, 0}, []int{4, 3}},
		{16, []int{0, 0}, []int{4, 4}},
		{8, []int{0, 0, 0}, []int{2, 2, 2}},
		{12, []int{0, 0, 0}, []int{3, 2, 2}},
		{7, []int{0}, []int{7}},
		{6, []int{2, 0}, []int{2, 3}},
		{1, []int{0, 0}, []int{1, 1}},
	}
	for _, tc := range cases {
		dims := append([]int(nil), tc.in...)
		if err := DimsCreate(tc.nnodes, dims); err != nil {
			t.Fatalf("DimsCreate(%d, %v): %v", tc.nnodes, tc.in, err)
		}
		if !reflect.DeepEqual(dims, tc.want) {
			t.Errorf("DimsCreate(%d, %v) = %v, want %v", tc.nnodes, tc.in, dims, tc.want)
		}
	}
}

func TestDimsCreateErrors(t *testing.T) {
	if err := DimsCreate(7, []int{2, 0}); err == nil {
		t.Fatal("indivisible nnodes must error")
	}
	if err := DimsCreate(0, []int{0}); err == nil {
		t.Fatal("zero nnodes must error")
	}
	if err := DimsCreate(4, []int{-1, 0}); err == nil {
		t.Fatal("negative dimension must error")
	}
	if err := DimsCreate(6, []int{4}); err == nil {
		t.Fatal("wrong fixed product must error")
	}
}

// TestDimsCreateProperty: the product of the dimensions always equals
// nnodes, free dimensions are non-increasing, and fixed entries survive.
func TestDimsCreateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nnodes := 1 + rng.Intn(256)
		k := 1 + rng.Intn(4)
		dims := make([]int, k)
		if err := DimsCreate(nnodes, dims); err != nil {
			return false
		}
		prod := 1
		for _, d := range dims {
			prod *= d
		}
		if prod != nnodes {
			return false
		}
		for i := 1; i < k; i++ {
			if dims[i] > dims[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCartRankCoordsRoundTrip(t *testing.T) {
	c, err := NewCart([]int{3, 4, 2}, []bool{false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != 24 {
		t.Fatalf("count %d", c.Count())
	}
	for r := 0; r < c.Count(); r++ {
		coords, err := c.Coords(r)
		if err != nil {
			t.Fatal(err)
		}
		back, err := c.Rank(coords)
		if err != nil {
			t.Fatal(err)
		}
		if back != r {
			t.Fatalf("rank %d -> %v -> %d", r, coords, back)
		}
	}
}

// TestCartBijectionProperty: rank->coords->rank is the identity for
// random geometries.
func TestCartBijectionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := 1 + rng.Intn(3)
		dims := make([]int, nd)
		periods := make([]bool, nd)
		for i := range dims {
			dims[i] = 1 + rng.Intn(4)
			periods[i] = rng.Intn(2) == 0
		}
		c, err := NewCart(dims, periods)
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for r := 0; r < c.Count(); r++ {
			coords, err := c.Coords(r)
			if err != nil {
				return false
			}
			back, err := c.Rank(coords)
			if err != nil || back != r || seen[back] {
				return false
			}
			seen[back] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCartPeriodicWrap(t *testing.T) {
	c, _ := NewCart([]int{4}, []bool{true})
	r, err := c.Rank([]int{-1})
	if err != nil || r != 3 {
		t.Fatalf("wrap(-1) = %d, %v", r, err)
	}
	r, err = c.Rank([]int{5})
	if err != nil || r != 1 {
		t.Fatalf("wrap(5) = %d, %v", r, err)
	}
	nc, _ := NewCart([]int{4}, []bool{false})
	if _, err := nc.Rank([]int{4}); err == nil {
		t.Fatal("non-periodic out-of-range must error")
	}
}

func TestCartShift(t *testing.T) {
	c, _ := NewCart([]int{3, 3}, []bool{false, true})
	// Center rank 4 = (1,1).
	src, dst, err := c.Shift(4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if src != 1 || dst != 7 {
		t.Fatalf("dim0 shift: src=%d dst=%d", src, dst)
	}
	// Corner (0,0) in non-periodic dim 0: upstream is null.
	src, dst, err = c.Shift(0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if src != ProcNull || dst != 3 {
		t.Fatalf("edge shift: src=%d dst=%d", src, dst)
	}
	// Periodic dim 1 wraps.
	src, dst, err = c.Shift(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if src != 2 || dst != 1 {
		t.Fatalf("periodic shift: src=%d dst=%d", src, dst)
	}
	// Negative displacement reverses roles.
	src2, dst2, _ := c.Shift(0, 1, -1)
	if src2 != dst || dst2 != src {
		t.Fatalf("negative shift mismatch")
	}
	if _, _, err := c.Shift(0, 5, 1); err == nil {
		t.Fatal("bad dimension must error")
	}
}

func TestCartSub(t *testing.T) {
	c, _ := NewCart([]int{3, 2}, []bool{true, false})
	for r := 0; r < 6; r++ {
		sub, colour, key, err := c.Sub(r, []bool{false, true})
		if err != nil {
			t.Fatal(err)
		}
		coords, _ := c.Coords(r)
		if colour != coords[0] {
			t.Fatalf("rank %d: colour %d, want row %d", r, colour, coords[0])
		}
		if key != coords[1] {
			t.Fatalf("rank %d: key %d, want col %d", r, key, coords[1])
		}
		if len(sub.Dims) != 1 || sub.Dims[0] != 2 || sub.Periods[0] {
			t.Fatalf("sub geometry: %+v", sub)
		}
	}
	// Dropping every dimension leaves a zero-dimensional grid.
	sub, _, key, err := c.Sub(3, []bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Ndims() != 0 || key != 0 {
		t.Fatalf("degenerate sub: %+v key=%d", sub, key)
	}
}

func TestGraph(t *testing.T) {
	// Star: node 0 adjacent to 1,2,3.
	g, err := NewGraph(4, []int{3, 4, 5, 6}, []int{1, 2, 3, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	ns, err := g.Neighbours(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ns, []int{1, 2, 3}) {
		t.Fatalf("centre neighbours: %v", ns)
	}
	ns, _ = g.Neighbours(2)
	if !reflect.DeepEqual(ns, []int{0}) {
		t.Fatalf("leaf neighbours: %v", ns)
	}
	if _, err := g.Neighbours(9); err == nil {
		t.Fatal("bad rank must error")
	}
}

func TestGraphValidation(t *testing.T) {
	if _, err := NewGraph(2, []int{1}, []int{0}); err == nil {
		t.Fatal("short index must error")
	}
	if _, err := NewGraph(2, []int{2, 1}, []int{0}); err == nil {
		t.Fatal("decreasing index must error")
	}
	if _, err := NewGraph(2, []int{1, 2}, []int{0}); err == nil {
		t.Fatal("index/edges mismatch must error")
	}
	if _, err := NewGraph(2, []int{1, 2}, []int{0, 5}); err == nil {
		t.Fatal("out-of-range edge must error")
	}
}

func TestCartValidation(t *testing.T) {
	if _, err := NewCart([]int{2}, []bool{true, false}); err == nil {
		t.Fatal("dims/periods mismatch must error")
	}
	if _, err := NewCart([]int{0}, []bool{true}); err == nil {
		t.Fatal("zero dimension must error")
	}
}
