// Package topo implements the virtual-topology arithmetic behind the
// Cartcomm and Graphcomm classes: balanced dimension factorisation
// (MPI_Dims_create), cartesian rank/coordinate maps, shifts and subgrids,
// and graph neighbour queries.
package topo

import (
	"fmt"
	"sort"
)

// ProcNull is the null-neighbour marker returned by shifts that run off a
// non-periodic edge (mirrors MPI_PROC_NULL; the binding exports its own
// constant mapped to this value).
const ProcNull = -2

// DimsCreate fills the zero entries of dims with a balanced factorisation
// of nnodes (MPI_Dims_create). Non-zero entries are constraints and left
// untouched; nnodes must be divisible by their product. The resulting
// free dimensions are as close to each other as possible and ordered
// non-increasingly.
func DimsCreate(nnodes int, dims []int) error {
	if nnodes <= 0 {
		return fmt.Errorf("topo: nnodes %d must be positive", nnodes)
	}
	fixed := 1
	free := 0
	for _, d := range dims {
		switch {
		case d < 0:
			return fmt.Errorf("topo: negative dimension %d", d)
		case d == 0:
			free++
		default:
			fixed *= d
		}
	}
	if fixed == 0 || nnodes%fixed != 0 {
		return fmt.Errorf("topo: nnodes %d not divisible by fixed dimensions product %d", nnodes, fixed)
	}
	if free == 0 {
		if fixed != nnodes {
			return fmt.Errorf("topo: fixed dimensions product %d != nnodes %d", fixed, nnodes)
		}
		return nil
	}
	factors := balancedFactors(nnodes/fixed, free)
	i := 0
	for j := range dims {
		if dims[j] == 0 {
			dims[j] = factors[i]
			i++
		}
	}
	return nil
}

// balancedFactors splits n into k factors, as equal as possible, sorted
// non-increasingly: prime factors of n are distributed greedily onto the
// currently smallest accumulator.
func balancedFactors(n, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = 1
	}
	primes := primeFactors(n)
	// Largest primes first, each onto the smallest accumulator.
	sort.Sort(sort.Reverse(sort.IntSlice(primes)))
	for _, p := range primes {
		mi := 0
		for i := 1; i < k; i++ {
			if out[i] < out[mi] {
				mi = i
			}
		}
		out[mi] *= p
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

func primeFactors(n int) []int {
	var fs []int
	for p := 2; p*p <= n; p++ {
		for n%p == 0 {
			fs = append(fs, p)
			n /= p
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}

// Cart is the geometry of a cartesian topology.
type Cart struct {
	Dims    []int
	Periods []bool
}

// NewCart validates dimensions and periodicity flags.
func NewCart(dims []int, periods []bool) (*Cart, error) {
	if len(dims) != len(periods) {
		return nil, fmt.Errorf("topo: %d dims vs %d periods", len(dims), len(periods))
	}
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("topo: non-positive cartesian dimension %d", d)
		}
	}
	return &Cart{
		Dims:    append([]int(nil), dims...),
		Periods: append([]bool(nil), periods...),
	}, nil
}

// Count returns the number of grid positions.
func (c *Cart) Count() int {
	n := 1
	for _, d := range c.Dims {
		n *= d
	}
	return n
}

// Ndims returns the dimensionality.
func (c *Cart) Ndims() int { return len(c.Dims) }

// Rank maps coordinates to a rank (row-major order, as MPI specifies).
// Out-of-range coordinates in periodic dimensions wrap; in non-periodic
// dimensions they are an error.
func (c *Cart) Rank(coords []int) (int, error) {
	if len(coords) != len(c.Dims) {
		return 0, fmt.Errorf("topo: %d coords for %d dims", len(coords), len(c.Dims))
	}
	rank := 0
	for i, x := range coords {
		d := c.Dims[i]
		if x < 0 || x >= d {
			if !c.Periods[i] {
				return 0, fmt.Errorf("topo: coordinate %d out of range [0,%d) in non-periodic dimension %d", x, d, i)
			}
			x = ((x % d) + d) % d
		}
		rank = rank*d + x
	}
	return rank, nil
}

// Coords maps a rank to its coordinates.
func (c *Cart) Coords(rank int) ([]int, error) {
	if rank < 0 || rank >= c.Count() {
		return nil, fmt.Errorf("topo: rank %d out of range [0,%d)", rank, c.Count())
	}
	coords := make([]int, len(c.Dims))
	for i := len(c.Dims) - 1; i >= 0; i-- {
		coords[i] = rank % c.Dims[i]
		rank /= c.Dims[i]
	}
	return coords, nil
}

// Shift returns the (source, dest) ranks of a displacement along one
// dimension, as seen from rank: recv from source, send to dest
// (MPI_Cart_shift). Off-grid neighbours in non-periodic dimensions are
// ProcNull.
func (c *Cart) Shift(rank, dim, disp int) (src, dst int, err error) {
	if dim < 0 || dim >= len(c.Dims) {
		return 0, 0, fmt.Errorf("topo: shift dimension %d out of range", dim)
	}
	coords, err := c.Coords(rank)
	if err != nil {
		return 0, 0, err
	}
	neighbour := func(delta int) int {
		x := coords[dim] + delta
		if x < 0 || x >= c.Dims[dim] {
			if !c.Periods[dim] {
				return ProcNull
			}
		}
		saved := coords[dim]
		coords[dim] = x
		r, _ := c.Rank(coords) // wraps periodically; in-range otherwise
		coords[dim] = saved
		return r
	}
	return neighbour(-disp), neighbour(disp), nil
}

// Sub projects the grid onto the dimensions where remain[i] is true
// (MPI_Cart_sub). It returns the sub-grid geometry, plus this rank's
// subgrid colour (identifying which hyperplane it belongs to) and its
// rank key within the subgrid.
func (c *Cart) Sub(rank int, remain []bool) (sub *Cart, colour, key int, err error) {
	if len(remain) != len(c.Dims) {
		return nil, 0, 0, fmt.Errorf("topo: %d remain flags for %d dims", len(remain), len(c.Dims))
	}
	coords, err := c.Coords(rank)
	if err != nil {
		return nil, 0, 0, err
	}
	var dims []int
	var periods []bool
	for i, keep := range remain {
		if keep {
			dims = append(dims, c.Dims[i])
			periods = append(periods, c.Periods[i])
		} else {
			colour = colour*c.Dims[i] + coords[i]
		}
	}
	for i, keep := range remain {
		if keep {
			key = key*c.Dims[i] + coords[i]
		}
	}
	if dims == nil {
		// Degenerate: every dimension dropped; each process is its
		// own zero-dimensional grid.
		sub = &Cart{}
		return sub, colour, 0, nil
	}
	sub = &Cart{Dims: dims, Periods: periods}
	return sub, colour, key, nil
}

// Graph is an MPI-1 graph topology in compressed index/edges form:
// neighbours of node i are edges[index[i-1]:index[i]] (index[-1] == 0).
type Graph struct {
	Index []int
	Edges []int
}

// NewGraph validates the compressed adjacency arrays for nnodes nodes.
func NewGraph(nnodes int, index, edges []int) (*Graph, error) {
	if len(index) != nnodes {
		return nil, fmt.Errorf("topo: %d index entries for %d nodes", len(index), nnodes)
	}
	prev := 0
	for i, x := range index {
		if x < prev {
			return nil, fmt.Errorf("topo: index not non-decreasing at %d", i)
		}
		prev = x
	}
	if nnodes > 0 && index[nnodes-1] != len(edges) {
		return nil, fmt.Errorf("topo: index[last]=%d but %d edges", index[nnodes-1], len(edges))
	}
	for _, e := range edges {
		if e < 0 || e >= nnodes {
			return nil, fmt.Errorf("topo: edge target %d out of range [0,%d)", e, nnodes)
		}
	}
	return &Graph{
		Index: append([]int(nil), index...),
		Edges: append([]int(nil), edges...),
	}, nil
}

// Nnodes returns the node count.
func (g *Graph) Nnodes() int { return len(g.Index) }

// Neighbours returns the neighbour list of rank.
func (g *Graph) Neighbours(rank int) ([]int, error) {
	if rank < 0 || rank >= len(g.Index) {
		return nil, fmt.Errorf("topo: rank %d out of range [0,%d)", rank, len(g.Index))
	}
	lo := 0
	if rank > 0 {
		lo = g.Index[rank-1]
	}
	return append([]int(nil), g.Edges[lo:g.Index[rank]]...), nil
}
