package testsuite

import (
	"gompi/mpi"
)

// The point-to-point programs (12).

func init() {
	register(Program{Name: "sendrecv", Category: CatPt2pt, NP: 4, Run: progSendRecv})
	register(Program{Name: "isend", Category: CatPt2pt, NP: 4, Run: progIsend})
	register(Program{Name: "ssend", Category: CatPt2pt, NP: 2, Run: progSsend})
	register(Program{Name: "bsend", Category: CatPt2pt, NP: 2, Run: progBsend})
	register(Program{Name: "rsend", Category: CatPt2pt, NP: 2, Run: progRsend})
	register(Program{Name: "anysrc", Category: CatPt2pt, NP: 4, Run: progAnySource})
	register(Program{Name: "anytag", Category: CatPt2pt, NP: 2, Run: progAnyTag})
	register(Program{Name: "ordering", Category: CatPt2pt, NP: 2, Run: progOrdering})
	register(Program{Name: "probe", Category: CatPt2pt, NP: 2, Run: progProbe})
	register(Program{Name: "persist", Category: CatPt2pt, NP: 2, Run: progPersist})
	register(Program{Name: "waitany", Category: CatPt2pt, NP: 4, Run: progWaitAny})
	register(Program{Name: "sendrecvrep", Category: CatPt2pt, NP: 4, Run: progSendrecvReplace})
}

// progSendRecv: every rank sends its rank to every other rank and checks
// what it receives.
func progSendRecv(env *mpi.Env) error {
	w := env.CommWorld()
	rank, size := w.Rank(), w.Size()
	for peer := 0; peer < size; peer++ {
		if peer == rank {
			continue
		}
		out := []int32{int32(rank)}
		in := []int32{-1}
		if _, err := w.Sendrecv(out, 0, 1, mpi.INT, peer, 3,
			in, 0, 1, mpi.INT, peer, 3); err != nil {
			return err
		}
		if err := expectEq("sendrecv payload", in[0], int32(peer)); err != nil {
			return err
		}
	}
	return nil
}

// progIsend: a ring of nonblocking sends and receives completed with
// WaitAll.
func progIsend(env *mpi.Env) error {
	w := env.CommWorld()
	rank, size := w.Rank(), w.Size()
	next, prev := (rank+1)%size, (rank-1+size)%size
	out := []int64{int64(rank * 11)}
	in := []int64{-1}
	rreq, err := w.Irecv(in, 0, 1, mpi.LONG, prev, 9)
	if err != nil {
		return err
	}
	sreq, err := w.Isend(out, 0, 1, mpi.LONG, next, 9)
	if err != nil {
		return err
	}
	if _, err := mpi.WaitAll([]*mpi.Request{rreq, sreq}); err != nil {
		return err
	}
	return expectEq("ring payload", in[0], int64(prev*11))
}

// progSsend: synchronous send must not complete before the receive is
// posted; the test checks the data path and that a matched pair
// completes.
func progSsend(env *mpi.Env) error {
	w := env.CommWorld()
	if w.Rank() == 0 {
		buf := []float64{3.25, -1.5}
		return w.Ssend(buf, 0, 2, mpi.DOUBLE, 1, 17)
	}
	in := make([]float64, 2)
	st, err := w.Recv(in, 0, 2, mpi.DOUBLE, 0, 17)
	if err != nil {
		return err
	}
	if err := expectEq("ssend count", st.GetCount(mpi.DOUBLE), 2); err != nil {
		return err
	}
	if in[0] != 3.25 || in[1] != -1.5 {
		return failf("ssend payload: got %v", in)
	}
	return nil
}

// progBsend: buffered sends drawn against an attached buffer, completing
// locally before any receive exists.
func progBsend(env *mpi.Env) error {
	w := env.CommWorld()
	if w.Rank() == 0 {
		if err := env.BufferAttach(1 << 16); err != nil {
			return err
		}
		for i := 0; i < 4; i++ {
			buf := []int32{int32(i)}
			if err := w.Bsend(buf, 0, 1, mpi.INT, 1, 20+i); err != nil {
				return err
			}
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		if _, err := env.BufferDetach(); err != nil {
			return err
		}
		return nil
	}
	if err := w.Barrier(); err != nil {
		return err
	}
	for i := 0; i < 4; i++ {
		in := []int32{-1}
		if _, err := w.Recv(in, 0, 1, mpi.INT, 0, 20+i); err != nil {
			return err
		}
		if err := expectEq("bsend payload", in[0], int32(i)); err != nil {
			return err
		}
	}
	return nil
}

// progRsend: ready-mode send with the receive guaranteed posted via a
// synchronising exchange.
func progRsend(env *mpi.Env) error {
	w := env.CommWorld()
	flag := []byte{1}
	if w.Rank() == 0 {
		// Wait for the receiver's "posted" signal, then ready-send.
		if _, err := w.Recv(flag, 0, 1, mpi.BYTE, 1, 1); err != nil {
			return err
		}
		buf := []int16{1234}
		return w.Rsend(buf, 0, 1, mpi.SHORT, 1, 2)
	}
	in := []int16{0}
	rreq, err := w.Irecv(in, 0, 1, mpi.SHORT, 0, 2)
	if err != nil {
		return err
	}
	if err := w.Send(flag, 0, 1, mpi.BYTE, 0, 1); err != nil {
		return err
	}
	if _, err := rreq.Wait(); err != nil {
		return err
	}
	return expectEq("rsend payload", in[0], int16(1234))
}

// progAnySource: rank 0 collects one message from every other rank with
// the source wildcard and checks each arrives exactly once.
func progAnySource(env *mpi.Env) error {
	w := env.CommWorld()
	rank, size := w.Rank(), w.Size()
	if rank != 0 {
		buf := []int32{int32(rank)}
		return w.Send(buf, 0, 1, mpi.INT, 0, 30)
	}
	seen := make(map[int]bool)
	for i := 1; i < size; i++ {
		in := []int32{-1}
		st, err := w.Recv(in, 0, 1, mpi.INT, mpi.AnySource, 30)
		if err != nil {
			return err
		}
		if err := expectEq("wildcard source vs payload", int32(st.Source), in[0]); err != nil {
			return err
		}
		if seen[st.Source] {
			return failf("duplicate message from rank %d", st.Source)
		}
		seen[st.Source] = true
	}
	return nil
}

// progAnyTag: the tag wildcard matches in send order per pair.
func progAnyTag(env *mpi.Env) error {
	w := env.CommWorld()
	if w.Rank() == 0 {
		for i := 0; i < 5; i++ {
			buf := []int32{int32(100 + i)}
			if err := w.Send(buf, 0, 1, mpi.INT, 1, 40+i); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < 5; i++ {
		in := []int32{-1}
		st, err := w.Recv(in, 0, 1, mpi.INT, 0, mpi.AnyTag)
		if err != nil {
			return err
		}
		if err := expectEq("anytag order", st.Tag, 40+i); err != nil {
			return err
		}
		if err := expectEq("anytag payload", in[0], int32(100+i)); err != nil {
			return err
		}
	}
	return nil
}

// progOrdering: MPI's non-overtaking rule — many same-envelope messages
// arrive in send order.
func progOrdering(env *mpi.Env) error {
	const n = 200
	w := env.CommWorld()
	if w.Rank() == 0 {
		for i := 0; i < n; i++ {
			buf := []int32{int32(i)}
			if err := w.Send(buf, 0, 1, mpi.INT, 1, 7); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < n; i++ {
		in := []int32{-1}
		if _, err := w.Recv(in, 0, 1, mpi.INT, 0, 7); err != nil {
			return err
		}
		if err := expectEq("message order", in[0], int32(i)); err != nil {
			return err
		}
	}
	return nil
}

// progProbe: probe reports the pending message's envelope and size, after
// which a right-sized receive collects it.
func progProbe(env *mpi.Env) error {
	w := env.CommWorld()
	if w.Rank() == 0 {
		buf := []float32{1, 2, 3, 4, 5, 6, 7}
		return w.Send(buf, 0, 7, mpi.FLOAT, 1, 55)
	}
	st, err := w.Probe(mpi.AnySource, mpi.AnyTag)
	if err != nil {
		return err
	}
	if err := expectEq("probe source", st.Source, 0); err != nil {
		return err
	}
	if err := expectEq("probe tag", st.Tag, 55); err != nil {
		return err
	}
	n := st.GetCount(mpi.FLOAT)
	if err := expectEq("probe count", n, 7); err != nil {
		return err
	}
	in := make([]float32, n)
	if _, err := w.Recv(in, 0, n, mpi.FLOAT, st.Source, st.Tag); err != nil {
		return err
	}
	if in[6] != 7 {
		return failf("probe payload: got %v", in)
	}
	return nil
}

// progPersist: persistent send/recv requests restarted across
// iterations.
func progPersist(env *mpi.Env) error {
	const iters = 8
	w := env.CommWorld()
	buf := []int32{0}
	if w.Rank() == 0 {
		preq, err := w.SendInit(buf, 0, 1, mpi.INT, 1, 60)
		if err != nil {
			return err
		}
		for i := 0; i < iters; i++ {
			buf[0] = int32(i * i)
			if err := preq.Start(); err != nil {
				return err
			}
			if _, err := preq.Wait(); err != nil {
				return err
			}
		}
		return preq.Free()
	}
	preq, err := w.RecvInit(buf, 0, 1, mpi.INT, 0, 60)
	if err != nil {
		return err
	}
	for i := 0; i < iters; i++ {
		if err := preq.Start(); err != nil {
			return err
		}
		if _, err := preq.Wait(); err != nil {
			return err
		}
		if err := expectEq("persistent payload", buf[0], int32(i*i)); err != nil {
			return err
		}
	}
	return preq.Free()
}

// progWaitAny: rank 0 posts receives from all peers and drains them with
// WaitAny, checking the Status.Index convention (paper §2.1).
func progWaitAny(env *mpi.Env) error {
	w := env.CommWorld()
	rank, size := w.Rank(), w.Size()
	if rank != 0 {
		buf := []int32{int32(rank * 3)}
		return w.Send(buf, 0, 1, mpi.INT, 0, 70)
	}
	reqs := make([]*mpi.Request, size-1)
	bufs := make([][]int32, size-1)
	for i := range reqs {
		bufs[i] = []int32{-1}
		var err error
		reqs[i], err = w.Irecv(bufs[i], 0, 1, mpi.INT, i+1, 70)
		if err != nil {
			return err
		}
	}
	done := make(map[int]bool)
	for range reqs {
		st, err := mpi.WaitAny(reqs)
		if err != nil {
			return err
		}
		i := st.Index
		if i < 0 || i >= len(reqs) || done[i] {
			return failf("WaitAny returned bad index %d", i)
		}
		done[i] = true
		if err := expectEq("waitany payload", bufs[i][0], int32((i+1)*3)); err != nil {
			return err
		}
		reqs[i].Free()
	}
	return nil
}

// progSendrecvReplace: rotate values around a ring in place.
func progSendrecvReplace(env *mpi.Env) error {
	w := env.CommWorld()
	rank, size := w.Rank(), w.Size()
	next, prev := (rank+1)%size, (rank-1+size)%size
	buf := []int32{int32(rank)}
	for step := 0; step < size; step++ {
		if _, err := w.SendrecvReplace(buf, 0, 1, mpi.INT, next, 80, prev, 80); err != nil {
			return err
		}
	}
	return expectEq("full rotation restores value", buf[0], int32(rank))
}
