package testsuite

import (
	"gompi/mpi"
)

// The datatype programs (9).

func init() {
	register(Program{Name: "contig", Category: CatDatatype, NP: 2, Run: progContig})
	register(Program{Name: "vector", Category: CatDatatype, NP: 2, Run: progVector})
	register(Program{Name: "indexed", Category: CatDatatype, NP: 2, Run: progIndexed})
	register(Program{Name: "hvector", Category: CatDatatype, NP: 2, Run: progHvector})
	register(Program{Name: "struct", Category: CatDatatype, NP: 2, Run: progStruct})
	register(Program{Name: "object", Category: CatDatatype, NP: 2, Run: progObject})
	register(Program{Name: "packunpack", Category: CatDatatype, NP: 2, Run: progPackUnpack})
	register(Program{Name: "getcount", Category: CatDatatype, NP: 2, Run: progGetCount})
	register(Program{Name: "extent", Category: CatDatatype, NP: 1, Run: progExtent})
}

// progContig: a contiguous derived type is interchangeable with a plain
// count.
func progContig(env *mpi.Env) error {
	w := env.CommWorld()
	t, err := mpi.TypeContiguous(4, mpi.INT)
	if err != nil {
		return err
	}
	t.Commit()
	if w.Rank() == 0 {
		buf := []int32{1, 2, 3, 4, 5, 6, 7, 8}
		return w.Send(buf, 0, 2, t, 1, 5)
	}
	in := make([]int32, 8)
	st, err := w.Recv(in, 0, 8, mpi.INT, 0, 5)
	if err != nil {
		return err
	}
	if err := expectEq("contig recv count", st.GetCount(mpi.INT), 8); err != nil {
		return err
	}
	return expectInts("contig payload", in, []int32{1, 2, 3, 4, 5, 6, 7, 8})
}

// progVector: send a strided "column" of a linearized 4x4 matrix
// (paper §2.2 — the multidimensional-array use case).
func progVector(env *mpi.Env) error {
	const n = 4
	w := env.CommWorld()
	col, err := mpi.TypeVector(n, 1, n, mpi.DOUBLE)
	if err != nil {
		return err
	}
	col.Commit()
	if w.Rank() == 0 {
		mat := make([]float64, n*n)
		for i := range mat {
			mat[i] = float64(i)
		}
		// Column 2: elements 2, 6, 10, 14.
		return w.Send(mat, 2, 1, col, 1, 6)
	}
	in := make([]float64, n)
	if _, err := w.Recv(in, 0, n, mpi.DOUBLE, 0, 6); err != nil {
		return err
	}
	for i, want := range []float64{2, 6, 10, 14} {
		if err := expectEq("vector column element", in[i], want); err != nil {
			return err
		}
	}
	return nil
}

// progIndexed: gather an upper-triangular section through an indexed
// type.
func progIndexed(env *mpi.Env) error {
	w := env.CommWorld()
	// Rows of lengths 3,2,1 from a 3x3 matrix: displacements 0,4,8.
	t, err := mpi.TypeIndexed([]int{3, 2, 1}, []int{0, 4, 8}, mpi.INT)
	if err != nil {
		return err
	}
	t.Commit()
	if w.Rank() == 0 {
		mat := []int32{1, 2, 3, 0, 5, 6, 0, 0, 9}
		return w.Send(mat, 0, 1, t, 1, 7)
	}
	in := make([]int32, 6)
	st, err := w.Recv(in, 0, 6, mpi.INT, 0, 7)
	if err != nil {
		return err
	}
	if err := expectEq("indexed count", st.GetCount(mpi.INT), 6); err != nil {
		return err
	}
	return expectInts("indexed payload", in, []int32{1, 2, 3, 5, 6, 9})
}

// progHvector: element-unit strides decoupled from the base extent.
func progHvector(env *mpi.Env) error {
	w := env.CommWorld()
	t, err := mpi.TypeHvector(3, 2, 5, mpi.SHORT)
	if err != nil {
		return err
	}
	t.Commit()
	if w.Rank() == 0 {
		buf := make([]int16, 15)
		for i := range buf {
			buf[i] = int16(i)
		}
		return w.Send(buf, 0, 1, t, 1, 8)
	}
	in := make([]int16, 6)
	if _, err := w.Recv(in, 0, 6, mpi.SHORT, 0, 8); err != nil {
		return err
	}
	want := []int16{0, 1, 5, 6, 10, 11}
	for i := range want {
		if err := expectEq("hvector element", in[i], want[i]); err != nil {
			return err
		}
	}
	return nil
}

// progStruct: same-base struct (the mpiJava restriction) with an
// explicit UB marker controlling the extent.
func progStruct(env *mpi.Env) error {
	w := env.CommWorld()
	// Two ints at 0, one int at 3, UB at 5 => extent 5 with holes.
	t, err := mpi.TypeStruct(
		[]int{2, 1, 1},
		[]int{0, 3, 5},
		[]*mpi.Datatype{mpi.INT, mpi.INT, mpi.UB},
	)
	if err != nil {
		return err
	}
	t.Commit()
	if err := expectEq("struct extent", t.Extent(), 5); err != nil {
		return err
	}
	if err := expectEq("struct size", t.Size(), 3); err != nil {
		return err
	}
	if w.Rank() == 0 {
		buf := make([]int32, 10)
		for i := range buf {
			buf[i] = int32(i)
		}
		return w.Send(buf, 0, 2, t, 1, 9)
	}
	in := make([]int32, 6)
	if _, err := w.Recv(in, 0, 6, mpi.INT, 0, 9); err != nil {
		return err
	}
	// Items at base 0 and 5: elements {0,1,3} and {5,6,8}.
	return expectInts("struct payload", in, []int32{0, 1, 3, 5, 6, 8})
}

type suiteMsg struct {
	ID   int
	Text string
	Vals []float64
}

// progObject: the paper's §2.2 extension — a buffer of serializable
// objects travelling as MPI.OBJECT.
func progObject(env *mpi.Env) error {
	mpi.RegisterObject(suiteMsg{})
	w := env.CommWorld()
	if w.Rank() == 0 {
		buf := []any{
			suiteMsg{ID: 1, Text: "hello", Vals: []float64{1, 2}},
			suiteMsg{ID: 2, Text: "world", Vals: []float64{3}},
		}
		return w.Send(buf, 0, 2, mpi.OBJECT, 1, 10)
	}
	in := make([]any, 2)
	st, err := w.Recv(in, 0, 2, mpi.OBJECT, 0, 10)
	if err != nil {
		return err
	}
	if err := expectEq("object count", st.GetCount(mpi.OBJECT), 2); err != nil {
		return err
	}
	m0, ok := in[0].(suiteMsg)
	if !ok {
		return failf("object 0: wrong type %T", in[0])
	}
	if m0.ID != 1 || m0.Text != "hello" || len(m0.Vals) != 2 {
		return failf("object 0: got %+v", m0)
	}
	m1 := in[1].(suiteMsg)
	if m1.Text != "world" {
		return failf("object 1: got %+v", m1)
	}
	return nil
}

// progPackUnpack: MPI_Pack/Unpack round trip through a PACKED send.
func progPackUnpack(env *mpi.Env) error {
	w := env.CommWorld()
	if w.Rank() == 0 {
		ints := []int32{7, 8, 9}
		dbls := []float64{1.5, 2.5}
		size1, err := w.PackSize(3, mpi.INT)
		if err != nil {
			return err
		}
		size2, err := w.PackSize(2, mpi.DOUBLE)
		if err != nil {
			return err
		}
		out := make([]byte, size1+size2)
		pos, err := w.Pack(ints, 0, 3, mpi.INT, out, 0)
		if err != nil {
			return err
		}
		pos, err = w.Pack(dbls, 0, 2, mpi.DOUBLE, out, pos)
		if err != nil {
			return err
		}
		return w.Send(out, 0, pos, mpi.PACKED, 1, 11)
	}
	st, err := w.Probe(0, 11)
	if err != nil {
		return err
	}
	in := make([]byte, st.Bytes())
	if _, err := w.Recv(in, 0, len(in), mpi.PACKED, 0, 11); err != nil {
		return err
	}
	ints := make([]int32, 3)
	dbls := make([]float64, 2)
	pos, err := w.Unpack(in, 0, ints, 0, 3, mpi.INT)
	if err != nil {
		return err
	}
	if _, err := w.Unpack(in, pos, dbls, 0, 2, mpi.DOUBLE); err != nil {
		return err
	}
	if err := expectInts("unpacked ints", ints, []int32{7, 8, 9}); err != nil {
		return err
	}
	if dbls[0] != 1.5 || dbls[1] != 2.5 {
		return failf("unpacked doubles: got %v", dbls)
	}
	return nil
}

// progGetCount: partial receives and GetCount/GetElements semantics.
func progGetCount(env *mpi.Env) error {
	w := env.CommWorld()
	pair, err := mpi.TypeContiguous(2, mpi.INT)
	if err != nil {
		return err
	}
	pair.Commit()
	if w.Rank() == 0 {
		buf := []int32{1, 2, 3, 4, 5, 6}
		// Send 3 ints: 1.5 "pairs".
		if err := w.Send(buf, 0, 3, mpi.INT, 1, 12); err != nil {
			return err
		}
		return w.Send(buf, 0, 6, mpi.INT, 1, 13)
	}
	in := make([]int32, 6)
	st, err := w.Recv(in, 0, 3, pair, 0, 12)
	if err != nil {
		return err
	}
	if err := expectEq("partial GetElements", st.GetElements(pair), 3); err != nil {
		return err
	}
	if err := expectEq("partial GetCount is undefined", st.GetCount(pair), mpi.Undefined); err != nil {
		return err
	}
	st, err = w.Recv(in, 0, 3, pair, 0, 13)
	if err != nil {
		return err
	}
	if err := expectEq("full GetCount", st.GetCount(pair), 3); err != nil {
		return err
	}
	return expectEq("full GetElements", st.GetElements(pair), 6)
}

// progExtent: size/extent/bounds of nested derived types.
func progExtent(env *mpi.Env) error {
	v, err := mpi.TypeVector(3, 2, 4, mpi.DOUBLE)
	if err != nil {
		return err
	}
	if err := expectEq("vector size", v.Size(), 6); err != nil {
		return err
	}
	// Last block starts at 8, two elements -> ub 10.
	if err := expectEq("vector extent", v.Extent(), 10); err != nil {
		return err
	}
	if err := expectEq("vector lb", v.Lb(), 0); err != nil {
		return err
	}
	c, err := mpi.TypeContiguous(2, v)
	if err != nil {
		return err
	}
	if err := expectEq("nested size", c.Size(), 12); err != nil {
		return err
	}
	if err := expectEq("nested extent", c.Extent(), 20); err != nil {
		return err
	}
	if !mpi.INT.Committed() {
		return failf("basic type must be committed")
	}
	return nil
}
