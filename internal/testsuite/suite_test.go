package testsuite

import (
	"fmt"
	"testing"

	"gompi/mpi"
)

// TestSuiteCount pins the suite at the paper's 57 programs (§3.4).
func TestSuiteCount(t *testing.T) {
	ps := Programs()
	if len(ps) != 57 {
		t.Fatalf("suite has %d programs, the paper's suite has 57", len(ps))
	}
	byCat := map[string]int{}
	for _, p := range ps {
		byCat[p.Category]++
	}
	for _, cat := range []string{CatCollective, CatComm, CatDatatype, CatEnv, CatGroup, CatPt2pt, CatTopo} {
		if byCat[cat] == 0 {
			t.Errorf("category %q has no programs", cat)
		}
	}
}

// TestSuiteSM runs all 57 programs in Shared Memory mode.
func TestSuiteSM(t *testing.T) {
	runSuite(t, false)
}

// TestSuiteDM runs all 57 programs in Distributed Memory mode — the
// paper's claim is that every program runs in both modes unaltered.
func TestSuiteDM(t *testing.T) {
	if testing.Short() {
		t.Skip("DM sweep skipped in -short mode")
	}
	runSuite(t, true)
}

func runSuite(t *testing.T, tcp bool) {
	for _, p := range Programs() {
		p := p
		t.Run(fmt.Sprintf("%s/%s", p.Category, p.Name), func(t *testing.T) {
			t.Parallel()
			if err := RunProgram(p, tcp); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSuiteRendezvous re-runs the full suite with the eager path disabled
// (every message, including collective internals, takes the RTS/CTS
// rendezvous), stressing the protocol layer the figures only exercise at
// large sizes.
func TestSuiteRendezvous(t *testing.T) {
	for _, p := range Programs() {
		p := p
		t.Run(fmt.Sprintf("%s/%s", p.Category, p.Name), func(t *testing.T) {
			t.Parallel()
			if err := RunProgramOpt(p, mpi.RunOptions{EagerLimit: -1}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSuiteTinyInbox re-runs the suite with a minimal flow-control
// window, forcing senders onto the blocking back-pressure paths.
func TestSuiteTinyInbox(t *testing.T) {
	if testing.Short() {
		t.Skip("inbox sweep skipped in -short mode")
	}
	for _, p := range Programs() {
		p := p
		t.Run(fmt.Sprintf("%s/%s", p.Category, p.Name), func(t *testing.T) {
			t.Parallel()
			if err := RunProgramOpt(p, mpi.RunOptions{InboxDepth: 2}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
