package testsuite

import (
	"gompi/mpi"
)

// The group programs (7).

func init() {
	register(Program{Name: "groupsize", Category: CatGroup, NP: 4, Run: progGroupSize})
	register(Program{Name: "groupunion", Category: CatGroup, NP: 4, Run: progGroupUnion})
	register(Program{Name: "groupinter", Category: CatGroup, NP: 4, Run: progGroupIntersection})
	register(Program{Name: "groupdiff", Category: CatGroup, NP: 4, Run: progGroupDifference})
	register(Program{Name: "groupincl", Category: CatGroup, NP: 4, Run: progGroupInclExcl})
	register(Program{Name: "grouprange", Category: CatGroup, NP: 6, Run: progGroupRange})
	register(Program{Name: "grouptrans", Category: CatGroup, NP: 4, Run: progGroupTranslate})
}

func progGroupSize(env *mpi.Env) error {
	w := env.CommWorld()
	g := w.Group()
	if err := expectEq("group size", g.Size(), w.Size()); err != nil {
		return err
	}
	if err := expectEq("group rank", g.Rank(), w.Rank()); err != nil {
		return err
	}
	if err := expectEq("empty group size", mpi.GroupEmpty.Size(), 0); err != nil {
		return err
	}
	return expectEq("empty group rank", mpi.GroupEmpty.Rank(), mpi.Undefined)
}

func progGroupUnion(env *mpi.Env) error {
	w := env.CommWorld()
	g := w.Group()
	evens, err := g.Incl([]int{0, 2})
	if err != nil {
		return err
	}
	low, err := g.Incl([]int{1, 0})
	if err != nil {
		return err
	}
	u := mpi.Union(evens, low)
	// Union keeps g1 order then appends new members: [0,2,1].
	if err := expectEq("union size", u.Size(), 3); err != nil {
		return err
	}
	tr, err := mpi.TranslateRanks(u, []int{0, 1, 2}, g)
	if err != nil {
		return err
	}
	want := []int{0, 2, 1}
	for i := range want {
		if err := expectEq("union order", tr[i], want[i]); err != nil {
			return err
		}
	}
	return nil
}

func progGroupIntersection(env *mpi.Env) error {
	w := env.CommWorld()
	g := w.Group()
	a, err := g.Incl([]int{0, 1, 2})
	if err != nil {
		return err
	}
	b, err := g.Incl([]int{3, 2, 1})
	if err != nil {
		return err
	}
	x := mpi.Intersection(a, b)
	if err := expectEq("intersection size", x.Size(), 2); err != nil {
		return err
	}
	// Order follows a: [1, 2].
	tr, err := mpi.TranslateRanks(x, []int{0, 1}, g)
	if err != nil {
		return err
	}
	if tr[0] != 1 || tr[1] != 2 {
		return failf("intersection order: got %v, want [1 2]", tr)
	}
	return nil
}

func progGroupDifference(env *mpi.Env) error {
	w := env.CommWorld()
	g := w.Group()
	b, err := g.Incl([]int{1, 3})
	if err != nil {
		return err
	}
	d := mpi.Difference(g, b)
	if err := expectEq("difference size", d.Size(), w.Size()-2); err != nil {
		return err
	}
	tr, err := mpi.TranslateRanks(d, []int{0, 1}, g)
	if err != nil {
		return err
	}
	if tr[0] != 0 || tr[1] != 2 {
		return failf("difference order: got %v, want [0 2]", tr)
	}
	// Difference with itself is empty.
	if err := expectEq("self difference", mpi.Difference(g, g).Size(), 0); err != nil {
		return err
	}
	return nil
}

func progGroupInclExcl(env *mpi.Env) error {
	w := env.CommWorld()
	g := w.Group()
	incl, err := g.Incl([]int{3, 1})
	if err != nil {
		return err
	}
	if err := expectEq("incl size", incl.Size(), 2); err != nil {
		return err
	}
	excl, err := g.Excl([]int{3, 1})
	if err != nil {
		return err
	}
	if err := expectEq("excl size", excl.Size(), w.Size()-2); err != nil {
		return err
	}
	if err := expectEq("incl+excl complementary", mpi.Intersection(incl, excl).Size(), 0); err != nil {
		return err
	}
	// Rank membership: rank 1 belongs to incl (position 1), not excl.
	if w.Rank() == 1 {
		if err := expectEq("incl rank", incl.Rank(), 1); err != nil {
			return err
		}
		if err := expectEq("excl rank", excl.Rank(), mpi.Undefined); err != nil {
			return err
		}
	}
	// Out-of-range and duplicate ranks are errors.
	if _, err := g.Incl([]int{0, w.Size()}); mpi.ClassOf(err) != mpi.ErrRank {
		return failf("out-of-range Incl: got %v", err)
	}
	if _, err := g.Incl([]int{1, 1}); mpi.ClassOf(err) != mpi.ErrRank {
		return failf("duplicate Incl: got %v", err)
	}
	return nil
}

func progGroupRange(env *mpi.Env) error {
	w := env.CommWorld()
	g := w.Group() // size 6
	// Ranks 0,2,4 by stride.
	evens, err := g.RangeIncl([][3]int{{0, 5, 2}})
	if err != nil {
		return err
	}
	if err := expectEq("range incl size", evens.Size(), 3); err != nil {
		return err
	}
	tr, err := mpi.TranslateRanks(evens, []int{0, 1, 2}, g)
	if err != nil {
		return err
	}
	for i, want := range []int{0, 2, 4} {
		if err := expectEq("range incl member", tr[i], want); err != nil {
			return err
		}
	}
	// Descending range: 5,4,3.
	desc, err := g.RangeIncl([][3]int{{5, 3, -1}})
	if err != nil {
		return err
	}
	tr, err = mpi.TranslateRanks(desc, []int{0, 1, 2}, g)
	if err != nil {
		return err
	}
	for i, want := range []int{5, 4, 3} {
		if err := expectEq("descending range member", tr[i], want); err != nil {
			return err
		}
	}
	// RangeExcl of the evens leaves the odds.
	odds, err := g.RangeExcl([][3]int{{0, 5, 2}})
	if err != nil {
		return err
	}
	if err := expectEq("range excl size", odds.Size(), 3); err != nil {
		return err
	}
	return nil
}

func progGroupTranslate(env *mpi.Env) error {
	w := env.CommWorld()
	g := w.Group()
	rev := make([]int, g.Size())
	for i := range rev {
		rev[i] = g.Size() - 1 - i
	}
	grev, err := g.Incl(rev)
	if err != nil {
		return err
	}
	ranks := make([]int, g.Size())
	for i := range ranks {
		ranks[i] = i
	}
	tr, err := mpi.TranslateRanks(g, ranks, grev)
	if err != nil {
		return err
	}
	for i := range tr {
		if err := expectEq("translate reversal", tr[i], g.Size()-1-i); err != nil {
			return err
		}
	}
	// Members absent from the target map to Undefined.
	sub, err := g.Incl([]int{0})
	if err != nil {
		return err
	}
	tr, err = mpi.TranslateRanks(g, []int{1}, sub)
	if err != nil {
		return err
	}
	return expectEq("missing member translates to Undefined", tr[0], mpi.Undefined)
}
