package testsuite

import (
	"gompi/mpi"
)

// The collective-operation programs (13).

func init() {
	register(Program{Name: "barrier", Category: CatCollective, NP: 4, Run: progBarrier})
	register(Program{Name: "bcast", Category: CatCollective, NP: 4, Run: progBcast})
	register(Program{Name: "gather", Category: CatCollective, NP: 4, Run: progGather})
	register(Program{Name: "gatherv", Category: CatCollective, NP: 4, Run: progGatherv})
	register(Program{Name: "scatter", Category: CatCollective, NP: 4, Run: progScatter})
	register(Program{Name: "scatterv", Category: CatCollective, NP: 4, Run: progScatterv})
	register(Program{Name: "allgather", Category: CatCollective, NP: 4, Run: progAllgather})
	register(Program{Name: "allgatherv", Category: CatCollective, NP: 4, Run: progAllgatherv})
	register(Program{Name: "alltoall", Category: CatCollective, NP: 4, Run: progAlltoall})
	register(Program{Name: "alltoallv", Category: CatCollective, NP: 4, Run: progAlltoallv})
	register(Program{Name: "reduce", Category: CatCollective, NP: 5, Run: progReduce})
	register(Program{Name: "allreduce", Category: CatCollective, NP: 5, Run: progAllreduce})
	register(Program{Name: "scan", Category: CatCollective, NP: 4, Run: progScan})
}

// progBarrier: no rank may leave barrier k before every rank entered it;
// verified with a flag message that must not overtake the barrier.
func progBarrier(env *mpi.Env) error {
	w := env.CommWorld()
	rank := w.Rank()
	for round := 0; round < 3; round++ {
		if err := w.Barrier(); err != nil {
			return err
		}
		// After each barrier, a quick neighbour handshake must find
		// both sides in the same round.
		out := []int32{int32(round)}
		in := []int32{-1}
		peer := rank ^ 1
		if peer < w.Size() {
			if _, err := w.Sendrecv(out, 0, 1, mpi.INT, peer, 90+round,
				in, 0, 1, mpi.INT, peer, 90+round); err != nil {
				return err
			}
			if err := expectEq("barrier round", in[0], int32(round)); err != nil {
				return err
			}
		}
	}
	return nil
}

// progBcast: broadcast from every root in turn, several datatypes.
func progBcast(env *mpi.Env) error {
	w := env.CommWorld()
	for root := 0; root < w.Size(); root++ {
		ints := make([]int32, 8)
		if w.Rank() == root {
			for i := range ints {
				ints[i] = int32(root*100 + i)
			}
		}
		if err := w.Bcast(ints, 0, 8, mpi.INT, root); err != nil {
			return err
		}
		for i, v := range ints {
			if err := expectEq("bcast int", v, int32(root*100+i)); err != nil {
				return err
			}
		}
		dbl := []float64{0}
		if w.Rank() == root {
			dbl[0] = float64(root) + 0.5
		}
		if err := w.Bcast(dbl, 0, 1, mpi.DOUBLE, root); err != nil {
			return err
		}
		if err := expectEq("bcast double", dbl[0], float64(root)+0.5); err != nil {
			return err
		}
	}
	return nil
}

// progGather: root collects rank-stamped blocks in rank order.
func progGather(env *mpi.Env) error {
	w := env.CommWorld()
	rank, size := w.Rank(), w.Size()
	const blk = 3
	send := make([]int32, blk)
	for i := range send {
		send[i] = int32(rank*10 + i)
	}
	for root := 0; root < size; root++ {
		recv := make([]int32, blk*size)
		if err := w.Gather(send, 0, blk, mpi.INT, recv, 0, blk, mpi.INT, root); err != nil {
			return err
		}
		if rank == root {
			want := make([]int32, 0, blk*size)
			for r := 0; r < size; r++ {
				for i := 0; i < blk; i++ {
					want = append(want, int32(r*10+i))
				}
			}
			if err := expectInts("gather result", recv, want); err != nil {
				return err
			}
		}
	}
	return nil
}

// progGatherv: rank r contributes r+1 elements at displacement r*(r+1)/2.
func progGatherv(env *mpi.Env) error {
	w := env.CommWorld()
	rank, size := w.Rank(), w.Size()
	scount := rank + 1
	send := make([]int32, scount)
	for i := range send {
		send[i] = int32(rank)
	}
	counts := make([]int, size)
	displs := make([]int, size)
	total := 0
	for r := 0; r < size; r++ {
		counts[r] = r + 1
		displs[r] = total
		total += r + 1
	}
	recv := make([]int32, total)
	if err := w.Gatherv(send, 0, scount, mpi.INT, recv, 0, counts, displs, mpi.INT, 0); err != nil {
		return err
	}
	if rank == 0 {
		var want []int32
		for r := 0; r < size; r++ {
			for i := 0; i < r+1; i++ {
				want = append(want, int32(r))
			}
		}
		return expectInts("gatherv result", recv, want)
	}
	return nil
}

// progScatter: root distributes rank-stamped blocks.
func progScatter(env *mpi.Env) error {
	w := env.CommWorld()
	rank, size := w.Rank(), w.Size()
	const blk = 2
	var send []int64
	if rank == 1 {
		send = make([]int64, blk*size)
		for r := 0; r < size; r++ {
			for i := 0; i < blk; i++ {
				send[r*blk+i] = int64(r*1000 + i)
			}
		}
	}
	recv := make([]int64, blk)
	if err := w.Scatter(send, 0, blk, mpi.LONG, recv, 0, blk, mpi.LONG, 1); err != nil {
		return err
	}
	for i := 0; i < blk; i++ {
		if err := expectEq("scatter block", recv[i], int64(rank*1000+i)); err != nil {
			return err
		}
	}
	return nil
}

// progScatterv: variable-size blocks with gaps in the send layout.
func progScatterv(env *mpi.Env) error {
	w := env.CommWorld()
	rank, size := w.Rank(), w.Size()
	counts := make([]int, size)
	displs := make([]int, size)
	pos := 0
	for r := 0; r < size; r++ {
		counts[r] = r + 1
		displs[r] = pos + 1 // leave a one-element hole before each block
		pos += r + 2
	}
	var send []int32
	if rank == 0 {
		send = make([]int32, pos)
		for r := 0; r < size; r++ {
			for i := 0; i < counts[r]; i++ {
				send[displs[r]+i] = int32(r*10 + i)
			}
		}
	}
	recv := make([]int32, counts[rank])
	if err := w.Scatterv(send, 0, counts, displs, mpi.INT, recv, 0, counts[rank], mpi.INT, 0); err != nil {
		return err
	}
	for i := range recv {
		if err := expectEq("scatterv block", recv[i], int32(rank*10+i)); err != nil {
			return err
		}
	}
	return nil
}

// progAllgather: every rank assembles the full rank vector.
func progAllgather(env *mpi.Env) error {
	w := env.CommWorld()
	rank, size := w.Rank(), w.Size()
	send := []int32{int32(rank * 7)}
	recv := make([]int32, size)
	if err := w.Allgather(send, 0, 1, mpi.INT, recv, 0, 1, mpi.INT); err != nil {
		return err
	}
	for r := 0; r < size; r++ {
		if err := expectEq("allgather slot", recv[r], int32(r*7)); err != nil {
			return err
		}
	}
	return nil
}

// progAllgatherv: triangle layout at every rank.
func progAllgatherv(env *mpi.Env) error {
	w := env.CommWorld()
	rank, size := w.Rank(), w.Size()
	scount := rank + 1
	send := make([]int32, scount)
	for i := range send {
		send[i] = int32(rank)
	}
	counts := make([]int, size)
	displs := make([]int, size)
	total := 0
	for r := 0; r < size; r++ {
		counts[r] = r + 1
		displs[r] = total
		total += r + 1
	}
	recv := make([]int32, total)
	if err := w.Allgatherv(send, 0, scount, mpi.INT, recv, 0, counts, displs, mpi.INT); err != nil {
		return err
	}
	var want []int32
	for r := 0; r < size; r++ {
		for i := 0; i < r+1; i++ {
			want = append(want, int32(r))
		}
	}
	return expectInts("allgatherv result", recv, want)
}

// progAlltoall: full pairwise exchange, send[j] stamped (rank, j).
func progAlltoall(env *mpi.Env) error {
	w := env.CommWorld()
	rank, size := w.Rank(), w.Size()
	send := make([]int32, size)
	for j := range send {
		send[j] = int32(rank*100 + j)
	}
	recv := make([]int32, size)
	if err := w.Alltoall(send, 0, 1, mpi.INT, recv, 0, 1, mpi.INT); err != nil {
		return err
	}
	for j := 0; j < size; j++ {
		if err := expectEq("alltoall slot", recv[j], int32(j*100+rank)); err != nil {
			return err
		}
	}
	return nil
}

// progAlltoallv: rank r sends j+1 elements to rank j.
func progAlltoallv(env *mpi.Env) error {
	w := env.CommWorld()
	rank, size := w.Rank(), w.Size()
	scounts := make([]int, size)
	sdispls := make([]int, size)
	stotal := 0
	for j := 0; j < size; j++ {
		scounts[j] = j + 1
		sdispls[j] = stotal
		stotal += j + 1
	}
	send := make([]int32, stotal)
	for j := 0; j < size; j++ {
		for i := 0; i < scounts[j]; i++ {
			send[sdispls[j]+i] = int32(rank*100 + j)
		}
	}
	rcounts := make([]int, size)
	rdispls := make([]int, size)
	rtotal := 0
	for j := 0; j < size; j++ {
		rcounts[j] = rank + 1
		rdispls[j] = rtotal
		rtotal += rank + 1
	}
	recv := make([]int32, rtotal)
	if err := w.Alltoallv(send, 0, scounts, sdispls, mpi.INT,
		recv, 0, rcounts, rdispls, mpi.INT); err != nil {
		return err
	}
	for j := 0; j < size; j++ {
		for i := 0; i < rank+1; i++ {
			if err := expectEq("alltoallv slot", recv[rdispls[j]+i], int32(j*100+rank)); err != nil {
				return err
			}
		}
	}
	return nil
}

// progReduce: SUM, MAX and PROD to rotating roots.
func progReduce(env *mpi.Env) error {
	w := env.CommWorld()
	rank, size := w.Rank(), w.Size()
	for root := 0; root < size; root++ {
		in := []int32{int32(rank + 1), int32(rank * rank)}
		out := []int32{0, 0}
		if err := w.Reduce(in, 0, out, 0, 2, mpi.INT, mpi.SUM, root); err != nil {
			return err
		}
		if rank == root {
			wantSum := int32(size * (size + 1) / 2)
			var wantSq int32
			for r := 0; r < size; r++ {
				wantSq += int32(r * r)
			}
			if out[0] != wantSum || out[1] != wantSq {
				return failf("reduce sum: got %v, want [%d %d]", out, wantSum, wantSq)
			}
		}
		fin := []float64{float64(rank)}
		fout := []float64{-1}
		if err := w.Reduce(fin, 0, fout, 0, 1, mpi.DOUBLE, mpi.MAX, root); err != nil {
			return err
		}
		if rank == root {
			if err := expectEq("reduce max", fout[0], float64(size-1)); err != nil {
				return err
			}
		}
	}
	return nil
}

// progAllreduce: SUM and MIN visible at every rank, including a
// non-power-of-two size (NP=5 exercises the folding phases).
func progAllreduce(env *mpi.Env) error {
	w := env.CommWorld()
	rank, size := w.Rank(), w.Size()
	in := []int64{int64(rank + 1)}
	out := []int64{0}
	if err := w.Allreduce(in, 0, out, 0, 1, mpi.LONG, mpi.SUM); err != nil {
		return err
	}
	if err := expectEq("allreduce sum", out[0], int64(size*(size+1)/2)); err != nil {
		return err
	}
	fin := []float32{float32(10 - rank)}
	fout := []float32{0}
	if err := w.Allreduce(fin, 0, fout, 0, 1, mpi.FLOAT, mpi.MIN); err != nil {
		return err
	}
	return expectEq("allreduce min", fout[0], float32(10-(size-1)))
}

// progScan: inclusive prefix sums in rank order.
func progScan(env *mpi.Env) error {
	w := env.CommWorld()
	rank := w.Rank()
	in := []int32{int32(rank + 1)}
	out := []int32{0}
	if err := w.Scan(in, 0, out, 0, 1, mpi.INT, mpi.SUM); err != nil {
		return err
	}
	return expectEq("scan prefix", out[0], int32((rank+1)*(rank+2)/2))
}
