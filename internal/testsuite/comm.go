package testsuite

import (
	"gompi/mpi"
)

// The communicator programs (8).

func init() {
	register(Program{Name: "commdup", Category: CatComm, NP: 4, Run: progCommDup})
	register(Program{Name: "commsplit", Category: CatComm, NP: 5, Run: progCommSplit})
	register(Program{Name: "commcreate", Category: CatComm, NP: 4, Run: progCommCreate})
	register(Program{Name: "commfree", Category: CatComm, NP: 2, Run: progCommFree})
	register(Program{Name: "commcompare", Category: CatComm, NP: 4, Run: progCommCompare})
	register(Program{Name: "intercomm", Category: CatComm, NP: 4, Run: progIntercomm})
	register(Program{Name: "intermerge", Category: CatComm, NP: 4, Run: progIntermerge})
	register(Program{Name: "commself", Category: CatComm, NP: 3, Run: progCommSelf})
}

// progCommDup: traffic on a dup never matches traffic on the parent.
func progCommDup(env *mpi.Env) error {
	w := env.CommWorld()
	dup, err := w.Dup()
	if err != nil {
		return err
	}
	rank, size := w.Rank(), w.Size()
	next, prev := (rank+1)%size, (rank-1+size)%size
	// Same tag, two communicators, interleaved: each message must be
	// delivered on its own communicator.
	inW := []int32{-1}
	inD := []int32{-1}
	rW, err := w.Irecv(inW, 0, 1, mpi.INT, prev, 5)
	if err != nil {
		return err
	}
	rD, err := dup.Irecv(inD, 0, 1, mpi.INT, prev, 5)
	if err != nil {
		return err
	}
	// Send on dup first, then world; the contexts keep them straight.
	if err := dup.Send([]int32{int32(rank + 1000)}, 0, 1, mpi.INT, next, 5); err != nil {
		return err
	}
	if err := w.Send([]int32{int32(rank)}, 0, 1, mpi.INT, next, 5); err != nil {
		return err
	}
	if _, err := mpi.WaitAll([]*mpi.Request{rW, rD}); err != nil {
		return err
	}
	if err := expectEq("world payload", inW[0], int32(prev)); err != nil {
		return err
	}
	if err := expectEq("dup payload", inD[0], int32(prev+1000)); err != nil {
		return err
	}
	return dup.Free()
}

// progCommSplit: odd/even split with reversed key order in one colour.
func progCommSplit(env *mpi.Env) error {
	w := env.CommWorld()
	rank, size := w.Rank(), w.Size()
	colour := rank % 2
	key := rank
	if colour == 1 {
		key = -rank // reverse ordering among odds
	}
	sub, err := w.Split(colour, key)
	if err != nil {
		return err
	}
	if sub == nil {
		return failf("split returned nil for valid colour")
	}
	wantSize := (size + 1 - colour) / 2
	if err := expectEq("split size", sub.Size(), wantSize); err != nil {
		return err
	}
	// A sum over the subgroup identifies the members.
	in := []int32{int32(rank)}
	out := []int32{0}
	if err := sub.Allreduce(in, 0, out, 0, 1, mpi.INT, mpi.SUM); err != nil {
		return err
	}
	var want int32
	for r := colour; r < size; r += 2 {
		want += int32(r)
	}
	if err := expectEq("split membership sum", out[0], want); err != nil {
		return err
	}
	// Odd colour: keys reversed, so world rank ordering is descending.
	if colour == 1 && sub.Size() > 1 {
		highest := sub.Size() - 1
		var wantRank int
		for r := 1; r < size; r += 2 {
			wantRank++
		}
		_ = highest
		_ = wantRank
		// Rank 1 has key -1, the largest among odds, so it comes last.
		if rank == 1 {
			if err := expectEq("reversed key order", sub.Rank(), sub.Size()-1); err != nil {
				return err
			}
		}
	}
	return nil
}

// progCommCreate: communicator over an explicit subgroup; non-members
// get nil.
func progCommCreate(env *mpi.Env) error {
	w := env.CommWorld()
	rank := w.Rank()
	g, err := w.Group().Incl([]int{0, 2})
	if err != nil {
		return err
	}
	sub, err := w.Create(g)
	if err != nil {
		return err
	}
	if rank == 0 || rank == 2 {
		if sub == nil {
			return failf("member got nil communicator")
		}
		if err := expectEq("create size", sub.Size(), 2); err != nil {
			return err
		}
		peer := 1 - sub.Rank()
		out := []int32{int32(rank)}
		in := []int32{-1}
		if _, err := sub.Sendrecv(out, 0, 1, mpi.INT, peer, 1,
			in, 0, 1, mpi.INT, peer, 1); err != nil {
			return err
		}
		want := int32(2 - rank) // 0<->2
		return expectEq("create exchange", in[0], want)
	}
	if sub != nil {
		return failf("non-member got a communicator")
	}
	return nil
}

// progCommFree: freed communicators raise ErrComm on use.
func progCommFree(env *mpi.Env) error {
	w := env.CommWorld()
	dup, err := w.Dup()
	if err != nil {
		return err
	}
	if err := dup.Free(); err != nil {
		return err
	}
	buf := []int32{0}
	err = dup.Send(buf, 0, 1, mpi.INT, 0, 1)
	if mpi.ClassOf(err) != mpi.ErrComm {
		return failf("send on freed comm: got %v, want ErrComm", err)
	}
	if err := dup.Free(); mpi.ClassOf(err) != mpi.ErrComm {
		return failf("double free: got %v, want ErrComm", err)
	}
	return nil
}

// progCommCompare: group comparison semantics.
func progCommCompare(env *mpi.Env) error {
	w := env.CommWorld()
	dup, err := w.Dup()
	if err != nil {
		return err
	}
	gw := w.Group()
	gd := dup.Group()
	if err := expectEq("world vs dup groups", mpi.GroupCompare(gw, gd), mpi.Ident); err != nil {
		return err
	}
	rev := make([]int, gw.Size())
	for i := range rev {
		rev[i] = gw.Size() - 1 - i
	}
	grev, err := gw.Incl(rev)
	if err != nil {
		return err
	}
	if err := expectEq("reversed group", mpi.GroupCompare(gw, grev), mpi.Similar); err != nil {
		return err
	}
	gsub, err := gw.Incl([]int{0})
	if err != nil {
		return err
	}
	return expectEq("subset group", mpi.GroupCompare(gw, gsub), mpi.Unequal)
}

// progIntercomm: split the world into halves, bridge them with an
// intercommunicator, exchange across it.
func progIntercomm(env *mpi.Env) error {
	w := env.CommWorld()
	rank, size := w.Rank(), w.Size()
	half := size / 2
	side := 0
	if rank >= half {
		side = 1
	}
	local, err := w.Split(side, rank)
	if err != nil {
		return err
	}
	remoteLeader := half
	if side == 1 {
		remoteLeader = 0
	}
	ic, err := local.CreateIntercomm(&w.Comm, 0, remoteLeader, 99)
	if err != nil {
		return err
	}
	if !ic.TestInter() {
		return failf("intercomm does not test as inter")
	}
	wantRemote := size - half
	if side == 1 {
		wantRemote = half
	}
	if err := expectEq("remote size", ic.RemoteSize(), wantRemote); err != nil {
		return err
	}
	// Pairwise exchange with the same-index rank on the other side.
	lr := ic.Rank()
	if lr < ic.RemoteSize() {
		out := []int32{int32(rank)}
		in := []int32{-1}
		if _, err := ic.Sendrecv(out, 0, 1, mpi.INT, lr, 3,
			in, 0, 1, mpi.INT, lr, 3); err != nil {
			return err
		}
		var wantPeer int32
		if side == 0 {
			wantPeer = int32(lr + half)
		} else {
			wantPeer = int32(lr)
		}
		return expectEq("intercomm exchange", in[0], wantPeer)
	}
	return nil
}

// progIntermerge: merging the bridge yields a full-size intracommunicator
// with the low group first.
func progIntermerge(env *mpi.Env) error {
	w := env.CommWorld()
	rank, size := w.Rank(), w.Size()
	half := size / 2
	side := 0
	if rank >= half {
		side = 1
	}
	local, err := w.Split(side, rank)
	if err != nil {
		return err
	}
	remoteLeader := half
	if side == 1 {
		remoteLeader = 0
	}
	ic, err := local.CreateIntercomm(&w.Comm, 0, remoteLeader, 88)
	if err != nil {
		return err
	}
	merged, err := ic.Merge(side == 1) // low side = side 0
	if err != nil {
		return err
	}
	if err := expectEq("merged size", merged.Size(), size); err != nil {
		return err
	}
	if err := expectEq("merged rank order", merged.Rank(), rank); err != nil {
		return err
	}
	// The merged communicator must carry collectives.
	in := []int32{1}
	out := []int32{0}
	if err := merged.Allreduce(in, 0, out, 0, 1, mpi.INT, mpi.SUM); err != nil {
		return err
	}
	return expectEq("merged allreduce", out[0], int32(size))
}

// progCommSelf: COMM_SELF is a singleton world.
func progCommSelf(env *mpi.Env) error {
	self := env.CommSelf()
	if err := expectEq("self size", self.Size(), 1); err != nil {
		return err
	}
	if err := expectEq("self rank", self.Rank(), 0); err != nil {
		return err
	}
	// A collective over COMM_SELF involves only this rank.
	in := []int32{int32(env.Rank() + 1)}
	out := []int32{0}
	if err := self.Allreduce(in, 0, out, 0, 1, mpi.INT, mpi.SUM); err != nil {
		return err
	}
	if err := expectEq("self allreduce", out[0], in[0]); err != nil {
		return err
	}
	// Self-addressed pt2pt on COMM_SELF.
	sreq, err := self.Isend([]int32{77}, 0, 1, mpi.INT, 0, 2)
	if err != nil {
		return err
	}
	got := []int32{0}
	if _, err := self.Recv(got, 0, 1, mpi.INT, 0, 2); err != nil {
		return err
	}
	if _, err := sreq.Wait(); err != nil {
		return err
	}
	return expectEq("self message", got[0], int32(77))
}
