package testsuite

import (
	"gompi/mpi"
)

// The virtual-topology programs (5).

func init() {
	register(Program{Name: "dims", Category: CatTopo, NP: 1, Run: progDims})
	register(Program{Name: "cartcreate", Category: CatTopo, NP: 6, Run: progCartCreate})
	register(Program{Name: "cartshift", Category: CatTopo, NP: 6, Run: progCartShift})
	register(Program{Name: "cartsub", Category: CatTopo, NP: 6, Run: progCartSub})
	register(Program{Name: "graphcreate", Category: CatTopo, NP: 4, Run: progGraphCreate})
}

func progDims(env *mpi.Env) error {
	d, err := mpi.DimsCreate(12, []int{0, 0})
	if err != nil {
		return err
	}
	if d[0]*d[1] != 12 || d[0] < d[1] {
		return failf("DimsCreate(12,2): got %v", d)
	}
	if d[0] != 4 || d[1] != 3 {
		return failf("DimsCreate(12,2): got %v, want [4 3]", d)
	}
	d, err = mpi.DimsCreate(12, []int{2, 0, 0})
	if err != nil {
		return err
	}
	if d[0] != 2 || d[1]*d[2] != 6 || d[1] < d[2] {
		return failf("DimsCreate(12, [2 0 0]): got %v", d)
	}
	if _, err := mpi.DimsCreate(7, []int{2, 0}); mpi.ClassOf(err) != mpi.ErrDims {
		return failf("indivisible DimsCreate: got %v", err)
	}
	return nil
}

func progCartCreate(env *mpi.Env) error {
	w := env.CommWorld()
	cart, err := w.CreateCart([]int{3, 2}, []bool{false, true}, false)
	if err != nil {
		return err
	}
	if cart == nil {
		return failf("rank %d: nil cart for exact-fit grid", w.Rank())
	}
	parms, err := cart.Get()
	if err != nil {
		return err
	}
	if parms.Dims[0] != 3 || parms.Dims[1] != 2 {
		return failf("cart dims: got %v", parms.Dims)
	}
	if parms.Periods[0] || !parms.Periods[1] {
		return failf("cart periods: got %v", parms.Periods)
	}
	// Row-major rank <-> coords round trip for every position.
	for r := 0; r < cart.Size(); r++ {
		coords, err := cart.Coords(r)
		if err != nil {
			return err
		}
		back, err := cart.CartRank(coords)
		if err != nil {
			return err
		}
		if err := expectEq("rank/coords round trip", back, r); err != nil {
			return err
		}
	}
	me, err := cart.Coords(cart.Rank())
	if err != nil {
		return err
	}
	if me[0] != parms.Coords[0] || me[1] != parms.Coords[1] {
		return failf("own coords mismatch: %v vs %v", me, parms.Coords)
	}
	return nil
}

func progCartShift(env *mpi.Env) error {
	w := env.CommWorld()
	cart, err := w.CreateCart([]int{3, 2}, []bool{false, true}, false)
	if err != nil {
		return err
	}
	coords, err := cart.Coords(cart.Rank())
	if err != nil {
		return err
	}
	// Dimension 0 is non-periodic: edges shift to ProcNull.
	sp, err := cart.Shift(0, 1)
	if err != nil {
		return err
	}
	if coords[0] == 0 {
		if err := expectEq("top edge source", sp.RankSource, mpi.ProcNull); err != nil {
			return err
		}
	}
	if coords[0] == 2 {
		if err := expectEq("bottom edge dest", sp.RankDest, mpi.ProcNull); err != nil {
			return err
		}
	}
	// Dimension 1 is periodic: a full ring exchange works along it.
	sp, err = cart.Shift(1, 1)
	if err != nil {
		return err
	}
	out := []int32{int32(cart.Rank())}
	in := []int32{-1}
	if _, err := cart.Sendrecv(out, 0, 1, mpi.INT, sp.RankDest, 2,
		in, 0, 1, mpi.INT, sp.RankSource, 2); err != nil {
		return err
	}
	if err := expectEq("periodic shift payload", in[0], int32(sp.RankSource)); err != nil {
		return err
	}
	// ProcNull endpoints are legal in communication calls.
	spEdge, err := cart.Shift(0, 1)
	if err != nil {
		return err
	}
	if _, err := cart.Sendrecv(out, 0, 1, mpi.INT, spEdge.RankDest, 3,
		in, 0, 1, mpi.INT, spEdge.RankSource, 3); err != nil {
		return err
	}
	return nil
}

func progCartSub(env *mpi.Env) error {
	w := env.CommWorld()
	cart, err := w.CreateCart([]int{3, 2}, []bool{false, false}, false)
	if err != nil {
		return err
	}
	// Keep dimension 1: rows of length 2.
	row, err := cart.Sub([]bool{false, true})
	if err != nil {
		return err
	}
	if err := expectEq("row size", row.Size(), 2); err != nil {
		return err
	}
	coords, err := cart.Coords(cart.Rank())
	if err != nil {
		return err
	}
	if err := expectEq("row rank is column coord", row.Rank(), coords[1]); err != nil {
		return err
	}
	// A row-wise sum identifies the members.
	in := []int32{int32(cart.Rank())}
	out := []int32{0}
	if err := row.Allreduce(in, 0, out, 0, 1, mpi.INT, mpi.SUM); err != nil {
		return err
	}
	base := int32(coords[0] * 2)
	if err := expectEq("row sum", out[0], base+base+1); err != nil {
		return err
	}
	return nil
}

func progGraphCreate(env *mpi.Env) error {
	w := env.CommWorld()
	// A 4-node ring: node i adjacent to i±1.
	index := []int{2, 4, 6, 8}
	edges := []int{1, 3, 0, 2, 1, 3, 0, 2}
	gc, err := w.CreateGraph(index, edges, false)
	if err != nil {
		return err
	}
	if gc == nil {
		return failf("nil graphcomm for exact-fit graph")
	}
	parms, err := gc.Get()
	if err != nil {
		return err
	}
	if len(parms.Index) != 4 || len(parms.Edges) != 8 {
		return failf("graph shape: %v %v", parms.Index, parms.Edges)
	}
	ns, err := gc.Neighbours(gc.Rank())
	if err != nil {
		return err
	}
	rank := gc.Rank()
	want := []int{(rank + 3) % 4, (rank + 1) % 4}
	if len(ns) != 2 {
		return failf("neighbour count: got %v", ns)
	}
	// The ring edges were listed (low, high) per node.
	if ns[0] != want[0] && ns[0] != want[1] {
		return failf("neighbours of %d: got %v", rank, ns)
	}
	// Exchange with each neighbour. One shared tag: the two endpoints
	// hold each other at different positions in their neighbour lists,
	// and per-pair FIFO keeps the single exchange per pair matched.
	for _, nb := range ns {
		out := []int32{int32(rank)}
		in := []int32{-1}
		if _, err := gc.Sendrecv(out, 0, 1, mpi.INT, nb, 4,
			in, 0, 1, mpi.INT, nb, 4); err != nil {
			return err
		}
		if err := expectEq("graph neighbour payload", in[0], int32(nb)); err != nil {
			return err
		}
	}
	return nil
}
