// Package testsuite is the reproduction of the paper's functionality
// gate (§3.4): the IBM MPI test suite — 57 programs covering collective
// operations, communicators, data types, environmental inquiries,
// groups, point-to-point and virtual topologies — which the authors
// translated to mpiJava and ran unaltered in both Shared Memory and
// Distributed Memory modes. Here each program is an SPMD function over
// the public mpi binding; the suite runner executes every program under
// both the shm device (SM) and the loopback TCP device (DM).
package testsuite

import (
	"fmt"
	"sort"
	"strings"

	"gompi/mpi"
)

// Program is one test program of the suite.
type Program struct {
	// Name identifies the program, IBM-suite style (e.g. "allred").
	Name string
	// Category is one of the paper's seven areas.
	Category string
	// NP is the process count the program runs with.
	NP int
	// Run executes the caller's rank; a non-nil error fails the
	// program.
	Run func(env *mpi.Env) error
}

// The seven categories of the paper's §3.4.
const (
	CatCollective = "collective"
	CatComm       = "communicators"
	CatDatatype   = "datatypes"
	CatEnv        = "environment"
	CatGroup      = "groups"
	CatPt2pt      = "point-to-point"
	CatTopo       = "topology"
)

var programs []Program

func register(p Program) {
	if p.NP == 0 {
		p.NP = 4
	}
	programs = append(programs, p)
}

// Programs returns the suite, ordered by category then name.
func Programs() []Program {
	out := append([]Program(nil), programs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Category != out[j].Category {
			return out[i].Category < out[j].Category
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Result is the outcome of one program under one mode.
type Result struct {
	Program Program
	Mode    string // "SM" or "DM"
	Err     error
}

// RunProgram executes one program under the selected transport.
func RunProgram(p Program, tcp bool) error {
	return mpi.RunWith(mpi.RunOptions{NP: p.NP, TCP: tcp}, p.Run)
}

// RunProgramOpt executes one program with explicit run options (used to
// sweep the suite across protocol configurations).
func RunProgramOpt(p Program, opt mpi.RunOptions) error {
	opt.NP = p.NP
	return mpi.RunWith(opt, p.Run)
}

// RunProgramDiag is RunProgramOpt plus a post-mortem: when the program
// fails, diag holds every rank's performance-variable snapshot (the
// MPI_T-style registry) at the time of death — which protocols fired,
// how deep the unexpected queue got, whether a peer was declared lost.
// The counters are plain atomics, so reading them after the failed
// world is torn down is safe.
func RunProgramDiag(p Program, opt mpi.RunOptions) (err error, diag string) {
	opt.NP = p.NP
	envs := make([]*mpi.Env, p.NP)
	err = mpi.RunWith(opt, func(env *mpi.Env) error {
		envs[env.Rank()] = env
		return p.Run(env)
	})
	if err == nil {
		return nil, ""
	}
	var b strings.Builder
	for rank, env := range envs {
		if env == nil {
			continue
		}
		fmt.Fprintf(&b, "rank %d perf vars:\n", rank)
		for _, v := range env.PerfVars() {
			if v.Value == 0 && v.Aux == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-24s %d\n", v.Name, v.Value)
		}
	}
	return err, b.String()
}

// RunAll executes the whole suite under both modes, mirroring the
// paper's "all codes ran in both modes without alterations".
func RunAll() []Result {
	var out []Result
	for _, p := range Programs() {
		for _, tcp := range []bool{false, true} {
			mode := "SM"
			if tcp {
				mode = "DM"
			}
			out = append(out, Result{Program: p, Mode: mode, Err: RunProgram(p, tcp)})
		}
	}
	return out
}

// failf builds a program-failure error.
func failf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

// expectEq fails unless got equals want.
func expectEq[T comparable](what string, got, want T) error {
	if got != want {
		return failf("%s: got %v, want %v", what, got, want)
	}
	return nil
}

// expectInts compares int slices.
func expectInts(what string, got, want []int32) error {
	if len(got) != len(want) {
		return failf("%s: got %d values, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return failf("%s: index %d: got %d, want %d", what, i, got[i], want[i])
		}
	}
	return nil
}
